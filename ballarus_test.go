package ballarus

import (
	"context"
	"strings"
	"testing"
)

const facadeSrc = `
int g;
int f(int x) {
	if (x < 0) { return 0 - x; }
	while (x > 100) { x /= 2; g++; }
	return x;
}
int main() {
	int i;
	int s = 0;
	for (i = 0; i < 300; i++) { s += f(i * 7 - 30); }
	printi(s); printc('\n');
	return 0;
}
`

func TestFacadePipeline(t *testing.T) {
	prog, err := Compile(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Branches) == 0 {
		t.Fatal("no branches analyzed")
	}
	res, err := Execute(prog, RunConfig{CollectEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(res.Output, "\n") {
		t.Errorf("output %q", res.Output)
	}
	preds := a.Predictions(DefaultOrder)
	score := Score(a, preds, res.Profile)
	if score.Dyn == 0 {
		t.Fatal("no dynamic branches scored")
	}
	if score.Pred < score.Perfect-1e-9 {
		t.Errorf("predictor %.1f%% beats perfect %.1f%%", score.Pred, score.Perfect)
	}
	// Trace analysis through the facade.
	d := Sequences(res, preds)
	dp := PerfectSequences(res)
	if d.TotalInstr != dp.TotalInstr || d.TotalInstr == 0 {
		t.Errorf("distributions disagree on total instructions: %d vs %d", d.TotalInstr, dp.TotalInstr)
	}
	if dp.Mispred > d.Mispred {
		t.Errorf("perfect mispredicts more (%d) than the heuristic (%d)", dp.Mispred, d.Mispred)
	}
}

func TestFacadeCompileError(t *testing.T) {
	if _, err := Compile("int main() { return x; }"); err == nil {
		t.Error("expected compile error")
	}
}

func TestFacadeOptions(t *testing.T) {
	p1, err := CompileWithOptions(facadeSrc, CompileOptions{SpillLocals: true})
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeWithOptions(p1, AnalysisOptions{NoPostdom: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Branches) == 0 {
		t.Fatal("no branches")
	}
	// Spilled compilation still computes the same program output.
	p2, err := Compile(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Execute(p1, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Execute(p2, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Output != r2.Output {
		t.Errorf("spilled output %q != register output %q", r1.Output, r2.Output)
	}
}

func TestFacadeBenchmarks(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 23 {
		t.Fatalf("%d benchmarks, want 23", len(bs))
	}
	if GetBenchmark("tomcatv") == nil || GetBenchmark("zzz") != nil {
		t.Error("GetBenchmark misbehaves")
	}
}

func TestFacadeConstants(t *testing.T) {
	if !DefaultOrder.Valid() {
		t.Error("DefaultOrder invalid")
	}
	hs := []Heuristic{Opcode, LoopH, CallH, ReturnH, Guard, Store, Point}
	seen := map[Heuristic]bool{}
	for _, h := range hs {
		if seen[h] {
			t.Errorf("duplicate heuristic constant %v", h)
		}
		seen[h] = true
	}
	if PredTaken == PredFall || PredTaken == PredNone {
		t.Error("prediction constants collide")
	}
}

func TestFacadeCompare(t *testing.T) {
	prog, err := Compile(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	c, err := CompareCtx(ctx, prog)
	if err != nil {
		t.Fatal(err)
	}
	names := append([]string{CompareStatic, ComparePerfect}, DynPredictorNames()...)
	if len(c.Predictors) != len(names) {
		t.Fatalf("%d entrants, want %d", len(c.Predictors), len(names))
	}
	for _, name := range names {
		if c.Score(name).Name != name {
			t.Errorf("missing entrant %q", name)
		}
	}
	if p, h := c.Score(ComparePerfect), c.Score(CompareStatic); p.Misses > h.Misses {
		t.Errorf("perfect (%d) worse than heuristics (%d)", p.Misses, h.Misses)
	}

	// A restricted backend set plus run options.
	c2, err := CompareCtx(ctx, prog,
		WithComparePredictors(GsharePredictor),
		WithCompareRun(WithSeed(3)),
		WithH2PMinExecuted(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.Predictors) != 3 {
		t.Fatalf("entrants = %+v, want static pair + gshare", c2.Predictors)
	}

	// Unknown backend errors; canceled context fails early.
	if _, err := CompareCtx(ctx, prog, WithComparePredictors("oracle")); err == nil {
		t.Error("unknown backend should error")
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := CompareCtx(canceled, prog); err == nil {
		t.Error("canceled context should fail")
	}

	// The facade one-shot agrees with the service pipeline.
	svc := NewService()
	sres, err := svc.Compare(ctx, CompareRequest{Request: PredictRequest{Source: facadeSrc}})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if got, want := sres.Score(name).Misses, c.Score(name).Misses; got != want {
			t.Errorf("%s: service %d misses, facade %d", name, got, want)
		}
	}
}
