package ballarus

import (
	"testing"

	"ballarus/internal/core"
	"ballarus/internal/eval"
	"ballarus/internal/stats"
)

// TestHeadlineClaims pins the paper-shape results EXPERIMENTS.md reports.
// If a change to the compiler, suite, or predictor moves a headline
// number out of its band, this test fails and the documentation must be
// re-verified — the reproduction's contract, executable.
func TestHeadlineClaims(t *testing.T) {
	e := eval.New()
	runs, err := e.DefaultRuns()
	if err != nil {
		t.Fatal(err)
	}

	var perfectAll, loopPred, tgtNL, rndNL, combined, withDefault, btfnt, loopRand []float64
	for _, r := range runs {
		f := r.Final(core.DefaultOrder)
		s := r.Split()
		perfectAll = append(perfectAll, f.All.Perfect)
		combined = append(combined, f.All.Pred)
		withDefault = append(withDefault, f.WithDefault.Pred)
		loopRand = append(loopRand, f.LoopRand.Pred)
		btfnt = append(btfnt, r.AllMissRate(r.Analysis.BTFNTPredictions()).Pred)
		if s.LoopDyn > 0 {
			loopPred = append(loopPred, stats.Percent(s.LoopPredMiss, s.LoopDyn))
		}
		if s.NLDyn > 0 {
			tgtNL = append(tgtNL, stats.Percent(s.TgtMiss, s.NLDyn))
			rndNL = append(rndNL, stats.Percent(s.RndMiss, s.NLDyn))
		}
	}
	claims := []struct {
		name   string
		got    float64
		lo, hi float64
	}{
		// Paper: perfect static predictor ~10% on all branches.
		{"perfect static (all branches)", stats.Mean(perfectAll), 7, 14},
		// Paper Table 2: loop predictor mean 12/8.
		{"loop predictor on loop branches", stats.Mean(loopPred), 5, 20},
		// Paper: naive strategies ~50% on non-loop branches.
		{"always-target on non-loop", stats.Mean(tgtNL), 40, 70},
		{"random on non-loop", stats.Mean(rndNL), 40, 65},
		// Combined predictor sits clearly between perfect and naive.
		{"combined all-branch", stats.Mean(combined), 15, 30},
		{"combined non-loop (+default)", stats.Mean(withDefault), 25, 45},
		// Section 3's claim: loop analysis beats BTFNT.
		{"BTFNT all-branch", stats.Mean(btfnt), stats.Mean(combined) + 1, 45},
		// Loop+Rand is clearly worse than the full predictor.
		{"loop+rand all-branch", stats.Mean(loopRand), stats.Mean(combined) + 5, 60},
	}
	for _, c := range claims {
		if c.got < c.lo || c.got > c.hi {
			t.Errorf("%s = %.1f%%, outside the documented band [%.1f, %.1f]",
				c.name, c.got, c.lo, c.hi)
		} else {
			t.Logf("%-35s %.1f%% (band %.0f-%.0f)", c.name, c.got, c.lo, c.hi)
		}
	}

	// Cross-profile: program-based is roughly a factor of two worse than
	// profile-based (the paper's framing sentence).
	rows, err := e.CrossProfile()
	if err != nil {
		t.Fatal(err)
	}
	var prog, cross []float64
	for _, r := range rows {
		prog = append(prog, r.ProgramMiss)
		cross = append(cross, r.CrossMiss)
	}
	ratio := stats.Mean(prog) / stats.Mean(cross)
	t.Logf("program-based / profile-based ratio = %.2f", ratio)
	if ratio < 1.4 || ratio > 3.2 {
		t.Errorf("factor-of-two claim out of band: ratio %.2f", ratio)
	}

	// Dynamic predictors: 2-bit ≈ perfect static (McFarling-Hennessy).
	dp, err := e.DynPred()
	if err != nil {
		t.Fatal(err)
	}
	var perf2, two []float64
	for _, r := range dp {
		perf2 = append(perf2, r.Perfect)
		two = append(two, r.TwoBit)
	}
	gap := stats.Mean(two) - stats.Mean(perf2)
	t.Logf("2-bit minus perfect static = %.1f points", gap)
	if gap < -5 || gap > 5 {
		t.Errorf("static≈dynamic claim out of band: gap %.1f", gap)
	}
}
