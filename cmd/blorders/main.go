// blorders runs the Section 5 ordering experiments: the 5040-order sweep
// and the C(22,11) generalization experiment.
//
// Usage:
//
//	blorders                 # sweep summary + sampled subset experiment
//	blorders -exact          # the full 705,432-trial experiment
//	blorders -trials 50000   # a bigger sample
package main

import (
	"flag"
	"fmt"
	"time"

	"ballarus"
	"ballarus/internal/cli"
)

func main() {
	exact := flag.Bool("exact", false, "run all 705,432 subset trials")
	trials := flag.Int("trials", 20000, "sampled trials (ignored with -exact)")
	top := flag.Int("top", 10, "orders to list")
	flag.Parse()

	e := ballarus.NewEvaluator()
	start := time.Now()
	sweep, err := e.Sweep()
	if err != nil {
		fatal(err)
	}
	avg := sweep.SortedAvg(nil)
	fmt.Printf("5040-order sweep over %d benchmarks (%.1fs): best %.2f%%, median %.2f%%, worst %.2f%%\n",
		len(sweep.Benches), time.Since(start).Seconds(),
		avg[0], avg[len(avg)/2], avg[len(avg)-1])
	best := sweep.BestOrder(nil)
	fmt.Printf("best order overall: %s\n\n", sweep.Orders[best])

	t := cli.Trials(*trials, *exact)
	start = time.Now()
	_, res, err := e.SubsetExperiment(t)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("subset experiment: %d trials in %.1fs, %d distinct orders chosen\n",
		res.Trials, time.Since(start).Seconds(), res.DistinctOrders())
	ranked := res.Ranked()
	allAvg := sweep.Avg(nil)
	n := *top
	if n > len(ranked) {
		n = len(ranked)
	}
	fmt.Println("\npct-trials  miss-rate  order")
	for i := 0; i < n; i++ {
		o := ranked[i]
		fmt.Printf("%6.2f  %8.2f  %s\n",
			100*float64(res.BestCount[o])/float64(res.Trials), allAvg[o], sweep.Orders[o])
	}
	// Where does the overall best order rank by frequency?
	for i, o := range ranked {
		if o == best {
			fmt.Printf("\nthe overall best order is the #%d most frequently chosen\n", i+1)
			break
		}
	}
}

func fatal(err error) { cli.Exit("blorders", err) }
