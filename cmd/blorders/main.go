// blorders runs the Section 5 ordering experiments: the 5040-order sweep
// and the C(22,11) generalization experiment.
//
// Usage:
//
//	blorders                 # sweep summary + sampled subset experiment
//	blorders -exact          # the full 705,432-trial experiment
//	blorders -trials 50000   # a bigger sample
//
// Long runs report periodic progress (trials done, rate, ETA) on stderr
// and exit promptly on SIGINT/SIGTERM. For a distributed, crash-
// resumable version of the same experiments, see blserve -jobs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"ballarus"
	"ballarus/internal/cli"
)

func main() {
	exact := flag.Bool("exact", false, "run all 705,432 subset trials")
	trials := flag.Int("trials", 20000, "sampled trials (ignored with -exact)")
	top := flag.Int("top", 10, "orders to list")
	quiet := flag.Bool("q", false, "suppress the stderr progress reports")
	flag.Parse()

	ctx, stop := cli.SignalContext()
	defer stop()

	e := ballarus.NewEvaluator()
	start := time.Now()
	sweep, err := e.SweepCtx(ctx)
	if err != nil {
		fatal(err)
	}
	avg := sweep.SortedAvg(nil)
	fmt.Printf("5040-order sweep over %d benchmarks (%.1fs): best %.2f%%, median %.2f%%, worst %.2f%%\n",
		len(sweep.Benches), time.Since(start).Seconds(),
		avg[0], avg[len(avg)/2], avg[len(avg)-1])
	best := sweep.BestOrder(nil)
	fmt.Printf("best order overall: %s\n\n", sweep.Orders[best])

	t := cli.Trials(*trials, *exact)
	start = time.Now()
	var progress func(done, total int64)
	if !*quiet {
		progress = progressReporter(start)
	}
	_, res, err := e.SubsetExperimentCtx(ctx, t, progress)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("subset experiment: %d trials in %.1fs, %d distinct orders chosen\n",
		res.Trials, time.Since(start).Seconds(), res.DistinctOrders())
	ranked := res.Ranked()
	allAvg := sweep.Avg(nil)
	n := *top
	if n > len(ranked) {
		n = len(ranked)
	}
	fmt.Println("\npct-trials  miss-rate  order")
	for i := 0; i < n; i++ {
		o := ranked[i]
		fmt.Printf("%6.2f  %8.2f  %s\n",
			100*float64(res.BestCount[o])/float64(res.Trials), allAvg[o], sweep.Orders[o])
	}
	// Where does the overall best order rank by frequency?
	for i, o := range ranked {
		if o == best {
			fmt.Printf("\nthe overall best order is the #%d most frequently chosen\n", i+1)
			break
		}
	}
}

// progressReporter throttles the experiment's progress callback to one
// stderr line every half second: trials done, percent, rate, and ETA.
// The callback fires concurrently from the scoring workers, so a CAS on
// the last-print timestamp elects a single printer.
func progressReporter(start time.Time) func(done, total int64) {
	var lastPrint atomic.Int64
	lastPrint.Store(start.UnixNano())
	return func(done, total int64) {
		if done >= total {
			return // the completion summary covers the final state
		}
		now := time.Now()
		last := lastPrint.Load()
		if now.UnixNano()-last < int64(500*time.Millisecond) ||
			!lastPrint.CompareAndSwap(last, now.UnixNano()) {
			return
		}
		elapsed := now.Sub(start).Seconds()
		rate := float64(done) / elapsed
		eta := time.Duration(float64(total-done) / rate * float64(time.Second))
		fmt.Fprintf(os.Stderr, "blorders: %d/%d trials (%.1f%%), %.0f/s, ~%s left\n",
			done, total, 100*float64(done)/float64(total), rate, eta.Round(time.Second))
	}
}

func fatal(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "blorders: interrupted")
		os.Exit(130)
	}
	cli.Exit("blorders", err)
}
