// blpredict runs the Ball-Larus predictor over a minic program (or a
// suite benchmark) and scores its predictions against an actual run.
//
// Usage:
//
//	blpredict -bench xlisp [-dataset 0] [-verbose]
//	blpredict prog.mc [-text file] [-verbose]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ballarus"
	"ballarus/internal/core"
)

func main() {
	benchName := flag.String("bench", "", "analyze a suite benchmark instead of a file")
	dataset := flag.Int("dataset", 0, "dataset index for -bench")
	textFile := flag.String("text", "", "text input file for a program argument")
	verbose := flag.Bool("verbose", false, "print every branch with its prediction")
	orderSpec := flag.String("order", "", "heuristic priority order, e.g. Opcode+Call+Return+Store+Point+Loop+Guard")
	flag.Parse()

	order := ballarus.DefaultOrder
	if *orderSpec != "" {
		o, err := parseOrder(*orderSpec)
		if err != nil {
			fatal(err)
		}
		order = o
	}

	var prog *ballarus.Program
	var input []int64
	var budget int64
	switch {
	case *benchName != "":
		b := ballarus.GetBenchmark(*benchName)
		if b == nil {
			fatal(fmt.Errorf("no benchmark %q", *benchName))
		}
		p, err := b.Compile()
		if err != nil {
			fatal(err)
		}
		prog = p
		if *dataset < 0 || *dataset >= len(b.Data) {
			fatal(fmt.Errorf("%s has datasets 0..%d", b.Name, len(b.Data)-1))
		}
		input = b.Data[*dataset].Input
		budget = b.Budget
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		p, err := ballarus.Compile(string(src))
		if err != nil {
			fatal(err)
		}
		prog = p
		if *textFile != "" {
			data, err := os.ReadFile(*textFile)
			if err != nil {
				fatal(err)
			}
			for _, c := range data {
				input = append(input, int64(c))
			}
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: blpredict (-bench name | prog.mc) [flags]")
		os.Exit(2)
	}

	a, err := ballarus.Analyze(prog)
	if err != nil {
		fatal(err)
	}
	res, err := ballarus.Execute(prog, ballarus.RunConfig{Input: input, Budget: budget})
	if err != nil {
		fatal(err)
	}
	preds := a.Predictions(order)

	if *verbose {
		for i := range a.Branches {
			b := &a.Branches[i]
			dyn := res.Profile.Executed(b.ID)
			if dyn == 0 {
				continue
			}
			pred, by, ok := b.PredictWith(order)
			src := "default"
			if b.Class == core.LoopBranch {
				src = "loop"
			} else if ok {
				src = by.String()
			}
			miss := res.Profile.Misses(b.ID, pred.Taken())
			fmt.Printf("%-10s+%-4d %-8s pred=%-5s by=%-7s dyn=%-8d miss=%.0f%%\n",
				prog.Procs[b.Proc].Name, b.Instr, b.Class, pred, src, dyn,
				100*float64(miss)/float64(dyn))
		}
	}

	fmt.Printf("branches: %d static, %d dynamic\n", len(a.Branches), res.Profile.Total())
	fmt.Printf("heuristic (order %s):\n  all-branch miss: %s (miss%%/perfect%%)\n",
		order, ballarus.Score(a, preds, res.Profile))
	fmt.Printf("voting combiner:    %s\n",
		ballarus.Score(a, a.VotePredictions(ballarus.DefaultWeights), res.Profile))
	fmt.Printf("loop+rand baseline: %s\n", ballarus.Score(a, a.LoopRandPredictions(), res.Profile))
	fmt.Printf("BTFNT baseline:     %s\n", ballarus.Score(a, a.BTFNTPredictions(), res.Profile))
}

// parseOrder parses "Point+Call+Opcode+Return+Store+Loop+Guard".
func parseOrder(spec string) (ballarus.Order, error) {
	names := map[string]ballarus.Heuristic{
		"opcode": ballarus.Opcode, "loop": ballarus.LoopH, "call": ballarus.CallH,
		"return": ballarus.ReturnH, "guard": ballarus.Guard, "store": ballarus.Store,
		"point": ballarus.Point, "pointer": ballarus.Point,
	}
	parts := strings.Split(spec, "+")
	var o ballarus.Order
	if len(parts) != len(o) {
		return o, fmt.Errorf("order needs %d heuristics, got %d", len(o), len(parts))
	}
	for i, p := range parts {
		h, ok := names[strings.ToLower(strings.TrimSpace(p))]
		if !ok {
			return o, fmt.Errorf("unknown heuristic %q", p)
		}
		o[i] = h
	}
	if !o.Valid() {
		return o, fmt.Errorf("order %q repeats a heuristic", spec)
	}
	return o, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "blpredict:", err)
	os.Exit(1)
}
