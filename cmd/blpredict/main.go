// blpredict runs the Ball-Larus predictor over a minic program (or a
// suite benchmark) and scores its predictions against an actual run, via
// the prediction service.
//
// Usage:
//
//	blpredict -bench xlisp [-dataset 0] [-verbose]
//	blpredict prog.mc [-text file] [-verbose]
package main

import (
	"flag"
	"fmt"
	"os"

	"ballarus"
	"ballarus/internal/cli"
	"ballarus/internal/core"
)

func main() {
	benchName := flag.String("bench", "", "analyze a suite benchmark instead of a file")
	dataset := flag.Int("dataset", 0, "dataset index for -bench")
	textFile := flag.String("text", "", "text input file for a program argument")
	verbose := flag.Bool("verbose", false, "print every branch with its prediction")
	orderSpec := flag.String("order", "", "heuristic priority order, e.g. Opcode+Call+Return+Store+Point+Loop+Guard")
	flag.Parse()

	order, err := cli.OrderFlag(*orderSpec)
	if err != nil {
		fatal(err)
	}
	ctx, stop := cli.SignalContext()
	defer stop()

	req := ballarus.PredictRequest{Order: order}
	switch {
	case *benchName != "":
		b, err := cli.SelectBenchmark(*benchName)
		if err != nil {
			fatal(err)
		}
		if _, err := cli.Dataset(b, *dataset); err != nil {
			fatal(err)
		}
		req.Benchmark = b.Name
		req.Dataset = *dataset
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		req.Source = string(src)
		if *textFile != "" {
			input, err := cli.ReadTextFile(*textFile)
			if err != nil {
				fatal(err)
			}
			req.Input = input
		}
	default:
		cli.Usage("blpredict (-bench name | prog.mc) [flags]")
	}

	svc := ballarus.NewService()
	res, err := svc.Predict(ctx, req)
	if err != nil {
		fatal(err)
	}

	if *verbose {
		a, prog := res.Analysis, res.Analysis.Prog
		for i := range a.Branches {
			b := &a.Branches[i]
			dyn := res.Profile.Executed(b.ID)
			if dyn == 0 {
				continue
			}
			pred, by, ok := b.PredictWith(order)
			src := "default"
			if b.Class == core.LoopBranch {
				src = "loop"
			} else if ok {
				src = by.String()
			}
			miss := res.Profile.Misses(b.ID, pred.Taken())
			fmt.Printf("%-10s+%-4d %-8s pred=%-5s by=%-7s dyn=%-8d miss=%.0f%%\n",
				prog.Procs[b.Proc].Name, b.Instr, b.Class, pred, src, dyn,
				100*float64(miss)/float64(dyn))
		}
	}

	fmt.Printf("branches: %d static, %d dynamic\n", res.StaticBranches, res.DynamicBranches)
	fmt.Printf("heuristic (order %s):\n  all-branch miss: %s (miss%%/perfect%%)\n",
		order, res.Heuristic)
	fmt.Printf("voting combiner:    %s\n", res.Vote)
	fmt.Printf("loop+rand baseline: %s\n", res.LoopRand)
	fmt.Printf("BTFNT baseline:     %s\n", res.BTFNT)
}

func fatal(err error) { cli.Exit("blpredict", err) }
