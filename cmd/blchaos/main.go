// blchaos is the deterministic chaos driver for blserve: it spawns a
// real server process, replays a seeded schedule of traffic, fault
// injection (via the server's -chaos-admin /debug endpoints), hard
// kills, and restarts, and asserts the durability invariants — no torn
// snapshots, warm restarts, exclusive responses, and corruption
// counted instead of fatal. See internal/chaos for the invariants.
//
// With -cluster it instead drives the replicated-serving scenario:
// N blserve replicas behind a real blgate, one SIGKILLed mid-load, one
// stalled through its faultpoints, then all killed for the brownout
// drill — asserting zero client-visible 5xx while any replica is
// healthy, winning hedges against the stall, a held retry budget, and
// degraded stale answers once the whole cluster is down.
//
// With -tenants it drives the multi-tenant fairness scenario: three
// blserve -tenants replicas behind a rendezvous-routing blgate, with a
// hog tenant flooding at 10x its quota next to two well-behaved
// tenants — asserting the polite tenants stay at their baseline
// completion rate with zero errors while the hog is shed with
// quota_exceeded pass-throughs, and that SIGKILLing one replica remaps
// only its ~1/N slice of the key space while surviving keys stay
// cache-warm on their owners.
//
// With -jobs it drives the distributed-jobs scenario: a job
// coordinator (blserve -jobs) dispatching the Section 5 ordering
// experiments through a real blgate to two replicas. One replica is
// SIGKILLed mid-job and the coordinator is SIGKILLed and restarted
// mid-job — asserting the job resumes from its journal, re-runs only
// the unfinished shards, and produces results bit-identical to a
// single-process run with the exact trial count.
//
// Usage:
//
//	blchaos [-bin PATH] [-seed 1] [-duration 30s] [-hit-floor 0.5]
//	        [-state-dir DIR] [-v]
//	blchaos -cluster [-bin PATH] [-gate-bin PATH] [-replicas 3]
//	        [-seed 1] [-duration 30s] [-v]
//	blchaos -tenants [-bin PATH] [-gate-bin PATH] [-seed 1] [-v]
//	blchaos -jobs [-bin PATH] [-gate-bin PATH] [-seed 1] [-v]
//
// With no -bin (or -gate-bin in cluster mode), blchaos builds the
// binaries from the enclosing module. The JSON report goes to stdout;
// the exit status is non-zero when any invariant was violated. A
// failing schedule replays with its -seed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ballarus/internal/chaos"
	"ballarus/internal/cli"
)

func main() {
	bin := flag.String("bin", "", "blserve binary to drive (default: build cmd/blserve)")
	seed := flag.Int64("seed", 1, "schedule seed; a failing run replays with the same seed")
	duration := flag.Duration("duration", 30*time.Second, "soak length (drills run after)")
	hitFloor := flag.Float64("hit-floor", 0.5, "minimum warm-hit fraction required after a restart")
	stateDir := flag.String("state-dir", "", "server state directory (default: a temp dir, removed afterwards)")
	clusterMode := flag.Bool("cluster", false, "run the gateway cluster scenario instead of the durability soak")
	jobsMode := flag.Bool("jobs", false, "run the distributed-jobs scenario instead of the durability soak")
	tenantsMode := flag.Bool("tenants", false, "run the multi-tenant fairness scenario instead of the durability soak")
	gateBin := flag.String("gate-bin", "", "blgate binary for -cluster/-jobs (default: build cmd/blgate)")
	replicas := flag.Int("replicas", 3, "cluster size for -cluster")
	verbose := flag.Bool("v", false, "narrate the schedule and forward server stderr")
	flag.Parse()

	ctx, stop := cli.SignalContext()
	defer stop()

	var logw io.Writer = io.Discard
	if *verbose {
		logw = os.Stderr
	}
	if *bin == "" {
		dir, err := os.MkdirTemp("", "blchaos-bin-*")
		if err != nil {
			cli.Exit("blchaos", err)
		}
		defer os.RemoveAll(dir)
		built, err := chaos.BuildServe(dir)
		if err != nil {
			cli.Exit("blchaos", err)
		}
		*bin = built
		if (*clusterMode || *jobsMode || *tenantsMode) && *gateBin == "" {
			if *gateBin, err = chaos.BuildGate(dir); err != nil {
				cli.Exit("blchaos", err)
			}
		}
	}

	if *tenantsMode {
		if *gateBin == "" {
			dir, err := os.MkdirTemp("", "blchaos-bin-*")
			if err != nil {
				cli.Exit("blchaos", err)
			}
			defer os.RemoveAll(dir)
			if *gateBin, err = chaos.BuildGate(dir); err != nil {
				cli.Exit("blchaos", err)
			}
		}
		rep, err := chaos.RunTenants(ctx, chaos.TenantsConfig{
			ServeBin: *bin,
			GateBin:  *gateBin,
			Seed:     *seed,
			Log:      logw,
		})
		report(rep, err, rep == nil || len(rep.Violations) > 0, *seed)
		fmt.Fprintf(os.Stderr, "blchaos: clean tenants run: polite %d/%d ok under flood, hog %d/%d shed, %.0f%% keys remapped, %d/%d survivors warm\n",
			rep.FloodOK, rep.FloodSent, rep.HogShed, rep.HogSent,
			100*rep.RemapFraction, rep.SurvivorWarm, rep.SurvivorKeys)
		return
	}

	if *jobsMode {
		if *gateBin == "" {
			dir, err := os.MkdirTemp("", "blchaos-bin-*")
			if err != nil {
				cli.Exit("blchaos", err)
			}
			defer os.RemoveAll(dir)
			if *gateBin, err = chaos.BuildGate(dir); err != nil {
				cli.Exit("blchaos", err)
			}
		}
		rep, err := chaos.RunJobs(ctx, chaos.JobsConfig{
			ServeBin: *bin,
			GateBin:  *gateBin,
			Seed:     *seed,
			Log:      logw,
		})
		report(rep, err, rep == nil || len(rep.Violations) > 0, *seed)
		fmt.Fprintf(os.Stderr, "blchaos: clean jobs run: %d+%d shards, %d recovered + %d re-run, %d trials, %d kills, %d restart(s)\n",
			rep.SweepShards, rep.SubsetShards, rep.RecoveredShards, rep.RerunShards,
			rep.Trials, rep.ReplicaKills+rep.CoordinatorKills, rep.Restarts)
		return
	}

	if *clusterMode {
		if *gateBin == "" {
			dir, err := os.MkdirTemp("", "blchaos-bin-*")
			if err != nil {
				cli.Exit("blchaos", err)
			}
			defer os.RemoveAll(dir)
			if *gateBin, err = chaos.BuildGate(dir); err != nil {
				cli.Exit("blchaos", err)
			}
		}
		rep, err := chaos.RunCluster(ctx, chaos.ClusterConfig{
			ServeBin: *bin,
			GateBin:  *gateBin,
			Seed:     *seed,
			Duration: *duration,
			Replicas: *replicas,
			Log:      logw,
		})
		report(rep, err, rep == nil || len(rep.Violations) > 0, *seed)
		fmt.Fprintf(os.Stderr, "blchaos: clean cluster run: %d replicas, %d kills, %d requests, %d hedge wins, %d stale served, hedged trace assembled with %d spans\n",
			rep.Replicas, rep.Kills, rep.Requests, rep.HedgeWins, rep.StaleServed, rep.TraceSpans)
		return
	}

	rep, err := chaos.Run(ctx, chaos.Config{
		Bin:      *bin,
		Seed:     *seed,
		Duration: *duration,
		HitFloor: *hitFloor,
		StateDir: *stateDir,
		Log:      logw,
	})
	report(rep, err, rep == nil || len(rep.Violations) > 0, *seed)
	fmt.Fprintf(os.Stderr, "blchaos: clean run: %d rounds, %d kills, %d requests, warm hit rate %.2f\n",
		rep.Rounds, rep.Kills, rep.Requests, rep.WarmHitRate)
}

// report prints the JSON report and exits non-zero on harness errors
// or invariant violations; it returns only for a clean run.
func report(rep any, err error, violated bool, seed int64) {
	if rep != nil {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	}
	if err != nil {
		cli.Exit("blchaos", err)
	}
	if violated {
		fmt.Fprintf(os.Stderr, "blchaos: invariant violation(s); replay with -seed %d\n", seed)
		os.Exit(1)
	}
}
