// blchaos is the deterministic chaos driver for blserve: it spawns a
// real server process, replays a seeded schedule of traffic, fault
// injection (via the server's -chaos-admin /debug endpoints), hard
// kills, and restarts, and asserts the durability invariants — no torn
// snapshots, warm restarts, exclusive responses, and corruption
// counted instead of fatal. See internal/chaos for the invariants.
//
// Usage:
//
//	blchaos [-bin PATH] [-seed 1] [-duration 30s] [-hit-floor 0.5]
//	        [-state-dir DIR] [-v]
//
// With no -bin, blchaos builds cmd/blserve from the enclosing module.
// The JSON report goes to stdout; the exit status is non-zero when any
// invariant was violated. A failing schedule replays with its -seed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ballarus/internal/chaos"
	"ballarus/internal/cli"
)

func main() {
	bin := flag.String("bin", "", "blserve binary to drive (default: build cmd/blserve)")
	seed := flag.Int64("seed", 1, "schedule seed; a failing run replays with the same seed")
	duration := flag.Duration("duration", 30*time.Second, "kill-restart soak length (corruption drill runs after)")
	hitFloor := flag.Float64("hit-floor", 0.5, "minimum warm-hit fraction required after a restart")
	stateDir := flag.String("state-dir", "", "server state directory (default: a temp dir, removed afterwards)")
	verbose := flag.Bool("v", false, "narrate the schedule and forward server stderr")
	flag.Parse()

	ctx, stop := cli.SignalContext()
	defer stop()

	var logw io.Writer = io.Discard
	if *verbose {
		logw = os.Stderr
	}
	if *bin == "" {
		dir, err := os.MkdirTemp("", "blchaos-bin-*")
		if err != nil {
			cli.Exit("blchaos", err)
		}
		defer os.RemoveAll(dir)
		built, err := chaos.BuildServe(dir)
		if err != nil {
			cli.Exit("blchaos", err)
		}
		*bin = built
	}

	rep, err := chaos.Run(ctx, chaos.Config{
		Bin:      *bin,
		Seed:     *seed,
		Duration: *duration,
		HitFloor: *hitFloor,
		StateDir: *stateDir,
		Log:      logw,
	})
	if rep != nil {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	}
	if err != nil {
		cli.Exit("blchaos", err)
	}
	if len(rep.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "blchaos: %d invariant violation(s); replay with -seed %d\n",
			len(rep.Violations), rep.Seed)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "blchaos: clean run: %d rounds, %d kills, %d requests, warm hit rate %.2f\n",
		rep.Rounds, rep.Kills, rep.Requests, rep.WarmHitRate)
}
