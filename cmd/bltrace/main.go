// bltrace inspects distributed traces through a blgate gateway: it
// fetches one assembled trace (gateway request and attempt spans
// merged with every replica's stage spans) and renders it as an ASCII
// waterfall, or lists the slowest archived traces to pick a victim.
//
// Usage:
//
//	bltrace -gate http://127.0.0.1:8722 <trace-id>
//	bltrace -gate http://127.0.0.1:8722 -slowest 10
//
// The trace ID is the 16-hex value a request's X-Trace-Id response
// header carries (blgate and blserve both echo it).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"ballarus/internal/cli"
	"ballarus/internal/obs"
)

func main() {
	gate := flag.String("gate", "http://127.0.0.1:8722", "blgate base URL")
	slowest := flag.Int("slowest", 0, "list the N slowest archived traces instead of rendering one")
	width := flag.Int("width", 48, "waterfall bar width in columns")
	timeout := flag.Duration("timeout", 10*time.Second, "HTTP timeout")
	flag.Parse()

	client := &http.Client{Timeout: *timeout}
	base := strings.TrimRight(*gate, "/")
	switch {
	case *slowest > 0:
		if err := listSlowest(client, base, *slowest); err != nil {
			cli.Exit("bltrace", err)
		}
	case flag.NArg() == 1:
		if err := render(client, base, flag.Arg(0), *width); err != nil {
			cli.Exit("bltrace", err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: bltrace -gate URL <trace-id> | bltrace -gate URL -slowest N")
		os.Exit(2)
	}
}

// fetch GETs path off the gateway and decodes the JSON body into out,
// surfacing the gateway's {error, code} body on non-200s.
func fetch(client *http.Client, base, path string, out any) error {
	resp, err := client.Get(base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s (%s)", path, e.Error, e.Code)
		}
		return fmt.Errorf("%s: http %d", path, resp.StatusCode)
	}
	return json.Unmarshal(body, out)
}

// render prints one assembled trace as a waterfall.
func render(client *http.Client, base, id string, width int) error {
	var a obs.AssembledTrace
	if err := fetch(client, base, "/v1/trace/"+id, &a); err != nil {
		return err
	}
	fmt.Print(obs.RenderWaterfall(&a, width))
	return nil
}

// listSlowest prints the worst archived traces, one row per trace, so
// the ID column can feed a follow-up bltrace <id>.
func listSlowest(client *http.Client, base string, n int) error {
	var body struct {
		Traces []struct {
			ID       string `json:"id"`
			Name     string `json:"name"`
			Duration int64  `json:"duration_ns"`
			Error    string `json:"error"`
			Hedged   bool   `json:"hedged"`
			Spans    int    `json:"spans"`
		} `json:"traces"`
	}
	if err := fetch(client, base, fmt.Sprintf("/v1/trace/slowest?n=%d", n), &body); err != nil {
		return err
	}
	if len(body.Traces) == 0 {
		fmt.Println("no archived traces")
		return nil
	}
	fmt.Printf("%-16s  %-12s  %12s  %5s  %-6s  %s\n", "TRACE", "NAME", "DURATION", "SPANS", "HEDGED", "ERROR")
	for _, t := range body.Traces {
		hedged := ""
		if t.Hedged {
			hedged = "yes"
		}
		fmt.Printf("%-16s  %-12s  %12s  %5d  %-6s  %s\n",
			t.ID, t.Name, time.Duration(t.Duration).Round(time.Microsecond), t.Spans, hedged, t.Error)
	}
	return nil
}
