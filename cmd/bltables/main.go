// bltables regenerates the paper's Tables 1-7 from the benchmark suite.
//
// Usage:
//
//	bltables            # all tables (Table 4 sampled)
//	bltables -table 6   # one table
//	bltables -table 4 -exact   # the full 705,432-trial subset experiment
//	bltables -ext              # extension tables (profile estimation,
//	                           # cross-dataset profiles, ablations)
package main

import (
	"flag"
	"fmt"

	"ballarus"
	"ballarus/internal/cli"
)

func main() {
	tableN := flag.Int("table", 0, "table number (1-7); 0 = all")
	exact := flag.Bool("exact", false, "run the subset experiment exactly (Table 4)")
	trials := flag.Int("trials", 20000, "sampled subset trials for Table 4 (ignored with -exact)")
	ext := flag.Bool("ext", false, "print the extension tables instead")
	flag.Parse()

	e := ballarus.NewEvaluator()
	if *ext {
		for _, gen := range []func() (string, error){
			e.FreqTable, e.CrossProfileTable, e.DynPredTable, e.AblationTable,
		} {
			s, err := gen()
			if err != nil {
				fatal(err)
			}
			fmt.Println(s)
		}
		return
	}
	t4trials := cli.Trials(*trials, *exact)
	gens := map[int]func() (string, error){
		1: e.Table1,
		2: e.Table2,
		3: e.Table3,
		4: func() (string, error) { return e.Table4(t4trials) },
		5: e.Table5,
		6: e.Table6,
		7: e.Table7,
	}
	emit := func(n int) {
		s, err := gens[n]()
		if err != nil {
			fatal(fmt.Errorf("table %d: %w", n, err))
		}
		fmt.Println(s)
	}
	if *tableN != 0 {
		if _, ok := gens[*tableN]; !ok {
			cli.Usage("bltables [-table 1-7] [-exact] [-trials n] [-ext]")
		}
		emit(*tableN)
		return
	}
	for n := 1; n <= 7; n++ {
		emit(n)
	}
}

func fatal(err error) { cli.Exit("bltables", err) }
