// blreport regenerates every artifact of the reproduction into a
// directory: all tables (1-7 plus the extension tables) as text and every
// graph (1-13) as TSV. One command to rebuild everything a reader needs
// to check the paper-vs-measured claims in EXPERIMENTS.md.
//
// Usage:
//
//	blreport -out results/ [-exact] [-trials 20000]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ballarus"
	"ballarus/internal/cli"
)

func main() {
	out := flag.String("out", "results", "output directory")
	exact := flag.Bool("exact", false, "run the subset experiment exactly")
	trials := flag.Int("trials", 20000, "sampled subset trials (ignored with -exact)")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	t := cli.Trials(*trials, *exact)
	e := ballarus.NewEvaluator()
	start := time.Now()

	write := func(name, content string) {
		if err := cli.WriteArtifact(*out, name, content); err != nil {
			fatal(err)
		}
	}

	tables := []struct {
		name string
		gen  func() (string, error)
	}{
		{"table1.txt", e.Table1},
		{"table2.txt", e.Table2},
		{"table3.txt", e.Table3},
		{"table4.txt", func() (string, error) { return e.Table4(t) }},
		{"table5.txt", e.Table5},
		{"table6.txt", e.Table6},
		{"table7.txt", e.Table7},
		{"ext_freq.txt", e.FreqTable},
		{"ext_crossprofile.txt", e.CrossProfileTable},
		{"ext_dynpred.txt", e.DynPredTable},
		{"ext_ablations.txt", e.AblationTable},
	}
	for _, tb := range tables {
		s, err := tb.gen()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", tb.name, err))
		}
		write(tb.name, s)
	}

	for n := 1; n <= 13; n++ {
		var g interface{ TSV() string }
		var err error
		switch n {
		case 1:
			g, err = e.Graph1()
		case 2:
			g, err = e.Graph2(t)
		case 3:
			g, err = e.Graph3(t)
		case 12:
			g, err = e.Graph12(), nil
		case 13:
			g, err = e.Graph13()
		default:
			g, err = e.GraphSeq(n)
		}
		if err != nil {
			fatal(fmt.Errorf("graph %d: %w", n, err))
		}
		write(fmt.Sprintf("graph%02d.tsv", n), g.TSV())
	}
	fmt.Printf("report complete in %.1fs\n", time.Since(start).Seconds())
}

func fatal(err error) { cli.Exit("blreport", err) }
