// blc compiles and runs minic programs: the compiler driver of the
// reproduction.
//
// Usage:
//
//	blc [-dis] [-cfg] [-emit out.mira] [-layout] [-run] [-in file]
//	    [-text file] [-budget n] prog.mc|prog.mira
//
// Inputs ending in .mira are parsed as MIR assembly instead of minic.
// -dis prints the disassembly; -cfg prints Graphviz CFGs; -emit writes
// the program as MIR assembly; -layout reorders basic blocks along the
// Ball-Larus predicted paths before running; -run executes the program;
// -in feeds a whitespace-separated integer file as the input stream;
// -text feeds a raw text file as character input.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ballarus"
	"ballarus/internal/asm"
	"ballarus/internal/cfg"
	"ballarus/internal/cli"
)

func main() {
	dis := flag.Bool("dis", false, "print MIR disassembly")
	dotOut := flag.Bool("cfg", false, "print control flow graphs in Graphviz dot syntax")
	emit := flag.String("emit", "", "write the program as MIR assembly to this file")
	doLayout := flag.Bool("layout", false, "reorder blocks along predicted paths")
	optimize := flag.Bool("O", false, "run the MIR optimizer (fold, DCE, jump threading)")
	run := flag.Bool("run", true, "execute the program")
	inFile := flag.String("in", "", "integer input file (whitespace separated)")
	textFile := flag.String("text", "", "text input file (character stream)")
	budget := flag.Int64("budget", 0, "instruction budget (0 = default)")
	profileOut := flag.Bool("profile", false, "print the edge profile")
	flag.Parse()
	if flag.NArg() != 1 {
		cli.Usage("blc [flags] prog.mc|prog.mira")
	}
	ctx, stop := cli.SignalContext()
	defer stop()

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var prog *ballarus.Program
	if strings.HasSuffix(flag.Arg(0), ".mira") {
		prog, err = asm.Assemble(string(src))
	} else {
		prog, err = ballarus.CompileOpt(string(src))
	}
	if err != nil {
		fatal(err)
	}
	if *optimize {
		prog = ballarus.Optimize(prog)
	}
	if *doLayout {
		a, err := ballarus.AnalyzeCtx(ctx, prog)
		if err != nil {
			fatal(err)
		}
		prog, err = ballarus.Reorder(a, a.Predictions(ballarus.DefaultOrder))
		if err != nil {
			fatal(err)
		}
	}
	if *dis {
		fmt.Print(prog.Disasm())
	}
	if *emit != "" {
		if err := os.WriteFile(*emit, []byte(asm.Format(prog)), 0o644); err != nil {
			fatal(err)
		}
	}
	if *dotOut {
		d, err := cfg.DotAll(prog)
		if err != nil {
			fatal(err)
		}
		fmt.Print(d)
		return
	}
	if !*run {
		return
	}
	input, err := cli.InputFlags(*inFile, *textFile)
	if err != nil {
		fatal(err)
	}
	res, err := ballarus.ExecuteCtx(ctx, prog,
		ballarus.WithInput(input), ballarus.WithBudget(*budget))
	if res != nil {
		fmt.Print(res.Output)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "[%d instructions, %d dynamic branches, %.1f%% taken]\n",
		res.Steps, res.Profile.Total(), 100*ballarus.TakenRate(res.Profile))
	if *profileOut {
		for id := 0; id < res.Profile.Set.Len(); id++ {
			if res.Profile.Executed(id) == 0 {
				continue
			}
			site := res.Profile.Set.Site(id)
			fmt.Fprintf(os.Stderr, "branch %4d %s+%d: taken %d fall %d\n",
				id, prog.Procs[site.Proc].Name, site.Instr,
				res.Profile.Taken[id], res.Profile.Fall[id])
		}
	}
}

func fatal(err error) { cli.Exit("blc", err) }
