// blmetricslint validates a Prometheus text exposition: it parses the
// input strictly, runs the same lint the chaos harness applies (HELP and
// TYPE present for every sample family, metric/label name syntax,
// histogram bucket monotonicity and _sum/_count agreement), and exits
// nonzero with one line per problem if the exposition is malformed.
//
// Usage:
//
//	blmetricslint URL          scrape URL and lint the response body
//	blmetricslint -            lint stdin
//	blmetricslint [-require name]... URL
//
// -require asserts that a metric family is present with at least one
// sample, so CI catches a registry wiring regression (an endpoint that
// serves a valid-but-empty exposition) and not just syntax errors.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"ballarus/internal/cli"
	"ballarus/internal/obs"
)

// requiredList collects repeated -require flags.
type requiredList []string

func (r *requiredList) String() string     { return strings.Join(*r, ",") }
func (r *requiredList) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	var required requiredList
	flag.Var(&required, "require", "metric family that must be present with samples (repeatable)")
	timeout := flag.Duration("timeout", 10*time.Second, "scrape timeout")
	flag.Parse()
	if flag.NArg() != 1 {
		cli.Usage("blmetricslint [-require name]... <url | ->")
	}

	body, err := read(flag.Arg(0), *timeout)
	if err != nil {
		cli.Exit("blmetricslint", err)
	}

	failed := false
	for _, p := range obs.Lint(bytes.NewReader(body)) {
		fmt.Fprintln(os.Stderr, "lint:", p)
		failed = true
	}
	exp, err := obs.ParseExposition(bytes.NewReader(body))
	if err != nil {
		cli.Exit("blmetricslint", fmt.Errorf("parse: %w", err))
	}
	for _, name := range required {
		if !anySample(exp, name) {
			fmt.Fprintf(os.Stderr, "missing: required metric %s has no samples\n", name)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("blmetricslint: ok (%d families, %d samples)\n", len(exp.Types), len(exp.Samples))
}

// anySample reports whether the family has at least one sample, even a
// zero-valued one — zero counters are fine, absent families are the
// wiring bug -require exists to catch. Histograms count via their
// _count series.
func anySample(exp *obs.Exposition, name string) bool {
	for _, s := range exp.Samples {
		if s.Name == name || s.Name == name+"_count" {
			return true
		}
	}
	return false
}

// read fetches the exposition from a URL, or stdin when arg is "-".
func read(arg string, timeout time.Duration) ([]byte, error) {
	if arg == "-" {
		return io.ReadAll(os.Stdin)
	}
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(arg)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", arg, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return nil, fmt.Errorf("GET %s: Content-Type %q, want text/plain exposition", arg, ct)
	}
	return io.ReadAll(resp.Body)
}
