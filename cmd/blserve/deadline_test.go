package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"runtime"
	"strconv"
	"testing"
	"time"
)

// slowSrc runs long enough that only deadline cancellation can stop it
// inside the test's time bounds.
const slowSrc = `int main() { int i; int s = 0; for (i = 0; i < 1000000000; i++) { s += i % 7; } printi(s); return 0; }`

// postWithDeadline posts a predict request with an X-Deadline-Ms header.
func postWithDeadline(t *testing.T, url string, req predictRequest, deadline string) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-Deadline-Ms", deadline)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestDeadlineHeaderSurfaces504: a short X-Deadline-Ms must interrupt
// interpreter work and come back as 504 + Retry-After well before the
// work itself would finish — proving the propagated context reaches
// interp.Config.Interrupt — and must not leak the request's goroutines.
func TestDeadlineHeaderSurfaces504(t *testing.T) {
	ts, _ := newTestServer(t)

	// Settle the service's lazily started goroutines with one normal
	// request before taking the leak baseline.
	if resp, _ := postPredict(t, ts, predictRequest{Source: testSrc}); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup status = %d", resp.StatusCode)
	}
	baseline := runtime.NumGoroutine()

	start := time.Now()
	resp := postWithDeadline(t, ts.URL, predictRequest{Source: slowSrc, Budget: 1 << 40}, "50")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("504 missing Retry-After")
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Code != "timeout" {
		t.Fatalf("error body = %+v (decode err %v), want code \"timeout\"", e, err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to surface; cancellation is not reaching the interpreter", elapsed)
	}

	// Goroutine-leak check: the interrupted request's goroutines must
	// wind down. Poll rather than sleep — the interpreter notices the
	// interrupt at a step-check boundary, not instantly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDeadlineHeaderGenerous: a deadline the work easily beats changes
// nothing.
func TestDeadlineHeaderGenerous(t *testing.T) {
	ts, _ := newTestServer(t)
	resp := postWithDeadline(t, ts.URL, predictRequest{Source: testSrc}, "30000")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
}

// TestDeadlineHeaderMalformed: garbage and non-positive values are the
// client's fault.
func TestDeadlineHeaderMalformed(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, bad := range []string{"soon", "-5", "0", "1.5"} {
		resp := postWithDeadline(t, ts.URL, predictRequest{Source: testSrc}, bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("X-Deadline-Ms %q: status = %d, want 400", bad, resp.StatusCode)
		}
		var e errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Code != "invalid_input" {
			t.Errorf("X-Deadline-Ms %q: code = %q, want invalid_input", bad, e.Code)
		}
		resp.Body.Close()
	}
	// Sanity: the same values parse as rejected by the middleware's rule.
	if v, err := strconv.ParseInt("50", 10, 64); err != nil || v != 50 {
		t.Fatal("strconv baseline broken")
	}
}
