package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"ballarus/internal/jobs"
)

// jobSubmitRequest is the POST /v1/jobs body.
type jobSubmitRequest struct {
	// Kind is "sweep" (all 5040 orders x every benchmark) or "subsets"
	// (the exact C(n,k) best-order experiment).
	Kind string `json:"kind"`
	// Benches defaults to the paper's 22 (matrix300 excluded).
	Benches []string `json:"benches,omitempty"`
	// K is the subset size for "subsets" jobs (default n/2).
	K int `json:"k,omitempty"`
	// ShardSize overrides the units per shard: order indices for
	// "sweep", low masks for "subsets".
	ShardSize int `json:"shard_size,omitempty"`
}

// jobResultResponse is the GET /v1/jobs/{id}?result=1 body.
type jobResultResponse struct {
	Status *jobs.Status `json:"status"`
	Result *jobs.Result `json:"result"`
}

// requireJobs gates the job endpoints on the engine being enabled.
func (s *server) requireJobs(w http.ResponseWriter) bool {
	if s.eng == nil {
		httpError(w, http.StatusNotFound, "invalid_input",
			errors.New("jobs are disabled on this replica (start blserve with -jobs)"))
		return false
	}
	return true
}

// handleJobSubmit accepts a batch job. Submission is idempotent on the
// canonical spec hash: resubmitting a live or completed job returns its
// current status.
func (s *server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.requireJobs(w) {
		return
	}
	var req jobSubmitRequest
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid_input", fmt.Errorf("bad request body: %w", err))
		return
	}
	st, err := s.eng.SubmitCtx(r.Context(), jobs.Spec{
		Kind:      req.Kind,
		Benches:   req.Benches,
		K:         req.K,
		ShardSize: req.ShardSize,
	})
	if err != nil {
		status, code := statusFor(r, err)
		httpError(w, status, code, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

// handleJobList lists every job's status in submission order.
func (s *server) handleJobList(w http.ResponseWriter, r *http.Request) {
	if !s.requireJobs(w) {
		return
	}
	list := s.eng.List()
	if list == nil {
		list = []*jobs.Status{}
	}
	writeJSON(w, http.StatusOK, list)
}

// handleJobGet returns one job's status; ?result=1 additionally inlines
// the merged artifact once the job is done.
func (s *server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if !s.requireJobs(w) {
		return
	}
	id := r.PathValue("id")
	st, ok := s.eng.Status(id)
	if !ok {
		httpError(w, http.StatusNotFound, "invalid_input", fmt.Errorf("no job %q", id))
		return
	}
	if r.URL.Query().Get("result") == "" {
		writeJSON(w, http.StatusOK, st)
		return
	}
	res, ok := s.eng.Result(id)
	if !ok {
		httpError(w, http.StatusConflict, "invalid_input",
			fmt.Errorf("job %s is %s; results exist only for done jobs", id, st.State))
		return
	}
	writeJSON(w, http.StatusOK, jobResultResponse{Status: st, Result: res})
}

// handleJobCancel stops a running job (terminal jobs are left as they
// are, and report their final status).
func (s *server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	if !s.requireJobs(w) {
		return
	}
	id := r.PathValue("id")
	st, ok := s.eng.Cancel(id)
	if !ok {
		httpError(w, http.StatusNotFound, "invalid_input", fmt.Errorf("no job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleShard executes one experiment shard through the service's shard
// stage (breaker-guarded, cached, metered — see Service.Shard). The
// body is decoded and canonically re-marshaled so equivalent requests
// share one cache entry regardless of field order or whitespace.
func (s *server) handleShard(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, "invalid_input", err)
		return
	}
	var req jobs.ShardRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid_input", fmt.Errorf("bad shard request: %w", err))
		return
	}
	payload, err := json.Marshal(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid_input", err)
		return
	}
	out, err := s.svc.Shard(r.Context(), payload)
	if err != nil {
		status, code := statusFor(r, err)
		if status == http.StatusTooManyRequests || status == http.StatusGatewayTimeout {
			w.Header().Set("Retry-After", "1")
		}
		httpError(w, status, code, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if out.Cached {
		w.Header().Set("X-Shard-Cache", "hit")
	}
	w.WriteHeader(http.StatusOK)
	w.Write(out.Payload)
}
