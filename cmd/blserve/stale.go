package main

import (
	"container/list"
	"encoding/json"
	"errors"
	"sync"

	"ballarus"
)

// staleCache keeps the last successful response per distinct request so
// the server can degrade gracefully: while the service sheds load, a
// stale result with "degraded": true beats a bare 429. Entries are
// keyed by the service's canonical request key (Service.RequestKey), so
// equivalent requests — a benchmark by name vs. its source text,
// omitted vs. explicit defaults — share one entry.
type staleCache struct {
	mu    sync.Mutex
	max   int
	m     map[string]*list.Element
	order *list.List // of staleEntry, front = most recently used
}

type staleEntry struct {
	key  string
	resp predictResponse
}

func newStaleCache(max int) *staleCache {
	return &staleCache{max: max, m: map[string]*list.Element{}, order: list.New()}
}

func (c *staleCache) get(key string) (predictResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		return predictResponse{}, false
	}
	c.order.MoveToFront(e)
	return e.Value.(*staleEntry).resp, true
}

func (c *staleCache) put(key string, resp predictResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		e.Value.(*staleEntry).resp = resp
		c.order.MoveToFront(e)
		return
	}
	c.m[key] = c.order.PushFront(&staleEntry{key: key, resp: resp})
	for c.order.Len() > c.max {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.m, back.Value.(*staleEntry).key)
	}
}

// collect snapshots the cache oldest-first for the service's durable
// store, so restore replays in insertion order and LRU position is
// roughly preserved.
func (c *staleCache) collect() []ballarus.DurableEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ballarus.DurableEntry, 0, c.order.Len())
	for e := c.order.Back(); e != nil; e = e.Prev() {
		se := e.Value.(*staleEntry)
		payload, err := json.Marshal(se.resp)
		if err != nil {
			continue
		}
		out = append(out, ballarus.DurableEntry{Key: se.key, Payload: payload})
	}
	return out
}

// restore loads one snapshot entry back into the cache. An undecodable
// payload is data loss, not a boot failure: the error only bumps the
// recovery skip counter.
func (c *staleCache) restore(e ballarus.DurableEntry) error {
	if e.Key == "" {
		return errors.New("stale entry without a key")
	}
	var resp predictResponse
	if err := json.Unmarshal(e.Payload, &resp); err != nil {
		return err
	}
	resp.Degraded = false
	c.put(e.Key, resp)
	return nil
}
