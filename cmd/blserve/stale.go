package main

import (
	"container/list"
	"crypto/sha256"
	"encoding/json"
	"sync"
)

// staleCache keeps the last successful response per distinct request so
// the server can degrade gracefully: while the service sheds load, a
// stale result with "degraded": true beats a bare 429.
type staleCache struct {
	mu    sync.Mutex
	max   int
	m     map[string]*list.Element
	order *list.List // of staleEntry, front = most recently used
}

type staleEntry struct {
	key  string
	resp predictResponse
}

func newStaleCache(max int) *staleCache {
	return &staleCache{max: max, m: map[string]*list.Element{}, order: list.New()}
}

func (c *staleCache) get(key string) (predictResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		return predictResponse{}, false
	}
	c.order.MoveToFront(e)
	return e.Value.(*staleEntry).resp, true
}

func (c *staleCache) put(key string, resp predictResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		e.Value.(*staleEntry).resp = resp
		c.order.MoveToFront(e)
		return
	}
	c.m[key] = c.order.PushFront(&staleEntry{key: key, resp: resp})
	for c.order.Len() > c.max {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.m, back.Value.(*staleEntry).key)
	}
}

// staleKey derives the cache key from the fields that determine the
// result. IncludeOutput only shapes the response body, not the result,
// so requests differing only in it share an entry.
func staleKey(req predictRequest) string {
	req.IncludeOutput = false
	b, _ := json.Marshal(req)
	sum := sha256.Sum256(b)
	return string(sum[:])
}
