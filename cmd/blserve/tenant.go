package main

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"ballarus"
)

// withTenant attaches the request's tenant identity (the X-Tenant-Id
// header) to the context so the service's per-tenant quotas and
// fairness accounting see it. Requests without the header belong to
// the default tenant; oversized identities are rejected at the edge
// before they can become metric labels or registry keys.
func (s *server) withTenant(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if id := r.Header.Get("X-Tenant-Id"); id != "" {
			if len(id) > ballarus.TenantMaxIDLen {
				httpError(w, http.StatusBadRequest, "invalid_input",
					fmt.Errorf("X-Tenant-Id longer than %d bytes", ballarus.TenantMaxIDLen))
				return
			}
			r = r.WithContext(ballarus.TenantContext(r.Context(), id))
		}
		next.ServeHTTP(w, r)
	})
}

// setQuotaHeaders stamps the per-tenant rate-limit headers on a quota
// rejection and reports whether err was one. X-RateLimit-Limit is the
// gateway's discriminator between a per-tenant quota 429 (terminal —
// retrying or hedging it only amplifies a deterministic rejection) and
// a global-overload 429 (retryable), so it is set here and nowhere
// else.
func setQuotaHeaders(w http.ResponseWriter, err error) bool {
	var qe *ballarus.TenantQuotaError
	if !errors.As(err, &qe) {
		return false
	}
	secs := int(math.Ceil(qe.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	h := w.Header()
	h.Set("Retry-After", strconv.Itoa(secs))
	h.Set("X-RateLimit-Limit", strconv.Itoa(qe.Limit))
	h.Set("X-RateLimit-Remaining", strconv.Itoa(qe.Remaining))
	h.Set("X-RateLimit-Reset", strconv.Itoa(secs))
	return true
}

// parseTenantQuota parses one -tenant-quota override of the form
//
//	id=rate[,burst[,inflight[,weight]]]
//
// e.g. "hog=2", "gold=200,400,0,3". Omitted fields take the tenant
// defaults (burst = max(rate,1), inflight unlimited, weight 1).
func parseTenantQuota(v string) (string, ballarus.TenantLimits, error) {
	bad := func(why string) (string, ballarus.TenantLimits, error) {
		return "", ballarus.TenantLimits{}, fmt.Errorf(
			"bad -tenant-quota %q: %s (want id=rate[,burst[,inflight[,weight]]])", v, why)
	}
	id, spec, ok := strings.Cut(v, "=")
	id = strings.TrimSpace(id)
	if !ok || id == "" {
		return bad("missing tenant id")
	}
	if len(id) > ballarus.TenantMaxIDLen {
		return bad(fmt.Sprintf("id longer than %d bytes", ballarus.TenantMaxIDLen))
	}
	parts := strings.Split(spec, ",")
	if len(parts) > 4 {
		return bad("more than four fields")
	}
	var lim ballarus.TenantLimits
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		f, err := strconv.ParseFloat(p, 64)
		if err != nil || f < 0 {
			return bad(fmt.Sprintf("field %d is not a non-negative number", i+1))
		}
		switch i {
		case 0:
			lim.Rate = f
		case 1:
			lim.Burst = f
		case 2:
			lim.MaxInFlight = int(f)
		case 3:
			lim.Weight = f
		}
	}
	return id, lim, nil
}
