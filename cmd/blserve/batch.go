package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"ballarus"
	"ballarus/internal/cli"
)

// defaultBatchMax bounds POST /v1/batch item counts unless -batch-max
// overrides it.
const defaultBatchMax = 64

// batchRequest is the POST /v1/batch body: N predict/compare items
// admitted as one unit against the tenant's quota.
type batchRequest struct {
	Items []batchItemRequest `json:"items"`
}

// batchItemRequest is one batch element; exactly one of Predict or
// Compare must be set.
type batchItemRequest struct {
	Predict *predictRequest `json:"predict,omitempty"`
	Compare *compareRequest `json:"compare,omitempty"`
}

// batchItemResponse is one element's outcome: a predict or compare
// result, or the item's own classified error. The batch has partial-
// result semantics — one bad item never voids its neighbours.
type batchItemResponse struct {
	Predict *predictResponse `json:"predict,omitempty"`
	Compare *compareResponse `json:"compare,omitempty"`
	Error   string           `json:"error,omitempty"`
	Code    string           `json:"code,omitempty"`
}

// batchResponse is the POST /v1/batch reply.
type batchResponse struct {
	Items         []batchItemResponse `json:"items"`
	Succeeded     int                 `json:"succeeded"`
	Failed        int                 `json:"failed"`
	ElapsedMillis float64             `json:"elapsed_ms"`
}

// handleBatch serves POST /v1/batch. The whole batch is admitted
// against the tenant's quota as a unit (all N tokens or none — a quota
// rejection is a single 429 with X-RateLimit-* headers and no work
// done), then items fan through the same single-flight caches as
// single requests with per-item error reporting. Batch results bypass
// the stale-response brownout cache: degradation stays a single-
// request affordance.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid_input", fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Items) == 0 {
		httpError(w, http.StatusBadRequest, "invalid_input", fmt.Errorf("batch needs at least one item"))
		return
	}
	if len(req.Items) > s.batchMax {
		httpError(w, http.StatusBadRequest, "invalid_input",
			fmt.Errorf("batch of %d items exceeds the %d-item limit", len(req.Items), s.batchMax))
		return
	}

	// Items that fail wire-level conversion (a bad heuristic order) are
	// passed through empty so the service still charges and counts them,
	// then their slot is overwritten with the real parse error below.
	items := make([]ballarus.BatchItem, len(req.Items))
	convErr := make([]error, len(req.Items))
	for i, it := range req.Items {
		if it.Predict != nil {
			pr, err := toPredictReq(*it.Predict)
			if err != nil {
				convErr[i] = err
				continue
			}
			items[i].Predict = &pr
		}
		if it.Compare != nil {
			cr, err := toCompareReq(*it.Compare)
			if err != nil {
				convErr[i] = err
				continue
			}
			items[i].Compare = &cr
		}
	}

	out, err := s.svc.Batch(r.Context(), items)
	if err != nil {
		status, code := statusFor(r, err)
		if !setQuotaHeaders(w, err) &&
			(status == http.StatusTooManyRequests || status == http.StatusGatewayTimeout) {
			w.Header().Set("Retry-After", "1")
		}
		httpError(w, status, code, err)
		return
	}

	resp := batchResponse{
		Items:         make([]batchItemResponse, len(out.Items)),
		Succeeded:     out.Succeeded,
		Failed:        out.Failed,
		ElapsedMillis: float64(out.Elapsed) / float64(time.Millisecond),
	}
	for i, ir := range out.Items {
		switch {
		case convErr[i] != nil:
			resp.Items[i] = batchItemResponse{Error: convErr[i].Error(), Code: "invalid_input"}
		case ir.Err != nil:
			_, code := statusFor(r, ir.Err)
			resp.Items[i] = batchItemResponse{Error: ir.Err.Error(), Code: code}
		case ir.Predict != nil:
			pr := toPredictResp(ir.Predict, req.Items[i].Predict.IncludeOutput)
			resp.Items[i].Predict = &pr
		case ir.Compare != nil:
			cr := toCompareResp(ir.Compare, req.Items[i].Compare.IncludePerBranch)
			resp.Items[i].Compare = &cr
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// toPredictReq maps the wire predict body onto the service request.
func toPredictReq(req predictRequest) (ballarus.PredictRequest, error) {
	order, err := cli.OrderFlag(req.Order)
	if err != nil {
		return ballarus.PredictRequest{}, err
	}
	return ballarus.PredictRequest{
		Source:    req.Source,
		Benchmark: req.Benchmark,
		Dataset:   req.Dataset,
		Optimize:  req.Optimize,
		Order:     order,
		Input:     req.Input,
		Budget:    req.Budget,
		Seed:      req.Seed,
	}, nil
}

// toCompareReq maps the wire compare body onto the service request.
func toCompareReq(req compareRequest) (ballarus.CompareRequest, error) {
	order, err := cli.OrderFlag(req.Order)
	if err != nil {
		return ballarus.CompareRequest{}, err
	}
	return ballarus.CompareRequest{
		Request: ballarus.PredictRequest{
			Source:    req.Source,
			Benchmark: req.Benchmark,
			Dataset:   req.Dataset,
			Optimize:  req.Optimize,
			Order:     order,
			Input:     req.Input,
			Budget:    req.Budget,
			Seed:      req.Seed,
		},
		Predictors:     req.Predictors,
		H2PMinExecuted: req.H2PMinExecuted,
	}, nil
}

// toPredictResp maps a service result onto the wire response,
// withholding the program output unless the item asked for it.
func toPredictResp(res *ballarus.PredictResult, includeOutput bool) predictResponse {
	resp := predictResponse{
		Name:            res.Name,
		StaticBranches:  res.StaticBranches,
		DynamicBranches: res.DynamicBranches,
		Steps:           res.Steps,
		ExitCode:        res.ExitCode,
		Heuristic:       toRate(res.Heuristic),
		Vote:            toRate(res.Vote),
		LoopRand:        toRate(res.LoopRand),
		BTFNT:           toRate(res.BTFNT),
		ProgramCached:   res.ProgramCached,
		AnalysisCached:  res.AnalysisCached,
		RunCached:       res.RunCached,
		ElapsedMillis:   float64(res.Elapsed) / float64(time.Millisecond),
		Output:          res.Output,
	}
	if !includeOutput {
		resp.Output = ""
	}
	return resp
}

// toCompareResp maps a tournament result onto the wire response,
// dropping the per-branch tallies unless the item asked for them.
func toCompareResp(res *ballarus.CompareResult, includePerBranch bool) compareResponse {
	resp := compareResponse{
		Name:            res.Name,
		StaticBranches:  res.StaticBranches,
		DynamicBranches: res.DynamicBranches,
		Steps:           res.Steps,
		Predictors:      res.Predictors,
		H2P:             res.H2P,
		ProgramCached:   res.ProgramCached,
		AnalysisCached:  res.AnalysisCached,
		CompareCached:   res.CompareCached,
		ElapsedMillis:   float64(res.Elapsed) / float64(time.Millisecond),
	}
	if !includePerBranch {
		scores := make([]ballarus.PredictorScore, len(resp.Predictors))
		copy(scores, resp.Predictors)
		for i := range scores {
			scores[i].PerBranch = nil
		}
		resp.Predictors = scores
	}
	return resp
}
