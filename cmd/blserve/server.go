package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"ballarus"
	"ballarus/internal/cli"
	"ballarus/internal/profile"
)

// predictRequest is the POST /v1/predict body.
type predictRequest struct {
	// Exactly one of Source (minic source text) or Benchmark (suite
	// benchmark name) must be set.
	Source    string `json:"source,omitempty"`
	Benchmark string `json:"benchmark,omitempty"`
	Dataset   int    `json:"dataset,omitempty"`
	// Order is a heuristic priority order like
	// "Point+Call+Opcode+Return+Store+Loop+Guard"; empty means the
	// paper's default.
	Order    string  `json:"order,omitempty"`
	Optimize bool    `json:"optimize,omitempty"`
	Input    []int64 `json:"input,omitempty"`
	Budget   int64   `json:"budget,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	// IncludeOutput echoes the program's stdout in the response.
	IncludeOutput bool `json:"include_output,omitempty"`
}

// rateJSON mirrors profile.Rate with explicit field names.
type rateJSON struct {
	MissPct    float64 `json:"miss_pct"`
	PerfectPct float64 `json:"perfect_pct"`
	Dynamic    int64   `json:"dynamic"`
	Display    string  `json:"display"` // the paper's "26/10" notation
}

func toRate(r profile.Rate) rateJSON {
	return rateJSON{MissPct: r.Pred, PerfectPct: r.Perfect, Dynamic: r.Dyn, Display: r.String()}
}

// predictResponse is the POST /v1/predict reply.
type predictResponse struct {
	Name            string   `json:"name"`
	StaticBranches  int      `json:"static_branches"`
	DynamicBranches int64    `json:"dynamic_branches"`
	Steps           int64    `json:"steps"`
	ExitCode        int64    `json:"exit_code"`
	Heuristic       rateJSON `json:"heuristic"`
	Vote            rateJSON `json:"vote"`
	LoopRand        rateJSON `json:"loop_rand"`
	BTFNT           rateJSON `json:"btfnt"`
	ProgramCached   bool     `json:"program_cached"`
	AnalysisCached  bool     `json:"analysis_cached"`
	RunCached       bool     `json:"run_cached"`
	ElapsedMillis   float64  `json:"elapsed_ms"`
	Output          string   `json:"output,omitempty"`
}

type server struct {
	svc     *ballarus.Service
	maxBody int64
}

// newHandler builds the blserve HTTP API over a prediction service.
func newHandler(svc *ballarus.Service) http.Handler {
	s := &server{svc: svc, maxBody: 4 << 20}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	order, err := cli.OrderFlag(req.Order)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.svc.Predict(r.Context(), ballarus.PredictRequest{
		Source:    req.Source,
		Benchmark: req.Benchmark,
		Dataset:   req.Dataset,
		Optimize:  req.Optimize,
		Order:     order,
		Input:     req.Input,
		Budget:    req.Budget,
		Seed:      req.Seed,
	})
	if err != nil {
		httpError(w, statusFor(r, err), err)
		return
	}
	resp := predictResponse{
		Name:            res.Name,
		StaticBranches:  res.StaticBranches,
		DynamicBranches: res.DynamicBranches,
		Steps:           res.Steps,
		ExitCode:        res.ExitCode,
		Heuristic:       toRate(res.Heuristic),
		Vote:            toRate(res.Vote),
		LoopRand:        toRate(res.LoopRand),
		BTFNT:           toRate(res.BTFNT),
		ProgramCached:   res.ProgramCached,
		AnalysisCached:  res.AnalysisCached,
		RunCached:       res.RunCached,
		ElapsedMillis:   float64(res.Elapsed) / float64(time.Millisecond),
	}
	if req.IncludeOutput {
		resp.Output = res.Output
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.Stats())
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// statusFor maps a pipeline error to an HTTP status: client cancellation
// propagates as 499-style 408, timeouts as 503 when the server gave up,
// and anything about the request itself as 400.
func statusFor(r *http.Request, err error) int {
	switch {
	case r.Context().Err() != nil:
		return http.StatusRequestTimeout
	case errors.Is(err, ballarus.ErrServiceBusy),
		errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
