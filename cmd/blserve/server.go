package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ballarus"
	"ballarus/internal/jobs"
	"ballarus/internal/obs"
	"ballarus/internal/profile"
)

// predictRequest is the POST /v1/predict body.
type predictRequest struct {
	// Exactly one of Source (minic source text) or Benchmark (suite
	// benchmark name) must be set.
	Source    string `json:"source,omitempty"`
	Benchmark string `json:"benchmark,omitempty"`
	Dataset   int    `json:"dataset,omitempty"`
	// Order is a heuristic priority order like
	// "Point+Call+Opcode+Return+Store+Loop+Guard"; empty means the
	// paper's default.
	Order    string  `json:"order,omitempty"`
	Optimize bool    `json:"optimize,omitempty"`
	Input    []int64 `json:"input,omitempty"`
	Budget   int64   `json:"budget,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	// IncludeOutput echoes the program's stdout in the response.
	IncludeOutput bool `json:"include_output,omitempty"`
}

// rateJSON mirrors profile.Rate with explicit field names.
type rateJSON struct {
	MissPct    float64 `json:"miss_pct"`
	PerfectPct float64 `json:"perfect_pct"`
	Dynamic    int64   `json:"dynamic"`
	Display    string  `json:"display"` // the paper's "26/10" notation
}

func toRate(r profile.Rate) rateJSON {
	return rateJSON{MissPct: r.Pred, PerfectPct: r.Perfect, Dynamic: r.Dyn, Display: r.String()}
}

// predictResponse is the POST /v1/predict reply.
type predictResponse struct {
	Name            string   `json:"name"`
	StaticBranches  int      `json:"static_branches"`
	DynamicBranches int64    `json:"dynamic_branches"`
	Steps           int64    `json:"steps"`
	ExitCode        int64    `json:"exit_code"`
	Heuristic       rateJSON `json:"heuristic"`
	Vote            rateJSON `json:"vote"`
	LoopRand        rateJSON `json:"loop_rand"`
	BTFNT           rateJSON `json:"btfnt"`
	ProgramCached   bool     `json:"program_cached"`
	AnalysisCached  bool     `json:"analysis_cached"`
	RunCached       bool     `json:"run_cached"`
	// Degraded marks a stale result served from the server's last-known-
	// good cache because the service is currently shedding this request
	// (open circuit breaker or full queue).
	Degraded      bool    `json:"degraded,omitempty"`
	ElapsedMillis float64 `json:"elapsed_ms"`
	Output        string  `json:"output,omitempty"`
}

// compareRequest is the POST /v1/compare body: the predict inputs plus
// the tournament's dynamic backend selection.
type compareRequest struct {
	Source    string  `json:"source,omitempty"`
	Benchmark string  `json:"benchmark,omitempty"`
	Dataset   int     `json:"dataset,omitempty"`
	Order     string  `json:"order,omitempty"`
	Optimize  bool    `json:"optimize,omitempty"`
	Input     []int64 `json:"input,omitempty"`
	Budget    int64   `json:"budget,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
	// Predictors names the dynamic backends to race (dynpred registry
	// names, e.g. "gshare"); empty means every registered backend.
	Predictors []string `json:"predictors,omitempty"`
	// H2PMinExecuted overrides the minimum executions a branch needs to
	// be classified hard-to-predict (0 = default, 32).
	H2PMinExecuted int64 `json:"h2p_min_executed,omitempty"`
	// IncludePerBranch echoes each entrant's per-branch tallies; off by
	// default because the arrays scale with the program's branch count.
	IncludePerBranch bool `json:"include_per_branch,omitempty"`
}

// compareResponse is the POST /v1/compare reply.
type compareResponse struct {
	Name            string `json:"name"`
	StaticBranches  int    `json:"static_branches"`
	DynamicBranches int64  `json:"dynamic_branches"`
	Steps           int64  `json:"steps"`
	// Predictors scores every entrant — "ballarus-heuristics" and
	// "perfect" plus each requested dynamic backend — sorted by name.
	Predictors []ballarus.PredictorScore `json:"predictors"`
	// H2P lists the hard-to-predict branches by verdict: static_beaten
	// (defeat the heuristics, fall to history) and history_beaten (the
	// converse).
	H2P            ballarus.H2PClassification `json:"h2p"`
	ProgramCached  bool                       `json:"program_cached"`
	AnalysisCached bool                       `json:"analysis_cached"`
	CompareCached  bool                       `json:"compare_cached"`
	ElapsedMillis  float64                    `json:"elapsed_ms"`
}

// errorResponse is the JSON body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
	// Code is the machine-readable taxonomy kind: invalid_input,
	// resource_exhausted, overload, timeout, client_canceled, internal.
	Code string `json:"code"`
}

type server struct {
	svc     *ballarus.Service
	maxBody int64
	// batchMax bounds POST /v1/batch item counts.
	batchMax int
	stale    *staleCache
	// archive tail-samples completed request traces (always-keep for
	// errors/hedges/breakers/slow requests) and rides the durable
	// snapshot, so the interesting traces survive a crash.
	archive *obs.Archive
	// eng is the batch-job coordinator; nil unless -jobs is set. The
	// /v1/shard execution endpoint works either way.
	eng        *jobs.Engine
	instanceID string
	// draining flips once at shutdown: new API requests are refused
	// with 503 + Connection: close so load balancers fail this replica
	// fast while in-flight work finishes.
	draining atomic.Bool
}

// staleSection is the snapshot section holding the server's
// last-known-good response cache.
const staleSection = "stale"

// traceSection is the snapshot section holding the tail-sampled trace
// archive.
const traceSection = "traces"

// newServer builds the blserve server over a prediction service with a
// default-policy trace archive.
func newServer(svc *ballarus.Service) *server {
	return newServerWithArchive(svc, obs.NewArchive(obs.ArchivePolicy{}))
}

// newServerWithArchive builds the blserve server over a prediction
// service, attaches the trace archive to the service tracer, and
// registers the stale-response cache and the archive as durable
// snapshot sections (no-ops when the service has no durable store).
func newServerWithArchive(svc *ballarus.Service, archive *obs.Archive) *server {
	s := &server{svc: svc, maxBody: 4 << 20, batchMax: defaultBatchMax,
		stale: newStaleCache(256), archive: archive}
	svc.Tracer().Attach(archive)
	archive.Register(svc.Metrics())
	svc.RegisterDurableSection(staleSection, ballarus.DurableSection{
		Collect: s.stale.collect,
		Restore: s.stale.restore,
	})
	svc.RegisterDurableSection(traceSection, ballarus.DurableSection{
		Collect: s.collectTraces,
		Restore: s.restoreTrace,
	})
	return s
}

// collectTraces snapshots the trace archive for the durable store,
// oldest first so restore preserves ring order.
func (s *server) collectTraces() []ballarus.DurableEntry {
	snaps := s.archive.Snapshot()
	out := make([]ballarus.DurableEntry, 0, len(snaps))
	for i, b := range snaps {
		out = append(out, ballarus.DurableEntry{Key: fmt.Sprintf("t%06d", i), Payload: b})
	}
	return out
}

// restoreTrace loads one archived trace back; a corrupt payload loses
// that trace, nothing more.
func (s *server) restoreTrace(e ballarus.DurableEntry) error {
	return s.archive.Load(e.Payload)
}

// handler builds the HTTP API, wrapped in the tracing/metrics
// middleware. admin additionally exposes the /debug chaos endpoints
// (fault injection, snapshot triggering) and net/http/pprof profiling —
// only ever enable it for harness-driven test processes or trusted
// operator ports.
func (s *server) handler(admin bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("POST /v1/compare", s.handleCompare)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/shard", s.handleShard)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	if admin {
		mux.HandleFunc("POST /debug/fault", s.handleFault)
		mux.HandleFunc("POST /debug/clearfaults", s.handleClearFaults)
		mux.HandleFunc("POST /debug/snapshot", s.handleSnapshot)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s.instrument(s.drainGate(s.withDeadline(s.withTenant(mux))))
}

// startDraining begins refusing new API requests. Idempotent.
func (s *server) startDraining() {
	s.draining.Store(true)
}

// drainGate refuses new requests with 503 + Connection: close once the
// server is draining. Observability stays up — /metrics and the /debug
// endpoints keep answering so operators can watch the drain — but the
// API surface (including /healthz, deliberately, so gateway probes
// mark this replica down immediately) goes dark.
func (s *server) drainGate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() && r.URL.Path != "/metrics" && !strings.HasPrefix(r.URL.Path, "/debug/") {
			w.Header().Set("Connection", "close")
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, "draining",
				errors.New("server is draining; connection will be closed"))
			return
		}
		next.ServeHTTP(w, r)
	})
}

// withDeadline stamps every response with this replica's identity and
// honors the X-Deadline-Ms request header: the client's remaining
// deadline, in milliseconds, relative to arrival. The bound context
// flows through the service into interp.Config.Interrupt, so an
// expired deadline actually stops interpreter work instead of merely
// abandoning it.
func (s *server) withDeadline(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.instanceID != "" {
			w.Header().Set("X-Instance-Id", s.instanceID)
		}
		if h := r.Header.Get("X-Deadline-Ms"); h != "" {
			ms, err := strconv.ParseInt(h, 10, 64)
			if err != nil || ms <= 0 {
				httpError(w, http.StatusBadRequest, "invalid_input",
					fmt.Errorf("bad X-Deadline-Ms %q: want a positive integer", h))
				return
			}
			ctx, cancel := context.WithTimeout(r.Context(), time.Duration(ms)*time.Millisecond)
			defer cancel()
			r = r.WithContext(ctx)
		}
		next.ServeHTTP(w, r)
	})
}

// newHandler builds the public blserve HTTP API over a prediction
// service.
func newHandler(svc *ballarus.Service) http.Handler {
	return newServer(svc).handler(false)
}

func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid_input", fmt.Errorf("bad request body: %w", err))
		return
	}
	preq, err := toPredictReq(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid_input", err)
		return
	}
	// The stale cache is keyed by the service's canonical content hash,
	// so equivalent requests share one entry. A request that fails to
	// resolve has no key (and Predict will report the same failure).
	key, keyErr := s.svc.RequestKey(preq)
	res, err := s.svc.Predict(r.Context(), preq)
	if err != nil {
		status, code := statusFor(r, err)
		// A per-tenant quota rejection is deterministic for this tenant:
		// answer with its backoff headers, and never mask it with a stale
		// result — the tenant must see that it is over quota.
		if setQuotaHeaders(w, err) {
			httpError(w, status, code, err)
			return
		}
		// Graceful degradation: while the service is shedding (open
		// breaker, full queue), a previously computed result for the
		// identical request is better than a 429.
		if status == http.StatusTooManyRequests && keyErr == nil {
			if cached, ok := s.stale.get(key); ok {
				cached.Degraded = true
				if !req.IncludeOutput {
					cached.Output = ""
				}
				writeJSON(w, http.StatusOK, cached)
				return
			}
		}
		if status == http.StatusTooManyRequests || status == http.StatusGatewayTimeout {
			w.Header().Set("Retry-After", "1")
		}
		httpError(w, status, code, err)
		return
	}
	resp := toPredictResp(res, true)
	if keyErr == nil {
		s.stale.put(key, resp)
	}
	if !req.IncludeOutput {
		resp.Output = ""
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCompare serves the static-vs-dynamic tournament. Identical
// requests are deduplicated and cached inside the service (the compare
// stage's content-hash cache), so no stale-response layer is needed
// here; shed requests surface as 429 for the gateway to hedge or retry.
func (s *server) handleCompare(w http.ResponseWriter, r *http.Request) {
	var req compareRequest
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid_input", fmt.Errorf("bad request body: %w", err))
		return
	}
	creq, err := toCompareReq(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid_input", err)
		return
	}
	res, err := s.svc.Compare(r.Context(), creq)
	if err != nil {
		status, code := statusFor(r, err)
		if !setQuotaHeaders(w, err) &&
			(status == http.StatusTooManyRequests || status == http.StatusGatewayTimeout) {
			w.Header().Set("Retry-After", "1")
		}
		httpError(w, status, code, err)
		return
	}
	writeJSON(w, http.StatusOK, toCompareResp(res, req.IncludePerBranch))
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.Stats())
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// statusFor maps a classified pipeline error to its documented HTTP
// status and machine-readable code (see docs/API.md):
//
//	400 invalid_input       the request is at fault
//	408 client_canceled     the client went away mid-request
//	422 resource_exhausted  the instruction budget was blown
//	429 quota_exceeded      THIS tenant is over its rate/concurrency
//	                        quota (X-RateLimit-* headers attached)
//	429 overload            shed load: full queue, open breaker, or a
//	                        tenant over its fair share under saturation
//	504 timeout             the server-side deadline expired
//	500 internal            bugs and recovered panics
func statusFor(r *http.Request, err error) (int, string) {
	switch {
	case r.Context().Err() != nil && errors.Is(err, context.Canceled):
		return http.StatusRequestTimeout, "client_canceled"
	case errors.Is(err, ballarus.ErrInvalidInput):
		return http.StatusBadRequest, "invalid_input"
	case errors.Is(err, ballarus.ErrResourceExhausted):
		return http.StatusUnprocessableEntity, "resource_exhausted"
	case errors.Is(err, ballarus.ErrQuotaExceeded):
		return http.StatusTooManyRequests, "quota_exceeded"
	case errors.Is(err, ballarus.ErrOverload):
		return http.StatusTooManyRequests, "overload"
	case errors.Is(err, ballarus.ErrTimeout):
		return http.StatusGatewayTimeout, "timeout"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error(), Code: code})
}
