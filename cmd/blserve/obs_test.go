package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"ballarus"
	"ballarus/internal/cli"
	"ballarus/internal/obs"
)

var traceIDRe = regexp.MustCompile(`^[0-9a-f]{16}$`)

func TestPredictCarriesTraceID(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, _ := postPredict(t, ts, predictRequest{Source: testSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Trace-Id")
	if !traceIDRe.MatchString(id) {
		t.Fatalf("X-Trace-Id = %q, want 16 hex chars", id)
	}
}

func TestDebugTraces(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, _ := postPredict(t, ts, predictRequest{Source: testSrc})
	want := resp.Header.Get("X-Trace-Id")

	tr, err := http.Get(ts.URL + "/debug/traces?last=10")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	var traces []obs.Trace
	if err := json.NewDecoder(tr.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	var got *obs.Trace
	for i := range traces {
		if traces[i].ID == want {
			got = &traces[i]
		}
	}
	if got == nil {
		t.Fatalf("trace %s not in /debug/traces (%d traces)", want, len(traces))
	}
	if got.Name != "predict" || got.Attrs["code"] != "200" {
		t.Errorf("trace = name %q attrs %v, want predict / code 200", got.Name, got.Attrs)
	}
	spans := map[string]bool{}
	for _, sp := range got.Spans {
		spans[sp.Name] = true
	}
	for _, name := range []string{"admit", "stage.compile", "stage.execute", "stage.score"} {
		if !spans[name] {
			t.Errorf("trace missing span %q", name)
		}
	}

	// Bad ?last= values are the client's fault.
	bad, err := http.Get(ts.URL + "/debug/traces?last=zero")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("last=zero: status %d, want 400", bad.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	postPredict(t, ts, predictRequest{Source: testSrc})
	postPredict(t, ts, predictRequest{Source: testSrc}) // warm hit

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if problems := obs.Lint(bytes.NewReader(body)); len(problems) != 0 {
		t.Fatalf("exposition lint: %v", problems)
	}
	exp, err := obs.ParseExposition(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := exp.Value("ballarus_http_requests_total",
		map[string]string{"endpoint": "predict", "code": "200"}); !ok || v != 2 {
		t.Errorf("http_requests_total{predict,200} = %v (found %v), want 2", v, ok)
	}
	if v, ok := exp.Value("ballarus_http_request_duration_seconds_count",
		map[string]string{"endpoint": "predict"}); !ok || v != 2 {
		t.Errorf("http_request_duration_seconds_count{predict} = %v (found %v), want 2", v, ok)
	}
	if v, ok := exp.Value("ballarus_run_cache_total", map[string]string{"result": "hit"}); !ok || v != 1 {
		t.Errorf("run_cache_total{hit} = %v (found %v), want 1", v, ok)
	}
}

// TestPprofGatedBehindAdmin: profiling endpoints exist only on the
// admin handler.
func TestPprofGatedBehindAdmin(t *testing.T) {
	svc := ballarus.NewService()
	public := httptest.NewServer(newServer(svc).handler(false))
	defer public.Close()
	admin := httptest.NewServer(newServer(svc).handler(true))
	defer admin.Close()

	resp, err := http.Get(public.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("public /debug/pprof/cmdline: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(admin.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("admin /debug/pprof/cmdline: status %d, want 200", resp.StatusCode)
	}
}

func TestLoggerFlagValidation(t *testing.T) {
	if _, err := cli.NewLogger(io.Discard, "debug", "json"); err != nil {
		t.Errorf("debug/json: %v", err)
	}
	if _, err := cli.NewLogger(io.Discard, "verbose", "text"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := cli.NewLogger(io.Discard, "info", "xml"); err == nil {
		t.Error("bad format accepted")
	}
}
