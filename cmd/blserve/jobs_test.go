package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ballarus"
	"ballarus/internal/core"
	"ballarus/internal/jobs"
	"ballarus/internal/orders"
	"ballarus/internal/resilience"
)

// fakeBenches is a small deterministic bench set so the jobs tests need
// no suite warmup.
func fakeBenches(n int) ([]string, jobs.BenchProvider) {
	all := make([]*orders.BenchData, n)
	names := make([]string, n)
	for i := range all {
		d := &orders.BenchData{Name: fmt.Sprintf("f%02d", i)}
		for h := 0; h < core.NumHeuristics; h++ {
			d.Dyn[1<<h] = 50
			d.Miss[1<<h][h] = int64((i*11 + h*7) % 40)
			d.TotalNonLoop += 50
		}
		mask := (1 << core.Opcode) | (1 << core.CallH)
		d.Dyn[mask] = 50
		d.Miss[mask][core.Opcode] = int64(i * 5 % 40)
		d.Miss[mask][core.CallH] = int64((i*5 + 20) % 40)
		d.TotalNonLoop += 50
		all[i] = d
		names[i] = d.Name
	}
	byName := map[string]*orders.BenchData{}
	for _, d := range all {
		byName[d.Name] = d
	}
	return names, func(_ context.Context, want []string) ([]*orders.BenchData, error) {
		out := make([]*orders.BenchData, len(want))
		for i, name := range want {
			if byName[name] == nil {
				return nil, resilience.Invalid(fmt.Errorf("unknown benchmark %q", name))
			}
			out[i] = byName[name]
		}
		return out, nil
	}
}

// newJobsServer boots a blserve handler with the shard stage and a job
// coordinator over an in-process executor.
func newJobsServer(t *testing.T) (*httptest.Server, []string) {
	t.Helper()
	names, provider := fakeBenches(6)
	runner := jobs.NewRunner(provider)
	svc := ballarus.NewService(ballarus.WithShardRunner(runner))
	app := newServer(svc)
	eng, err := jobs.New(jobs.Config{
		Executor: &jobs.ServiceExecutor{Svc: svc},
		Defaults: jobs.Defaults{Benches: names, SweepShardSize: 1024, MaskShardSize: 2},
		Registry: svc.Metrics(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	eng.Start()
	app.eng = eng
	ts := httptest.NewServer(app.handler(false))
	t.Cleanup(ts.Close)
	return ts, names
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeInto(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestShardEndpoint(t *testing.T) {
	ts, names := newJobsServer(t)

	spec := jobs.Spec{Kind: jobs.KindSubsets, Benches: names, K: 3, ShardSize: 2}
	if err := spec.Normalize(jobs.Defaults{}); err != nil {
		t.Fatal(err)
	}
	req := jobs.ShardRequest{JobHash: spec.Hash(), Spec: spec, Lo: 0, Hi: 2}

	resp := postJSON(t, ts.URL+"/v1/shard", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shard status = %d, want 200", resp.StatusCode)
	}
	var res jobs.ShardResult
	decodeInto(t, resp, &res)
	if res.JobHash != req.JobHash || res.Lo != 0 || res.Hi != 2 || res.Trials <= 0 {
		t.Fatalf("shard result = %+v, want matching identity and trials > 0", res)
	}

	// The identical shard is a cache hit.
	resp = postJSON(t, ts.URL+"/v1/shard", req)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Shard-Cache") != "hit" {
		t.Fatalf("repeat shard status=%d cache=%q, want 200 hit", resp.StatusCode, resp.Header.Get("X-Shard-Cache"))
	}
	resp.Body.Close()

	// A tampered hash is the replica's cue to refuse.
	bad := req
	bad.JobHash = "0000000000000000"
	resp = postJSON(t, ts.URL+"/v1/shard", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("tampered shard status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err := http.Post(ts.URL+"/v1/shard", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestShardEndpointWithoutRunner(t *testing.T) {
	ts, _ := newTestServer(t) // no WithShardRunner
	resp := postJSON(t, ts.URL+"/v1/shard", jobs.ShardRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("shard without runner = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestJobsLifecycleOverHTTP(t *testing.T) {
	ts, _ := newJobsServer(t)

	resp := postJSON(t, ts.URL+"/v1/jobs", jobSubmitRequest{Kind: "subsets", K: 3})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	var st jobs.Status
	decodeInto(t, resp, &st)
	if st.ID == "" || st.ShardsTotal != 4 {
		t.Fatalf("submit returned %+v, want an ID and 4 shards", st)
	}

	deadline := time.Now().Add(30 * time.Second)
	for st.State == jobs.StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
		r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		decodeInto(t, r, &st)
	}
	if st.State != jobs.StateDone {
		t.Fatalf("job finished %q (%s), want done", st.State, st.Error)
	}
	if st.TrialsDone != orders.Binomial(6, 3) {
		t.Fatalf("trials = %d, want %d", st.TrialsDone, orders.Binomial(6, 3))
	}

	r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "?result=1")
	if err != nil {
		t.Fatal(err)
	}
	var withRes jobResultResponse
	decodeInto(t, r, &withRes)
	if withRes.Result == nil || withRes.Result.Trials != st.TrialsDone {
		t.Fatalf("result = %+v, want merged artifact with %d trials", withRes.Result, st.TrialsDone)
	}

	r, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []*jobs.Status
	decodeInto(t, r, &list)
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v, want the one job", list)
	}

	// Unknown IDs are 404 on get, cancel.
	for _, req := range []*http.Request{
		mustReq(t, http.MethodGet, ts.URL+"/v1/jobs/jdeadbeef0000"),
		mustReq(t, http.MethodDelete, ts.URL+"/v1/jobs/jdeadbeef0000"),
	} {
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("%s unknown job = %d, want 404", req.Method, r.StatusCode)
		}
		r.Body.Close()
	}

	// Bad submissions are 400.
	resp = postJSON(t, ts.URL+"/v1/jobs", jobSubmitRequest{Kind: "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad kind status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestJobsDisabled(t *testing.T) {
	ts, _ := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/jobs", jobSubmitRequest{Kind: "sweep"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("jobs on plain server = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
	r, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("list on plain server = %d, want 404", r.StatusCode)
	}
	r.Body.Close()
}

func mustReq(t *testing.T, method, url string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return req
}
