package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"ballarus"
	"ballarus/internal/obs"
)

func postCompare(t *testing.T, ts *httptest.Server, req compareRequest) (*http.Response, compareResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/compare", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out compareResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp, out
}

func TestCompareSourceAndCacheHit(t *testing.T) {
	ts, _ := newTestServer(t)
	req := compareRequest{Source: testSrc}

	resp, first := postCompare(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first compare status = %d", resp.StatusCode)
	}
	if first.CompareCached {
		t.Fatal("first request claims a compare cache hit")
	}
	want := append([]string{ballarus.CompareStatic, ballarus.ComparePerfect}, ballarus.DynPredictorNames()...)
	if len(first.Predictors) != len(want) {
		t.Fatalf("%d entrants, want %d: %+v", len(first.Predictors), len(want), first.Predictors)
	}
	for _, sc := range first.Predictors {
		// Per-branch tallies stay home unless include_per_branch is set.
		if sc.PerBranch != nil {
			t.Errorf("%s leaked per-branch stats without include_per_branch", sc.Name)
		}
	}
	if first.DynamicBranches == 0 || first.Steps == 0 {
		t.Fatalf("empty result: %+v", first)
	}

	resp, second := postCompare(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second compare status = %d", resp.StatusCode)
	}
	if !second.CompareCached || !second.ProgramCached || !second.AnalysisCached {
		t.Fatalf("repeated identical request should hit every cache, got %+v", second)
	}

	// Per-branch tallies on request.
	resp, detailed := postCompare(t, ts, compareRequest{Source: testSrc, IncludePerBranch: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detailed compare status = %d", resp.StatusCode)
	}
	for _, sc := range detailed.Predictors {
		if len(sc.PerBranch) != first.StaticBranches {
			t.Errorf("%s: %d per-branch rows, want %d", sc.Name, len(sc.PerBranch), first.StaticBranches)
		}
	}
}

func TestCompareRestrictedBackends(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, out := postCompare(t, ts, compareRequest{
		Source:     testSrc,
		Predictors: []string{ballarus.GsharePredictor, ballarus.TAGEPredictor},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(out.Predictors) != 4 { // static pair + gshare + tage
		t.Fatalf("entrants = %+v, want 4", out.Predictors)
	}
}

func TestCompareBadRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []compareRequest{
		{},                                // neither source nor benchmark
		{Source: testSrc, Order: "bogus"}, // malformed order
		{Source: testSrc, Predictors: []string{"oracle"}}, // unknown backend
	}
	for i, req := range cases {
		resp, _ := postCompare(t, ts, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status = %d, want 400", i, resp.StatusCode)
		}
	}
	gresp, err := http.Get(ts.URL + "/v1/compare")
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/compare: status = %d, want 405", gresp.StatusCode)
	}
}

// The compare endpoint must report under its own metric label.
func TestCompareEndpointMetricLabel(t *testing.T) {
	ts, _ := newTestServer(t)
	if resp, _ := postCompare(t, ts, compareRequest{Source: testSrc}); resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	data, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := obs.ParseExposition(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := exp.Value("ballarus_http_requests_total",
		map[string]string{"endpoint": "compare", "code": "200"}); !ok || v != 1 {
		t.Errorf("http_requests_total{compare,200} = %v (found %v), want 1", v, ok)
	}
}
