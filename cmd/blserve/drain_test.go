package main

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"ballarus"
)

// newDrainableServer builds a test server exposing the underlying
// *server so tests can flip the drain gate.
func newDrainableServer(t *testing.T, admin bool) (*httptest.Server, *server) {
	t.Helper()
	svc := ballarus.NewService()
	s := newServer(svc)
	s.instanceID = "test-instance"
	ts := httptest.NewServer(s.handler(admin))
	t.Cleanup(ts.Close)
	return ts, s
}

// TestDrainRefusesNewRequests: once draining, the API surface answers
// 503 + Connection: close so load balancers eject the replica fast,
// while /metrics stays up for operators watching the drain.
func TestDrainRefusesNewRequests(t *testing.T) {
	ts, s := newDrainableServer(t, false)

	// Healthy before the drain.
	resp, _ := postPredict(t, ts, predictRequest{Source: testSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain predict status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Instance-Id"); got != "test-instance" {
		t.Fatalf("X-Instance-Id = %q, want test-instance", got)
	}

	s.startDraining()
	s.startDraining() // idempotent

	resp, data := postRaw(t, ts, predictRequest{Source: testSrc})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining predict status = %d, want 503 (body %s)", resp.StatusCode, data)
	}
	// Go's client consumes the Connection: close header into resp.Close.
	if !resp.Close {
		t.Fatal("draining 503 did not carry Connection: close")
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining 503 missing Retry-After")
	}
	if e := decodeError(t, data); e.Code != "draining" {
		t.Fatalf("code = %q, want draining", e.Code)
	}

	// Health checks fail too — deliberately, so gateway probes mark the
	// replica down immediately instead of at the connection reset.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz status = %d, want 503", hresp.StatusCode)
	}

	// Observability survives the drain.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("draining /metrics status = %d, want 200", mresp.StatusCode)
	}
}

// TestDrainKeepsDebugEndpoints: the /debug surface (traces, and with
// -chaos-admin the fault and pprof endpoints) stays reachable while
// draining.
func TestDrainKeepsDebugEndpoints(t *testing.T) {
	ts, s := newDrainableServer(t, true)
	s.startDraining()
	for _, path := range []string{"/debug/traces", "/debug/pprof/cmdline"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("draining %s status = %d, want 200", path, resp.StatusCode)
		}
	}
}
