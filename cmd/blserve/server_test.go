package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ballarus"
	"ballarus/internal/resilience"
)

const testSrc = `
int main() {
	int i;
	int s = 0;
	for (i = 0; i < 1000; i++) {
		if (i % 3 == 0) { s += i; }
	}
	printi(s);
	printc('\n');
	return 0;
}
`

func newTestServer(t *testing.T, opts ...ballarus.ServiceOption) (*httptest.Server, *ballarus.Service) {
	t.Helper()
	svc := ballarus.NewService(opts...)
	ts := httptest.NewServer(newHandler(svc))
	t.Cleanup(ts.Close)
	return ts, svc
}

func postPredict(t *testing.T, ts *httptest.Server, req predictRequest) (*http.Response, predictResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out predictResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp, out
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
}

func TestPredictSourceAndCacheHit(t *testing.T) {
	ts, _ := newTestServer(t)
	req := predictRequest{Source: testSrc, IncludeOutput: true}

	resp, first := postPredict(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first predict status = %d", resp.StatusCode)
	}
	if first.RunCached || first.ProgramCached {
		t.Fatalf("first request should be cold, got %+v", first)
	}
	if first.DynamicBranches == 0 || first.Steps == 0 {
		t.Fatalf("empty result: %+v", first)
	}
	if first.Output == "" {
		t.Fatal("include_output did not echo program output")
	}

	resp, second := postPredict(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second predict status = %d", resp.StatusCode)
	}
	if !second.ProgramCached || !second.AnalysisCached || !second.RunCached {
		t.Fatalf("repeated identical request should hit every cache, got %+v", second)
	}
	if second.Heuristic != first.Heuristic || second.Steps != first.Steps {
		t.Fatalf("cached result differs: %+v vs %+v", second, first)
	}

	// The hit must be visible in /v1/stats.
	var stats ballarus.ServiceStats
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 2 || stats.RunHits != 1 || stats.RunMisses != 1 {
		t.Fatalf("stats = completed %d, run hits %d, misses %d; want 2/1/1",
			stats.Completed, stats.RunHits, stats.RunMisses)
	}
	if st := stats.Stage("compile"); st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("compile stage cache = %+v; want 1 hit, 1 miss", st)
	}
}

func TestPredictBenchmark(t *testing.T) {
	ts, _ := newTestServer(t)
	name := ballarus.Benchmarks()[0].Name
	resp, out := postPredict(t, ts, predictRequest{Benchmark: name})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("benchmark predict status = %d", resp.StatusCode)
	}
	if out.Name != name || out.DynamicBranches == 0 {
		t.Fatalf("bad benchmark result: %+v", out)
	}
}

func TestPredictConcurrent(t *testing.T) {
	ts, _ := newTestServer(t)
	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Half hammer one source, half use distinct sources.
			src := testSrc
			if i%2 == 1 {
				src = fmt.Sprintf("int main() { int i; int s = 0; for (i = 0; i < %d; i++) { s += i; } printi(s); return 0; }", 100+i)
			}
			body, _ := json.Marshal(predictRequest{Source: src})
			resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPredictBadRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []predictRequest{
		{},                                  // neither source nor benchmark
		{Source: "int main() { return 0 }"}, // syntax error
		{Benchmark: "no-such-benchmark"},    // unknown benchmark
		{Source: testSrc, Order: "bogus"},   // malformed order
		{Source: testSrc, Benchmark: "gcc"}, // both set
	}
	for i, req := range cases {
		resp, _ := postPredict(t, ts, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status = %d, want 400", i, resp.StatusCode)
		}
	}
	// Non-JSON body.
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader([]byte("not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-JSON body: status = %d, want 400", resp.StatusCode)
	}
	// Wrong method.
	gresp, err := http.Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/predict: status = %d, want 405", gresp.StatusCode)
	}
}

// postRaw posts a predict request and returns the raw response with the
// body read, so tests can inspect error bodies and headers.
func postRaw(t *testing.T, ts *httptest.Server, req predictRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodeError(t *testing.T, data []byte) errorResponse {
	t.Helper()
	var e errorResponse
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("error body %q is not valid JSON: %v", data, err)
	}
	return e
}

// TestPredictBudgetExhausted: blowing the instruction budget is the
// client's problem, not a server bug — 422, not 500.
func TestPredictBudgetExhausted(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, data := postRaw(t, ts, predictRequest{Source: testSrc, Budget: 100})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422 (body %s)", resp.StatusCode, data)
	}
	if e := decodeError(t, data); e.Code != "resource_exhausted" {
		t.Fatalf("code = %q, want resource_exhausted", e.Code)
	}
}

// TestDegradedServingWhenBreakerOpen: with a stage breaker open, a
// request the server has answered before gets its stale result marked
// degraded, and an unseen request gets 429 with Retry-After.
func TestDegradedServingWhenBreakerOpen(t *testing.T) {
	defer resilience.ClearFaults()
	ts, _ := newTestServer(t,
		ballarus.WithBreakerPolicy(ballarus.BreakerPolicy{Threshold: 2, Cooldown: time.Minute}))
	primed := predictRequest{Source: testSrc}

	resp, first := postPredict(t, ts, primed)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("priming request status = %d", resp.StatusCode)
	}

	// Two panics at the analyze stage open its breaker.
	resilience.InjectFault("service.analyze", resilience.Fault{Panic: "injected"})
	for i := 0; i < 2; i++ {
		src := fmt.Sprintf("int main() { printi(%d); return 0; }", i)
		r, data := postRaw(t, ts, predictRequest{Source: src})
		if r.StatusCode != http.StatusInternalServerError {
			t.Fatalf("panic request %d: status = %d, want 500 (body %s)", i, r.StatusCode, data)
		}
		if e := decodeError(t, data); e.Code != "internal" {
			t.Fatalf("panic request %d: code = %q, want internal", i, e.Code)
		}
	}

	// The primed request is shed by the open breaker, but the server
	// still has its last good answer.
	resp, out := postPredict(t, ts, primed)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded request status = %d, want 200", resp.StatusCode)
	}
	if !out.Degraded {
		t.Fatal("stale response not marked degraded")
	}
	if out.Steps != first.Steps || out.Heuristic != first.Heuristic {
		t.Fatalf("degraded response %+v differs from original %+v", out, first)
	}

	// An unseen request has nothing to fall back on: 429 + Retry-After.
	r, data := postRaw(t, ts, predictRequest{Source: "int main() { printi(99); return 0; }"})
	if r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("unseen request status = %d, want 429 (body %s)", r.StatusCode, data)
	}
	if r.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After header")
	}
	if e := decodeError(t, data); e.Code != "overload" {
		t.Fatalf("code = %q, want overload", e.Code)
	}
}

func TestPredictTimeout(t *testing.T) {
	ts, _ := newTestServer(t, ballarus.WithRequestTimeout(30*time.Millisecond))
	// An effectively unbounded loop: the pipeline must hit the service
	// timeout and answer 504 rather than hanging.
	src := `int main() { int i; int s = 0; for (i = 0; i < 1000000000; i++) { s += i % 7; } printi(s); return 0; }`
	body, _ := json.Marshal(predictRequest{Source: src, Budget: 1 << 40})
	start := time.Now()
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	var eresp errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&eresp); err != nil || eresp.Code != "timeout" {
		t.Fatalf("error body = %+v (decode err %v), want code \"timeout\"", eresp, err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v; cancellation is not reaching the interpreter", elapsed)
	}
}
