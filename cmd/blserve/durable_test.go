package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ballarus"
	"ballarus/internal/resilience"
)

// openAnalyzeBreaker trips the analyze-stage breaker with two injected
// panics on throwaway sources.
func openAnalyzeBreaker(t *testing.T, ts *httptest.Server) {
	t.Helper()
	resilience.InjectFault("service.analyze", resilience.Fault{Panic: "injected"})
	for i := 0; i < 2; i++ {
		src := fmt.Sprintf("int main() { printi(%d); return 0; }", 1000+i)
		r, data := postRaw(t, ts, predictRequest{Source: src})
		if r.StatusCode != http.StatusInternalServerError {
			t.Fatalf("breaker-opening request %d: status = %d (body %s)", i, r.StatusCode, data)
		}
	}
}

// TestStaleKeyNormalizesEquivalentRequests: the stale cache is keyed by
// the service's canonical content hash, so a benchmark named in one
// request and spelled out as explicit source/input/budget in another
// share one last-known-good entry.
func TestStaleKeyNormalizesEquivalentRequests(t *testing.T) {
	defer resilience.ClearFaults()
	ts, _ := newTestServer(t,
		ballarus.WithBreakerPolicy(ballarus.BreakerPolicy{Threshold: 2, Cooldown: time.Minute}))
	b := ballarus.Benchmarks()[0]

	resp, first := postPredict(t, ts, predictRequest{Benchmark: b.Name})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("priming request status = %d", resp.StatusCode)
	}
	openAnalyzeBreaker(t, ts)

	// The explicit spelling of the same job must hit the entry the
	// benchmark-name spelling primed.
	resp, out := postPredict(t, ts, predictRequest{
		Source: b.Source, Input: b.Data[0].Input, Budget: b.Budget,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("equivalent request status = %d, want degraded 200", resp.StatusCode)
	}
	if !out.Degraded {
		t.Fatal("equivalent request missed the stale entry (key not normalized)")
	}
	if out.Steps != first.Steps || out.Heuristic != first.Heuristic {
		t.Fatalf("degraded response %+v differs from original %+v", out, first)
	}
}

// TestTimeoutRetryAfter: a 504 is as retryable as a 429 and must carry
// the same Retry-After hint.
func TestTimeoutRetryAfter(t *testing.T) {
	ts, _ := newTestServer(t, ballarus.WithRequestTimeout(30*time.Millisecond))
	src := `int main() { int i; int s = 0; for (i = 0; i < 1000000000; i++) { s += i % 7; } printi(s); return 0; }`
	body, _ := json.Marshal(predictRequest{Source: src, Budget: 1 << 40})
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("504 response missing Retry-After header")
	}
}

// TestServerDurableRoundTrip: the stale response cache survives a crash
// via its snapshot section — after recovery a brand-new process serves
// a degraded answer for a request only the dead process ever computed.
func TestServerDurableRoundTrip(t *testing.T) {
	defer resilience.ClearFaults()
	dir := t.TempDir()
	ctx := context.Background()

	svc1 := ballarus.NewService(
		ballarus.WithDurableStore(dir),
		ballarus.WithSnapshotInterval(time.Hour))
	ts1 := httptest.NewServer(newServer(svc1).handler(false))
	resp, first := postPredict(t, ts1, predictRequest{Source: testSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("priming request status = %d", resp.StatusCode)
	}
	if err := svc1.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	// No svc1.Close: the process "dies" here.

	svc2 := ballarus.NewService(
		ballarus.WithDurableStore(dir),
		ballarus.WithSnapshotInterval(time.Hour),
		ballarus.WithBreakerPolicy(ballarus.BreakerPolicy{Threshold: 2, Cooldown: time.Minute}))
	defer svc2.Close()
	app := newServer(svc2) // registers the stale section before recovery
	rs, err := svc2.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Warmed < 1 || rs.SnapshotEntries < 2 {
		// One request recipe + one stale response entry.
		t.Fatalf("recovery stats %+v, want a recipe and a stale entry", rs)
	}
	ts2 := httptest.NewServer(app.handler(false))
	defer ts2.Close()

	// Warm start: the replayed recipe makes the first post-restart
	// request a whole-pipeline cache hit.
	resp, out := postPredict(t, ts2, predictRequest{Source: testSrc})
	if resp.StatusCode != http.StatusOK || !out.RunCached {
		t.Fatalf("post-recovery request: status %d, cached %v; want warm 200",
			resp.StatusCode, out.RunCached)
	}

	// Degraded serving works from the restored stale cache alone.
	openAnalyzeBreaker(t, ts2)
	resp, out = postPredict(t, ts2, predictRequest{Source: testSrc})
	if resp.StatusCode != http.StatusOK || !out.Degraded {
		t.Fatalf("restored stale entry not served: status %d, degraded %v",
			resp.StatusCode, out.Degraded)
	}
	if out.Steps != first.Steps {
		t.Fatalf("restored response %+v differs from original %+v", out, first)
	}
}

// TestAdminEndpointsGated: the /debug chaos endpoints exist only when
// the handler is built with admin enabled, and they drive the fault
// registry end to end.
func TestAdminEndpointsGated(t *testing.T) {
	defer resilience.ClearFaults()
	svc := ballarus.NewService()
	defer svc.Close()
	app := newServer(svc)
	public := httptest.NewServer(app.handler(false))
	defer public.Close()
	admin := httptest.NewServer(app.handler(true))
	defer admin.Close()

	r, err := http.Post(public.URL+"/debug/clearfaults", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("public /debug status = %d, want 404", r.StatusCode)
	}

	// Arm a one-shot internal fault through the admin API and watch it
	// surface as a 500.
	body := []byte(`{"point":"service.execute","err":"chaos","times":1}`)
	r, err = http.Post(admin.URL+"/debug/fault", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("arm fault status = %d", r.StatusCode)
	}
	resp, data := postRaw(t, public, predictRequest{Source: testSrc})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("armed fault: status = %d, want 500 (body %s)", resp.StatusCode, data)
	}

	r, err = http.Post(admin.URL+"/debug/clearfaults", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("clear faults status = %d", r.StatusCode)
	}
	resp, _ = postPredict(t, public, predictRequest{Source: testSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after clear: status = %d, want 200", resp.StatusCode)
	}
}
