package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"ballarus/internal/resilience"
)

// The /debug endpoints drive deterministic chaos testing (cmd/blchaos):
// they arm the resilience faultpoint registry and force snapshots in a
// live process. They exist only behind the -chaos-admin flag and must
// never be exposed on a production listener.

// faultRequest is the POST /debug/fault body.
type faultRequest struct {
	// Point names the faultpoint, e.g. "service.execute".
	Point string `json:"point"`
	// Exactly one of Err, Panic, or Hang selects the failure mode.
	Err   string `json:"err,omitempty"`
	Panic string `json:"panic,omitempty"`
	Hang  bool   `json:"hang,omitempty"`
	// Transient marks Err retryable, exercising the retry path.
	Transient bool `json:"transient,omitempty"`
	// Times bounds how often the fault fires; 0 means until cleared.
	Times int `json:"times,omitempty"`
}

func (s *server) handleFault(w http.ResponseWriter, r *http.Request) {
	var req faultRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid_input", fmt.Errorf("bad fault body: %w", err))
		return
	}
	if req.Point == "" {
		httpError(w, http.StatusBadRequest, "invalid_input", errors.New("fault needs a point"))
		return
	}
	f := resilience.Fault{Hang: req.Hang, Times: req.Times}
	switch {
	case req.Panic != "":
		f.Panic = req.Panic
	case req.Err != "":
		f.Err = errors.New(req.Err)
		if req.Transient {
			f.Err = resilience.MarkTransient(f.Err)
		}
	case !req.Hang:
		httpError(w, http.StatusBadRequest, "invalid_input",
			errors.New("fault needs one of err, panic, or hang"))
		return
	}
	resilience.InjectFault(req.Point, f)
	writeJSON(w, http.StatusOK, map[string]any{"armed": req.Point})
}

func (s *server) handleClearFaults(w http.ResponseWriter, r *http.Request) {
	resilience.ClearFaults()
	writeJSON(w, http.StatusOK, map[string]any{"cleared": true})
}

// handleSnapshot forces a snapshot write, so the harness can bound what
// a subsequent kill may lose.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if err := s.svc.SnapshotNow(); err != nil {
		httpError(w, http.StatusInternalServerError, "internal", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"snapshot": true})
}
