package main

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ballarus/internal/obs"
)

// endpointLabel maps a request path to a fixed metric label, keeping
// label cardinality bounded no matter what clients probe.
func endpointLabel(r *http.Request) string {
	switch {
	case r.URL.Path == "/v1/predict":
		return "predict"
	case r.URL.Path == "/v1/compare":
		return "compare"
	case r.URL.Path == "/v1/batch":
		return "batch"
	case r.URL.Path == "/v1/shard":
		return "shard"
	case r.URL.Path == "/v1/jobs" || strings.HasPrefix(r.URL.Path, "/v1/jobs/"):
		return "jobs"
	case r.URL.Path == "/v1/stats":
		return "stats"
	case r.URL.Path == "/healthz":
		return "healthz"
	case r.URL.Path == "/metrics":
		return "metrics"
	case strings.HasPrefix(r.URL.Path, "/debug/"):
		return "debug"
	default:
		return "other"
	}
}

// statusRecorder captures the response status for metrics and traces.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (s *statusRecorder) WriteHeader(code int) {
	s.status = code
	s.ResponseWriter.WriteHeader(code)
}

// instrument wraps the API with the observability boundary: a trace per
// request (ID echoed in X-Trace-Id, spans collected downstream in the
// service), an HTTP request counter by endpoint and status code, and a
// per-endpoint latency histogram whose buckets carry trace-ID
// exemplars. An incoming Traceparent header (stamped by the gateway's
// attempt spans or a job coordinator's shard executor) makes this
// process's trace a child of the remote span, so GET /v1/trace/{id} on
// the gateway can stitch the hops back together.
func (s *server) instrument(next http.Handler) http.Handler {
	reg := s.svc.Metrics()
	tracer := s.svc.Tracer()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ep := endpointLabel(r)
		rctx := r.Context()
		if sc, ok := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader)); ok {
			rctx = obs.ContextWithRemote(rctx, sc)
		}
		ctx, act := tracer.Start(rctx, ep)
		if id := act.ID(); id != "" {
			w.Header().Set("X-Trace-Id", id)
		}
		if kind := r.Header.Get("X-Attempt-Kind"); kind != "" {
			act.Attr("attempt", kind)
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r.WithContext(ctx))
		elapsed := time.Since(start)

		code := strconv.Itoa(rec.status)
		act.Attr("method", r.Method)
		act.Attr("path", r.URL.Path)
		act.Attr("code", code)
		var traceErr error
		if rec.status >= http.StatusInternalServerError {
			traceErr = fmt.Errorf("http %s", code)
		}
		act.End(traceErr)
		reg.Counter("ballarus_http_requests_total",
			"HTTP requests by endpoint and status code.",
			"endpoint", ep, "code", code).Inc()
		reg.Histogram("ballarus_http_request_duration_seconds",
			"HTTP request latency by endpoint.",
			obs.DurationBuckets, "endpoint", ep).ObserveDurationExemplar(elapsed, act.ID())
	})
}

// handleMetrics serves the Prometheus text exposition.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.svc.Metrics().WritePrometheus(w)
}

// handleTraces serves the tracer's ring buffer and the tail-sampled
// archive: ?id= returns every collection of one trace (what the
// gateway's assembly fan-out calls), ?slowest=N the worst archived
// traces, and ?last=N (default 32, clamped to the ring capacity) the
// most recent. Malformed numeric parameters are a 400.
func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	traces, err := obs.QueryTraces(s.svc.Tracer(), s.archive, q.Get("id"), q.Get("last"), q.Get("slowest"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid_input", err)
		return
	}
	if traces == nil {
		traces = []*obs.Trace{}
	}
	writeJSON(w, http.StatusOK, traces)
}
