// blserve exposes the prediction service over HTTP: the full pipeline
// (compile, optimize, analyze, predict, execute, score) behind a JSON
// API with bounded concurrency, content-hash caching, and per-stage
// metrics.
//
// Usage:
//
//	blserve [-addr :8723] [-workers N] [-timeout 30s] [-queue 64]
//	        [-cache 4096] [-budget 0]
//
// Endpoints:
//
//	POST /v1/predict  run the pipeline on {"source": ...} or
//	                  {"benchmark": "xlisp"}; repeated identical
//	                  requests are served from the cache
//	GET  /v1/stats    service counters: per-stage latency, throughput,
//	                  and cache hits
//	GET  /healthz     liveness probe
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests for up to -drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"time"

	"ballarus"
	"ballarus/internal/cli"
)

func main() {
	addr := flag.String("addr", ":8723", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "max concurrently executing requests")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request pipeline timeout")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain window")
	queue := flag.Int("queue", 64, "max requests queued for a worker before shedding with 429 (0 = unbounded)")
	cache := flag.Int("cache", 4096, "max entries per result cache, LRU-evicted (0 = unbounded)")
	budget := flag.Int64("budget", 0, "default instruction budget per run (0 = interpreter default, 64M)")
	flag.Parse()

	svc := ballarus.NewService(
		ballarus.WithWorkers(*workers),
		ballarus.WithRequestTimeout(*timeout),
		ballarus.WithQueueDepth(*queue),
		ballarus.WithCacheSize(*cache),
		ballarus.WithServiceBudget(*budget),
	)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newHandler(svc),
		ReadHeaderTimeout: 5 * time.Second,
		// The pipeline timeout governs work; give the writer headroom.
		WriteTimeout: *timeout + 5*time.Second,
	}

	ctx, stop := cli.SignalContext()
	defer stop()
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "blserve: listening on %s (%d workers, %s timeout)\n",
			*addr, *workers, *timeout)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		cli.Exit("blserve", err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "blserve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		cli.Exit("blserve", err)
	}
}
