// blserve exposes the prediction service over HTTP: the full pipeline
// (compile, optimize, analyze, predict, execute, score) behind a JSON
// API with bounded concurrency, content-hash caching, and per-stage
// metrics.
//
// Usage:
//
//	blserve [-addr :8723] [-workers N] [-timeout 30s] [-queue 64]
//	        [-cache 4096] [-budget 0] [-state-dir DIR]
//	        [-snapshot-every 30s] [-journal-sync 100ms] [-watchdog 0]
//
// Endpoints:
//
//	POST /v1/predict  run the pipeline on {"source": ...} or
//	                  {"benchmark": "xlisp"}; repeated identical
//	                  requests are served from the cache
//	GET  /v1/stats    service counters: per-stage latency, throughput,
//	                  and cache hits
//	GET  /healthz     liveness probe
//
// With -state-dir, the server persists its warm state (request recipes
// and the last-known-good response cache) as a checksummed snapshot
// plus an append-only journal, recovers it at boot — tolerating
// per-entry corruption — and replays it to rewarm the caches, so a
// crashed or killed server restarts warm.
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining
// in-flight requests for up to -drain and writing a final snapshot.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"ballarus"
	"ballarus/internal/cli"
)

func main() {
	addr := flag.String("addr", ":8723", "listen address (:0 picks a free port, printed on stderr)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "max concurrently executing requests")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request pipeline timeout")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain window")
	queue := flag.Int("queue", 64, "max requests queued for a worker before shedding with 429 (0 = unbounded)")
	cache := flag.Int("cache", 4096, "max entries per result cache, LRU-evicted (0 = unbounded)")
	budget := flag.Int64("budget", 0, "default instruction budget per run (0 = interpreter default, 64M)")
	stateDir := flag.String("state-dir", "", "directory for durable state (snapshot + journal); empty disables durability")
	snapEvery := flag.Duration("snapshot-every", 30*time.Second, "periodic snapshot interval (with -state-dir)")
	journalSync := flag.Duration("journal-sync", 100*time.Millisecond, "journal fsync batching interval (with -state-dir)")
	watchdog := flag.Duration("watchdog", 0, "restart the worker pool when saturated with no progress for this long (0 = off)")
	chaosAdmin := flag.Bool("chaos-admin", false, "expose /debug fault-injection and snapshot endpoints (test harnesses only)")
	flag.Parse()

	opts := []ballarus.ServiceOption{
		ballarus.WithWorkers(*workers),
		ballarus.WithRequestTimeout(*timeout),
		ballarus.WithQueueDepth(*queue),
		ballarus.WithCacheSize(*cache),
		ballarus.WithServiceBudget(*budget),
		ballarus.WithWatchdog(*watchdog),
	}
	if *stateDir != "" {
		opts = append(opts,
			ballarus.WithDurableStore(*stateDir),
			ballarus.WithSnapshotInterval(*snapEvery),
			ballarus.WithJournalSyncInterval(*journalSync),
		)
	}
	svc := ballarus.NewService(opts...)
	app := newServer(svc) // registers the stale cache's durable section

	ctx, stop := cli.SignalContext()
	defer stop()

	if *stateDir != "" {
		rs, err := svc.Recover(ctx)
		if err != nil {
			cli.Exit("blserve", err)
		}
		fmt.Fprintf(os.Stderr,
			"blserve: recovered %d snapshot entries (%d skipped), %d journal records (%d skipped), %d requests rewarmed\n",
			rs.SnapshotEntries, rs.SnapshotSkipped, rs.JournalReplayed, rs.JournalSkipped, rs.Warmed)
	}

	// Listen before serving so -addr :0 reports the bound port — the
	// chaos harness depends on that line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		cli.Exit("blserve", err)
	}
	srv := &http.Server{
		Handler:           app.handler(*chaosAdmin),
		ReadHeaderTimeout: 5 * time.Second,
		// The pipeline timeout governs work; give the writer headroom.
		WriteTimeout: *timeout + 5*time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "blserve: listening on %s (%d workers, %s timeout)\n",
			ln.Addr(), *workers, *timeout)
		errc <- srv.Serve(ln)
	}()

	select {
	case err := <-errc:
		cli.Exit("blserve", err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "blserve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		cli.Exit("blserve", err)
	}
	// Close writes the final snapshot; with -state-dir the next boot
	// starts warm.
	if err := svc.Close(); err != nil {
		cli.Exit("blserve", err)
	}
}
