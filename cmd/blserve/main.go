// blserve exposes the prediction service over HTTP: the full pipeline
// (compile, optimize, analyze, predict, execute, score) behind a JSON
// API with bounded concurrency, content-hash caching, and per-stage
// metrics.
//
// Usage:
//
//	blserve [-addr :8723] [-workers N] [-timeout 30s] [-queue 64]
//	        [-cache 4096] [-budget 0] [-state-dir DIR]
//	        [-snapshot-every 30s] [-journal-sync 100ms] [-watchdog 0]
//	        [-drain-timeout 10s] [-instance-id ID]
//	        [-tenants] [-tenant-rate 50] [-tenant-burst 0]
//	        [-tenant-inflight 0] [-tenant-quota id=rate[,burst[,inflight[,weight]]]]
//	        [-batch-max 64]
//	        [-trace-archive 512] [-trace-sample 0.01] [-trace-slow 250ms]
//	        [-log-level info] [-log-format text]
//
// Endpoints:
//
//	POST /v1/predict     run the pipeline on {"source": ...} or
//	                     {"benchmark": "xlisp"}; repeated identical
//	                     requests are served from the cache
//	POST /v1/batch       run N predict/compare items admitted as one
//	                     unit against the caller's tenant quota, with
//	                     per-item results
//
// With -tenants, requests are attributed to the tenant named by the
// X-Tenant-Id header (absent means "default") and admitted against
// per-tenant token-bucket rate quotas and in-flight caps; a tenant
// over quota gets 429 {"code":"quota_exceeded"} with Retry-After and
// X-RateLimit-* headers, and under queue saturation tenants holding
// more than their weighted max-min fair share of the worker pool are
// shed first while under-share tenants keep flowing.
//
//	GET  /v1/stats       service counters: per-stage latency, throughput,
//	                     and cache hits
//	GET  /healthz        liveness probe
//	GET  /metrics        Prometheus text exposition: request/stage/cache/
//	                     breaker/durability counters, latency histograms,
//	                     per-heuristic accuracy
//	GET  /debug/traces   recent request traces (?last=N, clamped to the
//	                     ring), ?id= exact-match collections of one
//	                     trace, or ?slowest=N from the tail-sampled
//	                     archive; most recent first, with per-stage spans
//
// Every request runs under a distributed-tracing span: an incoming
// Traceparent header (stamped by blgate attempts or a job
// coordinator's shard dispatch) parents this process's trace, the
// trace ID is echoed in X-Trace-Id, and completed traces that
// errored, were hedged, tripped a breaker, or exceeded -trace-slow
// are tail-sampled into a durable archive (-trace-archive entries,
// plus a -trace-sample fraction of boring traces) that survives
// restarts via -state-dir. Request-latency histogram buckets carry
// the most recent trace ID as ballarus_*_exemplar gauges.
//
// Logs are structured (slog); -log-format json switches them to JSON
// and -log-level debug additionally emits one event per completed
// request trace. With -chaos-admin the /debug fault-injection endpoints
// and net/http/pprof profiling are exposed too.
//
// With -state-dir, the server persists its warm state (request recipes
// and the last-known-good response cache) as a checksummed snapshot
// plus an append-only journal, recovers it at boot — tolerating
// per-entry corruption — and replays it to rewarm the caches, so a
// crashed or killed server restarts warm.
//
// The server shuts down gracefully on SIGINT/SIGTERM: new requests are
// refused with 503 + Connection: close (so load-balancer health checks
// fail fast during rollouts) while in-flight requests drain for up to
// -drain-timeout, then a final snapshot is written.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"ballarus"
	"ballarus/internal/cli"
	"ballarus/internal/jobs"
	"ballarus/internal/obs"
)

// version identifies the build in the startup record.
const version = "0.9.0"

// defaultInstanceID derives an instance identity when -instance-id is
// not set: host-pid is unique enough to tell replicas apart in traces
// and gateway assertions.
func defaultInstanceID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "blserve"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

func main() {
	addr := flag.String("addr", ":8723", "listen address (:0 picks a free port, printed on stderr)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "max concurrently executing requests")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request pipeline timeout")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain window (deprecated alias for -drain-timeout)")
	drainTimeout := flag.Duration("drain-timeout", 0, "graceful shutdown drain window; wins over -drain when set")
	instanceID := flag.String("instance-id", "", "instance identity reported in the X-Instance-Id response header (default host-pid)")
	queue := flag.Int("queue", 64, "max requests queued for a worker before shedding with 429 (0 = unbounded)")
	cache := flag.Int("cache", 4096, "max entries per result cache, LRU-evicted (0 = unbounded)")
	budget := flag.Int64("budget", 0, "default instruction budget per run (0 = interpreter default, 64M)")
	stateDir := flag.String("state-dir", "", "directory for durable state (snapshot + journal); empty disables durability")
	snapEvery := flag.Duration("snapshot-every", 30*time.Second, "periodic snapshot interval (with -state-dir)")
	journalSync := flag.Duration("journal-sync", 100*time.Millisecond, "journal fsync batching interval (with -state-dir)")
	watchdog := flag.Duration("watchdog", 0, "restart the worker pool when saturated with no progress for this long (0 = off)")
	chaosAdmin := flag.Bool("chaos-admin", false, "expose /debug fault-injection, snapshot, and pprof endpoints (test harnesses and trusted operators only)")
	jobsOn := flag.Bool("jobs", false, "enable the batch-job coordinator (/v1/jobs endpoints); /v1/shard execution is always on")
	jobsExecutor := flag.String("jobs-executor", "", "base URL shards are dispatched to (a replica or the blgate gateway); empty runs shards in-process through the service")
	jobsParallel := flag.Int("jobs-parallel", 4, "max concurrently leased shards (with -jobs)")
	jobsLease := flag.Duration("jobs-lease", 45*time.Second, "per-shard lease (execution deadline) before the shard is stolen (with -jobs)")
	jobsShardOrders := flag.Int("jobs-shard-orders", 336, "order indices per sweep shard (with -jobs)")
	jobsShardMasks := flag.Int("jobs-shard-masks", 128, "low masks per subsets shard (with -jobs)")
	tenants := flag.Bool("tenants", false, "enable per-tenant quotas and fairness (X-Tenant-Id header identity)")
	tenantRate := flag.Float64("tenant-rate", 50, "default per-tenant sustained rate in requests/s (0 = unlimited, with -tenants)")
	tenantBurst := flag.Float64("tenant-burst", 0, "default per-tenant burst capacity (0 = max(rate,1), with -tenants)")
	tenantInflight := flag.Int("tenant-inflight", 0, "default per-tenant concurrent-request cap (0 = unlimited, with -tenants)")
	batchMax := flag.Int("batch-max", defaultBatchMax, "max items per /v1/batch request")
	traceArchive := flag.Int("trace-archive", 512, "max traces retained in the tail-sampled archive")
	traceSample := flag.Float64("trace-sample", 0.01, "probability of archiving an otherwise uninteresting trace (deterministic per trace ID)")
	traceSlow := flag.Duration("trace-slow", 250*time.Millisecond, "latency at or above which a trace is always archived")
	tenantOverrides := map[string]ballarus.TenantLimits{}
	flag.Func("tenant-quota", "per-tenant override as id=rate[,burst[,inflight[,weight]]]; repeatable (with -tenants)", func(v string) error {
		id, lim, err := parseTenantQuota(v)
		if err != nil {
			return err
		}
		tenantOverrides[id] = lim
		return nil
	})
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error (debug also logs request traces)")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	flag.Parse()

	logger, err := cli.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		cli.Exit("blserve", err)
	}
	if *drainTimeout > 0 {
		*drain = *drainTimeout
	}
	if *instanceID == "" {
		*instanceID = defaultInstanceID()
	}

	opts := []ballarus.ServiceOption{
		ballarus.WithShardRunner(jobs.NewRunner(jobs.SuiteBenchProvider())),
		ballarus.WithWorkers(*workers),
		ballarus.WithRequestTimeout(*timeout),
		ballarus.WithQueueDepth(*queue),
		ballarus.WithCacheSize(*cache),
		ballarus.WithServiceBudget(*budget),
		ballarus.WithWatchdog(*watchdog),
		ballarus.WithTracer(ballarus.NewTracer(256, logger)),
	}
	if *tenants {
		opts = append(opts, ballarus.WithTenants(ballarus.NewTenantRegistry(ballarus.TenantConfig{
			Defaults: ballarus.TenantLimits{
				Rate:        *tenantRate,
				Burst:       *tenantBurst,
				MaxInFlight: *tenantInflight,
			},
			Overrides: tenantOverrides,
		})))
	}
	if *stateDir != "" {
		opts = append(opts,
			ballarus.WithDurableStore(*stateDir),
			ballarus.WithSnapshotInterval(*snapEvery),
			ballarus.WithJournalSyncInterval(*journalSync),
		)
	}
	svc := ballarus.NewService(opts...)
	svc.Tracer().SetSource(*instanceID)
	archive := obs.NewArchive(obs.ArchivePolicy{
		Capacity:      *traceArchive,
		SlowThreshold: *traceSlow,
		SampleRate:    *traceSample,
	})
	// Registers the stale cache's and trace archive's durable sections.
	app := newServerWithArchive(svc, archive)
	app.instanceID = *instanceID
	if *batchMax > 0 {
		app.batchMax = *batchMax
	}

	ctx, stop := cli.SignalContext()
	defer stop()

	// The job coordinator registers its durable section before Recover so
	// checkpointed jobs restore with the rest of the snapshot; its own
	// journal (replayed by Resume below) covers shards completed after
	// the last checkpoint.
	if *jobsOn {
		var exec jobs.Executor
		if *jobsExecutor != "" {
			exec = &jobs.HTTPExecutor{Base: strings.TrimRight(*jobsExecutor, "/")}
		} else {
			exec = &jobs.ServiceExecutor{Svc: svc}
		}
		cfg := jobs.Config{
			Executor:    exec,
			Parallelism: *jobsParallel,
			LeaseTTL:    *jobsLease,
			Defaults: jobs.Defaults{
				Benches:        jobs.DefaultBenches(),
				SweepShardSize: *jobsShardOrders,
				MaskShardSize:  *jobsShardMasks,
			},
			Registry: svc.Metrics(),
			Logger:   logger,
		}
		if *stateDir != "" {
			cfg.JournalPath = filepath.Join(*stateDir, "jobs.bljrnl")
			cfg.Checkpoint = svc.SnapshotNow
		}
		eng, err := jobs.New(cfg)
		if err != nil {
			cli.Exit("blserve", err)
		}
		app.eng = eng
		svc.RegisterDurableSection(jobs.SectionJobs, ballarus.DurableSection{
			Collect: eng.CollectEntries,
			Restore: eng.RestoreEntry,
		})
	}

	var rs ballarus.RecoveryStats
	if *stateDir != "" {
		rs, err = svc.Recover(ctx)
		if err != nil {
			cli.Exit("blserve", err)
		}
	}
	if app.eng != nil {
		if _, err := app.eng.Resume(ctx); err != nil {
			cli.Exit("blserve", err)
		}
		app.eng.Start()
	}

	// Listen before serving so -addr :0 reports the bound port — the
	// chaos harness depends on that line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		cli.Exit("blserve", err)
	}
	srv := &http.Server{
		Handler:           app.handler(*chaosAdmin),
		ReadHeaderTimeout: 5 * time.Second,
		// The pipeline timeout governs work; give the writer headroom.
		WriteTimeout: *timeout + 5*time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		// One structured startup record carrying the effective
		// configuration and the recovery summary; harnesses key on
		// msg=listening and the addr attribute.
		logger.Info("listening",
			slog.String("addr", ln.Addr().String()),
			slog.String("version", version),
			slog.String("instance", *instanceID),
			slog.Int("workers", *workers),
			slog.Duration("timeout", *timeout),
			slog.Int("queue", *queue),
			slog.Int("cache", *cache),
			slog.Duration("watchdog", *watchdog),
			slog.String("state_dir", *stateDir),
			slog.Bool("chaos_admin", *chaosAdmin),
			slog.Bool("jobs", *jobsOn),
			slog.Bool("tenants", *tenants),
			slog.Group("recovered",
				slog.Int64("snapshot_entries", rs.SnapshotEntries),
				slog.Int64("snapshot_skipped", rs.SnapshotSkipped),
				slog.Int64("journal_records", rs.JournalReplayed),
				slog.Int64("journal_skipped", rs.JournalSkipped),
				slog.Int64("warmed", rs.Warmed)))
		errc <- srv.Serve(ln)
	}()

	select {
	case err := <-errc:
		cli.Exit("blserve", err)
	case <-ctx.Done():
	}
	// Start refusing new work before Shutdown unbinds the listener:
	// requests that race the drain get an explicit 503 + Connection:
	// close instead of a connection reset, so gateway health checks
	// fail fast and cleanly during rollouts. The lame-duck pause keeps
	// the listener open while refusing — a balancer probing /healthz
	// sees the 503 and rotates us out before connections start failing.
	app.startDraining()
	logger.Info("shutting down", slog.Duration("drain", *drain))
	lame := *drain / 4
	if lame > 2*time.Second {
		lame = 2 * time.Second
	}
	time.Sleep(lame)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		cli.Exit("blserve", err)
	}
	// Stop the coordinator before the service so its completed-shard
	// state is final when the closing snapshot collects it.
	if app.eng != nil {
		if err := app.eng.Close(); err != nil {
			cli.Exit("blserve", err)
		}
	}
	// Close writes the final snapshot; with -state-dir the next boot
	// starts warm.
	if err := svc.Close(); err != nil {
		cli.Exit("blserve", err)
	}
}
