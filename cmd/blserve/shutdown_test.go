package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestShutdownUnderLoad: a graceful shutdown while requests are in
// flight must never produce a torn response. Every client either gets a
// complete, valid JSON body or a clean transport-level failure — never
// a 200 with truncated JSON.
func TestShutdownUnderLoad(t *testing.T) {
	ts, _ := newTestServer(t)

	const n = 24
	var wg sync.WaitGroup
	type outcome struct {
		status int
		body   []byte
		err    error
	}
	results := make([]outcome, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			// Distinct sources so nothing is served from cache; loop bound
			// varies the amount of in-flight work when shutdown lands.
			src := fmt.Sprintf(
				"int main() { int i; int s = 0; for (i = 0; i < %d; i++) { s += i %% 7; } printi(s); return 0; }",
				10000*(i+1))
			body, _ := json.Marshal(predictRequest{Source: src})
			resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
			if err != nil {
				results[i] = outcome{err: err}
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			_, rerr := buf.ReadFrom(resp.Body)
			results[i] = outcome{status: resp.StatusCode, body: buf.Bytes(), err: rerr}
		}(i)
	}
	close(start)

	// Let a few requests get in flight, then shut down gracefully while
	// the rest are still arriving.
	time.Sleep(5 * time.Millisecond)
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ts.Config.Shutdown(shutCtx); err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}
	wg.Wait()

	var completed, refused int
	for i, res := range results {
		if res.err != nil {
			// Connection refused/reset by shutdown: a clean failure.
			refused++
			continue
		}
		completed++
		if !json.Valid(res.body) {
			t.Errorf("request %d: status %d with torn body %q", i, res.status, res.body)
			continue
		}
		switch res.status {
		case http.StatusOK:
			var out predictResponse
			if err := json.Unmarshal(res.body, &out); err != nil || out.Steps == 0 {
				t.Errorf("request %d: 200 with incomplete result %q (err %v)", i, res.body, err)
			}
		default:
			var e errorResponse
			if err := json.Unmarshal(res.body, &e); err != nil || e.Code == "" {
				t.Errorf("request %d: status %d with malformed error body %q", i, res.status, res.body)
			}
		}
	}
	if completed == 0 {
		t.Fatal("shutdown killed every request; expected in-flight requests to drain")
	}
	t.Logf("shutdown under load: %d completed, %d cleanly refused", completed, refused)
}
