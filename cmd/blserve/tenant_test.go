package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ballarus"
)

// tenantPost posts body to path with optional headers and decodes the
// reply into out (when the pointer is non-nil and the reply is JSON).
func tenantPost(t *testing.T, ts *httptest.Server, path string, body any, hdr map[string]string, out any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", path, err)
		}
	}
	return resp
}

func newTenantTestServer(t *testing.T, cfg ballarus.TenantConfig) *httptest.Server {
	t.Helper()
	ts, _ := newTestServer(t, ballarus.WithTenants(ballarus.NewTenantRegistry(cfg)))
	return ts
}

// TestTenantQuota429: a tenant over its rate quota gets 429
// quota_exceeded with the full X-RateLimit-* header set — the
// gateway's signal that this rejection is terminal — while other
// tenants are untouched.
func TestTenantQuota429(t *testing.T) {
	ts := newTenantTestServer(t, ballarus.TenantConfig{
		Defaults:  ballarus.TenantLimits{Rate: 1000},
		Overrides: map[string]ballarus.TenantLimits{"metered": {Rate: 1, Burst: 1}},
	})
	hdr := map[string]string{"X-Tenant-Id": "metered"}
	body := predictRequest{Source: testSrc}

	if resp := tenantPost(t, ts, "/v1/predict", body, hdr, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("first metered request status = %d, want 200", resp.StatusCode)
	}
	var e errorResponse
	resp := tenantPost(t, ts, "/v1/predict", body, hdr, &e)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second metered request status = %d, want 429", resp.StatusCode)
	}
	if e.Code != "quota_exceeded" {
		t.Errorf("code = %q, want quota_exceeded", e.Code)
	}
	for _, h := range []string{"Retry-After", "X-RateLimit-Limit", "X-RateLimit-Remaining", "X-RateLimit-Reset"} {
		if resp.Header.Get(h) == "" {
			t.Errorf("quota 429 missing %s header", h)
		}
	}
	// Another tenant's bucket is separate.
	if resp := tenantPost(t, ts, "/v1/predict", body, map[string]string{"X-Tenant-Id": "other"}, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("unrelated tenant status = %d, want 200", resp.StatusCode)
	}
	// A global-overload shed never carries X-RateLimit-Limit; quota
	// rejections must never be served stale either — re-ask as metered:
	// the earlier 200 populated the stale cache for this exact body, yet
	// the tenant still sees its 429.
	resp = tenantPost(t, ts, "/v1/predict", body, hdr, &e)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("metered retry status = %d, want 429 (stale cache must not mask quota)", resp.StatusCode)
	}
}

// TestTenantIDRejectedWhenOversized: hostile identities are refused at
// the edge before touching registry or metric labels.
func TestTenantIDRejectedWhenOversized(t *testing.T) {
	ts := newTenantTestServer(t, ballarus.TenantConfig{Defaults: ballarus.TenantLimits{Rate: 100}})
	hdr := map[string]string{"X-Tenant-Id": strings.Repeat("x", ballarus.TenantMaxIDLen+1)}
	var e errorResponse
	resp := tenantPost(t, ts, "/v1/predict", predictRequest{Source: testSrc}, hdr, &e)
	if resp.StatusCode != http.StatusBadRequest || e.Code != "invalid_input" {
		t.Fatalf("oversized tenant id: status=%d code=%q, want 400 invalid_input", resp.StatusCode, e.Code)
	}
}

// TestBatchEndpoint: mixed predict/compare items return per-item
// results; malformed items fail alone with their own classified error.
func TestBatchEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	req := batchRequest{Items: []batchItemRequest{
		{Predict: &predictRequest{Source: testSrc, IncludeOutput: true}},
		{Compare: &compareRequest{Source: testSrc, Predictors: []string{"gshare"}}},
		{Predict: &predictRequest{Source: testSrc, Order: "NoSuchHeuristic"}},
		{},
	}}
	var out batchResponse
	resp := tenantPost(t, ts, "/v1/batch", req, nil, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	if out.Succeeded != 2 || out.Failed != 2 {
		t.Fatalf("succeeded=%d failed=%d, want 2/2", out.Succeeded, out.Failed)
	}
	if out.Items[0].Predict == nil || out.Items[0].Predict.Output == "" {
		t.Errorf("item 0: want a predict result echoing output, got %+v", out.Items[0])
	}
	if out.Items[1].Compare == nil || len(out.Items[1].Compare.Predictors) == 0 {
		t.Errorf("item 1: want a compare result, got %+v", out.Items[1])
	}
	if out.Items[2].Code != "invalid_input" || !strings.Contains(out.Items[2].Error, "heuristic") {
		t.Errorf("item 2: want the order parse error, got %+v", out.Items[2])
	}
	if out.Items[3].Code != "invalid_input" {
		t.Errorf("item 3: want invalid_input for an empty item, got %+v", out.Items[3])
	}

	// Bounds: empty and oversized batches are request-shape errors.
	var e errorResponse
	if resp := tenantPost(t, ts, "/v1/batch", batchRequest{}, nil, &e); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch status = %d, want 400", resp.StatusCode)
	}
	big := batchRequest{Items: make([]batchItemRequest, defaultBatchMax+1)}
	for i := range big.Items {
		big.Items[i].Predict = &predictRequest{Source: testSrc}
	}
	if resp := tenantPost(t, ts, "/v1/batch", big, nil, &e); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch status = %d, want 400", resp.StatusCode)
	}
}

// TestBatchQuotaRejectedAsUnit: a batch larger than the tenant's burst
// is rejected whole — one 429 with rate-limit headers, zero work, no
// tokens spent — while a batch within quota runs every item.
func TestBatchQuotaRejectedAsUnit(t *testing.T) {
	ts := newTenantTestServer(t, ballarus.TenantConfig{
		Defaults:  ballarus.TenantLimits{Rate: 1000},
		Overrides: map[string]ballarus.TenantLimits{"metered": {Rate: 1, Burst: 3}},
	})
	hdr := map[string]string{"X-Tenant-Id": "metered"}
	items := func(n int) batchRequest {
		r := batchRequest{}
		for i := 0; i < n; i++ {
			r.Items = append(r.Items, batchItemRequest{Predict: &predictRequest{Source: testSrc}})
		}
		return r
	}

	var e errorResponse
	resp := tenantPost(t, ts, "/v1/batch", items(4), hdr, &e)
	if resp.StatusCode != http.StatusTooManyRequests || e.Code != "quota_exceeded" {
		t.Fatalf("over-burst batch: status=%d code=%q, want 429 quota_exceeded", resp.StatusCode, e.Code)
	}
	if resp.Header.Get("X-RateLimit-Limit") == "" {
		t.Error("batch quota 429 missing X-RateLimit-Limit")
	}
	// The rejection charged nothing: a 3-item batch still fits.
	var out batchResponse
	resp = tenantPost(t, ts, "/v1/batch", items(3), hdr, &out)
	if resp.StatusCode != http.StatusOK || out.Succeeded != 3 {
		t.Fatalf("in-quota batch: status=%d succeeded=%d, want 200 with 3", resp.StatusCode, out.Succeeded)
	}
	// And it spent exactly 3 tokens: the next single request is over.
	resp = tenantPost(t, ts, "/v1/predict", predictRequest{Source: testSrc}, hdr, &e)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("post-batch single request status = %d, want 429 (batch must charge per item)", resp.StatusCode)
	}
}

// TestParseTenantQuota covers the -tenant-quota override grammar.
func TestParseTenantQuota(t *testing.T) {
	id, lim, err := parseTenantQuota("gold=200,400,8,3")
	if err != nil || id != "gold" {
		t.Fatalf("parse: id=%q err=%v", id, err)
	}
	if lim.Rate != 200 || lim.Burst != 400 || lim.MaxInFlight != 8 || lim.Weight != 3 {
		t.Fatalf("limits = %+v", lim)
	}
	if id, lim, err = parseTenantQuota("hog=2"); err != nil || id != "hog" || lim.Rate != 2 || lim.Burst != 0 {
		t.Fatalf("short form: id=%q lim=%+v err=%v", id, lim, err)
	}
	for _, bad := range []string{"", "=2", "x", "a=1,2,3,4,5", "a=-1", "a=nope"} {
		if _, _, err := parseTenantQuota(bad); err == nil {
			t.Errorf("parseTenantQuota(%q) accepted", bad)
		}
	}
}
