// blgraphs regenerates the paper's Graphs 1-13 as TSV series.
//
// Usage:
//
//	blgraphs -graph 4          # one graph as TSV
//	blgraphs -graph 4 -summary # just the headline numbers
//	blgraphs                   # summaries of all graphs
package main

import (
	"flag"
	"fmt"

	"ballarus"
	"ballarus/internal/cli"
	"ballarus/internal/eval"
)

func main() {
	graphN := flag.Int("graph", 0, "graph number (1-13); 0 = all summaries")
	summary := flag.Bool("summary", false, "print only headline numbers")
	trials := flag.Int("trials", 20000, "sampled subset trials for Graphs 2-3")
	exact := flag.Bool("exact", false, "exact subset experiment for Graphs 2-3")
	flag.Parse()

	e := ballarus.NewEvaluator()
	t := cli.Trials(*trials, *exact)
	get := func(n int) (*eval.Graph, error) {
		switch n {
		case 1:
			return e.Graph1()
		case 2:
			return e.Graph2(t)
		case 3:
			return e.Graph3(t)
		case 12:
			return e.Graph12(), nil
		case 13:
			return e.Graph13()
		default:
			return e.GraphSeq(n)
		}
	}
	emit := func(n int, summaryOnly bool) {
		g, err := get(n)
		if err != nil {
			fatal(fmt.Errorf("graph %d: %w", n, err))
		}
		if summaryOnly {
			fmt.Println(g.Summary())
		} else {
			fmt.Println(g.TSV())
		}
	}
	if *graphN != 0 {
		if *graphN < 1 || *graphN > 13 {
			cli.Usage("blgraphs [-graph 1-13] [-summary] [-exact] [-trials n]")
		}
		emit(*graphN, *summary)
		return
	}
	for n := 1; n <= 13; n++ {
		emit(n, true)
	}
}

func fatal(err error) { cli.Exit("blgraphs", err) }
