// blbench writes the repeatable benchmark snapshots BENCH_compare.json
// (predictor replay throughput in ns per branch event, allocations per
// full-trace replay, and each backend's aggregate miss rate over the
// 23-benchmark suite), BENCH_batch.json (warm Service.Batch
// throughput in items/sec and allocations per item), and — with
// -serve-out — BENCH_serve.json (warm /v1/predict p50/p99 latency,
// allocations per request, and hedge-fire rate through an in-process
// gateway+replica loop). CI runs it on every push so predictor and
// serving regressions show up as a diff in the artifact, not as an
// anecdote.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"testing"

	"ballarus"
	"ballarus/internal/core"
	"ballarus/internal/dynpred"
	"ballarus/internal/eval"
	"ballarus/internal/interp"
	"ballarus/internal/suite"
	"ballarus/internal/trace"
)

// predictorBench is one backend's row in the snapshot.
type predictorBench struct {
	Name string `json:"name"`
	// Dynamic indicates a streaming history-based backend; static
	// vectors have no per-event predictor work to time.
	Dynamic bool `json:"dynamic"`
	// NsPerBranchEvent times Predict+Update per branch event, replaying
	// the timing benchmark's materialized trace.
	NsPerBranchEvent float64 `json:"ns_per_branch_event,omitempty"`
	// AllocsPerRun counts heap allocations for one full-trace replay,
	// predictor construction included.
	AllocsPerRun int64 `json:"allocs_per_run,omitempty"`
	// SuiteMissRatePct aggregates misses over every suite benchmark's
	// default dataset: 100 * total misses / total branch events.
	SuiteMissRatePct float64 `json:"suite_miss_rate_pct"`
	SuiteMisses      int64   `json:"suite_misses"`
}

// snapshot is the BENCH_compare.json document.
type snapshot struct {
	TimingBenchmark   string           `json:"timing_benchmark"`
	TimingEvents      int              `json:"timing_branch_events"`
	SuiteBenchmarks   int              `json:"suite_benchmarks"`
	SuiteBranchEvents int64            `json:"suite_branch_events"`
	Predictors        []predictorBench `json:"predictors"`
}

// batchSnapshot is the BENCH_batch.json document: warm Service.Batch
// throughput, so cache-path and admission-path regressions in the
// batch pipeline are visible as a diff.
type batchSnapshot struct {
	ItemsPerBatch   int     `json:"items_per_batch"`
	DistinctSources int     `json:"distinct_sources"`
	NsPerItem       float64 `json:"ns_per_item"`
	ItemsPerSec     float64 `json:"items_per_sec"`
	AllocsPerItem   int64   `json:"allocs_per_item"`
}

func main() {
	out := flag.String("out", "BENCH_compare.json", "output path for the predictor snapshot")
	batchOut := flag.String("batch-out", "BENCH_batch.json", "output path for the batch-serving snapshot (empty disables)")
	serveOut := flag.String("serve-out", "", "output path for the gateway-serving snapshot, e.g. BENCH_serve.json (empty disables)")
	timing := flag.String("timing-benchmark", "eqntott", "suite benchmark whose trace times the predictors")
	flag.Parse()

	snap, err := build(*timing)
	if err != nil {
		log.Fatal(err)
	}
	writeSnapshot(*out, snap)
	fmt.Printf("wrote %s: %d predictors, %d suite branch events\n",
		*out, len(snap.Predictors), snap.SuiteBranchEvents)

	if *batchOut != "" {
		bsnap, err := buildBatch()
		if err != nil {
			log.Fatal(err)
		}
		writeSnapshot(*batchOut, bsnap)
		fmt.Printf("wrote %s: %.0f items/sec, %d allocs/item\n",
			*batchOut, bsnap.ItemsPerSec, bsnap.AllocsPerItem)
	}

	if *serveOut != "" {
		ssnap, err := buildServe()
		if err != nil {
			log.Fatal(err)
		}
		writeSnapshot(*serveOut, ssnap)
		fmt.Printf("wrote %s: p50 %dns, p99 %dns, %d allocs/request, %.1f%% hedge fires\n",
			*serveOut, ssnap.P50Ns, ssnap.P99Ns, ssnap.AllocsPerRequest, ssnap.HedgeFireRatePct)
	}
}

func writeSnapshot(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
}

// buildBatch times the warm batch-serving path: one Service.Batch call
// over a fixed item set whose results are already cached, which is the
// steady-state cost of batch admission, fan-out, and cache lookups.
func buildBatch() (*batchSnapshot, error) {
	const items, distinct = 16, 4
	svc := ballarus.NewService()
	batch := make([]ballarus.BatchItem, items)
	for i := range batch {
		req := ballarus.PredictRequest{Source: fmt.Sprintf(
			"int main() { int i; int s = %d; for (i = 0; i < 400; i++) { if (i %% 5 == 0) { s += i; } else { s -= 1; } } printi(s); return 0; }",
			i%distinct)}
		batch[i].Predict = &req
	}
	ctx := context.Background()
	prime, err := svc.Batch(ctx, batch)
	if err != nil {
		return nil, err
	}
	if prime.Failed > 0 {
		return nil, fmt.Errorf("batch priming failed %d/%d items", prime.Failed, len(prime.Items))
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := svc.Batch(ctx, batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	nsPerItem := float64(res.NsPerOp()) / items
	return &batchSnapshot{
		ItemsPerBatch:   items,
		DistinctSources: distinct,
		NsPerItem:       nsPerItem,
		ItemsPerSec:     1e9 / nsPerItem,
		AllocsPerItem:   res.AllocsPerOp() / items,
	}, nil
}

func build(timingName string) (*snapshot, error) {
	tb := suite.Get(timingName)
	if tb == nil {
		return nil, fmt.Errorf("unknown timing benchmark %q", timingName)
	}
	e := eval.New()
	tr, err := e.Run(tb, 0, true)
	if err != nil {
		return nil, err
	}
	n := tr.Profile.Set.Len()
	branchEvents := 0
	for _, ev := range tr.Events {
		if ev.Kind == interp.EvBranch {
			branchEvents++
		}
	}

	snap := &snapshot{
		TimingBenchmark: timingName,
		TimingEvents:    branchEvents,
		SuiteBenchmarks: len(suite.All()),
	}

	// Dynamic backends: time a full-trace replay, then aggregate miss
	// counts over the suite.
	names := dynpred.Names()
	misses := make(map[string]int64, len(names)+2)
	for _, name := range names {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p, err := dynpred.New(name, n)
				if err != nil {
					b.Fatal(err)
				}
				dynpred.Replay(tr.Events, n, p)
			}
		})
		snap.Predictors = append(snap.Predictors, predictorBench{
			Name:             name,
			Dynamic:          true,
			NsPerBranchEvent: float64(res.NsPerOp()) / float64(branchEvents),
			AllocsPerRun:     res.AllocsPerOp(),
		})
	}

	for _, b := range suite.All() {
		r, err := e.Run(b, 0, true)
		if err != nil {
			return nil, err
		}
		nb := r.Profile.Set.Len()
		for _, name := range names {
			p, err := dynpred.New(name, nb)
			if err != nil {
				return nil, err
			}
			rr := dynpred.Replay(r.Events, nb, p)
			misses[name] += rr.Miss
			if name == names[0] {
				snap.SuiteBranchEvents += rr.Branches
			}
		}
		heur := trace.PredictionVector(r.Analysis.Predictions(core.DefaultOrder))
		misses["ballarus-heuristics"] += dynpred.StaticResult(r.Profile, heur).Miss
		misses["perfect"] += dynpred.StaticResult(r.Profile, trace.PerfectVector(r.Profile)).Miss
	}

	for i := range snap.Predictors {
		p := &snap.Predictors[i]
		p.SuiteMisses = misses[p.Name]
		p.SuiteMissRatePct = 100 * float64(p.SuiteMisses) / float64(snap.SuiteBranchEvents)
	}
	for _, name := range []string{"ballarus-heuristics", "perfect"} {
		snap.Predictors = append(snap.Predictors, predictorBench{
			Name:             name,
			SuiteMisses:      misses[name],
			SuiteMissRatePct: 100 * float64(misses[name]) / float64(snap.SuiteBranchEvents),
		})
	}
	return snap, nil
}
