package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"ballarus"
	"ballarus/internal/cluster"
)

// serveSnapshot is the BENCH_serve.json document: warm end-to-end
// /v1/predict latency through an in-process blgate+replicas loop, so
// regressions in the gateway proxy path (routing, hedging, tracing)
// show up as a diff next to the predictor and batch snapshots.
type serveSnapshot struct {
	Replicas         int     `json:"replicas"`
	Requests         int     `json:"requests"`
	P50Ns            int64   `json:"p50_ns"`
	P99Ns            int64   `json:"p99_ns"`
	AllocsPerRequest int64   `json:"allocs_per_request"`
	HedgeFires       int64   `json:"hedge_fires"`
	HedgeFireRatePct float64 `json:"hedge_fire_rate_pct"`
}

// serveReplica is a minimal in-process stand-in for one blserve: a
// real Service behind /v1/predict and /healthz. Using the service
// keeps the measured latency honest (admission, cache, metrics) while
// skipping process spawning, which would make the benchmark flaky.
func serveReplica(svc *ballarus.Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("POST /v1/predict", func(w http.ResponseWriter, r *http.Request) {
		var req ballarus.PredictRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := svc.Predict(r.Context(), req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(res)
	})
	return mux
}

// buildServe measures the warm gateway serving path: two in-process
// replicas fronted by a real cluster.Gateway, a cached /v1/predict
// request, per-request latencies for p50/p99, allocations per request,
// and the hedge-fire rate over the measured loop.
func buildServe() (*serveSnapshot, error) {
	const requests = 400
	discard := slog.New(slog.NewTextHandler(io.Discard, nil))

	var upstreams []*httptest.Server
	var urls []string
	for i := 0; i < 2; i++ {
		ts := httptest.NewServer(serveReplica(ballarus.NewService()))
		upstreams = append(upstreams, ts)
		urls = append(urls, ts.URL)
	}
	defer func() {
		for _, ts := range upstreams {
			ts.Close()
		}
	}()

	g, err := cluster.New(cluster.Config{
		Replicas:     urls,
		ProbeEvery:   10 * time.Millisecond,
		ProbeTimeout: time.Second,
		Rise:         1,
		Timeout:      30 * time.Second,
		Logger:       discard,
	})
	if err != nil {
		return nil, err
	}
	defer g.Close()
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	deadline := time.Now().Add(5 * time.Second)
	for g.Stats().HealthyReplicas < len(urls) {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("gateway never saw %d healthy replicas", len(urls))
		}
		time.Sleep(5 * time.Millisecond)
	}

	body := []byte(`{"source": "int main() { int i; int s = 0; for (i = 0; i < 400; i++) { if (i % 5 == 0) { s += i; } else { s -= 1; } } printi(s); return 0; }"}`)
	post := func() error {
		resp, err := http.Post(gw.URL+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("predict: http %d", resp.StatusCode)
		}
		return nil
	}
	// Warm every replica's cache so the measured loop is steady-state.
	for i := 0; i < 10; i++ {
		if err := post(); err != nil {
			return nil, err
		}
	}

	baseline := g.Stats()
	lat := make([]int64, 0, requests)
	for i := 0; i < requests; i++ {
		start := time.Now()
		if err := post(); err != nil {
			return nil, err
		}
		lat = append(lat, time.Since(start).Nanoseconds())
	}
	fires := g.Stats().HedgeFires - baseline.HedgeFires
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	quantile := func(q float64) int64 {
		idx := int(q * float64(len(lat)-1))
		return lat[idx]
	}

	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := post(); err != nil {
				b.Fatal(err)
			}
		}
	})

	return &serveSnapshot{
		Replicas:         len(urls),
		Requests:         requests,
		P50Ns:            quantile(0.50),
		P99Ns:            quantile(0.99),
		AllocsPerRequest: res.AllocsPerOp(),
		HedgeFires:       fires,
		HedgeFireRatePct: 100 * float64(fires) / float64(requests),
	}, nil
}
