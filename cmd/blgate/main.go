// blgate fronts N blserve replicas with one reliable endpoint: active
// health checking plus passive outlier ejection keep traffic off sick
// replicas, hedged requests cut the tail latency of stalled ones, a
// token-bucket retry budget bounds the extra load retries and hedges
// may add, client deadlines propagate end-to-end via X-Deadline-Ms,
// and when every replica is down the gateway serves its last-known-
// good responses marked "degraded":true instead of failing.
//
// Usage:
//
//	blgate -replicas http://127.0.0.1:8723,http://127.0.0.1:8724 \
//	       [-addr :8722] [-timeout 30s] [-max-attempts 3]
//	       [-probe-every 1s] [-probe-timeout 500ms] [-rise 2] [-fall 2]
//	       [-eject-after 3] [-eject-base 1s] [-eject-max 30s]
//	       [-hedge-quantile 0.9] [-hedge-initial 50ms] [-hedge-min 5ms]
//	       [-retry-ratio 0.2] [-retry-burst 10] [-stale-cap 256]
//	       [-routing least-inflight] [-routing-seed 0]
//	       [-trace-ring 256] [-trace-archive 512] [-trace-sample 0.01]
//	       [-trace-slow 250ms]
//	       [-log-level info] [-log-format text]
//
// -routing rendezvous shards requests across replicas by their
// canonical content key (rendezvous hashing), so each replica's caches
// specialize on a stable slice of the key space; when a replica dies
// only its ~1/N of keys move, and they move back when it recovers.
// Per-tenant quota rejections from blserve -tenants (429 with
// X-RateLimit-Limit) pass through verbatim on the first attempt —
// hedging or retrying a deterministic quota rejection only amplifies
// it — while global-overload 429s are still retried elsewhere.
//
// Endpoints:
//
//	POST /v1/predict     hedged, budgeted, deadline-bounded proxying
//	POST /v1/compare     same treatment — the tournament is idempotent
//	POST /v1/batch       same treatment — batches are per-item idempotent
//	POST /v1/shard       same treatment — job shards are idempotent, so
//	                     coordinators dispatch through the gateway
//	GET  /v1/stats       passthrough to one routable replica
//	GET  /healthz        200 while at least one replica is routable
//	GET  /gateway/stats  per-replica health, ejections, budget, cache
//	GET  /metrics        gateway Prometheus exposition
//	GET  /v1/trace/{id}  assemble one distributed trace: the gateway's
//	                     request and attempt spans merged with every
//	                     replica's stage spans into a parent-linked tree
//	GET  /v1/trace/slowest  worst archived traces by duration (?n=5)
//	GET  /debug/traces   the gateway's own trace ring and archive
//	                     (?last=N, ?id=, ?slowest=N)
//
// Every proxied request runs under a trace whose ID is echoed in
// X-Trace-Id; each attempt (primary, hedge, retry) gets a child span
// and stamps a Traceparent header so the replica's trace links back
// to it. Traces that errored, hedged, tripped a breaker, or exceeded
// -trace-slow are tail-sampled into a bounded archive, plus a
// deterministic -trace-sample fraction of the rest.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"ballarus/internal/cli"
	"ballarus/internal/cluster"
	"ballarus/internal/obs"
)

const version = "0.3.0"

func main() {
	addr := flag.String("addr", ":8722", "listen address (:0 picks a free port, printed on stderr)")
	replicas := flag.String("replicas", "", "comma-separated blserve base URLs (required)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline when the client sends no X-Deadline-Ms")
	maxAttempts := flag.Int("max-attempts", 3, "max attempts per request, primary included")
	probeEvery := flag.Duration("probe-every", time.Second, "active /healthz probe interval")
	probeTimeout := flag.Duration("probe-timeout", 500*time.Millisecond, "per-probe timeout")
	rise := flag.Int("rise", 2, "consecutive probe passes that mark a replica healthy")
	fall := flag.Int("fall", 2, "consecutive probe failures that mark a replica down")
	ejectAfter := flag.Int("eject-after", 3, "consecutive live-traffic failures that eject a replica")
	ejectBase := flag.Duration("eject-base", time.Second, "first ejection cool-off (doubles per repeat)")
	ejectMax := flag.Duration("eject-max", 30*time.Second, "ejection cool-off cap")
	hedgeQuantile := flag.Float64("hedge-quantile", 0.9, "latency quantile after which a hedge fires")
	hedgeInitial := flag.Duration("hedge-initial", 50*time.Millisecond, "hedge delay before latency data accumulates")
	hedgeMin := flag.Duration("hedge-min", 5*time.Millisecond, "hedge delay floor")
	retryRatio := flag.Float64("retry-ratio", 0.2, "retry-budget tokens deposited per primary attempt")
	retryBurst := flag.Int("retry-burst", 10, "retry-budget token cap")
	staleCap := flag.Int("stale-cap", 256, "last-known-good brownout cache entries")
	routing := flag.String("routing", cluster.RoutingLeastInflight,
		"replica routing policy: least-inflight or rendezvous (shard by request content key)")
	routingSeed := flag.Uint64("routing-seed", 0, "tie-break RNG seed (0 = from the clock; fixed seeds reproduce routing)")
	traceRing := flag.Int("trace-ring", 256, "recent traces retained in the in-memory ring")
	traceArchive := flag.Int("trace-archive", 512, "max traces retained in the tail-sampled archive")
	traceSample := flag.Float64("trace-sample", 0.01, "probability of archiving an otherwise uninteresting trace (deterministic per trace ID)")
	traceSlow := flag.Duration("trace-slow", 250*time.Millisecond, "latency at or above which a trace is always archived")
	drain := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown drain window")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	flag.Parse()

	logger, err := cli.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		cli.Exit("blgate", err)
	}
	var urls []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			urls = append(urls, r)
		}
	}
	if len(urls) == 0 {
		cli.Exit("blgate", fmt.Errorf("-replicas is required (comma-separated blserve base URLs)"))
	}

	g, err := cluster.New(cluster.Config{
		Replicas:      urls,
		ProbeEvery:    *probeEvery,
		ProbeTimeout:  *probeTimeout,
		Rise:          *rise,
		Fall:          *fall,
		EjectAfter:    *ejectAfter,
		EjectBase:     *ejectBase,
		EjectMax:      *ejectMax,
		HedgeQuantile: *hedgeQuantile,
		HedgeInitial:  *hedgeInitial,
		HedgeMin:      *hedgeMin,
		MaxAttempts:   *maxAttempts,
		RetryRatio:    *retryRatio,
		RetryBurst:    *retryBurst,
		Routing:       *routing,
		RoutingSeed:   *routingSeed,
		Timeout:       *timeout,
		StaleCap:      *staleCap,
		Logger:        logger,
		Tracer:        obs.NewTracer(*traceRing, logger),
		TraceArchive: obs.NewArchive(obs.ArchivePolicy{
			Capacity:      *traceArchive,
			SlowThreshold: *traceSlow,
			SampleRate:    *traceSample,
		}),
	})
	if err != nil {
		cli.Exit("blgate", err)
	}
	defer g.Close()

	ctx, stop := cli.SignalContext()
	defer stop()

	// Listen before serving so -addr :0 reports the bound port — the
	// chaos harness keys on this line, exactly as with blserve.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		cli.Exit("blgate", err)
	}
	srv := &http.Server{
		Handler:           g.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      *timeout + 5*time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening",
			slog.String("addr", ln.Addr().String()),
			slog.String("version", version),
			slog.Int("replicas", len(urls)),
			slog.Duration("timeout", *timeout),
			slog.Int("max_attempts", *maxAttempts),
			slog.Float64("retry_ratio", *retryRatio),
			slog.String("routing", *routing),
			slog.Duration("probe_every", *probeEvery))
		errc <- srv.Serve(ln)
	}()

	select {
	case err := <-errc:
		cli.Exit("blgate", err)
	case <-ctx.Done():
	}
	logger.Info("shutting down", slog.Duration("drain", *drain))
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		cli.Exit("blgate", err)
	}
}
