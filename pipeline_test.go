package ballarus

import (
	"testing"

	"ballarus/internal/asm"
	"ballarus/internal/suite"
)

// TestFullPipelineComposition chains every transformation in the
// repository — compile, optimize, predict, reorder, assemble, reassemble,
// run — and demands behavioral equality at the end of the chain.
func TestFullPipelineComposition(t *testing.T) {
	for _, name := range []string{"grep", "eqntott", "doduc"} {
		name := name
		t.Run(name, func(t *testing.T) {
			b := suite.Get(name)
			prog, err := b.Compile()
			if err != nil {
				t.Fatal(err)
			}
			baseline, err := Execute(prog, RunConfig{Input: b.Data[0].Input, Budget: b.Budget})
			if err != nil {
				t.Fatal(err)
			}

			// compile -> optimize
			opt := Optimize(prog)
			// optimize -> analyze + layout
			a, err := Analyze(opt)
			if err != nil {
				t.Fatal(err)
			}
			laid, err := Reorder(a, a.Predictions(DefaultOrder))
			if err != nil {
				t.Fatal(err)
			}
			// layout -> assembler round trip
			back, err := asm.Assemble(asm.Format(laid))
			if err != nil {
				t.Fatal(err)
			}
			res, err := Execute(back, RunConfig{Input: b.Data[0].Input, Budget: 2 * b.Budget})
			if err != nil {
				t.Fatalf("end of pipeline faulted: %v", err)
			}
			if res.Output != baseline.Output {
				t.Fatalf("pipeline changed behavior:\n  baseline %q\n  final    %q",
					baseline.Output, res.Output)
			}
			// The final program should be leaner and no less predictable
			// in layout terms than the original.
			if back.NumInstrs() >= prog.NumInstrs() {
				t.Errorf("pipeline grew the program: %d -> %d instrs",
					prog.NumInstrs(), back.NumInstrs())
			}
			t.Logf("%s: %d -> %d static instrs; %d -> %d dynamic; taken %.1f%% -> %.1f%%",
				name, prog.NumInstrs(), back.NumInstrs(), baseline.Steps, res.Steps,
				100*TakenRate(baseline.Profile), 100*TakenRate(res.Profile))
		})
	}
}

// TestOptimizedProgramsStillAnalyzable runs the full Ball-Larus analysis
// over optimized versions of every benchmark: no pass may produce a CFG
// the analyses reject.
func TestOptimizedProgramsStillAnalyzable(t *testing.T) {
	for _, b := range suite.All() {
		prog, err := b.Compile()
		if err != nil {
			t.Fatal(err)
		}
		op := Optimize(prog)
		a, err := Analyze(op)
		if err != nil {
			t.Fatalf("%s: analysis of optimized program failed: %v", b.Name, err)
		}
		preds := a.Predictions(DefaultOrder)
		for i, p := range preds {
			if p == PredNone {
				t.Fatalf("%s: optimized branch %d unpredicted", b.Name, i)
			}
		}
	}
}
