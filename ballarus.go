// Package ballarus is a from-scratch reproduction of Ball & Larus,
// "Branch Prediction For Free" (PLDI 1993): program-based static branch
// prediction using natural-loop analysis for loop branches and seven
// simple heuristics (Opcode, Loop, Call, Return, Guard, Store, Pointer)
// for non-loop branches.
//
// The package is a facade over the implementation packages:
//
//   - a MIPS-like IR (mir) and CFG analyses (cfg),
//   - a compiler for a small C-like language (minic) used to author the
//     23-benchmark suite (suite),
//   - an interpreter that produces edge profiles and event traces
//     (interp, profile), standing in for the paper's QPT tool,
//   - the predictor itself (core), the Section 6 trace analysis (trace),
//     the Section 5 ordering experiments (orders), and the harness that
//     regenerates every table and figure (eval).
//
// Quick start:
//
//	prog, _ := ballarus.Compile(src)
//	analysis, _ := ballarus.Analyze(prog)
//	preds := analysis.Predictions(ballarus.DefaultOrder)
//	res, _ := ballarus.Execute(prog, ballarus.RunConfig{Input: input})
//	score := ballarus.Score(analysis, preds, res.Profile)
package ballarus

import (
	"ballarus/internal/core"
	"ballarus/internal/eval"
	"ballarus/internal/freq"
	"ballarus/internal/interp"
	"ballarus/internal/layout"
	"ballarus/internal/minic"
	"ballarus/internal/mir"
	"ballarus/internal/opt"
	"ballarus/internal/orders"
	"ballarus/internal/profile"
	"ballarus/internal/suite"
	"ballarus/internal/trace"
)

// Re-exported types. Aliases keep the public API usable without importing
// the internal packages.
type (
	// Program is a compiled MIR program.
	Program = mir.Program
	// CompileOptions control minic code generation.
	CompileOptions = minic.Options
	// Analysis is the full Ball-Larus static analysis of a program.
	Analysis = core.Analysis
	// AnalysisOptions configure the predictor (ablations).
	AnalysisOptions = core.Options
	// Branch is the per-branch analysis result.
	Branch = core.Branch
	// Prediction is a static taken/fall prediction.
	Prediction = core.Prediction
	// Heuristic identifies one of the seven non-loop heuristics.
	Heuristic = core.Heuristic
	// Order is a priority order over the heuristics.
	Order = core.Order
	// RunConfig configures program execution.
	RunConfig = interp.Config
	// RunResult is the outcome of a program execution.
	RunResult = interp.Result
	// Profile is an edge profile.
	Profile = profile.Profile
	// Rate is a miss-rate pair in the paper's C/D notation.
	Rate = profile.Rate
	// Event is one trace record.
	Event = interp.Event
	// Dist is a sequence-length distribution between breaks in control.
	Dist = trace.Dist
	// Benchmark is one suite program.
	Benchmark = suite.Benchmark
	// Evaluator regenerates the paper's tables and figures.
	Evaluator = eval.Evaluator
	// Sweep is the 5040-order miss-rate matrix.
	Sweep = orders.Sweep
)

// Prediction values and heuristics.
const (
	PredNone  = core.PredNone
	PredTaken = core.PredTaken
	PredFall  = core.PredFall

	Opcode  = core.Opcode
	LoopH   = core.LoopH
	CallH   = core.CallH
	ReturnH = core.ReturnH
	Guard   = core.Guard
	Store   = core.Store
	Point   = core.Point
)

// DefaultOrder is the paper's Table 5 priority order:
// Point, Call, Opcode, Return, Store, Loop, Guard.
var DefaultOrder = core.DefaultOrder

// Weights configure the alternative voting combiner the paper mentions
// ("a voting protocol with weighings").
type Weights = core.Weights

// DefaultWeights are accuracy-derived voting weights from the paper's
// Table 3 means.
var DefaultWeights = core.DefaultWeights

// FitWeights derives voting weights from observed per-heuristic miss
// rates (percent).
func FitWeights(missPct [core.NumHeuristics]float64) Weights {
	return core.FitWeights(missPct)
}

// Compile compiles minic source to MIR with default options.
func Compile(src string) (*Program, error) {
	return minic.Compile(src, minic.Options{})
}

// CompileWithOptions compiles minic source with explicit options.
func CompileWithOptions(src string, opts CompileOptions) (*Program, error) {
	return minic.Compile(src, opts)
}

// Analyze runs the Ball-Larus analysis with paper-faithful options.
func Analyze(prog *Program) (*Analysis, error) {
	return core.Analyze(prog, core.Options{})
}

// AnalyzeWithOptions runs the analysis with explicit options.
func AnalyzeWithOptions(prog *Program, opts AnalysisOptions) (*Analysis, error) {
	return core.Analyze(prog, opts)
}

// Execute runs a program under the interpreter.
func Execute(prog *Program, cfg RunConfig) (*RunResult, error) {
	return interp.Run(prog, cfg)
}

// Score reports the dynamic miss rate of a prediction vector against a
// profile, over all branches, in the paper's miss/perfect notation.
func Score(a *Analysis, preds []Prediction, p *Profile) Rate {
	var miss, perf, dyn int64
	for id := range preds {
		d := p.Executed(id)
		if d == 0 {
			continue
		}
		dyn += d
		perf += p.PerfectMisses(id)
		miss += p.Misses(id, preds[id].Taken())
	}
	return profile.MakeRate(miss, perf, dyn)
}

// Sequences computes the Section 6 sequence-length distribution of a
// traced run under a prediction vector.
func Sequences(res *RunResult, preds []Prediction) *Dist {
	return trace.Sequences(res.Events, res.TailLen, trace.PredictionVector(preds))
}

// PerfectSequences computes the distribution under the perfect static
// predictor derived from the run's own profile.
func PerfectSequences(res *RunResult) *Dist {
	return trace.Sequences(res.Events, res.TailLen, trace.PerfectVector(res.Profile))
}

// FreqOptions control static profile estimation.
type FreqOptions = freq.Options

// FreqQuality summarizes an estimator's agreement with a measured profile.
type FreqQuality = freq.Quality

// EstimateFrequencies statically estimates per-block execution frequencies
// (per procedure invocation) from the Ball-Larus predictions — a profile
// "for free".
func EstimateFrequencies(a *Analysis, order Order, opts FreqOptions) [][]float64 {
	return freq.Estimate(a, order, opts)
}

// ActualFrequencies derives measured per-block counts from a run executed
// with RunConfig.CollectInstrCounts.
func ActualFrequencies(a *Analysis, res *RunResult) [][]float64 {
	return freq.Actual(a, res.InstrCounts)
}

// EvaluateFrequencies scores an estimate against measured block counts.
func EvaluateFrequencies(a *Analysis, est, act [][]float64) FreqQuality {
	return freq.Evaluate(a, est, act)
}

// Optimize runs the MIR optimizer: constant/copy propagation and folding,
// branch folding, dead-code and unreachable-code elimination, and jump
// threading. Semantics-preserving.
func Optimize(prog *Program) *Program { return opt.Program(prog) }

// Reorder lays out a program's basic blocks along predicted paths
// (prediction-driven code positioning): correctly predicted branches fall
// through, so a predict-not-taken machine stalls only on mispredictions.
// The result computes exactly what the input computes.
func Reorder(a *Analysis, preds []Prediction) (*Program, error) {
	return layout.Reorder(a, preds)
}

// TakenRate is the fraction of dynamic conditional branches taken in a
// profile — the quantity Reorder minimizes.
func TakenRate(p *Profile) float64 { return layout.TakenRate(p.Taken, p.Fall) }

// NewEvaluator creates the table/figure reproduction harness.
func NewEvaluator() *Evaluator { return eval.New() }

// Benchmarks returns the 23-program suite.
func Benchmarks() []*Benchmark { return suite.All() }

// GetBenchmark returns a suite benchmark by name, or nil.
func GetBenchmark(name string) *Benchmark { return suite.Get(name) }
