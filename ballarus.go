// Package ballarus is a from-scratch reproduction of Ball & Larus,
// "Branch Prediction For Free" (PLDI 1993): program-based static branch
// prediction using natural-loop analysis for loop branches and seven
// simple heuristics (Opcode, Loop, Call, Return, Guard, Store, Pointer)
// for non-loop branches.
//
// The package is a facade over the implementation packages:
//
//   - a MIPS-like IR (mir) and CFG analyses (cfg),
//   - a compiler for a small C-like language (minic) used to author the
//     23-benchmark suite (suite),
//   - an interpreter that produces edge profiles and event traces
//     (interp, profile), standing in for the paper's QPT tool,
//   - the predictor itself (core), the Section 6 trace analysis (trace),
//     the Section 5 ordering experiments (orders), and the harness that
//     regenerates every table and figure (eval).
//
// Quick start:
//
//	prog, _ := ballarus.CompileOpt(src)
//	analysis, _ := ballarus.AnalyzeCtx(ctx, prog)
//	preds := analysis.Predictions(ballarus.DefaultOrder)
//	res, _ := ballarus.ExecuteCtx(ctx, prog, ballarus.WithInput(input))
//	score := ballarus.Score(analysis, preds, res.Profile)
//
// For sustained traffic, use the concurrent cached pipeline instead of
// the one-shot calls:
//
//	svc := ballarus.NewService()
//	res, _ := svc.Predict(ctx, ballarus.PredictRequest{Source: src})
package ballarus

import (
	"context"
	"errors"
	"sort"

	"ballarus/internal/core"
	"ballarus/internal/durable"
	"ballarus/internal/dynpred"
	"ballarus/internal/eval"
	"ballarus/internal/freq"
	"ballarus/internal/interp"
	"ballarus/internal/layout"
	"ballarus/internal/minic"
	"ballarus/internal/mir"
	"ballarus/internal/obs"
	"ballarus/internal/opt"
	"ballarus/internal/orders"
	"ballarus/internal/profile"
	"ballarus/internal/resilience"
	"ballarus/internal/service"
	"ballarus/internal/suite"
	"ballarus/internal/tenant"
	"ballarus/internal/trace"
)

// Re-exported types. Aliases keep the public API usable without importing
// the internal packages.
type (
	// Program is a compiled MIR program.
	Program = mir.Program
	// CompileOptions control minic code generation.
	CompileOptions = minic.Options
	// Analysis is the full Ball-Larus static analysis of a program.
	Analysis = core.Analysis
	// AnalysisOptions configure the predictor (ablations).
	AnalysisOptions = core.Options
	// Branch is the per-branch analysis result.
	Branch = core.Branch
	// Prediction is a static taken/fall prediction.
	Prediction = core.Prediction
	// Heuristic identifies one of the seven non-loop heuristics.
	Heuristic = core.Heuristic
	// Order is a priority order over the heuristics.
	Order = core.Order
	// RunConfig configures program execution.
	RunConfig = interp.Config
	// RunResult is the outcome of a program execution.
	RunResult = interp.Result
	// Profile is an edge profile.
	Profile = profile.Profile
	// Rate is a miss-rate pair in the paper's C/D notation.
	Rate = profile.Rate
	// Event is one trace record.
	Event = interp.Event
	// Dist is a sequence-length distribution between breaks in control.
	Dist = trace.Dist
	// Benchmark is one suite program.
	Benchmark = suite.Benchmark
	// Evaluator regenerates the paper's tables and figures.
	Evaluator = eval.Evaluator
	// Sweep is the 5040-order miss-rate matrix.
	Sweep = orders.Sweep
)

// Prediction values and heuristics.
const (
	PredNone  = core.PredNone
	PredTaken = core.PredTaken
	PredFall  = core.PredFall

	Opcode  = core.Opcode
	LoopH   = core.LoopH
	CallH   = core.CallH
	ReturnH = core.ReturnH
	Guard   = core.Guard
	Store   = core.Store
	Point   = core.Point
)

// DefaultOrder is the paper's Table 5 priority order:
// Point, Call, Opcode, Return, Store, Loop, Guard.
var DefaultOrder = core.DefaultOrder

// Weights configure the alternative voting combiner the paper mentions
// ("a voting protocol with weighings").
type Weights = core.Weights

// DefaultWeights are accuracy-derived voting weights from the paper's
// Table 3 means.
var DefaultWeights = core.DefaultWeights

// FitWeights derives voting weights from observed per-heuristic miss
// rates (percent).
func FitWeights(missPct [core.NumHeuristics]float64) Weights {
	return core.FitWeights(missPct)
}

// ---- Context-first pipeline API ----
//
// Every pipeline entry point has a context-aware, functional-options
// form. The older fixed-signature functions below remain as thin
// deprecated wrappers.

// CompileOption configures compilation.
type CompileOption func(*CompileOptions)

// SpillLocals keeps every local in the stack frame (the "-O0" ablation).
func SpillLocals() CompileOption {
	return func(o *CompileOptions) { o.SpillLocals = true }
}

// NoJumpTables lowers every switch to an if-else chain.
func NoJumpTables() CompileOption {
	return func(o *CompileOptions) { o.NoJumpTables = true }
}

// WithCompileOptions replaces the options wholesale.
func WithCompileOptions(opts CompileOptions) CompileOption {
	return func(o *CompileOptions) { *o = opts }
}

// CompileOpt compiles minic source to MIR.
func CompileOpt(src string, opts ...CompileOption) (*Program, error) {
	var o CompileOptions
	for _, opt := range opts {
		opt(&o)
	}
	return minic.Compile(src, o)
}

// AnalyzeOption configures the Ball-Larus analysis.
type AnalyzeOption func(*AnalysisOptions)

// NoPostdom drops the postdomination requirement from the Loop, Call,
// Guard, and Store heuristics (ablation).
func NoPostdom() AnalyzeOption {
	return func(o *AnalysisOptions) { o.NoPostdom = true }
}

// GuardDepth generalizes the Guard heuristic to follow controlled paths
// up to depth extra blocks (Section 4.4); 0 reproduces the paper.
func GuardDepth(depth int) AnalyzeOption {
	return func(o *AnalysisOptions) { o.GuardDepth = depth }
}

// WithAnalysisOptions replaces the options wholesale.
func WithAnalysisOptions(opts AnalysisOptions) AnalyzeOption {
	return func(o *AnalysisOptions) { *o = opts }
}

// AnalyzeCtx runs the Ball-Larus analysis. The zero-option call
// reproduces the paper. Analysis is fast and runs to completion; ctx is
// checked on entry so callers on a canceled path fail early.
func AnalyzeCtx(ctx context.Context, prog *Program, opts ...AnalyzeOption) (*Analysis, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var o AnalysisOptions
	for _, opt := range opts {
		opt(&o)
	}
	return core.Analyze(prog, o)
}

// RunOption configures program execution.
type RunOption func(*RunConfig)

// WithInput feeds an integer input stream to readi/readc/readf.
func WithInput(input []int64) RunOption {
	return func(c *RunConfig) { c.Input = input }
}

// WithTextInput feeds a string as a character input stream.
func WithTextInput(s string) RunOption {
	return func(c *RunConfig) {
		in := make([]int64, len(s))
		for i := 0; i < len(s); i++ {
			in[i] = int64(s[i])
		}
		c.Input = in
	}
}

// WithBudget caps the executed instruction count (0 means the default).
func WithBudget(n int64) RunOption { return func(c *RunConfig) { c.Budget = n } }

// WithSeed sets the interpreter's rand() seed.
func WithSeed(seed int64) RunOption { return func(c *RunConfig) { c.Seed = seed } }

// WithMemWords sets the machine memory size in words.
func WithMemWords(n int) RunOption { return func(c *RunConfig) { c.MemWords = n } }

// CollectEvents records the branch-event trace (Section 6 experiments).
func CollectEvents() RunOption { return func(c *RunConfig) { c.CollectEvents = true } }

// CollectInstrCounts records per-instruction execution counts.
func CollectInstrCounts() RunOption {
	return func(c *RunConfig) { c.CollectInstrCounts = true }
}

// WithRunConfig replaces the configuration wholesale.
func WithRunConfig(cfg RunConfig) RunOption { return func(c *RunConfig) { *c = cfg } }

// ExecuteCtx runs a program under the interpreter. Cancellation or
// expiry of ctx interrupts the run within a few thousand instructions
// and is reported as the context's error.
func ExecuteCtx(ctx context.Context, prog *Program, opts ...RunOption) (*RunResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var cfg RunConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	cfg.Interrupt = ctx.Done()
	res, err := interp.Run(prog, cfg)
	if errors.Is(err, interp.ErrInterrupted) && ctx.Err() != nil {
		err = ctx.Err()
	}
	return res, err
}

// ---- Static vs. dynamic comparison ----
//
// The paper positions program-based prediction against the dynamic
// hardware schemes of its day. CompareCtx races the streaming dynamic
// predictors (one-bit, two-bit, bimodal, gshare, TAGE — see
// internal/dynpred) against the Ball-Larus heuristics and the perfect
// static predictor over one execution, and classifies the contested
// branches. For sustained traffic use Service.Compare instead.

// Comparison re-exported types.
type (
	// DynPredictor is a streaming dynamic branch predictor
	// (Predict/Update) from the name-keyed dynpred registry.
	DynPredictor = dynpred.Predictor
	// DynResult is one predictor's tally over a trace, with per-branch
	// counts.
	DynResult = dynpred.Result
	// BranchStat is one static branch's executed/miss tally.
	BranchStat = dynpred.BranchStat
	// H2PClassification partitions the hard-to-predict branches:
	// statically hard but history-predictable, and the converse.
	H2PClassification = dynpred.H2P
	// H2PBranch is one classified hard-to-predict branch.
	H2PBranch = dynpred.H2PBranch
	// PredictorScore is one tournament entrant's score.
	PredictorScore = service.PredictorScore
)

// Registry names of the built-in dynamic predictors, plus the labels of
// the two static entrants every comparison includes.
const (
	OneBitPredictor  = dynpred.NameOneBit
	TwoBitPredictor  = dynpred.NameTwoBit
	BimodalPredictor = dynpred.NameBimodal
	GsharePredictor  = dynpred.NameGshare
	TAGEPredictor    = dynpred.NameTAGE

	CompareStatic  = service.CompareStatic
	ComparePerfect = service.ComparePerfect
)

// Dynamic-predictor registry access.
var (
	// DynPredictorNames lists the registered predictor names, sorted.
	DynPredictorNames = dynpred.Names
	// NewDynPredictor constructs a registered predictor by name, sized
	// for a program with nBranches static branches.
	NewDynPredictor = dynpred.New
)

// Comparison is the outcome of a one-shot static-vs-dynamic tournament.
type Comparison struct {
	// Predictors holds one score per entrant — the static pair plus
	// each dynamic backend — sorted by name.
	Predictors []PredictorScore
	// H2P classifies the contested branches.
	H2P H2PClassification
	// Analysis and Run expose the underlying artifacts.
	Analysis *Analysis
	Run      *RunResult
}

// Score returns the named entrant's score, or a zero PredictorScore.
func (c *Comparison) Score(name string) PredictorScore {
	for _, p := range c.Predictors {
		if p.Name == name {
			return p
		}
	}
	return PredictorScore{}
}

// CompareOption configures CompareCtx.
type CompareOption func(*compareConfig)

type compareConfig struct {
	run        RunConfig
	order      Order
	analysis   AnalysisOptions
	backends   []string
	h2pMinExec int64
}

// WithComparePredictors selects the dynamic backends to race (dynpred
// registry names). Default: every registered backend.
func WithComparePredictors(names ...string) CompareOption {
	return func(c *compareConfig) { c.backends = names }
}

// WithCompareOrder sets the heuristic priority order behind the static
// entrant (default: the paper's order).
func WithCompareOrder(order Order) CompareOption {
	return func(c *compareConfig) { c.order = order }
}

// WithCompareRun applies execution options (input, budget, seed, ...)
// to the comparison's run.
func WithCompareRun(opts ...RunOption) CompareOption {
	return func(c *compareConfig) {
		for _, o := range opts {
			o(&c.run)
		}
	}
}

// WithCompareAnalysis applies analysis options to the static entrant.
func WithCompareAnalysis(opts ...AnalyzeOption) CompareOption {
	return func(c *compareConfig) {
		for _, o := range opts {
			o(&c.analysis)
		}
	}
}

// WithH2PMinExecuted overrides the minimum dynamic executions a branch
// needs to be classified hard-to-predict (0 = the default, 32).
func WithH2PMinExecuted(n int64) CompareOption {
	return func(c *compareConfig) { c.h2pMinExec = n }
}

// CompareCtx analyzes prog, executes it once streaming every branch
// event into the selected dynamic predictors, and returns the scored
// tournament: the Ball-Larus static predictions and the perfect static
// predictor against each dynamic backend, plus the per-branch
// hard-to-predict classification. Cancellation of ctx interrupts the
// run, matching ExecuteCtx.
func CompareCtx(ctx context.Context, prog *Program, opts ...CompareOption) (*Comparison, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := compareConfig{backends: dynpred.Names()}
	for _, opt := range opts {
		opt(&cfg)
	}
	if !cfg.order.Valid() {
		cfg.order = DefaultOrder
	}
	analysis, err := core.Analyze(prog, cfg.analysis)
	if err != nil {
		return nil, err
	}
	tour, err := dynpred.NewTournament(len(analysis.Branches), cfg.backends)
	if err != nil {
		return nil, err
	}
	runCfg := cfg.run
	runCfg.Interrupt = ctx.Done()
	runCfg.OnEvent = tour.Observe
	run, err := interp.Run(prog, runCfg)
	if errors.Is(err, interp.ErrInterrupted) && ctx.Err() != nil {
		err = ctx.Err()
	}
	if err != nil {
		return nil, err
	}

	preds := analysis.Predictions(cfg.order)
	static := dynpred.StaticResult(run.Profile, trace.PredictionVector(preds))
	perfect := dynpred.StaticResult(run.Profile, trace.PerfectVector(run.Profile))
	dynamics := tour.Results()
	h2p, err := dynpred.ClassifyH2P(static, dynamics, dynpred.H2POptions{MinExecuted: cfg.h2pMinExec})
	if err != nil {
		return nil, err
	}

	c := &Comparison{H2P: h2p, Analysis: analysis, Run: run}
	add := func(name string, r dynpred.Result) {
		c.Predictors = append(c.Predictors, PredictorScore{
			Name: name, Branches: r.Branches, Misses: r.Miss,
			MissRatePct: r.MissRate(), PerBranch: r.PerBranch,
		})
	}
	add(CompareStatic, static)
	add(ComparePerfect, perfect)
	for _, d := range dynamics {
		add(d.Name, d.Result)
	}
	sort.Slice(c.Predictors, func(i, j int) bool { return c.Predictors[i].Name < c.Predictors[j].Name })
	return c, nil
}

// ---- Prediction service ----

// Service is the concurrent, cached pipeline: bounded concurrency,
// single-flight content-hash caches, per-stage metrics, and context
// cancellation. See internal/service.
type Service = service.Service

// ServiceOption configures NewService.
type ServiceOption = service.Option

// PredictRequest describes one service job.
type PredictRequest = service.Request

// PredictResult is the outcome of one service job.
type PredictResult = service.Result

// CompareRequest describes one service tournament job
// (Service.Compare): the usual pipeline inputs plus the dynamic
// backends to race.
type CompareRequest = service.CompareRequest

// CompareResult is the outcome of one service tournament job.
type CompareResult = service.CompareResult

// ServiceStats is a point-in-time snapshot of service counters.
type ServiceStats = service.Stats

// Service configuration options.
var (
	// WithWorkers bounds concurrently executing requests.
	WithWorkers = service.WithWorkers
	// WithRequestTimeout applies a default per-request deadline.
	WithRequestTimeout = service.WithRequestTimeout
	// WithServiceAnalysisOptions sets predictor options for all requests.
	WithServiceAnalysisOptions = service.WithAnalysisOptions
	// WithQueueDepth bounds how many requests may wait for a worker
	// slot; excess load is shed with an overload error.
	WithQueueDepth = service.WithQueueDepth
	// WithCacheSize bounds each result cache to n entries (LRU).
	WithCacheSize = service.WithCacheSize
	// WithServiceBudget sets the default instruction budget for requests
	// that don't carry one. (WithBudget is the per-run execution option.)
	WithServiceBudget = service.WithBudget
	// WithRetryPolicy replaces the per-stage transient-failure retry policy.
	WithRetryPolicy = service.WithRetryPolicy
	// WithBreakerPolicy replaces the per-stage circuit breaker policy.
	WithBreakerPolicy = service.WithBreakerPolicy
	// WithDurableStore persists the warm request set (snapshot + journal)
	// under a directory; pair with Service.Recover at boot and
	// Service.Close at shutdown.
	WithDurableStore = service.WithDurableStore
	// WithSnapshotInterval sets the periodic snapshot cadence.
	WithSnapshotInterval = service.WithSnapshotInterval
	// WithJournalSyncInterval sets the journal's fsync batching interval.
	WithJournalSyncInterval = service.WithJournalSyncInterval
	// WithWatchdog arms the wedged-worker-pool watchdog.
	WithWatchdog = service.WithWatchdog
	// WithTracer replaces the service's request tracer (the ring buffer
	// behind blserve's /debug/traces).
	WithTracer = service.WithTracer
	// WithShardRunner enables the shard stage (Service.Shard, blserve's
	// POST /v1/shard): batch-job shards execute through the given runner,
	// content-addressed and breaker-guarded like every other stage.
	WithShardRunner = service.WithShardRunner
	// WithTenants enables multi-tenant admission: per-tenant token-bucket
	// quotas and fairness-aware shedding against the given registry.
	WithTenants = service.WithTenants
)

// Multi-tenancy types, re-exported. Build a TenantRegistry with
// NewTenantRegistry and pass it to WithTenants; attach a request's
// tenant with TenantContext.
type (
	// TenantRegistry tracks per-tenant quota and occupancy state.
	TenantRegistry = tenant.Registry
	// TenantConfig configures a TenantRegistry (defaults, overrides,
	// LRU bound).
	TenantConfig = tenant.Config
	// TenantLimits is one tenant's quota configuration.
	TenantLimits = tenant.Limits
	// TenantQuotaError reports a per-tenant quota rejection with
	// Retry-After / X-RateLimit-* material; reach it with errors.As.
	TenantQuotaError = tenant.QuotaError
	// BatchItem is one element of Service.Batch: exactly one of
	// Predict or Compare set.
	BatchItem = service.BatchItem
	// BatchItemResult is one batch element's outcome.
	BatchItemResult = service.BatchItemResult
	// BatchOutcome summarizes a whole batch.
	BatchOutcome = service.BatchOutcome
)

// TenantMaxIDLen bounds tenant identifiers; HTTP edges reject longer
// X-Tenant-Id values so hostile clients cannot bloat metric labels or
// registry keys.
const TenantMaxIDLen = tenant.MaxIDLen

// TenantDefaultID is the tenant requests belong to when no identity is
// attached.
const TenantDefaultID = tenant.DefaultID

// NewTenantRegistry builds a tenant registry for WithTenants.
func NewTenantRegistry(cfg TenantConfig) *TenantRegistry { return tenant.NewRegistry(cfg) }

// TenantContext returns a context attributing subsequent service calls
// to the given tenant (the programmatic analogue of the X-Tenant-Id
// header). An empty id means the default tenant.
func TenantContext(ctx context.Context, id string) context.Context { return tenant.WithID(ctx, id) }

// ShardRunner executes one opaque experiment-shard payload; the
// concrete implementation is internal/jobs.Runner.RunShardPayload.
type ShardRunner = service.ShardRunner

// ShardOutcome is Service.Shard's result: the runner's response payload
// plus the request's cache outcome.
type ShardOutcome = service.ShardOutcome

// ---- Observability ----

// Tracer records request traces (spans around every pipeline stage,
// cache lookup, retry, and breaker decision) into a fixed-size ring
// buffer, optionally exporting each as a structured slog event. Obtain
// the service's tracer via Service.Tracer, or install your own with
// WithTracer.
type Tracer = obs.Tracer

// TraceRecord is one completed request trace.
type TraceRecord = obs.Trace

// MetricsRegistry is a dependency-free metric registry rendering the
// Prometheus text exposition format. Service.Metrics returns the
// service's live registry.
type MetricsRegistry = obs.Registry

// NewTracer creates a tracer keeping the last capacity traces
// (capacity <= 0 means 256); logger, when non-nil, receives one debug
// event per completed trace.
var NewTracer = obs.NewTracer

// SpanContext is the trace identity propagated across process
// boundaries in the Traceparent header
// (00-<16 hex trace>-<16 hex span>-<2 hex flags>).
type SpanContext = obs.SpanContext

// ParseTraceHeader parses a Traceparent header value.
var ParseTraceHeader = obs.ParseTraceHeader

// TraceArchive is a size-bounded, tail-sampled store of completed
// traces: errored, hedged, breaker-tripped, and slow traces are always
// kept; the rest are sampled deterministically by trace ID. Attach one
// to a tracer with Tracer.Attach; it persists through a DurableSection.
type TraceArchive = obs.Archive

// TraceArchivePolicy configures a TraceArchive.
type TraceArchivePolicy = obs.ArchivePolicy

// NewTraceArchive creates a trace archive with the given policy
// (zero-value fields take the defaults documented on the policy type).
var NewTraceArchive = obs.NewArchive

// AssembledTrace is a cross-process trace merged from every
// contributing process's span list into one parent-linked tree — the
// payload of the gateway's GET /v1/trace/{id}.
type AssembledTrace = obs.AssembledTrace

// RenderWaterfall renders an assembled trace as an ASCII waterfall
// (the cmd/bltrace output format).
var RenderWaterfall = obs.RenderWaterfall

// RecoveryStats reports what Service.Recover found and rewarmed at boot.
type RecoveryStats = service.RecoveryStats

// DurableEntry is one record in the service snapshot.
type DurableEntry = durable.Entry

// DurableSection lets a layer above the service (e.g. an HTTP server's
// response cache) persist its own state inside the service snapshot.
// Register with Service.RegisterDurableSection before Service.Recover.
type DurableSection = service.DurableSection

// DurabilityStats is the durable-state section of ServiceStats.
type DurabilityStats = service.DurabilityStats

// WatchdogStats is the watchdog section of ServiceStats.
type WatchdogStats = service.WatchdogStats

// NewService creates a prediction service.
func NewService(opts ...ServiceOption) *Service { return service.New(opts...) }

// ErrServiceBusy is returned when a request was shed: the queue was
// full, or the request's context expired while queued.
var ErrServiceBusy = service.ErrBusy

// ---- Resilience: the typed error taxonomy ----
//
// Every error returned by Service.Predict classifies, via errors.Is,
// into exactly one of the five kinds below; the original cause chain
// (ErrBudget, context.DeadlineExceeded, ...) stays reachable.

// Resilience types, re-exported for configuration and introspection.
type (
	// RetryPolicy is the per-stage retry/backoff configuration.
	RetryPolicy = resilience.RetryPolicy
	// BreakerPolicy is the per-stage circuit breaker configuration.
	BreakerPolicy = resilience.BreakerPolicy
	// BreakerStats is a point-in-time circuit breaker snapshot.
	BreakerStats = resilience.BreakerStats
	// PanicError is a pipeline panic recovered into an error; it
	// classifies as ErrInternal and carries the captured stack.
	PanicError = resilience.PanicError
)

// Error kinds and related sentinels.
var (
	// ErrInvalidInput: the request itself is at fault (bad source,
	// unknown benchmark, program faulted at runtime).
	ErrInvalidInput = resilience.ErrInvalidInput
	// ErrResourceExhausted: the request exceeded a resource cap, e.g.
	// the instruction budget.
	ErrResourceExhausted = resilience.ErrResourceExhausted
	// ErrOverload: the request was shed (full queue or open breaker).
	ErrOverload = resilience.ErrOverload
	// ErrQuotaExceeded refines ErrOverload: the request's tenant is
	// over its per-tenant quota. Matching errors also match ErrOverload.
	ErrQuotaExceeded = resilience.ErrQuotaExceeded
	// ErrTimeout: a deadline expired or the request was canceled.
	ErrTimeout = resilience.ErrTimeout
	// ErrInternal: a service-side failure (bug, recovered panic).
	ErrInternal = resilience.ErrInternal
	// ErrCircuitOpen is wrapped into breaker rejections (which also
	// classify as ErrOverload).
	ErrCircuitOpen = resilience.ErrCircuitOpen
	// ErrBudget is the interpreter's instruction-budget sentinel; it
	// classifies as ErrResourceExhausted.
	ErrBudget = interp.ErrBudget
)

// ErrorKind returns the taxonomy kind of err (one of the five Err*
// sentinels above), or nil if err is nil or unclassified.
func ErrorKind(err error) error { return resilience.KindOf(err) }

// ---- Deprecated one-shot wrappers ----

// Compile compiles minic source to MIR with default options.
//
// Deprecated: use CompileOpt.
func Compile(src string) (*Program, error) {
	return CompileOpt(src)
}

// CompileWithOptions compiles minic source with explicit options.
//
// Deprecated: use CompileOpt with WithCompileOptions.
func CompileWithOptions(src string, opts CompileOptions) (*Program, error) {
	return CompileOpt(src, WithCompileOptions(opts))
}

// Analyze runs the Ball-Larus analysis with paper-faithful options.
//
// Deprecated: use AnalyzeCtx.
func Analyze(prog *Program) (*Analysis, error) {
	return AnalyzeCtx(context.Background(), prog)
}

// AnalyzeWithOptions runs the analysis with explicit options.
//
// Deprecated: use AnalyzeCtx with WithAnalysisOptions.
func AnalyzeWithOptions(prog *Program, opts AnalysisOptions) (*Analysis, error) {
	return AnalyzeCtx(context.Background(), prog, WithAnalysisOptions(opts))
}

// Execute runs a program under the interpreter.
//
// Deprecated: use ExecuteCtx with WithRunConfig or the granular options.
func Execute(prog *Program, cfg RunConfig) (*RunResult, error) {
	return ExecuteCtx(context.Background(), prog, WithRunConfig(cfg))
}

// Score reports the dynamic miss rate of a prediction vector against a
// profile, over all branches, in the paper's miss/perfect notation.
func Score(a *Analysis, preds []Prediction, p *Profile) Rate {
	var miss, perf, dyn int64
	for id := range preds {
		d := p.Executed(id)
		if d == 0 {
			continue
		}
		dyn += d
		perf += p.PerfectMisses(id)
		miss += p.Misses(id, preds[id].Taken())
	}
	return profile.MakeRate(miss, perf, dyn)
}

// Sequences computes the Section 6 sequence-length distribution of a
// traced run under a prediction vector.
func Sequences(res *RunResult, preds []Prediction) *Dist {
	return trace.Sequences(res.Events, res.TailLen, trace.PredictionVector(preds))
}

// PerfectSequences computes the distribution under the perfect static
// predictor derived from the run's own profile.
func PerfectSequences(res *RunResult) *Dist {
	return trace.Sequences(res.Events, res.TailLen, trace.PerfectVector(res.Profile))
}

// FreqOptions control static profile estimation.
type FreqOptions = freq.Options

// FreqQuality summarizes an estimator's agreement with a measured profile.
type FreqQuality = freq.Quality

// EstimateFrequencies statically estimates per-block execution frequencies
// (per procedure invocation) from the Ball-Larus predictions — a profile
// "for free".
func EstimateFrequencies(a *Analysis, order Order, opts FreqOptions) [][]float64 {
	return freq.Estimate(a, order, opts)
}

// ActualFrequencies derives measured per-block counts from a run executed
// with RunConfig.CollectInstrCounts.
func ActualFrequencies(a *Analysis, res *RunResult) [][]float64 {
	return freq.Actual(a, res.InstrCounts)
}

// EvaluateFrequencies scores an estimate against measured block counts.
func EvaluateFrequencies(a *Analysis, est, act [][]float64) FreqQuality {
	return freq.Evaluate(a, est, act)
}

// Optimize runs the MIR optimizer: constant/copy propagation and folding,
// branch folding, dead-code and unreachable-code elimination, and jump
// threading. Semantics-preserving.
func Optimize(prog *Program) *Program { return opt.Program(prog) }

// Reorder lays out a program's basic blocks along predicted paths
// (prediction-driven code positioning): correctly predicted branches fall
// through, so a predict-not-taken machine stalls only on mispredictions.
// The result computes exactly what the input computes.
func Reorder(a *Analysis, preds []Prediction) (*Program, error) {
	return layout.Reorder(a, preds)
}

// TakenRate is the fraction of dynamic conditional branches taken in a
// profile — the quantity Reorder minimizes.
func TakenRate(p *Profile) float64 { return layout.TakenRate(p.Taken, p.Fall) }

// NewEvaluator creates the table/figure reproduction harness.
func NewEvaluator() *Evaluator { return eval.New() }

// Benchmarks returns the 23-program suite.
func Benchmarks() []*Benchmark { return suite.All() }

// GetBenchmark returns a suite benchmark by name, or nil.
func GetBenchmark(name string) *Benchmark { return suite.Get(name) }
