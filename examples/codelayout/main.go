// Codelayout: the compiler use case from the paper's introduction.
// Architectures like the DEC Alpha and MIPS R4000 predict forward
// branches not-taken and charge up to 10 cycles per taken branch; the
// paper's answer is a compiler that "arranges code to conform to these
// expectations". This example actually performs the transformation: it
// reorders the basic blocks of a benchmark along the Ball-Larus predicted
// paths, re-runs the reordered program (verifying identical output), and
// reports how many dynamic taken-branches each layout policy leaves.
package main

import (
	"context"
	"fmt"
	"log"

	"ballarus"
	"ballarus/internal/core"
)

func main() {
	ctx := context.Background()
	b := ballarus.GetBenchmark("gcc")
	prog, err := b.Compile()
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := ballarus.AnalyzeCtx(ctx, prog)
	if err != nil {
		log.Fatal(err)
	}
	run := []ballarus.RunOption{ballarus.WithInput(b.Data[0].Input), ballarus.WithBudget(2 * b.Budget)}
	orig, err := ballarus.ExecuteCtx(ctx, prog, run...)
	if err != nil {
		log.Fatal(err)
	}

	runLayout := func(name string, preds []ballarus.Prediction) {
		np, err := ballarus.Reorder(analysis, preds)
		if err != nil {
			log.Fatal(err)
		}
		res, err := ballarus.ExecuteCtx(ctx, np, run...)
		if err != nil {
			log.Fatal(err)
		}
		if res.Output != orig.Output {
			log.Fatalf("%s layout changed program output!", name)
		}
		rate := ballarus.TakenRate(res.Profile)
		fmt.Printf("  %-28s %5.1f%% of %d branches taken\n",
			name, 100*rate, res.Profile.Total())
	}

	fmt.Printf("benchmark %s: reordering basic blocks along predicted paths\n", b.Name)
	fmt.Printf("  %-28s %5.1f%% of %d branches taken\n",
		"original layout", 100*ballarus.TakenRate(orig.Profile), orig.Profile.Total())
	runLayout("layout by BTFNT", analysis.BTFNTPredictions())
	runLayout("layout by Ball-Larus", analysis.Predictions(ballarus.DefaultOrder))

	// The limit: lay out by the run's own majority directions.
	perfect := make([]ballarus.Prediction, len(analysis.Branches))
	for id := range perfect {
		if orig.Profile.PerfectTaken(id) {
			perfect[id] = core.PredTaken
		} else {
			perfect[id] = core.PredFall
		}
	}
	runLayout("layout by profile (limit)", perfect)

	fmt.Println("\nEvery reordered binary printed byte-identical output. Lower is")
	fmt.Println("better: each taken branch is a potential pipeline bubble on a")
	fmt.Println("predict-not-taken machine — and the Ball-Larus layout required")
	fmt.Println("no profiling run. That is the \"for free\" of the title.")
}
