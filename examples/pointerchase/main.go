// Pointerchase: the paper's motivating scenario for the Pointer and Guard
// heuristics — pointer-chasing data structures where null tests almost
// always say "not null". Builds a binary search tree workload, then
// compares each heuristic in isolation and several priority orders.
package main

import (
	"context"
	"fmt"
	"log"

	"ballarus"
	"ballarus/internal/core"
)

const src = `
struct tnode { int key; int count; struct tnode *left; struct tnode *right; };

struct tnode *insert(struct tnode *t, int key) {
	if (t == 0) {
		struct tnode *n = (struct tnode*)alloc(sizeof(struct tnode));
		n->key = key;
		n->count = 1;
		n->left = 0;
		n->right = 0;
		return n;
	}
	if (key < t->key) { t->left = insert(t->left, key); }
	else if (key > t->key) { t->right = insert(t->right, key); }
	else { t->count++; }
	return t;
}

int lookup(struct tnode *t, int key) {
	while (t != 0) {
		if (key == t->key) { return t->count; }
		if (key < t->key) { t = t->left; } else { t = t->right; }
	}
	return 0;
}

int height(struct tnode *t) {
	if (t == 0) { return 0; }
	int l = height(t->left);
	int r = height(t->right);
	if (l > r) { return l + 1; }
	return r + 1;
}

int main() {
	struct tnode *root = 0;
	int i;
	srand(12345);
	for (i = 0; i < 700; i++) { root = insert(root, rand() % 300); }
	int hits = 0;
	for (i = 0; i < 2000; i++) {
		if (lookup(root, rand() % 400) > 0) { hits++; }
	}
	printi(hits); printc(' '); printi(height(root)); printc('\n');
	return 0;
}
`

func main() {
	ctx := context.Background()
	prog, err := ballarus.CompileOpt(src)
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := ballarus.AnalyzeCtx(ctx, prog)
	if err != nil {
		log.Fatal(err)
	}
	res, err := ballarus.ExecuteCtx(ctx, prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload output: %s", res.Output)

	// Each heuristic in isolation over the non-loop branches.
	fmt.Println("heuristics in isolation (non-loop branches):")
	for h := core.Heuristic(0); h < core.NumHeuristics; h++ {
		var cov, miss, dyn int64
		for i := range analysis.Branches {
			b := &analysis.Branches[i]
			if b.Class != core.NonLoop {
				continue
			}
			d := res.Profile.Executed(b.ID)
			dyn += d
			if p := b.Heur[h]; p != core.PredNone && d > 0 {
				cov += d
				miss += res.Profile.Misses(b.ID, p.Taken())
			}
		}
		if cov == 0 {
			fmt.Printf("  %-7s (no coverage)\n", h)
			continue
		}
		fmt.Printf("  %-7s coverage %5.1f%%  miss %5.1f%%\n",
			h, 100*float64(cov)/float64(dyn), 100*float64(miss)/float64(cov))
	}

	// Whole-predictor scores under a few orders.
	fmt.Println("\ncombined predictor under different orders (all branches, miss/perfect):")
	orders := []ballarus.Order{
		ballarus.DefaultOrder,
		{core.Opcode, core.CallH, core.ReturnH, core.Store, core.Point, core.LoopH, core.Guard},
		{core.Guard, core.Store, core.LoopH, core.ReturnH, core.Opcode, core.CallH, core.Point},
	}
	for _, o := range orders {
		preds := analysis.Predictions(o)
		fmt.Printf("  %-55s %s\n", o, ballarus.Score(analysis, preds, res.Profile))
	}
	fmt.Printf("  %-55s %s\n", "loop+random baseline",
		ballarus.Score(analysis, analysis.LoopRandPredictions(), res.Profile))
	fmt.Printf("  %-55s %s\n", "BTFNT hardware rule",
		ballarus.Score(analysis, analysis.BTFNTPredictions(), res.Profile))
}
