// Quickstart: compile a small program, predict its branches statically,
// run it, and score the predictions against the actual edge profile.
package main

import (
	"context"
	"fmt"
	"log"

	"ballarus"
	"ballarus/internal/core"
)

const src = `
struct node { int val; struct node *next; };

struct node *push(struct node *head, int v) {
	struct node *n = (struct node*)alloc(sizeof(struct node));
	n->val = v;
	n->next = head;
	return n;
}

int sum(struct node *p) {
	int s = 0;
	while (p != 0) {       /* pointer null test: loop + Pointer territory */
		if (p->val < 0) {  /* error check: Opcode heuristic (bltz) */
			prints("negative!\n");
		} else {
			s += p->val;
		}
		p = p->next;
	}
	return s;
}

int main() {
	struct node *list = 0;
	int i;
	for (i = 1; i <= 200; i++) {
		list = push(list, i % 37);
	}
	printi(sum(list));
	printc('\n');
	return 0;
}
`

func main() {
	ctx := context.Background()
	prog, err := ballarus.CompileOpt(src)
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := ballarus.AnalyzeCtx(ctx, prog)
	if err != nil {
		log.Fatal(err)
	}

	// Static predictions: available "for free", before any profiling run.
	preds := analysis.Predictions(ballarus.DefaultOrder)
	fmt.Printf("static analysis: %d conditional branches\n", len(analysis.Branches))
	for i := range analysis.Branches {
		b := &analysis.Branches[i]
		pred, by, ok := b.PredictWith(ballarus.DefaultOrder)
		attribution := "default (random)"
		if b.Class == core.LoopBranch {
			attribution = "loop predictor"
		} else if ok {
			attribution = by.String() + " heuristic"
		}
		fmt.Printf("  %-6s+%-3d %-8s -> predict %-5s  (%s)\n",
			prog.Procs[b.Proc].Name, b.Instr, b.Class, pred, attribution)
	}

	// Now actually run the program and check how the predictions did.
	res, err := ballarus.ExecuteCtx(ctx, prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprogram output: %s", res.Output)
	fmt.Printf("executed %d instructions, %d dynamic branches\n",
		res.Steps, res.Profile.Total())
	fmt.Printf("heuristic miss rate / perfect static lower bound: %s\n",
		ballarus.Score(analysis, preds, res.Profile))
}
