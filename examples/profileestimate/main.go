// Profileestimate: a profile "for free". Estimates block execution
// frequencies purely from the Ball-Larus predictions, then checks the
// estimate against a real run — the use case the paper's abstract opens
// with ("identifying frequently executed regions").
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"ballarus"
)

func main() {
	ctx := context.Background()
	b := ballarus.GetBenchmark("xlisp")
	prog, err := b.Compile()
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := ballarus.AnalyzeCtx(ctx, prog)
	if err != nil {
		log.Fatal(err)
	}

	// Static estimate: no execution needed.
	est := ballarus.EstimateFrequencies(analysis, ballarus.DefaultOrder, ballarus.FreqOptions{})

	// Ground truth from one run.
	res, err := ballarus.ExecuteCtx(ctx, prog,
		ballarus.WithInput(b.Data[0].Input),
		ballarus.WithBudget(b.Budget),
		ballarus.CollectInstrCounts())
	if err != nil {
		log.Fatal(err)
	}
	act := ballarus.ActualFrequencies(analysis, res)
	q := ballarus.EvaluateFrequencies(analysis, est, act)
	fmt.Printf("benchmark %s: Spearman %.2f, top-25%% hot-block overlap %.0f%% over %d procedures\n\n",
		b.Name, q.Spearman, 100*q.Overlap, q.Procs)

	// Show the hottest procedure's blocks: estimated rank vs actual rank.
	hot, hotCount := -1, 0.0
	for pi := range act {
		if act[pi] == nil {
			continue
		}
		var sum float64
		for _, c := range act[pi] {
			sum += c
		}
		if sum > hotCount && len(act[pi]) >= 6 {
			hotCount, hot = sum, pi
		}
	}
	if hot < 0 {
		log.Fatal("no hot procedure found")
	}
	fmt.Printf("hottest procedure: %s\n", prog.Procs[hot].Name)
	fmt.Printf("%-7s %14s %14s\n", "block", "est freq", "actual count")
	idx := make([]int, len(act[hot]))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return act[hot][idx[a]] > act[hot][idx[b]] })
	for i, bi := range idx {
		if i >= 8 {
			break
		}
		fmt.Printf("B%-6d %14.2f %14.0f\n", bi, est[hot][bi], act[hot][bi])
	}
	fmt.Println("\nThe estimate orders the hot blocks correctly without ever running")
	fmt.Println("the program — Wall measured estimators like this against real")
	fmt.Println("profiles; with the Ball-Larus heuristics the estimate is usable.")
}
