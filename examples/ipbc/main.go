// IPBC: the Section 6 experiment on one benchmark. Traces an execution,
// partitions it into sequences at each break in control under three
// predictors, and shows why the profile-based IPBC average misleads
// compared to the dividing length.
package main

import (
	"context"
	"fmt"
	"log"

	"ballarus"
)

func main() {
	ctx := context.Background()
	b := ballarus.GetBenchmark("spice2g6")
	prog, err := b.Compile()
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := ballarus.AnalyzeCtx(ctx, prog)
	if err != nil {
		log.Fatal(err)
	}
	res, err := ballarus.ExecuteCtx(ctx, prog,
		ballarus.WithInput(b.Data[0].Input),
		ballarus.WithBudget(b.Budget),
		ballarus.CollectEvents())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traced %s: %d instructions, %d events\n\n", b.Name, res.Steps, len(res.Events))

	predictors := []struct {
		name string
		dist *ballarus.Dist
	}{
		{"Loop+Rand", ballarus.Sequences(res, analysis.LoopRandPredictions())},
		{"Heuristic", ballarus.Sequences(res, analysis.Predictions(ballarus.DefaultOrder))},
		{"Perfect", ballarus.PerfectSequences(res)},
	}
	fmt.Printf("%-10s %8s %8s %10s %10s\n", "predictor", "miss%", "IPBC", "dividing", "breaks")
	for _, p := range predictors {
		fmt.Printf("%-10s %8.1f %8.0f %10d %10d\n",
			p.name, p.dist.MissRate(), p.dist.IPBC(), p.dist.DividingLength(), p.dist.Breaks)
	}

	// The paper's point: the IPBC average distributes breaks evenly, but
	// the sequence-length distribution is skewed, so the average
	// underestimates the length at which half the instructions live.
	fmt.Println("\ncumulative % of instructions in sequences shorter than x (Perfect):")
	d := predictors[2].dist
	for _, x := range []int{20, 50, 100, 200, 400, 800} {
		pts := d.CumulativeInstr()
		idx := x/10 - 1
		if idx < len(pts) {
			fmt.Printf("  x=%4d  %5.1f%%\n", x, pts[idx].Y)
		}
	}
	fmt.Printf("\nIPBC average %.0f vs dividing length %d: the average underestimates\n",
		d.IPBC(), d.DividingLength())
	fmt.Println("the available sequence length, as Section 6 of the paper argues.")
}
