// Benchmarks regenerating every table and figure of the paper, the
// DESIGN.md ablations, and micro-benchmarks of the pipeline stages.
//
// Each BenchmarkTableN / BenchmarkGraphN target regenerates the
// corresponding artifact per iteration (the suite's runs are cached inside
// the shared evaluator after the first iteration, so steady-state
// iterations measure the analysis/aggregation cost). Headline results are
// attached as custom metrics so `go test -bench` output doubles as a
// results summary.
package ballarus

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"testing"

	"ballarus/internal/core"
	"ballarus/internal/eval"
	"ballarus/internal/interp"
	"ballarus/internal/layout"
	"ballarus/internal/minic"
	"ballarus/internal/mir"
	"ballarus/internal/opt"
	"ballarus/internal/orders"
	"ballarus/internal/stats"
	"ballarus/internal/suite"
)

var (
	benchEvalOnce sync.Once
	benchEval     *eval.Evaluator
)

func sharedEvaluator(b *testing.B) *eval.Evaluator {
	b.Helper()
	benchEvalOnce.Do(func() { benchEval = eval.New() })
	return benchEval
}

// subsetTrials is the sampled size used by default for the C(22,11)
// experiment; run cmd/blorders -exact for all 705,432 trials.
const subsetTrials = 5000

func benchTable(b *testing.B, gen func() (string, error)) string {
	b.Helper()
	var out string
	for i := 0; i < b.N; i++ {
		s, err := gen()
		if err != nil {
			b.Fatal(err)
		}
		out = s
	}
	return out
}

func BenchmarkTable1(b *testing.B) {
	e := sharedEvaluator(b)
	out := benchTable(b, e.Table1)
	b.ReportMetric(float64(strings.Count(out, "\n")-1), "rows")
}

func BenchmarkTable2(b *testing.B) {
	e := sharedEvaluator(b)
	out := benchTable(b, e.Table2)
	b.ReportMetric(meanFromRow(b, out, "MEAN", 1), "loopPredMiss%")
}

func BenchmarkTable3(b *testing.B) {
	e := sharedEvaluator(b)
	benchTable(b, e.Table3)
}

func BenchmarkTable4(b *testing.B) {
	e := sharedEvaluator(b)
	benchTable(b, func() (string, error) { return e.Table4(subsetTrials) })
}

func BenchmarkTable5(b *testing.B) {
	e := sharedEvaluator(b)
	benchTable(b, e.Table5)
}

func BenchmarkTable6(b *testing.B) {
	e := sharedEvaluator(b)
	benchTable(b, e.Table6)
	runs, err := e.DefaultRuns()
	if err != nil {
		b.Fatal(err)
	}
	var nl []float64
	for _, r := range runs {
		nl = append(nl, r.Final(core.DefaultOrder).WithDefault.Pred)
	}
	b.ReportMetric(stats.Mean(nl), "nonLoopMiss%")
}

func BenchmarkTable7(b *testing.B) {
	e := sharedEvaluator(b)
	benchTable(b, e.Table7)
}

// meanFromRow digs a numeric cell like "12/8" out of a rendered table row.
func meanFromRow(b *testing.B, table, rowName string, col int) float64 {
	b.Helper()
	for _, line := range strings.Split(table, "\n") {
		fields := strings.Fields(line)
		if len(fields) > col && fields[0] == rowName {
			cell := strings.SplitN(fields[col], "/", 2)[0]
			v, err := strconv.ParseFloat(cell, 64)
			if err == nil {
				return v
			}
		}
	}
	return -1
}

func BenchmarkGraph1(b *testing.B) {
	e := sharedEvaluator(b)
	var g *eval.Graph
	for i := 0; i < b.N; i++ {
		var err error
		g, err = e.Graph1()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(g.Series[0].Pts[0].Y, "bestOrderMiss%")
	b.ReportMetric(g.Series[0].Pts[len(g.Series[0].Pts)-1].Y, "worstOrderMiss%")
}

func BenchmarkGraph2(b *testing.B) {
	e := sharedEvaluator(b)
	for i := 0; i < b.N; i++ {
		if _, err := e.Graph2(subsetTrials); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraph3(b *testing.B) {
	e := sharedEvaluator(b)
	for i := 0; i < b.N; i++ {
		if _, err := e.Graph3(subsetTrials); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphSeq regenerates Graphs 4-11, the per-benchmark cumulative
// sequence-length distributions, reporting each predictor's IPBC.
func BenchmarkGraphSeq(b *testing.B) {
	for n := 4; n <= 11; n++ {
		n := n
		b.Run("graph"+strconv.Itoa(n), func(b *testing.B) {
			e := sharedEvaluator(b)
			var g *eval.Graph
			for i := 0; i < b.N; i++ {
				var err error
				g, err = e.GraphSeq(n)
				if err != nil {
					b.Fatal(err)
				}
			}
			_ = g
		})
	}
}

func BenchmarkGraph12(b *testing.B) {
	e := sharedEvaluator(b)
	for i := 0; i < b.N; i++ {
		if g := e.Graph12(); len(g.Series) != 12 {
			b.Fatal("bad model graph")
		}
	}
}

func BenchmarkGraph13(b *testing.B) {
	e := sharedEvaluator(b)
	for i := 0; i < b.N; i++ {
		if _, err := e.Graph13(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablations (DESIGN.md section 5) ----

// BenchmarkAblationBTFNT compares the paper's natural-loop-based predictor
// against the hardware backward-taken/forward-not-taken rule.
func BenchmarkAblationBTFNT(b *testing.B) {
	e := sharedEvaluator(b)
	var loopBased, btfnt []float64
	for i := 0; i < b.N; i++ {
		runs, err := e.DefaultRuns()
		if err != nil {
			b.Fatal(err)
		}
		loopBased = loopBased[:0]
		btfnt = btfnt[:0]
		for _, r := range runs {
			loopBased = append(loopBased, r.AllMissRate(r.Analysis.Predictions(core.DefaultOrder)).Pred)
			btfnt = append(btfnt, r.AllMissRate(r.Analysis.BTFNTPredictions()).Pred)
		}
	}
	b.ReportMetric(stats.Mean(loopBased), "ballLarusMiss%")
	b.ReportMetric(stats.Mean(btfnt), "btfntMiss%")
}

// BenchmarkAblationNoPostdom drops the postdomination requirement from
// the successor-property heuristics.
func BenchmarkAblationNoPostdom(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		strict := eval.New()
		loose := eval.New()
		loose.Opts = core.Options{NoPostdom: true}
		with = meanWithDefault(b, strict)
		without = meanWithDefault(b, loose)
	}
	b.ReportMetric(with, "strictMiss%")
	b.ReportMetric(without, "noPostdomMiss%")
}

func meanWithDefault(b *testing.B, e *eval.Evaluator) float64 {
	b.Helper()
	runs, err := e.DefaultRuns()
	if err != nil {
		b.Fatal(err)
	}
	var xs []float64
	for _, r := range runs {
		xs = append(xs, r.Final(core.DefaultOrder).WithDefault.Pred)
	}
	return stats.Mean(xs)
}

// BenchmarkAblationSpill recompiles the suite without register-resident
// locals ("-O0"): the paper predicts Guard coverage collapses because
// values are reloaded before use rather than flowing through registers.
func BenchmarkAblationSpill(b *testing.B) {
	var regCov, spillCov float64
	for i := 0; i < b.N; i++ {
		regCov, spillCov = 0, 0
		n := 0
		for _, bench := range suite.All() {
			for _, opts := range []minic.Options{{}, {SpillLocals: true}} {
				prog, err := bench.CompileWith(opts)
				if err != nil {
					b.Fatal(err)
				}
				a, err := core.Analyze(prog, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				// Static coverage of the Guard heuristic.
				covered, total := 0, 0
				for j := range a.Branches {
					if a.Branches[j].Class != core.NonLoop {
						continue
					}
					total++
					if a.Branches[j].Heur[core.Guard] != core.PredNone {
						covered++
					}
				}
				pct := 0.0
				if total > 0 {
					pct = 100 * float64(covered) / float64(total)
				}
				if opts.SpillLocals {
					spillCov += pct
				} else {
					regCov += pct
				}
			}
			n++
		}
		regCov /= float64(n)
		spillCov /= float64(n)
	}
	b.ReportMetric(regCov, "guardCovRegAlloc%")
	b.ReportMetric(spillCov, "guardCovSpilled%")
}

// BenchmarkAblationNoJumpTables lowers switches to if-else chains and
// measures the change in breaks in control on the switch-heavy benchmark.
func BenchmarkAblationNoJumpTables(b *testing.B) {
	bench := suite.Get("ghostview")
	var withJT, withoutJT float64
	for i := 0; i < b.N; i++ {
		for _, opts := range []minic.Options{{}, {NoJumpTables: true}} {
			prog, err := bench.CompileWith(opts)
			if err != nil {
				b.Fatal(err)
			}
			res, err := interp.Run(prog, interp.Config{
				Input: bench.Data[0].Input, Budget: bench.Budget, CollectEvents: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			indirect := 0
			for _, ev := range res.Events {
				if ev.Kind == interp.EvIndirect {
					indirect++
				}
			}
			if opts.NoJumpTables {
				withoutJT = float64(indirect)
			} else {
				withJT = float64(indirect)
			}
		}
	}
	b.ReportMetric(withJT, "indirectJumps")
	b.ReportMetric(withoutJT, "indirectJumpsNoJT")
}

// ---- Micro-benchmarks of the pipeline stages ----

func BenchmarkCompileXlisp(b *testing.B) {
	src := suite.Get("xlisp").Source
	for i := 0; i < b.N; i++ {
		if _, err := minic.Compile(src, minic.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeXlisp(b *testing.B) {
	prog, err := suite.Get("xlisp").Compile()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Analyze(prog, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpXlisp(b *testing.B) {
	bench := suite.Get("xlisp")
	prog, err := bench.Compile()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var steps int64
	for i := 0; i < b.N; i++ {
		res, err := interp.Run(prog, interp.Config{Input: bench.Data[0].Input, Budget: bench.Budget})
		if err != nil {
			b.Fatal(err)
		}
		steps = res.Steps
	}
	b.ReportMetric(float64(steps)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

func BenchmarkOrderSweep(b *testing.B) {
	e := sharedEvaluator(b)
	for i := 0; i < b.N; i++ {
		if _, err := e.Sweep(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubsetsSampled(b *testing.B) {
	e := sharedEvaluator(b)
	s, err := e.Sweep()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SubsetsSampled(11, 1000, int64(i))
	}
}

// ---- Extensions ----

// BenchmarkExtensionFreq measures the static-profile-estimation extension
// and reports the mean Spearman correlation against measured profiles.
func BenchmarkExtensionFreq(b *testing.B) {
	e := sharedEvaluator(b)
	var est, rnd float64
	for i := 0; i < b.N; i++ {
		rows, err := e.FreqQuality()
		if err != nil {
			b.Fatal(err)
		}
		var es, rs []float64
		for _, r := range rows {
			es = append(es, r.Estimator.Spearman)
			rs = append(rs, r.Random.Spearman)
		}
		est, rnd = stats.Mean(es), stats.Mean(rs)
	}
	b.ReportMetric(est, "estimatorSpearman")
	b.ReportMetric(rnd, "randomSpearman")
}

// BenchmarkExtensionCrossProfile reproduces the paper's framing claim:
// program-based prediction is roughly a factor of two worse than
// profile-based prediction.
func BenchmarkExtensionCrossProfile(b *testing.B) {
	e := sharedEvaluator(b)
	var prog, cross float64
	for i := 0; i < b.N; i++ {
		rows, err := e.CrossProfile()
		if err != nil {
			b.Fatal(err)
		}
		var ps, cs []float64
		for _, r := range rows {
			ps = append(ps, r.ProgramMiss)
			cs = append(cs, r.CrossMiss)
		}
		prog, cross = stats.Mean(ps), stats.Mean(cs)
	}
	b.ReportMetric(prog, "programBasedMiss%")
	b.ReportMetric(cross, "profileBasedMiss%")
}

// BenchmarkAblationOptimize measures the MIR optimizer's effect: static
// shrinkage and the predictor's all-branch miss rate on optimized code.
func BenchmarkAblationOptimize(b *testing.B) {
	var shrink, missBase, missOpt float64
	for i := 0; i < b.N; i++ {
		var before, after int
		var mb, mo []float64
		for _, bench := range suite.All() {
			prog, err := bench.Compile()
			if err != nil {
				b.Fatal(err)
			}
			op := opt.Program(prog)
			before += prog.NumInstrs()
			after += op.NumInstrs()
			for _, p := range []*mir.Program{prog, op} {
				a, err := core.Analyze(p, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				res, err := interp.Run(p, interp.Config{Input: bench.Data[0].Input, Budget: bench.Budget})
				if err != nil {
					b.Fatal(err)
				}
				preds := a.Predictions(core.DefaultOrder)
				var miss, dyn int64
				for id := range preds {
					dyn += res.Profile.Executed(id)
					miss += res.Profile.Misses(id, preds[id].Taken())
				}
				rate := 100 * float64(miss) / float64(dyn)
				if p == prog {
					mb = append(mb, rate)
				} else {
					mo = append(mo, rate)
				}
			}
		}
		shrink = 100 * float64(before-after) / float64(before)
		missBase, missOpt = stats.Mean(mb), stats.Mean(mo)
	}
	b.ReportMetric(shrink, "staticShrink%")
	b.ReportMetric(missBase, "missUnopt%")
	b.ReportMetric(missOpt, "missOpt%")
}

// BenchmarkExtensionDynPred compares static prediction against the 1-bit
// and 2-bit dynamic hardware predictors over the suite's traces.
func BenchmarkExtensionDynPred(b *testing.B) {
	e := sharedEvaluator(b)
	var mh, m2 float64
	for i := 0; i < b.N; i++ {
		rows, err := e.DynPred()
		if err != nil {
			b.Fatal(err)
		}
		var hs, twos []float64
		for _, r := range rows {
			hs = append(hs, r.Heur)
			twos = append(twos, r.TwoBit)
		}
		mh, m2 = stats.Mean(hs), stats.Mean(twos)
	}
	b.ReportMetric(mh, "ballLarusMiss%")
	b.ReportMetric(m2, "twoBitMiss%")
}

// BenchmarkExtensionLayout measures prediction-driven block reordering
// and reports the dynamic taken-branch rate before and after.
func BenchmarkExtensionLayout(b *testing.B) {
	bench := suite.Get("gcc")
	prog, err := bench.Compile()
	if err != nil {
		b.Fatal(err)
	}
	a, err := core.Analyze(prog, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	preds := a.Predictions(core.DefaultOrder)
	var before, after float64
	for i := 0; i < b.N; i++ {
		np, err := layout.Reorder(a, preds)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			orig, err := interp.Run(prog, interp.Config{Input: bench.Data[0].Input, Budget: bench.Budget})
			if err != nil {
				b.Fatal(err)
			}
			laid, err := interp.Run(np, interp.Config{Input: bench.Data[0].Input, Budget: 2 * bench.Budget})
			if err != nil {
				b.Fatal(err)
			}
			before = 100 * layout.TakenRate(orig.Profile.Taken, orig.Profile.Fall)
			after = 100 * layout.TakenRate(laid.Profile.Taken, laid.Profile.Fall)
		}
	}
	b.ReportMetric(before, "takenBefore%")
	b.ReportMetric(after, "takenAfter%")
}

var _ = orders.NumOrders // keep the import meaningful if benches change

// BenchmarkServiceCachedHit measures the whole-pipeline cached-hit path
// through the facade — the budget against which the observability layer
// (metrics recording, span plumbing) must stay within noise.
func BenchmarkServiceCachedHit(b *testing.B) {
	src := `int main() { int i; int s = 0; for (i = 0; i < 500000; i++) { s += i % 9; } printi(s); return 0; }`
	svc := NewService()
	defer svc.Close()
	ctx := context.Background()
	if _, err := svc.Predict(ctx, PredictRequest{Source: src}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Predict(ctx, PredictRequest{Source: src}); err != nil {
			b.Fatal(err)
		}
	}
}
