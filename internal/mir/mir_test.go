package mir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegClassification(t *testing.T) {
	if Int(3).IsFloat() {
		t.Error("Int(3) must not be float")
	}
	if !Float(3).IsFloat() {
		t.Error("Float(3) must be float")
	}
	if Int(3).Index() != int(FirstVirtual)+3 {
		t.Errorf("Int(3).Index() = %d", Int(3).Index())
	}
	if Float(3).Index() != int(FirstVirtual)+3 {
		t.Errorf("Float(3).Index() = %d", Float(3).Index())
	}
	names := map[Reg]string{
		R0: "$zero", RV: "$rv", SP: "$sp", GP: "$gp", RA: "$ra",
		FRV: "$frv", Int(0): "$r8", Float(2): "$f10",
	}
	for r, want := range names {
		if got := r.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", uint32(r), got, want)
		}
	}
}

func TestOpClassification(t *testing.T) {
	condBranches := []Op{Beq, Bne, Bltz, Blez, Bgtz, Bgez, FBeq, FBne, FBlt, FBle, FBgt, FBge}
	for _, op := range condBranches {
		if !op.IsCondBranch() {
			t.Errorf("%s should be a conditional branch", op)
		}
		if !op.EndsBlock() {
			t.Errorf("%s should end a block", op)
		}
	}
	for _, op := range []Op{J, Jal, Jalr, Jr, Jtab, Add, Lw, Sw, Halt, Nop} {
		if op.IsCondBranch() {
			t.Errorf("%s should not be a conditional branch", op)
		}
	}
	if !Jal.IsCall() || !Jalr.IsCall() || J.IsCall() {
		t.Error("call classification wrong")
	}
	if !Sw.IsStore() || !FSw.IsStore() || Lw.IsStore() {
		t.Error("store classification wrong")
	}
	if !Lw.IsLoad() || !FLw.IsLoad() || Sw.IsLoad() {
		t.Error("load classification wrong")
	}
	// Calls do not end blocks (the paper's CFGs run through calls).
	if Jal.EndsBlock() || Jalr.EndsBlock() {
		t.Error("calls must not end blocks")
	}
	if !J.EndsBlock() || !Jr.EndsBlock() || !Jtab.EndsBlock() || !Halt.EndsBlock() {
		t.Error("jumps/returns/halt must end blocks")
	}
}

func TestUsesAndDef(t *testing.T) {
	cases := []struct {
		in   Instr
		uses []Reg
		def  Reg
		has  bool
	}{
		{Instr{Op: Add, Rd: Int(0), Rs: Int(1), Rt: Int(2)}, []Reg{Int(1), Int(2)}, Int(0), true},
		{Instr{Op: Li, Rd: Int(0), Imm: 5}, nil, Int(0), true},
		{Instr{Op: Lw, Rd: Int(0), Rs: SP, Imm: 1}, []Reg{SP}, Int(0), true},
		{Instr{Op: Sw, Rs: SP, Rt: Int(1), Imm: 1}, []Reg{SP, Int(1)}, 0, false},
		{Instr{Op: Beq, Rs: Int(0), Rt: R0}, []Reg{Int(0), R0}, 0, false},
		{Instr{Op: Bltz, Rs: Int(0)}, []Reg{Int(0)}, 0, false},
		{Instr{Op: Jal, Callee: 0}, nil, RA, true},
		{Instr{Op: Jr, Rs: RA}, []Reg{RA}, 0, false},
		{Instr{Op: FAdd, Rd: Float(0), Rs: Float(1), Rt: Float(2)}, []Reg{Float(1), Float(2)}, Float(0), true},
		{Instr{Op: CvtIF, Rd: Float(0), Rs: Int(1)}, []Reg{Int(1)}, Float(0), true},
		{Instr{Op: Halt}, nil, 0, false},
	}
	for _, c := range cases {
		got := c.in.Uses(nil)
		if len(got) != len(c.uses) {
			t.Errorf("%s: uses %v, want %v", c.in.String(), got, c.uses)
			continue
		}
		for i := range got {
			if got[i] != c.uses[i] {
				t.Errorf("%s: uses %v, want %v", c.in.String(), got, c.uses)
			}
		}
		d, ok := c.in.Def()
		if ok != c.has || (ok && d != c.def) {
			t.Errorf("%s: def %v,%v, want %v,%v", c.in.String(), d, ok, c.def, c.has)
		}
	}
}

func TestIsReturn(t *testing.T) {
	ret := Instr{Op: Jr, Rs: RA}
	if !ret.IsReturn() {
		t.Error("jr $ra is a return")
	}
	notRet := Instr{Op: Jr, Rs: Int(0)}
	if notRet.IsReturn() {
		t.Error("jr through another register is not a return")
	}
}

func validProgram() *Program {
	return &Program{
		Procs: []*Proc{{
			Name:   "main",
			NIRegs: 2,
			Code: []Instr{
				{Op: Li, Rd: Int(0), Imm: 1},
				{Op: Beq, Rs: Int(0), Rt: R0, Target: 3},
				{Op: Addi, Rd: Int(1), Rs: Int(0), Imm: 1},
				{Op: Halt},
			},
		}},
	}
}

func TestValidateOK(t *testing.T) {
	if err := validProgram().Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Program)
		want string
	}{
		{"bad entry", func(p *Program) { p.Entry = 5 }, "entry"},
		{"bad target", func(p *Program) { p.Procs[0].Code[1].Target = 99 }, "out of range"},
		{"bad callee", func(p *Program) {
			p.Procs[0].Code[0] = Instr{Op: Jal, Callee: 7}
		}, "callee"},
		{"reg out of range", func(p *Program) {
			p.Procs[0].Code[0].Rd = Int(50)
		}, "register"},
		{"freg out of range", func(p *Program) {
			p.Procs[0].Code[2] = Instr{Op: FLi, Rd: Float(0), FImm: 1}
		}, "register"},
		{"trailing cond branch", func(p *Program) {
			p.Procs[0].Code = p.Procs[0].Code[:2]
			p.Procs[0].Code[1].Target = 0
		}, "conditional branch"},
		{"falls off end", func(p *Program) {
			p.Procs[0].Code[3] = Instr{Op: Li, Rd: Int(0), Imm: 2}
		}, "falls off"},
		{"empty proc", func(p *Program) { p.Procs[0].Code = nil }, "empty"},
		{"builtin with code", func(p *Program) {
			p.Procs = append(p.Procs, &Proc{Name: "b", Builtin: BAlloc, Code: []Instr{{Op: Halt}}})
		}, "builtin"},
		{"entry is builtin", func(p *Program) {
			p.Procs[0].Builtin = BAlloc
			p.Procs[0].Code = nil
		}, "builtin"},
		{"empty jump table", func(p *Program) {
			p.Procs[0].Code[1] = Instr{Op: Jtab, Rs: Int(0)}
		}, "jump table"},
	}
	for _, m := range mutations {
		p := validProgram()
		m.mut(p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: expected error", m.name)
			continue
		}
		if !strings.Contains(err.Error(), m.want) {
			t.Errorf("%s: error %q does not mention %q", m.name, err, m.want)
		}
	}
}

func TestFrameLayout(t *testing.T) {
	p := &Proc{NArgs: 3, NLocals: 4}
	if p.FrameSize() != 8 {
		t.Errorf("FrameSize = %d, want 8", p.FrameSize())
	}
	// Arg 0 is stored highest (at oldSP-1 = sp+frame-1).
	if p.ArgSlot(0) != 7 || p.ArgSlot(2) != 5 {
		t.Errorf("ArgSlot(0)=%d ArgSlot(2)=%d", p.ArgSlot(0), p.ArgSlot(2))
	}
}

func TestDisasmRoundtrip(t *testing.T) {
	p := validProgram()
	d := p.Disasm()
	for _, want := range []string{"main", "li $r8, 1", "beq $r8, $zero, @3", "halt"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}

func TestNumInstrs(t *testing.T) {
	p := validProgram()
	if p.NumInstrs() != 4 {
		t.Errorf("NumInstrs = %d, want 4", p.NumInstrs())
	}
}

func TestUsesNeverPanics(t *testing.T) {
	// Property: Uses and Def are total over all opcodes.
	f := func(op uint8, rd, rs, rt uint32) bool {
		in := Instr{Op: Op(op % uint8(numOps)), Rd: Reg(rd), Rs: Reg(rs), Rt: Reg(rt)}
		_ = in.Uses(nil)
		_, _ = in.Def()
		_ = in.String()
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
