// Package mir defines a MIPS-like register intermediate representation.
//
// The Ball-Larus heuristics were formulated over MIPS R2000/R3000
// executables. This package reproduces the aspects of that instruction set
// the heuristics observe: compare-against-zero conditional branch opcodes
// (bltz, blez, bgtz, bgez), two-register equality branches (beq, bne),
// floating-point compare-and-branch opcodes, loads and stores with a base
// register (so the Pointer heuristic can screen out GP- and SP-relative
// addressing), direct and indirect calls, indirect jumps through tables,
// and procedure returns.
//
// Memory is word addressed: every address names one 64-bit slot holding
// either an integer or a floating-point value. A procedure's code is a flat
// instruction slice; branch targets are instruction indices within the
// procedure, and calls name callee procedures by index in the program.
package mir

import (
	"fmt"
	"strings"
)

// Reg names a machine register. Integer and floating-point registers live
// in one numeric space distinguished by the FloatBit flag. A small set of
// low-numbered integer registers have architectural roles; all registers at
// index FirstVirtual and above are general-purpose virtual registers that
// the interpreter materializes per activation (modelling the paper's
// "-O"-compiled benchmarks, where global register allocation keeps scalars
// in registers).
type Reg uint32

// FloatBit marks a register as floating point.
const FloatBit Reg = 1 << 31

// Architectural integer registers.
const (
	R0 Reg = iota // hardwired zero
	RV            // integer return value (shared across activations)
	SP            // stack pointer (stack grows toward lower addresses)
	GP            // global pointer (base of global data)
	RA            // return address, set by Jal/Jalr

	// FirstVirtual is the first virtual register index in either space.
	FirstVirtual Reg = 8
)

// FRV is the floating-point return value register.
const FRV = FloatBit | 1

// Int returns the n'th virtual integer register.
func Int(n int) Reg { return FirstVirtual + Reg(n) }

// Float returns the n'th virtual floating-point register.
func Float(n int) Reg { return FloatBit | (FirstVirtual + Reg(n)) }

// IsFloat reports whether r is a floating-point register.
func (r Reg) IsFloat() bool { return r&FloatBit != 0 }

// Index returns the register's index within its (int or float) space.
func (r Reg) Index() int { return int(r &^ FloatBit) }

// String renders the register in assembly style.
func (r Reg) String() string {
	if r.IsFloat() {
		if r == FRV {
			return "$frv"
		}
		return fmt.Sprintf("$f%d", r.Index())
	}
	switch r {
	case R0:
		return "$zero"
	case RV:
		return "$rv"
	case SP:
		return "$sp"
	case GP:
		return "$gp"
	case RA:
		return "$ra"
	}
	return fmt.Sprintf("$r%d", r.Index())
}

// Op is an instruction opcode.
type Op uint8

// Instruction opcodes.
const (
	Nop Op = iota

	// Integer ALU. Three-register unless noted.
	Add
	Sub
	Mul
	Div // quotient, truncated toward zero
	Rem
	And
	Or
	Xor
	Sll // shift left logical by Rt
	Srl
	Sra
	Slt // Rd = 1 if Rs < Rt else 0
	Sle
	Seq
	Sne
	Li   // Rd = Imm
	Addi // Rd = Rs + Imm
	Move // Rd = Rs

	// Floating point ALU.
	FAdd
	FSub
	FMul
	FDiv
	FNeg
	FLi   // Fd = FImm
	FMove // Fd = Fs
	CvtIF // Fd = float(Rs)
	CvtFI // Rd = int(Fs), truncated
	FSlt  // Rd = 1 if Fs < Ft (integer destination)
	FSle  //
	FSeq  //
	FSne  //

	// Memory. Addresses are Rs+Imm in words.
	Lw  // Rd = mem[Rs+Imm]
	Sw  // mem[Rs+Imm] = Rt
	FLw // Fd = mem[Rs+Imm]
	FSw // mem[Rs+Imm] = Ft

	// Two-way conditional branches with fixed targets. The taken direction
	// transfers to Target; the fall-through direction is the next
	// instruction. These are the branches the predictor predicts.
	Beq  // if Rs == Rt
	Bne  // if Rs != Rt
	Bltz // if Rs < 0
	Blez // if Rs <= 0
	Bgtz // if Rs > 0
	Bgez // if Rs >= 0
	FBeq // if Fs == Ft
	FBne // if Fs != Ft
	FBlt // if Fs < Ft
	FBle // if Fs <= Ft
	FBgt // if Fs > Ft
	FBge // if Fs >= Ft

	// Control transfer.
	J    // unconditional jump to Target
	Jal  // call Procs[Callee]; sets RA
	Jalr // indirect call through Rs (an encoded return-address value); break in control
	Jr   // jump through register; Jr RA is a procedure return
	Jtab // indirect jump: Target = Table[Rs]; break in control (jump table)

	Halt // stop the machine

	numOps
)

var opNames = [...]string{
	Nop: "nop",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Rem: "rem",
	And: "and", Or: "or", Xor: "xor", Sll: "sll", Srl: "srl", Sra: "sra",
	Slt: "slt", Sle: "sle", Seq: "seq", Sne: "sne",
	Li: "li", Addi: "addi", Move: "move",
	FAdd: "fadd", FSub: "fsub", FMul: "fmul", FDiv: "fdiv", FNeg: "fneg",
	FLi: "fli", FMove: "fmove", CvtIF: "cvt.if", CvtFI: "cvt.fi",
	FSlt: "fslt", FSle: "fsle", FSeq: "fseq", FSne: "fsne",
	Lw: "lw", Sw: "sw", FLw: "flw", FSw: "fsw",
	Beq: "beq", Bne: "bne", Bltz: "bltz", Blez: "blez", Bgtz: "bgtz", Bgez: "bgez",
	FBeq: "fbeq", FBne: "fbne", FBlt: "fblt", FBle: "fble", FBgt: "fbgt", FBge: "fbge",
	J: "j", Jal: "jal", Jalr: "jalr", Jr: "jr", Jtab: "jtab",
	Halt: "halt",
}

// String returns the opcode mnemonic.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsCondBranch reports whether op is a two-way conditional branch with a
// fixed target — the class of branches the paper predicts.
func (op Op) IsCondBranch() bool { return op >= Beq && op <= FBge }

// IsBranchOrJump reports whether op unconditionally or conditionally
// transfers control (excluding calls and returns).
func (op Op) IsBranchOrJump() bool { return op.IsCondBranch() || op == J || op == Jtab }

// IsCall reports whether op is a call (direct or indirect).
func (op Op) IsCall() bool { return op == Jal || op == Jalr }

// IsStore reports whether op writes memory.
func (op Op) IsStore() bool { return op == Sw || op == FSw }

// IsLoad reports whether op reads memory.
func (op Op) IsLoad() bool { return op == Lw || op == FLw }

// EndsBlock reports whether op terminates a basic block.
func (op Op) EndsBlock() bool {
	return op.IsCondBranch() || op == J || op == Jr || op == Jtab || op == Halt
}

// Instr is one MIR instruction. Field use depends on Op; unused fields are
// zero. For conditional branches, Target is the taken successor's
// instruction index and the fall-through successor is the next instruction.
type Instr struct {
	Op     Op
	Rd     Reg     // destination register
	Rs     Reg     // first source / base register for memory ops
	Rt     Reg     // second source / stored value for Sw and FSw
	Imm    int64   // immediate / word offset for memory ops
	FImm   float64 // floating immediate for FLi
	Target int     // branch/jump target instruction index within the procedure
	Callee int     // callee procedure index for Jal
	Table  []int   // jump table targets for Jtab
}

// IsReturn reports whether the instruction is a procedure return (Jr RA).
func (in *Instr) IsReturn() bool { return in.Op == Jr && in.Rs == RA }

// Uses appends the registers the instruction reads to dst and returns it.
// R0 is included when named; callers that care can skip it.
func (in *Instr) Uses(dst []Reg) []Reg {
	switch in.Op {
	case Nop, Li, FLi, J, Jal, Halt:
	case Add, Sub, Mul, Div, Rem, And, Or, Xor, Sll, Srl, Sra, Slt, Sle, Seq, Sne,
		FAdd, FSub, FMul, FDiv, FSlt, FSle, FSeq, FSne,
		Beq, Bne, FBeq, FBne, FBlt, FBle, FBgt, FBge:
		dst = append(dst, in.Rs, in.Rt)
	case Addi, Move, FMove, FNeg, CvtIF, CvtFI, Lw, FLw, Jr, Jalr, Jtab,
		Bltz, Blez, Bgtz, Bgez:
		dst = append(dst, in.Rs)
	case Sw, FSw:
		dst = append(dst, in.Rs, in.Rt)
	}
	return dst
}

// Def returns the register the instruction writes and whether it writes one.
func (in *Instr) Def() (Reg, bool) {
	switch in.Op {
	case Add, Sub, Mul, Div, Rem, And, Or, Xor, Sll, Srl, Sra, Slt, Sle, Seq, Sne,
		Li, Addi, Move, CvtFI, Lw, FSlt, FSle, FSeq, FSne:
		return in.Rd, true
	case FAdd, FSub, FMul, FDiv, FNeg, FLi, FMove, CvtIF, FLw:
		return in.Rd, true
	case Jal, Jalr:
		return RA, true
	}
	return 0, false
}

// BuiltinKind identifies a runtime service implemented natively by the
// interpreter. Builtin procedures have no code; calling one performs the
// service. They model the C library the paper's benchmarks linked against.
type BuiltinKind uint8

// Builtin procedures.
const (
	NotBuiltin BuiltinKind = iota
	BAlloc                 // RV = address of Arg0 fresh words (bump allocator)
	BPrintI                // print Arg0 as a decimal integer
	BPrintF                // print float Arg0
	BPrintC                // print Arg0 as a character
	BPrintS                // print zero-terminated word string at address Arg0
	BReadI                 // RV = next integer from input, -1 on end
	BReadC                 // RV = next character from input, -1 on end
	BReadF                 // FRV = next value from input as float, 0 on end
	BRand                  // RV = next pseudo-random non-negative integer
	BSrand                 // seed the generator with Arg0
	BExit                  // stop the machine with status Arg0

	numBuiltins
)

var builtinNames = [...]string{
	BAlloc: "alloc", BPrintI: "printi", BPrintF: "printfl", BPrintC: "printc",
	BPrintS: "prints", BReadI: "readi", BReadC: "readc", BReadF: "readf",
	BRand: "rand", BSrand: "srand", BExit: "exit",
}

// String returns the builtin's source-level name.
func (b BuiltinKind) String() string {
	if int(b) < len(builtinNames) && builtinNames[b] != "" {
		return builtinNames[b]
	}
	return fmt.Sprintf("builtin(%d)", uint8(b))
}

// Proc is one procedure. Its stack frame, in words from SP upward, is:
//
//	sp+0                 saved RA
//	sp+1 .. sp+NLocals   locals (arrays, structs, address-taken scalars)
//	sp+1+NLocals ..      incoming arguments (stored by the caller at
//	                     oldSP-1-i for argument i, i.e. highest index first)
//
// so FrameSize = 1 + NLocals + NArgs and argument i lives at
// sp + FrameSize - 1 - i after the prologue drops SP.
type Proc struct {
	Name    string
	Builtin BuiltinKind // nonzero for builtins; Code is then empty
	NArgs   int
	NLocals int // frame words for locals, excluding the RA slot and args
	NIRegs  int // virtual integer registers used (indices FirstVirtual..)
	NFRegs  int // virtual float registers used
	Code    []Instr
}

// FrameSize returns the procedure's frame size in words.
func (p *Proc) FrameSize() int { return 1 + p.NLocals + p.NArgs }

// ArgSlot returns the SP-relative word offset of argument i after the
// prologue has dropped SP.
func (p *Proc) ArgSlot(i int) int { return p.FrameSize() - 1 - i }

// Program is a whole MIR program.
type Program struct {
	Procs  []*Proc
	Entry  int     // index of the entry procedure
	Data   []int64 // initial global memory image, addressed from GP
	Source string  // optional: the source the program was compiled from
}

// Proc returns the named procedure, or nil.
func (p *Program) Proc(name string) *Proc {
	for _, pr := range p.Procs {
		if pr.Name == name {
			return pr
		}
	}
	return nil
}

// NumInstrs returns the total instruction count over all non-builtin
// procedures. The paper's Table 1 reports object-code size; we report
// NumInstrs×4 bytes, the MIPS encoding size.
func (p *Program) NumInstrs() int {
	n := 0
	for _, pr := range p.Procs {
		n += len(pr.Code)
	}
	return n
}

// Validate checks structural invariants: branch targets in range, callees
// in range, builtins empty, entry valid, register indices within the
// declared counts. It returns the first problem found.
func (p *Program) Validate() error {
	if p.Entry < 0 || p.Entry >= len(p.Procs) {
		return fmt.Errorf("mir: entry %d out of range", p.Entry)
	}
	if p.Procs[p.Entry].Builtin != NotBuiltin {
		return fmt.Errorf("mir: entry %q is a builtin", p.Procs[p.Entry].Name)
	}
	for pi, pr := range p.Procs {
		if pr.Builtin != NotBuiltin {
			if len(pr.Code) != 0 {
				return fmt.Errorf("mir: builtin %q has code", pr.Name)
			}
			continue
		}
		if len(pr.Code) == 0 {
			return fmt.Errorf("mir: procedure %q is empty", pr.Name)
		}
		for i := range pr.Code {
			in := &pr.Code[i]
			if err := p.validateInstr(pr, in); err != nil {
				return fmt.Errorf("mir: %s+%d: %v", pr.Name, i, err)
			}
			_ = pi
		}
		last := pr.Code[len(pr.Code)-1].Op
		if last.IsCondBranch() {
			return fmt.Errorf("mir: procedure %q ends with a conditional branch (no fall-through)", pr.Name)
		}
		if !last.EndsBlock() && last != Jal && last != Jalr {
			// Falling off the end of a procedure is a structural error.
			if !pr.Code[len(pr.Code)-1].IsReturn() {
				return fmt.Errorf("mir: procedure %q falls off the end", pr.Name)
			}
		}
	}
	return nil
}

func (p *Program) validateInstr(pr *Proc, in *Instr) error {
	if in.Op >= numOps {
		return fmt.Errorf("bad opcode %d", in.Op)
	}
	checkTarget := func(t int) error {
		if t < 0 || t >= len(pr.Code) {
			return fmt.Errorf("target %d out of range [0,%d)", t, len(pr.Code))
		}
		return nil
	}
	if in.Op.IsCondBranch() || in.Op == J {
		if err := checkTarget(in.Target); err != nil {
			return err
		}
	}
	if in.Op == Jtab {
		if len(in.Table) == 0 {
			return fmt.Errorf("empty jump table")
		}
		for _, t := range in.Table {
			if err := checkTarget(t); err != nil {
				return err
			}
		}
	}
	if in.Op == Jal {
		if in.Callee < 0 || in.Callee >= len(p.Procs) {
			return fmt.Errorf("callee %d out of range", in.Callee)
		}
	}
	check := func(r Reg) error {
		idx := r.Index()
		if r.IsFloat() {
			if idx != int(FRV&^FloatBit) && (idx < int(FirstVirtual) || idx >= int(FirstVirtual)+pr.NFRegs) {
				return fmt.Errorf("float register %s out of declared range (%d fregs)", r, pr.NFRegs)
			}
			return nil
		}
		if idx < int(FirstVirtual) {
			return nil // architectural register
		}
		if idx >= int(FirstVirtual)+pr.NIRegs {
			return fmt.Errorf("register %s out of declared range (%d iregs)", r, pr.NIRegs)
		}
		return nil
	}
	var regs []Reg
	regs = in.Uses(regs)
	if d, ok := in.Def(); ok {
		regs = append(regs, d)
	}
	for _, r := range regs {
		if err := check(r); err != nil {
			return err
		}
	}
	return nil
}

// String disassembles the instruction.
func (in *Instr) String() string {
	op := in.Op
	switch {
	case op == Nop || op == Halt:
		return op.String()
	case op == Li:
		return fmt.Sprintf("li %s, %d", in.Rd, in.Imm)
	case op == FLi:
		return fmt.Sprintf("fli %s, %g", in.Rd, in.FImm)
	case op == Addi:
		return fmt.Sprintf("addi %s, %s, %d", in.Rd, in.Rs, in.Imm)
	case op == Move || op == FMove || op == FNeg || op == CvtIF || op == CvtFI:
		return fmt.Sprintf("%s %s, %s", op, in.Rd, in.Rs)
	case op == Lw || op == FLw:
		return fmt.Sprintf("%s %s, %d(%s)", op, in.Rd, in.Imm, in.Rs)
	case op == Sw || op == FSw:
		return fmt.Sprintf("%s %s, %d(%s)", op, in.Rt, in.Imm, in.Rs)
	case op == Beq || op == Bne || (op >= FBeq && op <= FBge):
		return fmt.Sprintf("%s %s, %s, @%d", op, in.Rs, in.Rt, in.Target)
	case op == Bltz || op == Blez || op == Bgtz || op == Bgez:
		return fmt.Sprintf("%s %s, @%d", op, in.Rs, in.Target)
	case op == J:
		return fmt.Sprintf("j @%d", in.Target)
	case op == Jal:
		return fmt.Sprintf("jal #%d", in.Callee)
	case op == Jalr || op == Jr:
		return fmt.Sprintf("%s %s", op, in.Rs)
	case op == Jtab:
		parts := make([]string, len(in.Table))
		for i, t := range in.Table {
			parts[i] = fmt.Sprintf("@%d", t)
		}
		return fmt.Sprintf("jtab %s, [%s]", in.Rs, strings.Join(parts, " "))
	default:
		return fmt.Sprintf("%s %s, %s, %s", op, in.Rd, in.Rs, in.Rt)
	}
}

// Disasm renders the procedure as annotated assembly.
func (p *Proc) Disasm() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: (args=%d locals=%d iregs=%d fregs=%d)\n",
		p.Name, p.NArgs, p.NLocals, p.NIRegs, p.NFRegs)
	if p.Builtin != NotBuiltin {
		fmt.Fprintf(&b, "  <builtin %s>\n", p.Builtin)
		return b.String()
	}
	for i := range p.Code {
		fmt.Fprintf(&b, "  %4d: %s\n", i, p.Code[i].String())
	}
	return b.String()
}

// Disasm renders the whole program as annotated assembly.
func (p *Program) Disasm() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program: entry=#%d globals=%d words\n", p.Entry, len(p.Data))
	for i, pr := range p.Procs {
		fmt.Fprintf(&b, "#%d %s", i, pr.Disasm())
	}
	return b.String()
}
