package resilience

import (
	"context"
	"sync"
	"sync/atomic"
)

// Fault describes one injected failure at a Faultpoint. Exactly one of
// Err, Panic, or Hang should be set.
type Fault struct {
	// Err is returned from the faultpoint as the stage's failure. Wrap
	// with MarkTransient to exercise retry, or leave it unclassified to
	// have it surface as ErrInternal.
	Err error
	// Panic, when non-nil, is panicked with — exercising the Safely
	// isolation layer.
	Panic any
	// Hang blocks the faultpoint until the request's context expires —
	// exercising deadline handling. Never inject a hang on a context
	// without a deadline or cancel path.
	Hang bool
	// Times bounds how often the fault fires before disarming itself;
	// 0 means until ClearFaults.
	Times int
}

// The global fault registry. Faultpoint takes a single atomic load when
// nothing is armed, so production traffic pays essentially nothing.
var (
	faultArmed atomic.Int32
	faultMu    sync.Mutex
	faultTab   = map[string]*faultEntry{}
	faultFired = map[string]int64{}
)

type faultEntry struct {
	f         Fault
	remaining int // shots left when f.Times > 0
}

// InjectFault arms the named faultpoint. Tests that inject faults must
// not run in parallel with each other and should defer ClearFaults.
func InjectFault(name string, f Fault) {
	faultMu.Lock()
	defer faultMu.Unlock()
	faultTab[name] = &faultEntry{f: f, remaining: f.Times}
	faultArmed.Store(int32(len(faultTab)))
}

// ClearFaults disarms every faultpoint and resets fire counts.
func ClearFaults() {
	faultMu.Lock()
	defer faultMu.Unlock()
	faultTab = map[string]*faultEntry{}
	faultFired = map[string]int64{}
	faultArmed.Store(0)
}

// FaultFired reports how many times the named faultpoint has fired
// since the last ClearFaults.
func FaultFired(name string) int64 {
	faultMu.Lock()
	defer faultMu.Unlock()
	return faultFired[name]
}

// Faultpoint is a named fault-injection hook. Production code threads
// these through failure-prone paths; with nothing armed it is a no-op
// (one atomic load). When the named fault is armed it returns the
// injected error, panics, or hangs until ctx expires, per the Fault.
func Faultpoint(ctx context.Context, name string) error {
	if faultArmed.Load() == 0 {
		return nil
	}
	faultMu.Lock()
	e, ok := faultTab[name]
	if ok {
		faultFired[name]++
		if e.f.Times > 0 {
			e.remaining--
			if e.remaining <= 0 {
				delete(faultTab, name)
				faultArmed.Store(int32(len(faultTab)))
			}
		}
	}
	faultMu.Unlock()
	if !ok {
		return nil
	}
	switch {
	case e.f.Hang:
		<-ctx.Done()
		return ctx.Err()
	case e.f.Panic != nil:
		panic(e.f.Panic)
	default:
		return e.f.Err
	}
}
