package resilience

import (
	"testing"
	"time"
)

// TestBreakerTransitionHook: OnTransition observes every state change
// exactly once, in order, across a full closed → open → half-open →
// closed lifecycle.
func TestBreakerTransitionHook(t *testing.T) {
	type move struct{ from, to BreakerState }
	var moves []move
	now := time.Now()
	b := NewBreaker("exec", BreakerPolicy{
		Threshold: 2,
		Cooldown:  time.Second,
		OnTransition: func(name string, from, to BreakerState) {
			if name != "exec" {
				t.Errorf("hook name = %q, want exec", name)
			}
			moves = append(moves, move{from, to})
		},
	})
	b.now = func() time.Time { return now }

	fail := func() {
		done, err := b.Allow()
		if err != nil {
			t.Fatalf("unexpected rejection: %v", err)
		}
		done(true)
	}
	fail()
	fail() // second consecutive trip opens the breaker
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	now = now.Add(2 * time.Second) // past cooldown: next Allow half-opens
	done, err := b.Allow()
	if err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	done(false) // successful probe closes
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
	want := []move{
		{BreakerClosed, BreakerOpen},
		{BreakerOpen, BreakerHalfOpen},
		{BreakerHalfOpen, BreakerClosed},
	}
	if len(moves) != len(want) {
		t.Fatalf("moves = %+v, want %+v", moves, want)
	}
	for i := range want {
		if moves[i] != want[i] {
			t.Errorf("move %d = %+v, want %+v", i, moves[i], want[i])
		}
	}
}
