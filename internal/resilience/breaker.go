package resilience

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// BreakerState is a circuit breaker's admission state.
type BreakerState int32

// Breaker states.
const (
	// BreakerClosed admits everything (the healthy state).
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects everything until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a bounded number of probe requests; one
	// success closes the breaker, one failure reopens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int32(s))
}

// ErrCircuitOpen is wrapped into every breaker rejection. Rejections
// also classify as ErrOverload.
var ErrCircuitOpen = errors.New("circuit breaker open")

// BreakerPolicy configures a Breaker.
type BreakerPolicy struct {
	// Threshold is the number of consecutive tripping failures that
	// opens the breaker; <= 0 disables the breaker entirely.
	Threshold int
	// Cooldown is how long an open breaker rejects before letting
	// half-open probes through; <= 0 means the default.
	Cooldown time.Duration
	// Probes is deprecated and ignored: a half-open breaker admits
	// exactly one in-flight probe, so a thundering herd arriving at the
	// end of a cooldown cannot re-saturate a recovering dependency.
	Probes int
	// OnTransition, when non-nil, observes every state change. It is
	// called with the breaker's internal lock held, so it must be fast
	// and must not call back into the breaker.
	OnTransition func(name string, from, to BreakerState)
}

// DefaultBreaker opens after 5 consecutive failures and probes again
// after 5 seconds.
var DefaultBreaker = BreakerPolicy{Threshold: 5, Cooldown: 5 * time.Second, Probes: 1}

// Breaker is a closed/open/half-open circuit breaker. Safe for
// concurrent use; a nil Breaker admits everything.
type Breaker struct {
	name string
	pol  BreakerPolicy
	now  func() time.Time // injectable clock for tests

	mu       sync.Mutex
	state    BreakerState
	failures int       // consecutive tripping failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
	gen      uint64    // bumped on every transition; stale probe outcomes are discarded
	opens    int64     // cumulative closed/half-open → open transitions
	rejected int64     // cumulative rejections
}

// NewBreaker creates a breaker. Zero policy fields take defaults, except
// Threshold: a non-positive threshold disables the breaker.
func NewBreaker(name string, pol BreakerPolicy) *Breaker {
	if pol.Cooldown <= 0 {
		pol.Cooldown = DefaultBreaker.Cooldown
	}
	return &Breaker{name: name, pol: pol, now: time.Now}
}

// Allow asks to admit one request. On admission it returns a non-nil
// done func that MUST be called exactly once with whether the request
// tripped (see Trips). On rejection done is nil and err wraps both
// ErrCircuitOpen and ErrOverload.
func (b *Breaker) Allow() (done func(tripped bool), err error) {
	if b == nil || b.pol.Threshold <= 0 {
		return func(bool) {}, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.pol.Cooldown {
			b.rejected++
			return nil, Overloaded(fmt.Errorf("%w: %s", ErrCircuitOpen, b.name))
		}
		b.transition(BreakerHalfOpen)
		fallthrough
	case BreakerHalfOpen:
		// Exactly one in-flight probe: a herd arriving at the end of the
		// cooldown gets one representative; the rest stay rejected until
		// the probe settles.
		if b.probing {
			b.rejected++
			return nil, Overloaded(fmt.Errorf("%w: %s (half-open, probe in flight)", ErrCircuitOpen, b.name))
		}
		b.probing = true
		gen := b.gen
		return func(tripped bool) { b.settleProbe(gen, tripped) }, nil
	default:
		return b.settle, nil
	}
}

// settle records the outcome of a request admitted while closed.
func (b *Breaker) settle(tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerClosed {
		return // the breaker moved on while this request ran
	}
	if !tripped {
		b.failures = 0
		return
	}
	b.failures++
	if b.failures >= b.pol.Threshold {
		b.open()
	}
}

// settleProbe records the outcome of the half-open probe admitted at
// generation gen. A probe that settles after the breaker has already
// moved on (reopened and gone half-open again, say) is stale: acting on
// it would release a probe slot it no longer owns, so it is discarded.
func (b *Breaker) settleProbe(gen uint64, tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if gen != b.gen || b.state != BreakerHalfOpen {
		return
	}
	b.probing = false
	if tripped {
		b.open()
	} else {
		b.transition(BreakerClosed)
		b.failures = 0
	}
}

// open transitions to BreakerOpen. Caller holds b.mu.
func (b *Breaker) open() {
	b.transition(BreakerOpen)
	b.openedAt = b.now()
	b.opens++
	b.failures = 0
}

// transition moves to state to, notifying the policy hook on an actual
// change. Caller holds b.mu.
func (b *Breaker) transition(to BreakerState) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	b.gen++
	b.probing = false
	if b.pol.OnTransition != nil {
		b.pol.OnTransition(b.name, from, to)
	}
}

// State returns the breaker's current admission state.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerStats is a point-in-time snapshot of one breaker.
type BreakerStats struct {
	Name     string `json:"name"`
	State    string `json:"state"`
	Failures int    `json:"consecutive_failures"`
	Opens    int64  `json:"opens"`
	Rejected int64  `json:"rejected"`
}

// Stats snapshots the breaker's counters.
func (b *Breaker) Stats() BreakerStats {
	if b == nil {
		return BreakerStats{State: BreakerClosed.String()}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		Name:     b.name,
		State:    b.state.String(),
		Failures: b.failures,
		Opens:    b.opens,
		Rejected: b.rejected,
	}
}
