package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ballarus/internal/interp"
)

func TestTaxonomy(t *testing.T) {
	cause := errors.New("boom")
	cases := []struct {
		err  error
		kind error
	}{
		{Invalid(cause), ErrInvalidInput},
		{Exhausted(cause), ErrResourceExhausted},
		{Overloaded(cause), ErrOverload},
		{Timeout(cause), ErrTimeout},
		{Internal(cause), ErrInternal},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.kind) {
			t.Errorf("%v should match its kind %v", c.err, c.kind)
		}
		if !errors.Is(c.err, cause) {
			t.Errorf("%v lost its cause", c.err)
		}
		if got := KindOf(c.err); got != c.kind {
			t.Errorf("KindOf(%v) = %v, want %v", c.err, got, c.kind)
		}
		// Exactly one kind matches.
		n := 0
		for _, k := range kinds {
			if errors.Is(c.err, k) {
				n++
			}
		}
		if n != 1 {
			t.Errorf("%v matches %d kinds, want 1", c.err, n)
		}
	}
	if Invalid(nil) != nil || MarkTransient(nil) != nil {
		t.Error("classifying nil must stay nil")
	}
	// Wrapping through fmt.Errorf keeps the kind reachable.
	wrapped := fmt.Errorf("stage: %w", Exhausted(interp.ErrBudget))
	if !errors.Is(wrapped, ErrResourceExhausted) || !errors.Is(wrapped, interp.ErrBudget) {
		t.Errorf("wrapped classification broken: %v", wrapped)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		kind error
	}{
		{nil, nil},
		{interp.ErrBudget, ErrResourceExhausted},
		{fmt.Errorf("x: %w", interp.ErrBudget), ErrResourceExhausted},
		{context.Canceled, ErrTimeout},
		{context.DeadlineExceeded, ErrTimeout},
		{interp.ErrInterrupted, ErrTimeout},
		{errors.New("mystery"), ErrInternal},
		{Invalid(errors.New("bad")), ErrInvalidInput}, // already classified: untouched
	}
	for _, c := range cases {
		if got := KindOf(Classify(c.err)); got != c.kind {
			t.Errorf("Classify(%v) kind = %v, want %v", c.err, got, c.kind)
		}
	}
}

func TestTrips(t *testing.T) {
	if Trips(nil) || Trips(Invalid(errors.New("x"))) || Trips(Exhausted(errors.New("x"))) ||
		Trips(Overloaded(errors.New("x"))) {
		t.Error("client errors and shed load must not trip the breaker")
	}
	if Trips(Classify(context.Canceled)) {
		t.Error("client cancellation must not trip the breaker")
	}
	if !Trips(Internal(errors.New("x"))) || !Trips(Classify(context.DeadlineExceeded)) {
		t.Error("internal errors and deadline expiry must trip the breaker")
	}
}

func TestSafely(t *testing.T) {
	if err := Safely("ok", func() error { return nil }); err != nil {
		t.Fatalf("Safely passed through err = %v", err)
	}
	sentinel := errors.New("plain")
	if err := Safely("plain", func() error { return sentinel }); err != sentinel {
		t.Fatalf("Safely must not touch ordinary errors, got %v", err)
	}
	err := Safely("boom", func() error { panic("kaboom") })
	if err == nil || !IsPanic(err) || !errors.Is(err, ErrInternal) {
		t.Fatalf("recovered panic = %v, want PanicError classified internal", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Stage != "boom" || len(pe.Stack) == 0 {
		t.Fatalf("panic context lost: %+v", pe)
	}
}

func TestRetryTransientOnly(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond, Multiplier: 2}
	calls := 0
	err := pol.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return MarkTransient(errors.New("blip"))
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("retry: err %v after %d calls, want success on 3rd", err, calls)
	}

	calls = 0
	permanent := Invalid(errors.New("bad input"))
	if err := pol.Do(context.Background(), func() error { calls++; return permanent }); !errors.Is(err, ErrInvalidInput) || calls != 1 {
		t.Fatalf("non-transient error retried: %d calls, err %v", calls, err)
	}

	calls = 0
	err = pol.Do(context.Background(), func() error { calls++; return MarkTransient(errors.New("always")) })
	if !IsTransient(err) || calls != 4 {
		t.Fatalf("exhausted retries: %d calls (want 4), err %v", calls, err)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	pol := RetryPolicy{MaxAttempts: 100, BaseDelay: time.Hour}
	calls := 0
	done := make(chan error, 1)
	go func() {
		done <- pol.Do(ctx, func() error { calls++; return MarkTransient(errors.New("x")) })
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if calls != 1 || !IsTransient(err) {
			t.Fatalf("canceled retry: %d calls, err %v", calls, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry did not observe cancellation during backoff")
	}
}

func TestRetryBackoffCapped(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond, Multiplier: 2}
	for attempt, want := range map[int]time.Duration{1: 10 * time.Millisecond, 2: 20 * time.Millisecond, 3: 40 * time.Millisecond, 8: 40 * time.Millisecond} {
		if got := pol.backoff(attempt); got != want {
			t.Errorf("backoff(%d) = %v, want %v", attempt, got, want)
		}
	}
	jittered := RetryPolicy{MaxAttempts: 2, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond, Multiplier: 2, Jitter: 0.5}
	for i := 0; i < 100; i++ {
		d := jittered.backoff(1)
		if d < 7500*time.Microsecond || d > 12500*time.Microsecond {
			t.Fatalf("jittered backoff %v outside ±25%% of 10ms", d)
		}
	}
}

func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker("stage", BreakerPolicy{Threshold: 3, Cooldown: time.Minute})
	clock := time.Unix(0, 0)
	b.now = func() time.Time { return clock }

	fail := func() {
		done, err := b.Allow()
		if err != nil {
			t.Fatalf("closed breaker rejected: %v", err)
		}
		done(true)
	}
	// Two failures, then a success: the consecutive counter resets.
	fail()
	fail()
	done, _ := b.Allow()
	done(false)
	if st := b.Stats(); st.State != "closed" || st.Failures != 0 {
		t.Fatalf("success did not reset failures: %+v", st)
	}
	// Threshold consecutive failures open it.
	fail()
	fail()
	fail()
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after %d failures, want open", b.State(), 3)
	}
	if _, err := b.Allow(); !errors.Is(err, ErrCircuitOpen) || !errors.Is(err, ErrOverload) {
		t.Fatalf("open breaker rejection = %v, want ErrCircuitOpen+ErrOverload", err)
	}
	// Cooldown elapses: one probe allowed, concurrent probes rejected.
	clock = clock.Add(2 * time.Minute)
	probe, err := b.Allow()
	if err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if _, err := b.Allow(); err == nil {
		t.Fatal("second concurrent probe should be rejected")
	}
	// Probe fails: back to open.
	probe(true)
	if b.State() != BreakerOpen {
		t.Fatalf("failed probe left state %v, want open", b.State())
	}
	// Next cooldown, successful probe closes it.
	clock = clock.Add(2 * time.Minute)
	probe, err = b.Allow()
	if err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	probe(false)
	if b.State() != BreakerClosed {
		t.Fatalf("successful probe left state %v, want closed", b.State())
	}
	if st := b.Stats(); st.Opens != 2 || st.Rejected != 2 {
		t.Fatalf("stats = %+v, want 2 opens, 2 rejections", st)
	}
}

func TestBreakerDisabledAndNil(t *testing.T) {
	var nilB *Breaker
	done, err := nilB.Allow()
	if err != nil {
		t.Fatal("nil breaker must admit")
	}
	done(true)
	b := NewBreaker("off", BreakerPolicy{Threshold: 0})
	for i := 0; i < 100; i++ {
		done, err := b.Allow()
		if err != nil {
			t.Fatal("disabled breaker must admit")
		}
		done(true)
	}
	if b.State() != BreakerClosed {
		t.Fatal("disabled breaker must stay closed")
	}
}

func TestBreakerConcurrent(t *testing.T) {
	b := NewBreaker("race", BreakerPolicy{Threshold: 5, Cooldown: time.Millisecond})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				done, err := b.Allow()
				if err != nil {
					continue
				}
				done(j%3 == 0)
			}
		}(i)
	}
	wg.Wait()
	b.Stats() // must not race
}

// TestBreakerThunderingProbes: when a herd of requests arrives the
// instant a cooldown expires, exactly one becomes the half-open probe —
// no matter how it ends, and no matter how stale probes from earlier
// half-open windows settle.
func TestBreakerThunderingProbes(t *testing.T) {
	b := NewBreaker("stage", BreakerPolicy{Threshold: 1, Cooldown: time.Second, Probes: 64})
	clock := time.Unix(0, 0)
	b.now = func() time.Time { return clock }

	trip := func() {
		done, err := b.Allow()
		if err != nil {
			t.Fatalf("breaker rejected while closed: %v", err)
		}
		done(true)
	}
	herd := func() (admitted []func(bool), rejected int) {
		for i := 0; i < 16; i++ {
			done, err := b.Allow()
			if err != nil {
				if !errors.Is(err, ErrCircuitOpen) {
					t.Fatalf("herd rejection = %v, want ErrCircuitOpen", err)
				}
				rejected++
				continue
			}
			admitted = append(admitted, done)
		}
		return admitted, rejected
	}

	trip() // open
	clock = clock.Add(2 * time.Second)
	admitted, rejected := herd()
	if len(admitted) != 1 || rejected != 15 {
		t.Fatalf("post-cooldown herd admitted %d, rejected %d; want exactly 1 probe (Probes is ignored)",
			len(admitted), rejected)
	}
	staleProbe := admitted[0]

	// While the probe is in flight, even after more wall time passes,
	// nothing else gets through.
	clock = clock.Add(2 * time.Second)
	if more, _ := herd(); len(more) != 0 {
		t.Fatalf("%d extra probes admitted while one is in flight", len(more))
	}

	// The probe fails: back to open, herd fully rejected.
	staleProbe(true)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after failed probe, want open", b.State())
	}
	if more, _ := herd(); len(more) != 0 {
		t.Fatal("open breaker admitted requests")
	}

	// Next cooldown: again one probe. A stale settle of the previous
	// window's probe must not free this window's slot.
	clock = clock.Add(2 * time.Second)
	admitted, _ = herd()
	if len(admitted) != 1 {
		t.Fatalf("second window admitted %d probes, want 1", len(admitted))
	}
	staleProbe(false) // stale: from the first half-open window
	if b.State() != BreakerHalfOpen {
		t.Fatalf("stale probe settle moved state to %v", b.State())
	}
	if more, _ := herd(); len(more) != 0 {
		t.Fatal("stale probe settle released the in-flight probe slot")
	}

	// The real probe succeeds: closed, and traffic flows again.
	admitted[0](false)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after successful probe, want closed", b.State())
	}
	done, err := b.Allow()
	if err != nil {
		t.Fatalf("closed breaker rejected: %v", err)
	}
	done(false)
}

func TestFaultpoint(t *testing.T) {
	defer ClearFaults()
	ctx := context.Background()

	// Unarmed: free no-op.
	if err := Faultpoint(ctx, "nothing"); err != nil {
		t.Fatalf("unarmed faultpoint returned %v", err)
	}

	boom := errors.New("injected")
	InjectFault("p.err", Fault{Err: boom, Times: 2})
	if err := Faultpoint(ctx, "p.err"); err != boom {
		t.Fatalf("fire 1 = %v", err)
	}
	if err := Faultpoint(ctx, "other"); err != nil {
		t.Fatalf("unrelated faultpoint fired: %v", err)
	}
	if err := Faultpoint(ctx, "p.err"); err != boom {
		t.Fatalf("fire 2 = %v", err)
	}
	if err := Faultpoint(ctx, "p.err"); err != nil {
		t.Fatalf("Times=2 fault fired a third time: %v", err)
	}
	if n := FaultFired("p.err"); n != 2 {
		t.Fatalf("FaultFired = %d, want 2", n)
	}

	InjectFault("p.panic", Fault{Panic: "kapow"})
	err := Safely("p", func() error { return Faultpoint(ctx, "p.panic") })
	if !IsPanic(err) {
		t.Fatalf("injected panic not recovered: %v", err)
	}

	InjectFault("p.hang", Fault{Hang: true})
	hctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := Faultpoint(hctx, "p.hang"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang returned %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("hang did not respect the context deadline")
	}

	ClearFaults()
	if err := Faultpoint(ctx, "p.panic"); err != nil {
		t.Fatalf("cleared faultpoint still armed: %v", err)
	}
}
