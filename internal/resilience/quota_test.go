package resilience

import (
	"errors"
	"fmt"
	"testing"
)

func TestQuotaRefinesOverload(t *testing.T) {
	cause := errors.New("tenant acme over rate limit")
	err := Quota(cause)
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Error("Quota error must match ErrQuotaExceeded")
	}
	if !errors.Is(err, ErrOverload) {
		t.Error("Quota error must also match ErrOverload — it is a refinement, not a sibling")
	}
	if !errors.Is(err, cause) {
		t.Error("Quota error lost its cause")
	}
	// The taxonomy contract: KindOf reports the base kind, so existing
	// overload handling (HTTP 429 mapping, shed accounting) is untouched.
	if got := KindOf(err); got != ErrOverload {
		t.Errorf("KindOf(Quota(...)) = %v, want ErrOverload", got)
	}
	// A plain overload is NOT a quota rejection.
	if errors.Is(Overloaded(cause), ErrQuotaExceeded) {
		t.Error("plain Overloaded must not match ErrQuotaExceeded")
	}
	if Quota(nil) != nil {
		t.Error("Quota(nil) must stay nil")
	}
}

func TestQuotaDoesNotTripOrRetry(t *testing.T) {
	err := Quota(errors.New("over limit"))
	if Trips(err) {
		t.Error("quota rejections are the tenant's doing, not a replica fault — must not trip the breaker")
	}
	if IsTransient(err) {
		t.Error("quota rejections are deterministic for the tenant — must not be transient")
	}
	// Classify passes already-kinded errors through unchanged.
	if got := Classify(err); got != err {
		t.Errorf("Classify must pass quota errors through, got %v", got)
	}
	// Survives fmt.Errorf wrapping like the rest of the taxonomy.
	wrapped := fmt.Errorf("admit: %w", err)
	if !errors.Is(wrapped, ErrQuotaExceeded) || !errors.Is(wrapped, ErrOverload) {
		t.Errorf("wrapped quota classification broken: %v", wrapped)
	}
}
