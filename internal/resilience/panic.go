package resilience

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// PanicError is a recovered panic converted into an error. It
// classifies as ErrInternal and carries the stage name, the panic
// value, and the goroutine stack captured at recovery time.
type PanicError struct {
	Stage string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("%s: panic: %v", e.Stage, e.Value)
}

func (e *PanicError) Is(target error) bool { return target == ErrInternal }

// Safely runs fn, converting any panic into a *PanicError so a
// misbehaving stage can never kill its worker goroutine.
func Safely(stage string, fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Stage: stage, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// IsPanic reports whether err (or its cause chain) is a recovered panic.
func IsPanic(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe)
}
