package resilience

import (
	"context"
	"math/rand/v2"
	"time"
)

// RetryPolicy retries an operation on transient failure with capped
// exponential backoff and proportional jitter. The zero value performs
// no retries (a single attempt).
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts, including the first;
	// values below 1 mean 1 (no retry).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry multiplies it by Multiplier, capped at MaxDelay.
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Jitter randomizes each delay by ±Jitter/2 of its value, in [0, 1].
	// Spreads synchronized retries from concurrent requests apart.
	Jitter float64
	// Retryable decides whether an error is worth retrying; nil means
	// IsTransient.
	Retryable func(error) bool
	// OnRetry, when non-nil, observes each retry (attempt is the number
	// of the attempt that just failed, starting at 1).
	OnRetry func(attempt int, err error)
}

// DefaultRetry is the service's retry policy: three attempts, 5ms base
// backoff doubling to a 250ms cap, 20% jitter, transient errors only.
var DefaultRetry = RetryPolicy{
	MaxAttempts: 3,
	BaseDelay:   5 * time.Millisecond,
	MaxDelay:    250 * time.Millisecond,
	Multiplier:  2,
	Jitter:      0.2,
}

// Do runs fn until it succeeds, exhausts the attempt budget, returns a
// non-retryable error, or ctx expires. The last error is returned.
func (p RetryPolicy) Do(ctx context.Context, fn func() error) error {
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	retryable := p.Retryable
	if retryable == nil {
		retryable = IsTransient
	}
	for attempt := 1; ; attempt++ {
		err := fn()
		if err == nil || attempt >= attempts || !retryable(err) || ctx.Err() != nil {
			return err
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err)
		}
		if !sleep(ctx, p.backoff(attempt)) {
			return err
		}
	}
}

// backoff returns the jittered delay before retry number attempt (1 for
// the first retry).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := float64(p.BaseDelay)
	if d <= 0 {
		return 0
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 1
	}
	for i := 1; i < attempt; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			break
		}
	}
	if j := min(max(p.Jitter, 0), 1); j > 0 {
		d *= 1 - j/2 + j*rand.Float64()
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	return time.Duration(d)
}

// sleep blocks for d or until ctx expires; it reports whether the full
// delay elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
