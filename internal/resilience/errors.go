// Package resilience is the fault-tolerance layer of the prediction
// pipeline: a typed error taxonomy that classifies every failure into
// one of five client-meaningful kinds, panic isolation that converts
// escaped panics into errors with captured stacks, retry with
// exponential backoff and jitter for transient failures, a per-stage
// circuit breaker, and a deterministic fault-injection hook used by the
// test matrix.
//
// The taxonomy is the contract between the pipeline and its callers:
// every error leaving internal/service satisfies errors.Is against
// exactly one of ErrInvalidInput, ErrResourceExhausted, ErrOverload,
// ErrTimeout, or ErrInternal, while the original cause chain (e.g.
// interp.ErrBudget, context.DeadlineExceeded) stays reachable through
// errors.Is/errors.As as usual.
package resilience

import (
	"context"
	"errors"

	"ballarus/internal/interp"
)

// The five error kinds. Every classified error matches exactly one.
var (
	// ErrInvalidInput marks failures caused by the request itself:
	// malformed source, unknown benchmarks, programs that fault at
	// runtime. Retrying cannot help; the client must change the request.
	ErrInvalidInput = errors.New("invalid input")
	// ErrResourceExhausted marks requests that exceeded a per-request
	// resource cap, most prominently the interpreter instruction budget
	// (interp.ErrBudget). The request is well-formed but too expensive.
	ErrResourceExhausted = errors.New("resource exhausted")
	// ErrOverload marks load shedding: the queue is full or a circuit
	// breaker is open. The request was rejected without being attempted
	// and may succeed if retried later.
	ErrOverload = errors.New("overloaded")
	// ErrQuotaExceeded refines ErrOverload: the request was rejected
	// because its tenant is over a per-tenant quota, not because the
	// service as a whole is saturated. Errors built with Quota match
	// both ErrQuotaExceeded and ErrOverload under errors.Is, so generic
	// overload handling still applies, but quota-aware callers (the
	// gateway, clients honoring Retry-After) can tell "this tenant must
	// back off" from "everyone must back off". Quota rejections are
	// deterministic for the offending tenant — retrying immediately only
	// amplifies the overage — so hedge/retry layers must not replay them.
	ErrQuotaExceeded = errors.New("quota exceeded")
	// ErrTimeout marks deadline expiry and cancellation: the context's
	// deadline passed, the client went away, or the interpreter was
	// interrupted mid-run.
	ErrTimeout = errors.New("timed out")
	// ErrInternal marks everything else — bugs, escaped panics, injected
	// faults. These are the service's fault, never the client's.
	ErrInternal = errors.New("internal error")
)

// ErrTransient marks an error as plausibly transient: a retry of the
// same operation may succeed. Wrap with MarkTransient; test with
// IsTransient. Retry policies only retry transient errors by default.
var ErrTransient = errors.New("transient failure")

// kinds in classification priority order.
var kinds = []error{ErrInvalidInput, ErrResourceExhausted, ErrOverload, ErrTimeout, ErrInternal}

// classified attaches a kind to a cause. errors.Is matches the kind
// directly and anything in the cause chain via Unwrap.
type classified struct {
	kind  error
	cause error
}

func (e *classified) Error() string        { return e.kind.Error() + ": " + e.cause.Error() }
func (e *classified) Unwrap() error        { return e.cause }
func (e *classified) Is(target error) bool { return target == e.kind }

func as(kind, cause error) error {
	if cause == nil {
		return nil
	}
	return &classified{kind: kind, cause: cause}
}

// Invalid classifies err as ErrInvalidInput. Nil stays nil.
func Invalid(err error) error { return as(ErrInvalidInput, err) }

// Exhausted classifies err as ErrResourceExhausted. Nil stays nil.
func Exhausted(err error) error { return as(ErrResourceExhausted, err) }

// Overloaded classifies err as ErrOverload. Nil stays nil.
func Overloaded(err error) error { return as(ErrOverload, err) }

// quota classifies a cause as a per-tenant quota rejection. It is a
// refinement of ErrOverload: errors.Is matches both ErrQuotaExceeded
// and ErrOverload, and KindOf still reports ErrOverload so the
// taxonomy's "exactly one kind" contract holds.
type quota struct{ cause error }

func (e *quota) Error() string { return "quota exceeded: " + e.cause.Error() }
func (e *quota) Unwrap() error { return e.cause }
func (e *quota) Is(target error) bool {
	return target == ErrQuotaExceeded || target == ErrOverload
}

// Quota classifies err as a per-tenant quota rejection: the result
// matches both ErrQuotaExceeded and ErrOverload. Nil stays nil.
func Quota(err error) error {
	if err == nil {
		return nil
	}
	return &quota{cause: err}
}

// Timeout classifies err as ErrTimeout. Nil stays nil.
func Timeout(err error) error { return as(ErrTimeout, err) }

// Internal classifies err as ErrInternal. Nil stays nil.
func Internal(err error) error { return as(ErrInternal, err) }

// transient marks a cause as retryable without assigning a kind.
type transient struct{ cause error }

func (e *transient) Error() string        { return "transient: " + e.cause.Error() }
func (e *transient) Unwrap() error        { return e.cause }
func (e *transient) Is(target error) bool { return target == ErrTransient }

// MarkTransient marks err as transient (see ErrTransient). Nil stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transient{cause: err}
}

// IsTransient reports whether err is marked transient.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// KindOf returns the kind sentinel err is classified as, or nil if err
// is nil or unclassified.
func KindOf(err error) error {
	if err == nil {
		return nil
	}
	for _, k := range kinds {
		if errors.Is(err, k) {
			return k
		}
	}
	return nil
}

// Classify assigns a kind to err. Already-classified errors pass
// through unchanged; known sentinels map to their kind
// (interp.ErrBudget → ErrResourceExhausted; context cancellation,
// deadline expiry, and interp.ErrInterrupted → ErrTimeout); anything
// else is ErrInternal. Nil stays nil.
func Classify(err error) error {
	switch {
	case err == nil:
		return nil
	case KindOf(err) != nil:
		return err
	case errors.Is(err, interp.ErrBudget):
		return Exhausted(err)
	case errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, interp.ErrInterrupted):
		return Timeout(err)
	default:
		return Internal(err)
	}
}

// Trips reports whether err should count against a circuit breaker:
// internal errors and timeouts do; client mistakes (invalid input,
// exhausted budgets), shed load, and client-side cancellation do not.
func Trips(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) {
		return false
	}
	k := KindOf(err)
	return k == ErrInternal || k == ErrTimeout
}
