package cluster

import (
	"net/http"
	"time"

	"ballarus/internal/obs"
)

// metrics is the gateway's observability surface, exposed at /metrics
// in the Prometheus text format via the shared obs registry.
type metrics struct {
	reg *obs.Registry

	requests          map[string]*obs.Counter // by outcome class
	attempts          map[string]*obs.Counter // by attempt kind
	hedgeFires        *obs.Counter
	hedgeWins         *obs.Counter
	retryDenied       *obs.Counter
	staleServed       *obs.Counter
	probes            *obs.Counter
	healthTransitions *obs.Counter
	ejections         *obs.Counter

	replicaLatency map[string]*obs.Histogram
	replicaOK      map[string]*obs.Counter
	replicaErr     map[string]*obs.Counter
}

// attempt kinds.
const (
	attemptPrimary = "primary"
	attemptHedge   = "hedge"
	attemptRetry   = "retry"
)

func newMetrics(g *Gateway) *metrics {
	r := obs.NewRegistry()
	m := &metrics{
		reg:            r,
		requests:       map[string]*obs.Counter{},
		attempts:       map[string]*obs.Counter{},
		replicaLatency: map[string]*obs.Histogram{},
		replicaOK:      map[string]*obs.Counter{},
		replicaErr:     map[string]*obs.Counter{},
	}
	for _, outcome := range []string{"ok", "degraded", "client_error", "upstream_error", "timeout", "no_capacity", "quota"} {
		m.requests[outcome] = r.Counter("ballarus_gateway_requests_total",
			"Client requests by final outcome.", "outcome", outcome)
	}
	for _, kind := range []string{attemptPrimary, attemptHedge, attemptRetry} {
		m.attempts[kind] = r.Counter("ballarus_gateway_attempts_total",
			"Upstream attempts by kind.", "kind", kind)
	}
	m.hedgeFires = r.Counter("ballarus_gateway_hedge_fires_total",
		"Hedge attempts launched after the latency-quantile delay.")
	m.hedgeWins = r.Counter("ballarus_gateway_hedge_wins_total",
		"Requests whose winning response came from a hedge attempt.")
	m.retryDenied = r.Counter("ballarus_gateway_retry_budget_denied_total",
		"Retries or hedges suppressed by an exhausted retry budget.")
	m.staleServed = r.Counter("ballarus_gateway_stale_served_total",
		"Brownout responses served from the last-known-good cache.")
	m.probes = r.Counter("ballarus_gateway_probes_total",
		"Active health probes performed.")
	m.healthTransitions = r.Counter("ballarus_gateway_health_transitions_total",
		"Replica healthy/unhealthy state changes from active probing.")
	m.ejections = r.Counter("ballarus_gateway_ejections_total",
		"Passive outlier ejections from consecutive live-traffic failures.")

	r.GaugeFunc("ballarus_gateway_retry_budget_tokens",
		"Retry-budget tokens currently banked.", g.budget.level)
	r.GaugeFunc("ballarus_gateway_healthy_replicas",
		"Replicas currently routable (probe-healthy and not ejected).",
		func() float64 { return float64(g.healthyCount()) })
	r.GaugeFunc("ballarus_gateway_stale_entries",
		"Entries in the brownout last-known-good cache.",
		func() float64 { return float64(g.stale.len()) })

	for _, rep := range g.replicas {
		rep := rep
		r.GaugeFunc("ballarus_gateway_replica_healthy",
			"Whether active probing considers the replica healthy (1/0).",
			func() float64 {
				if rep.available(time.Now()) {
					return 1
				}
				return 0
			}, "replica", rep.id)
		r.GaugeFunc("ballarus_gateway_replica_ejected",
			"Whether the replica is inside a passive ejection cool-off (1/0).",
			func() float64 {
				if rep.ejected(time.Now()) {
					return 1
				}
				return 0
			}, "replica", rep.id)
		r.GaugeFunc("ballarus_gateway_replica_inflight",
			"Attempts currently in flight to the replica.",
			func() float64 { return float64(rep.inflight.Load()) }, "replica", rep.id)
		m.replicaLatency[rep.id] = r.Histogram("ballarus_gateway_replica_latency_seconds",
			"Latency of successful attempts per replica.", obs.DurationBuckets, "replica", rep.id)
		m.replicaOK[rep.id] = r.Counter("ballarus_gateway_replica_requests_total",
			"Attempt outcomes per replica.", "replica", rep.id, "outcome", "ok")
		m.replicaErr[rep.id] = r.Counter("ballarus_gateway_replica_requests_total",
			"Attempt outcomes per replica.", "replica", rep.id, "outcome", "error")
	}
	g.archive.Register(r)
	return m
}

// handleMetrics serves the gateway's Prometheus exposition.
func (m *metrics) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m.reg.WritePrometheus(w)
}
