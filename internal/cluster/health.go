package cluster

import (
	"context"
	"log/slog"
	"net/http"
	"time"
)

// probeLoop actively probes every replica's /healthz on the configured
// interval until the gateway closes. Probes run concurrently per tick
// so one stalled replica cannot starve checks of the others.
func (g *Gateway) probeLoop() {
	defer g.probers.Done()
	t := time.NewTicker(g.cfg.ProbeEvery)
	defer t.Stop()
	g.probeAll() // first verdicts arrive one interval sooner
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.probeAll()
		}
	}
}

func (g *Gateway) probeAll() {
	done := make(chan struct{}, len(g.replicas))
	for _, rep := range g.replicas {
		go func(rep *replica) {
			defer func() { done <- struct{}{} }()
			g.probeOne(rep)
		}(rep)
	}
	for range g.replicas {
		<-done
	}
}

// probeOne performs a single health check and feeds the rise/fall
// state machine, logging transitions.
func (g *Gateway) probeOne(rep *replica) {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
	defer cancel()
	ok := false
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.base.String()+"/healthz", nil)
	if err == nil {
		resp, rerr := g.client.Do(req)
		if rerr == nil {
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
		}
	}
	g.metrics.probes.Inc()
	healthy, changed := rep.probeResult(ok, g.cfg.Rise, g.cfg.Fall)
	if changed {
		g.metrics.healthTransitions.Inc()
		g.cfg.Logger.Info("replica health changed",
			slog.String("replica", rep.id),
			slog.String("url", rep.base.String()),
			slog.Bool("healthy", healthy))
	}
}

// healthyCount returns how many replicas are currently routable.
func (g *Gateway) healthyCount() int {
	now := time.Now()
	n := 0
	for _, rep := range g.replicas {
		if rep.available(now) {
			n++
		}
	}
	return n
}
