// Package cluster is the replicated-serving layer: a reverse-proxy
// gateway that fronts N blserve replicas and turns their individual
// failures into non-events for clients.
//
// The gateway combines several imperfect signals about replica health
// into one reliable routing decision — the same trick the Ball–Larus
// predictor plays with per-branch heuristics:
//
//   - Active health checking: every replica's /healthz is probed on an
//     interval; Rise consecutive passes mark it healthy, Fall
//     consecutive failures mark it down.
//   - Passive outlier ejection: EjectAfter consecutive 5xx/transport
//     failures on live traffic ejects a replica for an exponentially
//     growing cool-off (EjectBase doubling up to EjectMax), so a sick
//     replica stops hurting clients between probe ticks.
//   - Hedged requests: POST /v1/predict is idempotent (the service is
//     deterministic and content-hash cached), so after the observed
//     latency quantile elapses the gateway fires one hedge at a
//     different replica; first success wins and the loser is canceled
//     through its context.
//   - Retry budget: a token bucket deposits RetryRatio tokens per
//     primary attempt and charges one per retry or hedge, so retries
//     can never amplify load past a fixed fraction of primary traffic
//     no matter how unhealthy the fleet is.
//   - Deadline propagation: the client's X-Deadline-Ms (or the
//     gateway's own Timeout) bounds every attempt, and the remaining
//     budget is re-stamped on each upstream request so a replica never
//     works past the moment the client stops caring.
//   - Brownout degradation: when every option is exhausted, a
//     last-known-good response for the identical request is served
//     with "degraded":true instead of an error.
package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"ballarus/internal/obs"
)

// Config configures a Gateway. The zero value of every field takes the
// listed default; Replicas is required.
type Config struct {
	// Replicas are the blserve base URLs (e.g. http://127.0.0.1:8723).
	Replicas []string

	// ProbeEvery is the active health-check interval (default 1s;
	// negative disables active probing).
	ProbeEvery time.Duration
	// ProbeTimeout bounds one /healthz probe (default 500ms).
	ProbeTimeout time.Duration
	// Rise is the consecutive probe passes that mark a replica healthy
	// (default 2).
	Rise int
	// Fall is the consecutive probe failures that mark it down
	// (default 2).
	Fall int

	// EjectAfter is the consecutive live-traffic failures (5xx or
	// transport error) that passively eject a replica (default 3).
	EjectAfter int
	// EjectBase is the first ejection's cool-off, doubling per repeat
	// ejection up to EjectMax (defaults 1s and 30s).
	EjectBase time.Duration
	EjectMax  time.Duration

	// HedgeQuantile is the latency quantile after which a hedge fires
	// (default 0.9).
	HedgeQuantile float64
	// HedgeInitial is the hedge delay used before enough latency
	// samples exist (default 50ms).
	HedgeInitial time.Duration
	// HedgeMin clamps the hedge delay from below so a fast fleet never
	// hedges instantly (default 5ms).
	HedgeMin time.Duration
	// MaxAttempts bounds total attempts per request, primary included
	// (default 3).
	MaxAttempts int

	// RetryRatio is the retry-budget deposit per primary attempt: the
	// steady-state fraction of primary traffic that retries and hedges
	// may add (default 0.2).
	RetryRatio float64
	// RetryBurst caps the banked tokens (default 10).
	RetryBurst int

	// Routing selects the replica routing policy: RoutingLeastInflight
	// (the default) or RoutingRendezvous, which shards requests across
	// replicas by their canonical content key so replica caches
	// specialize, falling back to healthy replicas on ejection/death
	// and rebalancing on readmission.
	Routing string
	// RoutingSeed seeds the least-inflight tie-break LCG; 0 derives a
	// seed from the clock. Fixed seeds make routing reproducible in
	// tests.
	RoutingSeed uint64

	// Timeout is the per-request deadline applied when the client does
	// not send X-Deadline-Ms (default 30s).
	Timeout time.Duration
	// MaxBody bounds the request body (default 4 MiB).
	MaxBody int64
	// StaleCap bounds the last-known-good brownout cache (default 256).
	StaleCap int

	// Tracer records gateway request traces; nil builds a default
	// 256-entry tracer so /debug/traces and trace assembly always work.
	Tracer *obs.Tracer
	// TraceArchive tail-samples completed traces; nil builds one with
	// obs.ArchivePolicy defaults. Errored, hedged, breaker-tripped, and
	// slow traces are always kept.
	TraceArchive *obs.Archive

	// Transport overrides the upstream round tripper (tests).
	Transport http.RoundTripper
	// Logger receives replica state-change events; nil discards them.
	Logger *slog.Logger
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.ProbeEvery == 0 {
		c.ProbeEvery = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 500 * time.Millisecond
	}
	if c.Rise <= 0 {
		c.Rise = 2
	}
	if c.Fall <= 0 {
		c.Fall = 2
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.EjectBase <= 0 {
		c.EjectBase = time.Second
	}
	if c.EjectMax <= 0 {
		c.EjectMax = 30 * time.Second
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.9
	}
	if c.HedgeInitial <= 0 {
		c.HedgeInitial = 50 * time.Millisecond
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 5 * time.Millisecond
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryRatio <= 0 {
		c.RetryRatio = 0.2
	}
	if c.RetryBurst <= 0 {
		c.RetryBurst = 10
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 4 << 20
	}
	if c.StaleCap <= 0 {
		c.StaleCap = 256
	}
	if c.Logger == nil {
		c.Logger = slog.New(discardHandler{})
	}
	return c
}

// discardHandler drops every record (slog.DiscardHandler arrives in a
// newer Go than this module targets).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// Gateway fronts a set of blserve replicas. Create with New, serve its
// Handler, and Close it to stop the health prober.
type Gateway struct {
	cfg      Config
	replicas []*replica
	client   *http.Client
	budget   *budget
	latency  *latencyTracker
	stale    *staleStore
	metrics  *metrics
	routing  RoutingPolicy
	tracer   *obs.Tracer
	archive  *obs.Archive

	stop     chan struct{}
	stopOnce sync.Once
	probers  sync.WaitGroup
}

// New builds a gateway over cfg.Replicas and starts the active health
// prober.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("cluster: no replicas configured")
	}
	seed := cfg.RoutingSeed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	routing, err := newRoutingPolicy(cfg.Routing, seed)
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		cfg:     cfg,
		budget:  newBudget(cfg.RetryRatio, float64(cfg.RetryBurst)),
		latency: newLatencyTracker(cfg.HedgeQuantile, cfg.HedgeInitial, cfg.HedgeMin),
		stale:   newStaleStore(cfg.StaleCap),
		routing: routing,
		tracer:  cfg.Tracer,
		archive: cfg.TraceArchive,
		stop:    make(chan struct{}),
	}
	if g.tracer == nil {
		g.tracer = obs.NewTracer(256, cfg.Logger)
	}
	if g.archive == nil {
		g.archive = obs.NewArchive(obs.ArchivePolicy{})
	}
	g.tracer.SetSource("gateway")
	g.tracer.Attach(g.archive)
	g.client = &http.Client{Transport: cfg.Transport}
	for i, raw := range cfg.Replicas {
		rep, err := newReplica(fmt.Sprintf("replica%d", i), raw)
		if err != nil {
			return nil, fmt.Errorf("cluster: replica %d: %w", i, err)
		}
		g.replicas = append(g.replicas, rep)
	}
	g.metrics = newMetrics(g)
	if cfg.ProbeEvery > 0 {
		g.probers.Add(1)
		go g.probeLoop()
	}
	return g, nil
}

// Close stops the health prober. In-flight proxied requests finish on
// their own deadlines.
func (g *Gateway) Close() {
	g.stopOnce.Do(func() { close(g.stop) })
	g.probers.Wait()
}
