package cluster

import (
	"fmt"
	"math/rand"
	"net/http"
	"testing"
)

// testReplicas builds n bare replicas (no server behind them) for
// policy-level tests.
func testReplicas(t *testing.T, n int) []*replica {
	t.Helper()
	reps := make([]*replica, n)
	for i := range reps {
		rep, err := newReplica(fmt.Sprintf("replica%d", i), fmt.Sprintf("http://127.0.0.1:%d", 9000+i))
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = rep
	}
	return reps
}

// TestLeastInflightTieBreakSpread: with three equally idle replicas the
// tie-break must spread picks near-uniformly. The old scan-order
// tie-break gave replica0 everything; the seeded LCG must not.
func TestLeastInflightTieBreakSpread(t *testing.T) {
	reps := testReplicas(t, 3)
	p, err := newRoutingPolicy(RoutingLeastInflight, 1)
	if err != nil {
		t.Fatal(err)
	}
	const picks = 3000
	counts := map[string]int{}
	for i := 0; i < picks; i++ {
		counts[p.Pick("", reps).id]++
	}
	want := picks / len(reps)
	for _, rep := range reps {
		got := counts[rep.id]
		if got < want*8/10 || got > want*12/10 {
			t.Errorf("replica %s picked %d/%d times, want ~%d ±20%% (counts %v)",
				rep.id, got, picks, want, counts)
		}
	}
}

// TestLeastInflightPrefersIdle: load breaks the tie before the LCG does.
func TestLeastInflightPrefersIdle(t *testing.T) {
	reps := testReplicas(t, 3)
	reps[0].inflight.Store(2)
	reps[2].inflight.Store(5)
	p, _ := newRoutingPolicy(RoutingLeastInflight, 7)
	for i := 0; i < 50; i++ {
		if got := p.Pick("", reps); got != reps[1] {
			t.Fatalf("pick %d = %s, want the idle replica1", i, got.id)
		}
	}
}

// TestRendezvousStable: the property the routing tier depends on —
// while the replica set is unchanged, a key always routes to the same
// replica, regardless of candidate order.
func TestRendezvousStable(t *testing.T) {
	reps := testReplicas(t, 5)
	p, err := newRoutingPolicy(RoutingRendezvous, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d-%d", i, rng.Int63())
		first := p.Pick(key, reps)
		if again := p.Pick(key, reps); again != first {
			t.Fatalf("key %q moved from %s to %s with an unchanged set", key, first.id, again.id)
		}
		shuffled := append([]*replica(nil), reps...)
		rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
		if got := p.Pick(key, shuffled); got != first {
			t.Fatalf("key %q routed to %s under a shuffled candidate order, want %s", key, got.id, first.id)
		}
	}
}

// TestRendezvousMinimalDisruption: removing one of N replicas remaps
// exactly the keys it owned (~1/N of them) and no others; restoring it
// restores the original assignment bit for bit.
func TestRendezvousMinimalDisruption(t *testing.T) {
	for _, n := range []int{3, 5} {
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			reps := testReplicas(t, n)
			p, _ := newRoutingPolicy(RoutingRendezvous, 1)
			const keys = 2000
			owner := make([]*replica, keys)
			key := func(i int) string { return fmt.Sprintf("program-hash-%d", i) }
			for i := 0; i < keys; i++ {
				owner[i] = p.Pick(key(i), reps)
			}

			dead := reps[1]
			var survivors []*replica
			for _, rep := range reps {
				if rep != dead {
					survivors = append(survivors, rep)
				}
			}
			remapped := 0
			for i := 0; i < keys; i++ {
				after := p.Pick(key(i), survivors)
				switch {
				case owner[i] == dead:
					remapped++
				case after != owner[i]:
					t.Fatalf("key %d owned by surviving %s remapped to %s", i, owner[i].id, after.id)
				}
			}
			// The dead replica owned ~1/n of the keys; allow generous
			// slack around the expectation but stay under the issue's
			// ≤40% bound for n=3.
			frac := float64(remapped) / keys
			lo, hi := 0.5/float64(n), 1.6/float64(n)
			if frac < lo || frac > hi {
				t.Errorf("killing 1 of %d remapped %.1f%% of keys, want ~%.1f%%", n, 100*frac, 100/float64(n))
			}
			if n == 3 && frac > 0.40 {
				t.Errorf("killing 1 of 3 remapped %.1f%%, exceeding the 40%% rendezvous bound", 100*frac)
			}

			// Readmission: the original owners reclaim their keys.
			for i := 0; i < keys; i++ {
				if got := p.Pick(key(i), reps); got != owner[i] {
					t.Fatalf("key %d did not return to %s after readmission (got %s)", i, owner[i].id, got.id)
				}
			}
		})
	}
}

// TestRendezvousKeylessFallsBack: a request with no canonical key
// cannot shard, so it takes the least-inflight path.
func TestRendezvousKeylessFallsBack(t *testing.T) {
	reps := testReplicas(t, 3)
	reps[0].inflight.Store(9)
	reps[2].inflight.Store(9)
	p, _ := newRoutingPolicy(RoutingRendezvous, 1)
	if got := p.Pick("", reps); got != reps[1] {
		t.Fatalf("keyless pick = %s, want the idle replica1", got.id)
	}
}

func TestUnknownRoutingPolicyRejected(t *testing.T) {
	if _, err := newRoutingPolicy("bogus", 1); err == nil {
		t.Fatal("unknown routing policy must be rejected")
	}
	if _, err := New(Config{Replicas: []string{"http://127.0.0.1:1"}, Routing: "bogus", ProbeEvery: -1}); err == nil {
		t.Fatal("New must reject an unknown Config.Routing")
	}
}

// TestGatewayQuotaPassThrough: a per-tenant quota 429 (marked with
// X-RateLimit-Limit by blserve) must pass through on the first attempt
// — no retry, no hedge, no brownout masking — with its backoff headers
// intact, while a bare global-overload 429 still fails over to the
// other replica.
func TestGatewayQuotaPassThrough(t *testing.T) {
	quotaHandler := func(id string) func(http.ResponseWriter, *http.Request) {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.Header.Get("X-Tenant-Id") == "metered" {
				w.Header().Set("Content-Type", "application/json")
				w.Header().Set("Retry-After", "2")
				w.Header().Set("X-RateLimit-Limit", "5")
				w.Header().Set("X-RateLimit-Remaining", "0")
				w.Header().Set("X-RateLimit-Reset", "2")
				w.WriteHeader(http.StatusTooManyRequests)
				fmt.Fprintf(w, `{"error":"tenant over rate quota","code":"quota_exceeded"}`)
				return
			}
			okPredict(id)(w, r)
		}
	}
	a := newFakeReplica(t, "a")
	b := newFakeReplica(t, "b")
	a.predict.Store(quotaHandler("a"))
	b.predict.Store(quotaHandler("b"))
	g, ts := newTestGateway(t, Config{MaxAttempts: 3, RetryRatio: 1, RetryBurst: 100}, a, b)

	resp, data := postBody(t, ts.URL, `{"source":"quota-test"}`, map[string]string{"X-Tenant-Id": "metered"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d (body %s), want 429", resp.StatusCode, data)
	}
	if got := resp.Header.Get("X-RateLimit-Limit"); got != "5" {
		t.Errorf("X-RateLimit-Limit = %q, want 5 relayed", got)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want 2 relayed", got)
	}
	if total := a.hits.Load() + b.hits.Load(); total != 1 {
		t.Errorf("quota rejection took %d attempts, want 1 (retries amplify a deterministic rejection)", total)
	}
	if got := g.metrics.requests["quota"].Value(); got != 1 {
		t.Errorf("quota outcome counter = %d, want 1", got)
	}

	// The same tenant header reaches the replica untouched (the fake
	// keyed its 429 on it), and an unmetered tenant still succeeds.
	resp, data = postBody(t, ts.URL, `{"source":"quota-test"}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unmetered request status = %d (body %s)", resp.StatusCode, data)
	}

	// A bare 429 with no X-RateLimit-Limit is global overload: retryable.
	a.predict.Store(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprintf(w, `{"error":"shed","code":"overload"}`)
	})
	b.predict.Store(okPredict("b"))
	for i := 0; i < 4; i++ {
		resp, data = postBody(t, ts.URL, fmt.Sprintf(`{"source":"overload-%d"}`, i), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("global 429 not retried: status = %d (body %s)", resp.StatusCode, data)
		}
	}
}

// TestGatewayRendezvousRouting: with the rendezvous policy, repeats of
// the same body land on one replica (whose cache specializes on it)
// while the key space spreads across the fleet.
func TestGatewayRendezvousRouting(t *testing.T) {
	a := newFakeReplica(t, "a")
	b := newFakeReplica(t, "b")
	c := newFakeReplica(t, "c")
	_, ts := newTestGateway(t, Config{Routing: RoutingRendezvous, RoutingSeed: 1}, a, b, c)

	seen := map[string]bool{}
	for k := 0; k < 12; k++ {
		body := fmt.Sprintf(`{"source":"program-%d"}`, k)
		var owner string
		for rep := 0; rep < 3; rep++ {
			resp, data := postBody(t, ts.URL, body, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d (body %s)", resp.StatusCode, data)
			}
			id := resp.Header.Get("X-Instance-Id")
			if owner == "" {
				owner = id
			} else if id != owner {
				t.Fatalf("key %d moved from %s to %s with a stable fleet", k, owner, id)
			}
		}
		seen[owner] = true
	}
	if len(seen) < 2 {
		t.Errorf("12 distinct keys all routed to one replica: %v", seen)
	}
}
