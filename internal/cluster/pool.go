package cluster

import (
	"sync/atomic"
	"time"
)

// rrCounter breaks least-loaded ties round-robin so equally idle
// replicas share traffic instead of the first one taking everything.
type rrCounter struct{ n atomic.Uint64 }

func (c *rrCounter) next() uint64 { return c.n.Add(1) }

// pick chooses the replica for the next attempt, excluding those in
// tried. Candidates are taken from the best non-empty tier:
//
//  1. available — probe-healthy and not ejected
//  2. not ejected — probes say down, but ejection hasn't confirmed it;
//     better a suspect replica than a certain failure
//  3. anything untried — last resort while the budget still allows
//
// Within the tier the least-loaded replica wins, ties broken
// round-robin. Returns nil only when every replica has been tried.
func (g *Gateway) pick(tried map[*replica]bool) *replica {
	now := time.Now()
	var tiers [3][]*replica
	for _, rep := range g.replicas {
		if tried[rep] {
			continue
		}
		switch {
		case rep.available(now):
			tiers[0] = append(tiers[0], rep)
		case !rep.ejected(now):
			tiers[1] = append(tiers[1], rep)
		default:
			tiers[2] = append(tiers[2], rep)
		}
	}
	for _, tier := range tiers {
		if len(tier) == 0 {
			continue
		}
		best := tier[int(g.rr.next())%len(tier)]
		for _, rep := range tier {
			if rep.inflight.Load() < best.inflight.Load() {
				best = rep
			}
		}
		return best
	}
	return nil
}
