package cluster

import (
	"fmt"
	"net/http"
	"testing"
	"time"
)

func TestLatencyTrackerDelay(t *testing.T) {
	lt := newLatencyTracker(0.9, 50*time.Millisecond, 5*time.Millisecond)
	if got := lt.delay(); got != 50*time.Millisecond {
		t.Fatalf("thin-data delay = %v, want the 50ms initial", got)
	}
	// 100 samples: 90 fast, 10 slow. The p90 sits at the boundary.
	for i := 0; i < 90; i++ {
		lt.observe(10 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		lt.observe(200 * time.Millisecond)
	}
	if got := lt.delay(); got < 10*time.Millisecond || got > 200*time.Millisecond {
		t.Fatalf("p90 delay = %v, want within observed range", got)
	}
	// The floor clamps a uniformly fast fleet.
	lt2 := newLatencyTracker(0.9, 50*time.Millisecond, 5*time.Millisecond)
	for i := 0; i < 64; i++ {
		lt2.observe(time.Microsecond)
	}
	if got := lt2.delay(); got != 5*time.Millisecond {
		t.Fatalf("clamped delay = %v, want the 5ms floor", got)
	}
}

// TestHedgeBeatsStall: with one replica stalled, the hedge fires after
// the configured delay and the fast replica's answer wins — the
// client never waits out the stall.
func TestHedgeBeatsStall(t *testing.T) {
	const stall = 3 * time.Second
	slowRep := newFakeReplica(t, "slow")
	fastRep := newFakeReplica(t, "fast")
	slowRep.predict.Store(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			return
		case <-time.After(stall):
		}
		okPredict("slow")(w, r)
	})
	g, ts := newTestGateway(t, Config{
		MaxAttempts:  2,
		HedgeInitial: 30 * time.Millisecond,
		HedgeMin:     10 * time.Millisecond,
		RetryRatio:   1,
		RetryBurst:   100,
	}, slowRep, fastRep)

	start := time.Now()
	const n = 8
	for i := 0; i < n; i++ {
		resp, data := postBody(t, ts.URL, fmt.Sprintf(`{"source":"req%d"}`, i), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status = %d (body %s)", i, resp.StatusCode, data)
		}
		if id := resp.Header.Get("X-Instance-Id"); id != "fast" {
			t.Fatalf("request %d answered by %q, want fast (hedge should win)", i, id)
		}
	}
	if elapsed := time.Since(start); elapsed > n*stall/2 {
		t.Fatalf("%d requests took %v; hedging is not cutting the stall tail", n, elapsed)
	}

	fires, wins := g.metrics.hedgeFires.Value(), g.metrics.hedgeWins.Value()
	if fires == 0 {
		t.Fatal("no hedges fired despite a stalled replica")
	}
	if wins == 0 {
		t.Fatal("no hedge wins recorded")
	}
	if wins > fires {
		t.Fatalf("hedge wins %d > fires %d", wins, fires)
	}
}

// TestHedgeRespectsBudget: with a zero-burst empty budget, hedges are
// suppressed rather than amplifying load.
func TestHedgeRespectsBudget(t *testing.T) {
	slowRep := newFakeReplica(t, "slow")
	fastRep := newFakeReplica(t, "fast")
	slowRep.predict.Store(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			return
		case <-time.After(200 * time.Millisecond):
		}
		okPredict("slow")(w, r)
	})
	fastRep.predict.Store(slowRep.predict.Load().(func(http.ResponseWriter, *http.Request)))
	g, ts := newTestGateway(t, Config{
		MaxAttempts:  3,
		HedgeInitial: 10 * time.Millisecond,
		RetryRatio:   0.0001, // effectively never banks a whole token
		RetryBurst:   1,
	}, slowRep, fastRep)
	g.budget.take() // drain the initial burst

	for i := 0; i < 4; i++ {
		resp, data := postBody(t, ts.URL, fmt.Sprintf(`{"source":"req%d"}`, i), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status = %d (body %s)", i, resp.StatusCode, data)
		}
	}
	if fires := g.metrics.hedgeFires.Value(); fires != 0 {
		t.Fatalf("hedges fired %d times with an empty budget", fires)
	}
	if denied := g.metrics.retryDenied.Value(); denied == 0 {
		t.Fatal("budget denials not recorded")
	}
}
