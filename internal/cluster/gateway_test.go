package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ballarus/internal/obs"
)

// fakeReplica is a scriptable blserve stand-in: swap behavior at any
// point by storing a new handler func.
type fakeReplica struct {
	ts      *httptest.Server
	id      string
	predict atomic.Value // func(w http.ResponseWriter, r *http.Request)
	compare atomic.Value // func(w http.ResponseWriter, r *http.Request)
	shard   atomic.Value // func(w http.ResponseWriter, r *http.Request)
	healthy atomic.Bool
	hits    atomic.Int64
	cmpHits atomic.Int64
	shdHits atomic.Int64
}

// okPredict answers like a healthy blserve.
func okPredict(id string) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Instance-Id", id)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"name":"fake","steps":1,"degraded":false}`)
	}
}

// okCompare answers a compare request with a distinguishable body.
func okCompare(id string) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Instance-Id", id)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"name":"fake-compare","predictors":[],"degraded":false}`)
	}
}

// okShard answers a shard request the way a replica's shard stage does:
// a JSON result carrying the shard identity.
func okShard(id string) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Instance-Id", id)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"job_hash":"fake","lo":0,"hi":1,"trials":1}`)
	}
}

func newFakeReplica(t *testing.T, id string) *fakeReplica {
	t.Helper()
	f := &fakeReplica{id: id}
	f.predict.Store(okPredict(id))
	f.compare.Store(okCompare(id))
	f.shard.Store(okShard(id))
	f.healthy.Store(true)
	f.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			if f.healthy.Load() {
				w.WriteHeader(http.StatusOK)
			} else {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
		case "/v1/predict":
			f.hits.Add(1)
			f.predict.Load().(func(http.ResponseWriter, *http.Request))(w, r)
		case "/v1/compare":
			f.cmpHits.Add(1)
			f.compare.Load().(func(http.ResponseWriter, *http.Request))(w, r)
		case "/v1/shard":
			f.shdHits.Add(1)
			f.shard.Load().(func(http.ResponseWriter, *http.Request))(w, r)
		case "/v1/stats":
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"replica":%q}`, f.id)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(f.ts.Close)
	return f
}

// newTestGateway builds a gateway over the fakes with active probing
// off unless cfg turns it on.
func newTestGateway(t *testing.T, cfg Config, fakes ...*fakeReplica) (*Gateway, *httptest.Server) {
	t.Helper()
	for _, f := range fakes {
		cfg.Replicas = append(cfg.Replicas, f.ts.URL)
	}
	if cfg.ProbeEvery == 0 {
		cfg.ProbeEvery = -1
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	return g, ts
}

func postBody(t *testing.T, url string, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	return postPath(t, url, "/v1/predict", body, hdr)
}

func postPath(t *testing.T, url, path, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+path, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestGatewayProxiesPredict(t *testing.T) {
	a := newFakeReplica(t, "a")
	b := newFakeReplica(t, "b")
	_, ts := newTestGateway(t, Config{}, a, b)

	resp, data := postBody(t, ts.URL, `{"source":"x"}`, map[string]string{"X-Trace-Id": "abc123"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (body %s)", resp.StatusCode, data)
	}
	if id := resp.Header.Get("X-Instance-Id"); id != "a" && id != "b" {
		t.Fatalf("X-Instance-Id = %q, want a replica id", id)
	}
	var out map[string]any
	if err := json.Unmarshal(data, &out); err != nil || out["name"] != "fake" {
		t.Fatalf("body %s not relayed (err %v)", data, err)
	}
}

// TestGatewayRetriesPastFailure: one replica answering 500 must not be
// client-visible while the other is healthy.
func TestGatewayRetriesPastFailure(t *testing.T) {
	a := newFakeReplica(t, "a")
	b := newFakeReplica(t, "b")
	a.predict.Store(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	g, ts := newTestGateway(t, Config{MaxAttempts: 2, RetryRatio: 1, RetryBurst: 100}, a, b)

	for i := 0; i < 8; i++ {
		resp, data := postBody(t, ts.URL, fmt.Sprintf(`{"source":"req%d"}`, i), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status = %d (body %s)", i, resp.StatusCode, data)
		}
		if id := resp.Header.Get("X-Instance-Id"); id != "b" {
			t.Fatalf("request %d answered by %q, want b", i, id)
		}
	}
	if got := g.metrics.attempts[attemptRetry].Value() + g.metrics.attempts[attemptHedge].Value(); got == 0 {
		t.Fatal("no retries or hedges recorded despite a failing replica")
	}
}

// TestGatewayPassiveEjection: consecutive failures eject the sick
// replica, after which traffic stops reaching it until the cool-off.
func TestGatewayPassiveEjection(t *testing.T) {
	a := newFakeReplica(t, "a")
	b := newFakeReplica(t, "b")
	a.predict.Store(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	g, ts := newTestGateway(t, Config{
		MaxAttempts: 2, RetryRatio: 1, RetryBurst: 100,
		EjectAfter: 2, EjectBase: time.Minute, EjectMax: time.Minute,
	}, a, b)

	for i := 0; i < 10; i++ {
		resp, data := postBody(t, ts.URL, fmt.Sprintf(`{"source":"req%d"}`, i), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status = %d (body %s)", i, resp.StatusCode, data)
		}
	}
	st := g.Stats()
	var aStats, bStats replicaStats
	for _, rs := range st.Replicas {
		if rs.URL == a.ts.URL {
			aStats = rs
		} else {
			bStats = rs
		}
	}
	if !aStats.Ejected || aStats.Ejections == 0 {
		t.Fatalf("failing replica not ejected: %+v", aStats)
	}
	if bStats.Ejected {
		t.Fatalf("healthy replica ejected: %+v", bStats)
	}
	// Once ejected, new requests must not touch the sick replica.
	before := a.hits.Load()
	for i := 0; i < 5; i++ {
		postBody(t, ts.URL, fmt.Sprintf(`{"source":"post-eject%d"}`, i), nil)
	}
	if after := a.hits.Load(); after != before {
		t.Fatalf("ejected replica still receiving traffic: %d → %d", before, after)
	}
}

// TestGatewayBrownout: with every replica failing, answered requests
// come back stale and degraded; unseen ones get a JSON error with
// Retry-After, never a transport failure.
func TestGatewayBrownout(t *testing.T) {
	a := newFakeReplica(t, "a")
	b := newFakeReplica(t, "b")
	g, ts := newTestGateway(t, Config{MaxAttempts: 2}, a, b)

	// Prime the last-known-good cache; field order must not matter.
	resp, data := postBody(t, ts.URL, `{"source":"x","dataset":1}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prime status = %d (body %s)", resp.StatusCode, data)
	}

	fail := func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}
	a.predict.Store(fail)
	b.predict.Store(fail)

	resp, data = postBody(t, ts.URL, `{"dataset":1,"source":"x"}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("brownout status = %d, want 200 stale (body %s)", resp.StatusCode, data)
	}
	var out map[string]any
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out["degraded"] != true {
		t.Fatalf("stale response not marked degraded: %s", data)
	}
	if g.metrics.staleServed.Value() == 0 {
		t.Fatal("stale_served counter not incremented")
	}

	resp, data = postBody(t, ts.URL, `{"source":"never-seen"}`, nil)
	if resp.StatusCode < 500 {
		t.Fatalf("unseen brownout request: status = %d, want 5xx (body %s)", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("brownout error missing Retry-After")
	}
	var e map[string]string
	if err := json.Unmarshal(data, &e); err != nil || e["error"] == "" {
		t.Fatalf("brownout error body %s is not the JSON error shape (err %v)", data, err)
	}
}

// TestGatewayDeadline: a short client deadline surfaces as 504 and is
// propagated upstream via X-Deadline-Ms.
func TestGatewayDeadline(t *testing.T) {
	var sawDeadline atomic.Bool
	slow := func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("X-Deadline-Ms") != "" {
			sawDeadline.Store(true)
		}
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
	}
	a := newFakeReplica(t, "a")
	b := newFakeReplica(t, "b")
	a.predict.Store(slow)
	b.predict.Store(slow)
	_, ts := newTestGateway(t, Config{MaxAttempts: 2, HedgeInitial: 10 * time.Millisecond}, a, b)

	start := time.Now()
	resp, data := postBody(t, ts.URL, `{"source":"x"}`, map[string]string{"X-Deadline-Ms": "80"})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("504 missing Retry-After")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline took %v to surface", elapsed)
	}
	if !sawDeadline.Load() {
		t.Fatal("X-Deadline-Ms not propagated to the replica")
	}
	// Malformed deadlines are the client's fault.
	resp, _ = postBody(t, ts.URL, `{"source":"x"}`, map[string]string{"X-Deadline-Ms": "soon"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad X-Deadline-Ms: status = %d, want 400", resp.StatusCode)
	}
}

// TestGatewayClientErrorsPassThrough: 4xx means the request is wrong
// everywhere — no retries, body relayed.
func TestGatewayClientErrorsPassThrough(t *testing.T) {
	a := newFakeReplica(t, "a")
	b := newFakeReplica(t, "b")
	bad := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"bad order","code":"invalid_input"}`)
	}
	a.predict.Store(bad)
	b.predict.Store(bad)
	g, ts := newTestGateway(t, Config{MaxAttempts: 3, RetryRatio: 1, RetryBurst: 100}, a, b)

	resp, data := postBody(t, ts.URL, `{"order":"bogus"}`, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (body %s)", resp.StatusCode, data)
	}
	var e map[string]string
	if err := json.Unmarshal(data, &e); err != nil || e["code"] != "invalid_input" {
		t.Fatalf("error body %s not relayed (err %v)", data, err)
	}
	if got := g.metrics.attempts[attemptRetry].Value(); got != 0 {
		t.Fatalf("4xx retried %d times, want 0", got)
	}
}

// TestGatewayStatsAndPassthrough covers the read-only surface.
func TestGatewayStatsAndPassthrough(t *testing.T) {
	a := newFakeReplica(t, "a")
	_, ts := newTestGateway(t, Config{}, a)

	resp, err := http.Get(ts.URL + "/gateway/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st gatewayStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(st.Replicas) != 1 || st.HealthyReplicas != 1 {
		t.Fatalf("stats = %+v", st)
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(data, []byte(`"replica"`)) {
		t.Fatalf("passthrough /v1/stats: status %d body %s", resp.StatusCode, data)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status = %d", resp.StatusCode)
	}
}

// TestGatewayMetricsLint: the exposition must parse and lint clean,
// and carry the headline gateway series.
func TestGatewayMetricsLint(t *testing.T) {
	a := newFakeReplica(t, "a")
	b := newFakeReplica(t, "b")
	_, ts := newTestGateway(t, Config{}, a, b)
	postBody(t, ts.URL, `{"source":"x"}`, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if problems := obs.Lint(bytes.NewReader(data)); len(problems) > 0 {
		t.Fatalf("lint problems: %v", problems)
	}
	e, err := obs.ParseExposition(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := e.Value("ballarus_gateway_requests_total", map[string]string{"outcome": "ok"}); !ok || v < 1 {
		t.Fatalf("requests_total{outcome=ok} = %v %v, want >= 1", v, ok)
	}
	if v, ok := e.Value("ballarus_gateway_healthy_replicas", map[string]string{}); !ok || v != 2 {
		t.Fatalf("healthy_replicas = %v %v, want 2", v, ok)
	}
	for _, name := range []string{
		"ballarus_gateway_hedge_fires_total",
		"ballarus_gateway_hedge_wins_total",
		"ballarus_gateway_retry_budget_tokens",
		"ballarus_gateway_stale_served_total",
	} {
		if _, ok := e.Value(name, map[string]string{}); !ok {
			t.Errorf("metric %s missing from exposition", name)
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no replicas accepted")
	}
	if _, err := New(Config{Replicas: []string{"not a url"}}); err == nil {
		t.Fatal("bad replica URL accepted")
	}
}
