package cluster

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"
	"time"
)

// Routing policy names accepted by Config.Routing.
const (
	// RoutingLeastInflight routes each attempt to the least-loaded
	// candidate, ties broken by a seeded per-gateway LCG so equally
	// idle replicas share traffic evenly. The default.
	RoutingLeastInflight = "least-inflight"
	// RoutingRendezvous routes by rendezvous (highest-random-weight)
	// hashing on the request's canonical content key — the gateway-side
	// analogue of Service.RequestKey — so each replica's caches
	// specialize on a stable shard of the key space. N replicas become
	// an N×-larger effective cache with no resharding step: when a
	// replica dies only its ~1/N of keys remap (to the runner-up by
	// hash weight), and they return when it comes back. Keyless
	// requests (non-canonical bodies) fall back to least-inflight.
	RoutingRendezvous = "rendezvous"
)

// A RoutingPolicy picks the replica for the next attempt.
//
// The gateway narrows the replica set to the best non-empty health
// tier first (see Gateway.pick); the policy chooses within it.
// candidates is never empty. key is the request's canonical content
// hash (staleKey), or "" when the body has no canonical form.
// Implementations must be safe for concurrent use.
type RoutingPolicy interface {
	Name() string
	Pick(key string, candidates []*replica) *replica
}

// newRoutingPolicy resolves a Config.Routing name.
func newRoutingPolicy(name string, seed uint64) (RoutingPolicy, error) {
	li := &leastInflight{}
	li.lcg.Store(seed)
	switch name {
	case "", RoutingLeastInflight:
		return li, nil
	case RoutingRendezvous:
		return &rendezvous{fallback: li}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown routing policy %q (want %s or %s)",
			name, RoutingLeastInflight, RoutingRendezvous)
	}
}

// leastInflight picks the candidate with the fewest attempts in
// flight. Ties are broken by a seeded LCG rather than scan order:
// always taking the first minimum would bias equal replicas toward low
// indices, giving replica0 all the traffic on an idle fleet.
type leastInflight struct{ lcg atomic.Uint64 }

func (p *leastInflight) Name() string { return RoutingLeastInflight }

// next advances the LCG (Knuth's MMIX constants) and returns the high
// bits, which are far better distributed than the low ones.
func (p *leastInflight) next() uint64 {
	for {
		old := p.lcg.Load()
		next := old*6364136223846793005 + 1442695040888963407
		if p.lcg.CompareAndSwap(old, next) {
			return next >> 33
		}
	}
}

func (p *leastInflight) Pick(_ string, candidates []*replica) *replica {
	low := candidates[0].inflight.Load()
	ties := 1
	for _, rep := range candidates[1:] {
		switch n := rep.inflight.Load(); {
		case n < low:
			low, ties = n, 1
		case n == low:
			ties++
		}
	}
	// Reservoir over the minimum set without allocating: the k-th tied
	// candidate is chosen with the LCG draw taken modulo its position.
	pick := int(p.next()) % ties
	for _, rep := range candidates {
		if rep.inflight.Load() == low {
			if pick == 0 {
				return rep
			}
			pick--
		}
	}
	return candidates[0] // inflight moved under us; any candidate is valid
}

// rendezvous implements highest-random-weight hashing: every replica
// scores hash(key, replica-id) and the highest score owns the key.
// Because scores are independent per replica, removing one reassigns
// only the keys it owned (~1/N of them, to their second-highest
// scorer) and adding it back reclaims exactly those — minimal
// disruption with no coordination or resharding step.
type rendezvous struct{ fallback *leastInflight }

func (p *rendezvous) Name() string { return RoutingRendezvous }

func (p *rendezvous) Pick(key string, candidates []*replica) *replica {
	if key == "" {
		return p.fallback.Pick(key, candidates)
	}
	best := candidates[0]
	bestScore := hrwScore(key, best.id)
	for _, rep := range candidates[1:] {
		if s := hrwScore(key, rep.id); s > bestScore {
			best, bestScore = rep, s
		}
	}
	return best
}

// hrwScore is the rendezvous weight of a (key, replica) pair: FNV-1a
// over the key and the replica id with a separator so concatenation
// ambiguities cannot alias pairs.
func hrwScore(key, id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(id))
	return h.Sum64()
}

// pick chooses the replica for the next attempt, excluding those in
// tried. Candidates are taken from the best non-empty tier:
//
//  1. available — probe-healthy and not ejected
//  2. not ejected — probes say down, but ejection hasn't confirmed it;
//     better a suspect replica than a certain failure
//  3. anything untried — last resort while the budget still allows
//
// Within the tier the configured RoutingPolicy decides: least-inflight
// with seeded-LCG tie-breaks by default, or rendezvous hashing on key.
// Returns nil only when every replica has been tried.
func (g *Gateway) pick(key string, tried map[*replica]bool) *replica {
	now := time.Now()
	var tiers [3][]*replica
	for _, rep := range g.replicas {
		if tried[rep] {
			continue
		}
		switch {
		case rep.available(now):
			tiers[0] = append(tiers[0], rep)
		case !rep.ejected(now):
			tiers[1] = append(tiers[1], rep)
		default:
			tiers[2] = append(tiers[2], rep)
		}
	}
	for _, tier := range tiers {
		if len(tier) > 0 {
			return g.routing.Pick(key, tier)
		}
	}
	return nil
}
