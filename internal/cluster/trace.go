package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"ballarus/internal/obs"
)

// handleDebugTraces serves the gateway's own trace ring and archive
// with the same query contract as blserve's /debug/traces: ?id= exact
// match, ?slowest=N, or ?last=N (clamped to the ring capacity).
func (g *Gateway) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	traces, err := obs.QueryTraces(g.tracer, g.archive, q.Get("id"), q.Get("last"), q.Get("slowest"))
	if err != nil {
		gatewayError(w, http.StatusBadRequest, "invalid_input", err)
		return
	}
	if traces == nil {
		traces = []*obs.Trace{}
	}
	writeJSON(w, http.StatusOK, traces)
}

// traceSummary is one row of the GET /v1/trace/slowest body.
type traceSummary struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	Source   string `json:"source,omitempty"`
	Duration int64  `json:"duration_ns"`
	Error    string `json:"error,omitempty"`
	Hedged   bool   `json:"hedged,omitempty"`
	Spans    int    `json:"spans"`
}

// handleTraceSlowest lists the worst archived gateway traces by
// duration (?n=, default 5) — the entry point for "what should I look
// at": each row's ID feeds GET /v1/trace/{id}.
func (g *Gateway) handleTraceSlowest(w http.ResponseWriter, r *http.Request) {
	n := 5
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			gatewayError(w, http.StatusBadRequest, "invalid_input", fmt.Errorf("invalid n parameter %q", s))
			return
		}
		n = v
	}
	traces := g.archive.Slowest(n)
	out := make([]traceSummary, 0, len(traces))
	for _, tr := range traces {
		out = append(out, traceSummary{
			ID:       tr.ID,
			Name:     tr.Name,
			Source:   tr.Source,
			Duration: int64(tr.Duration),
			Error:    tr.Err,
			Hedged:   tr.Attrs["hedged"] == "true",
			Spans:    len(tr.Spans),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": out})
}

// handleTraceGet assembles the full cross-process picture of one trace:
// the gateway's own collections plus a fan-out to every replica's
// /debug/traces?id=, merged into a single parent-linked tree.
func (g *Gateway) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !isTraceID(id) {
		gatewayError(w, http.StatusBadRequest, "invalid_input", fmt.Errorf("invalid trace id %q", id))
		return
	}

	var mu sync.Mutex
	var collected []obs.SourcedTrace
	add := func(source string, traces []*obs.Trace) {
		mu.Lock()
		defer mu.Unlock()
		for _, tr := range traces {
			collected = append(collected, obs.SourcedTrace{Source: source, Trace: tr})
		}
	}
	add("gateway", g.tracer.Find(id))
	add("gateway", g.archive.Find(id))

	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.ProbeTimeout*4)
	defer cancel()
	var wg sync.WaitGroup
	for _, rep := range g.replicas {
		rep := rep
		wg.Add(1)
		go func() {
			defer wg.Done()
			add(rep.id, g.fetchReplicaTraces(ctx, rep, id))
		}()
	}
	wg.Wait()

	assembled := obs.Assemble(id, collected)
	if assembled.Spans == 0 {
		gatewayError(w, http.StatusNotFound, "not_found",
			fmt.Errorf("trace %s not found on the gateway or any replica", id))
		return
	}
	writeJSON(w, http.StatusOK, assembled)
}

// fetchReplicaTraces pulls one replica's collections for a trace ID.
// Replicas that are down or answer garbage contribute nothing — an
// assembled trace with a missing hop is still more useful than a 502.
func (g *Gateway) fetchReplicaTraces(ctx context.Context, rep *replica, id string) []*obs.Trace {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		rep.base.String()+"/debug/traces?id="+id, nil)
	if err != nil {
		return nil
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, g.cfg.MaxBody))
	if err != nil {
		return nil
	}
	var out []*obs.Trace
	if json.Unmarshal(body, &out) != nil {
		return nil
	}
	return out
}

// isTraceID reports whether s looks like a 16-hex trace ID.
func isTraceID(s string) bool {
	if len(s) != 16 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
