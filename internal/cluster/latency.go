package cluster

import (
	"sort"
	"sync"
	"time"
)

// latencySamples is the ring size backing the hedge-delay quantile: big
// enough to smooth bursts, small enough to track a shifting baseline.
const latencySamples = 256

// latencyMinData is how many observations the tracker wants before it
// trusts its quantile over the configured initial delay.
const latencyMinData = 16

// latencyTracker estimates the hedge delay from recent successful
// request latencies: hedging at the p90 (by default) means ~10% of
// requests hedge — the slow tail — which is exactly the population
// hedging helps.
type latencyTracker struct {
	quantile float64
	initial  time.Duration
	min      time.Duration

	mu      sync.Mutex
	samples [latencySamples]time.Duration
	next    int
	count   int
}

func newLatencyTracker(quantile float64, initial, min time.Duration) *latencyTracker {
	return &latencyTracker{quantile: quantile, initial: initial, min: min}
}

// observe records one successful attempt's latency.
func (t *latencyTracker) observe(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.samples[t.next] = d
	t.next = (t.next + 1) % latencySamples
	if t.count < latencySamples {
		t.count++
	}
}

// delay returns how long to wait before firing a hedge: the tracked
// quantile of recent latencies, clamped from below by min, or the
// configured initial delay while data is thin.
func (t *latencyTracker) delay() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count < latencyMinData {
		return t.initial
	}
	sorted := make([]time.Duration, t.count)
	copy(sorted, t.samples[:t.count])
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(float64(t.count) * t.quantile)
	if idx >= t.count {
		idx = t.count - 1
	}
	d := sorted[idx]
	if d < t.min {
		d = t.min
	}
	return d
}
