package cluster

import (
	"encoding/json"
	"net/http"
	"testing"
)

// TestGatewayProxiesShard: /v1/shard rides the same idempotent-POST
// path as predict and compare, so a job coordinator can point its
// executor at the gateway and inherit the resilience treatment.
func TestGatewayProxiesShard(t *testing.T) {
	a := newFakeReplica(t, "a")
	b := newFakeReplica(t, "b")
	_, ts := newTestGateway(t, Config{}, a, b)

	resp, data := postPath(t, ts.URL, "/v1/shard", `{"job_hash":"fake","lo":0,"hi":1}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (body %s)", resp.StatusCode, data)
	}
	var out map[string]any
	if err := json.Unmarshal(data, &out); err != nil || out["job_hash"] != "fake" {
		t.Fatalf("body %s not relayed (err %v)", data, err)
	}
	if a.shdHits.Load()+b.shdHits.Load() == 0 {
		t.Fatal("no replica saw the shard request")
	}
	if a.hits.Load()+b.hits.Load()+a.cmpHits.Load()+b.cmpHits.Load() != 0 {
		t.Fatal("shard request leaked onto /v1/predict or /v1/compare")
	}
}

// TestGatewayRetriesShardPastDeadReplica: a replica dying mid-job must
// cost the coordinator nothing — the gateway retries the shard on a
// surviving replica. This is the property the jobs chaos drill leans
// on when it kills a replica.
func TestGatewayRetriesShardPastDeadReplica(t *testing.T) {
	bad := newFakeReplica(t, "bad")
	good := newFakeReplica(t, "good")
	bad.shard.Store(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "killed", http.StatusInternalServerError)
	})
	_, ts := newTestGateway(t, Config{MaxAttempts: 3, RetryRatio: 1, RetryBurst: 10}, bad, good)

	for i := 0; i < 4; i++ {
		resp, data := postPath(t, ts.URL, "/v1/shard", `{"job_hash":"fake","lo":0,"hi":1}`, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("attempt %d: status = %d (body %s)", i, resp.StatusCode, data)
		}
		if id := resp.Header.Get("X-Instance-Id"); id != "good" {
			t.Fatalf("attempt %d answered by %q, want good", i, id)
		}
	}
}
