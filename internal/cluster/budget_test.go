package cluster

import "testing"

func TestBudgetArithmetic(t *testing.T) {
	b := newBudget(0.5, 2)
	// Starts full: two takes succeed, the third fails.
	if !b.take() || !b.take() {
		t.Fatal("full bucket refused a token")
	}
	if b.take() {
		t.Fatal("empty bucket granted a token")
	}
	// Two primaries bank one whole token.
	b.deposit()
	if b.take() {
		t.Fatal("half a token granted")
	}
	b.deposit()
	if !b.take() {
		t.Fatal("banked token refused")
	}
	// Deposits cap at burst.
	for i := 0; i < 100; i++ {
		b.deposit()
	}
	if got := b.level(); got != 2 {
		t.Fatalf("level = %v, want burst cap 2", got)
	}
}

// TestBudgetBoundsAmplification is the invariant the bucket exists
// for: however failures interleave, granted retries never exceed
// ratio × primaries + burst.
func TestBudgetBoundsAmplification(t *testing.T) {
	const (
		ratio     = 0.2
		burst     = 5
		primaries = 1000
	)
	b := newBudget(ratio, burst)
	granted := 0
	for i := 0; i < primaries; i++ {
		b.deposit()
		// A pathological client retries as hard as it can after every
		// primary.
		for b.take() {
			granted++
		}
	}
	if limit := int(ratio*primaries) + burst; granted > limit {
		t.Fatalf("granted %d retries, budget limit %d", granted, limit)
	}
}
