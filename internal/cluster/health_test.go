package cluster

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestReplicaRiseFall(t *testing.T) {
	rep, err := newReplica("r", "http://127.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	if !rep.available(now) {
		t.Fatal("replica should start available")
	}
	// One failure is noise; the second crosses fall=2.
	if _, changed := rep.probeResult(false, 2, 2); changed {
		t.Fatal("single failed probe flipped state")
	}
	if healthy, changed := rep.probeResult(false, 2, 2); healthy || !changed {
		t.Fatal("fall threshold did not mark replica down")
	}
	// A pass resets the fall run but needs rise=2 passes to recover.
	if _, changed := rep.probeResult(true, 2, 2); changed {
		t.Fatal("single passing probe flipped state")
	}
	if healthy, changed := rep.probeResult(true, 2, 2); !healthy || !changed {
		t.Fatal("rise threshold did not mark replica healthy")
	}
	// An intervening failure resets the rise run.
	rep.probeResult(false, 2, 2)
	rep.probeResult(false, 2, 2) // down again
	rep.probeResult(true, 2, 2)
	rep.probeResult(false, 2, 2) // breaks the rise run
	if healthy, _ := rep.probeResult(true, 2, 2); healthy {
		t.Fatal("rise run survived an intervening failure")
	}
}

func TestReplicaEjectionCooloff(t *testing.T) {
	rep, err := newReplica("r", "http://127.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	base, max := time.Second, 4*time.Second

	rep.noteFailure(now, 3, base, max)
	rep.noteFailure(now, 3, base, max)
	if rep.ejected(now) {
		t.Fatal("ejected before the threshold")
	}
	if cool := rep.noteFailure(now, 3, base, max); cool != base {
		t.Fatalf("first cool-off = %v, want %v", cool, base)
	}
	if !rep.ejected(now) || rep.available(now) {
		t.Fatal("not ejected after threshold")
	}
	if !rep.ejected(now.Add(base-time.Millisecond)) || rep.ejected(now.Add(base)) {
		t.Fatal("cool-off window wrong")
	}

	// Repeat ejections back off exponentially, capped at max.
	later := now.Add(10 * time.Second)
	for i := 0; i < 3; i++ {
		rep.noteFailure(later, 3, base, max)
	}
	var cool time.Duration
	for i := 0; i < 3; i++ {
		cool = rep.noteFailure(later, 1, base, max)
	}
	if cool != max {
		t.Fatalf("repeat cool-off = %v, want capped at %v", cool, max)
	}

	// Success ends an ejection early and resets the failure run.
	rep.noteSuccess(later)
	if rep.ejected(later.Add(time.Millisecond)) {
		t.Fatal("success did not clear the ejection")
	}
}

func TestPickPrefersAvailableAndExcludesTried(t *testing.T) {
	a := newFakeReplica(t, "a")
	b := newFakeReplica(t, "b")
	g, _ := newTestGateway(t, Config{}, a, b)
	repA, repB := g.replicas[0], g.replicas[1]

	// Eject A: picks must all land on B.
	repA.noteFailure(time.Now(), 1, time.Minute, time.Minute)
	for i := 0; i < 4; i++ {
		if got := g.pick("", nil); got != repB {
			t.Fatalf("pick chose %s, want the non-ejected replica", got.id)
		}
	}
	// With B tried, the ejected A is still better than nothing.
	if got := g.pick("", map[*replica]bool{repB: true}); got != repA {
		t.Fatal("pick refused the last-resort replica")
	}
	// Everything tried: nil.
	if got := g.pick("", map[*replica]bool{repA: true, repB: true}); got != nil {
		t.Fatalf("pick = %v with all replicas tried, want nil", got)
	}
}

// TestActiveProbing: a replica whose /healthz starts failing is
// probed out of rotation, and probed back in when it recovers.
func TestActiveProbing(t *testing.T) {
	a := newFakeReplica(t, "a")
	b := newFakeReplica(t, "b")
	g, ts := newTestGateway(t, Config{
		ProbeEvery:   20 * time.Millisecond,
		ProbeTimeout: 200 * time.Millisecond,
		Rise:         1,
		Fall:         2,
	}, a, b)

	waitHealthy := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for g.healthyCount() != want {
			if time.Now().After(deadline) {
				t.Fatalf("healthyCount stuck at %d, want %d", g.healthyCount(), want)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	waitHealthy(2)
	a.healthy.Store(false)
	waitHealthy(1)

	// Traffic avoids the probed-down replica.
	before := a.hits.Load()
	for i := 0; i < 4; i++ {
		resp, data := postBody(t, ts.URL, fmt.Sprintf(`{"source":"r%d"}`, i), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status = %d (body %s)", i, resp.StatusCode, data)
		}
	}
	if after := a.hits.Load(); after != before {
		t.Fatalf("probed-down replica got traffic: %d → %d", before, after)
	}

	a.healthy.Store(true)
	waitHealthy(2)
}

func TestStaleStore(t *testing.T) {
	s := newStaleStore(2)
	k1 := canonicalKey([]byte(`{"a":1,"b":2}`))
	k2 := canonicalKey([]byte(`{"b":2,"a":1}`))
	if k1 == "" || k1 != k2 {
		t.Fatalf("canonical keys differ across field order: %q vs %q", k1, k2)
	}
	if canonicalKey([]byte(`not json`)) != "" {
		t.Fatal("non-JSON body produced a key")
	}

	s.put(k1, []byte(`{"name":"x","degraded":false}`))
	got, ok := s.get(k1)
	if !ok {
		t.Fatal("miss on stored key")
	}
	if !strings.Contains(string(got), `"degraded":true`) {
		t.Fatalf("stored body not degraded: %s", got)
	}

	// LRU eviction at capacity 2: touching k1 keeps it, k3 evicts k2.
	k3 := canonicalKey([]byte(`{"c":3}`))
	kOld := canonicalKey([]byte(`{"old":1}`))
	s.put(kOld, []byte(`{}`))
	s.get(k1)
	s.put(k3, []byte(`{}`))
	if _, ok := s.get(kOld); ok {
		t.Fatal("LRU did not evict the cold entry")
	}
	if _, ok := s.get(k1); !ok {
		t.Fatal("LRU evicted the recently used entry")
	}
}
