package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"
)

func TestGatewayProxiesCompare(t *testing.T) {
	a := newFakeReplica(t, "a")
	b := newFakeReplica(t, "b")
	_, ts := newTestGateway(t, Config{}, a, b)

	resp, data := postPath(t, ts.URL, "/v1/compare", `{"source":"x"}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (body %s)", resp.StatusCode, data)
	}
	var out map[string]any
	if err := json.Unmarshal(data, &out); err != nil || out["name"] != "fake-compare" {
		t.Fatalf("body %s not relayed (err %v)", data, err)
	}
	if a.cmpHits.Load()+b.cmpHits.Load() == 0 {
		t.Fatal("no replica saw the compare request")
	}
	if a.hits.Load()+b.hits.Load() != 0 {
		t.Fatal("compare request leaked onto /v1/predict")
	}
}

// TestGatewayHedgesCompare: /v1/compare is an idempotent route, so a
// stalled primary must be hedged exactly like /v1/predict.
func TestGatewayHedgesCompare(t *testing.T) {
	const stall = 3 * time.Second
	slowRep := newFakeReplica(t, "slow")
	fastRep := newFakeReplica(t, "fast")
	slowRep.compare.Store(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			return
		case <-time.After(stall):
		}
		okCompare("slow")(w, r)
	})
	g, ts := newTestGateway(t, Config{
		MaxAttempts:  2,
		HedgeInitial: 30 * time.Millisecond,
		HedgeMin:     10 * time.Millisecond,
		RetryRatio:   1,
		RetryBurst:   100,
	}, slowRep, fastRep)

	start := time.Now()
	const n = 8
	for i := 0; i < n; i++ {
		resp, data := postPath(t, ts.URL, "/v1/compare", fmt.Sprintf(`{"source":"req%d"}`, i), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status = %d (body %s)", i, resp.StatusCode, data)
		}
		if id := resp.Header.Get("X-Instance-Id"); id != "fast" {
			t.Fatalf("request %d answered by %q, want fast (hedge should win)", i, id)
		}
	}
	if elapsed := time.Since(start); elapsed > n*stall/2 {
		t.Fatalf("%d compares took %v; hedging is not cutting the stall tail", n, elapsed)
	}
	if g.metrics.hedgeFires.Value() == 0 || g.metrics.hedgeWins.Value() == 0 {
		t.Fatalf("hedge fires/wins = %d/%d, want both nonzero",
			g.metrics.hedgeFires.Value(), g.metrics.hedgeWins.Value())
	}
}

// TestGatewayStaleKeysScopedByRoute: the same JSON body posted to
// /v1/predict and /v1/compare must hold two separate brownout entries —
// a dead fleet serves each route its own last-known-good answer.
func TestGatewayStaleKeysScopedByRoute(t *testing.T) {
	a := newFakeReplica(t, "a")
	g, ts := newTestGateway(t, Config{MaxAttempts: 1}, a)

	const body = `{"source":"same"}`
	if resp, data := postBody(t, ts.URL, body, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict prime status = %d (body %s)", resp.StatusCode, data)
	}
	if resp, data := postPath(t, ts.URL, "/v1/compare", body, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("compare prime status = %d (body %s)", resp.StatusCode, data)
	}
	if got := g.stale.len(); got != 2 {
		t.Fatalf("stale entries = %d, want 2 (one per route)", got)
	}

	fail := func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}
	a.predict.Store(fail)
	a.compare.Store(fail)

	for path, wantName := range map[string]string{
		"/v1/predict": "fake",
		"/v1/compare": "fake-compare",
	} {
		resp, data := postPath(t, ts.URL, path, body, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s brownout status = %d (body %s)", path, resp.StatusCode, data)
		}
		var out map[string]any
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		if out["name"] != wantName || out["degraded"] != true {
			t.Fatalf("%s stale body = %s, want degraded %q answer", path, data, wantName)
		}
	}
}

func TestStaleKeyRouteScoped(t *testing.T) {
	body := []byte(`{"a":1}`)
	kp := staleKey("/v1/predict", body)
	kc := staleKey("/v1/compare", body)
	if kp == "" || kc == "" || kp == kc {
		t.Fatalf("staleKey collides across routes: %q vs %q", kp, kc)
	}
	if staleKey("/v1/predict", []byte("not json")) != "" {
		t.Fatal("non-JSON body should produce an empty key")
	}
}
