package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ballarus/internal/obs"
)

// upstream is one attempt's outcome: either a transport error or a
// relayable response.
type upstream struct {
	status int
	header http.Header
	body   []byte
	err    error
	rep    *replica
	kind   string
}

// ok reports whether this outcome ends the request. 5xx and
// global-overload 429s are retryable (another replica may be healthy
// or have capacity); other 4xx are the client's problem on every
// replica, so they pass through. Per-tenant quota 429s — marked by
// blserve with X-RateLimit-Limit — are terminal too: every replica
// enforces the same quota, the rejection is deterministic for the
// tenant, and retrying or hedging it only amplifies the overage.
func (u upstream) ok() bool {
	if u.err != nil {
		return false
	}
	if u.status == http.StatusTooManyRequests {
		return u.quota()
	}
	return u.status < 500
}

// quota reports whether this outcome is a per-tenant quota rejection.
func (u upstream) quota() bool {
	return u.status == http.StatusTooManyRequests && u.header.Get("X-RateLimit-Limit") != ""
}

// Handler returns the gateway's HTTP API:
//
//	POST /v1/predict     hedged, budgeted, deadline-bounded proxying
//	POST /v1/compare     same treatment — the tournament is idempotent
//	POST /v1/shard       same treatment — shards are idempotent by job
//	                     hash and range, so a job coordinator can point
//	                     its executor here and inherit hedging
//	GET  /v1/stats       passthrough to one routable replica
//	GET  /v1/trace/{id}  assembled cross-process trace (gateway + replicas)
//	GET  /v1/trace/slowest  worst archived traces by duration
//	GET  /debug/traces   the gateway's own trace ring/archive
//	GET  /healthz        gateway health: 200 while ≥1 replica routable
//	GET  /gateway/stats  cluster state: per-replica health, budget, cache
//	GET  /metrics        Prometheus exposition of the gateway metrics
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", g.handleProxy)
	mux.HandleFunc("POST /v1/compare", g.handleProxy)
	mux.HandleFunc("POST /v1/batch", g.handleProxy)
	mux.HandleFunc("POST /v1/shard", g.handleProxy)
	mux.HandleFunc("GET /v1/stats", g.handlePassthrough)
	mux.HandleFunc("GET /v1/trace/slowest", g.handleTraceSlowest)
	mux.HandleFunc("GET /v1/trace/{id}", g.handleTraceGet)
	mux.HandleFunc("GET /debug/traces", g.handleDebugTraces)
	mux.HandleFunc("GET /healthz", g.handleHealth)
	mux.HandleFunc("GET /gateway/stats", g.handleStats)
	mux.HandleFunc("GET /metrics", g.metrics.handleMetrics)
	return mux
}

// handleProxy serves every idempotent POST route with the full
// resilience treatment: hedged attempts, retry budget, deadline
// propagation, and the brownout stale cache. The mux guarantees
// r.URL.Path is one of the registered routes, which the replicas all
// serve.
func (g *Gateway) handleProxy(w http.ResponseWriter, r *http.Request) {
	rctx := r.Context()
	if sc, ok := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader)); ok {
		rctx = obs.ContextWithRemote(rctx, sc)
	}
	rctx, act := g.tracer.Start(rctx, r.URL.Path)
	w.Header().Set("X-Trace-Id", act.ID())
	outcome := func(class string, err error) {
		g.metrics.requests[class].Inc()
		act.Attr("outcome", class)
		act.End(err)
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBody))
	if err != nil {
		outcome("client_error", err)
		gatewayError(w, http.StatusBadRequest, "invalid_input", fmt.Errorf("bad request body: %w", err))
		return
	}
	timeout := g.cfg.Timeout
	if h := r.Header.Get("X-Deadline-Ms"); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms <= 0 {
			outcome("client_error", err)
			gatewayError(w, http.StatusBadRequest, "invalid_input",
				fmt.Errorf("bad X-Deadline-Ms %q: want a positive integer", h))
			return
		}
		timeout = time.Duration(ms) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(rctx, timeout)
	defer cancel()

	traceID := r.Header.Get("X-Trace-Id")
	if traceID == "" {
		traceID = act.ID()
	}
	// The canonical content key doubles as the brownout cache key and
	// the rendezvous routing key: it is the gateway-side analogue of
	// Service.RequestKey, so equivalent request bodies land on (and
	// warm) the same replica.
	key := staleKey(r.URL.Path, body)
	res := g.do(ctx, proxyReq{
		path:    r.URL.Path,
		body:    body,
		traceID: traceID,
		tenant:  r.Header.Get("X-Tenant-Id"),
		key:     key,
	})
	if res.ok() {
		switch {
		case res.status == http.StatusOK:
			g.stale.put(key, res.body)
			outcome("ok", nil)
		case res.quota():
			// A quota 429 passes through verbatim — Retry-After and the
			// X-RateLimit-* headers are the tenant's backoff contract —
			// and is never masked by a stale brownout answer.
			outcome("quota", nil)
		default:
			outcome("client_error", nil)
		}
		relay(w, res)
		return
	}

	// Brownout: every option is exhausted, but a stale answer for the
	// identical request beats an error the client has to handle.
	if stale, hit := g.stale.get(key); hit {
		g.metrics.staleServed.Inc()
		outcome("degraded", res.err)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(stale)
		return
	}

	w.Header().Set("Retry-After", "1")
	switch {
	case res.err != nil && errors.Is(ctx.Err(), context.DeadlineExceeded):
		outcome("timeout", fmt.Errorf("deadline expired before any replica answered"))
		gatewayError(w, http.StatusGatewayTimeout, "timeout",
			fmt.Errorf("deadline expired before any replica answered"))
	case res.err != nil:
		outcome("upstream_error", res.err)
		gatewayError(w, http.StatusBadGateway, "upstream_error",
			fmt.Errorf("no replica produced a response: %w", res.err))
	case res.status == http.StatusTooManyRequests || res.status == http.StatusServiceUnavailable:
		outcome("no_capacity", fmt.Errorf("replica %s: status %d", res.rep.id, res.status))
		relayError(w, res, "overload")
	default:
		outcome("upstream_error", fmt.Errorf("replica %s: status %d", res.rep.id, res.status))
		relayError(w, res, "upstream_error")
	}
}

// proxyReq bundles what one proxied request carries upstream: the
// route, the body, the propagated trace and tenant identities, and the
// canonical content key the routing policy shards on.
type proxyReq struct {
	path    string
	body    []byte
	traceID string
	tenant  string
	key     string
}

// do runs the hedged attempt loop: a primary immediately, one hedge
// after the latency-quantile delay, and budgeted retries as failures
// come back, all bounded by MaxAttempts and ctx. The first ok outcome
// wins; every other attempt is canceled through its context when do
// returns.
func (g *Gateway) do(ctx context.Context, pr proxyReq) upstream {
	results := make(chan upstream, g.cfg.MaxAttempts)
	tried := map[*replica]bool{}
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	launched, outstanding := 0, 0
	// drain cancels the losers and waits for their attempt goroutines
	// to finish. Each attempt closes its span before sending its
	// result, so after drain the request trace holds every attempt —
	// including losers with status "canceled" — before the handler ends
	// it. Canceled attempts unwind immediately (the transport aborts),
	// so this does not hold the winning response back.
	drain := func() {
		for _, c := range cancels {
			c()
		}
		for outstanding > 0 {
			<-results
			outstanding--
		}
	}
	launch := func(kind string) bool {
		if launched >= g.cfg.MaxAttempts {
			return false
		}
		rep := g.pick(pr.key, tried)
		if rep == nil {
			return false
		}
		if kind != attemptPrimary && !g.budget.take() {
			g.metrics.retryDenied.Inc()
			return false
		}
		if kind == attemptPrimary {
			g.budget.deposit()
		}
		tried[rep] = true
		launched++
		outstanding++
		g.metrics.attempts[kind].Inc()
		if kind == attemptHedge {
			g.metrics.hedgeFires.Inc()
			obs.ActiveFrom(ctx).Attr("hedged", "true")
		}
		actx, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		sp := obs.StartSpan(ctx, "attempt."+kind).Attr("replica", rep.id)
		go g.attempt(actx, rep, kind, sp, pr, results)
		return true
	}

	launch(attemptPrimary) // a primary needs no token and pick never fails on the first try
	hedge := time.NewTimer(g.latency.delay())
	defer hedge.Stop()
	hedged := false

	last := upstream{err: fmt.Errorf("no attempt completed")}
	for {
		select {
		case <-ctx.Done():
			drain()
			return upstream{err: ctx.Err()}
		case <-hedge.C:
			if !hedged && outstanding > 0 {
				hedged = true
				launch(attemptHedge)
			}
		case res := <-results:
			outstanding--
			if res.ok() {
				if res.kind == attemptHedge {
					g.metrics.hedgeWins.Inc()
				}
				drain()
				return res
			}
			last = res
			if launch(attemptRetry) {
				continue
			}
			if outstanding == 0 {
				return last
			}
		}
	}
}

// attempt proxies one upstream try. The buffered results channel means
// an abandoned attempt's send never blocks, so losers exit as soon as
// their canceled request unwinds. sp is the attempt's span: its span ID
// rides the outgoing Traceparent header so the replica's trace parents
// here, and a loser canceled through ctx closes it with status
// "canceled" rather than "error".
func (g *Gateway) attempt(ctx context.Context, rep *replica, kind string, sp *obs.Span, pr proxyReq, results chan<- upstream) {
	rep.inflight.Add(1)
	defer rep.inflight.Add(-1)
	start := time.Now()

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.base.String()+pr.path, bytes.NewReader(pr.body))
	if err != nil {
		sp.End(err)
		results <- upstream{err: err, rep: rep, kind: kind}
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if sc := sp.SpanContext(); sc.Valid() {
		req.Header.Set(obs.TraceHeader, sc.Header())
	}
	req.Header.Set("X-Attempt-Kind", kind)
	if pr.traceID != "" {
		req.Header.Set("X-Trace-Id", pr.traceID)
	}
	if pr.tenant != "" {
		req.Header.Set("X-Tenant-Id", pr.tenant)
	}
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.Header.Set("X-Deadline-Ms", strconv.FormatInt(ms, 10))
	}

	resp, err := g.client.Do(req)
	if err != nil {
		// Only failures the gateway did not cause itself count toward
		// ejection: a canceled hedge loser says nothing about replica
		// health.
		if cerr := ctx.Err(); cerr != nil {
			sp.End(cerr)
		} else {
			g.noteFailure(rep)
			sp.End(err)
		}
		results <- upstream{err: err, rep: rep, kind: kind}
		return
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, g.cfg.MaxBody))
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			sp.End(cerr)
		} else {
			g.noteFailure(rep)
			sp.End(err)
		}
		results <- upstream{err: fmt.Errorf("reading %s response: %w", rep.id, err), rep: rep, kind: kind}
		return
	}
	sp.Attr("status", strconv.Itoa(resp.StatusCode))
	switch {
	case resp.StatusCode >= 500:
		g.noteFailure(rep)
		sp.End(fmt.Errorf("replica %s: status %d", rep.id, resp.StatusCode))
	case resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("X-RateLimit-Limit") == "":
		// Global shedding is the replica protecting itself, not an
		// outlier signal: neither a failure (no ejection) nor a success
		// (no breaking of a real failure run).
		g.metrics.replicaErr[rep.id].Inc()
		sp.End(nil)
	default:
		// 2xx/4xx — including per-tenant quota 429s, which are a
		// healthy replica enforcing policy.
		g.noteSuccess(rep, time.Since(start), pr.traceID)
		sp.End(nil)
	}
	results <- upstream{status: resp.StatusCode, header: resp.Header, body: b, rep: rep, kind: kind}
}

// noteSuccess records a successful attempt for routing, ejection, and
// metrics; traceID becomes the latency bucket's exemplar.
func (g *Gateway) noteSuccess(rep *replica, d time.Duration, traceID string) {
	rep.noteSuccess(time.Now())
	g.latency.observe(d)
	g.metrics.replicaOK[rep.id].Inc()
	g.metrics.replicaLatency[rep.id].ObserveDurationExemplar(d, traceID)
}

// noteFailure records a failed attempt and logs any resulting
// ejection.
func (g *Gateway) noteFailure(rep *replica) {
	g.metrics.replicaErr[rep.id].Inc()
	cool := rep.noteFailure(time.Now(), g.cfg.EjectAfter, g.cfg.EjectBase, g.cfg.EjectMax)
	if cool > 0 {
		g.metrics.ejections.Inc()
		g.cfg.Logger.Warn("replica ejected",
			slog.String("replica", rep.id),
			slog.String("url", rep.base.String()),
			slog.Duration("cooloff", cool))
	}
}

// relay writes an upstream response through to the client, preserving
// the headers clients key on.
func relay(w http.ResponseWriter, res upstream) {
	for _, h := range []string{
		"Content-Type", "X-Instance-Id", "X-Trace-Id", "Retry-After",
		"X-RateLimit-Limit", "X-RateLimit-Remaining", "X-RateLimit-Reset",
	} {
		if v := res.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	if w.Header().Get("Content-Type") == "" {
		w.Header().Set("Content-Type", "application/json")
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// relayError passes a replica's terminal error response through.
// Replicas speak the JSON error schema; anything else (a proxy in the
// middle, a fake in tests) is wrapped so clients always see one shape.
func relayError(w http.ResponseWriter, res upstream, code string) {
	if strings.Contains(res.header.Get("Content-Type"), "application/json") {
		relay(w, res)
		return
	}
	gatewayError(w, res.status, code,
		fmt.Errorf("replica %s: %s", res.rep.id, strings.TrimSpace(string(res.body))))
}

// handlePassthrough proxies a read-only endpoint to one routable
// replica.
func (g *Gateway) handlePassthrough(w http.ResponseWriter, r *http.Request) {
	rep := g.pick("", nil)
	if rep == nil {
		gatewayError(w, http.StatusServiceUnavailable, "no_replicas", fmt.Errorf("no replicas configured"))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.ProbeTimeout*4)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.base.String()+r.URL.Path, nil)
	if err != nil {
		gatewayError(w, http.StatusInternalServerError, "internal", err)
		return
	}
	resp, err := g.client.Do(req)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		gatewayError(w, http.StatusBadGateway, "upstream_error", err)
		return
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(io.LimitReader(resp.Body, g.cfg.MaxBody))
	relay(w, upstream{status: resp.StatusCode, header: resp.Header, body: b})
}

func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	n := g.healthyCount()
	status := http.StatusOK
	if n == 0 {
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]any{"status": map[bool]string{true: "ok", false: "degraded"}[n > 0], "healthy_replicas": n})
}

// gatewayStats is the GET /gateway/stats body.
type gatewayStats struct {
	Routing         string         `json:"routing"`
	Replicas        []replicaStats `json:"replicas"`
	HealthyReplicas int            `json:"healthy_replicas"`
	BudgetTokens    float64        `json:"retry_budget_tokens"`
	HedgeFires      int64          `json:"hedge_fires"`
	HedgeWins       int64          `json:"hedge_wins"`
	StaleServed     int64          `json:"stale_served"`
	StaleEntries    int            `json:"stale_entries"`
}

// Stats snapshots the cluster state.
func (g *Gateway) Stats() gatewayStats {
	now := time.Now()
	st := gatewayStats{
		Routing:         g.routing.Name(),
		HealthyReplicas: g.healthyCount(),
		BudgetTokens:    g.budget.level(),
		HedgeFires:      g.metrics.hedgeFires.Value(),
		HedgeWins:       g.metrics.hedgeWins.Value(),
		StaleServed:     g.metrics.staleServed.Value(),
		StaleEntries:    g.stale.len(),
	}
	for _, rep := range g.replicas {
		st.Replicas = append(st.Replicas, rep.stats(now))
	}
	return st
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.Stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// gatewayError mirrors blserve's error body shape, so clients see one
// error schema whether the gateway or a replica answered.
func gatewayError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error(), "code": code})
}
