package cluster

import "sync"

// budget is the retry token bucket: every primary attempt deposits
// ratio tokens (capped at burst), and every retry or hedge must take a
// whole token first. Steady-state, retries+hedges therefore cannot
// exceed ratio × primary traffic — the amplification bound that keeps
// a brown-out from becoming a retry storm.
type budget struct {
	mu     sync.Mutex
	tokens float64
	ratio  float64
	burst  float64
}

// newBudget starts with a full bucket so a cold gateway can still
// hedge its very first requests.
func newBudget(ratio, burst float64) *budget {
	return &budget{tokens: burst, ratio: ratio, burst: burst}
}

// deposit credits one primary attempt.
func (b *budget) deposit() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// take spends one token for a retry or hedge; false means the budget
// is exhausted and the extra attempt must not happen.
func (b *budget) take() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// level returns the banked tokens (for the metrics gauge).
func (b *budget) level() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
