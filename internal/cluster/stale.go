package cluster

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sync"
)

// canonicalKey hashes a predict request body insensitively to JSON
// field order and whitespace, so equivalent requests share one
// brownout cache entry. Returns "" for bodies that are not JSON
// objects — those can't succeed upstream either, so caching is moot.
func canonicalKey(body []byte) string {
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		return ""
	}
	canon, err := json.Marshal(m) // map keys marshal sorted
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:])
}

// staleKey namespaces a canonical body hash by route: an identical JSON
// body posted to /v1/predict and /v1/compare names two different
// answers, so the brownout cache must never serve one for the other.
// Preserves canonicalKey's "" pass-through for non-JSON bodies.
func staleKey(path string, body []byte) string {
	k := canonicalKey(body)
	if k == "" {
		return ""
	}
	return path + ":" + k
}

// degradeBody rewrites a successful predict response with
// "degraded":true, so a brownout consumer can tell a stale answer from
// a fresh one. Bodies that fail to parse are returned unchanged.
func degradeBody(body []byte) []byte {
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		return body
	}
	m["degraded"] = true
	out, err := json.Marshal(m)
	if err != nil {
		return body
	}
	return out
}

// staleStore is the gateway's last-known-good response cache: an LRU
// keyed by canonical request hash, holding the degraded form of the
// most recent successful response body. It only ever serves during
// brownout, so entries are stored pre-degraded.
type staleStore struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent
	m   map[string]*list.Element
}

type staleEntry struct {
	key  string
	body []byte
}

func newStaleStore(capacity int) *staleStore {
	return &staleStore{cap: capacity, ll: list.New(), m: map[string]*list.Element{}}
}

// put records a successful response body for key. No-op on empty keys.
func (s *staleStore) put(key string, body []byte) {
	if key == "" {
		return
	}
	degraded := degradeBody(body)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		el.Value.(*staleEntry).body = degraded
		s.ll.MoveToFront(el)
		return
	}
	s.m[key] = s.ll.PushFront(&staleEntry{key: key, body: degraded})
	for s.ll.Len() > s.cap {
		last := s.ll.Back()
		s.ll.Remove(last)
		delete(s.m, last.Value.(*staleEntry).key)
	}
}

// get returns the degraded last-known-good body for key.
func (s *staleStore) get(key string) ([]byte, bool) {
	if key == "" {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*staleEntry).body, true
}

// len reports the entry count (stats).
func (s *staleStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}
