package cluster

import (
	"fmt"
	"net/url"
	"sync"
	"sync/atomic"
	"time"
)

// replica is the gateway's view of one blserve instance: its base URL
// plus the health and ejection state machines. The atomic inflight
// counter feeds least-loaded routing; everything else sits behind mu.
type replica struct {
	id       string
	base     *url.URL
	inflight atomic.Int64

	mu sync.Mutex
	// Active health checking (rise/fall thresholds on /healthz).
	healthy bool
	riseRun int // consecutive probe passes while down
	fallRun int // consecutive probe failures while healthy
	// Passive outlier ejection (consecutive live-traffic failures).
	consecFails  int
	ejectedUntil time.Time
	ejections    int // lifetime count, drives the exponential cool-off
	// Lifetime counters for stats and metrics.
	requests int64
	failures int64
}

func newReplica(id, raw string) (*replica, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return nil, err
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("replica URL %q needs scheme and host", raw)
	}
	// Until the first probe settles, trust the operator's list: a
	// gateway that boots before its replicas answers traffic as soon as
	// they do, and the fall threshold corrects optimism quickly.
	return &replica{id: id, base: u, healthy: true}, nil
}

// available reports whether live traffic should be routed here: marked
// healthy by probes and not passively ejected.
func (r *replica) available(now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.healthy && !now.Before(r.ejectedUntil)
}

// ejected reports whether the replica is inside a passive cool-off.
func (r *replica) ejected(now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return now.Before(r.ejectedUntil)
}

// probeResult feeds one active health-check outcome through the
// rise/fall state machine. It returns the healthy state and whether it
// changed, so the caller can log and count transitions.
func (r *replica) probeResult(ok bool, rise, fall int) (healthy, changed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ok {
		r.fallRun = 0
		if !r.healthy {
			r.riseRun++
			if r.riseRun >= rise {
				r.healthy = true
				r.riseRun = 0
				return true, true
			}
		}
	} else {
		r.riseRun = 0
		if r.healthy {
			r.fallRun++
			if r.fallRun >= fall {
				r.healthy = false
				r.fallRun = 0
				return false, true
			}
		}
	}
	return r.healthy, false
}

// noteSuccess records a successful live request: the consecutive
// failure run breaks and any cool-off ends early (the replica has just
// proven itself).
func (r *replica) noteSuccess(now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.requests++
	r.consecFails = 0
	if now.Before(r.ejectedUntil) {
		r.ejectedUntil = now
	}
}

// noteFailure records a failed live request (5xx or transport error)
// and, at ejectAfter consecutive failures, ejects the replica for an
// exponentially growing cool-off. It returns the cool-off applied, or
// zero when no ejection happened.
func (r *replica) noteFailure(now time.Time, ejectAfter int, base, max time.Duration) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.requests++
	r.failures++
	r.consecFails++
	if r.consecFails < ejectAfter {
		return 0
	}
	r.consecFails = 0
	cool := base << r.ejections
	if cool > max || cool <= 0 { // <= 0 guards shift overflow
		cool = max
	}
	r.ejections++
	r.ejectedUntil = now.Add(cool)
	return cool
}

// replicaStats is one replica's row in the gateway's stats snapshot.
type replicaStats struct {
	ID        string `json:"id"`
	URL       string `json:"url"`
	Healthy   bool   `json:"healthy"`
	Ejected   bool   `json:"ejected"`
	Inflight  int64  `json:"inflight"`
	Requests  int64  `json:"requests"`
	Failures  int64  `json:"failures"`
	Ejections int    `json:"ejections"`
}

func (r *replica) stats(now time.Time) replicaStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return replicaStats{
		ID:        r.id,
		URL:       r.base.String(),
		Healthy:   r.healthy,
		Ejected:   now.Before(r.ejectedUntil),
		Inflight:  r.inflight.Load(),
		Requests:  r.requests,
		Failures:  r.failures,
		Ejections: r.ejections,
	}
}
