package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ballarus/internal/obs"
)

// stallRespectingCancel answers like id after stall, or returns
// immediately when the request context is canceled.
func stallRespectingCancel(id string, stall time.Duration) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			return
		case <-time.After(stall):
		}
		okPredict(id)(w, r)
	}
}

// hedgedTrace runs one request that hedges past a stalled primary and
// returns the gateway's completed trace plus the Traceparent header
// each fake replica saw.
func hedgedTrace(t *testing.T) (g *Gateway, tr *obs.Trace, slowSaw, fastSaw string) {
	t.Helper()
	slowRep := newFakeReplica(t, "slow")
	fastRep := newFakeReplica(t, "fast")
	var slowHeader, fastHeader atomic.Value
	slowHeader.Store("")
	fastHeader.Store("")
	slowRep.predict.Store(func(w http.ResponseWriter, r *http.Request) {
		slowHeader.Store(r.Header.Get(obs.TraceHeader))
		stallRespectingCancel("slow", 3*time.Second)(w, r)
	})
	fastRep.predict.Store(func(w http.ResponseWriter, r *http.Request) {
		fastHeader.Store(r.Header.Get(obs.TraceHeader))
		okPredict("fast")(w, r)
	})
	g, ts := newTestGateway(t, Config{
		MaxAttempts:  2,
		HedgeInitial: 20 * time.Millisecond,
		HedgeMin:     10 * time.Millisecond,
		RetryRatio:   1,
		RetryBurst:   100,
		RoutingSeed:  7,
	}, slowRep, fastRep)

	// The stalled replica may or may not own the content key; try a few
	// bodies until the primary lands on it (the hedge then wins).
	for i := 0; i < 16; i++ {
		resp, data := postBody(t, ts.URL, fmt.Sprintf(`{"source":"hedge-me-%d"}`, i), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d (body %s)", resp.StatusCode, data)
		}
		id := resp.Header.Get("X-Trace-Id")
		if id == "" {
			t.Fatal("response missing X-Trace-Id")
		}
		if resp.Header.Get("X-Instance-Id") != "fast" {
			continue // primary went to the fast replica; no hedge
		}
		traces := g.tracer.Find(id)
		if len(traces) != 1 {
			t.Fatalf("tracer.Find(%s) returned %d traces, want 1", id, len(traces))
		}
		return g, traces[0], slowHeader.Load().(string), fastHeader.Load().(string)
	}
	t.Fatal("primary never landed on the stalled replica in 16 tries")
	return nil, nil, "", ""
}

// TestHedgeLoserSpanCanceled: the losing attempt of a hedged request
// closes with status "canceled" — not "error" — charges no error
// counters, and does not eject the replica it ran on.
func TestHedgeLoserSpanCanceled(t *testing.T) {
	g, tr, _, _ := hedgedTrace(t)

	if tr.Attrs["hedged"] != "true" {
		t.Fatalf("trace not marked hedged: attrs %v", tr.Attrs)
	}
	var primary, hedge *obs.SpanRecord
	for i := range tr.Spans {
		switch tr.Spans[i].Name {
		case "attempt.primary":
			primary = &tr.Spans[i]
		case "attempt.hedge":
			hedge = &tr.Spans[i]
		}
	}
	if primary == nil || hedge == nil {
		t.Fatalf("trace missing attempt spans: %+v", tr.Spans)
	}
	if primary.Status != obs.StatusCanceled {
		t.Fatalf("loser status = %q, want %q (err %q)", primary.Status, obs.StatusCanceled, primary.Err)
	}
	if primary.Attrs["replica"] != "replica0" {
		t.Fatalf("loser ran on %q, want replica0", primary.Attrs["replica"])
	}
	if hedge.Status != "" {
		t.Fatalf("winner status = %q, want ok (err %q)", hedge.Status, hedge.Err)
	}
	if primary.ParentID != tr.SpanID || hedge.ParentID != tr.SpanID {
		t.Fatalf("attempt spans not parented at the request root: primary %q hedge %q root %q",
			primary.ParentID, hedge.ParentID, tr.SpanID)
	}

	// A canceled loser is the gateway's own doing: no error counters,
	// no passive-ejection progress.
	for id, c := range g.metrics.replicaErr {
		if v := c.Value(); v != 0 {
			t.Fatalf("replicaErr[%s] = %d, want 0", id, v)
		}
	}
	if v := g.metrics.ejections.Value(); v != 0 {
		t.Fatalf("ejections = %d, want 0", v)
	}
	for _, rs := range g.Stats().Replicas {
		if rs.Ejected || rs.Failures > 0 {
			t.Fatalf("replica stats show failure progress: %+v", rs)
		}
	}
}

// TestHedgeSpanIDsSurviveProxy: the Traceparent each replica receives
// names the gateway's trace and that attempt's span, so a replica's
// trace parents at the exact attempt that caused it.
func TestHedgeSpanIDsSurviveProxy(t *testing.T) {
	_, tr, slowSaw, fastSaw := hedgedTrace(t)

	spanID := map[string]string{}
	for _, sp := range tr.Spans {
		spanID[sp.Name] = sp.SpanID
	}
	for _, tc := range []struct{ name, header, want string }{
		{"loser", slowSaw, spanID["attempt.primary"]},
		{"winner", fastSaw, spanID["attempt.hedge"]},
	} {
		sc, ok := obs.ParseTraceHeader(tc.header)
		if !ok {
			t.Fatalf("%s replica got unparseable Traceparent %q", tc.name, tc.header)
		}
		if sc.TraceID != tr.ID {
			t.Fatalf("%s Traceparent trace = %s, want %s", tc.name, sc.TraceID, tr.ID)
		}
		if tc.want == "" || sc.SpanID != tc.want {
			t.Fatalf("%s Traceparent span = %s, want attempt span %q", tc.name, sc.SpanID, tc.want)
		}
		if sc.Flags&obs.FlagSampled == 0 {
			t.Fatalf("%s Traceparent flags %02x missing sampled bit", tc.name, sc.Flags)
		}
	}
}

// tracingReplica is a fake blserve that records a child trace for each
// predict request and serves it back on /debug/traces?id=, the way a
// real replica's ring buffer does.
func tracingReplica(t *testing.T, id string) *httptest.Server {
	t.Helper()
	var mu struct {
		s      chan struct{}
		traces []*obs.Trace
	}
	mu.s = make(chan struct{}, 1)
	mu.s <- struct{}{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			w.WriteHeader(http.StatusOK)
		case "/v1/predict":
			sc, _ := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader))
			tr := &obs.Trace{
				ID:       sc.TraceID,
				Name:     "predict",
				SpanID:   "beefbeefbeefbeef",
				ParentID: sc.SpanID,
				Source:   id,
				Start:    time.Now(),
				Duration: 2 * time.Millisecond,
				Spans: []obs.SpanRecord{{
					Name:     "stage.execute",
					SpanID:   "cafecafecafecafe",
					ParentID: "beefbeefbeefbeef",
					Duration: time.Millisecond,
				}},
			}
			<-mu.s
			mu.traces = append(mu.traces, tr)
			mu.s <- struct{}{}
			okPredict(id)(w, r)
		case "/debug/traces":
			want := r.URL.Query().Get("id")
			out := []*obs.Trace{}
			<-mu.s
			for _, tr := range mu.traces {
				if tr.ID == want {
					out = append(out, tr)
				}
			}
			mu.s <- struct{}{}
			writeJSON(w, http.StatusOK, out)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestTraceAssemblyAcrossHops: GET /v1/trace/{id} merges the gateway's
// request trace with the replica-side traces fetched over
// /debug/traces?id= into one parent-linked tree.
func TestTraceAssemblyAcrossHops(t *testing.T) {
	r0 := tracingReplica(t, "rep0")
	g, err := New(Config{
		Replicas:   []string{r0.URL},
		ProbeEvery: -1,
		Logger:     nil,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)

	resp, data := postBody(t, ts.URL, `{"source":"assemble-me"}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (body %s)", resp.StatusCode, data)
	}
	id := resp.Header.Get("X-Trace-Id")

	resp2, err := http.Get(ts.URL + "/v1/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/trace/%s: status %d", id, resp2.StatusCode)
	}
	var a obs.AssembledTrace
	if err := json.NewDecoder(resp2.Body).Decode(&a); err != nil {
		t.Fatal(err)
	}
	if a.ID != id || a.Root == nil {
		t.Fatalf("assembled = %+v, want id %s with a root", a, id)
	}
	if a.Root.Name != "/v1/predict" || a.Root.Source != "gateway" {
		t.Fatalf("root = %s from %s, want /v1/predict from gateway", a.Root.Name, a.Root.Source)
	}
	// gateway root -> attempt.primary -> replica predict -> stage.execute
	if len(a.Root.Children) != 1 || a.Root.Children[0].Name != "attempt.primary" {
		t.Fatalf("root children = %+v, want one attempt.primary", a.Root.Children)
	}
	attempt := a.Root.Children[0]
	if len(attempt.Children) != 1 || attempt.Children[0].Name != "predict" {
		t.Fatalf("attempt children = %+v, want the replica's predict trace", attempt.Children)
	}
	remote := attempt.Children[0]
	if remote.Source != "replica0" {
		t.Fatalf("remote span source = %q, want replica0", remote.Source)
	}
	if len(remote.Children) != 1 || remote.Children[0].Name != "stage.execute" {
		t.Fatalf("remote children = %+v, want stage.execute", remote.Children)
	}
	if a.Spans != 4 || len(a.Orphans) != 0 {
		t.Fatalf("spans = %d orphans = %d, want 4 and 0", a.Spans, len(a.Orphans))
	}

	// Unknown IDs are a 404 with the JSON error shape; malformed ones a 400.
	resp3, _ := http.Get(ts.URL + "/v1/trace/ffffffffffffffff")
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace: status %d, want 404", resp3.StatusCode)
	}
	resp4, _ := http.Get(ts.URL + "/v1/trace/nope")
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed trace id: status %d, want 400", resp4.StatusCode)
	}
}

// TestGatewayDebugTracesAndSlowest covers the gateway's own trace
// query surface: ?last clamping, ?id filtering, bad parameters, and
// the slowest-trace summary endpoint.
func TestGatewayDebugTracesAndSlowest(t *testing.T) {
	a := newFakeReplica(t, "a")
	g, ts := newTestGateway(t, Config{
		TraceArchive: obs.NewArchive(obs.ArchivePolicy{SampleRate: 1}),
	}, a)

	var ids []string
	for i := 0; i < 3; i++ {
		resp, _ := postBody(t, ts.URL, fmt.Sprintf(`{"source":"q%d"}`, i), nil)
		ids = append(ids, resp.Header.Get("X-Trace-Id"))
	}

	get := func(path string) (int, []byte) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		buf, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, buf
	}

	// ?last far beyond the ring capacity clamps instead of erroring.
	code, body := get(fmt.Sprintf("/debug/traces?last=%d", g.tracer.Capacity()*10))
	var traces []*obs.Trace
	if code != http.StatusOK || json.Unmarshal(body, &traces) != nil || len(traces) != 3 {
		t.Fatalf("clamped last: code %d body %s", code, body)
	}
	// ?id returns exactly that trace's collections.
	code, body = get("/debug/traces?id=" + ids[1])
	if code != http.StatusOK || json.Unmarshal(body, &traces) != nil {
		t.Fatalf("id query: code %d body %s", code, body)
	}
	for _, tr := range traces {
		if tr.ID != ids[1] {
			t.Fatalf("id query returned foreign trace %s", tr.ID)
		}
	}
	if len(traces) == 0 {
		t.Fatal("id query returned nothing")
	}
	// Malformed ?last is the client's fault.
	code, body = get("/debug/traces?last=zero")
	var e map[string]string
	if code != http.StatusBadRequest || json.Unmarshal(body, &e) != nil || e["code"] != "invalid_input" {
		t.Fatalf("bad last: code %d body %s", code, body)
	}

	// The slowest summary lists archived traces with usable IDs.
	code, body = get("/v1/trace/slowest?n=2")
	var slow struct {
		Traces []traceSummary `json:"traces"`
	}
	if code != http.StatusOK || json.Unmarshal(body, &slow) != nil || len(slow.Traces) == 0 {
		t.Fatalf("slowest: code %d body %s", code, body)
	}
	if !isTraceID(slow.Traces[0].ID) {
		t.Fatalf("slowest row ID %q is not a trace ID", slow.Traces[0].ID)
	}
	code, _ = get("/v1/trace/slowest?n=-1")
	if code != http.StatusBadRequest {
		t.Fatalf("bad n: code %d, want 400", code)
	}
}
