package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of empty must be 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("mean = %f", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev(nil) != 0 {
		t.Error("stddev of empty must be 0")
	}
	if got := StdDev([]float64{5, 5, 5}); got != 0 {
		t.Errorf("stddev of constants = %f", got)
	}
	// Population stddev of {2,4,4,4,5,5,7,9} is exactly 2.
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2) > 1e-12 {
		t.Errorf("stddev = %f, want 2", got)
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{1, 3})
	if m != 2 || s != 1 {
		t.Errorf("MeanStd = %f, %f", m, s)
	}
}

func TestWeightedMean(t *testing.T) {
	if got := WeightedMean([]float64{10, 20}, []float64{1, 3}); got != 17.5 {
		t.Errorf("weighted mean = %f", got)
	}
	if WeightedMean([]float64{1}, []float64{0}) != 0 {
		t.Error("zero weight must yield 0")
	}
}

func TestPercent(t *testing.T) {
	if Percent(1, 4) != 25 {
		t.Error("25% expected")
	}
	if Percent(1, 0) != 0 {
		t.Error("zero denominator must yield 0")
	}
}

func TestStdDevProperties(t *testing.T) {
	// Shift invariance and non-negativity.
	f := func(xs []float64, shift float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true
			}
		}
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e12 {
			return true
		}
		s1 := StdDev(xs)
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
		}
		s2 := StdDev(shifted)
		tol := 1e-6 * (1 + math.Abs(shift))
		return s1 >= 0 && math.Abs(s1-s2) <= tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
