// Package stats provides the small statistical helpers the paper's tables
// report: means and standard deviations over per-benchmark results.
package stats

import "math"

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MeanStd returns both the mean and the population standard deviation.
func MeanStd(xs []float64) (mean, std float64) {
	return Mean(xs), StdDev(xs)
}

// WeightedMean returns the mean of xs weighted by ws. Zero total weight
// yields 0.
func WeightedMean(xs, ws []float64) float64 {
	var sw, s float64
	for i := range xs {
		s += xs[i] * ws[i]
		sw += ws[i]
	}
	if sw == 0 {
		return 0
	}
	return s / sw
}

// Percent returns 100*num/den, or 0 when den is 0.
func Percent(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}
