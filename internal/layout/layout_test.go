package layout

import (
	"testing"

	"ballarus/internal/core"
	"ballarus/internal/interp"
	"ballarus/internal/minic"
	"ballarus/internal/suite"
)

func TestReorderPreservesSemanticsAcrossSuite(t *testing.T) {
	for _, b := range suite.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := b.Compile()
			if err != nil {
				t.Fatal(err)
			}
			a, err := core.Analyze(prog, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			np, err := Reorder(a, a.Predictions(core.DefaultOrder))
			if err != nil {
				t.Fatal(err)
			}
			orig, err := interp.Run(prog, interp.Config{Input: b.Data[0].Input, Budget: b.Budget})
			if err != nil {
				t.Fatal(err)
			}
			laid, err := interp.Run(np, interp.Config{Input: b.Data[0].Input, Budget: 2 * b.Budget})
			if err != nil {
				t.Fatalf("reordered %s faulted: %v", b.Name, err)
			}
			if orig.Output != laid.Output {
				t.Fatalf("output changed by layout:\n  orig %q\n  laid %q", orig.Output, laid.Output)
			}
			// The dynamic conditional branch count is invariant (layout
			// only inverts and moves branches; it never adds or removes
			// conditional branches from hot paths).
			if orig.Profile.Total() != laid.Profile.Total() {
				t.Errorf("conditional branch count changed: %d -> %d",
					orig.Profile.Total(), laid.Profile.Total())
			}
			before := TakenRate(orig.Profile.Taken, orig.Profile.Fall)
			after := TakenRate(laid.Profile.Taken, laid.Profile.Fall)
			t.Logf("taken rate %.3f -> %.3f (instr %d -> %d)",
				before, after, orig.Steps, laid.Steps)

			// Layout by the run's own perfect predictions must never make
			// any benchmark worse: inversion only fires on branches whose
			// majority direction was taken.
			perfect := make([]core.Prediction, len(a.Branches))
			for id := range perfect {
				if orig.Profile.PerfectTaken(id) {
					perfect[id] = core.PredTaken
				} else {
					perfect[id] = core.PredFall
				}
			}
			pp, err := Reorder(a, perfect)
			if err != nil {
				t.Fatal(err)
			}
			pr, err := interp.Run(pp, interp.Config{Input: b.Data[0].Input, Budget: 2 * b.Budget})
			if err != nil {
				t.Fatal(err)
			}
			if pr.Output != orig.Output {
				t.Fatal("perfect-layout changed program behavior")
			}
			pAfter := TakenRate(pr.Profile.Taken, pr.Profile.Fall)
			if pAfter > before+1e-9 {
				t.Errorf("perfect-prediction layout increased taken rate: %.4f -> %.4f", before, pAfter)
			}
		})
	}
}

func TestHeuristicLayoutHelpsOnAverage(t *testing.T) {
	// With heuristic (not perfect) predictions the layout tracks the
	// predictor's quality: better on most benchmarks, worse where the
	// predictor is poor (compress), and a clear win on average — exactly
	// the paper's argument for why the predictions are worth having.
	var sumBefore, sumAfter float64
	n := 0
	for _, b := range suite.All() {
		prog, err := b.Compile()
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.Analyze(prog, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		np, err := Reorder(a, a.Predictions(core.DefaultOrder))
		if err != nil {
			t.Fatal(err)
		}
		orig, err := interp.Run(prog, interp.Config{Input: b.Data[0].Input, Budget: b.Budget})
		if err != nil {
			t.Fatal(err)
		}
		laid, err := interp.Run(np, interp.Config{Input: b.Data[0].Input, Budget: 2 * b.Budget})
		if err != nil {
			t.Fatal(err)
		}
		sumBefore += TakenRate(orig.Profile.Taken, orig.Profile.Fall)
		sumAfter += TakenRate(laid.Profile.Taken, laid.Profile.Fall)
		n++
	}
	mb, ma := sumBefore/float64(n), sumAfter/float64(n)
	t.Logf("mean taken rate: %.3f -> %.3f over %d benchmarks", mb, ma, n)
	if ma >= mb {
		t.Errorf("heuristic layout should reduce the mean taken rate: %.3f -> %.3f", mb, ma)
	}
}

func TestReorderAlignsWithMisses(t *testing.T) {
	// After layout, the taken-branch count equals the predictor's dynamic
	// miss count: every correctly predicted branch falls through. This
	// exact equality holds for forward branches only, so the workload is
	// loop-free (backedges cannot be laid out forward; loop rotation, not
	// block placement, would be needed).
	src := `
int step(int i, int odd) {
	if (i >= 500) { return odd; }
	if (i % 2 == 1) { odd++; }
	return step(i + 1, odd);
}
int main() {
	printi(step(0, 0));
	return 0;
}`
	prog, err := minic.Compile(src, minic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	preds := a.Predictions(core.DefaultOrder)
	np, err := Reorder(a, preds)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := interp.Run(prog, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	laid, err := interp.Run(np, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if orig.Output != laid.Output {
		t.Fatalf("outputs differ: %q vs %q", orig.Output, laid.Output)
	}
	// Misses of the predictor on the original program.
	var misses int64
	for id := range preds {
		misses += orig.Profile.Misses(id, preds[id].Taken())
	}
	var takenAfter int64
	for _, v := range laid.Profile.Taken {
		takenAfter += v
	}
	if takenAfter != misses {
		t.Errorf("taken after layout = %d, want the miss count %d", takenAfter, misses)
	}
}

func TestReorderIdempotentOutput(t *testing.T) {
	// Laying out an already laid-out program must preserve semantics too.
	b := suite.Get("grep")
	prog, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	a1, err := core.Analyze(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Reorder(a1, a1.Predictions(core.DefaultOrder))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := core.Analyze(p2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p3, err := Reorder(a2, a2.Predictions(core.DefaultOrder))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := interp.Run(prog, interp.Config{Input: b.Data[0].Input, Budget: b.Budget})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := interp.Run(p3, interp.Config{Input: b.Data[0].Input, Budget: 2 * b.Budget})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Output != r3.Output {
		t.Fatal("double layout changed program behavior")
	}
}

func TestInvertTableComplete(t *testing.T) {
	for op, inv := range invert {
		if back, ok := invert[inv]; !ok || back != op {
			t.Errorf("inversion of %v not involutive", op)
		}
	}
	if len(invert) != 12 {
		t.Errorf("%d invertible opcodes, want all 12 conditional branches", len(invert))
	}
}

func TestReorderWithIndirectCallsAndSwitch(t *testing.T) {
	// Function pointers (jalr) and jump tables (jtab) must survive
	// reordering: jalr sits mid-block; jtab's table needs remapping.
	src := `
int inc(int x) { return x + 1; }
int dbl(int x) { return x * 2; }
int route(int op, int v) {
	switch (op) {
	case 0: return v;
	case 1: return v + 10;
	case 2: return v + 20;
	case 3: return v + 30;
	case 4: return v + 40;
	}
	return -1;
}
int main() {
	int (*f)(int);
	int i;
	int v = 1;
	for (i = 0; i < 20; i++) {
		if (i % 3 == 0) { f = inc; } else { f = dbl; }
		v = route(i % 6, f(v)) % 1000;
	}
	printi(v);
	return 0;
}`
	prog, err := minic.Compile(src, minic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	np, err := Reorder(a, a.Predictions(core.DefaultOrder))
	if err != nil {
		t.Fatal(err)
	}
	orig, err := interp.Run(prog, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	laid, err := interp.Run(np, interp.Config{})
	if err != nil {
		t.Fatalf("reordered program faulted: %v", err)
	}
	if orig.Output != laid.Output {
		t.Fatalf("outputs differ: %q vs %q", orig.Output, laid.Output)
	}
}
