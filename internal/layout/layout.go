// Package layout implements prediction-driven basic-block reordering —
// the compiler application the paper's introduction motivates:
// architectures like the DEC Alpha and MIPS R4000 statically predict that
// forward conditional branches fall through, "relying on a compiler to
// arrange code to conform to these expectations". Given Ball-Larus
// predictions, the pass chains blocks so each branch's predicted
// successor is placed immediately after it (a greedy form of
// Pettis-Hanson code positioning, the paper's citation [14]), inverting
// branch conditions where necessary.
//
// The transformation is semantics-preserving: the reordered program
// computes exactly the same results, but the dynamic count of *taken*
// branches — pipeline bubbles on a predict-not-taken machine — drops to
// the predictor's miss count.
package layout

import (
	"fmt"

	"ballarus/internal/cfg"
	"ballarus/internal/core"
	"ballarus/internal/mir"
)

// invert maps each conditional branch opcode to its negation.
var invert = map[mir.Op]mir.Op{
	mir.Beq: mir.Bne, mir.Bne: mir.Beq,
	mir.Bltz: mir.Bgez, mir.Bgez: mir.Bltz,
	mir.Blez: mir.Bgtz, mir.Bgtz: mir.Blez,
	mir.FBeq: mir.FBne, mir.FBne: mir.FBeq,
	mir.FBlt: mir.FBge, mir.FBge: mir.FBlt,
	mir.FBle: mir.FBgt, mir.FBgt: mir.FBle,
}

// Reorder produces a new program whose basic blocks are laid out along
// predicted paths. preds indexes predictions by branch ID over a's branch
// set; any branch without a prediction keeps its original direction.
func Reorder(a *core.Analysis, preds []core.Prediction) (*mir.Program, error) {
	out := &mir.Program{
		Entry:  a.Prog.Entry,
		Data:   append([]int64(nil), a.Prog.Data...),
		Source: a.Prog.Source,
	}
	for pi, p := range a.Prog.Procs {
		if p.Builtin != mir.NotBuiltin {
			out.Procs = append(out.Procs, p)
			continue
		}
		np, err := reorderProc(a, pi, preds)
		if err != nil {
			return nil, fmt.Errorf("layout: %s: %w", p.Name, err)
		}
		out.Procs = append(out.Procs, np)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("layout: produced invalid MIR: %w", err)
	}
	return out, nil
}

// order chooses the block placement: greedy chains following predicted
// (or unique) successors, starting from the entry.
func order(g *cfg.Graph, predTaken func(instr int) (bool, bool)) []int {
	n := len(g.Blocks)
	placed := make([]bool, n)
	var seq []int
	place := func(b int) {
		placed[b] = true
		seq = append(seq, b)
	}
	next := 0
	for next >= 0 {
		b := next
		place(b)
		// Follow the chain from b.
		for {
			blk := g.Blocks[b]
			cand := -1
			if blk.IsCondBranch(g.Proc) {
				taken := true
				if t, ok := predTaken(blk.End - 1); ok {
					taken = t
				}
				want := g.TargetSucc(b)
				other := g.FallSucc(b)
				if !taken {
					want, other = other, want
				}
				if !placed[want] {
					cand = want
				} else if other >= 0 && !placed[other] {
					cand = other
				}
			} else if len(blk.Succs) == 1 && !placed[blk.Succs[0]] {
				cand = blk.Succs[0]
			} else {
				for _, s := range blk.Succs {
					if !placed[s] {
						cand = s
						break
					}
				}
			}
			if cand < 0 {
				break
			}
			place(cand)
			b = cand
		}
		// Start a new chain at the lowest unplaced block.
		next = -1
		for i := 0; i < n; i++ {
			if !placed[i] {
				next = i
				break
			}
		}
	}
	return seq
}

func reorderProc(a *core.Analysis, pi int, preds []core.Prediction) (*mir.Proc, error) {
	g := a.Graphs[pi]
	p := g.Proc
	predTaken := func(instr int) (bool, bool) {
		id := a.Set.ID(pi, instr)
		if id < 0 || int(id) >= len(preds) || preds[id] == core.PredNone {
			return false, false
		}
		return preds[id] == core.PredTaken, true
	}
	seq := order(g, predTaken)

	// Emit blocks in the new order with symbolic (block-id) targets, then
	// resolve. A conditional branch whose predicted successor is the next
	// placed block falls through to it — inverting the condition if the
	// prediction was "taken". Unconditional continuations that no longer
	// fall through get an explicit jump.
	type patch struct {
		instr int // index in the new code
		block int // target block id
		table int // >= 0: index into the Jtab table
	}
	var code []mir.Instr
	var patches []patch
	blockStart := make([]int, len(g.Blocks))
	for i := range blockStart {
		blockStart[i] = -1
	}
	for si, b := range seq {
		blockStart[b] = len(code)
		blk := g.Blocks[b]
		// Copy the block body except the terminator (handled below).
		last := blk.End - 1
		lin := p.Code[last]
		bodyEnd := last
		if !lin.Op.EndsBlock() {
			bodyEnd = blk.End // block ended by a following leader
		}
		for i := blk.Start; i < bodyEnd; i++ {
			in := p.Code[i]
			if in.Op == mir.Jtab {
				in.Table = append([]int(nil), in.Table...)
			}
			code = append(code, in)
		}
		var nextPlaced int = -1
		if si+1 < len(seq) {
			nextPlaced = seq[si+1]
		}
		emitJump := func(target int) {
			if target == nextPlaced {
				return // falls through
			}
			patches = append(patches, patch{instr: len(code), block: target, table: -1})
			code = append(code, mir.Instr{Op: mir.J, Target: target})
		}
		switch {
		case lin.Op.IsCondBranch():
			t := g.TargetSucc(b)
			f := g.FallSucc(b)
			in := lin
			predT, okP := predTaken(last)
			// Invert only when it helps: the old taken-target is placed
			// next AND the prediction says taken (so the predicted
			// direction becomes the fall-through) — or there is no
			// prediction, where inversion just saves a jump. When the
			// prediction says fall but the taken-target happens to be
			// next, keep the branch direction (a taken branch to the next
			// instruction is harmless; inverting would turn the common
			// direction into a taken branch).
			if t == nextPlaced && f != nextPlaced && (!okP || predT) {
				in.Op = invert[in.Op]
				in.Target = f
				t, f = f, t
			} else {
				in.Target = t
			}
			patches = append(patches, patch{instr: len(code), block: in.Target, table: -1})
			code = append(code, in)
			emitJump(f)
		case lin.Op == mir.J:
			emitJump(g.BlockOf(lin.Target))
		case lin.Op == mir.Jtab:
			in := lin
			in.Table = make([]int, len(lin.Table))
			for k, tgt := range lin.Table {
				in.Table[k] = g.BlockOf(tgt)
				patches = append(patches, patch{instr: len(code), block: in.Table[k], table: k})
			}
			code = append(code, in)
		case lin.Op == mir.Jr || lin.Op == mir.Halt:
			code = append(code, lin)
		default:
			// The block fell through to the next leader in the old
			// layout; re-establish that edge explicitly if needed.
			if len(blk.Succs) != 1 {
				return nil, fmt.Errorf("block B%d falls through with %d successors", b, len(blk.Succs))
			}
			emitJump(blk.Succs[0])
		}
	}
	for _, pt := range patches {
		in := &code[pt.instr]
		var target int
		if pt.table >= 0 {
			target = blockStart[in.Table[pt.table]]
		} else {
			target = blockStart[in.Target]
		}
		if target < 0 {
			return nil, fmt.Errorf("unplaced target block")
		}
		if pt.table >= 0 {
			in.Table[pt.table] = target
		} else {
			in.Target = target
		}
	}
	// A trailing conditional branch can arise if its fall-through jump was
	// elided as the last block; Validate would reject it. Append a
	// defensive halt only in that case.
	if len(code) > 0 && code[len(code)-1].Op.IsCondBranch() {
		code = append(code, mir.Instr{Op: mir.Halt})
	}
	return &mir.Proc{
		Name:    p.Name,
		NArgs:   p.NArgs,
		NLocals: p.NLocals,
		NIRegs:  p.NIRegs,
		NFRegs:  p.NFRegs,
		Code:    code,
	}, nil
}

// TakenRate measures the fraction of dynamic conditional branches that
// were taken in a profile — the quantity layout minimizes.
func TakenRate(taken, fall []int64) float64 {
	var t, total int64
	for i := range taken {
		t += taken[i]
		total += taken[i] + fall[i]
	}
	if total == 0 {
		return 0
	}
	return float64(t) / float64(total)
}
