// Package tenant is the multi-tenant isolation layer of the prediction
// service: per-tenant token-bucket rate quotas, per-tenant in-flight
// (concurrency) caps, and weighted max-min fair shares of the worker
// pool, all behind one LRU-bounded registry so an open-world tenant
// population cannot grow state without bound.
//
// Tenants are identified by the X-Tenant-Id header at the HTTP edge;
// requests without one belong to DefaultID. The identity travels
// through the pipeline in the context (WithID/FromContext) rather than
// in request structs, so content-addressed cache keys and the durable
// journal format are unchanged by tenancy.
//
// Two distinct rejection modes come out of this package, and keeping
// them distinct is the point:
//
//   - Quota rejections (Registry.Admit) mean THIS tenant is over its
//     configured rate or concurrency limit. They carry a *QuotaError
//     with Retry-After and X-RateLimit-* material and classify as
//     resilience.ErrQuotaExceeded (a refinement of ErrOverload).
//     They are deterministic for the tenant; retrying amplifies.
//
//   - Fairness sheds (Registry.OverShare consulted by the service when
//     its queue saturates) mean the service as a whole is out of
//     capacity and this tenant is holding more than its weighted
//     max-min fair share of it. They classify as plain ErrOverload:
//     backing off briefly may well succeed.
package tenant

import (
	"container/list"
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// DefaultID is the tenant requests belong to when no X-Tenant-Id
// header is present.
const DefaultID = "default"

// MaxIDLen bounds tenant identifiers; longer IDs are rejected at the
// edge so hostile clients cannot bloat label values or LRU keys.
const MaxIDLen = 128

type ctxKey struct{}

// WithID returns a context carrying the tenant identity.
func WithID(ctx context.Context, id string) context.Context {
	if id == "" {
		id = DefaultID
	}
	return context.WithValue(ctx, ctxKey{}, id)
}

// FromContext returns the tenant identity carried by ctx, or DefaultID
// when none was attached.
func FromContext(ctx context.Context) string {
	if id, ok := ctx.Value(ctxKey{}).(string); ok && id != "" {
		return id
	}
	return DefaultID
}

// Limits is one tenant's quota configuration. Zero or negative values
// mean "unlimited" for Rate/MaxInFlight and "default" for Burst/Weight
// (Burst defaults to max(Rate, 1); Weight defaults to 1).
type Limits struct {
	// Rate is the sustained admission rate in requests per second
	// replenished into the tenant's token bucket.
	Rate float64
	// Burst is the bucket capacity: how far above the sustained rate a
	// tenant may burst before rejections start.
	Burst float64
	// MaxInFlight caps the tenant's concurrently admitted requests.
	MaxInFlight int
	// Weight scales the tenant's max-min fair share of worker slots
	// under saturation. A weight-2 tenant is entitled to twice the
	// share of a weight-1 tenant.
	Weight float64
}

func (l Limits) withDefaults() Limits {
	if l.Burst <= 0 {
		l.Burst = math.Max(l.Rate, 1)
	}
	if l.Weight <= 0 {
		l.Weight = 1
	}
	return l
}

// Config configures a Registry.
type Config struct {
	// Defaults applies to every tenant without an override.
	Defaults Limits
	// Overrides maps tenant IDs to their specific limits.
	Overrides map[string]Limits
	// MaxTenants bounds the registry's per-tenant state (LRU evicted).
	// Zero means 1024. Tenants with explicit overrides are never
	// evicted.
	MaxTenants int
	// Now is the clock, injectable for deterministic tests. Nil means
	// time.Now.
	Now func() time.Time
}

// QuotaError reports a per-tenant quota rejection with the material an
// HTTP edge needs for Retry-After and X-RateLimit-* headers. Wrap it
// with resilience.Quota before returning it from a pipeline.
type QuotaError struct {
	Tenant string
	// Reason is "rate" or "concurrency".
	Reason string
	// RetryAfter is how long until the bucket holds enough tokens for
	// one request (zero for concurrency rejections — retry when an
	// in-flight request finishes).
	RetryAfter time.Duration
	// Limit and Remaining describe the exceeded limit: the sustained
	// rate (requests/s, rounded) or the in-flight cap, and how much of
	// it is currently unused.
	Limit     int
	Remaining int
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("tenant %q over %s quota (limit %d)", e.Tenant, e.Reason, e.Limit)
}

// state is one tenant's live accounting. Guarded by Registry.mu.
type state struct {
	id       string
	limits   Limits
	pinned   bool // has an explicit override; never LRU-evicted
	tokens   float64
	last     time.Time
	inflight int
	elem     *list.Element
}

// Registry tracks per-tenant quota and occupancy state, LRU-bounded.
type Registry struct {
	mu       sync.Mutex
	cfg      Config
	now      func() time.Time
	tenants  map[string]*state
	lru      *list.List // front = most recently used; pinned states excluded
	max      int
	evicted  uint64
	rejected map[string]uint64 // by reason, for Stats
}

// NewRegistry builds a Registry from cfg.
func NewRegistry(cfg Config) *Registry {
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	max := cfg.MaxTenants
	if max <= 0 {
		max = 1024
	}
	return &Registry{
		cfg:      cfg,
		now:      now,
		tenants:  make(map[string]*state),
		lru:      list.New(),
		max:      max,
		rejected: make(map[string]uint64),
	}
}

// get returns (creating if needed) the tenant's state and refreshes
// its LRU position. Caller holds r.mu.
func (r *Registry) get(id string) *state {
	if s, ok := r.tenants[id]; ok {
		if s.elem != nil {
			r.lru.MoveToFront(s.elem)
		}
		return s
	}
	lim, pinned := r.cfg.Overrides[id]
	if !pinned {
		lim = r.cfg.Defaults
	}
	lim = lim.withDefaults()
	s := &state{id: id, limits: lim, pinned: pinned, tokens: lim.Burst, last: r.now()}
	r.tenants[id] = s
	if !pinned {
		s.elem = r.lru.PushFront(s)
		// Evict the coldest unpinned idle tenant over the bound. A
		// tenant with requests in flight keeps its state — evicting it
		// would leak its in-flight accounting.
		for len(r.tenants) > r.max {
			victim := r.coldestIdle()
			if victim == nil {
				break
			}
			r.lru.Remove(victim.elem)
			delete(r.tenants, victim.id)
			r.evicted++
		}
	}
	return s
}

func (r *Registry) coldestIdle() *state {
	for e := r.lru.Back(); e != nil; e = e.Prev() {
		if s := e.Value.(*state); s.inflight == 0 {
			return s
		}
	}
	return nil
}

// refill advances the tenant's token bucket to now. Caller holds r.mu.
func (s *state) refill(now time.Time) {
	if s.limits.Rate <= 0 {
		return
	}
	if dt := now.Sub(s.last).Seconds(); dt > 0 {
		s.tokens = math.Min(s.limits.Burst, s.tokens+dt*s.limits.Rate)
	}
	s.last = now
}

// Admit charges n request tokens against the tenant's rate quota and
// takes n units of its in-flight cap. On success it returns a release
// function that MUST be called exactly once when the work completes
// (it returns the in-flight units, not the rate tokens — those are
// spent). On rejection it returns a *QuotaError and a nil release.
//
// Batches are admitted as a unit: all n tokens and slots or none.
func (r *Registry) Admit(id string, n int) (release func(), err *QuotaError) {
	if n <= 0 {
		n = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.get(id)
	now := r.now()
	s.refill(now)

	if s.limits.MaxInFlight > 0 && s.inflight+n > s.limits.MaxInFlight {
		r.rejected["concurrency"]++
		return nil, &QuotaError{
			Tenant:    id,
			Reason:    "concurrency",
			Limit:     s.limits.MaxInFlight,
			Remaining: max(0, s.limits.MaxInFlight-s.inflight),
		}
	}
	if s.limits.Rate > 0 && s.tokens < float64(n) {
		r.rejected["rate"]++
		need := float64(n) - s.tokens
		return nil, &QuotaError{
			Tenant:     id,
			Reason:     "rate",
			RetryAfter: time.Duration(math.Ceil(need/s.limits.Rate)) * time.Second,
			Limit:      int(math.Round(s.limits.Rate)),
			Remaining:  int(s.tokens),
		}
	}
	if s.limits.Rate > 0 {
		s.tokens -= float64(n)
	}
	s.inflight += n

	var once sync.Once
	return func() {
		once.Do(func() {
			r.mu.Lock()
			defer r.mu.Unlock()
			if cur, ok := r.tenants[id]; ok {
				cur.inflight -= n
				if cur.inflight < 0 {
					cur.inflight = 0
				}
			}
		})
	}, nil
}

// InFlight returns the tenant's currently admitted request count.
func (r *Registry) InFlight(id string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.tenants[id]; ok {
		return s.inflight
	}
	return 0
}

// OverShare reports whether the tenant currently occupies more than
// its weighted max-min fair share of capacity slots, considering every
// tenant with work in flight. Under saturation the service sheds
// over-share tenants and spares under-share ones — that is the
// fairness invariant.
//
// The share is computed by water-filling: tenants needing less than
// their entitled share keep what they use, and the slack is
// redistributed to the rest by weight. A tenant alone on the service
// is therefore never over-share (it is entitled to everything), and a
// tenant at or under an equal split never is either.
func (r *Registry) OverShare(id string, capacity int) bool {
	if capacity <= 0 {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.tenants[id]
	if !ok || s.inflight == 0 {
		return false
	}
	active := make([]*claim, 0, 8)
	var mine *claim
	for _, t := range r.tenants {
		if t.inflight == 0 && t != s {
			continue
		}
		c := &claim{demand: float64(t.inflight), weight: t.limits.Weight}
		active = append(active, c)
		if t == s {
			mine = c
		}
	}
	waterFill(active, float64(capacity))
	// Strictly over its fair share, with a one-slot grace so a tenant
	// exactly at its integer share is not shed by rounding.
	return mine.demand > mine.share+1
}

// waterFill assigns each claim its weighted max-min fair share of the
// capacity: iteratively satisfy every claim demanding less than its
// entitled share, then redistribute the slack to the rest by weight.
func waterFill(claims []*claim, capacity float64) {
	remaining := capacity
	unsat := append([]*claim(nil), claims...)
	sort.Slice(unsat, func(i, j int) bool {
		return unsat[i].demand/unsat[i].weight < unsat[j].demand/unsat[j].weight
	})
	for len(unsat) > 0 {
		var wsum float64
		for _, c := range unsat {
			wsum += c.weight
		}
		fill := remaining / wsum // per unit weight
		// Smallest normalized demand first: if it fits under the fill
		// line, satisfy it exactly and redistribute its slack.
		c := unsat[0]
		if c.demand <= c.weight*fill {
			c.share = c.demand
			remaining -= c.demand
			unsat = unsat[1:]
			continue
		}
		// Nobody left fits: everyone remaining gets the line.
		for _, c := range unsat {
			c.share = c.weight * fill
		}
		return
	}
}

// claim is one tenant's demand in a water-filling round.
type claim struct {
	demand float64
	weight float64
	share  float64
}

// FairShare returns the tenant's current weighted max-min fair share
// of capacity slots, for observability.
func (r *Registry) FairShare(id string, capacity int) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.tenants[id]
	if !ok {
		return 0
	}
	active := make([]*claim, 0, 8)
	var mine *claim
	for _, t := range r.tenants {
		if t.inflight == 0 && t != s {
			continue
		}
		c := &claim{demand: float64(t.inflight), weight: t.limits.Weight}
		active = append(active, c)
		if t == s {
			mine = c
		}
	}
	waterFill(active, float64(capacity))
	return mine.share
}

// Stats is a point-in-time registry snapshot for /v1/stats and tests.
type Stats struct {
	Tenants  int               `json:"tenants"`
	Evicted  uint64            `json:"evicted"`
	Rejected map[string]uint64 `json:"rejected,omitempty"`
	InFlight map[string]int    `json:"in_flight,omitempty"`
}

// Snapshot returns current registry statistics.
func (r *Registry) Snapshot() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Stats{
		Tenants:  len(r.tenants),
		Evicted:  r.evicted,
		Rejected: make(map[string]uint64, len(r.rejected)),
		InFlight: make(map[string]int),
	}
	for k, v := range r.rejected {
		st.Rejected[k] = v
	}
	for id, s := range r.tenants {
		if s.inflight > 0 {
			st.InFlight[id] = s.inflight
		}
	}
	return st
}

// Limits returns the effective limits for a tenant (defaults applied).
func (r *Registry) Limits(id string) Limits {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.tenants[id]; ok {
		return s.limits
	}
	if lim, ok := r.cfg.Overrides[id]; ok {
		return lim.withDefaults()
	}
	return r.cfg.Defaults.withDefaults()
}
