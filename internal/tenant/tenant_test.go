package tenant

import (
	"context"
	"sync"
	"testing"
	"time"
)

// clock is a manually advanced test clock.
type clock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *clock { return &clock{t: time.Unix(1_700_000_000, 0)} }

func (c *clock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestContextIdentity(t *testing.T) {
	ctx := context.Background()
	if got := FromContext(ctx); got != DefaultID {
		t.Errorf("bare context tenant = %q, want %q", got, DefaultID)
	}
	if got := FromContext(WithID(ctx, "acme")); got != "acme" {
		t.Errorf("tenant = %q, want acme", got)
	}
	if got := FromContext(WithID(ctx, "")); got != DefaultID {
		t.Errorf("empty tenant = %q, want %q", got, DefaultID)
	}
}

func TestRateBucket(t *testing.T) {
	clk := newClock()
	r := NewRegistry(Config{
		Defaults: Limits{Rate: 2, Burst: 4},
		Now:      clk.now,
	})
	// Burst capacity admits 4 straight away.
	var releases []func()
	for i := 0; i < 4; i++ {
		rel, qerr := r.Admit("acme", 1)
		if qerr != nil {
			t.Fatalf("admit %d rejected: %v", i, qerr)
		}
		releases = append(releases, rel)
	}
	// The 5th is over the bucket: rejected with rate reason and a
	// Retry-After long enough to mint one token.
	_, qerr := r.Admit("acme", 1)
	if qerr == nil {
		t.Fatal("5th admit should exceed the burst")
	}
	if qerr.Reason != "rate" || qerr.Tenant != "acme" {
		t.Errorf("rejection = %+v, want rate/acme", qerr)
	}
	if qerr.RetryAfter <= 0 {
		t.Errorf("rate rejection must carry a positive Retry-After, got %v", qerr.RetryAfter)
	}
	if qerr.Limit != 2 {
		t.Errorf("Limit = %d, want sustained rate 2", qerr.Limit)
	}
	// Refill at 2/s: after 1s, two more fit.
	clk.advance(time.Second)
	for i := 0; i < 2; i++ {
		if _, qerr := r.Admit("acme", 1); qerr != nil {
			t.Fatalf("post-refill admit %d rejected: %v", i, qerr)
		}
	}
	if _, qerr := r.Admit("acme", 1); qerr == nil {
		t.Fatal("bucket should be empty again")
	}
	for _, rel := range releases {
		rel()
	}
}

func TestConcurrencyCapAndRelease(t *testing.T) {
	r := NewRegistry(Config{Defaults: Limits{MaxInFlight: 2}, Now: newClock().now})
	rel1, qerr := r.Admit("acme", 1)
	if qerr != nil {
		t.Fatal(qerr)
	}
	rel2, qerr := r.Admit("acme", 1)
	if qerr != nil {
		t.Fatal(qerr)
	}
	_, qerr = r.Admit("acme", 1)
	if qerr == nil || qerr.Reason != "concurrency" {
		t.Fatalf("3rd admit = %v, want concurrency rejection", qerr)
	}
	if qerr.Remaining != 0 {
		t.Errorf("Remaining = %d, want 0", qerr.Remaining)
	}
	rel1()
	rel1() // double release must not double-credit
	if got := r.InFlight("acme"); got != 1 {
		t.Fatalf("in-flight after release = %d, want 1", got)
	}
	if _, qerr := r.Admit("acme", 1); qerr != nil {
		t.Fatalf("slot freed but admit rejected: %v", qerr)
	}
	rel2()
}

func TestBatchAdmittedAsUnit(t *testing.T) {
	clk := newClock()
	r := NewRegistry(Config{Defaults: Limits{Rate: 1, Burst: 5}, Now: clk.now})
	// A 6-item batch exceeds the 5-token bucket: all-or-nothing reject,
	// and the bucket must be untouched by the failed attempt.
	if _, qerr := r.Admit("acme", 6); qerr == nil {
		t.Fatal("6-item batch should be rejected as a unit")
	}
	rel, qerr := r.Admit("acme", 5)
	if qerr != nil {
		t.Fatalf("5-item batch should fit the untouched bucket: %v", qerr)
	}
	if got := r.InFlight("acme"); got != 5 {
		t.Errorf("batch in-flight = %d, want 5", got)
	}
	rel()
	if got := r.InFlight("acme"); got != 0 {
		t.Errorf("in-flight after batch release = %d, want 0", got)
	}
}

func TestOverridesAndDefaults(t *testing.T) {
	clk := newClock()
	r := NewRegistry(Config{
		Defaults:  Limits{Rate: 100, Burst: 100},
		Overrides: map[string]Limits{"hog": {Rate: 1, Burst: 1}},
		Now:       clk.now,
	})
	if _, qerr := r.Admit("hog", 1); qerr != nil {
		t.Fatalf("first hog request fits its burst: %v", qerr)
	}
	if _, qerr := r.Admit("hog", 1); qerr == nil {
		t.Fatal("hog override (1 rps, burst 1) should reject the 2nd immediate request")
	}
	for i := 0; i < 50; i++ {
		if _, qerr := r.Admit("other", 1); qerr != nil {
			t.Fatalf("default-limit tenant rejected at %d: %v", i, qerr)
		}
	}
	if lim := r.Limits("hog"); lim.Rate != 1 {
		t.Errorf("hog effective rate = %v, want 1", lim.Rate)
	}
	if lim := r.Limits("anyone"); lim.Rate != 100 {
		t.Errorf("default effective rate = %v, want 100", lim.Rate)
	}
}

func TestLRUBoundSparesActiveAndPinned(t *testing.T) {
	clk := newClock()
	r := NewRegistry(Config{
		Defaults:   Limits{Rate: 1000, Burst: 1000},
		Overrides:  map[string]Limits{"pinned": {Rate: 5}},
		MaxTenants: 3,
		Now:        clk.now,
	})
	relA, _ := r.Admit("active", 1) // stays in flight
	r.Admit("pinned", 1)
	for i := 0; i < 10; i++ {
		id := string(rune('a' + i))
		rel, qerr := r.Admit(id, 1)
		if qerr != nil {
			t.Fatalf("admit %s: %v", id, qerr)
		}
		rel()
	}
	st := r.Snapshot()
	if st.Evicted == 0 {
		t.Fatal("10 transient tenants over a 3-tenant bound must evict")
	}
	if got := r.InFlight("active"); got != 1 {
		t.Errorf("active tenant must never be evicted while in flight; in-flight = %d", got)
	}
	if lim := r.Limits("pinned"); lim.Rate != 5 {
		t.Errorf("pinned override lost: %+v", lim)
	}
	relA()
}

func TestOverShareWaterFilling(t *testing.T) {
	clk := newClock()
	r := NewRegistry(Config{Defaults: Limits{}, Now: clk.now})
	admitN := func(id string, n int) []func() {
		t.Helper()
		var rels []func()
		for i := 0; i < n; i++ {
			rel, qerr := r.Admit(id, 1)
			if qerr != nil {
				t.Fatalf("admit %s: %v", id, qerr)
			}
			rels = append(rels, rel)
		}
		return rels
	}
	// Saturation: 14 units of demand against 10 slots. The hog holds
	// 12, two polite tenants hold 1 each — the polite pair are under
	// share, the hog is the one past the fill line.
	hogRels := admitN("hog", 12)
	admitN("t1", 1)
	admitN("t2", 1)
	const capacity = 10
	if !r.OverShare("hog", capacity) {
		t.Error("hog at 12/10 with two 1-slot tenants must be over share")
	}
	if r.OverShare("t1", capacity) || r.OverShare("t2", capacity) {
		t.Error("under-share tenants must never be flagged")
	}
	// Water-filling: t1/t2's slack flows to the hog, whose fair share
	// is everything they leave behind: 10 - 1 - 1 = 8.
	if got := r.FairShare("hog", capacity); got != 8 {
		t.Errorf("hog fair share = %v, want 8 (slack redistributed)", got)
	}
	// A tenant alone on the service is entitled to all of it.
	for _, rel := range hogRels {
		rel()
	}
	if r.OverShare("t1", capacity) {
		t.Error("tenant within capacity alone must not be over share")
	}
}

func TestOverShareWeighted(t *testing.T) {
	clk := newClock()
	r := NewRegistry(Config{
		Defaults:  Limits{},
		Overrides: map[string]Limits{"gold": {Weight: 3}},
		Now:       clk.now,
	})
	admit := func(id string, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, qerr := r.Admit(id, 1); qerr != nil {
				t.Fatalf("admit %s: %v", id, qerr)
			}
		}
	}
	// 12 slots, weight 3 vs 1: gold is entitled to 9, bronze to 3.
	admit("gold", 9)
	admit("bronze", 3)
	if r.OverShare("gold", 12) {
		t.Error("gold at its weighted share must not be flagged")
	}
	admit("bronze", 4) // bronze now at 7 > 3 + slack
	if !r.OverShare("bronze", 12) {
		t.Error("bronze far over its weighted share must be flagged")
	}
}

func TestRegistryRace(t *testing.T) {
	clk := newClock()
	r := NewRegistry(Config{
		Defaults:   Limits{Rate: 1e6, Burst: 1e6, MaxInFlight: 64},
		MaxTenants: 8,
		Now:        clk.now,
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := string(rune('a' + g%4))
			for i := 0; i < 200; i++ {
				if rel, qerr := r.Admit(id, 1+i%3); qerr == nil {
					r.OverShare(id, 16)
					r.FairShare(id, 16)
					rel()
				}
				r.Snapshot()
				r.InFlight(id)
			}
		}(g)
	}
	wg.Wait()
	for _, id := range []string{"a", "b", "c", "d"} {
		if got := r.InFlight(id); got != 0 {
			t.Errorf("tenant %s leaked %d in-flight units", id, got)
		}
	}
}
