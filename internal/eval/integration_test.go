package eval

import (
	"testing"

	"ballarus/internal/core"
	"ballarus/internal/interp"
	"ballarus/internal/mir"
	"ballarus/internal/suite"
)

// TestProfileMatchesInstrCounts cross-checks the two independent dynamic
// observation channels: for every conditional branch, the edge profile's
// execution count must equal the instruction-count matrix's entry for the
// branch instruction.
func TestProfileMatchesInstrCounts(t *testing.T) {
	for _, name := range []string{"gcc", "compress", "tomcatv", "congress"} {
		b := suite.Get(name)
		prog, err := b.Compile()
		if err != nil {
			t.Fatal(err)
		}
		res, err := interp.Run(prog, interp.Config{
			Input: b.Data[0].Input, Budget: b.Budget, CollectInstrCounts: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < res.Profile.Set.Len(); id++ {
			site := res.Profile.Set.Site(id)
			got := res.InstrCounts[site.Proc][site.Instr]
			want := res.Profile.Executed(id)
			if got != want {
				t.Errorf("%s: branch %d at %s+%d: instr count %d, profile %d",
					name, id, prog.Procs[site.Proc].Name, site.Instr, got, want)
			}
		}
	}
}

// TestEveryOrderYieldsLegalPredictions verifies, across a real program,
// that under any priority order every branch's final prediction comes
// from an applicable heuristic, the loop predictor, or the Default.
func TestEveryOrderYieldsLegalPredictions(t *testing.T) {
	b := suite.Get("lcc")
	a, err := sharedEval.Analysis(b)
	if err != nil {
		t.Fatal(err)
	}
	orders := []core.Order{core.DefaultOrder, core.SectionOrder,
		{core.Guard, core.Store, core.Point, core.ReturnH, core.CallH, core.LoopH, core.Opcode}}
	for _, o := range orders {
		for i := range a.Branches {
			br := &a.Branches[i]
			pred, by, ok := br.PredictWith(o)
			if pred == core.PredNone {
				t.Fatalf("branch %d has no prediction", i)
			}
			switch {
			case br.Class == core.LoopBranch:
				if pred != br.LoopPred {
					t.Fatalf("loop branch %d predicted %v, loop predictor says %v", i, pred, br.LoopPred)
				}
			case ok:
				if br.Heur[by] != pred {
					t.Fatalf("branch %d attributed to %v but predictions disagree", i, by)
				}
				// No earlier heuristic in the order may apply.
				for _, h := range o {
					if h == by {
						break
					}
					if br.Heur[h] != core.PredNone {
						t.Fatalf("branch %d: %v fired but earlier %v applies", i, by, h)
					}
				}
			default:
				if pred != br.DefaultPred {
					t.Fatalf("branch %d default mismatch", i)
				}
			}
		}
	}
}

// TestSuiteCFGStructure asserts structural invariants over every compiled
// suite program: minic emits structured control flow, so every retreating
// DFS edge must be a natural-loop backedge (reducibility), every block is
// reachable, and branch classification is consistent with edge kinds.
func TestSuiteCFGStructure(t *testing.T) {
	for _, bench := range suite.All() {
		a, err := sharedEval.Analysis(bench)
		if err != nil {
			t.Fatal(err)
		}
		for pi, g := range a.Graphs {
			if g == nil {
				continue
			}
			for _, blk := range g.Blocks {
				if !g.Reachable(blk.Index) {
					t.Errorf("%s/%s: unreachable block B%d", bench.Name,
						a.Prog.Procs[pi].Name, blk.Index)
				}
			}
			// Reducibility via DFS coloring: a retreating edge to a
			// non-dominating target would be irreducible.
			state := make([]int, len(g.Blocks))
			var stack []int
			push := func(b int) { state[b] = 1; stack = append(stack, b) }
			type frame struct{ b, i int }
			var frames []frame
			frames = append(frames, frame{0, 0})
			state[0] = 1
			for len(frames) > 0 {
				f := &frames[len(frames)-1]
				blk := g.Blocks[f.b]
				if f.i < len(blk.Succs) {
					s := blk.Succs[f.i]
					f.i++
					if state[s] == 1 && !g.IsBackedge(f.b, s) {
						t.Errorf("%s/%s: irreducible retreating edge B%d->B%d",
							bench.Name, a.Prog.Procs[pi].Name, f.b, s)
					}
					if state[s] == 0 {
						state[s] = 1
						frames = append(frames, frame{s, 0})
					}
					continue
				}
				state[f.b] = 2
				frames = frames[:len(frames)-1]
			}
			_ = push
			_ = stack
		}
		// Classification consistency.
		for i := range a.Branches {
			br := &a.Branches[i]
			g := a.Graphs[br.Proc]
			tgt := g.TargetSucc(br.Block)
			fall := g.FallSucc(br.Block)
			isLoopEdge := g.IsBackedge(br.Block, tgt) || g.IsBackedge(br.Block, fall) ||
				g.IsExitEdge(br.Block, tgt) || g.IsExitEdge(br.Block, fall)
			if isLoopEdge != (br.Class == core.LoopBranch) {
				t.Errorf("%s: branch %d classification inconsistent", bench.Name, i)
			}
		}
	}
}

// TestBranchSitesAreCondBranches sanity-checks the indexing joints.
func TestBranchSitesAreCondBranches(t *testing.T) {
	b := suite.Get("espresso")
	a, err := sharedEval.Analysis(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Branches {
		br := &a.Branches[i]
		op := a.Prog.Procs[br.Proc].Code[br.Instr].Op
		if !op.IsCondBranch() {
			t.Fatalf("branch %d site has opcode %v", i, op)
		}
		if int32(i) != a.Set.ID(br.Proc, br.Instr) {
			t.Fatalf("branch %d ID mismatch", i)
		}
	}
	_ = mir.Nop
}

// TestEvaluatorDeterminism renders key tables from two independent
// evaluators: byte-identical output is required (seeded workloads, seeded
// Default predictions, stable iteration orders everywhere).
func TestEvaluatorDeterminism(t *testing.T) {
	e1, e2 := New(), New()
	gens := []func(*Evaluator) (string, error){
		func(e *Evaluator) (string, error) { return e.Table2() },
		func(e *Evaluator) (string, error) { return e.Table6() },
		func(e *Evaluator) (string, error) { return e.AblationTable() },
	}
	for i, gen := range gens {
		a, err := gen(e1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := gen(e2)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("generator %d is not deterministic", i)
		}
	}
	g1, err := e1.Graph1()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := e2.Graph1()
	if err != nil {
		t.Fatal(err)
	}
	if g1.TSV() != g2.TSV() {
		t.Error("Graph 1 is not deterministic")
	}
}

// sharedEvalBench returns a benchmark for error-path tests.
func sharedEvalBench(t *testing.T) *suite.Benchmark {
	t.Helper()
	b := suite.Get("grep")
	if b == nil {
		t.Fatal("grep missing from suite")
	}
	return b
}
