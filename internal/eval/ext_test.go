package eval

import (
	"strings"
	"testing"

	"ballarus/internal/core"
	"ballarus/internal/stats"
)

func TestFreqTable(t *testing.T) {
	tbl, err := sharedEval.FreqTable()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl)
	rows, err := sharedEval.FreqQuality()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 23 {
		t.Fatalf("%d rows", len(rows))
	}
	var est, rnd []float64
	for _, r := range rows {
		est = append(est, r.Estimator.Spearman)
		rnd = append(rnd, r.Random.Spearman)
	}
	if stats.Mean(est) <= stats.Mean(rnd)+0.2 {
		t.Errorf("estimator mean %.3f should clearly beat random %.3f", stats.Mean(est), stats.Mean(rnd))
	}
	if stats.Mean(est) < 0.4 {
		t.Errorf("estimator mean correlation %.3f too weak", stats.Mean(est))
	}
}

func TestCrossProfile(t *testing.T) {
	tbl, err := sharedEval.CrossProfileTable()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl)
	rows, err := sharedEval.CrossProfile()
	if err != nil {
		t.Fatal(err)
	}
	var prog, cross, self []float64
	for _, r := range rows {
		prog = append(prog, r.ProgramMiss)
		cross = append(cross, r.CrossMiss)
		self = append(self, r.SelfMiss)
		// Self-perfect lower-bounds the cross profile.
		if r.SelfMiss > r.CrossMiss+1e-9 {
			t.Errorf("%s: self perfect %.1f > cross %.1f", r.Name, r.SelfMiss, r.CrossMiss)
		}
	}
	mp, mc, ms := stats.Mean(prog), stats.Mean(cross), stats.Mean(self)
	t.Logf("means: program-based %.1f%%, profile-based %.1f%%, self-perfect %.1f%%", mp, mc, ms)
	// Paper: program-based is roughly a factor of two worse than
	// profile-based; at minimum it must not beat it on average.
	if mp < mc {
		t.Errorf("program-based (%.1f) should not beat cross-profile-based (%.1f) on average", mp, mc)
	}
	// Fisher-Freudenberger: profiles generalize across datasets, so the
	// cross profile should stay close to the self profile.
	if mc > 2.5*ms+5 {
		t.Errorf("cross profile (%.1f) does not generalize from self (%.1f)", mc, ms)
	}
}

func TestAblationTable(t *testing.T) {
	tbl, err := sharedEval.AblationTable()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl)
	for _, col := range []string{"BTFNT", "NoPostdom", "Voting", "Loop+Rand"} {
		if !strings.Contains(tbl, col) {
			t.Errorf("ablation table missing column %s", col)
		}
	}
}

func TestVotingCombinerReasonable(t *testing.T) {
	runs, err := sharedEval.DefaultRuns()
	if err != nil {
		t.Fatal(err)
	}
	var prio, vote, rnd []float64
	for _, r := range runs {
		prio = append(prio, r.AllMissRate(r.Analysis.Predictions(core.DefaultOrder)).Pred)
		vote = append(vote, r.AllMissRate(r.Analysis.VotePredictions(core.DefaultWeights)).Pred)
		rnd = append(rnd, r.AllMissRate(r.Analysis.LoopRandPredictions()).Pred)
	}
	mp, mv, mr := stats.Mean(prio), stats.Mean(vote), stats.Mean(rnd)
	t.Logf("priority %.1f%%, voting %.1f%%, loop+rand %.1f%%", mp, mv, mr)
	// Voting must clearly beat the Loop+Rand baseline and be in the same
	// league as the priority combiner (the paper left the comparison
	// open; both are legitimate combiners).
	if mv >= mr {
		t.Errorf("voting (%.1f) should beat loop+rand (%.1f)", mv, mr)
	}
	if mv > mp+8 {
		t.Errorf("voting (%.1f) is far worse than the priority order (%.1f)", mv, mp)
	}
}

func TestSubsetExperimentExactLongMode(t *testing.T) {
	if testing.Short() {
		t.Skip("exact C(22,11) experiment skipped in -short mode")
	}
	s, res, err := sharedEval.SubsetExperiment(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 705432 {
		t.Fatalf("exact experiment ran %d trials, want C(22,11) = 705432", res.Trials)
	}
	// The counts must sum to the trials and concentrate sharply, and the
	// sampled experiment must agree on the most common order.
	sum := 0
	for _, c := range res.BestCount {
		sum += c
	}
	if sum != res.Trials {
		t.Fatalf("counts sum to %d", sum)
	}
	if d := res.DistinctOrders(); d < 2 || d > 2000 {
		t.Errorf("distinct orders %d out of plausible range", d)
	}
	sampled := s.SubsetsSampled(11, 5000, 7)
	if res.Ranked()[0] != sampled.Ranked()[0] {
		t.Errorf("exact and sampled experiments disagree on the top order: %v vs %v",
			s.Orders[res.Ranked()[0]], s.Orders[sampled.Ranked()[0]])
	}
}

func TestDynPredTable(t *testing.T) {
	tbl, err := sharedEval.DynPredTable()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl)
	rows, err := sharedEval.DynPred()
	if err != nil {
		t.Fatal(err)
	}
	var heur, perf, twoBit []float64
	for _, r := range rows {
		heur = append(heur, r.Heur)
		perf = append(perf, r.Perfect)
		twoBit = append(twoBit, r.TwoBit)
	}
	mh, mp, m2 := stats.Mean(heur), stats.Mean(perf), stats.Mean(twoBit)
	t.Logf("means: Ball-Larus %.1f%%, perfect static %.1f%%, 2-bit %.1f%%", mh, mp, m2)
	// McFarling-Hennessy: profile-based static is comparable to dynamic
	// hardware (within a few points either way).
	if m2 > mp+10 || mp > m2+10 {
		t.Errorf("perfect static (%.1f) and 2-bit (%.1f) should be comparable", mp, m2)
	}
	// Program-based prediction sits above both but far below random.
	if mh <= mp-1e-9 {
		t.Errorf("program-based (%.1f) cannot beat profile-based (%.1f)", mh, mp)
	}
	if mh > 45 {
		t.Errorf("program-based mean %.1f%% too weak", mh)
	}
	// History-based predictors: on mean, TAGE should be at least as good
	// as the one-bit baseline, and gshare should beat one-bit too.
	var oneBit, gshare, tage []float64
	for _, r := range rows {
		oneBit = append(oneBit, r.OneBit)
		gshare = append(gshare, r.Gshare)
		tage = append(tage, r.Tage)
	}
	m1, mg, mt := stats.Mean(oneBit), stats.Mean(gshare), stats.Mean(tage)
	t.Logf("means: 1-bit %.1f%%, gshare %.1f%%, tage %.1f%%", m1, mg, mt)
	if mg > m1 || mt > m1 {
		t.Errorf("history predictors (gshare %.1f, tage %.1f) should not lose to 1-bit (%.1f) on mean", mg, mt, m1)
	}
}

func TestRunErrorPaths(t *testing.T) {
	b := sharedEvalBench(t)
	if _, err := sharedEval.Run(b, 99, false); err == nil {
		t.Error("bad dataset index must error")
	}
	if _, err := sharedEval.Run(b, -1, false); err == nil {
		t.Error("negative dataset index must error")
	}
}
