package eval

import (
	"context"
	"fmt"
	"strings"
	"text/tabwriter"

	"ballarus/internal/core"
	"ballarus/internal/orders"
	"ballarus/internal/stats"
	"ballarus/internal/suite"
)

// table is a small helper around tabwriter.
type table struct {
	b strings.Builder
	w *tabwriter.Writer
}

func newTable(title string) *table {
	t := &table{}
	t.b.WriteString(title)
	t.b.WriteString("\n")
	t.w = tabwriter.NewWriter(&t.b, 2, 4, 2, ' ', 0)
	return t
}

func (t *table) row(cells ...string) {
	fmt.Fprintln(t.w, strings.Join(cells, "\t"))
}

func (t *table) String() string {
	t.w.Flush()
	return t.b.String()
}

func pct(v float64) string { return fmt.Sprintf("%.0f", v) }

// Table1 reproduces Table 1: the benchmark list with language group and
// code size (MIPS-style 4-byte instruction encoding).
func (e *Evaluator) Table1() (string, error) {
	t := newTable("Table 1: benchmarks, by group, sorted by code size")
	t.row("Program", "Description", "Grp", "Size(KB)", "Procs")
	for _, grp := range []bool{false, true} {
		type row struct {
			b  *suite.Benchmark
			kb float64
			np int
		}
		var rows []row
		for _, b := range suite.All() {
			if b.FP != grp {
				continue
			}
			prog, err := b.Compile()
			if err != nil {
				return "", err
			}
			rows = append(rows, row{b, float64(prog.NumInstrs()*4) / 1024, len(prog.Procs)})
		}
		for i := 0; i < len(rows); i++ {
			for j := i + 1; j < len(rows); j++ {
				if rows[j].kb > rows[i].kb {
					rows[i], rows[j] = rows[j], rows[i]
				}
			}
		}
		for _, r := range rows {
			g := "C"
			if r.b.FP {
				g = "F"
			}
			t.row(r.b.Name, r.b.Desc, g, fmt.Sprintf("%.1f", r.kb), fmt.Sprintf("%d", r.np))
		}
	}
	return t.String(), nil
}

// Table2 reproduces Table 2: loop vs non-loop branch breakdown with the
// loop predictor, the naive target/random strategies, and "Big" branches.
func (e *Evaluator) Table2() (string, error) {
	runs, err := e.DefaultRuns()
	if err != nil {
		return "", err
	}
	t := newTable("Table 2: dynamic breakdown of loop vs non-loop branches (miss%/perfect%)")
	t.row("Program", "Loop Prd/Prf", "%NL", "Tgt/Prf", "Rnd/Prf", "Big(n)", "Big%")
	var loopPrd, loopPrf, nlPct, tgt, rnd []float64
	for _, r := range runs {
		s := r.Split()
		loopRate := ratePair(s.LoopPredMiss, s.LoopPerfMiss, s.LoopDyn)
		tgtRate := ratePair(s.TgtMiss, s.NLPerfMiss, s.NLDyn)
		rndRate := ratePair(s.RndMiss, s.NLPerfMiss, s.NLDyn)
		bn, bp := r.Big()
		t.row(r.Bench.Name, loopRate, pct(s.PctNonLoop()), tgtRate, rndRate,
			fmt.Sprintf("%d", bn), pct(bp))
		if s.LoopDyn > 0 {
			loopPrd = append(loopPrd, stats.Percent(s.LoopPredMiss, s.LoopDyn))
			loopPrf = append(loopPrf, stats.Percent(s.LoopPerfMiss, s.LoopDyn))
		}
		nlPct = append(nlPct, s.PctNonLoop())
		if s.NLDyn > 0 {
			tgt = append(tgt, stats.Percent(s.TgtMiss, s.NLDyn))
			rnd = append(rnd, stats.Percent(s.RndMiss, s.NLDyn))
		}
	}
	t.row("MEAN", meanPair(loopPrd, loopPrf), pct(stats.Mean(nlPct)),
		pct(stats.Mean(tgt)), pct(stats.Mean(rnd)), "", "")
	t.row("Std.Dev", stdPair(loopPrd, loopPrf), pct(stats.StdDev(nlPct)),
		pct(stats.StdDev(tgt)), pct(stats.StdDev(rnd)), "", "")
	return t.String(), nil
}

func ratePair(miss, perfect, dyn int64) string {
	if dyn == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f/%.0f", stats.Percent(miss, dyn), stats.Percent(perfect, dyn))
}

func meanPair(a, b []float64) string {
	return fmt.Sprintf("%.0f/%.0f", stats.Mean(a), stats.Mean(b))
}

func stdPair(a, b []float64) string {
	return fmt.Sprintf("%.0f/%.0f", stats.StdDev(a), stats.StdDev(b))
}

// Table3 reproduces Table 3: each heuristic applied in isolation to
// non-loop branches — coverage% and miss/perfect on the covered branches.
// Entries under 1% coverage are blank, and blanks are excluded from the
// mean, exactly as the paper footnotes.
func (e *Evaluator) Table3() (string, error) {
	runs, err := e.DefaultRuns()
	if err != nil {
		return "", err
	}
	hs := core.SectionOrder
	t := newTable("Table 3: heuristics in isolation on non-loop branches (cov% miss/perfect)")
	header := []string{"Program", "%NL"}
	for _, h := range hs {
		header = append(header, h.String())
	}
	t.row(header...)
	sums := make(map[core.Heuristic][]float64)
	perfs := make(map[core.Heuristic][]float64)
	for _, r := range runs {
		s := r.Split()
		cells := []string{r.Bench.Name, pct(s.PctNonLoop())}
		for _, h := range hs {
			cov, rate := r.HeurIsolated(h)
			if cov < 1 {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, fmt.Sprintf("%s %s", pct(cov), rate))
			sums[h] = append(sums[h], rate.Pred)
			perfs[h] = append(perfs[h], rate.Perfect)
		}
		t.row(cells...)
	}
	mean := []string{"MEAN", ""}
	std := []string{"Std.Dev", ""}
	for _, h := range hs {
		mean = append(mean, meanPair(sums[h], perfs[h]))
		std = append(std, stdPair(sums[h], perfs[h]))
	}
	t.row(mean...)
	t.row(std...)
	return t.String(), nil
}

// benchDataAll collapses the default runs for the ordering experiments,
// excluding matrix300 (as the paper does, to get an even 22).
func (e *Evaluator) benchDataAll() ([]*orders.BenchData, []*Run, error) {
	return e.benchDataAllCtx(context.Background())
}

func (e *Evaluator) benchDataAllCtx(ctx context.Context) ([]*orders.BenchData, []*Run, error) {
	runs, err := e.DefaultRunsCtx(ctx)
	if err != nil {
		return nil, nil, err
	}
	var bd []*orders.BenchData
	var kept []*Run
	for _, r := range runs {
		if r.Bench.Name == "matrix300" {
			continue
		}
		bd = append(bd, orders.Collapse(r.Analysis, r.Profile, r.Bench.Name))
		kept = append(kept, r)
	}
	return bd, kept, nil
}

// BenchData returns the 22 collapsed benchmark populations (matrix300
// excluded) the ordering experiments run over, in canonical suite order.
// Shard runners use this as the deterministic input every replica agrees
// on.
func (e *Evaluator) BenchData(ctx context.Context) ([]*orders.BenchData, error) {
	bd, _, err := e.benchDataAllCtx(ctx)
	return bd, err
}

// Sweep returns the 5040-order x 22-benchmark miss matrix (cached).
func (e *Evaluator) Sweep() (*orders.Sweep, error) {
	return e.SweepCtx(context.Background())
}

// SweepCtx is Sweep with cancellation.
func (e *Evaluator) SweepCtx(ctx context.Context) (*orders.Sweep, error) {
	e.mu.Lock()
	if e.sweep != nil {
		s := e.sweep
		e.mu.Unlock()
		return s, nil
	}
	e.mu.Unlock()
	bd, _, err := e.benchDataAllCtx(ctx)
	if err != nil {
		return nil, err
	}
	s, err := orders.NewSweepCtx(ctx, bd)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.sweep = s
	e.mu.Unlock()
	return s, nil
}

// SubsetExperiment runs the C(22,11) generalization experiment. trials <= 0
// runs it exactly (705,432 trials); otherwise a random sample of that size.
func (e *Evaluator) SubsetExperiment(trials int) (*orders.Sweep, *orders.SubsetResult, error) {
	return e.SubsetExperimentCtx(context.Background(), trials, nil)
}

// SubsetExperimentCtx is SubsetExperiment with cancellation and an
// optional progress callback (cumulative trials, total trials).
func (e *Evaluator) SubsetExperimentCtx(ctx context.Context, trials int, progress func(done, total int64)) (*orders.Sweep, *orders.SubsetResult, error) {
	s, err := e.SweepCtx(ctx)
	if err != nil {
		return nil, nil, err
	}
	opts := orders.SubsetOpts{Progress: progress}
	var res *orders.SubsetResult
	if trials <= 0 {
		res, err = s.SubsetsOpts(ctx, 11, opts)
	} else {
		res, err = s.SubsetsSampledOpts(ctx, 11, trials, 1993, opts)
	}
	if err != nil {
		return nil, nil, err
	}
	return s, res, nil
}

// Table4 reproduces Table 4: the 10 most common best orders from the
// subset experiment, their trial share, and their average miss rate over
// all 22 benchmarks.
func (e *Evaluator) Table4(trials int) (string, error) {
	s, res, err := e.SubsetExperiment(trials)
	if err != nil {
		return "", err
	}
	avg := s.Avg(nil)
	t := newTable(fmt.Sprintf(
		"Table 4: 10 most common orders over %d subset trials (%d distinct orders chosen)",
		res.Trials, res.DistinctOrders()))
	t.row("%Trials", "MissRate", "Order")
	ranked := res.Ranked()
	for i := 0; i < 10 && i < len(ranked); i++ {
		o := ranked[i]
		t.row(
			fmt.Sprintf("%.2f", 100*float64(res.BestCount[o])/float64(res.Trials)),
			fmt.Sprintf("%.2f", avg[o]),
			s.Orders[o].String(),
		)
	}
	return t.String(), nil
}

// Table5 reproduces Table 5: the heuristics applied in the paper's
// prioritized order (Point, Call, Opcode, Return, Store, Loop, Guard) with
// first-applicable attribution, plus the Default.
func (e *Evaluator) Table5() (string, error) {
	runs, err := e.DefaultRuns()
	if err != nil {
		return "", err
	}
	order := core.DefaultOrder
	t := newTable("Table 5: prioritized heuristics " + order.String() + " (cov% miss/perfect)")
	header := []string{"Program"}
	for _, h := range order {
		header = append(header, h.String())
	}
	header = append(header, "Default")
	t.row(header...)
	missCol := make(map[int][]float64)
	perfCol := make(map[int][]float64)
	for _, r := range runs {
		cov, rates := r.Attributed(order)
		cells := []string{r.Bench.Name}
		for col, h := range order {
			if cov[h] < 1 {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, fmt.Sprintf("%s %s", pct(cov[h]), rates[h]))
			missCol[col] = append(missCol[col], rates[h].Pred)
			perfCol[col] = append(perfCol[col], rates[h].Perfect)
		}
		if cov[7] < 1 {
			cells = append(cells, "-")
		} else {
			cells = append(cells, fmt.Sprintf("%s %s", pct(cov[7]), rates[7]))
			missCol[7] = append(missCol[7], rates[7].Pred)
			perfCol[7] = append(perfCol[7], rates[7].Perfect)
		}
		t.row(cells...)
	}
	mean := []string{"MEAN"}
	std := []string{"Std.Dev"}
	for col := 0; col <= 7; col++ {
		mean = append(mean, meanPair(missCol[col], perfCol[col]))
		std = append(std, stdPair(missCol[col], perfCol[col]))
	}
	t.row(mean...)
	t.row(std...)
	return t.String(), nil
}

// Table6 reproduces Table 6: final results — heuristic coverage and miss,
// with Default added, over all branches, and the Loop+Rand baseline.
func (e *Evaluator) Table6() (string, error) {
	runs, err := e.DefaultRuns()
	if err != nil {
		return "", err
	}
	t := newTable("Table 6: final results (miss%/perfect%)")
	t.row("Program", "Heuristics", "+Default", "All", "Loop+Rand")
	for _, r := range runs {
		f := r.Final(core.DefaultOrder)
		t.row(r.Bench.Name,
			fmt.Sprintf("%s %s", pct(f.HeurCoverage), f.Heur),
			f.WithDefault.String(),
			f.All.String(),
			f.LoopRand.String(),
		)
	}
	return t.String(), nil
}

// Table7 reproduces Table 7: means and standard deviations of Table 6 for
// all benchmarks and for "most" (excluding the four benchmarks whose
// non-loop branches concentrate in a handful of sites: eqntott, grep,
// tomcatv, matrix300), with Tgt and Rnd for comparison.
func (e *Evaluator) Table7() (string, error) {
	runs, err := e.DefaultRuns()
	if err != nil {
		return "", err
	}
	excluded := map[string]bool{"eqntott": true, "grep": true, "tomcatv": true, "matrix300": true}
	t := newTable("Table 7: summary of final results (mean ± std dev)")
	t.row("Set", "Metric", "Heuristics", "+Default", "All", "Loop+Rand", "Tgt(NL)", "Rnd(NL)")
	for _, most := range []bool{false, true} {
		var heur, def, all, lr, tgt, rnd []float64
		var heurP, defP, allP []float64
		for _, r := range runs {
			if most && excluded[r.Bench.Name] {
				continue
			}
			f := r.Final(core.DefaultOrder)
			s := r.Split()
			heur = append(heur, f.Heur.Pred)
			heurP = append(heurP, f.Heur.Perfect)
			def = append(def, f.WithDefault.Pred)
			defP = append(defP, f.WithDefault.Perfect)
			all = append(all, f.All.Pred)
			allP = append(allP, f.All.Perfect)
			lr = append(lr, f.LoopRand.Pred)
			if s.NLDyn > 0 {
				tgt = append(tgt, stats.Percent(s.TgtMiss, s.NLDyn))
				rnd = append(rnd, stats.Percent(s.RndMiss, s.NLDyn))
			}
		}
		name := "(all)"
		if most {
			name = "(most)"
		}
		t.row(name, "mean",
			meanPair(heur, heurP), meanPair(def, defP), meanPair(all, allP),
			pct(stats.Mean(lr)), pct(stats.Mean(tgt)), pct(stats.Mean(rnd)))
		t.row(name, "std",
			stdPair(heur, heurP), stdPair(def, defP), stdPair(all, allP),
			pct(stats.StdDev(lr)), pct(stats.StdDev(tgt)), pct(stats.StdDev(rnd)))
	}
	return t.String(), nil
}
