// Package eval is the reproduction harness: it runs the benchmark suite
// under the interpreter, joins edge profiles with the static analysis, and
// regenerates every table (1-7) and graph (1-13) of the paper.
package eval

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"ballarus/internal/core"
	"ballarus/internal/interp"
	"ballarus/internal/mir"
	"ballarus/internal/orders"
	"ballarus/internal/profile"
	"ballarus/internal/service"
	"ballarus/internal/suite"
)

// Run is one benchmark executed on one dataset, with its analysis joined.
type Run struct {
	Bench    *suite.Benchmark
	Dataset  suite.Dataset
	Prog     *mir.Program
	Analysis *core.Analysis
	Profile  *profile.Profile
	Steps    int64
	Output   string
	Events   []interp.Event // non-nil only when traced
	TailLen  int64
}

// Evaluator caches compiled programs, analyses, and runs.
type Evaluator struct {
	Opts core.Options

	mu       sync.Mutex
	analyses sync.Map // benchmark name -> *analysisEntry
	runs     map[string]*Run
	sweep    *orders.Sweep
}

// analysisEntry memoizes one benchmark's analysis; the Once means
// concurrent requests share a single compile+analyze instead of
// serializing every benchmark behind one evaluator lock.
type analysisEntry struct {
	once sync.Once
	a    *core.Analysis
	err  error
}

// New creates an evaluator with paper-faithful options.
func New() *Evaluator {
	return &Evaluator{runs: map[string]*Run{}}
}

// Analysis returns the (cached) static analysis for a benchmark.
func (e *Evaluator) Analysis(b *suite.Benchmark) (*core.Analysis, error) {
	ei, _ := e.analyses.LoadOrStore(b.Name, &analysisEntry{})
	ent := ei.(*analysisEntry)
	ent.once.Do(func() {
		prog, err := b.Compile()
		if err != nil {
			ent.err = err
			return
		}
		ent.a, ent.err = core.Analyze(prog, e.Opts)
	})
	return ent.a, ent.err
}

// Run executes benchmark b on dataset index ds (cached). When traced is
// true the event trace is collected (needed for the Section 6 graphs).
func (e *Evaluator) Run(b *suite.Benchmark, ds int, traced bool) (*Run, error) {
	key := fmt.Sprintf("%s/%d/%v", b.Name, ds, traced)
	e.mu.Lock()
	if r, ok := e.runs[key]; ok {
		e.mu.Unlock()
		return r, nil
	}
	e.mu.Unlock()
	a, err := e.Analysis(b)
	if err != nil {
		return nil, err
	}
	if ds < 0 || ds >= len(b.Data) {
		return nil, fmt.Errorf("eval: %s has no dataset %d", b.Name, ds)
	}
	res, err := interp.Run(a.Prog, interp.Config{
		Input:         b.Data[ds].Input,
		Budget:        b.Budget,
		CollectEvents: traced,
	})
	if err != nil {
		return nil, fmt.Errorf("eval: %s/%s: %w", b.Name, b.Data[ds].Name, err)
	}
	r := &Run{
		Bench:    b,
		Dataset:  b.Data[ds],
		Prog:     a.Prog,
		Analysis: a,
		Profile:  res.Profile,
		Steps:    res.Steps,
		Output:   res.Output,
		Events:   res.Events,
		TailLen:  res.TailLen,
	}
	e.mu.Lock()
	e.runs[key] = r
	e.mu.Unlock()
	return r, nil
}

// DefaultRuns executes every benchmark on its default dataset, in suite
// order, in parallel.
func (e *Evaluator) DefaultRuns() ([]*Run, error) {
	return e.DefaultRunsCtx(context.Background())
}

// DefaultRunsCtx is DefaultRuns with cancellation: the fan-out is
// bounded by the CPU count via the service worker pool, and the first
// error (or ctx expiry) cancels the remaining work.
func (e *Evaluator) DefaultRunsCtx(ctx context.Context) ([]*Run, error) {
	benches := suite.All()
	runs := make([]*Run, len(benches))
	err := service.Fan(ctx, runtime.GOMAXPROCS(0), len(benches), func(ctx context.Context, i int) error {
		var err error
		runs[i], err = e.Run(benches[i], 0, false)
		return err
	})
	if err != nil {
		return nil, err
	}
	return runs, nil
}

// ---- Per-run metric computations ----

// Split is the loop/non-loop decomposition of one run's dynamic branches.
type Split struct {
	LoopDyn, NLDyn int64

	LoopPredMiss int64 // loop predictor misses on loop branches
	LoopPerfMiss int64 // perfect misses on loop branches

	NLPerfMiss int64 // perfect misses on non-loop branches
	TgtMiss    int64 // always-predict-target misses on non-loop branches
	RndMiss    int64 // random-prediction misses on non-loop branches
}

// Split computes the Table 2 decomposition.
func (r *Run) Split() Split {
	var s Split
	for i := range r.Analysis.Branches {
		b := &r.Analysis.Branches[i]
		dyn := r.Profile.Executed(b.ID)
		if dyn == 0 {
			continue
		}
		if b.Class == core.LoopBranch {
			s.LoopDyn += dyn
			s.LoopPredMiss += r.Profile.Misses(b.ID, b.LoopPred.Taken())
			s.LoopPerfMiss += r.Profile.PerfectMisses(b.ID)
		} else {
			s.NLDyn += dyn
			s.NLPerfMiss += r.Profile.PerfectMisses(b.ID)
			s.TgtMiss += r.Profile.Misses(b.ID, true)
			s.RndMiss += r.Profile.Misses(b.ID, b.DefaultPred.Taken())
		}
	}
	return s
}

// PctNonLoop returns the percentage of all dynamic branches that are
// non-loop (Table 2's %All column).
func (s Split) PctNonLoop() float64 {
	t := s.LoopDyn + s.NLDyn
	if t == 0 {
		return 0
	}
	return 100 * float64(s.NLDyn) / float64(t)
}

// Big reports the paper's "Big" columns: how many distinct non-loop
// branches each contribute more than 5% of dynamic non-loop branches, and
// the share those branches account for.
func (r *Run) Big() (count int, pct float64) {
	var nl int64
	for i := range r.Analysis.Branches {
		b := &r.Analysis.Branches[i]
		if b.Class == core.NonLoop {
			nl += r.Profile.Executed(b.ID)
		}
	}
	if nl == 0 {
		return 0, 0
	}
	var bigDyn int64
	for i := range r.Analysis.Branches {
		b := &r.Analysis.Branches[i]
		if b.Class != core.NonLoop {
			continue
		}
		dyn := r.Profile.Executed(b.ID)
		if 20*dyn > nl { // more than 5%
			count++
			bigDyn += dyn
		}
	}
	return count, 100 * float64(bigDyn) / float64(nl)
}

// HeurIsolated reports heuristic h applied in isolation over non-loop
// branches: its dynamic coverage (percent of non-loop branches), and the
// C/D miss rates on the branches it covers (Table 3).
func (r *Run) HeurIsolated(h core.Heuristic) (coverage float64, rate profile.Rate) {
	var nl, cov, miss, perf int64
	for i := range r.Analysis.Branches {
		b := &r.Analysis.Branches[i]
		if b.Class != core.NonLoop {
			continue
		}
		dyn := r.Profile.Executed(b.ID)
		nl += dyn
		p := b.Heur[h]
		if p == core.PredNone || dyn == 0 {
			continue
		}
		cov += dyn
		miss += r.Profile.Misses(b.ID, p.Taken())
		perf += r.Profile.PerfectMisses(b.ID)
	}
	if nl == 0 {
		return 0, profile.Rate{}
	}
	return 100 * float64(cov) / float64(nl), profile.MakeRate(miss, perf, cov)
}

// Attributed reports, under an order, each heuristic's first-applicable
// coverage and miss rates plus the Default's (Table 5). Indices 0..6 are
// heuristics (by core ID); index 7 is the Default.
func (r *Run) Attributed(order core.Order) (coverage [8]float64, rates [8]profile.Rate) {
	var nl int64
	var cov, miss, perf [8]int64
	for i := range r.Analysis.Branches {
		b := &r.Analysis.Branches[i]
		if b.Class != core.NonLoop {
			continue
		}
		dyn := r.Profile.Executed(b.ID)
		if dyn == 0 {
			continue
		}
		nl += dyn
		pred, by, ok := b.PredictWith(order)
		slot := 7
		if ok {
			slot = int(by)
		}
		cov[slot] += dyn
		miss[slot] += r.Profile.Misses(b.ID, pred.Taken())
		perf[slot] += r.Profile.PerfectMisses(b.ID)
	}
	for s := 0; s < 8; s++ {
		if nl > 0 {
			coverage[s] = 100 * float64(cov[s]) / float64(nl)
		}
		rates[s] = profile.MakeRate(miss[s], perf[s], cov[s])
	}
	return coverage, rates
}

// Final is the Table 6 row for one benchmark.
type Final struct {
	HeurCoverage float64      // % of non-loop branches some heuristic covers
	Heur         profile.Rate // miss on covered non-loop branches
	WithDefault  profile.Rate // miss on all non-loop branches
	All          profile.Rate // miss on all branches (loop + non-loop)
	LoopRand     profile.Rate // loop predictor + random, all branches
}

// Final computes the Table 6 row under an order.
func (r *Run) Final(order core.Order) Final {
	var nl, cov, covMiss, covPerf int64
	var nlMiss, nlPerf int64
	var allMiss, allPerf, allDyn int64
	var lrMiss int64
	for i := range r.Analysis.Branches {
		b := &r.Analysis.Branches[i]
		dyn := r.Profile.Executed(b.ID)
		if dyn == 0 {
			continue
		}
		perf := r.Profile.PerfectMisses(b.ID)
		allDyn += dyn
		allPerf += perf
		if b.Class == core.LoopBranch {
			m := r.Profile.Misses(b.ID, b.LoopPred.Taken())
			allMiss += m
			lrMiss += m
			continue
		}
		nl += dyn
		nlPerf += perf
		pred, _, ok := b.PredictWith(order)
		m := r.Profile.Misses(b.ID, pred.Taken())
		nlMiss += m
		allMiss += m
		lrMiss += r.Profile.Misses(b.ID, b.DefaultPred.Taken())
		if ok {
			cov += dyn
			covMiss += m
			covPerf += perf
		}
	}
	f := Final{
		Heur:        profile.MakeRate(covMiss, covPerf, cov),
		WithDefault: profile.MakeRate(nlMiss, nlPerf, nl),
		All:         profile.MakeRate(allMiss, allPerf, allDyn),
		LoopRand:    profile.MakeRate(lrMiss, allPerf, allDyn),
	}
	if nl > 0 {
		f.HeurCoverage = 100 * float64(cov) / float64(nl)
	}
	return f
}

// AllMissRate returns the miss rate over every dynamic branch for an
// arbitrary prediction vector (used by Graph 13 and ablations).
func (r *Run) AllMissRate(preds []core.Prediction) profile.Rate {
	var miss, perf, dyn int64
	for id := range preds {
		d := r.Profile.Executed(id)
		if d == 0 {
			continue
		}
		dyn += d
		perf += r.Profile.PerfectMisses(id)
		miss += r.Profile.Misses(id, preds[id].Taken())
	}
	return profile.MakeRate(miss, perf, dyn)
}
