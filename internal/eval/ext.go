package eval

import (
	"fmt"

	"ballarus/internal/core"
	"ballarus/internal/dynpred"
	"ballarus/internal/freq"
	"ballarus/internal/interp"
	"ballarus/internal/stats"
	"ballarus/internal/suite"
	"ballarus/internal/trace"
)

// FreqRow is one benchmark's static-profile-estimation quality.
type FreqRow struct {
	Name      string
	Estimator freq.Quality
	Uniform   freq.Quality
	Random    freq.Quality
}

// FreqQuality runs the profile-estimation extension over the suite: how
// well do Ball-Larus predictions estimate block execution frequencies
// without running the program (the application Wall evaluated with
// "poor results" for his estimators)?
func (e *Evaluator) FreqQuality() ([]FreqRow, error) {
	var rows []FreqRow
	for _, b := range suite.All() {
		a, err := e.Analysis(b)
		if err != nil {
			return nil, err
		}
		res, err := interp.Run(a.Prog, interp.Config{
			Input:              b.Data[0].Input,
			Budget:             b.Budget,
			CollectInstrCounts: true,
		})
		if err != nil {
			return nil, fmt.Errorf("eval: freq %s: %w", b.Name, err)
		}
		act := freq.Actual(a, res.InstrCounts)
		rows = append(rows, FreqRow{
			Name:      b.Name,
			Estimator: freq.Evaluate(a, freq.Estimate(a, core.DefaultOrder, freq.Options{}), act),
			Uniform:   freq.Evaluate(a, freq.Uniform(a), act),
			Random:    freq.Evaluate(a, freq.Random(a), act),
		})
	}
	return rows, nil
}

// FreqTable renders the extension results.
func (e *Evaluator) FreqTable() (string, error) {
	rows, err := e.FreqQuality()
	if err != nil {
		return "", err
	}
	t := newTable("Extension: static profile estimation from predictions (Spearman / top-25% overlap)")
	t.row("Program", "Estimator", "Uniform", "Random")
	var es, us, rs []float64
	for _, r := range rows {
		t.row(r.Name,
			fmt.Sprintf("%.2f %.2f", r.Estimator.Spearman, r.Estimator.Overlap),
			fmt.Sprintf("%.2f %.2f", r.Uniform.Spearman, r.Uniform.Overlap),
			fmt.Sprintf("%.2f %.2f", r.Random.Spearman, r.Random.Overlap))
		es = append(es, r.Estimator.Spearman)
		us = append(us, r.Uniform.Spearman)
		rs = append(rs, r.Random.Spearman)
	}
	t.row("MEAN",
		fmt.Sprintf("%.2f", stats.Mean(es)),
		fmt.Sprintf("%.2f", stats.Mean(us)),
		fmt.Sprintf("%.2f", stats.Mean(rs)))
	return t.String(), nil
}

// CrossProfileRow compares program-based prediction against profile-based
// prediction where the profile comes from a *different* dataset — the
// Fisher-Freudenberger methodology the paper benchmarks itself against
// ("program-based prediction is a factor of two worse, on the average,
// than profile-based prediction").
type CrossProfileRow struct {
	Name        string
	ProgramMiss float64 // Ball-Larus heuristic, all branches, dataset B
	CrossMiss   float64 // perfect predictor trained on dataset A, applied to B
	SelfMiss    float64 // perfect predictor on dataset B itself (lower bound)
}

// CrossProfile runs the comparison for every benchmark with at least two
// datasets: train on dataset 0, test on dataset 1.
func (e *Evaluator) CrossProfile() ([]CrossProfileRow, error) {
	var rows []CrossProfileRow
	for _, b := range suite.All() {
		if len(b.Data) < 2 {
			continue
		}
		a, err := e.Analysis(b)
		if err != nil {
			return nil, err
		}
		train, err := e.Run(b, 0, false)
		if err != nil {
			return nil, err
		}
		test, err := e.Run(b, 1, false)
		if err != nil {
			return nil, err
		}
		// Profile-based static predictions from the training run.
		crossPreds := make([]core.Prediction, len(a.Branches))
		for id := range crossPreds {
			if train.Profile.PerfectTaken(id) {
				crossPreds[id] = core.PredTaken
			} else {
				crossPreds[id] = core.PredFall
			}
		}
		prog := test.AllMissRate(a.Predictions(core.DefaultOrder))
		cross := test.AllMissRate(crossPreds)
		rows = append(rows, CrossProfileRow{
			Name:        b.Name,
			ProgramMiss: prog.Pred,
			CrossMiss:   cross.Pred,
			SelfMiss:    cross.Perfect,
		})
	}
	return rows, nil
}

// CrossProfileTable renders the comparison.
func (e *Evaluator) CrossProfileTable() (string, error) {
	rows, err := e.CrossProfile()
	if err != nil {
		return "", err
	}
	t := newTable("Extension: program-based vs cross-dataset profile-based prediction (all-branch miss %)")
	t.row("Program", "ProgramBased", "ProfileBased", "SelfPerfect")
	var ps, cs, ss []float64
	for _, r := range rows {
		t.row(r.Name, pct(r.ProgramMiss), pct(r.CrossMiss), pct(r.SelfMiss))
		ps = append(ps, r.ProgramMiss)
		cs = append(cs, r.CrossMiss)
		ss = append(ss, r.SelfMiss)
	}
	t.row("MEAN", pct(stats.Mean(ps)), pct(stats.Mean(cs)), pct(stats.Mean(ss)))
	return t.String(), nil
}

// DynPredRow compares static predictors against the dynamic hardware
// predictors of the paper's related work on one benchmark's trace.
type DynPredRow struct {
	Name    string
	Heur    float64 // Ball-Larus program-based static, miss %
	Perfect float64 // profile-based static (perfect for this run)
	OneBit  float64 // per-branch last-direction hardware predictor
	TwoBit  float64 // per-branch two-bit saturating counter
	Bimodal float64 // shared PC-indexed counter table (aliasing)
	Gshare  float64 // global history XOR PC (McFarling)
	Tage    float64 // tagged geometric-history tables (Seznec)
}

// dynRowBackends maps the registry's dynamic backends onto DynPredRow
// fields, in display order.
var dynRowBackends = []struct {
	name  string
	field func(*DynPredRow) *float64
}{
	{dynpred.NameOneBit, func(r *DynPredRow) *float64 { return &r.OneBit }},
	{dynpred.NameTwoBit, func(r *DynPredRow) *float64 { return &r.TwoBit }},
	{dynpred.NameBimodal, func(r *DynPredRow) *float64 { return &r.Bimodal }},
	{dynpred.NameGshare, func(r *DynPredRow) *float64 { return &r.Gshare }},
	{dynpred.NameTAGE, func(r *DynPredRow) *float64 { return &r.Tage }},
}

// DynPred replays every benchmark's default-dataset trace under the
// static pair and each registered dynamic backend — quantifying
// McFarling & Hennessy's claim (profile-based static ≈ dynamic
// hardware) and how far history-based predictors push past both.
func (e *Evaluator) DynPred() ([]DynPredRow, error) {
	var rows []DynPredRow
	for _, b := range suite.All() {
		r, err := e.Run(b, 0, true)
		if err != nil {
			return nil, err
		}
		n := r.Profile.Set.Len()
		heur := trace.PredictionVector(r.Analysis.Predictions(core.DefaultOrder))
		perfect := trace.PerfectVector(r.Profile)
		row := DynPredRow{
			Name:    b.Name,
			Heur:    dynpred.StaticResult(r.Profile, heur).MissRate(),
			Perfect: dynpred.StaticResult(r.Profile, perfect).MissRate(),
		}
		for _, be := range dynRowBackends {
			p, err := dynpred.New(be.name, n)
			if err != nil {
				return nil, err
			}
			*be.field(&row) = dynpred.Replay(r.Events, n, p).MissRate()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// DynPredTable renders the comparison.
func (e *Evaluator) DynPredTable() (string, error) {
	rows, err := e.DynPred()
	if err != nil {
		return "", err
	}
	t := newTable("Extension: static vs dynamic hardware predictors (miss %)")
	t.row("Program", "BallLarus", "PerfectStatic", "1-bit", "2-bit", "Bimodal", "Gshare", "TAGE")
	cols := make([][]float64, 7)
	for _, r := range rows {
		vals := []float64{r.Heur, r.Perfect, r.OneBit, r.TwoBit, r.Bimodal, r.Gshare, r.Tage}
		cells := []string{r.Name}
		for i, v := range vals {
			cells = append(cells, fmt.Sprintf("%.1f", v))
			cols[i] = append(cols[i], v)
		}
		t.row(cells...)
	}
	mean := []string{"MEAN"}
	for _, c := range cols {
		mean = append(mean, fmt.Sprintf("%.1f", stats.Mean(c)))
	}
	t.row(mean...)
	return t.String(), nil
}

// AblationTable renders the DESIGN.md ablations as one table: the
// Ball-Larus predictor vs BTFNT, and strict vs NoPostdom analysis.
func (e *Evaluator) AblationTable() (string, error) {
	runs, err := e.DefaultRuns()
	if err != nil {
		return "", err
	}
	loose := New()
	loose.Opts = core.Options{NoPostdom: true}
	deep := New()
	deep.Opts = core.Options{GuardDepth: 3}
	t := newTable("Extension: ablations and alternative combiner (all-branch miss %)")
	t.row("Program", "BallLarus", "Voting", "BTFNT", "Loop+Rand", "NoPostdom", "DeepGuard")
	var bl, vt, bt, lr, np, dg []float64
	for _, r := range runs {
		blRate := r.AllMissRate(r.Analysis.Predictions(core.DefaultOrder))
		vtRate := r.AllMissRate(r.Analysis.VotePredictions(core.DefaultWeights))
		btRate := r.AllMissRate(r.Analysis.BTFNTPredictions())
		lrRate := r.AllMissRate(r.Analysis.LoopRandPredictions())
		lRun, err := loose.Run(r.Bench, 0, false)
		if err != nil {
			return "", err
		}
		npRate := lRun.AllMissRate(lRun.Analysis.Predictions(core.DefaultOrder))
		dRun, err := deep.Run(r.Bench, 0, false)
		if err != nil {
			return "", err
		}
		dgRate := dRun.AllMissRate(dRun.Analysis.Predictions(core.DefaultOrder))
		t.row(r.Bench.Name,
			fmt.Sprintf("%.1f", blRate.Pred), fmt.Sprintf("%.1f", vtRate.Pred),
			fmt.Sprintf("%.1f", btRate.Pred), fmt.Sprintf("%.1f", lrRate.Pred),
			fmt.Sprintf("%.1f", npRate.Pred), fmt.Sprintf("%.1f", dgRate.Pred))
		bl = append(bl, blRate.Pred)
		vt = append(vt, vtRate.Pred)
		bt = append(bt, btRate.Pred)
		lr = append(lr, lrRate.Pred)
		np = append(np, npRate.Pred)
		dg = append(dg, dgRate.Pred)
	}
	t.row("MEAN",
		fmt.Sprintf("%.1f", stats.Mean(bl)), fmt.Sprintf("%.1f", stats.Mean(vt)),
		fmt.Sprintf("%.1f", stats.Mean(bt)), fmt.Sprintf("%.1f", stats.Mean(lr)),
		fmt.Sprintf("%.1f", stats.Mean(np)), fmt.Sprintf("%.1f", stats.Mean(dg)))
	return t.String(), nil
}
