package eval

import (
	"strings"
	"testing"

	"ballarus/internal/core"
	"ballarus/internal/stats"
	"ballarus/internal/suite"
)

// sharedEval is reused across tests: runs are cached, so the suite
// executes once per package test run.
var sharedEval = New()

func TestTable1(t *testing.T) {
	s, err := sharedEval.Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range suite.Names() {
		if !strings.Contains(s, name) {
			t.Errorf("Table 1 missing %s", name)
		}
	}
	t.Log("\n" + s)
}

func TestTable2Shape(t *testing.T) {
	runs, err := sharedEval.DefaultRuns()
	if err != nil {
		t.Fatal(err)
	}
	var loopPrd, rnd, tgt []float64
	for _, r := range runs {
		s := r.Split()
		if s.LoopDyn+s.NLDyn == 0 {
			t.Errorf("%s: no dynamic branches", r.Bench.Name)
			continue
		}
		if s.LoopDyn > 0 {
			lp := stats.Percent(s.LoopPredMiss, s.LoopDyn)
			loopPrd = append(loopPrd, lp)
			perf := stats.Percent(s.LoopPerfMiss, s.LoopDyn)
			if lp < perf-1e-9 {
				t.Errorf("%s: loop predictor (%f) beats perfect (%f)?!", r.Bench.Name, lp, perf)
			}
		}
		if s.NLDyn > 0 {
			rnd = append(rnd, stats.Percent(s.RndMiss, s.NLDyn))
			tgt = append(tgt, stats.Percent(s.TgtMiss, s.NLDyn))
		}
	}
	// Paper shape: the loop predictor is good (mean ~12%); naive
	// strategies are poor on non-loop branches (~50%).
	if m := stats.Mean(loopPrd); m > 30 {
		t.Errorf("loop predictor mean miss %.1f%%, want well under 30%%", m)
	}
	if m := stats.Mean(rnd); m < 30 || m > 70 {
		t.Errorf("random non-loop mean miss %.1f%%, want near 50%%", m)
	}
	if m := stats.Mean(tgt); m < 20 || m > 80 {
		t.Errorf("target non-loop mean miss %.1f%%, want mediocre (near 50%%)", m)
	}
	tbl, err := sharedEval.Table2()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl)
}

func TestTable3Shape(t *testing.T) {
	tbl, err := sharedEval.Table3()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl)
	runs, err := sharedEval.DefaultRuns()
	if err != nil {
		t.Fatal(err)
	}
	// tomcatv: Guard must mispredict the hot max-update branches (miss
	// well above 50%) and Store must get them right (miss well below 50%).
	for _, r := range runs {
		if r.Bench.Name != "tomcatv" {
			continue
		}
		covG, rateG := r.HeurIsolated(core.Guard)
		covS, rateS := r.HeurIsolated(core.Store)
		if covG < 50 {
			t.Errorf("tomcatv: Guard coverage %.0f%%, want most non-loop branches", covG)
		}
		if rateG.Pred < 60 {
			t.Errorf("tomcatv: Guard miss %.0f%%, want badly wrong (paper: ~99%%)", rateG.Pred)
		}
		if covS < 40 || rateS.Pred > 40 {
			t.Errorf("tomcatv: Store cov %.0f%% miss %.0f%%, want high coverage and low miss", covS, rateS.Pred)
		}
	}
}

func TestTable5And6Shape(t *testing.T) {
	tbl5, err := sharedEval.Table5()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl5)
	tbl6, err := sharedEval.Table6()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl6)
	runs, err := sharedEval.DefaultRuns()
	if err != nil {
		t.Fatal(err)
	}
	var withDef, loopRand, perfAll []float64
	var covs []float64
	for _, r := range runs {
		f := r.Final(core.DefaultOrder)
		withDef = append(withDef, f.WithDefault.Pred)
		loopRand = append(loopRand, f.LoopRand.Pred)
		perfAll = append(perfAll, f.All.Perfect)
		covs = append(covs, f.HeurCoverage)
		// Per-benchmark invariants: perfect lower-bounds everything.
		if f.All.Pred < f.All.Perfect-1e-9 {
			t.Errorf("%s: combined (%.1f) beats perfect (%.1f)", r.Bench.Name, f.All.Pred, f.All.Perfect)
		}
	}
	// Paper shape: the heuristics cover most non-loop branches, and the
	// combined predictor lands between perfect (~10%) and Loop+Rand.
	if m := stats.Mean(covs); m < 55 {
		t.Errorf("mean heuristic coverage %.1f%%, want the majority of non-loop branches", m)
	}
	mWD, mLR, mPerf := stats.Mean(withDef), stats.Mean(loopRand), stats.Mean(perfAll)
	t.Logf("means: +Default %.1f%%, Loop+Rand(NL part counts all) %.1f%%, perfect(all) %.1f%%", mWD, mLR, mPerf)
	if mWD >= 50 {
		t.Errorf("mean +Default miss %.1f%%, want clearly better than random", mWD)
	}
}

func TestTable7(t *testing.T) {
	tbl, err := sharedEval.Table7()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl, "(all)") || !strings.Contains(tbl, "(most)") {
		t.Error("Table 7 must contain (all) and (most) sections")
	}
	t.Log("\n" + tbl)
}

func TestOrdersGraph1(t *testing.T) {
	g, err := sharedEval.Graph1()
	if err != nil {
		t.Fatal(err)
	}
	pts := g.Series[0].Pts
	if len(pts) != 5040 {
		t.Fatalf("Graph 1 has %d points, want 5040", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Fatalf("Graph 1 series not sorted at %d", i)
		}
	}
	spread := pts[len(pts)-1].Y - pts[0].Y
	if spread <= 0 {
		t.Errorf("ordering should matter: spread %.2f", spread)
	}
	t.Log(g.Summary())
}

func TestSubsetExperimentSampled(t *testing.T) {
	tbl, err := sharedEval.Table4(2000)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl)
	g2, err := sharedEval.Graph2(2000)
	if err != nil {
		t.Fatal(err)
	}
	pts := g2.Series[0].Pts
	if len(pts) == 0 || pts[len(pts)-1].Y > 100.0001 {
		t.Errorf("Graph 2 cumulative share out of range")
	}
	g3, err := sharedEval.Graph3(2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(g3.Series[0].Pts) == 0 {
		t.Error("Graph 3 empty")
	}
	t.Log(g2.Summary())
}

func TestGraphSeq(t *testing.T) {
	for n := 4; n <= 11; n++ {
		g, err := sharedEval.GraphSeq(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(g.Series) != 3 {
			t.Fatalf("graph %d: %d series, want 3", n, len(g.Series))
		}
		// Monotone non-decreasing cumulative curves ending near 100.
		for _, s := range g.Series {
			last := -1.0
			for _, p := range s.Pts {
				if p.Y < last-1e-9 {
					t.Fatalf("graph %d series %s not monotone", n, s.Name)
				}
				last = p.Y
			}
			if last < 99.9 {
				t.Errorf("graph %d series %s tops out at %.2f%%", n, s.Name, last)
			}
		}
		t.Log(g.Summary())
	}
	if _, err := sharedEval.GraphSeq(3); err == nil {
		t.Error("GraphSeq(3) should fail")
	}
}

func TestPerfectBeatsOrEqualsOthersOnTrace(t *testing.T) {
	// The perfect static predictor must have the fewest mispredictions.
	r, err := sharedEval.Run(suite.Get("gcc"), 0, true)
	if err != nil {
		t.Fatal(err)
	}
	f := r.Final(core.DefaultOrder)
	if f.All.Perfect > f.All.Pred+1e-9 && f.All.Perfect > f.LoopRand.Pred+1e-9 {
		t.Error("perfect predictor is not a lower bound")
	}
}

func TestGraph12(t *testing.T) {
	g := sharedEval.Graph12()
	if len(g.Series) != 12 {
		t.Fatalf("Graph 12 has %d series, want 12", len(g.Series))
	}
	// Higher miss rates must dominate (reach any level sooner).
	for i := 1; i < 12; i++ {
		if g.Series[i].Pts[0].Y <= g.Series[i-1].Pts[0].Y {
			t.Errorf("model series %d does not dominate %d at s=1", i, i-1)
		}
	}
}

func TestGraph13(t *testing.T) {
	rows, err := sharedEval.Graph13Rows()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rows)
	g, err := sharedEval.Graph13()
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Series[0].Pts {
		h := g.Series[0].Pts[i].Y
		p := g.Series[1].Pts[i].Y
		if p > h+1e-9 {
			t.Errorf("dataset %d: perfect (%.1f) worse than heuristic (%.1f)", i, p, h)
		}
	}
}

func TestTableTSVRender(t *testing.T) {
	g, err := sharedEval.Graph1()
	if err != nil {
		t.Fatal(err)
	}
	tsv := g.TSV()
	if !strings.Contains(tsv, "# series: orders") {
		t.Error("TSV missing series header")
	}
	if len(strings.Split(tsv, "\n")) < 5000 {
		t.Error("TSV suspiciously short")
	}
}
