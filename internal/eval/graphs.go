package eval

import (
	"fmt"
	"sort"
	"strings"

	"ballarus/internal/core"
	"ballarus/internal/suite"
	"ballarus/internal/trace"
)

// Series is one plotted line.
type Series struct {
	Name string
	Note string
	Pts  []trace.Point
}

// Graph is one figure: a set of series with axis labels, renderable as
// TSV blocks (one block per series).
type Graph struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// TSV renders the graph as tab-separated blocks.
func (g *Graph) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n# x: %s, y: %s\n", g.Title, g.XLabel, g.YLabel)
	for _, s := range g.Series {
		fmt.Fprintf(&b, "\n# series: %s", s.Name)
		if s.Note != "" {
			fmt.Fprintf(&b, " (%s)", s.Note)
		}
		b.WriteString("\n")
		for _, p := range s.Pts {
			fmt.Fprintf(&b, "%d\t%.3f\n", p.X, p.Y)
		}
	}
	return b.String()
}

// Summary renders just the per-series notes (headline numbers).
func (g *Graph) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", g.Title)
	for _, s := range g.Series {
		fmt.Fprintf(&b, "  %-12s %s\n", s.Name, s.Note)
	}
	return b.String()
}

// Graph1 reproduces Graph 1: the average non-loop miss rate of every one
// of the 5040 orders (over the 22 benchmarks, matrix300 excluded), sorted
// ascending.
func (e *Evaluator) Graph1() (*Graph, error) {
	s, err := e.Sweep()
	if err != nil {
		return nil, err
	}
	avg := s.SortedAvg(nil)
	pts := make([]trace.Point, len(avg))
	for i, v := range avg {
		pts[i] = trace.Point{X: int64(i), Y: v}
	}
	return &Graph{
		Title:  "Graph 1: average miss rate of all 5040 orderings, sorted",
		XLabel: "order rank",
		YLabel: "avg non-loop miss %",
		Series: []Series{{
			Name: "orders",
			Note: fmt.Sprintf("best %.2f%%, worst %.2f%%", avg[0], avg[len(avg)-1]),
			Pts:  pts,
		}},
	}, nil
}

// Graph2 reproduces Graph 2: cumulative share of subset trials accounted
// for by the most common orders (first 101).
func (e *Evaluator) Graph2(trials int) (*Graph, error) {
	_, res, err := e.SubsetExperiment(trials)
	if err != nil {
		return nil, err
	}
	ranked := res.Ranked()
	n := len(ranked)
	if n > 101 {
		n = 101
	}
	pts := make([]trace.Point, 0, n)
	cum := 0.0
	for i := 0; i < n; i++ {
		cum += 100 * float64(res.BestCount[ranked[i]]) / float64(res.Trials)
		pts = append(pts, trace.Point{X: int64(i + 1), Y: cum})
	}
	note := ""
	if n >= 40 {
		cum40 := 0.0
		for i := 0; i < 40; i++ {
			cum40 += 100 * float64(res.BestCount[ranked[i]]) / float64(res.Trials)
		}
		note = fmt.Sprintf("top 40 orders cover %.1f%% of %d trials; %d distinct orders",
			cum40, res.Trials, res.DistinctOrders())
	}
	return &Graph{
		Title:  "Graph 2: cumulative trial share of the most common orders",
		XLabel: "order rank (by frequency)",
		YLabel: "cumulative % of trials",
		Series: []Series{{Name: "orders", Note: note, Pts: pts}},
	}, nil
}

// Graph3 reproduces Graph 3: the average miss rate (all 22 benchmarks) of
// the most common orders from the subset experiment.
func (e *Evaluator) Graph3(trials int) (*Graph, error) {
	s, res, err := e.SubsetExperiment(trials)
	if err != nil {
		return nil, err
	}
	avg := s.Avg(nil)
	ranked := res.Ranked()
	n := len(ranked)
	if n > 101 {
		n = 101
	}
	pts := make([]trace.Point, 0, n)
	worst := 0.0
	for i := 0; i < n; i++ {
		v := avg[ranked[i]]
		if v > worst {
			worst = v
		}
		pts = append(pts, trace.Point{X: int64(i + 1), Y: v})
	}
	return &Graph{
		Title:  "Graph 3: average miss rate of the most common orders",
		XLabel: "order rank (by frequency)",
		YLabel: "avg non-loop miss %",
		Series: []Series{{
			Name: "orders",
			Note: fmt.Sprintf("worst among common orders %.2f%%", worst),
			Pts:  pts,
		}},
	}, nil
}

// tracedGraphNumber maps the Section 6 figure numbers onto benchmarks:
// Graph 4 is spice2g6's sequence view, Graph 5 its breaks view, then
// gcc, lcc, qpt, xlisp, doduc, fpppp.
var tracedGraphNumber = map[int]string{
	4: "spice2g6", 5: "spice2g6", 6: "gcc", 7: "lcc",
	8: "qpt", 9: "xlisp", 10: "doduc", 11: "fpppp",
}

// GraphSeq reproduces Graphs 4-11: cumulative sequence-length
// distributions for the Loop+Rand, Heuristic, and Perfect predictors over
// one traced benchmark. Graph 5 plots cumulative breaks instead of
// cumulative instructions.
func (e *Evaluator) GraphSeq(number int) (*Graph, error) {
	name, ok := tracedGraphNumber[number]
	if !ok {
		return nil, fmt.Errorf("eval: graph %d is not a sequence graph (4-11)", number)
	}
	b := suite.Get(name)
	r, err := e.Run(b, 0, true)
	if err != nil {
		return nil, err
	}
	breaksView := number == 5
	g := &Graph{
		Title:  fmt.Sprintf("Graph %d: %s cumulative distribution of sequence %s", number, name, map[bool]string{false: "lengths", true: "breaks"}[breaksView]),
		XLabel: "sequence length",
		YLabel: map[bool]string{false: "% of executed instructions in sequences < x", true: "% of breaks in sequences < x"}[breaksView],
	}
	preds := []struct {
		name string
		v    trace.Vector
	}{
		{"Loop+Rand", trace.PredictionVector(r.Analysis.LoopRandPredictions())},
		{"Heuristic", trace.PredictionVector(r.Analysis.Predictions(core.DefaultOrder))},
		{"Perfect", trace.PerfectVector(r.Profile)},
	}
	for _, p := range preds {
		d := trace.Sequences(r.Events, r.TailLen, p.v)
		var pts []trace.Point
		if breaksView {
			pts = d.CumulativeBreaks()
		} else {
			pts = d.CumulativeInstr()
		}
		pts = trimSaturated(pts)
		g.Series = append(g.Series, Series{
			Name: p.name,
			Note: fmt.Sprintf("miss %.0f%%, %.0f ipbc, dividing length %d",
				d.MissRate(), d.IPBC(), d.DividingLength()),
			Pts: pts,
		})
	}
	return g, nil
}

// trimSaturated drops trailing points after the curve reaches 100%.
func trimSaturated(pts []trace.Point) []trace.Point {
	for i, p := range pts {
		if p.Y >= 99.999 {
			return pts[:i+1]
		}
	}
	return pts
}

// Graph12 reproduces Graph 12: the analytic model 1-(1-m)^s for miss
// rates 2.5% to 30% in steps of 2.5%.
func (e *Evaluator) Graph12() *Graph {
	g := &Graph{
		Title:  "Graph 12: model cumulative distribution f(m,s) = 1-(1-m)^s",
		XLabel: "sequence length",
		YLabel: "% of instructions in sequences <= s",
	}
	for i := 1; i <= 12; i++ {
		m := 0.025 * float64(i)
		g.Series = append(g.Series, Series{
			Name: fmt.Sprintf("m=%.3f", m),
			Pts:  trimSaturated(trace.ModelSeries(m, 300)),
		})
	}
	return g
}

// Graph13 reproduces Graph 13: the Heuristic and Perfect miss rates (all
// branches) across every dataset of every benchmark. The Heuristic makes
// the same predictions regardless of dataset; the Perfect predictor is
// recomputed per dataset.
func (e *Evaluator) Graph13() (*Graph, error) {
	g := &Graph{
		Title:  "Graph 13: miss rates across datasets (all branches)",
		XLabel: "dataset index (benchmarks concatenated)",
		YLabel: "miss %",
	}
	var heurPts, perfPts []trace.Point
	var labels []string
	x := int64(0)
	for _, b := range suite.All() {
		a, err := e.Analysis(b)
		if err != nil {
			return nil, err
		}
		preds := a.Predictions(core.DefaultOrder)
		for ds := range b.Data {
			r, err := e.Run(b, ds, false)
			if err != nil {
				return nil, err
			}
			rate := r.AllMissRate(preds)
			heurPts = append(heurPts, trace.Point{X: x, Y: rate.Pred})
			perfPts = append(perfPts, trace.Point{X: x, Y: rate.Perfect})
			labels = append(labels, fmt.Sprintf("%s/%s", b.Name, b.Data[ds].Name))
			x++
		}
	}
	g.Series = append(g.Series,
		Series{Name: "Heuristic", Pts: heurPts, Note: strings.Join(labels, ",")},
		Series{Name: "Perfect", Pts: perfPts},
	)
	return g, nil
}

// Graph13Rows returns Graph 13 as printable rows (benchmark/dataset,
// heuristic miss, perfect miss).
func (e *Evaluator) Graph13Rows() (string, error) {
	g, err := e.Graph13()
	if err != nil {
		return "", err
	}
	labels := strings.Split(g.Series[0].Note, ",")
	var b strings.Builder
	b.WriteString("Graph 13: miss rates for different datasets (all branches)\n")
	for i := range g.Series[0].Pts {
		fmt.Fprintf(&b, "  %-22s heuristic %5.1f%%  perfect %5.1f%%\n",
			labels[i], g.Series[0].Pts[i].Y, g.Series[1].Pts[i].Y)
	}
	return b.String(), nil
}

// SortSeriesByX is a helper for tests.
func SortSeriesByX(s *Series) {
	sort.Slice(s.Pts, func(i, j int) bool { return s.Pts[i].X < s.Pts[j].X })
}
