package opt

import (
	"testing"

	"ballarus/internal/interp"
	"ballarus/internal/minic"
	"ballarus/internal/mir"
	"ballarus/internal/suite"
)

// TestOptimizePreservesSuiteBehavior is the load-bearing test: every suite
// program must compute identical output after optimization, in fewer or
// equal instructions.
func TestOptimizePreservesSuiteBehavior(t *testing.T) {
	var totBefore, totAfter int
	for _, b := range suite.All() {
		prog, err := b.Compile()
		if err != nil {
			t.Fatal(err)
		}
		op := Program(prog)
		if err := op.Validate(); err != nil {
			t.Fatalf("%s: optimized program invalid: %v", b.Name, err)
		}
		r1, err := interp.Run(prog, interp.Config{Input: b.Data[0].Input, Budget: b.Budget})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := interp.Run(op, interp.Config{Input: b.Data[0].Input, Budget: b.Budget})
		if err != nil {
			t.Fatalf("%s: optimized program faulted: %v", b.Name, err)
		}
		if r1.Output != r2.Output {
			t.Fatalf("%s: output changed:\n  before %q\n  after  %q", b.Name, r1.Output, r2.Output)
		}
		if r2.Steps > r1.Steps {
			t.Errorf("%s: optimization increased dynamic instructions: %d -> %d",
				b.Name, r1.Steps, r2.Steps)
		}
		totBefore += prog.NumInstrs()
		totAfter += op.NumInstrs()
	}
	t.Logf("static instructions: %d -> %d (%.1f%% smaller)",
		totBefore, totAfter, 100*float64(totBefore-totAfter)/float64(totBefore))
	if totAfter >= totBefore {
		t.Error("optimizer removed nothing across the whole suite")
	}
}

func optimizeSrc(t *testing.T, src string) (*mir.Program, *mir.Program) {
	t.Helper()
	prog, err := minic.Compile(src, minic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	op := Program(prog)
	if err := op.Validate(); err != nil {
		t.Fatalf("invalid after optimization: %v\n%s", err, op.Disasm())
	}
	return prog, op
}

func TestConstantFolding(t *testing.T) {
	_, op := optimizeSrc(t, `
int main() {
	int a = 6 * 7;
	int b = a + 0;
	printi(b);
	return 0;
}`)
	// After folding, a single li 42 should feed the print: no Mul remains.
	m := op.Proc("main")
	for i := range m.Code {
		if m.Code[i].Op == mir.Mul {
			t.Errorf("multiply survived constant folding\n%s", m.Disasm())
		}
	}
	res, err := interp.Run(op, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "42" {
		t.Errorf("output %q", res.Output)
	}
}

func TestBranchFoldingRemovesDeadArm(t *testing.T) {
	prog, op := optimizeSrc(t, `
int main() {
	if (1 < 2) { printi(1); } else { printi(2); }
	while (0) { printi(9); }
	return 0;
}`)
	if op.Proc("main") == nil {
		t.Fatal("main missing")
	}
	if op.NumInstrs() >= prog.NumInstrs() {
		t.Errorf("branch folding removed nothing: %d -> %d", prog.NumInstrs(), op.NumInstrs())
	}
	res, err := interp.Run(op, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "1" {
		t.Errorf("output %q, want 1", res.Output)
	}
	// The constant branch must be gone entirely.
	m := op.Proc("main")
	for i := range m.Code {
		if m.Code[i].Op.IsCondBranch() {
			t.Errorf("constant branch survived\n%s", m.Disasm())
		}
	}
}

func TestDeadCodeElimination(t *testing.T) {
	_, op := optimizeSrc(t, `
int main() {
	int unused1 = 5;
	int unused2 = unused1 * 3;
	printi(7);
	return 0;
}`)
	res, err := interp.Run(op, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "7" {
		t.Errorf("output %q", res.Output)
	}
}

func TestFaultsPreserved(t *testing.T) {
	// Division by a constant zero must still fault at runtime, not fold.
	_, op := optimizeSrc(t, `
int main() {
	int z = 0;
	printi(5 / z);
	return 0;
}`)
	if _, err := interp.Run(op, interp.Config{}); err == nil {
		t.Error("division by zero must survive optimization")
	}
}

func TestOptimizeDifferentialRandomPrograms(t *testing.T) {
	// Reuse the minic random-program generator indirectly: compile random
	// programs both ways and compare outputs.
	for seed := int64(0); seed < 120; seed++ {
		src := minic.RandomProgram(seed)
		prog, err := minic.Compile(src, minic.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		op := Program(prog)
		if err := op.Validate(); err != nil {
			t.Fatalf("seed %d: invalid after optimization: %v\n%s", seed, err, src)
		}
		r1, err1 := interp.Run(prog, interp.Config{Budget: 1 << 22})
		r2, err2 := interp.Run(op, interp.Config{Budget: 1 << 22})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("seed %d: fault behavior diverged: %v vs %v\n%s", seed, err1, err2, src)
		}
		if err1 == nil && r1.Output != r2.Output {
			t.Fatalf("seed %d: output diverged: %q vs %q\n%s", seed, r1.Output, r2.Output, src)
		}
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	b := suite.Get("lcc")
	prog, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	o1 := Program(prog)
	o2 := Program(o1)
	if o2.NumInstrs() > o1.NumInstrs() {
		t.Errorf("second optimization grew the program: %d -> %d", o1.NumInstrs(), o2.NumInstrs())
	}
	r1, err := interp.Run(o1, interp.Config{Input: b.Data[0].Input, Budget: b.Budget})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := interp.Run(o2, interp.Config{Input: b.Data[0].Input, Budget: b.Budget})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Output != r2.Output {
		t.Error("double optimization changed behavior")
	}
}
