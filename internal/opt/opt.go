// Package opt is a MIR optimizer: within-block constant and copy
// propagation with folding, conditional-branch folding, global dead-code
// elimination over virtual registers, unreachable-code removal, and jump
// threading. The paper's benchmarks were compiled -O/-O2; this pass lets
// the reproduction study how optimization level interacts with the
// heuristics (and tightens the suite's code the way 1990s compilers did).
//
// The pass is semantics-preserving: programs compute identical outputs
// with identical observable behavior (the instruction *count* shrinks).
package opt

import (
	"math"

	"ballarus/internal/mir"
)

// Program optimizes every non-builtin procedure, returning a new program.
func Program(prog *mir.Program) *mir.Program {
	out := &mir.Program{
		Entry:  prog.Entry,
		Data:   append([]int64(nil), prog.Data...),
		Source: prog.Source,
	}
	for _, p := range prog.Procs {
		if p.Builtin != mir.NotBuiltin {
			out.Procs = append(out.Procs, p)
			continue
		}
		out.Procs = append(out.Procs, Proc(p))
	}
	return out
}

// Proc optimizes one procedure to a fixpoint (bounded).
func Proc(p *mir.Proc) *mir.Proc {
	np := &mir.Proc{
		Name:    p.Name,
		NArgs:   p.NArgs,
		NLocals: p.NLocals,
		NIRegs:  p.NIRegs,
		NFRegs:  p.NFRegs,
		Code:    append([]mir.Instr(nil), p.Code...),
	}
	for round := 0; round < 4; round++ {
		changed := propagate(np)
		changed = deadcode(np) || changed
		changed = unreachable(np) || changed
		changed = threadJumps(np) || changed
		if !changed {
			break
		}
	}
	return np
}

// ---- Within-block constant/copy propagation ----

type valKind uint8

const (
	vUnknown valKind = iota
	vConst
	vCopy
)

type value struct {
	kind valKind
	c    int64
	f    float64
	src  mir.Reg
}

// env tracks register contents within one basic block.
type env struct {
	m map[mir.Reg]value
}

func newEnv() *env { return &env{m: map[mir.Reg]value{}} }

func (e *env) get(r mir.Reg) value {
	if r == mir.R0 {
		return value{kind: vConst, c: 0}
	}
	return e.m[r]
}

// kill invalidates r and every copy of r.
func (e *env) kill(r mir.Reg) {
	delete(e.m, r)
	for k, v := range e.m {
		if v.kind == vCopy && v.src == r {
			delete(e.m, k)
		}
	}
}

func (e *env) set(r mir.Reg, v value) {
	if r == mir.R0 {
		return
	}
	e.kill(r)
	if v.kind != vUnknown {
		e.m[r] = v
	}
}

// trackable reports whether the register may participate in propagation:
// only virtual registers (the architectural ones have external semantics).
func trackable(r mir.Reg) bool {
	return r.Index() >= int(mir.FirstVirtual)
}

// resolve rewrites a source operand to a propagated copy source. Constants
// are not materialized into operands (MIR has no immediate ALU forms
// beyond Addi/Li); folding handles fully-constant instructions instead.
func (e *env) resolve(r mir.Reg) mir.Reg {
	if !trackable(r) {
		return r
	}
	if v, ok := e.m[r]; ok && v.kind == vCopy {
		return v.src
	}
	if v, ok := e.m[r]; ok && v.kind == vConst && !r.IsFloat() && v.c == 0 {
		return mir.R0 // zero becomes the hardwired zero register
	}
	return r
}

// blockStarts marks the leaders of p (branch targets and post-terminator
// instructions), where propagation state must reset.
func blockStarts(p *mir.Proc) []bool {
	leader := make([]bool, len(p.Code)+1)
	leader[0] = true
	for i := range p.Code {
		in := &p.Code[i]
		if in.Op.IsCondBranch() || in.Op == mir.J {
			leader[in.Target] = true
			leader[i+1] = true
		}
		if in.Op == mir.Jtab {
			for _, t := range in.Table {
				leader[t] = true
			}
			leader[i+1] = true
		}
		if in.Op == mir.Jr || in.Op == mir.Halt {
			leader[i+1] = true
		}
	}
	return leader
}

func propagate(p *mir.Proc) bool {
	leader := blockStarts(p)
	e := newEnv()
	changed := false
	for i := range p.Code {
		if leader[i] {
			e = newEnv()
		}
		in := &p.Code[i]
		if in.Op == mir.Jtab {
			// Jtab holds a slice (not comparable) and propagate never
			// rewrites it; just reset nothing and continue.
			continue
		}
		old := *in
		rewriteUses(in, e)
		fold(in, e)
		if !instrEq(in, &old) {
			changed = true
		}
		update(in, e)
	}
	return changed
}

// instrEq compares two non-Jtab instructions field-wise (Instr holds a
// slice, so == is unavailable).
func instrEq(a, b *mir.Instr) bool {
	return a.Op == b.Op && a.Rd == b.Rd && a.Rs == b.Rs && a.Rt == b.Rt &&
		a.Imm == b.Imm && a.FImm == b.FImm && a.Target == b.Target &&
		a.Callee == b.Callee
}

// rewriteUses applies copy propagation to source operands.
func rewriteUses(in *mir.Instr, e *env) {
	switch in.Op {
	case mir.Nop, mir.Li, mir.FLi, mir.J, mir.Jal, mir.Halt, mir.Jtab, mir.Jr, mir.Jalr:
		// Control operands (Jr/Jalr/Jtab) are left untouched: rewriting
		// them buys nothing and RA handling is delicate.
		return
	case mir.Add, mir.Sub, mir.Mul, mir.Div, mir.Rem, mir.And, mir.Or, mir.Xor,
		mir.Sll, mir.Srl, mir.Sra, mir.Slt, mir.Sle, mir.Seq, mir.Sne,
		mir.FAdd, mir.FSub, mir.FMul, mir.FDiv, mir.FSlt, mir.FSle, mir.FSeq, mir.FSne,
		mir.Beq, mir.Bne, mir.FBeq, mir.FBne, mir.FBlt, mir.FBle, mir.FBgt, mir.FBge:
		in.Rs = e.resolve(in.Rs)
		in.Rt = e.resolve(in.Rt)
	case mir.Addi, mir.Move, mir.FMove, mir.FNeg, mir.CvtIF, mir.CvtFI,
		mir.Lw, mir.FLw, mir.Bltz, mir.Blez, mir.Bgtz, mir.Bgez:
		in.Rs = e.resolve(in.Rs)
	case mir.Sw, mir.FSw:
		in.Rs = e.resolve(in.Rs)
		in.Rt = e.resolve(in.Rt)
	}
}

// fold replaces constant-operand instructions with simpler forms.
func fold(in *mir.Instr, e *env) {
	constI := func(r mir.Reg) (int64, bool) {
		v := e.get(r)
		return v.c, v.kind == vConst && !r.IsFloat()
	}
	constF := func(r mir.Reg) (float64, bool) {
		if r == mir.FRV || !r.IsFloat() {
			return 0, false
		}
		v := e.get(r)
		return v.f, v.kind == vConst
	}
	switch in.Op {
	case mir.Add, mir.Sub, mir.Mul, mir.Div, mir.Rem, mir.And, mir.Or, mir.Xor,
		mir.Sll, mir.Srl, mir.Sra, mir.Slt, mir.Sle, mir.Seq, mir.Sne:
		a, okA := constI(in.Rs)
		b, okB := constI(in.Rt)
		if okA && okB {
			if r, ok := foldIntOp(in.Op, a, b); ok {
				*in = mir.Instr{Op: mir.Li, Rd: in.Rd, Imm: r}
				return
			}
		}
		// Strength reductions with one constant.
		if in.Op == mir.Add && okB && trackable(in.Rd) {
			*in = mir.Instr{Op: mir.Addi, Rd: in.Rd, Rs: in.Rs, Imm: b}
			return
		}
		if in.Op == mir.Add && okA && trackable(in.Rd) {
			*in = mir.Instr{Op: mir.Addi, Rd: in.Rd, Rs: in.Rt, Imm: a}
			return
		}
		if in.Op == mir.Sub && okB && trackable(in.Rd) && b != math.MinInt64 {
			*in = mir.Instr{Op: mir.Addi, Rd: in.Rd, Rs: in.Rs, Imm: -b}
			return
		}
	case mir.Addi:
		if a, ok := constI(in.Rs); ok {
			*in = mir.Instr{Op: mir.Li, Rd: in.Rd, Imm: a + in.Imm}
			return
		}
		if in.Imm == 0 && trackable(in.Rd) && in.Rd != in.Rs {
			*in = mir.Instr{Op: mir.Move, Rd: in.Rd, Rs: in.Rs}
			return
		}
	case mir.Move:
		if a, ok := constI(in.Rs); ok {
			*in = mir.Instr{Op: mir.Li, Rd: in.Rd, Imm: a}
			return
		}
	case mir.FMove:
		if a, ok := constF(in.Rs); ok {
			*in = mir.Instr{Op: mir.FLi, Rd: in.Rd, FImm: a}
			return
		}
	case mir.FAdd, mir.FSub, mir.FMul, mir.FDiv:
		a, okA := constF(in.Rs)
		b, okB := constF(in.Rt)
		if okA && okB {
			*in = mir.Instr{Op: mir.FLi, Rd: in.Rd, FImm: foldFloatOp(in.Op, a, b)}
			return
		}
	case mir.FNeg:
		if a, ok := constF(in.Rs); ok {
			*in = mir.Instr{Op: mir.FLi, Rd: in.Rd, FImm: -a}
			return
		}
	case mir.CvtIF:
		if a, ok := constI(in.Rs); ok {
			*in = mir.Instr{Op: mir.FLi, Rd: in.Rd, FImm: float64(a)}
			return
		}
	case mir.Beq, mir.Bne, mir.Bltz, mir.Blez, mir.Bgtz, mir.Bgez:
		// Branch folding: fully decided branches become J or Nop.
		a, okA := constI(in.Rs)
		zeroForm := in.Op == mir.Bltz || in.Op == mir.Blez ||
			in.Op == mir.Bgtz || in.Op == mir.Bgez
		b, okB := int64(0), zeroForm
		if !zeroForm {
			b, okB = constI(in.Rt)
		}
		if okA && okB {
			taken := false
			switch in.Op {
			case mir.Beq:
				taken = a == b
			case mir.Bne:
				taken = a != b
			case mir.Bltz:
				taken = a < 0
			case mir.Blez:
				taken = a <= 0
			case mir.Bgtz:
				taken = a > 0
			case mir.Bgez:
				taken = a >= 0
			}
			if taken {
				*in = mir.Instr{Op: mir.J, Target: in.Target}
			} else {
				*in = mir.Instr{Op: mir.Nop}
			}
		}
	}
}

func foldIntOp(op mir.Op, a, b int64) (int64, bool) {
	switch op {
	case mir.Add:
		return a + b, true
	case mir.Sub:
		return a - b, true
	case mir.Mul:
		return a * b, true
	case mir.Div:
		if b == 0 || (a == math.MinInt64 && b == -1) {
			return 0, false // preserve the runtime fault / wrap
		}
		return a / b, true
	case mir.Rem:
		if b == 0 || (a == math.MinInt64 && b == -1) {
			return 0, false
		}
		return a % b, true
	case mir.And:
		return a & b, true
	case mir.Or:
		return a | b, true
	case mir.Xor:
		return a ^ b, true
	case mir.Sll:
		return a << (uint64(b) & 63), true
	case mir.Srl:
		return int64(uint64(a) >> (uint64(b) & 63)), true
	case mir.Sra:
		return a >> (uint64(b) & 63), true
	case mir.Slt:
		return b2i(a < b), true
	case mir.Sle:
		return b2i(a <= b), true
	case mir.Seq:
		return b2i(a == b), true
	case mir.Sne:
		return b2i(a != b), true
	}
	return 0, false
}

func foldFloatOp(op mir.Op, a, b float64) float64 {
	switch op {
	case mir.FAdd:
		return a + b
	case mir.FSub:
		return a - b
	case mir.FMul:
		return a * b
	default:
		return a / b
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// update records the instruction's effect on the environment.
func update(in *mir.Instr, e *env) {
	d, ok := in.Def()
	if !ok {
		return
	}
	if !trackable(d) {
		// Architectural register written (RA by calls, RV...): calls also
		// clobber nothing else (virtual registers are per-activation), so
		// only the defined register dies.
		e.kill(d)
		return
	}
	switch in.Op {
	case mir.Li:
		e.set(d, value{kind: vConst, c: in.Imm})
	case mir.FLi:
		e.set(d, value{kind: vConst, f: in.FImm})
	case mir.Move, mir.FMove:
		if trackable(in.Rs) {
			if v := e.get(in.Rs); v.kind == vConst {
				e.set(d, v)
			} else if in.Rs != d {
				e.set(d, value{kind: vCopy, src: in.Rs})
			} else {
				e.kill(d)
			}
		} else {
			e.kill(d)
		}
	default:
		e.kill(d)
	}
}

// ---- Dead code elimination ----

// pure reports whether removing the instruction (when its result is
// unused) cannot change behavior.
func pure(op mir.Op) bool {
	switch op {
	case mir.Nop, mir.Add, mir.Sub, mir.Mul, mir.And, mir.Or, mir.Xor,
		mir.Sll, mir.Srl, mir.Sra, mir.Slt, mir.Sle, mir.Seq, mir.Sne,
		mir.Li, mir.Addi, mir.Move,
		mir.FAdd, mir.FSub, mir.FMul, mir.FDiv, mir.FNeg, mir.FLi, mir.FMove,
		mir.CvtIF, mir.CvtFI, mir.FSlt, mir.FSle, mir.FSeq, mir.FSne:
		return true
	}
	// Div/Rem can fault; loads can fault; keep them.
	return false
}

func deadcode(p *mir.Proc) bool {
	used := map[mir.Reg]bool{}
	var buf [4]mir.Reg
	for i := range p.Code {
		for _, r := range p.Code[i].Uses(buf[:0]) {
			used[r] = true
		}
	}
	keep := make([]bool, len(p.Code))
	removed := false
	for i := range p.Code {
		in := &p.Code[i]
		keep[i] = true
		if in.Op == mir.Nop {
			keep[i] = false
			removed = true
			continue
		}
		if d, ok := in.Def(); ok && trackable(d) && !used[d] && pure(in.Op) {
			keep[i] = false
			removed = true
		}
	}
	if !removed {
		return false
	}
	compact(p, keep)
	return true
}

// ---- Unreachable code removal ----

func unreachable(p *mir.Proc) bool {
	reach := make([]bool, len(p.Code))
	var work []int
	push := func(i int) {
		if i >= 0 && i < len(p.Code) && !reach[i] {
			reach[i] = true
			work = append(work, i)
		}
	}
	push(0)
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		in := &p.Code[i]
		switch {
		case in.Op.IsCondBranch():
			push(in.Target)
			push(i + 1)
		case in.Op == mir.J:
			push(in.Target)
		case in.Op == mir.Jtab:
			for _, t := range in.Table {
				push(t)
			}
		case in.Op == mir.Jr || in.Op == mir.Halt:
		default:
			push(i + 1)
		}
	}
	removed := false
	for _, r := range reach {
		if !r {
			removed = true
		}
	}
	if !removed {
		return false
	}
	compact(p, reach)
	return true
}

// ---- Jump threading ----

func threadJumps(p *mir.Proc) bool {
	// Chase chains of unconditional jumps (with a cycle bound).
	final := func(t int) int {
		for hops := 0; hops < 8; hops++ {
			if t < 0 || t >= len(p.Code) || p.Code[t].Op != mir.J {
				return t
			}
			nt := p.Code[t].Target
			if nt == t {
				return t // self loop: leave it
			}
			t = nt
		}
		return t
	}
	changed := false
	for i := range p.Code {
		in := &p.Code[i]
		if in.Op.IsCondBranch() || in.Op == mir.J {
			if nt := final(in.Target); nt != in.Target {
				in.Target = nt
				changed = true
			}
		}
		if in.Op == mir.Jtab {
			for k, t := range in.Table {
				if nt := final(t); nt != t {
					in.Table[k] = nt
					changed = true
				}
			}
		}
	}
	// Remove J-to-next.
	keep := make([]bool, len(p.Code))
	removed := false
	for i := range p.Code {
		keep[i] = true
		if p.Code[i].Op == mir.J && p.Code[i].Target == i+1 {
			keep[i] = false
			removed = true
		}
	}
	if removed {
		compact(p, keep)
		changed = true
	}
	return changed
}

// compact drops instructions with keep[i]==false, remapping every target
// to the first kept instruction at or after it.
func compact(p *mir.Proc, keep []bool) {
	newIdx := make([]int, len(p.Code)+1)
	n := 0
	for i := range p.Code {
		newIdx[i] = n
		if keep[i] {
			n++
		}
	}
	newIdx[len(p.Code)] = n
	code := make([]mir.Instr, 0, n)
	for i := range p.Code {
		if !keep[i] {
			continue
		}
		in := p.Code[i]
		if in.Op.IsCondBranch() || in.Op == mir.J {
			in.Target = newIdx[in.Target]
		}
		if in.Op == mir.Jtab {
			tbl := make([]int, len(in.Table))
			for k, t := range in.Table {
				tbl[k] = newIdx[t]
			}
			in.Table = tbl
		}
		code = append(code, in)
	}
	p.Code = code
}
