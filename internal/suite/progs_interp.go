package suite

// Analogues of the paper's interpreter and compiler benchmarks: xlisp,
// gcc, lcc, congress. These are the pointer-chasing programs whose null
// tests and tag dispatches the Pointer and Guard heuristics feed on.

func init() {
	register(&Benchmark{
		Name:   "xlisp",
		Desc:   "Lisp interpreter",
		Traced: true,
		Source: xlispSrc,
		Data: []Dataset{
			{Name: "fib", Input: text(`
(d f n (i (< n 2) n (+ (f (- n 1)) (f (- n 2)))))
(f 17)
(d s n (i (= n 0) 0 (+ n (s (- n 1)))))
(s 150)
(d g n (i (< n 1) 1 (* n 1)))
(+ (g 3) (f 10))
`)},
			{Name: "mutual", Input: text(`
(d e n (i (= n 0) 1 (o (- n 1))))
(d o n (i (= n 0) 0 (e (- n 1))))
(+ (e 400) (o 251))
(d p n (i (< n 2) n (+ (p (- n 1)) (p (- n 2)))))
(p 16)
(d t n (i (= n 0) 0 (+ 1 (t (- n 1)))))
(t 300)
`)},
			{Name: "arith", Input: text(`
(d q n (i (< n 1) 0 (+ (* n n) (q (- n 1)))))
(q 120)
(+ 1 (* 2 (+ 3 (* 4 (+ 5 (* 6 7))))))
(d f n (i (< n 2) n (+ (f (- n 1)) (f (- n 2)))))
(f 15)
`)},
		},
	})

	register(&Benchmark{
		Name:   "gcc",
		Desc:   "expression compiler (parse, fold, emit, run)",
		Traced: true,
		Source: gccSrc,
		Data: []Dataset{
			{Name: "exprs", Input: text(genExprLines(901, 60))},
			{Name: "exprs2", Input: text(genExprLines(4242, 48))},
			{Name: "deep", Input: text(genExprLines(77, 80))},
		},
	})

	register(&Benchmark{
		Name:   "lcc",
		Desc:   "expression translator (shunting yard to RPN)",
		Traced: true,
		Source: lccSrc,
		Data: []Dataset{
			{Name: "exprs", Input: text(genExprLines(313, 70))},
			{Name: "exprs2", Input: text(genExprLines(99, 55))},
			{Name: "deep", Input: text(genExprLines(640, 90))},
		},
	})

	register(&Benchmark{
		Name:   "congress",
		Desc:   "interpreter for a Prolog-like language (fact database queries)",
		Source: congressSrc,
		Data: []Dataset{
			{Name: "g40", Input: nums(40, 11, 120)},
			{Name: "g28", Input: nums(28, 5, 160)},
			{Name: "g52", Input: nums(52, 23, 90)},
		},
	})
}

const xlispSrc = `
/* xlisp analogue: a small Lisp with numbers, one-letter symbols,
 * single-argument user functions, and arithmetic/comparison/if forms.
 * Heavily recursive, pointer-chasing, tag-dispatching. */
struct cell { int tag; int val; struct cell *car; struct cell *cdr; };
struct env { int sym; int val; struct env *next; };

struct cell *fbody[128];
int fparam[128];
int peeked = -2;

struct cell *mkcell(int tag, int val) {
	struct cell *c = (struct cell*)alloc(sizeof(struct cell));
	c->tag = tag;
	c->val = val;
	c->car = 0;
	c->cdr = 0;
	return c;
}

int peek() {
	if (peeked == -2) { peeked = readc(); }
	return peeked;
}

int nextc() {
	int c = peek();
	peeked = -2;
	return c;
}

void skipws() {
	while (peek() == ' ' || peek() == '\n' || peek() == '\t') { nextc(); }
}

struct cell *parse() {
	skipws();
	int c = peek();
	if (c < 0) { return 0; }
	if (c == '(') {
		nextc();
		struct cell *head = 0;
		struct cell *tail = 0;
		skipws();
		while (peek() != ')' && peek() >= 0) {
			struct cell *e = parse();
			struct cell *p = mkcell(2, 0);
			p->car = e;
			if (tail == 0) { head = p; } else { tail->cdr = p; }
			tail = p;
			skipws();
		}
		nextc();
		return head;
	}
	if (c >= '0' && c <= '9') {
		int v = 0;
		while (peek() >= '0' && peek() <= '9') { v = v * 10 + (nextc() - '0'); }
		return mkcell(0, v);
	}
	return mkcell(1, nextc());
}

int lookup(struct env *e, int sym) {
	while (e != 0) {
		if (e->sym == sym) { return e->val; }
		e = e->next;
	}
	prints("unbound variable\n");
	exit(1);
	return 0;
}

int eval(struct cell *e, struct env *env) {
	if (e == 0) { return 0; }
	if (e->tag == 0) { return e->val; }
	if (e->tag == 1) { return lookup(env, e->val); }
	struct cell *op = e->car;
	struct cell *args = e->cdr;
	if (op == 0 || args == 0) { return 0; }
	int o = op->val;
	if (o == '+') { return eval(args->car, env) + eval(args->cdr->car, env); }
	if (o == '-') { return eval(args->car, env) - eval(args->cdr->car, env); }
	if (o == '*') { return eval(args->car, env) * eval(args->cdr->car, env); }
	if (o == '<') { return eval(args->car, env) < eval(args->cdr->car, env); }
	if (o == '=') { return eval(args->car, env) == eval(args->cdr->car, env); }
	if (o == 'i') {
		if (eval(args->car, env) != 0) { return eval(args->cdr->car, env); }
		return eval(args->cdr->cdr->car, env);
	}
	if (fbody[o] == 0) {
		prints("undefined function\n");
		exit(1);
	}
	struct env *ne = (struct env*)alloc(sizeof(struct env));
	ne->sym = fparam[o];
	ne->val = eval(args->car, env);
	ne->next = 0;
	return eval(fbody[o], ne);
}

int main() {
	skipws();
	while (peek() >= 0) {
		struct cell *e = parse();
		if (e == 0) { break; }
		if (e->tag == 2 && e->car != 0 && e->car->tag == 1 && e->car->val == 'd') {
			struct cell *n = e->cdr;
			int fname = n->car->val;
			fparam[fname] = n->cdr->car->val;
			fbody[fname] = n->cdr->cdr->car;
		} else {
			printi(eval(e, 0));
			printc('\n');
		}
		skipws();
	}
	return 0;
}
`

const gccSrc = `
/* gcc analogue: a tiny expression compiler. Reads one arithmetic
 * expression per line (integers, variables a-z, + - * / and parens),
 * builds an AST on the heap, constant-folds it, emits stack-machine code,
 * and executes the code to print the value. */
struct node { int kind; int val; struct node *l; struct node *r; };

int line[256];
int lpos;
int llen;
int code[512];
int ncode;
int stackv[128];

struct node *mknode(int kind, int val, struct node *l, struct node *r) {
	struct node *n = (struct node*)alloc(sizeof(struct node));
	n->kind = kind;
	n->val = val;
	n->l = l;
	n->r = r;
	return n;
}

int peekc() {
	while (lpos < llen && line[lpos] == ' ') { lpos++; }
	if (lpos >= llen) { return -1; }
	return line[lpos];
}

struct node *parseexpr();

struct node *parseatom() {
	int c = peekc();
	if (c == '(') {
		lpos++;
		struct node *e = parseexpr();
		if (peekc() == ')') { lpos++; }
		return e;
	}
	if (c >= '0' && c <= '9') {
		int v = 0;
		while (lpos < llen && line[lpos] >= '0' && line[lpos] <= '9') {
			v = v * 10 + (line[lpos] - '0');
			lpos++;
		}
		return mknode('n', v, 0, 0);
	}
	if (c >= 'a' && c <= 'z') {
		lpos++;
		return mknode('v', c - 'a', 0, 0);
	}
	lpos++;
	return mknode('n', 0, 0, 0);
}

struct node *parseterm() {
	struct node *l = parseatom();
	int c = peekc();
	while (c == '*' || c == '/') {
		lpos++;
		struct node *r = parseatom();
		l = mknode(c, 0, l, r);
		c = peekc();
	}
	return l;
}

struct node *parseexpr() {
	struct node *l = parseterm();
	int c = peekc();
	while (c == '+' || c == '-') {
		lpos++;
		struct node *r = parseterm();
		l = mknode(c, 0, l, r);
		c = peekc();
	}
	return l;
}

/* Constant folding: returns a (possibly new) node. */
struct node *fold(struct node *n) {
	if (n == 0) { return 0; }
	if (n->l == 0) { return n; }
	n->l = fold(n->l);
	n->r = fold(n->r);
	if (n->l->kind == 'n' && n->r->kind == 'n') {
		int a = n->l->val;
		int b = n->r->val;
		int k = n->kind;
		if (k == '+') { return mknode('n', a + b, 0, 0); }
		if (k == '-') { return mknode('n', a - b, 0, 0); }
		if (k == '*') { return mknode('n', a * b, 0, 0); }
		if (k == '/') {
			if (b != 0) { return mknode('n', a / b, 0, 0); }
		}
	}
	/* Algebraic identities. */
	if (n->kind == '*' && n->r->kind == 'n' && n->r->val == 1) { return n->l; }
	if (n->kind == '+' && n->r->kind == 'n' && n->r->val == 0) { return n->l; }
	return n;
}

void emit(int op, int arg) {
	code[ncode] = op;
	code[ncode + 1] = arg;
	ncode += 2;
}

void gen(struct node *n) {
	if (n == 0) { return; }
	if (n->kind == 'n') { emit(1, n->val); return; }
	if (n->kind == 'v') { emit(2, n->val); return; }
	gen(n->l);
	gen(n->r);
	if (n->kind == '+') { emit(3, 0); }
	if (n->kind == '-') { emit(4, 0); }
	if (n->kind == '*') { emit(5, 0); }
	if (n->kind == '/') { emit(6, 0); }
}

int run() {
	int sp = 0;
	int pc = 0;
	while (pc < ncode) {
		int op = code[pc];
		int arg = code[pc + 1];
		pc += 2;
		if (op == 1) { stackv[sp] = arg; sp++; }
		if (op == 2) { stackv[sp] = arg * 7 + 1; sp++; }
		if (op == 3) { sp--; stackv[sp - 1] += stackv[sp]; }
		if (op == 4) { sp--; stackv[sp - 1] -= stackv[sp]; }
		if (op == 5) { sp--; stackv[sp - 1] *= stackv[sp]; }
		if (op == 6) {
			sp--;
			if (stackv[sp] != 0) { stackv[sp - 1] /= stackv[sp]; } else { stackv[sp - 1] = 0; }
		}
	}
	if (sp > 0) { return stackv[sp - 1]; }
	return 0;
}

int readline() {
	llen = 0;
	int c = readc();
	if (c < 0) { return -1; }
	while (c >= 0 && c != '\n') {
		if (llen < 255) { line[llen] = c; llen++; }
		c = readc();
	}
	return llen;
}

int main() {
	int total = 0;
	int lines = 0;
	while (readline() >= 0) {
		if (llen == 0) { continue; }
		lpos = 0;
		ncode = 0;
		struct node *ast = parseexpr();
		ast = fold(ast);
		gen(ast);
		int v = run();
		total = (total * 31 + v) % 1000000007;
		lines++;
	}
	printi(lines);
	printc(' ');
	printi(total);
	printc('\n');
	return 0;
}
`

const lccSrc = `
/* lcc analogue: a smaller expression translator. Shunting-yard to RPN,
 * RPN evaluation, and a stack-depth "register allocation" pass. */
int line[256];
int lpos;
int llen;
int rpnop[256];
int rpnval[256];
int nrpn;
int opstack[128];

int prec(int op) {
	if (op == '*' || op == '/') { return 2; }
	if (op == '+' || op == '-') { return 1; }
	return 0;
}

int readline() {
	llen = 0;
	int c = readc();
	if (c < 0) { return -1; }
	while (c >= 0 && c != '\n') {
		if (llen < 255) { line[llen] = c; llen++; }
		c = readc();
	}
	return llen;
}

void outnum(int v) { rpnop[nrpn] = 'n'; rpnval[nrpn] = v; nrpn++; }
void outop(int op) { rpnop[nrpn] = op; rpnval[nrpn] = 0; nrpn++; }

void toRPN() {
	int nops = 0;
	nrpn = 0;
	lpos = 0;
	while (lpos < llen) {
		int c = line[lpos];
		if (c == ' ') { lpos++; continue; }
		if (c >= '0' && c <= '9') {
			int v = 0;
			while (lpos < llen && line[lpos] >= '0' && line[lpos] <= '9') {
				v = v * 10 + (line[lpos] - '0');
				lpos++;
			}
			outnum(v);
			continue;
		}
		if (c >= 'a' && c <= 'z') {
			outnum(c - 'a' + 3);
			lpos++;
			continue;
		}
		if (c == '(') { opstack[nops] = c; nops++; lpos++; continue; }
		if (c == ')') {
			while (nops > 0 && opstack[nops - 1] != '(') { nops--; outop(opstack[nops]); }
			if (nops > 0) { nops--; }
			lpos++;
			continue;
		}
		while (nops > 0 && prec(opstack[nops - 1]) >= prec(c)) {
			nops--;
			outop(opstack[nops]);
		}
		opstack[nops] = c;
		nops++;
		lpos++;
	}
	while (nops > 0) { nops--; outop(opstack[nops]); }
}

int evalstack[128];

int evalRPN() {
	int sp = 0;
	int i;
	for (i = 0; i < nrpn; i++) {
		int op = rpnop[i];
		if (op == 'n') { evalstack[sp] = rpnval[i]; sp++; continue; }
		sp--;
		int b = evalstack[sp];
		int a = evalstack[sp - 1];
		if (op == '+') { evalstack[sp - 1] = a + b; }
		if (op == '-') { evalstack[sp - 1] = a - b; }
		if (op == '*') { evalstack[sp - 1] = a * b; }
		if (op == '/') {
			if (b != 0) { evalstack[sp - 1] = a / b; } else { evalstack[sp - 1] = 0; }
		}
	}
	if (sp > 0) { return evalstack[sp - 1]; }
	return 0;
}

/* Sethi-Ullman-ish: maximum evaluation stack depth. */
int maxdepth() {
	int sp = 0;
	int mx = 0;
	int i;
	for (i = 0; i < nrpn; i++) {
		if (rpnop[i] == 'n') {
			sp++;
			if (sp > mx) { mx = sp; }
		} else {
			sp--;
		}
	}
	return mx;
}

int main() {
	int total = 0;
	int regs = 0;
	int lines = 0;
	while (readline() >= 0) {
		if (llen == 0) { continue; }
		toRPN();
		int v = evalRPN();
		int d = maxdepth();
		total = (total * 37 + v) % 1000000007;
		if (d > regs) { regs = d; }
		lines++;
	}
	printi(lines); printc(' ');
	printi(total); printc(' ');
	printi(regs); printc('\n');
	return 0;
}
`

const congressSrc = `
/* congress analogue: a Prolog-like fact database with a recursive
 * reachability solver (ancestor-style rule) over a random parent graph.
 * Input: nnodes, seed, nqueries. */
struct fact { int a; int b; struct fact *next; };
struct fact *facts;

int addfact(int a, int b) {
	struct fact *f = (struct fact*)alloc(sizeof(struct fact));
	f->a = a;
	f->b = b;
	f->next = facts;
	facts = f;
	return 0;
}

int visited[256];

/* solve: is there a path a ->* b through the fact database? DFS with a
 * visited set that lives for the whole query. */
int solve(int a, int b, int depth) {
	if (a == b) { return 1; }
	if (depth > 200) { return 0; }
	if (visited[a] != 0) { return 0; }
	visited[a] = 1;
	struct fact *f = facts;
	while (f != 0) {
		if (f->a == a) {
			if (solve(f->b, b, depth + 1) != 0) { return 1; }
		}
		f = f->next;
	}
	return 0;
}

int main() {
	int n = readi();
	int seed = readi();
	int q = readi();
	srand(seed);
	int i;
	for (i = 0; i < n; i++) { visited[i] = 0; }
	/* Sparse random graph: ~2 edges per node. */
	for (i = 0; i < 2 * n; i++) {
		int a = rand() % n;
		int b = rand() % n;
		if (a != b) { addfact(a, b); }
	}
	int yes = 0;
	for (i = 0; i < q; i++) {
		int a = rand() % n;
		int b = rand() % n;
		int j;
		for (j = 0; j < n; j++) { visited[j] = 0; }
		if (solve(a, b, 0) != 0) { yes++; }
	}
	printi(yes); printc('/'); printi(q); printc('\n');
	return 0;
}
`
