package suite

// Analogues of the paper's text-processing and combinatorial benchmarks:
// compress, grep, rn, awk, espresso, qpt, eqntott, addalg, ghostview, qp.
// grep and eqntott are the paper's "Big" benchmarks: a handful of non-loop
// branches account for almost all dynamic non-loop executions.

func init() {
	register(&Benchmark{
		Name:   "compress",
		Desc:   "file compression utility (LZW)",
		Source: compressSrc,
		Data: []Dataset{
			{Name: "prose", Input: text(genProse(7, 260, 9))},
			{Name: "prose2", Input: text(genProse(1234, 200, 12))},
			{Name: "exprs", Input: text(genExprLines(55, 220))},
		},
	})

	register(&Benchmark{
		Name:   "grep",
		Desc:   "search file for regular expression",
		Source: grepSrc,
		Data: []Dataset{
			{Name: "miss", Input: text("b.anchx*\n" + genProse(21, 420, 9))},
			{Name: "hit", Input: text("predic.\n" + genProse(22, 380, 9))},
			{Name: "star", Input: text("l*oop\n" + genProse(23, 300, 10))},
		},
	})

	register(&Benchmark{
		Name:   "rn",
		Desc:   "net news reader (header parsing and filtering)",
		Source: rnSrc,
		Data: []Dataset{
			{Name: "a300", Input: text(genArticles(5, 300))},
			{Name: "a220", Input: text(genArticles(99, 220))},
			{Name: "a400", Input: text(genArticles(7, 400))},
		},
	})

	register(&Benchmark{
		Name:   "awk",
		Desc:   "pattern scanner and processor (field split + hash aggregate)",
		Source: awkSrc,
		Data: []Dataset{
			{Name: "f700", Input: text(genFields(11, 700, 6))},
			{Name: "f500", Input: text(genFields(31, 500, 8))},
			{Name: "f900", Input: text(genFields(83, 900, 5))},
		},
	})

	register(&Benchmark{
		Name:   "espresso",
		Desc:   "PLA minimization (cube merging)",
		Source: espressoSrc,
		Data: []Dataset{
			{Name: "v9", Input: nums(9, 77)},
			{Name: "v8", Input: nums(8, 13)},
			{Name: "v10", Input: nums(10, 5)},
		},
	})

	register(&Benchmark{
		Name:   "qpt",
		Desc:   "profiling and tracing tool (CFG construction + DFS)",
		Traced: true,
		Source: qptSrc,
		Data: []Dataset{
			{Name: "g220", Input: nums(220, 3, 40)},
			{Name: "g150", Input: nums(150, 17, 55)},
			{Name: "g300", Input: nums(300, 9, 30)},
		},
	})

	register(&Benchmark{
		Name:   "eqntott",
		Desc:   "boolean equations to truth table (generate + quicksort)",
		Source: eqntottSrc,
		Data: []Dataset{
			{Name: "v11", Input: nums(11, 42)},
			{Name: "v10", Input: nums(10, 7)},
			{Name: "v12", Input: nums(12, 3)},
		},
	})

	register(&Benchmark{
		Name:   "addalg",
		Desc:   "integer program solver (branch and bound knapsack)",
		Source: addalgSrc,
		Data: []Dataset{
			{Name: "n22", Input: nums(22, 5)},
			{Name: "n20", Input: nums(20, 11)},
			{Name: "n26", Input: nums(26, 3)},
		},
	})

	register(&Benchmark{
		Name:   "ghostview",
		Desc:   "X postscript previewer (drawing command interpreter)",
		Source: ghostviewSrc,
		Data: []Dataset{
			{Name: "c5000", Input: nums(5000, 9)},
			{Name: "c3500", Input: nums(3500, 27)},
			{Name: "c8000", Input: nums(8000, 4)},
		},
	})

	register(&Benchmark{
		Name:   "qp",
		Desc:   "polyominoes game (backtracking board fill)",
		Source: qpSrc,
		Data: []Dataset{
			{Name: "b56", Input: nums(5, 6)},
			{Name: "b47", Input: nums(4, 7)},
			{Name: "b38", Input: nums(3, 8)},
		},
	})
}

const compressSrc = `
/* compress analogue: LZW with an open-addressing (prefix, char) hash. */
int hkey[8192];
int hval[8192];

int main() {
	int nextcode = 256;
	int outcount = 0;
	int checksum = 0;
	int prefix = readc();
	if (prefix < 0) { printi(0); printc('\n'); return 0; }
	int c = readc();
	while (c >= 0) {
		int key = prefix * 256 + c + 1;
		int h = key % 8192;
		int found = 0 - 1;
		while (hkey[h] != 0) {
			if (hkey[h] == key) { found = hval[h]; break; }
			h++;
			if (h == 8192) { h = 0; }
		}
		if (found >= 0) {
			prefix = found;
		} else {
			checksum = (checksum * 31 + prefix) % 1000000007;
			outcount++;
			if (nextcode < 6000) { hkey[h] = key; hval[h] = nextcode; nextcode++; }
			prefix = c;
		}
		c = readc();
	}
	checksum = (checksum * 31 + prefix) % 1000000007;
	outcount++;
	printi(outcount); printc(' '); printi(checksum); printc('\n');
	return 0;
}
`

const grepSrc = `
/* grep analogue: Kernighan-Pike regex-lite (literals, '.', postfix '*',
 * '^' anchor, '$' end) over the input lines. First line is the pattern. */
char pat[128];
char buf[512];

int matchhere(char *re, char *s);

int matchstar(int c, char *re, char *s) {
	do {
		if (matchhere(re, s) != 0) { return 1; }
	} while (*s != 0 && (*s++ == c || c == '.'));
	return 0;
}

int matchhere(char *re, char *s) {
	if (re[0] == 0) { return 1; }
	if (re[1] == '*') { return matchstar(re[0], re + 2, s); }
	if (re[0] == '$' && re[1] == 0) { return *s == 0; }
	if (*s != 0 && (re[0] == '.' || re[0] == *s)) { return matchhere(re + 1, s + 1); }
	return 0;
}

int match(char *re, char *s) {
	if (re[0] == '^') { return matchhere(re + 1, s); }
	do {
		if (matchhere(re, s) != 0) { return 1; }
	} while (*s++ != 0);
	return 0;
}

int readline(char *dst, int cap) {
	int n = 0;
	int c = readc();
	if (c < 0) { return 0 - 1; }
	while (c >= 0 && c != '\n') {
		if (n < cap - 1) { dst[n] = c; n++; }
		c = readc();
	}
	dst[n] = 0;
	return n;
}

int main() {
	if (readline(pat, 128) < 0) { return 0; }
	int lineno = 0;
	int hits = 0;
	while (readline(buf, 512) >= 0) {
		lineno++;
		if (match(pat, buf) != 0) { hits++; }
	}
	printi(hits); printc('/'); printi(lineno); printc('\n');
	return 0;
}
`

const rnSrc = `
/* rn analogue: parse news articles (header lines then body), filter by
 * group and subject, and accumulate statistics. */
char buf[512];
int groupcount[8];

int readline(char *dst, int cap) {
	int n = 0;
	int c = readc();
	if (c < 0) { return 0 - 1; }
	while (c >= 0 && c != '\n') {
		if (n < cap - 1) { dst[n] = c; n++; }
		c = readc();
	}
	dst[n] = 0;
	return n;
}

int startswith(char *s, char *p) {
	while (*p != 0) {
		if (*s == 0) { return 0; }
		if (*s != *p) { return 0; }
		s++;
		p++;
	}
	return 1;
}

int hashgroup(char *s) {
	int h = 0;
	while (*s != 0) { h = (h * 131 + *s) % 100003; s++; }
	return h % 8;
}

int main() {
	int articles = 0;
	int replies = 0;
	int bodylines = 0;
	int inheader = 1;
	int n = readline(buf, 512);
	while (n >= 0) {
		if (n == 0) {
			inheader = 1;
		} else if (inheader != 0 && startswith(buf, "From:") != 0) {
			articles++;
		} else if (inheader != 0 && startswith(buf, "Group:") != 0) {
			groupcount[hashgroup(buf + 7)]++;
		} else if (inheader != 0 && startswith(buf, "Subject:") != 0) {
			if (startswith(buf + 9, "Re:") != 0) { replies++; }
			inheader = 0;
		} else {
			bodylines++;
		}
		n = readline(buf, 512);
	}
	printi(articles); printc(' ');
	printi(replies); printc(' ');
	printi(bodylines); printc(' ');
	int i;
	int best = 0;
	for (i = 1; i < 8; i++) {
		if (groupcount[i] > groupcount[best]) { best = i; }
	}
	printi(best); printc('\n');
	return 0;
}
`

const awkSrc = `
/* awk analogue: split lines into integer fields, filter, and aggregate
 * into a chained hash table keyed by the first field's bucket. */
struct entry { int key; int sum; int count; struct entry *next; };
struct entry *table[64];
char buf[512];
int fields[32];
int nfields;

int readline(char *dst, int cap) {
	int n = 0;
	int c = readc();
	if (c < 0) { return 0 - 1; }
	while (c >= 0 && c != '\n') {
		if (n < cap - 1) { dst[n] = c; n++; }
		c = readc();
	}
	dst[n] = 0;
	return n;
}

void split() {
	nfields = 0;
	int i = 0;
	while (buf[i] != 0) {
		while (buf[i] == ' ') { i++; }
		if (buf[i] == 0) { break; }
		int v = 0;
		while (buf[i] >= '0' && buf[i] <= '9') { v = v * 10 + (buf[i] - '0'); i++; }
		if (nfields < 32) { fields[nfields] = v; nfields++; }
	}
}

void record(int key, int val) {
	int b = key % 64;
	struct entry *e = table[b];
	while (e != 0) {
		if (e->key == key) { e->sum += val; e->count++; return; }
		e = e->next;
	}
	e = (struct entry*)alloc(sizeof(struct entry));
	e->key = key;
	e->sum = val;
	e->count = 1;
	e->next = table[b];
	table[b] = e;
}

int main() {
	int selected = 0;
	int lines = 0;
	while (readline(buf, 512) >= 0) {
		lines++;
		split();
		if (nfields < 2) { continue; }
		if (fields[1] > 500) {
			selected++;
			record(fields[0] % 97, fields[nfields - 1]);
		}
	}
	int i;
	int keys = 0;
	int total = 0;
	for (i = 0; i < 64; i++) {
		struct entry *e = table[i];
		while (e != 0) {
			keys++;
			total = (total + e->sum) % 1000000007;
			e = e->next;
		}
	}
	printi(lines); printc(' ');
	printi(selected); printc(' ');
	printi(keys); printc(' ');
	printi(total); printc('\n');
	return 0;
}
`

const espressoSrc = `
/* espresso analogue: PLA cube minimization. Cubes over v variables are
 * pairs of bitmasks (care, value); two cubes merge when they differ in
 * exactly one cared variable. Iterate merging to a fixed point. */
int care[4096];
int val[4096];
int live[4096];
int ncubes;

int popcount(int x) {
	int n = 0;
	while (x != 0) { x = x & (x - 1); n++; }
	return n;
}

int main() {
	int v = readi();
	int seed = readi();
	srand(seed);
	int size = 1 << v;
	if (size > 2048) { size = 2048; }
	ncubes = 0;
	int i;
	/* Minterms of a random function with ~45% density. */
	for (i = 0; i < size; i++) {
		if (rand() % 100 < 45) {
			care[ncubes] = (1 << v) - 1;
			val[ncubes] = i;
			live[ncubes] = 1;
			ncubes++;
		}
	}
	int merged = 1;
	int rounds = 0;
	while (merged != 0 && rounds < 12) {
		merged = 0;
		rounds++;
		int a;
		for (a = 0; a < ncubes; a++) {
			if (live[a] == 0) { continue; }
			int b;
			for (b = a + 1; b < ncubes; b++) {
				if (live[b] == 0) { continue; }
				if (care[a] != care[b]) { continue; }
				int d = (val[a] ^ val[b]) & care[a];
				if (popcount(d) == 1) {
					/* Merge: drop the differing variable. */
					if (ncubes < 4096) {
						care[ncubes] = care[a] & ~d;
						val[ncubes] = val[a] & ~d;
						live[ncubes] = 1;
						live[a] = 0;
						live[b] = 0;
						ncubes++;
						merged = 1;
					}
					break;
				}
			}
		}
	}
	int kept = 0;
	int lits = 0;
	for (i = 0; i < ncubes; i++) {
		if (live[i] != 0) { kept++; lits += popcount(care[i]); }
	}
	printi(kept); printc(' '); printi(lits); printc(' '); printi(rounds); printc('\n');
	return 0;
}
`

const qptSrc = `
/* qpt analogue: build a random control flow graph, run iterative DFS,
 * classify backedges, and count loop heads — the tool the paper built on,
 * applied to itself in spirit. Input: nblocks, seed, nprocs. */
int head[512];
int nxt[2048];
int dst[2048];
int nedges;
int state[512];
int dfsnum[512];
int stack[512];
int iter[512];

void addedge(int a, int b) {
	dst[nedges] = b;
	nxt[nedges] = head[a];
	head[a] = nedges;
	nedges++;
}

int main() {
	int n = readi();
	int seed = readi();
	int procs = readi();
	srand(seed);
	int totheads = 0;
	int totback = 0;
	int p;
	for (p = 0; p < procs; p++) {
		int i;
		for (i = 0; i < n; i++) { head[i] = 0 - 1; state[i] = 0; dfsnum[i] = 0 - 1; }
		nedges = 0;
		/* Mostly forward edges plus some back/self edges. */
		for (i = 0; i + 1 < n; i++) { addedge(i, i + 1); }
		int extra = n / 2;
		int e;
		for (e = 0; e < extra; e++) {
			int a = rand() % n;
			int b = rand() % n;
			if (nedges < 2040) { addedge(a, b); }
		}
		/* Iterative DFS from block 0. */
		int clock = 0;
		int sp = 0;
		stack[0] = 0;
		iter[0] = head[0];
		state[0] = 1;
		dfsnum[0] = clock;
		clock++;
		while (sp >= 0) {
			int b = stack[sp];
			int it = iter[sp];
			if (it < 0) {
				state[b] = 2;
				sp--;
				continue;
			}
			iter[sp] = nxt[it];
			int d = dst[it];
			if (state[d] == 0) {
				state[d] = 1;
				dfsnum[d] = clock;
				clock++;
				sp++;
				stack[sp] = d;
				iter[sp] = head[d];
			} else if (state[d] == 1) {
				totback++; /* retreating edge: loop */
				if (dfsnum[d] == 0 || dfsnum[d] < dfsnum[b]) { totheads++; }
			}
		}
	}
	printi(totheads); printc(' '); printi(totback); printc('\n');
	return 0;
}
`

const eqntottSrc = `
/* eqntott analogue: build the truth table of a random boolean DAG over v
 * variables, then quicksort rows by (output, assignment) and count the
 * ON-set. The comparison loops concentrate dynamic non-loop branches in a
 * couple of sites, like the original's cmppt. */
int opk[64];
int opa[64];
int opb[64];
int rows[8192];
int vals[96];

void sortrows(int lo, int hi) {
	if (lo >= hi) { return; }
	int p = rows[(lo + hi) / 2];
	int i = lo;
	int j = hi;
	while (i <= j) {
		while (rows[i] < p) { i++; }
		while (rows[j] > p) { j--; }
		if (i <= j) {
			int t = rows[i];
			rows[i] = rows[j];
			rows[j] = t;
			i++;
			j--;
		}
	}
	sortrows(lo, j);
	sortrows(i, hi);
}

int main() {
	int v = readi();
	int seed = readi();
	srand(seed);
	if (v > 13) { v = 13; }
	int nops = 2 * v;
	int i;
	for (i = 0; i < nops; i++) {
		opk[i] = rand() % 3;
		opa[i] = rand() % (v + i);
		opb[i] = rand() % (v + i);
	}
	int size = 1 << v;
	int a;
	for (a = 0; a < size; a++) {
		for (i = 0; i < v; i++) { vals[i] = (a >> i) & 1; }
		for (i = 0; i < nops; i++) {
			int x = vals[opa[i]];
			int y = vals[opb[i]];
			int r;
			if (opk[i] == 0) { r = x & y; }
			else if (opk[i] == 1) { r = x | y; }
			else { r = x ^ y; }
			vals[v + i] = r;
		}
		int out = vals[v + nops - 1];
		rows[a] = out * size * 2 + a;
	}
	sortrows(0, size - 1);
	int onset = 0;
	for (a = 0; a < size; a++) {
		if (rows[a] >= size * 2) { onset++; }
	}
	printi(onset); printc('/'); printi(size); printc('\n');
	return 0;
}
`

const addalgSrc = `
/* addalg analogue: 0/1 knapsack by branch and bound with an upper-bound
 * prune. Input: nitems, seed. */
int weight[32];
int value[32];
int nitems;
int cap;
int best;

int bound(int i, int w, int v) {
	/* Fractional relaxation without division: greedy by index (items are
	 * generated in roughly decreasing density). */
	int ub = v;
	int room = cap - w;
	while (i < nitems && room > 0) {
		if (weight[i] <= room) { room -= weight[i]; ub += value[i]; }
		else { ub += value[i]; room = 0; }
		i++;
	}
	return ub;
}

void search(int i, int w, int v) {
	if (v > best) { best = v; }
	if (i >= nitems) { return; }
	if (bound(i, w, v) <= best) { return; }
	if (w + weight[i] <= cap) {
		search(i + 1, w + weight[i], v + value[i]);
	}
	search(i + 1, w, v);
}

int main() {
	nitems = readi();
	int seed = readi();
	srand(seed);
	if (nitems > 30) { nitems = 30; }
	int i;
	int total = 0;
	for (i = 0; i < nitems; i++) {
		weight[i] = 5 + rand() % 40;
		value[i] = weight[i] * (30 - i) / 10 + rand() % 9;
		total += weight[i];
	}
	cap = total * 2 / 5;
	best = 0;
	search(0, 0, 0);
	printi(best); printc('\n');
	return 0;
}
`

const ghostviewSrc = `
/* ghostview analogue: interpret a stream of drawing commands (a switch
 * dispatch — indirect jump), maintaining pen state, a bounding box, and a
 * clip-rejection test. Input: ncommands, seed. */
int main() {
	int n = readi();
	int seed = readi();
	srand(seed);
	int x = 0;
	int y = 0;
	int minx = 0;
	int miny = 0;
	int maxx = 0;
	int maxy = 0;
	int drawn = 0;
	int clipped = 0;
	int pendown = 0;
	int i;
	for (i = 0; i < n; i++) {
		int op = rand() % 8;
		int a = rand() % 1024 - 512;
		int b = rand() % 1024 - 512;
		switch (op) {
		case 0: x = a; y = b;
		case 1: x += a % 64; y += b % 64;
		case 2: pendown = 1;
		case 3: pendown = 0;
		case 4:
			if (pendown != 0) {
				/* Clip to the 0..255 square. */
				if (x < 0 || x > 255 || y < 0 || y > 255) {
					clipped++;
				} else {
					drawn++;
					if (x < minx) { minx = x; }
					if (x > maxx) { maxx = x; }
					if (y < miny) { miny = y; }
					if (y > maxy) { maxy = y; }
				}
			}
		case 5: x = (x + a) % 512;
		case 6: y = (y + b) % 512;
		case 7:
			if (a > b) { x = a; } else { y = b; }
		}
	}
	printi(drawn); printc(' ');
	printi(clipped); printc(' ');
	printi(maxx - minx); printc(' ');
	printi(maxy - miny); printc('\n');
	return 0;
}
`

const qpSrc = `
/* qp analogue: count the ways to tile an R x C board with dominoes by
 * backtracking over the first empty cell. Input: rows, cols. */
int board[64];
int R;
int C;
int solutions;

void fill(int pos) {
	while (pos < R * C && board[pos] != 0) { pos++; }
	if (pos >= R * C) { solutions++; return; }
	int r = pos / C;
	int c = pos % C;
	/* Horizontal domino. */
	if (c + 1 < C && board[pos + 1] == 0) {
		board[pos] = 1;
		board[pos + 1] = 1;
		fill(pos + 2);
		board[pos] = 0;
		board[pos + 1] = 0;
	}
	/* Vertical domino. */
	if (r + 1 < R) {
		board[pos] = 1;
		board[pos + C] = 1;
		fill(pos + 1);
		board[pos] = 0;
		board[pos + C] = 0;
	}
}

int main() {
	R = readi();
	C = readi();
	if (R * C > 60) { printi(0); printc('\n'); return 0; }
	int i;
	for (i = 0; i < R * C; i++) { board[i] = 0; }
	solutions = 0;
	if (R * C % 2 == 0) { fill(0); }
	printi(solutions); printc('\n');
	return 0;
}
`
