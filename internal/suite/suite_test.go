package suite

import (
	"strings"
	"testing"

	"ballarus/internal/core"
	"ballarus/internal/interp"
)

func TestAllBenchmarksCompile(t *testing.T) {
	if len(All()) != 23 {
		t.Fatalf("suite has %d benchmarks, want 23 (the paper's Table 1)", len(All()))
	}
	for _, b := range All() {
		prog, err := b.Compile()
		if err != nil {
			t.Errorf("%s: %v", b.Name, err)
			continue
		}
		if err := prog.Validate(); err != nil {
			t.Errorf("%s: invalid MIR: %v", b.Name, err)
		}
	}
}

func TestAllBenchmarksRunAllDatasets(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := b.Compile()
			if err != nil {
				t.Fatal(err)
			}
			if len(b.Data) < 2 {
				t.Errorf("%s has %d datasets; Section 7 needs at least 2", b.Name, len(b.Data))
			}
			for _, ds := range b.Data {
				res, err := interp.Run(prog, interp.Config{Input: ds.Input, Budget: b.Budget})
				if err != nil {
					t.Fatalf("dataset %s: %v (after %d steps, output %q)", ds.Name, err, res.Steps, res.Output)
				}
				if !strings.HasSuffix(res.Output, "\n") || len(res.Output) < 2 {
					t.Errorf("dataset %s: suspicious output %q", ds.Name, res.Output)
				}
				if res.Profile.Total() == 0 {
					t.Errorf("dataset %s: no conditional branches executed", ds.Name)
				}
				t.Logf("dataset %-8s steps=%8d branches=%8d output=%q",
					ds.Name, res.Steps, res.Profile.Total(), strings.TrimSpace(res.Output))
			}
		})
	}
}

func TestBenchmarksAnalyzable(t *testing.T) {
	for _, b := range All() {
		prog, err := b.Compile()
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.Analyze(prog, core.Options{})
		if err != nil {
			t.Errorf("%s: %v", b.Name, err)
			continue
		}
		if len(a.Branches) == 0 {
			t.Errorf("%s: no branches analyzed", b.Name)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	b := Get("xlisp")
	prog, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	r1, err1 := interp.Run(prog, interp.Config{Input: b.Data[0].Input, Budget: b.Budget})
	r2, err2 := interp.Run(prog, interp.Config{Input: b.Data[0].Input, Budget: b.Budget})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.Output != r2.Output || r1.Steps != r2.Steps {
		t.Error("runs are not deterministic")
	}
}

func TestGetAndNames(t *testing.T) {
	if Get("nosuch") != nil {
		t.Error("Get of unknown benchmark should be nil")
	}
	names := Names()
	if len(names) != 23 {
		t.Fatalf("Names() returned %d entries", len(names))
	}
	// Integer group first, FP group second.
	fpSeen := false
	for _, n := range names {
		b := Get(n)
		if b.FP {
			fpSeen = true
		} else if fpSeen {
			t.Errorf("integer benchmark %s after FP group", n)
		}
	}
}
