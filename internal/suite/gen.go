package suite

import "strings"

// gen is a small deterministic generator for synthetic datasets (the
// paper's inputs are SPEC-proprietary; these are their stand-ins).
type gen struct{ s uint64 }

func newGen(seed int64) *gen { return &gen{s: uint64(seed)*2862933555777941757 + 3037000493} }

func (g *gen) next() uint64 {
	g.s = g.s*6364136223846793005 + 1442695040888963407
	return g.s >> 17
}

func (g *gen) intn(n int) int { return int(g.next() % uint64(n)) }

// genExprLines produces `count` arithmetic-expression lines over integers,
// variables a-z, + - * / and parentheses — input for the gcc and lcc
// analogues.
func genExprLines(seed int64, count int) string {
	g := newGen(seed)
	var b strings.Builder
	ops := []byte{'+', '-', '*', '/'}
	var expr func(depth int)
	expr = func(depth int) {
		if depth <= 0 || g.intn(4) == 0 {
			if g.intn(3) == 0 {
				b.WriteByte(byte('a' + g.intn(26)))
			} else {
				n := 1 + g.intn(99)
				b.WriteString(itoa(n))
			}
			return
		}
		paren := g.intn(3) == 0
		if paren {
			b.WriteByte('(')
		}
		expr(depth - 1)
		b.WriteByte(ops[g.intn(len(ops))])
		expr(depth - 1)
		if paren {
			b.WriteByte(')')
		}
	}
	for i := 0; i < count; i++ {
		expr(2 + g.intn(4))
		b.WriteByte('\n')
	}
	return b.String()
}

// genProse produces word-like text with repetition (good LZW fodder and
// grep corpus). Lines end in '\n'.
func genProse(seed int64, lines, wordsPerLine int) string {
	g := newGen(seed)
	vocab := []string{
		"loop", "branch", "predict", "static", "profile", "edge", "miss",
		"rate", "target", "taken", "fall", "thru", "heuristic", "natural",
		"opcode", "call", "return", "guard", "store", "pointer", "block",
		"graph", "cycle", "trace", "paper", "bench", "mark", "dataset",
	}
	var b strings.Builder
	for l := 0; l < lines; l++ {
		for w := 0; w < wordsPerLine; w++ {
			if w > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(vocab[g.intn(len(vocab))])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// genArticles produces rn-style articles: header lines then a body,
// separated by blank lines.
func genArticles(seed int64, count int) string {
	g := newGen(seed)
	groups := []string{"comp.arch", "comp.compilers", "rec.games", "sci.math"}
	var b strings.Builder
	for i := 0; i < count; i++ {
		b.WriteString("From: user")
		b.WriteString(itoa(g.intn(40)))
		b.WriteByte('\n')
		b.WriteString("Group: ")
		b.WriteString(groups[g.intn(len(groups))])
		b.WriteByte('\n')
		b.WriteString("Subject: ")
		if g.intn(3) == 0 {
			b.WriteString("Re: ")
		}
		b.WriteString("topic")
		b.WriteString(itoa(g.intn(25)))
		b.WriteByte('\n')
		for l, n := 0, 1+g.intn(5); l < n; l++ {
			for w := 0; w < 4+g.intn(8); w++ {
				if w > 0 {
					b.WriteByte(' ')
				}
				b.WriteString("word")
				b.WriteString(itoa(g.intn(100)))
			}
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// genFields produces awk-style lines of integer fields.
func genFields(seed int64, lines, fields int) string {
	g := newGen(seed)
	var b strings.Builder
	for l := 0; l < lines; l++ {
		for f := 0; f < fields; f++ {
			if f > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(itoa(g.intn(1000)))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [24]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
