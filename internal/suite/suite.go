// Package suite contains the 23 benchmark programs of the reproduction,
// written in minic. Each is an analogue of one benchmark from the paper's
// Table 1, built to exercise the same branch population the paper
// describes for it: the pointer-chasing interpreters and compilers, the
// text utilities dominated by a handful of hot non-loop branches, and the
// Fortran-style floating-point kernels (including the tomcatv array-max
// idiom that defeats the Guard heuristic and is rescued by Store).
//
// Programs read their parameters (sizes, seeds) and any text from the
// dataset input stream, so every benchmark ships multiple datasets for the
// Section 7 cross-dataset experiment.
package suite

import (
	"fmt"
	"sort"
	"sync"

	"ballarus/internal/minic"
	"ballarus/internal/mir"
)

// Dataset is one input for a benchmark.
type Dataset struct {
	Name  string
	Input []int64
}

// Benchmark is one suite program. Datasets[0] is the default dataset used
// by the paper-table reproductions; the rest feed Graph 13.
type Benchmark struct {
	Name   string
	Desc   string // paper Table 1 description of the analogue's original
	FP     bool   // floating-point group (the paper's second block)
	Traced bool   // included in the Section 6 trace experiments
	Budget int64  // instruction budget per run
	Source string
	Data   []Dataset

	// Compile() memoizes per benchmark, so distinct benchmarks compile
	// in parallel while concurrent callers of the same one share a
	// single compilation.
	compileOnce sync.Once
	compiled    *mir.Program
	compileErr  error
}

var (
	registry []*Benchmark
	byName   = map[string]*Benchmark{}
)

func register(b *Benchmark) {
	if _, dup := byName[b.Name]; dup {
		panic("suite: duplicate benchmark " + b.Name)
	}
	if b.Budget == 0 {
		b.Budget = 16 << 20
	}
	registry = append(registry, b)
	byName[b.Name] = b
}

// All returns every benchmark, integer group first (paper Table 1 order:
// grouped by floating-point usage).
func All() []*Benchmark {
	out := append([]*Benchmark(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].FP != out[j].FP {
			return !out[i].FP
		}
		return false // keep registration order within groups
	})
	return out
}

// Names returns every benchmark name in All() order.
func Names() []string {
	var out []string
	for _, b := range All() {
		out = append(out, b.Name)
	}
	return out
}

// Get returns the named benchmark or nil.
func Get(name string) *Benchmark { return byName[name] }

// CompileWith compiles the benchmark with explicit options (uncached);
// used by the ablation experiments.
func (b *Benchmark) CompileWith(opts minic.Options) (*mir.Program, error) {
	p, err := minic.Compile(b.Source, opts)
	if err != nil {
		return nil, fmt.Errorf("suite: %s: %w", b.Name, err)
	}
	return p, nil
}

// Compile compiles the benchmark (cached) with default options.
func (b *Benchmark) Compile() (*mir.Program, error) {
	b.compileOnce.Do(func() {
		p, err := minic.Compile(b.Source, minic.Options{})
		if err != nil {
			b.compileErr = fmt.Errorf("suite: %s: %w", b.Name, err)
			return
		}
		b.compiled = p
	})
	return b.compiled, b.compileErr
}

// text converts a string to an input stream of character codes.
func text(s string) []int64 {
	out := make([]int64, len(s))
	for i := 0; i < len(s); i++ {
		out[i] = int64(s[i])
	}
	return out
}

// nums builds an input stream from integers.
func nums(vs ...int64) []int64 { return vs }

// catInput concatenates input streams (e.g. parameters followed by text).
func catInput(parts ...[]int64) []int64 {
	var out []int64
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
