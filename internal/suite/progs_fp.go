package suite

// Analogues of the paper's floating-point benchmarks. tomcatv carries the
// paper's signature idiom: the array-maximum guard that the Guard
// heuristic mispredicts and the Store heuristic gets right (the maxima are
// memory-resident globals, so the update path stores).

func init() {
	register(&Benchmark{
		Name:   "spice2g6",
		Desc:   "circuit simulation (iterative nodal relaxation)",
		FP:     true,
		Traced: true,
		Source: spiceSrc,
		Data: []Dataset{
			{Name: "n120", Input: nums(120, 9)},
			{Name: "n80", Input: nums(80, 33)},
			{Name: "n200", Input: nums(200, 71)},
		},
	})

	register(&Benchmark{
		Name:   "doduc",
		Desc:   "hydrocode simulation (cell updates, much conditional flow)",
		FP:     true,
		Traced: true,
		Source: doducSrc,
		Data: []Dataset{
			{Name: "c300", Input: nums(300, 40, 7)},
			{Name: "c200", Input: nums(200, 55, 3)},
			{Name: "c400", Input: nums(400, 8, 5)},
		},
	})

	register(&Benchmark{
		Name:   "fpppp",
		Desc:   "two-electron integral derivative (long straight-line FP blocks)",
		FP:     true,
		Traced: true,
		Source: fppppSrc,
		Data: []Dataset{
			{Name: "p900", Input: nums(900, 3)},
			{Name: "p600", Input: nums(600, 19)},
			{Name: "p1200", Input: nums(1200, 44)},
		},
	})

	register(&Benchmark{
		Name:   "dnasa7",
		Desc:   "floating point kernels (seven mini-kernels)",
		FP:     true,
		Source: dnasaSrc,
		Data: []Dataset{
			{Name: "k40", Input: nums(40, 2)},
			{Name: "k32", Input: nums(32, 6)},
			{Name: "k48", Input: nums(48, 13)},
		},
	})

	register(&Benchmark{
		Name:   "tomcatv",
		Desc:   "vectorized mesh generation (array-max residual tracking)",
		FP:     true,
		Source: tomcatvSrc,
		Data: []Dataset{
			{Name: "m48", Input: nums(48, 12)},
			{Name: "m36", Input: nums(36, 20)},
			{Name: "m52", Input: nums(52, 8)},
		},
	})

	register(&Benchmark{
		Name:   "matrix300",
		Desc:   "matrix multiply",
		FP:     true,
		Source: matrixSrc,
		Data: []Dataset{
			{Name: "n40", Input: nums(40)},
			{Name: "n32", Input: nums(32)},
			{Name: "n46", Input: nums(46)},
		},
	})

	register(&Benchmark{
		Name:   "costScale",
		Desc:   "solve minimum cost flow (Bellman-Ford relaxation)",
		FP:     true,
		Source: costScaleSrc,
		Data: []Dataset{
			{Name: "n70", Input: nums(70, 350, 5)},
			{Name: "n50", Input: nums(50, 260, 21)},
			{Name: "n90", Input: nums(90, 500, 2)},
		},
	})

	register(&Benchmark{
		Name:   "dcg",
		Desc:   "conjugate gradient",
		FP:     true,
		Source: dcgSrc,
		Data: []Dataset{
			{Name: "n240", Input: nums(240, 8)},
			{Name: "n160", Input: nums(160, 4)},
			{Name: "n320", Input: nums(320, 29)},
		},
	})

	register(&Benchmark{
		Name:   "sgefat",
		Desc:   "Gaussian elimination with partial pivoting",
		FP:     true,
		Source: sgefatSrc,
		Data: []Dataset{
			{Name: "n30", Input: nums(30, 14)},
			{Name: "n24", Input: nums(24, 77)},
			{Name: "n36", Input: nums(36, 41)},
		},
	})
}

const spiceSrc = `
/* spice2g6 analogue: Gauss-Seidel nodal relaxation on a random resistive
 * network with a nonlinear clamp and per-node convergence checks. */
float v[256];
float inj[256];
int deg[256];
int nbr[256][4];

int main() {
	int n = readi();
	int seed = readi();
	srand(seed);
	if (n > 256) { n = 256; }
	int i;
	for (i = 0; i < n; i++) {
		v[i] = 0.0;
		inj[i] = (float)(rand() % 200 - 100) / 50.0;
		deg[i] = 2 + rand() % 3;
		int k;
		for (k = 0; k < deg[i]; k++) { nbr[i][k] = rand() % n; }
	}
	float vmax = 5.0;
	float eps = 0.001;
	int iter = 0;
	int converged = 0;
	while (converged == 0 && iter < 200) {
		float maxdelta = 0.0;
		for (i = 0; i < n; i++) {
			float sum = inj[i];
			int k;
			for (k = 0; k < deg[i]; k++) { sum = sum + v[nbr[i][k]]; }
			float nv = sum / (float)(deg[i] + 1);
			/* Nonlinear element: clamp like a diode limit. */
			if (nv > vmax) { nv = vmax; }
			if (nv < 0.0 - vmax) { nv = 0.0 - vmax; }
			float delta = nv - v[i];
			if (delta < 0.0) { delta = 0.0 - delta; }
			if (delta > maxdelta) { maxdelta = delta; }
			v[i] = nv;
		}
		iter++;
		if (maxdelta < eps) { converged = 1; }
	}
	float sum = 0.0;
	for (i = 0; i < n; i++) { sum = sum + v[i]; }
	printi(iter); printc(' '); printi((int)(sum * 1000.0)); printc('\n');
	return 0;
}
`

const doducSrc = `
/* doduc analogue: a 1-D hydrodynamics step loop over cells with density,
 * velocity and energy, boundary handling, clamps, and an adaptive
 * timestep — lots of conditional control inside loops, small blocks. */
float rho[512];
float u[512];
float e[512];
float p[512];
int ncell;

float pressure(float r, float en) {
	float pr = 0.4 * r * en;
	if (pr < 0.0) { pr = 0.0; }
	return pr;
}

float limiter(float a, float b) {
	/* minmod */
	if (a > 0.0 && b > 0.0) {
		if (a < b) { return a; }
		return b;
	}
	if (a < 0.0 && b < 0.0) {
		if (a > b) { return a; }
		return b;
	}
	return 0.0;
}

int step(float dt) {
	int i;
	int bad = 0;
	for (i = 0; i < ncell; i++) { p[i] = pressure(rho[i], e[i]); }
	for (i = 1; i < ncell - 1; i++) {
		float du = limiter(u[i] - u[i - 1], u[i + 1] - u[i]);
		float flux = rho[i] * du;
		rho[i] = rho[i] - dt * flux;
		if (rho[i] < 0.01) { rho[i] = 0.01; bad++; }
		u[i] = u[i] - dt * (p[i + 1] - p[i - 1]) / (rho[i] + rho[i]);
		e[i] = e[i] - dt * p[i] * du;
		if (e[i] < 0.0) { e[i] = 0.0; bad++; }
	}
	/* Reflecting boundaries. */
	u[0] = 0.0 - u[1];
	u[ncell - 1] = 0.0 - u[ncell - 2];
	rho[0] = rho[1];
	rho[ncell - 1] = rho[ncell - 2];
	e[0] = e[1];
	e[ncell - 1] = e[ncell - 2];
	return bad;
}

int main() {
	ncell = readi();
	int seed = readi();
	int steps10 = readi();
	srand(seed);
	if (ncell > 512) { ncell = 512; }
	int i;
	for (i = 0; i < ncell; i++) {
		rho[i] = 1.0 + (float)(rand() % 100) / 100.0;
		u[i] = (float)(rand() % 40 - 20) / 100.0;
		e[i] = 1.0 + (float)(rand() % 50) / 100.0;
	}
	/* Shock tube: dense left half. */
	for (i = 0; i < ncell / 2; i++) { rho[i] = rho[i] + 1.5; }
	float dt = 0.05;
	int totalbad = 0;
	int s;
	for (s = 0; s < steps10 * 10; s++) {
		int bad = step(dt);
		totalbad += bad;
		/* Adaptive timestep control. */
		if (bad > ncell / 8) { dt = dt * 0.5; }
		else if (bad == 0 && dt < 0.05) { dt = dt * 1.1; }
	}
	float mass = 0.0;
	for (i = 0; i < ncell; i++) { mass = mass + rho[i]; }
	printi(totalbad); printc(' '); printi((int)(mass * 10.0)); printc('\n');
	return 0;
}
`

const fppppSrc = `
/* fpppp analogue: per-point evaluation of long straight-line polynomial
 * blocks (the original's huge basic blocks), with a rare screening test.
 * Very few branches per instruction: sequences between breaks are long. */
float acc[16];

int main() {
	int npts = readi();
	int seed = readi();
	srand(seed);
	int i;
	for (i = 0; i < 16; i++) { acc[i] = 0.0; }
	int skipped = 0;
	int k;
	for (k = 0; k < npts; k++) {
		float x = (float)(rand() % 1000) / 500.0 - 1.0;
		float y = (float)(rand() % 1000) / 500.0 - 1.0;
		/* Screening: negligible integrals are skipped (rarely). */
		float r2 = x * x + y * y;
		if (r2 > 3.9) { skipped++; continue; }
		/* Long straight-line block: degree-8 bivariate polynomial pieces. */
		float x2 = x * x;
		float x3 = x2 * x;
		float x4 = x2 * x2;
		float y2 = y * y;
		float y3 = y2 * y;
		float y4 = y2 * y2;
		float t0 = 1.0 + 0.5 * x + 0.25 * x2 + 0.125 * x3 + 0.0625 * x4;
		float t1 = 1.0 - 0.5 * y + 0.25 * y2 - 0.125 * y3 + 0.0625 * y4;
		float t2 = x * y + x2 * y2 * 0.5 + x3 * y3 * 0.1666 + x4 * y4 * 0.04166;
		float t3 = (x2 + y2) * (x2 - y2) + 2.0 * x * y * (x2 + y2);
		float t4 = t0 * t1 + t2 * t3;
		float t5 = t0 * t2 - t1 * t3;
		float t6 = t4 * t4 - t5 * t5;
		float t7 = 2.0 * t4 * t5;
		float t8 = t6 * 0.9 + t7 * 0.1;
		float t9 = t6 * 0.1 - t7 * 0.9;
		acc[0] = acc[0] + t4;
		acc[1] = acc[1] + t5;
		acc[2] = acc[2] + t6 * 0.001;
		acc[3] = acc[3] + t7 * 0.001;
		acc[4] = acc[4] + t8 * 0.0001;
		acc[5] = acc[5] + t9 * 0.0001;
		acc[6] = acc[6] + x2 * t1;
		acc[7] = acc[7] + y2 * t0;
	}
	float total = 0.0;
	for (i = 0; i < 8; i++) { total = total + acc[i]; }
	printi(skipped); printc(' '); printi((int)total); printc('\n');
	return 0;
}
`

const dnasaSrc = `
/* dnasa7 analogue: seven small floating-point kernels run in sequence:
 * daxpy, dot product, matmul, red-black relaxation, 3-point stencil,
 * running prefix, and a butterfly pass. */
float a[64][64];
float b[64][64];
float c[64][64];
float x[4096];
float y[4096];

int main() {
	int n = readi();
	int seed = readi();
	srand(seed);
	if (n > 64) { n = 64; }
	int nn = n * n;
	if (nn > 4096) { nn = 4096; }
	int i;
	int j;
	int k;
	for (i = 0; i < n; i++) {
		for (j = 0; j < n; j++) {
			a[i][j] = (float)(rand() % 100) / 100.0;
			b[i][j] = (float)(rand() % 100) / 100.0;
			c[i][j] = 0.0;
		}
	}
	for (i = 0; i < nn; i++) {
		x[i] = (float)(rand() % 1000) / 1000.0;
		y[i] = (float)(rand() % 1000) / 1000.0;
	}
	/* 1: daxpy */
	for (i = 0; i < nn; i++) { y[i] = y[i] + 1.5 * x[i]; }
	/* 2: dot */
	float dot = 0.0;
	for (i = 0; i < nn; i++) { dot = dot + x[i] * y[i]; }
	/* 3: matmul */
	for (i = 0; i < n; i++) {
		for (j = 0; j < n; j++) {
			float s = 0.0;
			for (k = 0; k < n; k++) { s = s + a[i][k] * b[k][j]; }
			c[i][j] = s;
		}
	}
	/* 4: red-black relaxation over x */
	int sweep;
	for (sweep = 0; sweep < 4; sweep++) {
		for (i = 2; i < nn - 1; i += 2) { x[i] = 0.5 * (x[i - 1] + x[i + 1]); }
		for (i = 1; i < nn - 1; i += 2) { x[i] = 0.5 * (x[i - 1] + x[i + 1]); }
	}
	/* 5: stencil into y */
	for (i = 1; i < nn - 1; i++) { y[i] = 0.25 * x[i - 1] + 0.5 * x[i] + 0.25 * x[i + 1]; }
	/* 6: prefix */
	for (i = 1; i < nn; i++) { y[i] = y[i] + y[i - 1]; }
	/* 7: butterfly */
	int half = nn / 2;
	for (i = 0; i < half; i++) {
		float t = x[i] + x[i + half];
		float u = x[i] - x[i + half];
		x[i] = t;
		x[i + half] = u;
	}
	float trace = 0.0;
	for (i = 0; i < n; i++) { trace = trace + c[i][i]; }
	printi((int)(dot * 10.0)); printc(' ');
	printi((int)trace); printc(' ');
	printi((int)(y[nn - 1] / 100.0)); printc('\n');
	return 0;
}
`

const tomcatvSrc = `
/* tomcatv analogue: mesh smoothing iterations with the paper's signature
 * residual-maximum idiom — the two max-update branches account for nearly
 * all dynamic non-loop branches, defeat the Guard heuristic, and are
 * rescued by the Store heuristic (the maxima are memory-resident). */
float xm[56][56];
float ym[56][56];
float rxm;
float rym;
int n;

int main() {
	n = readi();
	int iters = readi();
	if (n > 56) { n = 56; }
	int i;
	int j;
	for (i = 0; i < n; i++) {
		for (j = 0; j < n; j++) {
			xm[i][j] = (float)(i * 3 + (i * j) % 7);
			ym[i][j] = (float)(j * 3 + (i + j) % 5);
		}
	}
	int it;
	for (it = 0; it < iters; it++) {
		rxm = 0.0;
		rym = 0.0;
		for (i = 1; i < n - 1; i++) {
			for (j = 1; j < n - 1; j++) {
				float xr = 0.25 * (xm[i - 1][j] + xm[i + 1][j] + xm[i][j - 1] + xm[i][j + 1]) - xm[i][j];
				float yr = 0.25 * (ym[i - 1][j] + ym[i + 1][j] + ym[i][j - 1] + ym[i][j + 1]) - ym[i][j];
				if (xr < 0.0) { xr = 0.0 - xr; }
				if (yr < 0.0) { yr = 0.0 - yr; }
				/* The two hot branches: track the maximum residuals. */
				if (xr > rxm) { rxm = xr; }
				if (yr > rym) { rym = yr; }
				xm[i][j] = xm[i][j] + 0.9 * (0.25 * (xm[i - 1][j] + xm[i + 1][j] + xm[i][j - 1] + xm[i][j + 1]) - xm[i][j]);
				ym[i][j] = ym[i][j] + 0.9 * (0.25 * (ym[i - 1][j] + ym[i + 1][j] + ym[i][j - 1] + ym[i][j + 1]) - ym[i][j]);
			}
		}
	}
	printi((int)(rxm * 1000.0)); printc(' ');
	printi((int)(rym * 1000.0)); printc('\n');
	return 0;
}
`

const matrixSrc = `
/* matrix300 analogue: dense matrix multiply; almost every dynamic branch
 * controls a loop. */
float a[48][48];
float b[48][48];
float c[48][48];

int main() {
	int n = readi();
	if (n > 48) { n = 48; }
	int i;
	int j;
	int k;
	for (i = 0; i < n; i++) {
		for (j = 0; j < n; j++) {
			if (i == j) { a[i][j] = 2.0; } else { a[i][j] = (float)((i + j) % 3) * 0.5; }
			b[i][j] = (float)((i * j) % 5) * 0.25;
			c[i][j] = 0.0;
		}
	}
	for (i = 0; i < n; i++) {
		for (j = 0; j < n; j++) {
			float s = 0.0;
			for (k = 0; k < n; k++) { s = s + a[i][k] * b[k][j]; }
			c[i][j] = s;
		}
	}
	float trace = 0.0;
	for (i = 0; i < n; i++) { trace = trace + c[i][i]; }
	printi((int)(trace * 100.0)); printc('\n');
	return 0;
}
`

const costScaleSrc = `
/* costScale analogue: shortest paths by Bellman-Ford relaxation with
 * float edge costs (the relaxation test is the hot branch), then a
 * flow-cost accumulation pass. Input: nodes, edges, seed. */
int esrc[2048];
int edst[2048];
float ecost[2048];
float dist[256];
int pred[256];

int main() {
	int n = readi();
	int m = readi();
	int seed = readi();
	srand(seed);
	if (n > 256) { n = 256; }
	if (m > 2048) { m = 2048; }
	int i;
	for (i = 0; i < m; i++) {
		esrc[i] = rand() % n;
		edst[i] = rand() % n;
		ecost[i] = 0.1 + (float)(rand() % 1000) / 250.0;
	}
	for (i = 0; i < n; i++) { dist[i] = 1000000.0; pred[i] = 0 - 1; }
	dist[0] = 0.0;
	int pass = 0;
	int changed = 1;
	while (changed != 0 && pass < n) {
		changed = 0;
		pass++;
		int e;
		for (e = 0; e < m; e++) {
			float nd = dist[esrc[e]] + ecost[e];
			if (nd < dist[edst[e]]) {
				dist[edst[e]] = nd;
				pred[edst[e]] = esrc[e];
				changed = 1;
			}
		}
	}
	int reached = 0;
	float total = 0.0;
	for (i = 0; i < n; i++) {
		if (dist[i] < 999999.0) { reached++; total = total + dist[i]; }
	}
	printi(pass); printc(' ');
	printi(reached); printc(' ');
	printi((int)(total * 10.0)); printc('\n');
	return 0;
}
`

const dcgSrc = `
/* dcg analogue: conjugate gradient on a symmetric positive definite
 * tridiagonal system. */
float xv[512];
float rv[512];
float pv[512];
float ap[512];
float bv[512];
int n;

/* y = A*p for A = tridiag(-1, 4, -1). */
void matvec(float *p, float *y) {
	int i;
	for (i = 0; i < n; i++) {
		float s = 4.0 * p[i];
		if (i > 0) { s = s - p[i - 1]; }
		if (i < n - 1) { s = s - p[i + 1]; }
		y[i] = s;
	}
}

float dot(float *a, float *b) {
	float s = 0.0;
	int i;
	for (i = 0; i < n; i++) { s = s + a[i] * b[i]; }
	return s;
}

int main() {
	n = readi();
	int seed = readi();
	srand(seed);
	if (n > 512) { n = 512; }
	int i;
	for (i = 0; i < n; i++) {
		bv[i] = (float)(rand() % 100) / 10.0;
		xv[i] = 0.0;
		rv[i] = bv[i];
		pv[i] = bv[i];
	}
	float rs = dot(rv, rv);
	int iter = 0;
	while (iter < 400 && rs > 0.000001) {
		matvec(pv, ap);
		float alpha = rs / dot(pv, ap);
		for (i = 0; i < n; i++) { xv[i] = xv[i] + alpha * pv[i]; }
		for (i = 0; i < n; i++) { rv[i] = rv[i] - alpha * ap[i]; }
		float rsnew = dot(rv, rv);
		float beta = rsnew / rs;
		for (i = 0; i < n; i++) { pv[i] = rv[i] + beta * pv[i]; }
		rs = rsnew;
		iter++;
	}
	float sum = 0.0;
	for (i = 0; i < n; i++) { sum = sum + xv[i]; }
	printi(iter); printc(' '); printi((int)(sum * 10.0)); printc('\n');
	return 0;
}
`

const sgefatSrc = `
/* sgefat analogue: Gaussian elimination with partial pivoting and back
 * substitution; the pivot search is another array-max idiom. */
float m[40][41];
int n;

int main() {
	n = readi();
	int seed = readi();
	srand(seed);
	if (n > 40) { n = 40; }
	int i;
	int j;
	for (i = 0; i < n; i++) {
		float rowsum = 0.0;
		for (j = 0; j < n; j++) {
			m[i][j] = (float)(rand() % 200 - 100) / 50.0;
			float v = m[i][j];
			if (v < 0.0) { v = 0.0 - v; }
			rowsum = rowsum + v;
		}
		m[i][i] = rowsum + 1.0; /* diagonally dominant: nonsingular */
		m[i][n] = (float)(rand() % 100) / 10.0;
	}
	int col;
	for (col = 0; col < n; col++) {
		/* Partial pivoting: find the largest |m[r][col]|, r >= col. */
		int piv = col;
		float best = m[col][col];
		if (best < 0.0) { best = 0.0 - best; }
		for (i = col + 1; i < n; i++) {
			float v = m[i][col];
			if (v < 0.0) { v = 0.0 - v; }
			if (v > best) { best = v; piv = i; }
		}
		if (best == 0.0) { prints("singular\n"); return 1; }
		if (piv != col) {
			for (j = col; j <= n; j++) {
				float t = m[col][j];
				m[col][j] = m[piv][j];
				m[piv][j] = t;
			}
		}
		for (i = col + 1; i < n; i++) {
			float f = m[i][col] / m[col][col];
			for (j = col; j <= n; j++) { m[i][j] = m[i][j] - f * m[col][j]; }
		}
	}
	/* Back substitution. */
	for (i = n - 1; i >= 0; i--) {
		float s = m[i][n];
		for (j = i + 1; j < n; j++) { s = s - m[i][j] * m[j][n]; }
		m[i][n] = s / m[i][i];
	}
	float sum = 0.0;
	for (i = 0; i < n; i++) { sum = sum + m[i][n]; }
	printi((int)(sum * 100.0)); printc('\n');
	return 0;
}
`
