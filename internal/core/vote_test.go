package core

import (
	"testing"
	"testing/quick"
)

func mkBranch(heur [NumHeuristics]Prediction, class Class) *Branch {
	b := &Branch{Class: class, Heur: heur, DefaultPred: PredFall, LoopPred: PredTaken}
	return b
}

func TestVoteMajority(t *testing.T) {
	var h [NumHeuristics]Prediction
	h[Opcode] = PredTaken
	h[Guard] = PredFall
	// Opcode outweighs Guard under the default weights.
	b := mkBranch(h, NonLoop)
	pred, ok := b.PredictVote(DefaultWeights)
	if !ok || pred != PredTaken {
		t.Errorf("vote = %v ok=%v, want taken by Opcode's weight", pred, ok)
	}
	// Flip the weights: Guard dominates.
	var w Weights
	w[Guard] = 1
	w[Opcode] = 0.1
	pred, ok = b.PredictVote(w)
	if !ok || pred != PredFall {
		t.Errorf("weighted vote = %v, want fall", pred)
	}
}

func TestVoteTieAndEmptyUseDefault(t *testing.T) {
	var h [NumHeuristics]Prediction
	b := mkBranch(h, NonLoop)
	pred, ok := b.PredictVote(DefaultWeights)
	if ok || pred != b.DefaultPred {
		t.Errorf("empty vote must fall back to default, got %v ok=%v", pred, ok)
	}
	// Exact tie: two heuristics with equal weight and opposite votes.
	h[CallH] = PredTaken
	h[ReturnH] = PredFall
	var w Weights
	w[CallH] = 0.3
	w[ReturnH] = 0.3
	b2 := mkBranch(h, NonLoop)
	pred, ok = b2.PredictVote(w)
	if ok || pred != b2.DefaultPred {
		t.Errorf("tied vote must fall back to default, got %v ok=%v", pred, ok)
	}
}

func TestVoteLoopBranchUsesLoopPredictor(t *testing.T) {
	var h [NumHeuristics]Prediction
	b := mkBranch(h, LoopBranch)
	pred, ok := b.PredictVote(DefaultWeights)
	if !ok || pred != PredTaken {
		t.Errorf("loop branch vote = %v, want the loop predictor's choice", pred)
	}
}

func TestFitWeights(t *testing.T) {
	var miss [NumHeuristics]float64
	miss[Opcode] = 10 // accurate -> weight 0.4
	miss[Guard] = 50  // coin flip -> 0
	miss[Store] = 90  // worse than chance -> clamped to 0
	w := FitWeights(miss)
	if w[Opcode] != 0.4 {
		t.Errorf("w[Opcode] = %f", w[Opcode])
	}
	if w[Guard] != 0 || w[Store] != 0 {
		t.Errorf("chance/anti weights must clamp to 0: %f %f", w[Guard], w[Store])
	}
}

func TestVoteNeverReturnsNone(t *testing.T) {
	f := func(raw [NumHeuristics]uint8, loop bool, wraw [NumHeuristics]uint8) bool {
		var h [NumHeuristics]Prediction
		var w Weights
		for i := range h {
			h[i] = Prediction(raw[i] % 3)
			w[i] = float64(wraw[i]) / 255
		}
		class := NonLoop
		if loop {
			class = LoopBranch
		}
		b := mkBranch(h, class)
		pred, _ := b.PredictVote(w)
		return pred == PredTaken || pred == PredFall
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestVoteOnRealProgram compares voting against the priority combiner on a
// compiled program: both must produce legal, complete prediction vectors.
func TestVoteOnRealProgram(t *testing.T) {
	a := analyzeSrc(t, `
struct node { int v; struct node *next; };
int g;
int walk(struct node *p) {
	int n = 0;
	while (p != 0) {
		if (p->v < 0) { printi(n); }
		if (p->v > 100) { g = n; }
		p = p->next;
		n++;
	}
	return n;
}
int main() { return walk(0); }`)
	votes := a.VotePredictions(DefaultWeights)
	prio := a.Predictions(DefaultOrder)
	if len(votes) != len(prio) {
		t.Fatal("length mismatch")
	}
	for i, v := range votes {
		if v == PredNone {
			t.Fatalf("vote %d is none", i)
		}
		// Loop branches must agree between combiners.
		if a.Branches[i].Class == LoopBranch && v != prio[i] {
			t.Errorf("loop branch %d differs between combiners", i)
		}
	}
}
