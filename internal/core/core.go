// Package core implements the paper's contribution: program-based static
// branch prediction. Every two-way conditional branch is classified by
// natural-loop analysis as a loop branch (predicted "iterate, don't exit")
// or a non-loop branch (predicted by seven simple local heuristics —
// Opcode, Loop, Call, Return, Guard, Store, Pointer — combined by a total
// priority order, with a deterministic pseudo-random Default for branches
// no heuristic covers).
package core

import (
	"fmt"

	"ballarus/internal/cfg"
	"ballarus/internal/mir"
	"ballarus/internal/profile"
)

// Prediction is a static branch prediction.
type Prediction int8

// Prediction values.
const (
	PredNone  Prediction = iota // heuristic does not apply
	PredTaken                   // predict the target successor
	PredFall                    // predict the fall-through successor
)

// String renders the prediction.
func (p Prediction) String() string {
	switch p {
	case PredTaken:
		return "taken"
	case PredFall:
		return "fall"
	}
	return "none"
}

// Taken reports whether the prediction is "taken"; only meaningful when
// the prediction is not PredNone.
func (p Prediction) Taken() bool { return p == PredTaken }

// Heuristic identifies one of the seven non-loop heuristics.
type Heuristic uint8

// The non-loop heuristics, in the paper's Section 4 presentation order.
const (
	Opcode Heuristic = iota
	LoopH
	CallH
	ReturnH
	Guard
	Store
	Point

	NumHeuristics = 7
)

var heuristicNames = [NumHeuristics]string{
	"Opcode", "Loop", "Call", "Return", "Guard", "Store", "Point",
}

// String returns the heuristic's paper name.
func (h Heuristic) String() string {
	if int(h) < NumHeuristics {
		return heuristicNames[h]
	}
	return fmt.Sprintf("heuristic(%d)", uint8(h))
}

// Order is a total priority order over the heuristics: to predict a
// non-loop branch, the first applicable heuristic wins.
type Order [NumHeuristics]Heuristic

// DefaultOrder is the ordering the paper's Table 5 and Section 6 use:
// Point, Call, Opcode, Return, Store, Loop, Guard.
var DefaultOrder = Order{Point, CallH, Opcode, ReturnH, Store, LoopH, Guard}

// SectionOrder lists the heuristics in definition order (used when
// enumerating all 5040 permutations).
var SectionOrder = Order{Opcode, LoopH, CallH, ReturnH, Guard, Store, Point}

// Valid reports whether the order is a permutation of all heuristics.
func (o Order) Valid() bool {
	var seen [NumHeuristics]bool
	for _, h := range o {
		if int(h) >= NumHeuristics || seen[h] {
			return false
		}
		seen[h] = true
	}
	return true
}

// String renders the order as "Point+Call+...".
func (o Order) String() string {
	s := ""
	for i, h := range o {
		if i > 0 {
			s += "+"
		}
		s += h.String()
	}
	return s
}

// Class classifies a branch per Section 3.
type Class uint8

// Branch classes.
const (
	NonLoop Class = iota
	LoopBranch
)

// String names the class.
func (c Class) String() string {
	if c == LoopBranch {
		return "loop"
	}
	return "non-loop"
}

// Branch is the analysis result for one conditional branch.
type Branch struct {
	ID    int
	Proc  int
	Instr int
	Block int
	Class Class

	// LoopPred is the loop predictor's choice; set for loop branches.
	LoopPred Prediction
	// Heur[h] is heuristic h's individual prediction, or PredNone when it
	// does not apply. Populated only for non-loop branches (the paper
	// applies heuristics to non-loop branches exclusively).
	Heur [NumHeuristics]Prediction
	// DefaultPred is the deterministic pseudo-random Default prediction.
	DefaultPred Prediction
	// BTFNT is the backward-taken/forward-not-taken baseline's choice
	// (ablation: the hardware rule the paper argues natural loop analysis
	// improves on).
	BTFNT Prediction
}

// Covered reports whether any heuristic applies to the branch.
func (b *Branch) Covered() bool {
	for _, p := range b.Heur {
		if p != PredNone {
			return true
		}
	}
	return false
}

// PredictWith returns the combined prediction under the given order along
// with the heuristic that fired; ok is false if the Default was used.
func (b *Branch) PredictWith(order Order) (pred Prediction, by Heuristic, ok bool) {
	if b.Class == LoopBranch {
		return b.LoopPred, 0, true
	}
	for _, h := range order {
		if p := b.Heur[h]; p != PredNone {
			return p, h, true
		}
	}
	return b.DefaultPred, 0, false
}

// Options configure analysis; the zero value reproduces the paper.
type Options struct {
	// NoPostdom drops the "successor does not postdominate the branch"
	// requirement from the Loop, Call, Guard, and Store heuristics
	// (ablation).
	NoPostdom bool
	// GuardDepth generalizes the Guard heuristic per the paper's Section
	// 4.4: instead of looking only at the successor block, follow
	// execution paths controlled by the branch (blocks dominated by the
	// successor) up to this many extra blocks deep, stopping at
	// redefinitions and calls. 0 reproduces the paper.
	GuardDepth int
}

// Analysis is the complete static prediction analysis of a program.
type Analysis struct {
	Prog     *mir.Program
	Set      *profile.Set
	Graphs   []*cfg.Graph // per procedure; nil for builtins
	Branches []Branch     // indexed by branch ID
	opts     Options
}

// Analyze builds CFGs for every procedure and runs the full Ball-Larus
// analysis over every conditional branch.
func Analyze(prog *mir.Program, opts Options) (*Analysis, error) {
	a := &Analysis{
		Prog:   prog,
		Set:    profile.Index(prog),
		Graphs: make([]*cfg.Graph, len(prog.Procs)),
		opts:   opts,
	}
	a.Branches = make([]Branch, a.Set.Len())
	for pi, pr := range prog.Procs {
		if pr.Builtin != mir.NotBuiltin {
			continue
		}
		g, err := cfg.Build(pr)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", pr.Name, err)
		}
		a.Graphs[pi] = g
	}
	for id := 0; id < a.Set.Len(); id++ {
		site := a.Set.Site(id)
		b := &a.Branches[id]
		b.ID = id
		b.Proc = site.Proc
		b.Instr = site.Instr
		a.analyzeBranch(b)
	}
	return a, nil
}

// analyzeBranch fills in classification and every heuristic's prediction.
func (a *Analysis) analyzeBranch(b *Branch) {
	g := a.Graphs[b.Proc]
	blk := g.BlockOf(b.Instr)
	b.Block = blk
	in := &g.Proc.Code[b.Instr]

	t := g.TargetSucc(blk)
	fl := g.FallSucc(blk)

	// BTFNT baseline: a backwards branch (target address before the branch
	// address) is predicted taken; forward branches fall through.
	if in.Target <= b.Instr {
		b.BTFNT = PredTaken
	} else {
		b.BTFNT = PredFall
	}

	// Deterministic "random" Default (splitmix-style hash of the ID).
	b.DefaultPred = defaultPrediction(b.ID)

	// Section 3 classification.
	tBack := g.IsBackedge(blk, t)
	fBack := g.IsBackedge(blk, fl)
	tExit := g.IsExitEdge(blk, t)
	fExit := g.IsExitEdge(blk, fl)
	if tBack || fBack || tExit || fExit {
		b.Class = LoopBranch
		b.LoopPred = a.loopPrediction(g, blk, t, fl, tBack, fBack, tExit, fExit)
		return
	}
	b.Class = NonLoop

	b.Heur[Opcode] = opcodePrediction(in.Op)
	b.Heur[LoopH] = a.succProperty(g, blk, t, fl, true, func(s int) bool {
		return g.IsLoopHead(s) || g.IsPreheader(s)
	}, true)
	b.Heur[CallH] = a.succProperty(g, blk, t, fl, false, func(s int) bool {
		return g.LeadsToCall(s)
	}, true)
	b.Heur[ReturnH] = a.succProperty(g, blk, t, fl, false, func(s int) bool {
		return g.LeadsToReturn(s)
	}, false)
	b.Heur[Guard] = a.guardPrediction(g, blk, b.Instr, t, fl)
	b.Heur[Store] = a.succProperty(g, blk, t, fl, false, func(s int) bool {
		return g.Blocks[s].HasStore
	}, true)
	b.Heur[Point] = pointerPrediction(g, blk, b.Instr)
}

// loopPrediction implements Section 3's loop predictor: predict a backedge
// if one exists (innermost loop on a tie, per footnote 1); otherwise
// predict the non-exit edge — loops iterate many times and exit once.
func (a *Analysis) loopPrediction(g *cfg.Graph, blk, t, fl int, tBack, fBack, tExit, fExit bool) Prediction {
	switch {
	case tBack && fBack:
		if g.InnermostLoopSize(t) <= g.InnermostLoopSize(fl) {
			return PredTaken
		}
		return PredFall
	case tBack:
		return PredTaken
	case fBack:
		return PredFall
	}
	// Exit-edge case: predict the edge that stays in the innermost loop
	// containing the branch.
	for _, l := range g.LoopsContaining(blk) {
		tIn, fIn := l.Contains(t), l.Contains(fl)
		if tIn && !fIn {
			return PredTaken
		}
		if fIn && !tIn {
			return PredFall
		}
	}
	// Both edges behave identically with respect to every enclosing loop;
	// fall back on the non-exit edge, then on taken.
	if !tExit && fExit {
		return PredTaken
	}
	if tExit && !fExit {
		return PredFall
	}
	return PredTaken
}

// succProperty implements the Section 4.2 selection-property schema: if
// exactly one successor has the property, predict the successor with
// (withProp=true) or without (withProp=false) it. When needsNotPostdom is
// set, "successor does not postdominate the branch" is conjoined to the
// property, matching the paper's per-heuristic definitions.
func (a *Analysis) succProperty(g *cfg.Graph, blk, t, fl int, withProp bool, prop func(int) bool, needsNotPostdom bool) Prediction {
	has := func(s int) bool {
		if !prop(s) {
			return false
		}
		if needsNotPostdom && !a.opts.NoPostdom && g.Postdominates(s, blk) {
			return false
		}
		return true
	}
	tp, fp := has(t), has(fl)
	if tp == fp {
		return PredNone
	}
	if tp == withProp {
		return PredTaken
	}
	return PredFall
}

// opcodePrediction implements the Opcode heuristic: bltz/blez predict not
// taken (negative values signal errors), bgtz/bgez predict taken, and
// floating-point equality tests predict false.
func opcodePrediction(op mir.Op) Prediction {
	switch op {
	case mir.Bltz, mir.Blez:
		return PredFall
	case mir.Bgtz, mir.Bgez:
		return PredTaken
	case mir.FBeq:
		return PredFall
	case mir.FBne:
		return PredTaken
	}
	return PredNone
}

// guardPrediction implements the Guard heuristic: a branch register used
// in a successor block before being defined there guards that use; predict
// the successor with the use (the guard usually lets the value flow).
func (a *Analysis) guardPrediction(g *cfg.Graph, blk, instr, t, fl int) Prediction {
	in := &g.Proc.Code[instr]
	var operands []mir.Reg
	operands = in.Uses(operands)
	// R0 is not a guarded value.
	regs := operands[:0]
	for _, r := range operands {
		if r != mir.R0 {
			regs = append(regs, r)
		}
	}
	if len(regs) == 0 {
		return PredNone
	}
	return a.succProperty(g, blk, t, fl, true, func(s int) bool {
		for _, r := range regs {
			if a.guardUse(g, s, r) {
				return true
			}
		}
		return false
	}, true)
}

// guardUse reports whether register r is used before being defined on the
// execution paths the successor s controls. With GuardDepth 0 this is the
// paper's single-block test; deeper settings follow single paths through
// blocks dominated by s (so their execution is still decided by the
// branch), stopping at definitions of r and at calls.
func (a *Analysis) guardUse(g *cfg.Graph, s int, r mir.Reg) bool {
	use, blocked := useOrDef(g, s, r)
	if use {
		return true
	}
	if blocked || a.opts.GuardDepth == 0 {
		return false
	}
	type item struct{ b, depth int }
	seen := map[int]bool{s: true}
	work := []item{{s, 0}}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		if it.depth >= a.opts.GuardDepth {
			continue
		}
		for _, n := range g.Blocks[it.b].Succs {
			if seen[n] || !g.Dominates(s, n) {
				continue
			}
			seen[n] = true
			use, blocked := useOrDef(g, n, r)
			if use {
				return true
			}
			if !blocked {
				work = append(work, item{n, it.depth + 1})
			}
		}
	}
	return false
}

// useOrDef scans one block: use reports a read of r before any write;
// blocked reports that the scan may not continue past this block (r was
// written, or a call was reached).
func useOrDef(g *cfg.Graph, s int, r mir.Reg) (use, blocked bool) {
	blk := g.Blocks[s]
	var buf [4]mir.Reg
	for i := blk.Start; i < blk.End; i++ {
		in := &g.Proc.Code[i]
		for _, u := range in.Uses(buf[:0]) {
			if u == r {
				return true, true
			}
		}
		if d, ok := in.Def(); ok && d == r {
			return false, true
		}
		if in.Op.IsCall() {
			return false, true
		}
	}
	return false, false
}

// pointerPrediction implements the Pointer heuristic: beq/bne comparing a
// register against $zero (or two registers against each other) where the
// compared registers were defined by loads in the branch's own basic block
// — loads not based off GP, with no call between the load and the branch —
// look like pointer null tests and pointer equality tests. Equality is
// predicted false: beq predicts fall-through, bne predicts taken.
func pointerPrediction(g *cfg.Graph, blk, instr int) Prediction {
	in := &g.Proc.Code[instr]
	if in.Op != mir.Beq && in.Op != mir.Bne {
		return PredNone
	}
	loaded := func(r mir.Reg) bool {
		if r == mir.R0 || r.IsFloat() {
			return false
		}
		start := g.Blocks[blk].Start
		// Walk back from the branch to the most recent definition of r.
		for i := instr - 1; i >= start; i-- {
			def := &g.Proc.Code[i]
			if def.Op.IsCall() {
				return false // call between load and branch
			}
			if d, ok := def.Def(); ok && d == r {
				return def.Op == mir.Lw && def.Rs != mir.GP
			}
		}
		return false
	}
	var ok bool
	switch {
	case in.Rs == mir.R0:
		ok = loaded(in.Rt)
	case in.Rt == mir.R0:
		ok = loaded(in.Rs)
	default:
		ok = loaded(in.Rs) && loaded(in.Rt)
	}
	if !ok {
		return PredNone
	}
	if in.Op == mir.Beq {
		return PredFall
	}
	return PredTaken
}

// defaultPrediction derives a reproducible pseudo-random prediction from
// the branch ID (splitmix64 finalizer).
func defaultPrediction(id int) Prediction {
	z := uint64(id) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z&1 == 0 {
		return PredTaken
	}
	return PredFall
}

// Predictions returns the combined prediction for every branch under the
// order, as a taken/fall slice indexed by branch ID.
func (a *Analysis) Predictions(order Order) []Prediction {
	out := make([]Prediction, len(a.Branches))
	for i := range a.Branches {
		p, _, _ := a.Branches[i].PredictWith(order)
		out[i] = p
	}
	return out
}

// LoopRandPredictions returns the Loop+Rand baseline of Section 6: the
// loop predictor on loop branches and random prediction on non-loop
// branches.
func (a *Analysis) LoopRandPredictions() []Prediction {
	out := make([]Prediction, len(a.Branches))
	for i := range a.Branches {
		b := &a.Branches[i]
		if b.Class == LoopBranch {
			out[i] = b.LoopPred
		} else {
			out[i] = b.DefaultPred
		}
	}
	return out
}

// BTFNTPredictions returns the backward-taken/forward-not-taken baseline.
func (a *Analysis) BTFNTPredictions() []Prediction {
	out := make([]Prediction, len(a.Branches))
	for i := range a.Branches {
		out[i] = a.Branches[i].BTFNT
	}
	return out
}
