package core

import (
	"testing"

	"ballarus/internal/minic"
	"ballarus/internal/mir"
)

// analyzeSrc compiles minic source and analyzes it.
func analyzeSrc(t *testing.T, src string) *Analysis {
	t.Helper()
	prog, err := minic.Compile(src, minic.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	a, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return a
}

// branchesIn returns the analyzed branches of the named procedure.
func branchesIn(t *testing.T, a *Analysis, proc string) []*Branch {
	t.Helper()
	pi := -1
	for i, p := range a.Prog.Procs {
		if p.Name == proc {
			pi = i
		}
	}
	if pi < 0 {
		t.Fatalf("no procedure %s", proc)
	}
	var out []*Branch
	for i := range a.Branches {
		if a.Branches[i].Proc == pi {
			out = append(out, &a.Branches[i])
		}
	}
	return out
}

// branchWithOp returns the unique branch in proc with the given opcode.
func branchWithOp(t *testing.T, a *Analysis, proc string, op mir.Op) *Branch {
	t.Helper()
	var found *Branch
	for _, b := range branchesIn(t, a, proc) {
		if a.Prog.Procs[b.Proc].Code[b.Instr].Op == op {
			if found != nil {
				t.Fatalf("multiple %s branches in %s", op, proc)
			}
			found = b
		}
	}
	if found == nil {
		t.Fatalf("no %s branch in %s:\n%s", op, proc, a.Prog.Proc(proc).Disasm())
	}
	return found
}

func TestLoopBranchClassification(t *testing.T) {
	a := analyzeSrc(t, `
int main() {
	int i = 0;
	int s = 0;
	while (i < 100) { s += i; i++; }
	return s;
}`)
	bs := branchesIn(t, a, "main")
	if len(bs) != 2 {
		t.Fatalf("want 2 branches (guard + bottom test), got %d", len(bs))
	}
	var loop, nonloop *Branch
	for _, b := range bs {
		if b.Class == LoopBranch {
			loop = b
		} else {
			nonloop = b
		}
	}
	if loop == nil || nonloop == nil {
		t.Fatalf("expected one loop and one non-loop branch, got %v and %v", bs[0].Class, bs[1].Class)
	}
	// The bottom test's taken edge is the backedge: predict taken.
	if loop.LoopPred != PredTaken {
		t.Errorf("loop predictor chose %v for the bottom test, want taken", loop.LoopPred)
	}
	// The guard's taken successor is the loop head: the Loop heuristic
	// predicts entering the loop.
	if nonloop.Heur[LoopH] != PredTaken {
		t.Errorf("Loop heuristic on the guard = %v, want taken", nonloop.Heur[LoopH])
	}
	// The bottom test is a backwards branch, so BTFNT also predicts taken;
	// the guard is forward, so BTFNT predicts fall (entering the loop is
	// the fall of... it is taken to the body, so BTFNT misses the guard).
	if loop.BTFNT != PredTaken {
		t.Errorf("BTFNT on backedge = %v, want taken", loop.BTFNT)
	}
}

func TestLoopExitBranch(t *testing.T) {
	a := analyzeSrc(t, `
int main() {
	int i = 0;
	while (1) {
		i++;
		if (i > 10) { break; }
	}
	return i;
}`)
	bs := branchesIn(t, a, "main")
	if len(bs) != 1 {
		t.Fatalf("want 1 branch, got %d", len(bs))
	}
	b := bs[0]
	if b.Class != LoopBranch {
		t.Fatalf("break test classified %v, want loop (its taken edge exits the loop)", b.Class)
	}
	// Taken edge leaves the loop: predict fall (keep iterating).
	if b.LoopPred != PredFall {
		t.Errorf("loop predictor = %v, want fall", b.LoopPred)
	}
}

func TestOpcodeHeuristic(t *testing.T) {
	a := analyzeSrc(t, `
int neg(int x) {
	if (x < 0) { return 0 - x; }
	return x;
}
int pos(int x) {
	if (x > 0) { return x; }
	return 0;
}
int feq(float x, float y) {
	if (x == y) { return 1; }
	return 0;
}
int main() { return neg(-1) + pos(2) + feq(1.0, 2.0); }`)
	if b := branchWithOp(t, a, "neg", mir.Bltz); b.Heur[Opcode] != PredFall {
		t.Errorf("bltz opcode prediction = %v, want fall", b.Heur[Opcode])
	}
	if b := branchWithOp(t, a, "pos", mir.Bgtz); b.Heur[Opcode] != PredTaken {
		t.Errorf("bgtz opcode prediction = %v, want taken", b.Heur[Opcode])
	}
	if b := branchWithOp(t, a, "feq", mir.FBeq); b.Heur[Opcode] != PredFall {
		t.Errorf("fbeq opcode prediction = %v, want fall", b.Heur[Opcode])
	}
}

func TestCallHeuristic(t *testing.T) {
	a := analyzeSrc(t, `
int f(int x) {
	if (x == 7) { printi(x); }
	return x + 1;
}
int main() { return f(3); }`)
	b := branchWithOp(t, a, "f", mir.Beq)
	// The taken successor contains the call and does not postdominate:
	// predict the successor without the call, i.e. fall through.
	if b.Class != NonLoop {
		t.Fatalf("class = %v, want non-loop", b.Class)
	}
	if b.Heur[CallH] != PredFall {
		t.Errorf("Call heuristic = %v, want fall", b.Heur[CallH])
	}
}

func TestCallHeuristicPostdomBlocks(t *testing.T) {
	// Both paths reach a call that postdominates the branch: the successor
	// property must not fire on the postdominating join.
	a := analyzeSrc(t, `
int f(int x) {
	int y;
	if (x == 7) { y = 1; } else { y = 2; }
	printi(y);
	return y;
}
int main() { return f(3); }`)
	b := branchWithOp(t, a, "f", mir.Beq)
	if b.Heur[CallH] != PredNone {
		t.Errorf("Call heuristic = %v, want none (call is in a postdominating block)", b.Heur[CallH])
	}
}

func TestReturnHeuristic(t *testing.T) {
	a := analyzeSrc(t, `
int f(int x) {
	if (x == 0) { return -1; }
	while (x > 1) { x = x / 2; }
	return x;
}
int main() { return f(8); }`)
	b := branchWithOp(t, a, "f", mir.Beq)
	if b.Heur[ReturnH] != PredFall {
		t.Errorf("Return heuristic = %v, want fall (taken side returns)", b.Heur[ReturnH])
	}
}

func TestGuardHeuristic(t *testing.T) {
	a := analyzeSrc(t, `
int g;
int f(int *p) {
	if (p != 0) { g = *p; }
	return g;
}
int main() { int x = 3; return f(&x); }`)
	b := branchWithOp(t, a, "f", mir.Bne)
	// Taken side uses p (the branch operand) in a load before defining it.
	if b.Heur[Guard] != PredTaken {
		t.Errorf("Guard heuristic = %v, want taken", b.Heur[Guard])
	}
}

func TestStoreHeuristic(t *testing.T) {
	a := analyzeSrc(t, `
int g;
int f(int x) {
	if (x == 1) { g = 5; }
	while (x > 0) { x--; }
	return g;
}
int main() { return f(1); }`)
	b := branchWithOp(t, a, "f", mir.Beq)
	if b.Heur[Store] != PredFall {
		t.Errorf("Store heuristic = %v, want fall (taken side stores)", b.Heur[Store])
	}
}

func TestPointerHeuristic(t *testing.T) {
	a := analyzeSrc(t, `
struct node { int v; struct node *next; };
int f(struct node *p) {
	if (p->next == 0) { return 1; }
	return 0;
}
int same(struct node *a, struct node *b) {
	if (a->next != b->next) { return 1; }
	return 0;
}
int main() { return 0; }`)
	b := branchWithOp(t, a, "f", mir.Beq)
	if b.Heur[Point] != PredFall {
		t.Errorf("Pointer heuristic on beq = %v, want fall (pointers are non-null)", b.Heur[Point])
	}
	b2 := branchWithOp(t, a, "same", mir.Bne)
	if b2.Heur[Point] != PredTaken {
		t.Errorf("Pointer heuristic on bne = %v, want taken (pointers differ)", b2.Heur[Point])
	}
}

func TestPointerHeuristicGPScreen(t *testing.T) {
	// Comparing a global loaded off GP must not trigger the heuristic.
	a := analyzeSrc(t, `
int g;
int f() {
	if (g == 0) { return 1; }
	return 0;
}
int main() { return f(); }`)
	b := branchWithOp(t, a, "f", mir.Beq)
	if b.Heur[Point] != PredNone {
		t.Errorf("Pointer heuristic = %v, want none (load off GP)", b.Heur[Point])
	}
}

// handProg wraps a single hand-written procedure into a program that calls
// itself for any Jal, so call-bearing shapes can be constructed exactly.
func handProg(t *testing.T, code []mir.Instr, nIRegs int) *Analysis {
	t.Helper()
	prog := &mir.Program{
		Procs: []*mir.Proc{{Name: "hand", NIRegs: nIRegs, Code: code}},
		Entry: 0,
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	a, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return a
}

func TestPointerHeuristicCallScreen(t *testing.T) {
	// A call between the load and the branch disables the heuristic;
	// without the call it applies.
	withCall := []mir.Instr{
		{Op: mir.Lw, Rd: mir.Int(0), Rs: mir.Int(1), Imm: 1},
		{Op: mir.Jal, Callee: 0},
		{Op: mir.Beq, Rs: mir.Int(0), Rt: mir.R0, Target: 4},
		{Op: mir.Li, Rd: mir.Int(0), Imm: 1},
		{Op: mir.Jr, Rs: mir.RA},
	}
	a := handProg(t, withCall, 2)
	if got := a.Branches[0].Heur[Point]; got != PredNone {
		t.Errorf("with call between load and branch: Point = %v, want none", got)
	}
	noCall := []mir.Instr{
		{Op: mir.Lw, Rd: mir.Int(0), Rs: mir.Int(1), Imm: 1},
		{Op: mir.Beq, Rs: mir.Int(0), Rt: mir.R0, Target: 3},
		{Op: mir.Li, Rd: mir.Int(0), Imm: 1},
		{Op: mir.Jr, Rs: mir.RA},
	}
	a2 := handProg(t, noCall, 2)
	if got := a2.Branches[0].Heur[Point]; got != PredFall {
		t.Errorf("no call: Point = %v, want fall", got)
	}
}

func TestPredictWithOrderAndDefault(t *testing.T) {
	a := analyzeSrc(t, `
struct node { int v; struct node *next; };
int g;
int f(struct node *p) {
	if (p->next == 0) { printi(1); }
	return 0;
}
int main() { return 0; }`)
	b := branchWithOp(t, a, "f", mir.Beq)
	// Point predicts fall; Call predicts fall too (call on taken side).
	// Order Point-first and Call-first must both fire their heuristic.
	p1, by1, ok1 := b.PredictWith(Order{Point, CallH, Opcode, ReturnH, Store, LoopH, Guard})
	if !ok1 || by1 != Point || p1 != PredFall {
		t.Errorf("Point-first: pred=%v by=%v ok=%v", p1, by1, ok1)
	}
	p2, by2, ok2 := b.PredictWith(Order{CallH, Point, Opcode, ReturnH, Store, LoopH, Guard})
	if !ok2 || by2 != CallH || p2 != PredFall {
		t.Errorf("Call-first: pred=%v by=%v ok=%v", p2, by2, ok2)
	}
}

func TestDefaultDeterminism(t *testing.T) {
	src := `
int main() {
	int a = readi();
	if (a * a - 3 * a + 2 == 0) { return 1; }
	return 0;
}`
	a1 := analyzeSrc(t, src)
	a2 := analyzeSrc(t, src)
	for i := range a1.Branches {
		if a1.Branches[i].DefaultPred != a2.Branches[i].DefaultPred {
			t.Fatalf("default prediction not deterministic at branch %d", i)
		}
		if a1.Branches[i].DefaultPred == PredNone {
			t.Fatalf("default prediction must always choose a direction")
		}
	}
}

func TestOrderValidAndString(t *testing.T) {
	if !DefaultOrder.Valid() {
		t.Error("DefaultOrder must be a permutation")
	}
	if !SectionOrder.Valid() {
		t.Error("SectionOrder must be a permutation")
	}
	bad := Order{Point, Point, Opcode, ReturnH, Store, LoopH, Guard}
	if bad.Valid() {
		t.Error("duplicate heuristic order must be invalid")
	}
	if got := DefaultOrder.String(); got != "Point+Call+Opcode+Return+Store+Loop+Guard" {
		t.Errorf("DefaultOrder.String() = %q", got)
	}
}

func TestPredictionsCoverEveryBranch(t *testing.T) {
	a := analyzeSrc(t, `
int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
int main() {
	int i;
	int s = 0;
	for (i = 0; i < 10; i++) { s += fib(i); }
	if (s == 88) { printi(s); }
	return 0;
}`)
	for _, preds := range [][]Prediction{
		a.Predictions(DefaultOrder),
		a.LoopRandPredictions(),
		a.BTFNTPredictions(),
	} {
		if len(preds) != len(a.Branches) {
			t.Fatalf("prediction vector has %d entries, want %d", len(preds), len(a.Branches))
		}
		for i, p := range preds {
			if p == PredNone {
				t.Errorf("branch %d got no prediction", i)
			}
		}
	}
}

func TestNoPostdomAblation(t *testing.T) {
	// Shape: A branches over B (call) to join C (call); C postdominates A.
	//
	//	0: beq -> 2    A: taken=C, fall=B
	//	1: jal         B
	//	2: jal         C (join)
	//	3: jr ra
	//
	// Strict: only B has the Call property (C postdominates A), so the
	// heuristic predicts the successor without the property: taken (C).
	// With NoPostdom, both successors have the property: no prediction.
	code := []mir.Instr{
		{Op: mir.Beq, Rs: mir.R0, Rt: mir.R0, Target: 2},
		{Op: mir.Jal, Callee: 0},
		{Op: mir.Jal, Callee: 0},
		{Op: mir.Jr, Rs: mir.RA},
	}
	prog := &mir.Program{Procs: []*mir.Proc{{Name: "hand", Code: code}}, Entry: 0}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	strict, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Analyze(prog, Options{NoPostdom: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := strict.Branches[0].Heur[CallH]; got != PredTaken {
		t.Errorf("strict Call heuristic = %v, want taken", got)
	}
	if got := loose.Branches[0].Heur[CallH]; got != PredNone {
		t.Errorf("NoPostdom Call heuristic = %v, want none", got)
	}
}

func TestGuardDepthGeneralization(t *testing.T) {
	// The branch register's use sits one block past the successor, on a
	// path the successor dominates. The paper's Guard misses it; the
	// Section 4.4 generalization finds it.
	//
	//	0: bne I0 -> 5      B0: taken=B3, fall=B1
	//	1: li I1, 1         B1 (no use of I0)
	//	2: j 3
	//	3: add I2, I0, I1   B2: uses I0, dominated by B1
	//	4: jr ra
	//	5: jr ra            B3
	code := []mir.Instr{
		{Op: mir.Bne, Rs: mir.Int(0), Rt: mir.R0, Target: 5},
		{Op: mir.Li, Rd: mir.Int(1), Imm: 1},
		{Op: mir.J, Target: 3},
		{Op: mir.Add, Rd: mir.Int(2), Rs: mir.Int(0), Rt: mir.Int(1)},
		{Op: mir.Jr, Rs: mir.RA},
		{Op: mir.Jr, Rs: mir.RA},
	}
	prog := &mir.Program{Procs: []*mir.Proc{{Name: "hand", NIRegs: 3, Code: code}}, Entry: 0}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	shallow, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := shallow.Branches[0].Heur[Guard]; got != PredNone {
		t.Errorf("paper Guard = %v, want none (use is a block away)", got)
	}
	deep, err := Analyze(prog, Options{GuardDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := deep.Branches[0].Heur[Guard]; got != PredFall {
		t.Errorf("deep Guard = %v, want fall (the guarded use is on the fall path)", got)
	}
}

func TestGuardDepthStopsAtRedefinition(t *testing.T) {
	// The register is redefined before its use on the deep path: no guard.
	code := []mir.Instr{
		{Op: mir.Bne, Rs: mir.Int(0), Rt: mir.R0, Target: 6},
		{Op: mir.Li, Rd: mir.Int(1), Imm: 1},
		{Op: mir.J, Target: 3},
		{Op: mir.Li, Rd: mir.Int(0), Imm: 9}, // redefines I0
		{Op: mir.Add, Rd: mir.Int(2), Rs: mir.Int(0), Rt: mir.Int(1)},
		{Op: mir.Jr, Rs: mir.RA},
		{Op: mir.Jr, Rs: mir.RA},
	}
	prog := &mir.Program{Procs: []*mir.Proc{{Name: "hand", NIRegs: 3, Code: code}}, Entry: 0}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	deep, err := Analyze(prog, Options{GuardDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := deep.Branches[0].Heur[Guard]; got != PredNone {
		t.Errorf("deep Guard = %v, want none (redefinition kills the guard)", got)
	}
}

func TestLoopPredictorBothBackedgesTiebreak(t *testing.T) {
	// Footnote 1: if both outgoing edges are backedges, predict the edge
	// leading to the innermost loop. Build two nested self-reaching loops:
	//
	//	0: j 1
	//	1: li          B1: outer head
	//	2: li          B2: inner head
	//	3: beq -> 2 / fall 4      inner backedge candidate? build:
	//
	// Construct: B3 branch with taken->B2 (inner head) and fall->B4 whose
	// only content jumps to B1 (outer head) — fall edge is NOT a backedge
	// then. For both edges to be backedges the branch must target two
	// heads directly; use taken->inner head, fall-through = outer head
	// block placed immediately after.
	code := []mir.Instr{
		{Op: mir.Li, Rd: mir.Int(0), Imm: 0},                 // B0 entry
		{Op: mir.Li, Rd: mir.Int(0), Imm: 1},                 // B1: outer head (fall target)
		{Op: mir.Li, Rd: mir.Int(0), Imm: 2},                 // B2: inner head
		{Op: mir.Beq, Rs: mir.Int(0), Rt: mir.R0, Target: 2}, // B2 end: taken->B2(inner), fall->B1? no: fall is next instr 4
		{Op: mir.Beq, Rs: mir.Int(0), Rt: mir.R0, Target: 1}, // taken->B1 (outer backedge), fall->exit
		{Op: mir.Jr, Rs: mir.RA},
	}
	prog := &mir.Program{Procs: []*mir.Proc{{Name: "hand", NIRegs: 1, Code: code}}, Entry: 0}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Branch at instr 3: taken edge -> B2 (self loop at B2: smaller), and
	// the branch block IS B2's end... its taken edge is a backedge to the
	// inner head. It must be classified loop and predict the backedge.
	b0 := &a.Branches[0]
	if b0.Class != LoopBranch || b0.LoopPred != PredTaken {
		t.Errorf("inner backedge branch: class %v pred %v", b0.Class, b0.LoopPred)
	}
	b1 := &a.Branches[1]
	if b1.Class != LoopBranch || b1.LoopPred != PredTaken {
		t.Errorf("outer backedge branch: class %v pred %v", b1.Class, b1.LoopPred)
	}
}

func TestNestedLoopExitPredictsInnermost(t *testing.T) {
	// A branch inside a nested loop whose taken edge exits the inner loop
	// but stays in the outer: predict the edge staying in the innermost
	// loop (fall).
	a := analyzeSrc(t, `
int main() {
	int i;
	int j;
	int s = 0;
	for (i = 0; i < 10; i++) {
		for (j = 0; j < 20; j++) {
			s += j;
			if (s > 1000000) { break; }
		}
	}
	return s;
}`)
	// Find the break branch: a loop branch whose LoopPred is Fall (stay in
	// the inner loop rather than take the exit edge).
	found := false
	for _, b := range branchesIn(t, a, "main") {
		if b.Class != LoopBranch {
			continue
		}
		g := a.Graphs[b.Proc]
		tgt := g.TargetSucc(b.Block)
		if g.IsExitEdge(b.Block, tgt) && !g.IsBackedge(b.Block, tgt) {
			found = true
			if b.LoopPred != PredFall {
				t.Errorf("break branch predicted %v, want fall (keep iterating)", b.LoopPred)
			}
		}
	}
	if !found {
		t.Error("no exit-edge branch found for the break")
	}
}

func TestLoopBranchHasNoHeuristics(t *testing.T) {
	a := analyzeSrc(t, `
int main() {
	int i = 0;
	while (i < 10) { i++; }
	return i;
}`)
	for _, b := range branchesIn(t, a, "main") {
		if b.Class != LoopBranch {
			continue
		}
		for h, p := range b.Heur {
			if p != PredNone {
				t.Errorf("loop branch has non-loop heuristic %v = %v", Heuristic(h), p)
			}
		}
	}
}
