package core

// The paper combines heuristics by a total priority order and notes that
// "many other approaches for combining the heuristics are possible, such
// as a voting protocol with weighings", leaving the comparison open. This
// file implements that alternative: every applicable heuristic votes for
// its predicted direction with a confidence weight, and the heavier side
// wins.

// Weights assigns each heuristic a voting weight. Weights should reflect
// confidence: a natural choice is each heuristic's historical accuracy
// (1 - miss rate) minus 0.5, so a coin-flip heuristic contributes nothing.
type Weights [NumHeuristics]float64

// DefaultWeights derive from the paper's Table 3 mean miss rates
// (Opcode 16%, Loop 25%, Call 22%, Return 28%, Guard 38%, Store 45%,
// Point 41%): weight = accuracy - 0.5.
var DefaultWeights = Weights{
	Opcode:  0.34,
	LoopH:   0.25,
	CallH:   0.28,
	ReturnH: 0.22,
	Guard:   0.12,
	Store:   0.05,
	Point:   0.09,
}

// PredictVote combines the applicable heuristics by weighted vote. ok is
// false when no heuristic applies or the vote ties, in which case the
// Default prediction is returned.
func (b *Branch) PredictVote(w Weights) (pred Prediction, ok bool) {
	if b.Class == LoopBranch {
		return b.LoopPred, true
	}
	var taken, fall float64
	for h := 0; h < NumHeuristics; h++ {
		switch b.Heur[h] {
		case PredTaken:
			taken += w[h]
		case PredFall:
			fall += w[h]
		}
	}
	switch {
	case taken > fall:
		return PredTaken, true
	case fall > taken:
		return PredFall, true
	default:
		return b.DefaultPred, false
	}
}

// VotePredictions returns the voting combiner's prediction for every
// branch.
func (a *Analysis) VotePredictions(w Weights) []Prediction {
	out := make([]Prediction, len(a.Branches))
	for i := range a.Branches {
		out[i], _ = a.Branches[i].PredictVote(w)
	}
	return out
}

// FitWeights computes accuracy-based weights from observed per-heuristic
// miss rates (percent): weight = max(0, 0.5 - miss/100). Training weights
// on one set of benchmarks and testing on others mirrors the paper's
// order-selection experiment for the voting combiner.
func FitWeights(missPct [NumHeuristics]float64) Weights {
	var w Weights
	for h := 0; h < NumHeuristics; h++ {
		acc := 1 - missPct[h]/100
		v := acc - 0.5
		if v < 0 {
			v = 0
		}
		w[h] = v
	}
	return w
}
