package dynpred

// A small TAGE (TAgged GEometric history length) predictor after Seznec
// & Michaud: a bimodal base table backed by a few partially-tagged
// tables indexed by geometrically increasing slices of global history.
// The longest-history table whose tag matches provides the prediction;
// on a mispredict a new entry is allocated in a longer-history table,
// with two-bit "useful" counters arbitrating which victim to steal and
// a periodic decay so stale entries age out. Allocation ties break
// through a seeded LCG, so identical traces and configs always produce
// identical miss counts.

// TAGEConfig sizes a TAGE predictor. The zero value is not valid; start
// from DefaultTAGEConfig.
type TAGEConfig struct {
	BaseBits  int   // log2 entries in the bimodal base table
	TableBits int   // log2 entries in each tagged table
	TagBits   int   // tag width per tagged entry
	Histories []int // global-history bits per tagged table, ascending
	// ResetPeriod is the number of updates between useful-counter
	// decays (halvings). Zero disables decay.
	ResetPeriod int64
	// Seed drives the deterministic LCG used to break allocation ties.
	Seed uint64
}

// DefaultTAGEConfig returns the geometry used by the "tage" registry
// entry: a 4K-entry base plus four 1K-entry tagged tables tracking
// 4/8/16/32 bits of global history.
func DefaultTAGEConfig() TAGEConfig {
	return TAGEConfig{
		BaseBits:    12,
		TableBits:   10,
		TagBits:     9,
		Histories:   []int{4, 8, 16, 32},
		ResetPeriod: 256 * 1024,
		Seed:        0x5eed,
	}
}

// tagEntry is one row of a tagged table: a 3-bit signed direction
// counter (-4..3, taken when >= 0), the partial tag, and a 2-bit
// useful counter.
type tagEntry struct {
	ctr    int8
	useful uint8
	tag    uint16
}

type tage struct {
	cfg    TAGEConfig
	base   []uint8 // bimodal, 2-bit counters
	tables [][]tagEntry
	hist   uint64 // global history, newest outcome in bit 0
	rng    uint64 // LCG state for allocation tie-breaks
	ticks  int64  // updates since last useful decay

	// Provider state stashed by Predict for the paired Update. The
	// indices and tags are computed against the pre-update history, so
	// Update must not recompute them after shifting.
	sIdx      []uint32
	sTag      []uint16
	sProvider int // table index, -1 = base
	sAlt      int // alternate provider table index, -1 = base
	sPred     bool
	sAltPred  bool
}

// NewTAGE builds a TAGE predictor with the given geometry.
func NewTAGE(cfg TAGEConfig) Predictor {
	p := &tage{
		cfg:    cfg,
		base:   make([]uint8, 1<<cfg.BaseBits),
		tables: make([][]tagEntry, len(cfg.Histories)),
		rng:    cfg.Seed | 1,
		sIdx:   make([]uint32, len(cfg.Histories)),
		sTag:   make([]uint16, len(cfg.Histories)),
	}
	for i := range p.base {
		p.base[i] = 1 // weakly not taken
	}
	for t := range p.tables {
		p.tables[t] = make([]tagEntry, 1<<cfg.TableBits)
	}
	return p
}

// fold XORs a histLen-bit history down to outBits bits.
func fold(h uint64, histLen, outBits int) uint32 {
	if histLen < 64 {
		h &= 1<<uint(histLen) - 1
	}
	var f uint32
	mask := uint32(1<<uint(outBits) - 1)
	for histLen > 0 {
		f ^= uint32(h) & mask
		h >>= uint(outBits)
		histLen -= outBits
	}
	return f
}

func (p *tage) index(table int, branch int32) uint32 {
	bits := p.cfg.TableBits
	pc := uint32(branch)
	return (pc ^ pc>>uint(bits) ^ fold(p.hist, p.cfg.Histories[table], bits)) & uint32(1<<uint(bits)-1)
}

func (p *tage) tag(table int, branch int32) uint16 {
	bits := p.cfg.TagBits
	L := p.cfg.Histories[table]
	pc := uint32(branch)
	t := pc ^ fold(p.hist, L, bits) ^ fold(p.hist, L, bits-1)<<1
	return uint16(t & uint32(1<<uint(bits)-1))
}

func (p *tage) baseIndex(branch int32) uint32 {
	return uint32(branch) & uint32(1<<uint(p.cfg.BaseBits)-1)
}

func (p *tage) Predict(branch int32) bool {
	p.sProvider, p.sAlt = -1, -1
	for t := range p.tables {
		p.sIdx[t] = p.index(t, branch)
		p.sTag[t] = p.tag(t, branch)
		if p.tables[t][p.sIdx[t]].tag == p.sTag[t] {
			p.sAlt = p.sProvider
			p.sProvider = t
		}
	}
	basePred := p.base[p.baseIndex(branch)] >= 2
	p.sAltPred = basePred
	if p.sAlt >= 0 {
		p.sAltPred = p.tables[p.sAlt][p.sIdx[p.sAlt]].ctr >= 0
	}
	p.sPred = basePred
	if p.sProvider >= 0 {
		p.sPred = p.tables[p.sProvider][p.sIdx[p.sProvider]].ctr >= 0
	}
	return p.sPred
}

func (p *tage) Update(branch int32, taken bool) {
	miss := p.sPred != taken

	// Useful bookkeeping: the provider was useful if it disagreed with
	// the alternate and was right, anti-useful if it disagreed and was
	// wrong.
	if p.sProvider >= 0 && p.sPred != p.sAltPred {
		e := &p.tables[p.sProvider][p.sIdx[p.sProvider]]
		if p.sPred == taken {
			if e.useful < 3 {
				e.useful++
			}
		} else if e.useful > 0 {
			e.useful--
		}
	}

	// Train the provider (and the base when it provided or the provider
	// entry is still unconfident, the usual TAGE refinement omitted here
	// for size: base trains whenever it provided).
	if p.sProvider >= 0 {
		e := &p.tables[p.sProvider][p.sIdx[p.sProvider]]
		e.ctr = sat3(e.ctr, taken)
	} else {
		i := p.baseIndex(branch)
		p.base[i] = sat2(p.base[i], taken)
	}

	// On a mispredict, allocate in a longer-history table so the next
	// encounter in this context has a dedicated entry.
	if miss && p.sProvider < len(p.tables)-1 {
		p.allocate(taken)
	}

	// Periodic decay keeps allocation from starving once every entry
	// has proven useful at some point.
	p.ticks++
	if p.cfg.ResetPeriod > 0 && p.ticks >= p.cfg.ResetPeriod {
		p.ticks = 0
		for t := range p.tables {
			for i := range p.tables[t] {
				p.tables[t][i].useful >>= 1
			}
		}
	}

	// Branchless global-history shift.
	p.hist = p.hist<<1 | uint64(b2u(taken))
}

// allocate steals an entry with useful == 0 in a table with longer
// history than the provider, preferring the shortest such table but
// occasionally (LCG-decided) skipping one to spread allocations. If
// every candidate is useful, their counters are decremented instead —
// the standard TAGE pressure-release valve.
func (p *tage) allocate(taken bool) {
	start := p.sProvider + 1
	var free []int
	for t := start; t < len(p.tables); t++ {
		if p.tables[t][p.sIdx[t]].useful == 0 {
			free = append(free, t)
		}
	}
	if len(free) == 0 {
		for t := start; t < len(p.tables); t++ {
			e := &p.tables[t][p.sIdx[t]]
			if e.useful > 0 {
				e.useful--
			}
		}
		return
	}
	pick := free[0]
	if len(free) > 1 && p.next()&1 == 1 {
		pick = free[1]
	}
	e := &p.tables[pick][p.sIdx[pick]]
	e.tag = p.sTag[pick]
	e.useful = 0
	if taken {
		e.ctr = 0 // weakly taken
	} else {
		e.ctr = -1 // weakly not taken
	}
}

// next advances the seeded LCG (deterministic per config).
func (p *tage) next() uint64 {
	p.rng = p.rng*6364136223846793005 + 1442695040888963407
	return p.rng >> 33
}

// sat3 advances a 3-bit signed saturating counter in [-4, 3].
func sat3(c int8, taken bool) int8 {
	if taken {
		if c < 3 {
			c++
		}
	} else if c > -4 {
		c--
	}
	return c
}
