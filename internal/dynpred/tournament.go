package dynpred

import (
	"fmt"

	"ballarus/internal/interp"
)

// Score pairs a registry name with the predictor's tally.
type Score struct {
	Name string
	Result
}

// Tournament races several registry predictors over one event stream.
// Hook Observe into interp.Config.OnEvent to score a run incrementally,
// with no trace materialization.
type Tournament struct {
	entrants []Score
	preds    []Predictor
}

// NewTournament builds the named predictors, each sized for nBranches
// static branches, in the order given. Unknown names error.
func NewTournament(nBranches int, backends []string) (*Tournament, error) {
	t := &Tournament{
		entrants: make([]Score, 0, len(backends)),
		preds:    make([]Predictor, 0, len(backends)),
	}
	for _, name := range backends {
		p, err := New(name, nBranches)
		if err != nil {
			return nil, err
		}
		t.entrants = append(t.entrants, Score{Name: name, Result: Result{PerBranch: make([]BranchStat, nBranches)}})
		t.preds = append(t.preds, p)
	}
	return t, nil
}

// Observe feeds one trace event to every entrant. Indirect transfers
// are not conditional branches and are ignored.
func (t *Tournament) Observe(ev interp.Event) {
	if ev.Kind != interp.EvBranch {
		return
	}
	for i, p := range t.preds {
		miss := p.Predict(ev.Branch) != ev.Taken
		p.Update(ev.Branch, ev.Taken)
		t.entrants[i].observe(ev.Branch, miss)
	}
}

// Results returns each entrant's tally in registration order. The
// returned slice aliases the tournament's state; read it only after the
// stream ends.
func (t *Tournament) Results() []Score { return t.entrants }

// ---- Hard-to-predict classification ----

// H2POptions tunes the classifier. The zero value selects the defaults
// documented on each field.
type H2POptions struct {
	// MinExecuted excludes branches executed fewer times than this from
	// classification (default 32): a handful of executions cannot
	// distinguish a hard branch from a cold one.
	MinExecuted int64
	// HardPct is the per-branch miss percentage at or above which one
	// side counts as defeated (default 20).
	HardPct float64
	// EasyFactor: the other side must miss at most missRate/EasyFactor
	// to count as having solved the branch (default 2).
	EasyFactor float64
}

func (o H2POptions) withDefaults() H2POptions {
	if o.MinExecuted == 0 {
		o.MinExecuted = 32
	}
	if o.HardPct == 0 {
		o.HardPct = 20
	}
	if o.EasyFactor == 0 {
		o.EasyFactor = 2
	}
	return o
}

// H2PBranch is one classified branch with both sides' stats.
type H2PBranch struct {
	Branch      int32   `json:"branch"`
	Executed    int64   `json:"executed"`
	StaticPct   float64 `json:"static_miss_pct"`
	DynamicPct  float64 `json:"dynamic_miss_pct"`
	BestDynamic string  `json:"best_dynamic"`
}

// H2P is the per-branch verdict of the static-vs-dynamic comparison, in
// the Lin & Tarsa framing: StaticBeaten branches defeat the Ball-Larus
// heuristics but fall to history; HistoryBeaten branches are the
// converse — predictable statically, missed by every dynamic entrant.
// Both lists are sorted by branch ID, so a fixed trace and config yield
// byte-identical classifications.
type H2P struct {
	StaticBeaten  []H2PBranch `json:"static_beaten,omitempty"`
	HistoryBeaten []H2PBranch `json:"history_beaten,omitempty"`
}

// ClassifyH2P compares a static predictor's per-branch tallies against
// the best dynamic entrant per branch. Both results must carry
// PerBranch counts over the same branch ID space.
func ClassifyH2P(static Result, dynamics []Score, opts H2POptions) (H2P, error) {
	o := opts.withDefaults()
	var out H2P
	for id := range static.PerBranch {
		s := static.PerBranch[id]
		if s.Executed < o.MinExecuted {
			continue
		}
		bestName, bestMiss := "", int64(-1)
		for _, d := range dynamics {
			if id >= len(d.PerBranch) {
				return H2P{}, fmt.Errorf("dynpred: entrant %q has %d per-branch stats, static has %d", d.Name, len(d.PerBranch), len(static.PerBranch))
			}
			if m := d.PerBranch[id].Miss; bestMiss < 0 || m < bestMiss {
				bestName, bestMiss = d.Name, m
			}
		}
		if bestMiss < 0 {
			continue // no dynamic entrants
		}
		sPct := 100 * float64(s.Miss) / float64(s.Executed)
		dPct := 100 * float64(bestMiss) / float64(s.Executed)
		b := H2PBranch{
			Branch:      int32(id),
			Executed:    s.Executed,
			StaticPct:   sPct,
			DynamicPct:  dPct,
			BestDynamic: bestName,
		}
		switch {
		case sPct >= o.HardPct && dPct <= sPct/o.EasyFactor:
			out.StaticBeaten = append(out.StaticBeaten, b)
		case dPct >= o.HardPct && sPct <= dPct/o.EasyFactor:
			out.HistoryBeaten = append(out.HistoryBeaten, b)
		}
	}
	return out, nil
}
