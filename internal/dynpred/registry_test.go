package dynpred

import (
	"reflect"
	"testing"

	"ballarus/internal/interp"
	"ballarus/internal/profile"
)

func TestRegistryNames(t *testing.T) {
	want := []string{NameBimodal, NameGshare, NameOneBit, NameTAGE, NameTwoBit}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	if _, err := New("oracle", 4); err == nil {
		t.Fatal("New(oracle) should error for an unregistered name")
	}
	for _, name := range Names() {
		p, err := New(name, 8)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p == nil {
			t.Fatalf("New(%q) returned nil predictor", name)
		}
	}
}

func TestWrappersMatchRegistry(t *testing.T) {
	events := seq(true, true, false, true, false, false, true, true, true, false)
	for _, tc := range []struct {
		name string
		old  Result
	}{
		{NameOneBit, OneBit(events, 1)},
		{NameTwoBit, TwoBit(events, 1)},
	} {
		p, err := New(tc.name, 1)
		if err != nil {
			t.Fatal(err)
		}
		got := Replay(events, 1, p)
		if got.Branches != tc.old.Branches || got.Miss != tc.old.Miss {
			t.Errorf("%s: wrapper %+v != registry replay %+v", tc.name, tc.old, got)
		}
	}
}

func TestMissRateZeroBranches(t *testing.T) {
	var r Result
	if rate := r.MissRate(); rate != 0 {
		t.Fatalf("zero-branch MissRate = %v, want 0 (documented, not NaN)", rate)
	}
	r = Result{Branches: 4, Miss: 1}
	if rate := r.MissRate(); rate != 25 {
		t.Fatalf("MissRate = %v, want 25", rate)
	}
}

func TestPerBranchCounts(t *testing.T) {
	events := []interp.Event{
		ev(0, true), ev(1, false), ev(0, true), ev(1, false), ev(0, false),
	}
	r := Replay(events, 2, NewOneBit(2))
	if len(r.PerBranch) != 2 {
		t.Fatalf("PerBranch len = %d, want 2", len(r.PerBranch))
	}
	if r.PerBranch[0].Executed != 3 || r.PerBranch[1].Executed != 2 {
		t.Errorf("executed counts %+v, want 3 and 2", r.PerBranch)
	}
	sumMiss := r.PerBranch[0].Miss + r.PerBranch[1].Miss
	sumExec := r.PerBranch[0].Executed + r.PerBranch[1].Executed
	if sumMiss != r.Miss || sumExec != r.Branches {
		t.Errorf("per-branch tallies (%d exec, %d miss) disagree with totals (%d, %d)",
			sumExec, sumMiss, r.Branches, r.Miss)
	}
}

// Alternating TNTN defeats every per-branch counter scheme but is a
// trivial pattern for global history: gshare and TAGE should learn it
// nearly perfectly after warmup.
func TestAdversarialAlternating(t *testing.T) {
	const n = 2000
	var events []interp.Event
	for i := 0; i < n; i++ {
		events = append(events, ev(0, i%2 == 0))
	}
	oneBit := Replay(events, 1, NewOneBit(1))
	if oneBit.Miss < n-1 {
		t.Errorf("one-bit on TNTN missed %d/%d, expected near-total failure", oneBit.Miss, n)
	}
	gs := Replay(events, 1, NewGshare(DefaultGshareBits, DefaultGshareHistory))
	if gs.MissRate() > 5 {
		t.Errorf("gshare on TNTN miss rate %.1f%%, want < 5%% after warmup", gs.MissRate())
	}
	tg := Replay(events, 1, NewTAGE(DefaultTAGEConfig()))
	if tg.MissRate() > 5 {
		t.Errorf("tage on TNTN miss rate %.1f%%, want < 5%% after warmup", tg.MissRate())
	}
}

// Loop-exit pattern: taken k-1 times then one not-taken exit, repeated.
// Two-bit counters pay exactly one miss per exit; one-bit pays two (the
// exit and the re-entry).
func TestAdversarialLoopExit(t *testing.T) {
	const k, iters = 8, 200
	var events []interp.Event
	for i := 0; i < iters; i++ {
		for j := 0; j < k-1; j++ {
			events = append(events, ev(0, true))
		}
		events = append(events, ev(0, false))
	}
	one := Replay(events, 1, NewOneBit(1))
	two := Replay(events, 1, NewTwoBit(1))
	if two.Miss >= one.Miss {
		t.Errorf("two-bit (%d misses) should beat one-bit (%d) on loop exits", two.Miss, one.Miss)
	}
	// ~1 miss per exit for two-bit, plus warmup.
	if two.Miss > iters+4 {
		t.Errorf("two-bit misses = %d, want about one per exit (%d)", two.Miss, iters)
	}
}

// Correlated pair: branch 1's direction equals branch 0's previous
// outcome, while branch 0 itself looks random to a per-branch counter.
// Global history hands gshare branch 1 for free; bimodal, blind to
// context, stays near 50% on it.
func TestAdversarialCorrelatedPair(t *testing.T) {
	// Deterministic pseudo-random direction stream for branch 0.
	rng := uint64(0x1234567)
	next := func() bool {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng>>33&1 == 1
	}
	var events []interp.Event
	for i := 0; i < 4000; i++ {
		d := next()
		events = append(events, ev(0, d), ev(1, d))
	}
	perBranchRate := func(r Result, id int) float64 {
		s := r.PerBranch[id]
		return 100 * float64(s.Miss) / float64(s.Executed)
	}
	bm := Replay(events, 2, NewBimodal(DefaultBimodalBits))
	gs := Replay(events, 2, NewGshare(DefaultGshareBits, DefaultGshareHistory))
	if got := perBranchRate(bm, 1); got < 25 {
		t.Errorf("bimodal on correlated branch missed only %.1f%%, expected near-random", got)
	}
	if got := perBranchRate(gs, 1); got > 5 {
		t.Errorf("gshare on correlated branch missed %.1f%%, want < 5%%", got)
	}
}

// Same trace + same predictor config must yield identical miss counts
// across runs — the determinism the compare stage's cache and the H2P
// classification depend on.
func TestDeterminism(t *testing.T) {
	rng := uint64(42)
	next := func() bool {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng>>33&1 == 1
	}
	var events []interp.Event
	for i := 0; i < 5000; i++ {
		events = append(events, ev(int32(i%7), next()))
	}
	for _, name := range Names() {
		var first Result
		for run := 0; run < 3; run++ {
			p, err := New(name, 7)
			if err != nil {
				t.Fatal(err)
			}
			r := Replay(events, 7, p)
			if run == 0 {
				first = r
			} else if !reflect.DeepEqual(first, r) {
				t.Errorf("%s: run %d diverged: %+v vs %+v", name, run, first, r)
			}
		}
	}
}

func TestTournamentMatchesReplay(t *testing.T) {
	rng := uint64(99)
	next := func() bool {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng>>33&1 == 1
	}
	var events []interp.Event
	for i := 0; i < 3000; i++ {
		events = append(events, ev(int32(i%5), next()))
	}
	// Interleave an indirect event; tournaments must skip it.
	events = append(events, interp.Event{Kind: interp.EvIndirect, Branch: -1})

	backends := Names()
	tour, err := NewTournament(5, backends)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		tour.Observe(e)
	}
	scores := tour.Results()
	for i, name := range backends {
		p, err := New(name, 5)
		if err != nil {
			t.Fatal(err)
		}
		want := Replay(events, 5, p)
		if !reflect.DeepEqual(scores[i].Result, want) {
			t.Errorf("%s: tournament %+v != replay %+v", name, scores[i].Result, want)
		}
	}

	if _, err := NewTournament(5, []string{"nope"}); err == nil {
		t.Fatal("NewTournament with unknown backend should error")
	}
}

func TestClassifyH2P(t *testing.T) {
	// Branch 0: static fails (40% miss), dynamic solves it (5%).
	// Branch 1: dynamic fails (50%), static solves it (2%).
	// Branch 2: both fine. Branch 3: too cold to classify.
	static := Result{PerBranch: []BranchStat{
		{Executed: 100, Miss: 40},
		{Executed: 100, Miss: 2},
		{Executed: 100, Miss: 1},
		{Executed: 10, Miss: 10},
	}}
	dyn := []Score{{Name: "gshare", Result: Result{PerBranch: []BranchStat{
		{Executed: 100, Miss: 5},
		{Executed: 100, Miss: 50},
		{Executed: 100, Miss: 1},
		{Executed: 10, Miss: 0},
	}}}}
	got, err := ClassifyH2P(static, dyn, H2POptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.StaticBeaten) != 1 || got.StaticBeaten[0].Branch != 0 {
		t.Errorf("StaticBeaten = %+v, want branch 0", got.StaticBeaten)
	}
	if len(got.HistoryBeaten) != 1 || got.HistoryBeaten[0].Branch != 1 {
		t.Errorf("HistoryBeaten = %+v, want branch 1", got.HistoryBeaten)
	}
	if got.StaticBeaten[0].BestDynamic != "gshare" {
		t.Errorf("BestDynamic = %q", got.StaticBeaten[0].BestDynamic)
	}

	// Mismatched per-branch spaces error instead of misclassifying.
	short := []Score{{Name: "short", Result: Result{PerBranch: []BranchStat{{Executed: 100}}}}}
	if _, err := ClassifyH2P(static, short, H2POptions{}); err == nil {
		t.Fatal("ClassifyH2P with short entrant should error")
	}
}

func TestStaticResultMatchesReplay(t *testing.T) {
	// Build a trace and its profile; StaticResult from the profile must
	// equal a full replay of the static vector over the trace.
	rng := uint64(7)
	next := func() bool {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng>>33&1 == 1
	}
	var events []interp.Event
	for i := 0; i < 2000; i++ {
		events = append(events, ev(int32(i%3), next()))
	}
	prof := &profile.Profile{Taken: make([]int64, 3), Fall: make([]int64, 3)}
	for _, e := range events {
		prof.Count(e.Branch, e.Taken)
	}
	vec := []bool{true, false, true}
	direct := StaticResult(prof, vec)
	replayed := Replay(events, 3, NewStatic(vec))
	if !reflect.DeepEqual(direct, replayed) {
		t.Errorf("StaticResult %+v != Replay %+v", direct, replayed)
	}
}
