package dynpred

import (
	"testing"

	"ballarus/internal/interp"
)

func ev(branch int32, taken bool) interp.Event {
	return interp.Event{Delta: 1, Branch: branch, Kind: interp.EvBranch, Taken: taken}
}

func seq(dirs ...bool) []interp.Event {
	var out []interp.Event
	for _, d := range dirs {
		out = append(out, ev(0, d))
	}
	return out
}

func TestOneBit(t *testing.T) {
	// T T T F T: first T misses (reset state F), then hits until F, which
	// misses, then the following T misses again.
	r := OneBit(seq(true, true, true, false, true), 1)
	if r.Branches != 5 || r.Miss != 3 {
		t.Errorf("one-bit: %+v, want 5 branches 3 misses", r)
	}
	// Alternating T F T F always misses after the first F prediction hit.
	r = OneBit(seq(true, false, true, false, true, false), 1)
	if r.Miss != 6 {
		t.Errorf("alternating one-bit misses = %d, want 6 (pathological flip-flop)", r.Miss)
	}
}

func TestTwoBit(t *testing.T) {
	// From weakly-not-taken (1): T(miss,->2) T(hit,->3) T(hit) F(miss,->2)
	// T(hit,->3).
	r := TwoBit(seq(true, true, true, false, true), 1)
	if r.Branches != 5 || r.Miss != 2 {
		t.Errorf("two-bit: %+v, want 5 branches 2 misses", r)
	}
	// Hysteresis: a single F inside a taken run costs one miss, not two —
	// the advantage over one-bit.
	one := OneBit(seq(true, true, false, true, true), 1)
	two := TwoBit(seq(true, true, false, true, true), 1)
	if two.Miss >= one.Miss {
		t.Errorf("two-bit (%d) should beat one-bit (%d) on loop-like runs", two.Miss, one.Miss)
	}
}

func TestStaticMatchesDirectCount(t *testing.T) {
	events := seq(true, false, true, true)
	r := Static(events, []bool{true})
	if r.Branches != 4 || r.Miss != 1 {
		t.Errorf("static: %+v", r)
	}
}

func TestIndirectEventsIgnored(t *testing.T) {
	events := []interp.Event{
		{Kind: interp.EvIndirect, Branch: -1},
		ev(0, true),
		{Kind: interp.EvIndirect, Branch: -1},
	}
	if r := TwoBit(events, 1); r.Branches != 1 {
		t.Errorf("indirect events counted as branches: %+v", r)
	}
}
