// Package dynpred implements the dynamic hardware branch predictors the
// paper's related work compares against, replayed over the interpreter's
// branch-event stream: per-branch one-bit (last-direction) and two-bit
// saturating-counter predictors (Lee & A. J. Smith), an indexed bimodal
// table, gshare (McFarling's global-history XOR scheme), and a small
// TAGE (base table plus tagged geometric-history tables). McFarling and
// Hennessy's observation — that profile-based static prediction is
// comparable to dynamic hardware methods — and the paper's positioning
// of program-based prediction below both can be verified directly on
// the reproduction's own workloads.
//
// Predictors implement the streaming Predictor interface and are
// constructed through a name-keyed registry, so serving layers can
// offer a tournament over any subset by name. Feed them incrementally
// through interp.Config.OnEvent (no full-trace materialization) via a
// Tournament, or over a materialized trace with Replay.
package dynpred

import (
	"fmt"
	"sort"
	"sync"

	"ballarus/internal/interp"
	"ballarus/internal/profile"
)

// Predictor is a streaming dynamic branch predictor. Predict returns
// the predicted direction of the next execution of branch; Update feeds
// it the actual outcome. Callers must pair the two: each Update follows
// the Predict for the same dynamic branch instance (global-history
// predictors stash provider state between the calls). Implementations
// are deterministic — no wall-clock or global randomness — so the same
// trace always yields the same miss counts. They are not safe for
// concurrent use; drive each instance from one goroutine.
type Predictor interface {
	Predict(branch int32) bool
	Update(branch int32, taken bool)
}

// Factory constructs a predictor sized for a program with nBranches
// static conditional branches.
type Factory func(nBranches int) Predictor

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register adds a named predictor constructor to the registry. It
// panics on a duplicate name — registration is an init-time affair.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("dynpred: duplicate predictor %q", name))
	}
	registry[name] = f
}

// New constructs the named predictor for a program with nBranches
// static branches. Unknown names error with the registered alternatives.
func New(name string, nBranches int) (Predictor, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dynpred: no predictor %q (have %v)", name, Names())
	}
	return f(nBranches), nil
}

// Names returns the registered predictor names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register(NameOneBit, func(n int) Predictor { return NewOneBit(n) })
	Register(NameTwoBit, func(n int) Predictor { return NewTwoBit(n) })
	Register(NameBimodal, func(n int) Predictor { return NewBimodal(DefaultBimodalBits) })
	Register(NameGshare, func(n int) Predictor { return NewGshare(DefaultGshareBits, DefaultGshareHistory) })
	Register(NameTAGE, func(n int) Predictor { return NewTAGE(DefaultTAGEConfig()) })
}

// Registry names for the built-in predictors.
const (
	NameOneBit  = "one-bit"
	NameTwoBit  = "two-bit"
	NameBimodal = "bimodal"
	NameGshare  = "gshare"
	NameTAGE    = "tage"
)

// BranchStat is one static branch's dynamic tally under a predictor.
type BranchStat struct {
	Executed int64 `json:"executed"`
	Miss     int64 `json:"miss"`
}

// Result is one predictor's dynamic performance on a trace, with
// per-branch counts so hard-to-predict classification needs no second
// replay.
type Result struct {
	Branches int64 // conditional branches executed
	Miss     int64 // mispredictions
	// PerBranch, indexed by branch ID, tallies each static branch's
	// executions and misses. Nil for results produced by the deprecated
	// aggregate-only entry points' zero-branch traces.
	PerBranch []BranchStat
}

// MissRate returns the miss percentage over the trace's conditional
// branches. A trace with zero conditional branches has, by definition,
// no mispredictions to rate; MissRate reports 0 for it (not NaN), and
// callers that must distinguish "perfect" from "never exercised" should
// test Branches == 0.
func (r Result) MissRate() float64 {
	if r.Branches == 0 {
		return 0
	}
	return 100 * float64(r.Miss) / float64(r.Branches)
}

// observe tallies one dynamic branch outcome.
func (r *Result) observe(branch int32, miss bool) {
	r.Branches++
	if int(branch) < len(r.PerBranch) {
		r.PerBranch[branch].Executed++
	}
	if miss {
		r.Miss++
		if int(branch) < len(r.PerBranch) {
			r.PerBranch[branch].Miss++
		}
	}
}

// Replay drives p over a materialized trace, pairing Predict and Update
// per conditional branch event, and returns the tally. Indirect events
// are not conditional branches and are skipped.
func Replay(events []interp.Event, nBranches int, p Predictor) Result {
	r := Result{PerBranch: make([]BranchStat, nBranches)}
	for i := range events {
		ev := &events[i]
		if ev.Kind != interp.EvBranch {
			continue
		}
		miss := p.Predict(ev.Branch) != ev.Taken
		p.Update(ev.Branch, ev.Taken)
		r.observe(ev.Branch, miss)
	}
	return r
}

// StaticResult scores a fixed per-branch prediction vector against an
// edge profile. Static predictors need no trace replay: their misses
// per branch are exactly the profile's counts on the unpredicted edge.
func StaticResult(p *profile.Profile, taken []bool) Result {
	r := Result{PerBranch: make([]BranchStat, len(taken))}
	for id := range taken {
		d := p.Executed(id)
		if d == 0 {
			continue
		}
		m := p.Misses(id, taken[id])
		r.Branches += d
		r.Miss += m
		r.PerBranch[id] = BranchStat{Executed: d, Miss: m}
	}
	return r
}

// ---- Deprecated one-shot wrappers ----
//
// The pre-registry API materialized the whole trace and returned
// aggregate counts. Each function below is a thin wrapper over the
// streaming Predictor registry and behaves identically.

// OneBit replays a last-direction predictor: each branch predicts
// whatever it last did. The first execution of a branch predicts
// not-taken (forward-not-taken reset state).
//
// Deprecated: use Replay with New(NameOneBit, nBranches).
func OneBit(events []interp.Event, nBranches int) Result {
	return Replay(events, nBranches, NewOneBit(nBranches))
}

// TwoBit replays the classic two-bit saturating counter per branch
// (states 0-3; predict taken at 2 and 3), initialized weakly-not-taken.
//
// Deprecated: use Replay with New(NameTwoBit, nBranches).
func TwoBit(events []interp.Event, nBranches int) Result {
	return Replay(events, nBranches, NewTwoBit(nBranches))
}

// Static replays a fixed prediction vector over the trace (the same
// numbers the edge profile yields; provided for uniform comparison).
//
// Deprecated: use Replay with NewStatic, or StaticResult when the run's
// edge profile is at hand (no replay needed).
func Static(events []interp.Event, taken []bool) Result {
	return Replay(events, len(taken), NewStatic(taken))
}
