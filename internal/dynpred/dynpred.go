// Package dynpred implements the dynamic hardware branch predictors the
// paper's related work compares against: per-branch one-bit
// (last-direction) and two-bit saturating-counter predictors (Lee &
// A. J. Smith), replayed over the interpreter's event traces. McFarling
// and Hennessy's observation — that profile-based static prediction is
// comparable to dynamic hardware methods — and the paper's positioning of
// program-based prediction below both can be verified directly on the
// reproduction's own workloads.
package dynpred

import (
	"ballarus/internal/interp"
)

// Result is one predictor's dynamic performance on a trace.
type Result struct {
	Branches int64 // conditional branches executed
	Miss     int64 // mispredictions
}

// MissRate returns the miss percentage.
func (r Result) MissRate() float64 {
	if r.Branches == 0 {
		return 0
	}
	return 100 * float64(r.Miss) / float64(r.Branches)
}

// OneBit replays a last-direction predictor: each branch predicts
// whatever it last did. The first execution of a branch predicts
// not-taken (forward-not-taken reset state).
func OneBit(events []interp.Event, nBranches int) Result {
	last := make([]bool, nBranches)
	var r Result
	for i := range events {
		ev := &events[i]
		if ev.Kind != interp.EvBranch {
			continue
		}
		r.Branches++
		if last[ev.Branch] != ev.Taken {
			r.Miss++
		}
		last[ev.Branch] = ev.Taken
	}
	return r
}

// TwoBit replays the classic two-bit saturating counter per branch
// (states 0-3; predict taken at 2 and 3), initialized weakly-not-taken.
func TwoBit(events []interp.Event, nBranches int) Result {
	state := make([]uint8, nBranches)
	for i := range state {
		state[i] = 1 // weakly not taken
	}
	var r Result
	for i := range events {
		ev := &events[i]
		if ev.Kind != interp.EvBranch {
			continue
		}
		r.Branches++
		predictTaken := state[ev.Branch] >= 2
		if predictTaken != ev.Taken {
			r.Miss++
		}
		if ev.Taken {
			if state[ev.Branch] < 3 {
				state[ev.Branch]++
			}
		} else if state[ev.Branch] > 0 {
			state[ev.Branch]--
		}
	}
	return r
}

// Static replays a fixed prediction vector over the trace (the same
// numbers the edge profile yields; provided for uniform comparison).
func Static(events []interp.Event, taken []bool) Result {
	var r Result
	for i := range events {
		ev := &events[i]
		if ev.Kind != interp.EvBranch {
			continue
		}
		r.Branches++
		if taken[ev.Branch] != ev.Taken {
			r.Miss++
		}
	}
	return r
}
