package dynpred

// Default geometry for the table-indexed predictors: sized like the
// small hardware budgets of the era the paper compares against, and
// deliberately smaller than some suite programs' branch counts so the
// aliasing real tables suffer is modeled, not assumed away.
const (
	DefaultBimodalBits   = 12 // 4096-entry bimodal table
	DefaultGshareBits    = 12 // 4096-entry gshare table
	DefaultGshareHistory = 12 // global history bits XORed into the index
)

// oneBit predicts each branch's last direction (reset: not taken).
type oneBit struct {
	last []bool
}

// NewOneBit builds a per-branch last-direction predictor.
func NewOneBit(nBranches int) Predictor {
	return &oneBit{last: make([]bool, nBranches)}
}

func (p *oneBit) Predict(branch int32) bool       { return p.last[branch] }
func (p *oneBit) Update(branch int32, taken bool) { p.last[branch] = taken }

// twoBit keeps a two-bit saturating counter per branch (states 0-3;
// predict taken at 2 and 3), initialized weakly-not-taken.
type twoBit struct {
	state []uint8
}

// NewTwoBit builds a per-branch two-bit saturating-counter predictor.
func NewTwoBit(nBranches int) Predictor {
	p := &twoBit{state: make([]uint8, nBranches)}
	for i := range p.state {
		p.state[i] = 1 // weakly not taken
	}
	return p
}

func (p *twoBit) Predict(branch int32) bool { return p.state[branch] >= 2 }

func (p *twoBit) Update(branch int32, taken bool) {
	p.state[branch] = sat2(p.state[branch], taken)
}

// sat2 advances a two-bit saturating counter.
func sat2(s uint8, taken bool) uint8 {
	if taken {
		if s < 3 {
			s++
		}
	} else if s > 0 {
		s--
	}
	return s
}

// bimodal is the classic PC-indexed counter table: branch IDs index a
// bounded table of two-bit counters modulo its size, so distinct
// branches alias exactly as they do in hardware.
type bimodal struct {
	table []uint8
	mask  int32
}

// NewBimodal builds a 2^bits-entry bimodal table predictor.
func NewBimodal(bits int) Predictor {
	n := 1 << bits
	p := &bimodal{table: make([]uint8, n), mask: int32(n - 1)}
	for i := range p.table {
		p.table[i] = 1 // weakly not taken
	}
	return p
}

func (p *bimodal) Predict(branch int32) bool { return p.table[branch&p.mask] >= 2 }

func (p *bimodal) Update(branch int32, taken bool) {
	i := branch & p.mask
	p.table[i] = sat2(p.table[i], taken)
}

// gshare XORs the global branch-history register into the table index,
// so the same branch trains different counters in different history
// contexts — catching correlated branches bimodal structurally cannot.
type gshare struct {
	table    []uint8
	mask     uint32
	hist     uint32
	histMask uint32
}

// NewGshare builds a 2^bits-entry gshare predictor tracking histBits of
// global history.
func NewGshare(bits, histBits int) Predictor {
	n := 1 << bits
	p := &gshare{
		table:    make([]uint8, n),
		mask:     uint32(n - 1),
		histMask: uint32(1<<histBits - 1),
	}
	for i := range p.table {
		p.table[i] = 1 // weakly not taken
	}
	return p
}

func (p *gshare) index(branch int32) uint32 {
	return (uint32(branch) ^ p.hist) & p.mask
}

func (p *gshare) Predict(branch int32) bool { return p.table[p.index(branch)] >= 2 }

func (p *gshare) Update(branch int32, taken bool) {
	i := p.index(branch)
	p.table[i] = sat2(p.table[i], taken)
	// Branchless history shift: the SupraX idiom.
	p.hist = ((p.hist << 1) | b2u(taken)) & p.histMask
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// static wraps a fixed per-branch direction vector as a Predictor, so
// static schemes race in the same tournament harness as dynamic ones.
type static struct {
	taken []bool
}

// NewStatic wraps a fixed prediction vector (true = predict taken).
func NewStatic(taken []bool) Predictor { return &static{taken: taken} }

func (p *static) Predict(branch int32) bool       { return p.taken[branch] }
func (p *static) Update(branch int32, taken bool) {}
