// Package asm defines a textual format for MIR programs and implements
// its assembler and formatter. Format and Assemble round-trip exactly, so
// compiled programs can be saved, inspected, hand-edited, and reloaded —
// the workflow binary-level tools like QPT enabled on real executables.
//
// The format, line oriented:
//
//	.program entry=<proc-name>
//	.data
//	  <int64>            ; one word per line (floats stored bit-cast)
//	.builtin name=<n> kind=<builtin> args=<k>
//	.proc name=<n> args=<a> locals=<l> iregs=<i> fregs=<f>
//	  li $r8, 1
//	  beq $r8, $zero, @3 ; branch targets are instruction indices
//	  jal <proc-name>    ; call targets are procedure names
//	  jtab $r8, [@1 @4]
//
// Comments run from ';' to end of line. Register syntax matches the
// disassembler: $zero $rv $sp $gp $ra $frv $rN $fN.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"ballarus/internal/mir"
)

// Format renders prog in assembler syntax. Assemble(Format(p)) reproduces
// p exactly.
func Format(prog *mir.Program) string {
	var b strings.Builder
	entry := prog.Procs[prog.Entry].Name
	fmt.Fprintf(&b, ".program entry=%s\n", entry)
	if len(prog.Data) > 0 {
		b.WriteString(".data\n")
		for _, w := range prog.Data {
			fmt.Fprintf(&b, "  %d\n", w)
		}
	}
	for _, p := range prog.Procs {
		if p.Builtin != mir.NotBuiltin {
			fmt.Fprintf(&b, ".builtin name=%s kind=%s args=%d\n", p.Name, p.Builtin, p.NArgs)
			continue
		}
		fmt.Fprintf(&b, ".proc name=%s args=%d locals=%d iregs=%d fregs=%d\n",
			p.Name, p.NArgs, p.NLocals, p.NIRegs, p.NFRegs)
		for i := range p.Code {
			fmt.Fprintf(&b, "  %s\n", formatInstr(prog, &p.Code[i]))
		}
	}
	return b.String()
}

// formatInstr is Instr.String with calls rendered by procedure name and
// float immediates in parseable form.
func formatInstr(prog *mir.Program, in *mir.Instr) string {
	switch in.Op {
	case mir.Jal:
		return fmt.Sprintf("jal %s", prog.Procs[in.Callee].Name)
	case mir.FLi:
		return fmt.Sprintf("fli %s, %s", in.Rd, strconv.FormatFloat(in.FImm, 'g', -1, 64))
	default:
		return in.String()
	}
}

// Assemble parses the textual form back into a program.
func Assemble(src string) (*mir.Program, error) {
	a := &assembler{
		prog:    &mir.Program{},
		procIdx: map[string]int{},
	}
	var entryName string
	lines := strings.Split(src, "\n")
	// First pass: collect procedure names so calls resolve forward.
	for ln, raw := range lines {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, ".proc "), strings.HasPrefix(line, ".builtin "):
			kv := parseKVs(line)
			name := kv["name"]
			if name == "" {
				return nil, fmt.Errorf("asm: line %d: missing name", ln+1)
			}
			if _, dup := a.procIdx[name]; dup {
				return nil, fmt.Errorf("asm: line %d: duplicate procedure %s", ln+1, name)
			}
			a.procIdx[name] = len(a.prog.Procs)
			a.prog.Procs = append(a.prog.Procs, &mir.Proc{Name: name})
		}
	}
	state := "" // "", "data", "code"
	var cur *mir.Proc
	procSeen := 0
	for ln, raw := range lines {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("asm: line %d: %s", ln+1, fmt.Sprintf(format, args...))
		}
		switch {
		case strings.HasPrefix(line, ".program"):
			kv := parseKVs(line)
			entryName = kv["entry"]
		case line == ".data":
			state = "data"
		case strings.HasPrefix(line, ".builtin "):
			kv := parseKVs(line)
			p := a.prog.Procs[procSeen]
			procSeen++
			kind, err := builtinByName(kv["kind"])
			if err != nil {
				return nil, fail("%v", err)
			}
			p.Builtin = kind
			p.NArgs = atoiDefault(kv["args"])
			state = ""
			cur = nil
		case strings.HasPrefix(line, ".proc "):
			kv := parseKVs(line)
			cur = a.prog.Procs[procSeen]
			procSeen++
			cur.NArgs = atoiDefault(kv["args"])
			cur.NLocals = atoiDefault(kv["locals"])
			cur.NIRegs = atoiDefault(kv["iregs"])
			cur.NFRegs = atoiDefault(kv["fregs"])
			state = "code"
		case state == "data":
			v, err := strconv.ParseInt(strings.TrimSpace(line), 10, 64)
			if err != nil {
				return nil, fail("bad data word %q", line)
			}
			a.prog.Data = append(a.prog.Data, v)
		case state == "code":
			if cur == nil {
				return nil, fail("instruction outside a procedure")
			}
			in, err := a.parseInstr(strings.TrimSpace(line))
			if err != nil {
				return nil, fail("%v", err)
			}
			cur.Code = append(cur.Code, in)
		default:
			return nil, fail("unexpected line %q", line)
		}
	}
	if entryName == "" {
		return nil, fmt.Errorf("asm: missing .program entry")
	}
	e, ok := a.procIdx[entryName]
	if !ok {
		return nil, fmt.Errorf("asm: entry procedure %q not defined", entryName)
	}
	a.prog.Entry = e
	if err := a.prog.Validate(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return a.prog, nil
}

type assembler struct {
	prog    *mir.Program
	procIdx map[string]int
}

func stripComment(s string) string {
	if i := strings.IndexByte(s, ';'); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

// parseKVs extracts key=value pairs from a directive line.
func parseKVs(line string) map[string]string {
	out := map[string]string{}
	for _, f := range strings.Fields(line)[1:] {
		if i := strings.IndexByte(f, '='); i > 0 {
			out[f[:i]] = f[i+1:]
		}
	}
	return out
}

func atoiDefault(s string) int {
	v, _ := strconv.Atoi(s)
	return v
}

func builtinByName(name string) (mir.BuiltinKind, error) {
	for k := mir.BAlloc; k <= mir.BExit; k++ {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown builtin kind %q", name)
}

// opByName maps mnemonics back to opcodes.
var opByName = func() map[string]mir.Op {
	m := map[string]mir.Op{}
	for op := mir.Nop; op <= mir.Halt; op++ {
		m[op.String()] = op
	}
	return m
}()

func parseReg(s string) (mir.Reg, error) {
	switch s {
	case "$zero":
		return mir.R0, nil
	case "$rv":
		return mir.RV, nil
	case "$sp":
		return mir.SP, nil
	case "$gp":
		return mir.GP, nil
	case "$ra":
		return mir.RA, nil
	case "$frv":
		return mir.FRV, nil
	}
	if strings.HasPrefix(s, "$r") {
		n, err := strconv.Atoi(s[2:])
		if err != nil || n < int(mir.FirstVirtual) {
			return 0, fmt.Errorf("bad register %q", s)
		}
		return mir.Reg(n), nil
	}
	if strings.HasPrefix(s, "$f") {
		n, err := strconv.Atoi(s[2:])
		if err != nil || n < int(mir.FirstVirtual) {
			return 0, fmt.Errorf("bad register %q", s)
		}
		return mir.FloatBit | mir.Reg(n), nil
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseTarget(s string) (int, error) {
	if !strings.HasPrefix(s, "@") {
		return 0, fmt.Errorf("bad target %q", s)
	}
	return strconv.Atoi(s[1:])
}

// parseInstr parses one instruction line.
func (a *assembler) parseInstr(line string) (mir.Instr, error) {
	var in mir.Instr
	mn, rest, _ := strings.Cut(line, " ")
	op, ok := opByName[mn]
	if !ok {
		return in, fmt.Errorf("unknown mnemonic %q", mn)
	}
	in.Op = op
	ops := splitOperands(rest)
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s takes %d operands, got %d", mn, n, len(ops))
		}
		return nil
	}
	switch op {
	case mir.Nop, mir.Halt:
		return in, need(0)
	case mir.Li:
		if err := need(2); err != nil {
			return in, err
		}
		r, err := parseReg(ops[0])
		if err != nil {
			return in, err
		}
		in.Rd = r
		in.Imm, err = strconv.ParseInt(ops[1], 10, 64)
		return in, err
	case mir.FLi:
		if err := need(2); err != nil {
			return in, err
		}
		r, err := parseReg(ops[0])
		if err != nil {
			return in, err
		}
		in.Rd = r
		in.FImm, err = strconv.ParseFloat(ops[1], 64)
		return in, err
	case mir.Addi:
		if err := need(3); err != nil {
			return in, err
		}
		var err error
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return in, err
		}
		if in.Rs, err = parseReg(ops[1]); err != nil {
			return in, err
		}
		in.Imm, err = strconv.ParseInt(ops[2], 10, 64)
		return in, err
	case mir.Move, mir.FMove, mir.FNeg, mir.CvtIF, mir.CvtFI:
		if err := need(2); err != nil {
			return in, err
		}
		var err error
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return in, err
		}
		in.Rs, err = parseReg(ops[1])
		return in, err
	case mir.Lw, mir.FLw:
		if err := need(2); err != nil {
			return in, err
		}
		var err error
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return in, err
		}
		in.Imm, in.Rs, err = parseMem(ops[1])
		return in, err
	case mir.Sw, mir.FSw:
		if err := need(2); err != nil {
			return in, err
		}
		var err error
		if in.Rt, err = parseReg(ops[0]); err != nil {
			return in, err
		}
		in.Imm, in.Rs, err = parseMem(ops[1])
		return in, err
	case mir.Beq, mir.Bne, mir.FBeq, mir.FBne, mir.FBlt, mir.FBle, mir.FBgt, mir.FBge:
		if err := need(3); err != nil {
			return in, err
		}
		var err error
		if in.Rs, err = parseReg(ops[0]); err != nil {
			return in, err
		}
		if in.Rt, err = parseReg(ops[1]); err != nil {
			return in, err
		}
		in.Target, err = parseTarget(ops[2])
		return in, err
	case mir.Bltz, mir.Blez, mir.Bgtz, mir.Bgez:
		if err := need(2); err != nil {
			return in, err
		}
		var err error
		if in.Rs, err = parseReg(ops[0]); err != nil {
			return in, err
		}
		in.Target, err = parseTarget(ops[1])
		return in, err
	case mir.J:
		if err := need(1); err != nil {
			return in, err
		}
		var err error
		in.Target, err = parseTarget(ops[0])
		return in, err
	case mir.Jal:
		if err := need(1); err != nil {
			return in, err
		}
		idx, ok := a.procIdx[ops[0]]
		if !ok {
			return in, fmt.Errorf("call to unknown procedure %q", ops[0])
		}
		in.Callee = idx
		return in, nil
	case mir.Jr, mir.Jalr:
		if err := need(1); err != nil {
			return in, err
		}
		var err error
		in.Rs, err = parseReg(ops[0])
		return in, err
	case mir.Jtab:
		if len(ops) < 2 {
			return in, fmt.Errorf("jtab needs a register and a table")
		}
		var err error
		if in.Rs, err = parseReg(ops[0]); err != nil {
			return in, err
		}
		table := strings.Join(ops[1:], " ")
		table = strings.TrimPrefix(table, "[")
		table = strings.TrimSuffix(table, "]")
		for _, f := range strings.Fields(table) {
			t, err := parseTarget(f)
			if err != nil {
				return in, err
			}
			in.Table = append(in.Table, t)
		}
		return in, nil
	default:
		// Three-register ALU forms.
		if err := need(3); err != nil {
			return in, err
		}
		var err error
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return in, err
		}
		if in.Rs, err = parseReg(ops[1]); err != nil {
			return in, err
		}
		in.Rt, err = parseReg(ops[2])
		return in, err
	}
}

// parseMem parses "off($base)".
func parseMem(s string) (int64, mir.Reg, error) {
	i := strings.IndexByte(s, '(')
	if i < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	off, err := strconv.ParseInt(s[:i], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad offset in %q", s)
	}
	r, err := parseReg(s[i+1 : len(s)-1])
	return off, r, err
}

// splitOperands splits on commas outside brackets.
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}
