package asm

import (
	"reflect"
	"strings"
	"testing"

	"ballarus/internal/interp"
	"ballarus/internal/mir"
	"ballarus/internal/suite"
)

// TestRoundTripSuite is the big property: every compiled suite program
// must survive Format -> Assemble exactly.
func TestRoundTripSuite(t *testing.T) {
	for _, b := range suite.All() {
		prog, err := b.Compile()
		if err != nil {
			t.Fatal(err)
		}
		text := Format(prog)
		back, err := Assemble(text)
		if err != nil {
			t.Fatalf("%s: assemble: %v", b.Name, err)
		}
		if back.Entry != prog.Entry {
			t.Fatalf("%s: entry %d != %d", b.Name, back.Entry, prog.Entry)
		}
		if !reflect.DeepEqual(back.Data, prog.Data) {
			t.Fatalf("%s: data image differs", b.Name)
		}
		if len(back.Procs) != len(prog.Procs) {
			t.Fatalf("%s: %d procs != %d", b.Name, len(back.Procs), len(prog.Procs))
		}
		for pi := range prog.Procs {
			p1, p2 := prog.Procs[pi], back.Procs[pi]
			if p1.Name != p2.Name || p1.Builtin != p2.Builtin || p1.NArgs != p2.NArgs ||
				p1.NLocals != p2.NLocals || p1.NIRegs != p2.NIRegs || p1.NFRegs != p2.NFRegs {
				t.Fatalf("%s/%s: header differs", b.Name, p1.Name)
			}
			if len(p1.Code) != len(p2.Code) {
				t.Fatalf("%s/%s: %d instrs != %d", b.Name, p1.Name, len(p1.Code), len(p2.Code))
			}
			for i := range p1.Code {
				if !reflect.DeepEqual(p1.Code[i], p2.Code[i]) {
					t.Fatalf("%s/%s+%d: %v != %v", b.Name, p1.Name, i, p2.Code[i], p1.Code[i])
				}
			}
		}
	}
}

// TestRoundTripRuns reassembles a benchmark and runs it: identical output.
func TestRoundTripRuns(t *testing.T) {
	b := suite.Get("compress")
	prog, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Assemble(Format(prog))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := interp.Run(prog, interp.Config{Input: b.Data[0].Input, Budget: b.Budget})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := interp.Run(back, interp.Config{Input: b.Data[0].Input, Budget: b.Budget})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Output != r2.Output || r1.Steps != r2.Steps {
		t.Fatal("reassembled program behaves differently")
	}
}

func TestAssembleHandWritten(t *testing.T) {
	src := `
; a tiny hand-written program: sum 1..10 and exit with the result
.program entry=main
.builtin name=exit kind=exit args=1
.proc name=main args=0 locals=0 iregs=2 fregs=0
  li $r8, 10          ; n
  li $r9, 0           ; sum
  add $r9, $r9, $r8   ; loop body
  addi $r8, $r8, -1
  bgtz $r8, @2
  sw $rv, -1($sp)     ; scratch to exercise memory syntax
  sw $r9, -1($sp)
  jal exit
  halt
`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(prog, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 55 {
		t.Errorf("exit code %d, want 55", res.ExitCode)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"no-entry", ".proc name=f args=0 locals=0 iregs=0 fregs=0\n  halt\n", "missing .program entry"},
		{"bad-entry", ".program entry=zzz\n.proc name=f args=0 locals=0 iregs=0 fregs=0\n  halt\n", "not defined"},
		{"bad-mnemonic", ".program entry=f\n.proc name=f args=0 locals=0 iregs=0 fregs=0\n  frob $r8\n", "unknown mnemonic"},
		{"bad-reg", ".program entry=f\n.proc name=f args=0 locals=0 iregs=1 fregs=0\n  li $q3, 1\n  halt\n", "bad register"},
		{"bad-call", ".program entry=f\n.proc name=f args=0 locals=0 iregs=0 fregs=0\n  jal nosuch\n  halt\n", "unknown procedure"},
		{"dup-proc", ".program entry=f\n.proc name=f args=0 locals=0 iregs=0 fregs=0\n  halt\n.proc name=f args=0 locals=0 iregs=0 fregs=0\n  halt\n", "duplicate"},
		{"stray-line", ".program entry=f\nwhat\n.proc name=f args=0 locals=0 iregs=0 fregs=0\n  halt\n", "unexpected line"},
		{"bad-data", ".program entry=f\n.data\n  xyz\n.proc name=f args=0 locals=0 iregs=0 fregs=0\n  halt\n", "bad data word"},
		{"bad-builtin", ".program entry=f\n.builtin name=b kind=nosuch args=0\n.proc name=f args=0 locals=0 iregs=0 fregs=0\n  halt\n", "unknown builtin"},
		{"invalid-mir", ".program entry=f\n.proc name=f args=0 locals=0 iregs=1 fregs=0\n  li $r8, 1\n", "falls off"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble(tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestFloatImmediateRoundTrip(t *testing.T) {
	prog := &mir.Program{Procs: []*mir.Proc{{
		Name: "main", NFRegs: 1,
		Code: []mir.Instr{
			{Op: mir.FLi, Rd: mir.Float(0), FImm: 0.30000000000000004},
			{Op: mir.FLi, Rd: mir.Float(0), FImm: -1e-300},
			{Op: mir.Halt},
		},
	}}}
	back, err := Assemble(Format(prog))
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range prog.Procs[0].Code {
		if back.Procs[0].Code[i].FImm != in.FImm {
			t.Errorf("float immediate %d lost precision: %v != %v",
				i, back.Procs[0].Code[i].FImm, in.FImm)
		}
	}
}

// FuzzAssemble: arbitrary text must never panic the assembler, and
// anything it accepts must be valid MIR.
func FuzzAssemble(f *testing.F) {
	for _, b := range []string{"xlisp", "matrix300"} {
		if prog, err := suite.Get(b).Compile(); err == nil {
			f.Add(Format(prog))
		}
	}
	f.Add(".program entry=main\n.proc name=main args=0 locals=0 iregs=0 fregs=0\n  halt\n")
	f.Add(".program entry=x")
	f.Add(".data\n 1\n 2\n")
	f.Add("garbage\n")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble(src)
		if err != nil {
			return
		}
		if verr := prog.Validate(); verr != nil {
			t.Fatalf("assembled program is invalid: %v", verr)
		}
	})
}
