// Package profile defines branch indexing and edge profiles — the
// observables QPT's instrumentation produced for the paper: for each
// two-way conditional branch, how many times control went to the target
// successor and how many times to the fall-through successor.
package profile

import (
	"fmt"

	"ballarus/internal/mir"
)

// Site locates one conditional branch instruction.
type Site struct {
	Proc  int // procedure index in the program
	Instr int // instruction index within the procedure
}

// Set is the indexed set of every conditional branch in a program. Branch
// IDs are dense, assigned in (procedure, instruction) order, and stable
// across runs, so profiles and predictions can be joined by ID.
type Set struct {
	sites   []Site
	perProc [][]int32 // proc -> instr -> branch id or -1
}

// Index enumerates the conditional branches of prog.
func Index(prog *mir.Program) *Set {
	s := &Set{perProc: make([][]int32, len(prog.Procs))}
	for pi, pr := range prog.Procs {
		ids := make([]int32, len(pr.Code))
		for i := range ids {
			ids[i] = -1
		}
		for i := range pr.Code {
			if pr.Code[i].Op.IsCondBranch() {
				ids[i] = int32(len(s.sites))
				s.sites = append(s.sites, Site{Proc: pi, Instr: i})
			}
		}
		s.perProc[pi] = ids
	}
	return s
}

// Len returns the number of conditional branches.
func (s *Set) Len() int { return len(s.sites) }

// Site returns the location of branch id.
func (s *Set) Site(id int) Site { return s.sites[id] }

// ID returns the branch id at (proc, instr), or -1.
func (s *Set) ID(proc, instr int) int32 { return s.perProc[proc][instr] }

// IDRow returns the instr->id row for a procedure (shared, do not modify).
func (s *Set) IDRow(proc int) []int32 { return s.perProc[proc] }

// Profile is an edge profile: per-branch taken and fall-through execution
// counts from one program run.
type Profile struct {
	Set   *Set
	Taken []int64
	Fall  []int64
}

// New creates an empty profile over the branch set.
func New(s *Set) *Profile {
	return &Profile{Set: s, Taken: make([]int64, s.Len()), Fall: make([]int64, s.Len())}
}

// Count records one execution of branch id.
func (p *Profile) Count(id int32, taken bool) {
	if taken {
		p.Taken[id]++
	} else {
		p.Fall[id]++
	}
}

// Executed returns the dynamic execution count of branch id.
func (p *Profile) Executed(id int) int64 { return p.Taken[id] + p.Fall[id] }

// Total returns the total dynamic conditional-branch count.
func (p *Profile) Total() int64 {
	var t int64
	for i := range p.Taken {
		t += p.Taken[i] + p.Fall[i]
	}
	return t
}

// PerfectTaken reports the perfect static predictor's choice for branch id:
// the more frequently executed outgoing edge. Ties predict taken.
func (p *Profile) PerfectTaken(id int) bool { return p.Taken[id] >= p.Fall[id] }

// PerfectMisses returns the dynamic misses of the perfect static predictor
// on branch id.
func (p *Profile) PerfectMisses(id int) int64 {
	if p.Taken[id] >= p.Fall[id] {
		return p.Fall[id]
	}
	return p.Taken[id]
}

// Misses returns the dynamic misses on branch id when predicting taken.
func (p *Profile) Misses(id int, predictTaken bool) int64 {
	if predictTaken {
		return p.Fall[id]
	}
	return p.Taken[id]
}

// Rate is a miss-rate pair in the paper's C/D notation: the predictor's
// miss percentage over the perfect static predictor's miss percentage,
// measured over the same set of dynamic branches.
type Rate struct {
	Pred    float64 // predictor miss rate, percent
	Perfect float64 // perfect static predictor miss rate, percent
	Dyn     int64   // dynamic branches measured
}

// String formats the rate as the paper prints it, e.g. "26/10".
func (r Rate) String() string {
	if r.Dyn == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f/%.0f", r.Pred, r.Perfect)
}

// MakeRate builds a Rate from miss and perfect-miss counts over dyn
// dynamic branches.
func MakeRate(misses, perfectMisses, dyn int64) Rate {
	if dyn == 0 {
		return Rate{}
	}
	return Rate{
		Pred:    100 * float64(misses) / float64(dyn),
		Perfect: 100 * float64(perfectMisses) / float64(dyn),
		Dyn:     dyn,
	}
}
