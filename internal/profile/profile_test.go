package profile

import (
	"testing"
	"testing/quick"

	"ballarus/internal/mir"
)

func sampleProgram() *mir.Program {
	return &mir.Program{
		Procs: []*mir.Proc{
			{Name: "a", NIRegs: 1, Code: []mir.Instr{
				{Op: mir.Li, Rd: mir.Int(0), Imm: 1},
				{Op: mir.Beq, Rs: mir.Int(0), Rt: mir.R0, Target: 0},
				{Op: mir.Bne, Rs: mir.Int(0), Rt: mir.R0, Target: 0},
				{Op: mir.Halt},
			}},
			{Name: "alloc", Builtin: mir.BAlloc, NArgs: 1},
			{Name: "b", NIRegs: 1, Code: []mir.Instr{
				{Op: mir.Bltz, Rs: mir.Int(0), Target: 0},
				{Op: mir.Jr, Rs: mir.RA},
			}},
		},
	}
}

func TestIndex(t *testing.T) {
	s := Index(sampleProgram())
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	wantSites := []Site{{0, 1}, {0, 2}, {2, 0}}
	for i, want := range wantSites {
		if s.Site(i) != want {
			t.Errorf("Site(%d) = %v, want %v", i, s.Site(i), want)
		}
		if got := s.ID(want.Proc, want.Instr); got != int32(i) {
			t.Errorf("ID(%v) = %d, want %d", want, got, i)
		}
	}
	// Non-branch instructions map to -1.
	if s.ID(0, 0) != -1 || s.ID(0, 3) != -1 {
		t.Error("non-branches must have ID -1")
	}
	row := s.IDRow(2)
	if len(row) != 2 || row[0] != 2 || row[1] != -1 {
		t.Errorf("IDRow(2) = %v", row)
	}
}

func TestProfileCounting(t *testing.T) {
	s := Index(sampleProgram())
	p := New(s)
	for i := 0; i < 7; i++ {
		p.Count(0, true)
	}
	for i := 0; i < 3; i++ {
		p.Count(0, false)
	}
	p.Count(1, false)
	if p.Executed(0) != 10 || p.Executed(1) != 1 || p.Executed(2) != 0 {
		t.Errorf("executed: %d %d %d", p.Executed(0), p.Executed(1), p.Executed(2))
	}
	if p.Total() != 11 {
		t.Errorf("total %d", p.Total())
	}
	if !p.PerfectTaken(0) {
		t.Error("perfect should predict taken for 7/3")
	}
	if p.PerfectTaken(1) {
		t.Error("perfect should predict fall for 0/1")
	}
	if p.PerfectMisses(0) != 3 {
		t.Errorf("perfect misses %d, want 3", p.PerfectMisses(0))
	}
	if p.Misses(0, true) != 3 || p.Misses(0, false) != 7 {
		t.Errorf("misses: taken %d fall %d", p.Misses(0, true), p.Misses(0, false))
	}
	// Ties predict taken.
	p.Count(2, true)
	p.Count(2, false)
	if !p.PerfectTaken(2) {
		t.Error("ties must predict taken")
	}
}

func TestPerfectIsLowerBound(t *testing.T) {
	f := func(taken, fall uint16) bool {
		s := Index(sampleProgram())
		p := New(s)
		p.Taken[0] = int64(taken)
		p.Fall[0] = int64(fall)
		pm := p.PerfectMisses(0)
		return pm <= p.Misses(0, true) && pm <= p.Misses(0, false) &&
			pm == min64(p.Misses(0, true), p.Misses(0, false))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func TestRateFormatting(t *testing.T) {
	r := MakeRate(26, 10, 100)
	if r.String() != "26/10" {
		t.Errorf("got %q", r.String())
	}
	if (Rate{}).String() != "-" {
		t.Errorf("zero rate should print as '-'")
	}
	if got := MakeRate(1, 1, 0); got.Dyn != 0 {
		t.Error("zero-dyn rate must be empty")
	}
	r2 := MakeRate(1, 0, 3)
	if r2.Pred < 33 || r2.Pred > 34 {
		t.Errorf("Pred = %f", r2.Pred)
	}
}
