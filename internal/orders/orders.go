// Package orders implements Section 5's ordering experiments: evaluating
// all 7! = 5040 priority orders of the non-loop heuristics over a set of
// benchmarks (Graph 1), and the C(22,11) = 705,432-trial generalization
// experiment in which the best order for each half of the benchmarks is
// scored on all of them (Table 4, Graphs 2 and 3).
//
// Evaluating an order is made cheap by collapsing each benchmark's
// non-loop branches by heuristic-applicability mask: for a 7-bit mask m
// and heuristic h, the collapsed data records the dynamic misses h incurs
// on all branches whose applicable set is exactly m. An order's miss count
// is then a sum over at most 127 masks instead of all branches.
//
// Both experiments decompose into contiguous shards — order-index ranges
// for the sweep, low-mask ranges for the subset experiment — that merge
// back bit-identically to the single-process result. ShardOrders and
// ShardMasks carve the spaces; SweepRange and SubsetScorer.Range evaluate
// one shard; MergeSubsetResults recombines. The single-process entry
// points are thin parallel drivers over the same shard primitives, so a
// distributed run and a local run share one code path.
package orders

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"ballarus/internal/core"
	"ballarus/internal/profile"
)

// NumOrders is 7! — every total priority order of the seven heuristics.
const NumOrders = 5040

// checkEvery is how many trials the hot loops run between context
// cancellation checks.
const checkEvery = 64

// BenchData is one benchmark's non-loop branch population collapsed by
// heuristic-applicability mask.
type BenchData struct {
	Name string

	Dyn  [128]int64                     // dynamic branches per mask
	Miss [128][core.NumHeuristics]int64 // misses if heuristic h predicts mask-m branches

	DefaultDyn  int64 // dynamic branches covered by no heuristic
	DefaultMiss int64 // misses of the Default (random) prediction on them

	TotalNonLoop int64 // all dynamic non-loop branches
}

// Collapse reduces an analysis + profile to mask-indexed counts.
func Collapse(a *core.Analysis, p *profile.Profile, name string) *BenchData {
	d := &BenchData{Name: name}
	for i := range a.Branches {
		b := &a.Branches[i]
		if b.Class != core.NonLoop {
			continue
		}
		dyn := p.Executed(b.ID)
		if dyn == 0 {
			continue
		}
		d.TotalNonLoop += dyn
		mask := 0
		for h := 0; h < core.NumHeuristics; h++ {
			if b.Heur[h] != core.PredNone {
				mask |= 1 << h
			}
		}
		if mask == 0 {
			d.DefaultDyn += dyn
			d.DefaultMiss += p.Misses(b.ID, b.DefaultPred.Taken())
			continue
		}
		d.Dyn[mask] += dyn
		for h := 0; h < core.NumHeuristics; h++ {
			if b.Heur[h] != core.PredNone {
				d.Miss[mask][h] += p.Misses(b.ID, b.Heur[h].Taken())
			}
		}
	}
	return d
}

// MissRate returns the benchmark's non-loop miss percentage under the
// order (first applicable heuristic wins; Default covers the rest).
func (d *BenchData) MissRate(order core.Order) float64 {
	if d.TotalNonLoop == 0 {
		return 0
	}
	miss := d.DefaultMiss
	for mask := 1; mask < 128; mask++ {
		if d.Dyn[mask] == 0 {
			continue
		}
		for _, h := range order {
			if mask&(1<<h) != 0 {
				miss += d.Miss[mask][h]
				break
			}
		}
	}
	return 100 * float64(miss) / float64(d.TotalNonLoop)
}

var (
	allOnce  sync.Once
	allPerms []core.Order
)

// All enumerates every order, lexicographically over heuristic IDs. The
// sequence is deterministic so order indices are stable and canonical
// across processes — the property the distributed sweep's shard merge
// relies on. The returned slice is a fresh copy each call.
func All() []core.Order {
	allOnce.Do(func() {
		perms := make([]core.Order, 0, NumOrders)
		var h [core.NumHeuristics]core.Heuristic
		for i := range h {
			h[i] = core.Heuristic(i)
		}
		var rec func(k int)
		rec = func(k int) {
			if k == len(h) {
				perms = append(perms, core.Order(h))
				return
			}
			for i := k; i < len(h); i++ {
				h[k], h[i] = h[i], h[k]
				rec(k + 1)
				h[k], h[i] = h[i], h[k]
			}
		}
		rec(0)
		// The recursive swap enumeration is not lexicographic; sort to make
		// the index order canonical.
		sort.Slice(perms, func(a, b int) bool {
			for i := 0; i < core.NumHeuristics; i++ {
				if perms[a][i] != perms[b][i] {
					return perms[a][i] < perms[b][i]
				}
			}
			return false
		})
		allPerms = perms
	})
	out := make([]core.Order, NumOrders)
	copy(out, allPerms)
	return out
}

// ShardOrders returns the canonical orders with indices in [lo, hi) — one
// contiguous shard of the 5040-order sweep. Shards [0,a), [a,b), ...,
// [z,NumOrders) form an exact partition of All().
func ShardOrders(lo, hi int) ([]core.Order, error) {
	if lo < 0 || hi > NumOrders || lo > hi {
		return nil, fmt.Errorf("orders: shard range [%d,%d) outside [0,%d)", lo, hi, NumOrders)
	}
	return All()[lo:hi:hi], nil
}

// ShardMasks returns the masks in [lo, hi) over a bits-wide mask space —
// one contiguous shard of the subset experiment's low-mask enumeration.
// Masks are their own indices, so shards partition [0, 1<<bits) exactly.
func ShardMasks(lo, hi, bits int) ([]int, error) {
	if bits < 0 || bits > 30 {
		return nil, fmt.Errorf("orders: mask width %d outside [0,30]", bits)
	}
	if lo < 0 || hi > 1<<bits || lo > hi {
		return nil, fmt.Errorf("orders: mask range [%d,%d) outside [0,%d)", lo, hi, 1<<bits)
	}
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out, nil
}

// Binomial returns C(n, k), or 0 when k is out of range.
func Binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	v := int64(1)
	for i := 1; i <= k; i++ {
		v = v * int64(n-k+i) / int64(i)
	}
	return v
}

// Sweep holds the per-order, per-benchmark miss-rate matrix.
type Sweep struct {
	Orders  []core.Order
	Benches []*BenchData
	M       [][]float64 // [order][bench], percent
}

// SweepRange evaluates the orders with indices [lo, hi) on every
// benchmark and returns their matrix rows. Rows are deterministic
// functions of (benches, order index) alone, so ranges computed on
// different machines concatenate bit-identically to NewSweep's matrix.
// Cancellation is checked every checkEvery orders.
func SweepRange(ctx context.Context, benches []*BenchData, lo, hi int) ([][]float64, error) {
	ords, err := ShardOrders(lo, hi)
	if err != nil {
		return nil, err
	}
	rows := make([][]float64, len(ords))
	for i, ord := range ords {
		if i%checkEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		row := make([]float64, len(benches))
		for b, bd := range benches {
			row[b] = bd.MissRate(ord)
		}
		rows[i] = row
	}
	return rows, nil
}

// NewSweepCtx evaluates every order on every benchmark, parallel over
// contiguous order ranges via SweepRange.
func NewSweepCtx(ctx context.Context, benches []*BenchData) (*Sweep, error) {
	s := &Sweep{Orders: All(), Benches: benches}
	s.M = make([][]float64, len(s.Orders))
	nw := runtime.GOMAXPROCS(0)
	chunk := (len(s.Orders) + nw - 1) / nw
	var wg sync.WaitGroup
	errs := make([]error, nw)
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(s.Orders))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			rows, err := SweepRange(ctx, benches, lo, hi)
			if err != nil {
				errs[w] = err
				return
			}
			copy(s.M[lo:hi], rows)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// NewSweep evaluates every order on every benchmark.
//
// Deprecated: use NewSweepCtx, which supports cancellation.
func NewSweep(benches []*BenchData) *Sweep {
	s, _ := NewSweepCtx(context.Background(), benches)
	return s
}

// Avg returns each order's average miss rate over the benchmarks whose
// indices are not excluded.
func (s *Sweep) Avg(exclude map[int]bool) []float64 {
	out := make([]float64, len(s.Orders))
	n := 0
	for b := range s.Benches {
		if !exclude[b] {
			n++
		}
	}
	if n == 0 {
		return out
	}
	for o := range s.Orders {
		sum := 0.0
		for b := range s.Benches {
			if !exclude[b] {
				sum += s.M[o][b]
			}
		}
		out[o] = sum / float64(n)
	}
	return out
}

// SortedAvg returns Avg sorted ascending — the Graph 1 series.
func (s *Sweep) SortedAvg(exclude map[int]bool) []float64 {
	avg := s.Avg(exclude)
	sort.Float64s(avg)
	return avg
}

// BestOrder returns the order index minimizing the average miss rate over
// the included benchmarks (ties go to the lower index).
func (s *Sweep) BestOrder(exclude map[int]bool) int {
	avg := s.Avg(exclude)
	best := 0
	for o := 1; o < len(avg); o++ {
		if avg[o] < avg[best] {
			best = o
		}
	}
	return best
}

// SubsetResult aggregates the generalization experiment: for every k-subset
// of the benchmarks, the order minimizing the subset's average miss rate
// is recorded.
type SubsetResult struct {
	Trials    int
	BestCount []int // per order index: trials in which it was chosen best
}

// DistinctOrders returns how many orders were ever chosen.
func (r *SubsetResult) DistinctOrders() int {
	n := 0
	for _, c := range r.BestCount {
		if c > 0 {
			n++
		}
	}
	return n
}

// Ranked returns order indices sorted by descending frequency (ties by
// index), keeping only chosen orders.
func (r *SubsetResult) Ranked() []int {
	var idx []int
	for o, c := range r.BestCount {
		if c > 0 {
			idx = append(idx, o)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		if r.BestCount[idx[a]] != r.BestCount[idx[b]] {
			return r.BestCount[idx[a]] > r.BestCount[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx
}

// MergeSubsetResults sums partial results from disjoint shards. Trials
// and per-order counts are integers, so the merge is exact and
// order-independent: any partition of the trial space recombines to the
// same totals as a single-process run.
func MergeSubsetResults(parts ...*SubsetResult) *SubsetResult {
	out := &SubsetResult{BestCount: make([]int, NumOrders)}
	for _, p := range parts {
		if p == nil {
			continue
		}
		out.Trials += p.Trials
		for o, c := range p.BestCount {
			if c != 0 {
				out.BestCount[o] += c
			}
		}
	}
	return out
}

// SubsetScorer scores k-subset trials by meeting in the middle: per-order
// partial sums over every subset of each benchmark half are precomputed,
// so scoring one subset is a vector add + argmin. A scorer built from the
// same sweep produces identical trial outcomes on any machine, which is
// what lets the subset experiment shard by low-mask range.
type SubsetScorer struct {
	s      *Sweep
	k      int
	loBits int
	hiBits int
	loSum  [][]float64
	hiSum  [][]float64
}

// NewSubsetScorer precomputes the half-mask partial sums for k-subsets of
// the sweep's benchmarks.
func (s *Sweep) NewSubsetScorer(k int) (*SubsetScorer, error) {
	n := len(s.Benches)
	if k < 0 || k > n {
		return nil, fmt.Errorf("orders: subset size %d outside [0,%d]", k, n)
	}
	sc := &SubsetScorer{s: s, k: k, loBits: n / 2}
	sc.hiBits = n - sc.loBits
	sc.loSum = buildHalf(s, 0, sc.loBits)
	sc.hiSum = buildHalf(s, sc.loBits, sc.hiBits)
	return sc, nil
}

// LowMasks returns the size of the low-mask space, 1 << (n/2). Subset
// shards are contiguous ranges of [0, LowMasks()).
func (sc *SubsetScorer) LowMasks() int { return 1 << sc.loBits }

// TotalTrials returns C(n, k) — the exact experiment's trial count.
func (sc *SubsetScorer) TotalTrials() int64 {
	return Binomial(len(sc.s.Benches), sc.k)
}

// scoreLowMask scores every k-subset whose low half is lm, accumulating
// into counts. It returns the number of trials scored.
func (sc *SubsetScorer) scoreLowMask(lm int, counts []int) int {
	need := sc.k - bits.OnesCount(uint(lm))
	if need < 0 || need > sc.hiBits {
		return 0
	}
	lrow := sc.loSum[lm]
	trials := 0
	for _, hm := range masksWithPopcount(sc.hiBits, need) {
		hrow := sc.hiSum[hm]
		best := 0
		bv := lrow[0] + hrow[0]
		for o := 1; o < len(lrow); o++ {
			v := lrow[o] + hrow[o]
			if v < bv {
				bv = v
				best = o
			}
		}
		counts[best]++
		trials++
	}
	return trials
}

// Range scores the trials whose low mask falls in [lo, hi) — one
// contiguous shard of the exact experiment. Shards partitioning
// [0, LowMasks()) merge (MergeSubsetResults) to exactly Subsets' result.
// Cancellation is checked per low mask.
func (sc *SubsetScorer) Range(ctx context.Context, lo, hi int) (*SubsetResult, error) {
	if _, err := ShardMasks(lo, hi, sc.loBits); err != nil {
		return nil, err
	}
	res := &SubsetResult{BestCount: make([]int, len(sc.s.Orders))}
	for lm := lo; lm < hi; lm++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Trials += sc.scoreLowMask(lm, res.BestCount)
	}
	return res, nil
}

// SubsetOpts tunes the exact and sampled experiment drivers.
type SubsetOpts struct {
	// Progress, when set, is called with the cumulative and total trial
	// counts as the experiment advances. It may be called concurrently
	// and must be cheap.
	Progress func(done, total int64)
}

// SubsetsOpts runs the experiment exactly over every k-subset of the
// sweep's benchmarks, parallel over low masks via the shared scorer.
func (s *Sweep) SubsetsOpts(ctx context.Context, k int, opts SubsetOpts) (*SubsetResult, error) {
	sc, err := s.NewSubsetScorer(k)
	if err != nil {
		return nil, err
	}
	total := sc.TotalTrials()
	nw := runtime.GOMAXPROCS(0)
	counts := make([][]int, nw)
	trials := make([]int, nw)
	errs := make([]error, nw)
	var done atomic.Int64
	var wg sync.WaitGroup
	work := make(chan int, 64)
	for w := 0; w < nw; w++ {
		counts[w] = make([]int, len(s.Orders))
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for lm := range work {
				if err := ctx.Err(); err != nil {
					errs[w] = err
					continue // drain the channel
				}
				t := sc.scoreLowMask(lm, counts[w])
				trials[w] += t
				if t > 0 && opts.Progress != nil {
					opts.Progress(done.Add(int64(t)), total)
				}
			}
		}(w)
	}
	for lm := 0; lm < sc.LowMasks(); lm++ {
		work <- lm
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	parts := make([]*SubsetResult, nw)
	for w := 0; w < nw; w++ {
		parts[w] = &SubsetResult{Trials: trials[w], BestCount: counts[w]}
	}
	return MergeSubsetResults(parts...), nil
}

// SubsetsCtx runs the exact experiment with default options.
func (s *Sweep) SubsetsCtx(ctx context.Context, k int) (*SubsetResult, error) {
	return s.SubsetsOpts(ctx, k, SubsetOpts{})
}

// Subsets runs the experiment exactly over every k-subset of the sweep's
// benchmarks.
//
// Deprecated: use SubsetsCtx, which supports cancellation and progress.
func (s *Sweep) Subsets(k int) *SubsetResult {
	res, _ := s.SubsetsCtx(context.Background(), k)
	return res
}

// buildHalf precomputes, for every subset mask of benches
// [base, base+width), the per-order sum of miss rates.
func buildHalf(s *Sweep, base, width int) [][]float64 {
	out := make([][]float64, 1<<width)
	out[0] = make([]float64, len(s.Orders))
	for m := 1; m < 1<<width; m++ {
		low := m & (-m)
		rest := m ^ low
		b := base + bits.TrailingZeros(uint(low))
		row := make([]float64, len(s.Orders))
		prev := out[rest]
		for o := range row {
			row[o] = prev[o] + s.M[o][b]
		}
		out[m] = row
	}
	return out
}

// SubsetsSampledOpts runs the experiment over `trials` random k-subsets —
// the quick mode used in tests and short benchmark runs. The trial stream
// is a deterministic function of (sweep, k, trials, seed): the single rng
// stream is inherently serial, so the sampled mode does not shard.
// Cancellation is checked every checkEvery trials.
func (s *Sweep) SubsetsSampledOpts(ctx context.Context, k, trials int, seed int64, opts SubsetOpts) (*SubsetResult, error) {
	n := len(s.Benches)
	rng := rand.New(rand.NewSource(seed))
	res := &SubsetResult{BestCount: make([]int, len(s.Orders))}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for t := 0; t < trials; t++ {
		if t%checkEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		chosen := idx[:k]
		best, bv := 0, math.Inf(1)
		for o := range s.Orders {
			row := s.M[o]
			sum := 0.0
			for _, b := range chosen {
				sum += row[b]
			}
			if sum < bv {
				bv = sum
				best = o
			}
		}
		res.BestCount[best]++
		res.Trials++
		if opts.Progress != nil {
			opts.Progress(int64(res.Trials), int64(trials))
		}
	}
	return res, nil
}

// SubsetsSampledCtx runs the sampled experiment with default options.
func (s *Sweep) SubsetsSampledCtx(ctx context.Context, k, trials int, seed int64) (*SubsetResult, error) {
	return s.SubsetsSampledOpts(ctx, k, trials, seed, SubsetOpts{})
}

// SubsetsSampled runs the experiment over `trials` random k-subsets.
//
// Deprecated: use SubsetsSampledCtx, which supports cancellation.
func (s *Sweep) SubsetsSampled(k, trials int, seed int64) *SubsetResult {
	res, _ := s.SubsetsSampledCtx(context.Background(), k, trials, seed)
	return res
}

// masksWithPopcount enumerates all masks over `width` bits with exactly
// `count` set bits, in Gosper order. Results are cached per (width,count).
var maskCache sync.Map

func masksWithPopcount(width, count int) []int {
	key := width<<8 | count
	if v, ok := maskCache.Load(key); ok {
		return v.([]int)
	}
	var out []int
	if count == 0 {
		out = []int{0}
	} else if count <= width {
		m := (1 << count) - 1
		limit := 1 << width
		for m < limit {
			out = append(out, m)
			// Gosper's hack: next mask with the same popcount.
			c := m & (-m)
			r := m + c
			m = (((r ^ m) >> 2) / c) | r
		}
	}
	maskCache.Store(key, out)
	return out
}
