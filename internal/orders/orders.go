// Package orders implements Section 5's ordering experiments: evaluating
// all 7! = 5040 priority orders of the non-loop heuristics over a set of
// benchmarks (Graph 1), and the C(22,11) = 705,432-trial generalization
// experiment in which the best order for each half of the benchmarks is
// scored on all of them (Table 4, Graphs 2 and 3).
//
// Evaluating an order is made cheap by collapsing each benchmark's
// non-loop branches by heuristic-applicability mask: for a 7-bit mask m
// and heuristic h, the collapsed data records the dynamic misses h incurs
// on all branches whose applicable set is exactly m. An order's miss count
// is then a sum over at most 127 masks instead of all branches.
package orders

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"ballarus/internal/core"
	"ballarus/internal/profile"
)

// NumOrders is 7! — every total priority order of the seven heuristics.
const NumOrders = 5040

// BenchData is one benchmark's non-loop branch population collapsed by
// heuristic-applicability mask.
type BenchData struct {
	Name string

	Dyn  [128]int64                     // dynamic branches per mask
	Miss [128][core.NumHeuristics]int64 // misses if heuristic h predicts mask-m branches

	DefaultDyn  int64 // dynamic branches covered by no heuristic
	DefaultMiss int64 // misses of the Default (random) prediction on them

	TotalNonLoop int64 // all dynamic non-loop branches
}

// Collapse reduces an analysis + profile to mask-indexed counts.
func Collapse(a *core.Analysis, p *profile.Profile, name string) *BenchData {
	d := &BenchData{Name: name}
	for i := range a.Branches {
		b := &a.Branches[i]
		if b.Class != core.NonLoop {
			continue
		}
		dyn := p.Executed(b.ID)
		if dyn == 0 {
			continue
		}
		d.TotalNonLoop += dyn
		mask := 0
		for h := 0; h < core.NumHeuristics; h++ {
			if b.Heur[h] != core.PredNone {
				mask |= 1 << h
			}
		}
		if mask == 0 {
			d.DefaultDyn += dyn
			d.DefaultMiss += p.Misses(b.ID, b.DefaultPred.Taken())
			continue
		}
		d.Dyn[mask] += dyn
		for h := 0; h < core.NumHeuristics; h++ {
			if b.Heur[h] != core.PredNone {
				d.Miss[mask][h] += p.Misses(b.ID, b.Heur[h].Taken())
			}
		}
	}
	return d
}

// MissRate returns the benchmark's non-loop miss percentage under the
// order (first applicable heuristic wins; Default covers the rest).
func (d *BenchData) MissRate(order core.Order) float64 {
	if d.TotalNonLoop == 0 {
		return 0
	}
	miss := d.DefaultMiss
	for mask := 1; mask < 128; mask++ {
		if d.Dyn[mask] == 0 {
			continue
		}
		for _, h := range order {
			if mask&(1<<h) != 0 {
				miss += d.Miss[mask][h]
				break
			}
		}
	}
	return 100 * float64(miss) / float64(d.TotalNonLoop)
}

// All enumerates every order, lexicographically over heuristic IDs. The
// sequence is deterministic so order indices are stable.
func All() []core.Order {
	perms := make([]core.Order, 0, NumOrders)
	var h [core.NumHeuristics]core.Heuristic
	for i := range h {
		h[i] = core.Heuristic(i)
	}
	var rec func(k int)
	rec = func(k int) {
		if k == len(h) {
			perms = append(perms, core.Order(h))
			return
		}
		for i := k; i < len(h); i++ {
			h[k], h[i] = h[i], h[k]
			rec(k + 1)
			h[k], h[i] = h[i], h[k]
		}
	}
	rec(0)
	// The recursive swap enumeration is not lexicographic; sort to make
	// the index order canonical.
	sort.Slice(perms, func(a, b int) bool {
		for i := 0; i < core.NumHeuristics; i++ {
			if perms[a][i] != perms[b][i] {
				return perms[a][i] < perms[b][i]
			}
		}
		return false
	})
	return perms
}

// Sweep holds the per-order, per-benchmark miss-rate matrix.
type Sweep struct {
	Orders  []core.Order
	Benches []*BenchData
	M       [][]float64 // [order][bench], percent
}

// NewSweep evaluates every order on every benchmark.
func NewSweep(benches []*BenchData) *Sweep {
	s := &Sweep{Orders: All(), Benches: benches}
	s.M = make([][]float64, len(s.Orders))
	nw := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	chunk := (len(s.Orders) + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(s.Orders))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for o := lo; o < hi; o++ {
				row := make([]float64, len(benches))
				for b, bd := range benches {
					row[b] = bd.MissRate(s.Orders[o])
				}
				s.M[o] = row
			}
		}(lo, hi)
	}
	wg.Wait()
	return s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Avg returns each order's average miss rate over the benchmarks whose
// indices are not excluded.
func (s *Sweep) Avg(exclude map[int]bool) []float64 {
	out := make([]float64, len(s.Orders))
	n := 0
	for b := range s.Benches {
		if !exclude[b] {
			n++
		}
	}
	if n == 0 {
		return out
	}
	for o := range s.Orders {
		sum := 0.0
		for b := range s.Benches {
			if !exclude[b] {
				sum += s.M[o][b]
			}
		}
		out[o] = sum / float64(n)
	}
	return out
}

// SortedAvg returns Avg sorted ascending — the Graph 1 series.
func (s *Sweep) SortedAvg(exclude map[int]bool) []float64 {
	avg := s.Avg(exclude)
	sort.Float64s(avg)
	return avg
}

// BestOrder returns the order index minimizing the average miss rate over
// the included benchmarks (ties go to the lower index).
func (s *Sweep) BestOrder(exclude map[int]bool) int {
	avg := s.Avg(exclude)
	best := 0
	for o := 1; o < len(avg); o++ {
		if avg[o] < avg[best] {
			best = o
		}
	}
	return best
}

// SubsetResult aggregates the generalization experiment: for every k-subset
// of the benchmarks, the order minimizing the subset's average miss rate
// is recorded.
type SubsetResult struct {
	Trials    int
	BestCount []int // per order index: trials in which it was chosen best
}

// DistinctOrders returns how many orders were ever chosen.
func (r *SubsetResult) DistinctOrders() int {
	n := 0
	for _, c := range r.BestCount {
		if c > 0 {
			n++
		}
	}
	return n
}

// Ranked returns order indices sorted by descending frequency (ties by
// index), keeping only chosen orders.
func (r *SubsetResult) Ranked() []int {
	var idx []int
	for o, c := range r.BestCount {
		if c > 0 {
			idx = append(idx, o)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		if r.BestCount[idx[a]] != r.BestCount[idx[b]] {
			return r.BestCount[idx[a]] > r.BestCount[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx
}

// Subsets runs the experiment exactly over every k-subset of the sweep's
// benchmarks. The per-order subset sums are computed by meeting in the
// middle: half-mask partial sums are precomputed so scoring one subset is
// a single vector add + argmin.
func (s *Sweep) Subsets(k int) *SubsetResult {
	n := len(s.Benches)
	res := &SubsetResult{BestCount: make([]int, len(s.Orders))}
	loBits := n / 2
	hiBits := n - loBits
	// Partial sums: lo[m][o] for the low half, hi[m][o] for the high half.
	loSum := buildHalf(s, 0, loBits)
	hiSum := buildHalf(s, loBits, hiBits)

	// Enumerate k-subsets as (low mask, high mask) pairs, parallel over
	// the low popcount split.
	nw := runtime.GOMAXPROCS(0)
	counts := make([][]int, nw)
	for i := range counts {
		counts[i] = make([]int, len(s.Orders))
	}
	trials := make([]int, nw)
	var wg sync.WaitGroup
	work := make(chan [2]int, 64) // (low mask, worker hint unused)
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sums := make([]float64, len(s.Orders))
			for job := range work {
				lm := job[0]
				need := k - popcount(lm)
				if need < 0 || need > hiBits {
					continue
				}
				lrow := loSum[lm]
				for _, hm := range masksWithPopcount(hiBits, need) {
					hrow := hiSum[hm]
					best := 0
					bv := lrow[0] + hrow[0]
					for o := 1; o < len(sums); o++ {
						v := lrow[o] + hrow[o]
						if v < bv {
							bv = v
							best = o
						}
					}
					counts[w][best]++
					trials[w]++
				}
			}
		}(w)
	}
	for lm := 0; lm < 1<<loBits; lm++ {
		work <- [2]int{lm, 0}
	}
	close(work)
	wg.Wait()
	for w := 0; w < nw; w++ {
		res.Trials += trials[w]
		for o := range res.BestCount {
			res.BestCount[o] += counts[w][o]
		}
	}
	return res
}

// buildHalf precomputes, for every subset mask of benches
// [base, base+bits), the per-order sum of miss rates.
func buildHalf(s *Sweep, base, bits int) [][]float64 {
	out := make([][]float64, 1<<bits)
	out[0] = make([]float64, len(s.Orders))
	for m := 1; m < 1<<bits; m++ {
		low := m & (-m)
		rest := m ^ low
		b := base + trailingZeros(low)
		row := make([]float64, len(s.Orders))
		prev := out[rest]
		for o := range row {
			row[o] = prev[o] + s.M[o][b]
		}
		out[m] = row
	}
	return out
}

// SubsetsSampled runs the experiment over `trials` random k-subsets — the
// quick mode used in tests and short benchmark runs.
func (s *Sweep) SubsetsSampled(k, trials int, seed int64) *SubsetResult {
	n := len(s.Benches)
	rng := rand.New(rand.NewSource(seed))
	res := &SubsetResult{BestCount: make([]int, len(s.Orders))}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for t := 0; t < trials; t++ {
		rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		chosen := idx[:k]
		best, bv := 0, math.Inf(1)
		for o := range s.Orders {
			row := s.M[o]
			sum := 0.0
			for _, b := range chosen {
				sum += row[b]
			}
			if sum < bv {
				bv = sum
				best = o
			}
		}
		res.BestCount[best]++
		res.Trials++
	}
	return res
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func trailingZeros(x int) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// masksWithPopcount enumerates all masks over `bits` bits with exactly
// `count` set bits, in Gosper order. Results are cached per (bits,count).
var maskCache sync.Map

func masksWithPopcount(bits, count int) []int {
	key := bits<<8 | count
	if v, ok := maskCache.Load(key); ok {
		return v.([]int)
	}
	var out []int
	if count == 0 {
		out = []int{0}
	} else if count <= bits {
		m := (1 << count) - 1
		limit := 1 << bits
		for m < limit {
			out = append(out, m)
			// Gosper's hack: next mask with the same popcount.
			c := m & (-m)
			r := m + c
			m = (((r ^ m) >> 2) / c) | r
		}
	}
	maskCache.Store(key, out)
	return out
}
