package orders

import (
	"context"
	"math"
	"math/bits"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"ballarus/internal/core"
	"ballarus/internal/minic"
	"ballarus/internal/profile"

	"ballarus/internal/interp"
)

func TestAllOrders(t *testing.T) {
	all := All()
	if len(all) != NumOrders {
		t.Fatalf("got %d orders, want %d", len(all), NumOrders)
	}
	seen := map[core.Order]bool{}
	for _, o := range all {
		if !o.Valid() {
			t.Fatalf("invalid order %v", o)
		}
		if seen[o] {
			t.Fatalf("duplicate order %v", o)
		}
		seen[o] = true
	}
	// Lexicographic: the first order is the identity permutation.
	if all[0] != core.SectionOrder {
		t.Errorf("first order %v, want definition order", all[0])
	}
	// And the enumeration is sorted.
	for i := 1; i < len(all); i++ {
		if !orderLess(all[i-1], all[i]) {
			t.Fatalf("orders not sorted at %d", i)
		}
	}
}

func orderLess(a, b core.Order) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// realBench compiles and runs a small program, returning its analysis and
// profile for collapse testing.
func realBench(t *testing.T) (*core.Analysis, *profile.Profile) {
	t.Helper()
	src := `
struct node { int v; struct node *next; };
int g;
int work(struct node *p, int x) {
	int s = 0;
	while (p != 0) {
		if (p->v < 0) { s--; } else { s += p->v; }
		if (x > 0) { g = s; }
		p = p->next;
	}
	if (s == 0) { return -1; }
	return s;
}
int main() {
	struct node *l = 0;
	int i;
	for (i = 0; i < 50; i++) {
		struct node *n = (struct node*)alloc(sizeof(struct node));
		n->v = i - 5;
		n->next = l;
		l = n;
	}
	printi(work(l, 1) + work(l, 0));
	return 0;
}`
	prog, err := minic.Compile(src, minic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(prog, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return a, res.Profile
}

// bruteMissRate computes the non-loop miss rate for an order directly per
// branch, the oracle Collapse must agree with.
func bruteMissRate(a *core.Analysis, p *profile.Profile, order core.Order) float64 {
	var miss, dyn int64
	for i := range a.Branches {
		b := &a.Branches[i]
		if b.Class != core.NonLoop {
			continue
		}
		d := p.Executed(b.ID)
		if d == 0 {
			continue
		}
		dyn += d
		pred, _, _ := b.PredictWith(order)
		miss += p.Misses(b.ID, pred.Taken())
	}
	if dyn == 0 {
		return 0
	}
	return 100 * float64(miss) / float64(dyn)
}

func TestCollapseMatchesBruteForce(t *testing.T) {
	a, p := realBench(t)
	bd := Collapse(a, p, "test")
	for _, o := range []core.Order{core.DefaultOrder, core.SectionOrder} {
		got := bd.MissRate(o)
		want := bruteMissRate(a, p, o)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("order %v: collapse %f, brute %f", o, got, want)
		}
	}
	// And over a random sample of orders.
	all := All()
	f := func(idx uint16) bool {
		o := all[int(idx)%len(all)]
		return math.Abs(bd.MissRate(o)-bruteMissRate(a, p, o)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// syntheticBench builds a BenchData where heuristic h alone covers one
// branch with a chosen miss count, for controlled sweep tests.
func syntheticBench(name string, perHeurMiss [core.NumHeuristics]int64) *BenchData {
	d := &BenchData{Name: name}
	for h := 0; h < core.NumHeuristics; h++ {
		mask := 1 << h
		d.Dyn[mask] = 100
		d.Miss[mask][h] = perHeurMiss[h]
		d.TotalNonLoop += 100
	}
	return d
}

func TestSweepAndBestOrder(t *testing.T) {
	// Benchmark where every heuristic has its own branch population; the
	// miss rate is the same under every order (no overlap), so the sweep
	// must be flat.
	flat := syntheticBench("flat", [core.NumHeuristics]int64{10, 10, 10, 10, 10, 10, 10})
	s := NewSweep([]*BenchData{flat})
	avg := s.Avg(nil)
	for _, v := range avg {
		if math.Abs(v-10) > 1e-9 {
			t.Fatalf("flat sweep should be 10%% everywhere, got %f", v)
		}
	}
	// Overlapping population: mask with two heuristics where one is right
	// and the other wrong; orders placing the right one earlier win.
	d := &BenchData{Name: "overlap", TotalNonLoop: 100}
	mask := (1 << core.Opcode) | (1 << core.Guard)
	d.Dyn[mask] = 100
	d.Miss[mask][core.Opcode] = 0
	d.Miss[mask][core.Guard] = 100
	s2 := NewSweep([]*BenchData{d})
	best := s2.BestOrder(nil)
	o := s2.Orders[best]
	for _, h := range o {
		if h == core.Opcode {
			break
		}
		if h == core.Guard {
			t.Fatalf("best order %v places Guard before Opcode", o)
		}
	}
	sorted := s2.SortedAvg(nil)
	if sorted[0] != 0 || sorted[len(sorted)-1] != 100 {
		t.Errorf("sorted extremes %f..%f, want 0..100", sorted[0], sorted[len(sorted)-1])
	}
}

func TestSubsetsExactSmall(t *testing.T) {
	// 4 synthetic benchmarks, subsets of size 2: C(4,2)=6 trials; verify
	// against direct enumeration.
	var benches []*BenchData
	misses := [][core.NumHeuristics]int64{
		{0, 50, 50, 50, 50, 50, 50},
		{50, 0, 50, 50, 50, 50, 50},
		{0, 50, 50, 50, 50, 50, 50},
		{50, 50, 50, 50, 50, 50, 0},
	}
	for i, m := range misses {
		benches = append(benches, syntheticBench(string(rune('a'+i)), m))
	}
	s := NewSweep(benches)
	res := s.Subsets(2)
	if res.Trials != 6 {
		t.Fatalf("trials %d, want 6", res.Trials)
	}
	// Oracle: enumerate subsets and argmin directly.
	want := make([]int, len(s.Orders))
	n := len(benches)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			best, bv := 0, math.Inf(1)
			for o := range s.Orders {
				v := s.M[o][i] + s.M[o][j]
				if v < bv {
					bv = v
					best = o
				}
			}
			want[best]++
		}
	}
	for o := range want {
		if want[o] != res.BestCount[o] {
			t.Fatalf("order %d: count %d, want %d", o, res.BestCount[o], want[o])
		}
	}
}

func TestSubsetsSampledDeterministic(t *testing.T) {
	benches := []*BenchData{
		syntheticBench("a", [core.NumHeuristics]int64{0, 10, 20, 30, 40, 50, 60}),
		syntheticBench("b", [core.NumHeuristics]int64{60, 50, 40, 30, 20, 10, 0}),
		syntheticBench("c", [core.NumHeuristics]int64{5, 5, 5, 5, 5, 5, 5}),
	}
	s := NewSweep(benches)
	r1 := s.SubsetsSampled(2, 100, 42)
	r2 := s.SubsetsSampled(2, 100, 42)
	if r1.Trials != 100 || r2.Trials != 100 {
		t.Fatal("wrong trial count")
	}
	for o := range r1.BestCount {
		if r1.BestCount[o] != r2.BestCount[o] {
			t.Fatal("sampled experiment not deterministic for a fixed seed")
		}
	}
}

func TestRankedAndDistinct(t *testing.T) {
	r := &SubsetResult{Trials: 10, BestCount: make([]int, 10)}
	r.BestCount[3] = 5
	r.BestCount[7] = 4
	r.BestCount[1] = 1
	if r.DistinctOrders() != 3 {
		t.Errorf("distinct %d", r.DistinctOrders())
	}
	ranked := r.Ranked()
	if len(ranked) != 3 || ranked[0] != 3 || ranked[1] != 7 || ranked[2] != 1 {
		t.Errorf("ranked %v", ranked)
	}
}

func TestMasksWithPopcount(t *testing.T) {
	binom := func(n, k int) int {
		if k < 0 || k > n {
			return 0
		}
		r := 1
		for i := 0; i < k; i++ {
			r = r * (n - i) / (i + 1)
		}
		return r
	}
	for n := 0; n <= 12; n++ {
		for k := 0; k <= n; k++ {
			masks := masksWithPopcount(n, k)
			if len(masks) != binom(n, k) {
				t.Errorf("C(%d,%d): got %d masks, want %d", n, k, len(masks), binom(n, k))
			}
			for _, m := range masks {
				if bits.OnesCount(uint(m)) != k {
					t.Errorf("mask %b has popcount %d, want %d", m, bits.OnesCount(uint(m)), k)
				}
			}
		}
	}
}

// shardTestBenches returns a small deterministic benchmark set exercising
// distinct per-order behavior.
func shardTestBenches(n int) []*BenchData {
	benches := make([]*BenchData, n)
	for i := range benches {
		var m [core.NumHeuristics]int64
		for h := range m {
			m[h] = int64((i*13 + h*29 + 7) % 83)
		}
		benches[i] = syntheticBench(string(rune('a'+i)), m)
	}
	// An overlapping mask so orderings actually matter.
	for i, d := range benches {
		mask := (1 << core.Opcode) | (1 << core.Guard)
		d.Dyn[mask] = 100
		d.Miss[mask][core.Opcode] = int64(i * 10 % 70)
		d.Miss[mask][core.Guard] = int64((i*10 + 35) % 70)
		d.TotalNonLoop += 100
	}
	return benches
}

func TestShardOrdersExactPartition(t *testing.T) {
	all := All()
	cuts := []int{0, 1, 17, 512, 513, 2048, 5039, NumOrders}
	var joined []core.Order
	for i := 1; i < len(cuts); i++ {
		part, err := ShardOrders(cuts[i-1], cuts[i])
		if err != nil {
			t.Fatalf("ShardOrders(%d,%d): %v", cuts[i-1], cuts[i], err)
		}
		if len(part) != cuts[i]-cuts[i-1] {
			t.Fatalf("shard [%d,%d) has %d orders", cuts[i-1], cuts[i], len(part))
		}
		joined = append(joined, part...)
	}
	if !reflect.DeepEqual(joined, all) {
		t.Fatal("concatenated shards differ from All()")
	}
	for _, bad := range [][2]int{{-1, 3}, {3, 2}, {0, NumOrders + 1}} {
		if _, err := ShardOrders(bad[0], bad[1]); err == nil {
			t.Errorf("ShardOrders(%d,%d) accepted invalid range", bad[0], bad[1])
		}
	}
	// Empty shards are allowed (a planner edge, not an error).
	if part, err := ShardOrders(10, 10); err != nil || len(part) != 0 {
		t.Errorf("empty shard: %v, %v", part, err)
	}
}

func TestShardMasksExactPartition(t *testing.T) {
	const width = 6
	cuts := []int{0, 1, 7, 32, 33, 64}
	seen := make([]bool, 1<<width)
	for i := 1; i < len(cuts); i++ {
		part, err := ShardMasks(cuts[i-1], cuts[i], width)
		if err != nil {
			t.Fatalf("ShardMasks(%d,%d,%d): %v", cuts[i-1], cuts[i], width, err)
		}
		for _, m := range part {
			if seen[m] {
				t.Fatalf("mask %d appears in two shards", m)
			}
			seen[m] = true
		}
	}
	for m, ok := range seen {
		if !ok {
			t.Fatalf("mask %d missing from partition", m)
		}
	}
	for _, bad := range [][3]int{{-1, 3, 6}, {3, 2, 6}, {0, 65, 6}, {0, 1, -1}, {0, 1, 31}} {
		if _, err := ShardMasks(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("ShardMasks(%d,%d,%d) accepted invalid input", bad[0], bad[1], bad[2])
		}
	}
}

func TestBinomial(t *testing.T) {
	cases := map[[2]int]int64{
		{0, 0}: 1, {5, 0}: 1, {5, 5}: 1, {5, 2}: 10,
		{22, 11}: 705432, {7, 3}: 35, {4, 5}: 0, {4, -1}: 0,
	}
	for in, want := range cases {
		if got := Binomial(in[0], in[1]); got != want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", in[0], in[1], got, want)
		}
	}
}

// TestSweepRangeMergeBitIdentical pins the job engine's sweep shard-merge
// invariant: rows computed range-by-range are bit-identical to NewSweep's
// matrix, for any partition of [0, NumOrders).
func TestSweepRangeMergeBitIdentical(t *testing.T) {
	benches := shardTestBenches(5)
	want := NewSweep(benches)
	cuts := []int{0, 100, 101, 1234, 4000, NumOrders}
	got := make([][]float64, 0, NumOrders)
	for i := 1; i < len(cuts); i++ {
		rows, err := SweepRange(context.Background(), benches, cuts[i-1], cuts[i])
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rows...)
	}
	if len(got) != len(want.M) {
		t.Fatalf("merged %d rows, want %d", len(got), len(want.M))
	}
	for o := range got {
		for b := range got[o] {
			if got[o][b] != want.M[o][b] { // exact, not approximate
				t.Fatalf("cell [%d][%d]: merged %v, single-process %v", o, b, got[o][b], want.M[o][b])
			}
		}
	}
}

// TestSubsetsRangeMergeExact pins the subset shard-merge invariant:
// scorer ranges over any partition of the low-mask space merge to exactly
// the single-process exact result.
func TestSubsetsRangeMergeExact(t *testing.T) {
	benches := shardTestBenches(8)
	s := NewSweep(benches)
	const k = 4
	want, err := s.SubsetsCtx(context.Background(), k)
	if err != nil {
		t.Fatal(err)
	}
	if want.Trials != int(Binomial(8, k)) {
		t.Fatalf("exact trials %d, want %d", want.Trials, Binomial(8, k))
	}
	sc, err := s.NewSubsetScorer(k)
	if err != nil {
		t.Fatal(err)
	}
	cuts := []int{0, 3, 4, 9, sc.LowMasks()}
	var parts []*SubsetResult
	for i := 1; i < len(cuts); i++ {
		p, err := sc.Range(context.Background(), cuts[i-1], cuts[i])
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	got := MergeSubsetResults(parts...)
	if got.Trials != want.Trials {
		t.Fatalf("merged trials %d, want %d", got.Trials, want.Trials)
	}
	for o := range want.BestCount {
		if got.BestCount[o] != want.BestCount[o] {
			t.Fatalf("order %d: merged count %d, want %d", o, got.BestCount[o], want.BestCount[o])
		}
	}
}

// TestSubsetsSampledAgreesWithExact checks the sampled mode against the
// exact experiment on a small k: every order the sample ranks must also
// be chosen by some exact trial (sampled subsets are drawn from the same
// space), and with this fixed seed the top-ranked orders agree.
func TestSubsetsSampledAgreesWithExact(t *testing.T) {
	benches := shardTestBenches(8)
	s := NewSweep(benches)
	const k = 4
	exact, err := s.SubsetsCtx(context.Background(), k)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := s.SubsetsSampledCtx(context.Background(), k, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	exactChosen := map[int]bool{}
	for _, o := range exact.Ranked() {
		exactChosen[o] = true
	}
	for _, o := range sampled.Ranked() {
		if !exactChosen[o] {
			t.Errorf("sampled chose order %d that no exact trial chooses", o)
		}
	}
	if sampled.Ranked()[0] != exact.Ranked()[0] {
		t.Errorf("top order: sampled %d, exact %d", sampled.Ranked()[0], exact.Ranked()[0])
	}
}

func TestSubsetsSampledCrossSeedDeterminism(t *testing.T) {
	benches := shardTestBenches(6)
	s := NewSweep(benches)
	for _, seed := range []int64{1, 42, 1993} {
		a, err := s.SubsetsSampledCtx(context.Background(), 3, 200, seed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.SubsetsSampledCtx(context.Background(), 3, 200, seed)
		if err != nil {
			t.Fatal(err)
		}
		if a.Trials != 200 || !reflect.DeepEqual(a.BestCount, b.BestCount) {
			t.Fatalf("seed %d: sampled run not reproducible", seed)
		}
	}
}

func TestContextCancellation(t *testing.T) {
	benches := shardTestBenches(6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SweepRange(ctx, benches, 0, NumOrders); err == nil {
		t.Error("SweepRange ignored cancelled context")
	}
	if _, err := NewSweepCtx(ctx, benches); err == nil {
		t.Error("NewSweepCtx ignored cancelled context")
	}
	s := NewSweep(benches)
	if _, err := s.SubsetsCtx(ctx, 3); err == nil {
		t.Error("SubsetsCtx ignored cancelled context")
	}
	if _, err := s.SubsetsSampledCtx(ctx, 3, 1000, 1); err == nil {
		t.Error("SubsetsSampledCtx ignored cancelled context")
	}
	sc, err := s.NewSubsetScorer(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Range(ctx, 0, sc.LowMasks()); err == nil {
		t.Error("SubsetScorer.Range ignored cancelled context")
	}
}

func TestSubsetsProgress(t *testing.T) {
	benches := shardTestBenches(6)
	s := NewSweep(benches)
	var mu sync.Mutex
	var last, total int64
	res, err := s.SubsetsOpts(context.Background(), 3, SubsetOpts{
		Progress: func(done, tot int64) {
			mu.Lock()
			if done > last {
				last = done
			}
			total = tot
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := Binomial(6, 3); last != want || total != want || int64(res.Trials) != want {
		t.Errorf("progress saw %d/%d, trials %d, want %d", last, total, res.Trials, want)
	}
}
