package orders

import (
	"math"
	"testing"
	"testing/quick"

	"ballarus/internal/core"
	"ballarus/internal/minic"
	"ballarus/internal/profile"

	"ballarus/internal/interp"
)

func TestAllOrders(t *testing.T) {
	all := All()
	if len(all) != NumOrders {
		t.Fatalf("got %d orders, want %d", len(all), NumOrders)
	}
	seen := map[core.Order]bool{}
	for _, o := range all {
		if !o.Valid() {
			t.Fatalf("invalid order %v", o)
		}
		if seen[o] {
			t.Fatalf("duplicate order %v", o)
		}
		seen[o] = true
	}
	// Lexicographic: the first order is the identity permutation.
	if all[0] != core.SectionOrder {
		t.Errorf("first order %v, want definition order", all[0])
	}
	// And the enumeration is sorted.
	for i := 1; i < len(all); i++ {
		if !orderLess(all[i-1], all[i]) {
			t.Fatalf("orders not sorted at %d", i)
		}
	}
}

func orderLess(a, b core.Order) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// realBench compiles and runs a small program, returning its analysis and
// profile for collapse testing.
func realBench(t *testing.T) (*core.Analysis, *profile.Profile) {
	t.Helper()
	src := `
struct node { int v; struct node *next; };
int g;
int work(struct node *p, int x) {
	int s = 0;
	while (p != 0) {
		if (p->v < 0) { s--; } else { s += p->v; }
		if (x > 0) { g = s; }
		p = p->next;
	}
	if (s == 0) { return -1; }
	return s;
}
int main() {
	struct node *l = 0;
	int i;
	for (i = 0; i < 50; i++) {
		struct node *n = (struct node*)alloc(sizeof(struct node));
		n->v = i - 5;
		n->next = l;
		l = n;
	}
	printi(work(l, 1) + work(l, 0));
	return 0;
}`
	prog, err := minic.Compile(src, minic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(prog, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return a, res.Profile
}

// bruteMissRate computes the non-loop miss rate for an order directly per
// branch, the oracle Collapse must agree with.
func bruteMissRate(a *core.Analysis, p *profile.Profile, order core.Order) float64 {
	var miss, dyn int64
	for i := range a.Branches {
		b := &a.Branches[i]
		if b.Class != core.NonLoop {
			continue
		}
		d := p.Executed(b.ID)
		if d == 0 {
			continue
		}
		dyn += d
		pred, _, _ := b.PredictWith(order)
		miss += p.Misses(b.ID, pred.Taken())
	}
	if dyn == 0 {
		return 0
	}
	return 100 * float64(miss) / float64(dyn)
}

func TestCollapseMatchesBruteForce(t *testing.T) {
	a, p := realBench(t)
	bd := Collapse(a, p, "test")
	for _, o := range []core.Order{core.DefaultOrder, core.SectionOrder} {
		got := bd.MissRate(o)
		want := bruteMissRate(a, p, o)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("order %v: collapse %f, brute %f", o, got, want)
		}
	}
	// And over a random sample of orders.
	all := All()
	f := func(idx uint16) bool {
		o := all[int(idx)%len(all)]
		return math.Abs(bd.MissRate(o)-bruteMissRate(a, p, o)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// syntheticBench builds a BenchData where heuristic h alone covers one
// branch with a chosen miss count, for controlled sweep tests.
func syntheticBench(name string, perHeurMiss [core.NumHeuristics]int64) *BenchData {
	d := &BenchData{Name: name}
	for h := 0; h < core.NumHeuristics; h++ {
		mask := 1 << h
		d.Dyn[mask] = 100
		d.Miss[mask][h] = perHeurMiss[h]
		d.TotalNonLoop += 100
	}
	return d
}

func TestSweepAndBestOrder(t *testing.T) {
	// Benchmark where every heuristic has its own branch population; the
	// miss rate is the same under every order (no overlap), so the sweep
	// must be flat.
	flat := syntheticBench("flat", [core.NumHeuristics]int64{10, 10, 10, 10, 10, 10, 10})
	s := NewSweep([]*BenchData{flat})
	avg := s.Avg(nil)
	for _, v := range avg {
		if math.Abs(v-10) > 1e-9 {
			t.Fatalf("flat sweep should be 10%% everywhere, got %f", v)
		}
	}
	// Overlapping population: mask with two heuristics where one is right
	// and the other wrong; orders placing the right one earlier win.
	d := &BenchData{Name: "overlap", TotalNonLoop: 100}
	mask := (1 << core.Opcode) | (1 << core.Guard)
	d.Dyn[mask] = 100
	d.Miss[mask][core.Opcode] = 0
	d.Miss[mask][core.Guard] = 100
	s2 := NewSweep([]*BenchData{d})
	best := s2.BestOrder(nil)
	o := s2.Orders[best]
	for _, h := range o {
		if h == core.Opcode {
			break
		}
		if h == core.Guard {
			t.Fatalf("best order %v places Guard before Opcode", o)
		}
	}
	sorted := s2.SortedAvg(nil)
	if sorted[0] != 0 || sorted[len(sorted)-1] != 100 {
		t.Errorf("sorted extremes %f..%f, want 0..100", sorted[0], sorted[len(sorted)-1])
	}
}

func TestSubsetsExactSmall(t *testing.T) {
	// 4 synthetic benchmarks, subsets of size 2: C(4,2)=6 trials; verify
	// against direct enumeration.
	var benches []*BenchData
	misses := [][core.NumHeuristics]int64{
		{0, 50, 50, 50, 50, 50, 50},
		{50, 0, 50, 50, 50, 50, 50},
		{0, 50, 50, 50, 50, 50, 50},
		{50, 50, 50, 50, 50, 50, 0},
	}
	for i, m := range misses {
		benches = append(benches, syntheticBench(string(rune('a'+i)), m))
	}
	s := NewSweep(benches)
	res := s.Subsets(2)
	if res.Trials != 6 {
		t.Fatalf("trials %d, want 6", res.Trials)
	}
	// Oracle: enumerate subsets and argmin directly.
	want := make([]int, len(s.Orders))
	n := len(benches)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			best, bv := 0, math.Inf(1)
			for o := range s.Orders {
				v := s.M[o][i] + s.M[o][j]
				if v < bv {
					bv = v
					best = o
				}
			}
			want[best]++
		}
	}
	for o := range want {
		if want[o] != res.BestCount[o] {
			t.Fatalf("order %d: count %d, want %d", o, res.BestCount[o], want[o])
		}
	}
}

func TestSubsetsSampledDeterministic(t *testing.T) {
	benches := []*BenchData{
		syntheticBench("a", [core.NumHeuristics]int64{0, 10, 20, 30, 40, 50, 60}),
		syntheticBench("b", [core.NumHeuristics]int64{60, 50, 40, 30, 20, 10, 0}),
		syntheticBench("c", [core.NumHeuristics]int64{5, 5, 5, 5, 5, 5, 5}),
	}
	s := NewSweep(benches)
	r1 := s.SubsetsSampled(2, 100, 42)
	r2 := s.SubsetsSampled(2, 100, 42)
	if r1.Trials != 100 || r2.Trials != 100 {
		t.Fatal("wrong trial count")
	}
	for o := range r1.BestCount {
		if r1.BestCount[o] != r2.BestCount[o] {
			t.Fatal("sampled experiment not deterministic for a fixed seed")
		}
	}
}

func TestRankedAndDistinct(t *testing.T) {
	r := &SubsetResult{Trials: 10, BestCount: make([]int, 10)}
	r.BestCount[3] = 5
	r.BestCount[7] = 4
	r.BestCount[1] = 1
	if r.DistinctOrders() != 3 {
		t.Errorf("distinct %d", r.DistinctOrders())
	}
	ranked := r.Ranked()
	if len(ranked) != 3 || ranked[0] != 3 || ranked[1] != 7 || ranked[2] != 1 {
		t.Errorf("ranked %v", ranked)
	}
}

func TestMasksWithPopcount(t *testing.T) {
	binom := func(n, k int) int {
		if k < 0 || k > n {
			return 0
		}
		r := 1
		for i := 0; i < k; i++ {
			r = r * (n - i) / (i + 1)
		}
		return r
	}
	for n := 0; n <= 12; n++ {
		for k := 0; k <= n; k++ {
			masks := masksWithPopcount(n, k)
			if len(masks) != binom(n, k) {
				t.Errorf("C(%d,%d): got %d masks, want %d", n, k, len(masks), binom(n, k))
			}
			for _, m := range masks {
				if popcount(m) != k {
					t.Errorf("mask %b has popcount %d, want %d", m, popcount(m), k)
				}
			}
		}
	}
}
