// Package freq estimates block execution frequencies statically from
// Ball-Larus branch predictions — the "identify frequently executed
// regions" application the paper's abstract motivates, and the experiment
// its related-work section attributes to Wall: predicting a program
// profile without running the program.
//
// Each predicted branch is turned into an edge probability (a high
// probability on the predicted edge), and relative block frequencies are
// propagated from the procedure entry through the CFG. Loops converge
// geometrically because backedge probabilities are below one; a bounded
// number of reverse-postorder passes suffices.
//
// Quality is measured against a real run's block counts with Spearman
// rank correlation and top-K hot-block overlap, comparing against a
// uniform estimator and Wall's "randomly generated profile" strawman.
package freq

import (
	"math"
	"sort"

	"ballarus/internal/cfg"
	"ballarus/internal/core"
	"ballarus/internal/mir"
)

// Options control estimation; the zero value selects the defaults.
type Options struct {
	// LoopProb is the probability assigned to a loop predictor's choice
	// (intuitively: loops iterate about 1/(1-p) times). Default 0.88.
	LoopProb float64
	// HeurProb is the probability assigned to a non-loop heuristic's
	// predicted edge. Default 0.80.
	HeurProb float64
	// Passes bounds the propagation sweeps. Default 64.
	Passes int
}

func (o *Options) fill() {
	if o.LoopProb == 0 {
		o.LoopProb = 0.88
	}
	if o.HeurProb == 0 {
		o.HeurProb = 0.80
	}
	if o.Passes == 0 {
		o.Passes = 64
	}
}

// Estimate returns, for every procedure, the estimated execution frequency
// of each basic block per invocation of that procedure (the entry block
// has frequency 1). Builtin procedures get nil.
func Estimate(a *core.Analysis, order core.Order, opts Options) [][]float64 {
	opts.fill()
	out := make([][]float64, len(a.Prog.Procs))
	// Branch probabilities by (proc, instr).
	type key struct{ proc, instr int }
	takenProb := map[key]float64{}
	for i := range a.Branches {
		b := &a.Branches[i]
		var p float64
		if b.Class == core.LoopBranch {
			p = opts.LoopProb
			if b.LoopPred == core.PredFall {
				p = 1 - p
			}
		} else {
			pred, _, ok := b.PredictWith(order)
			if !ok {
				p = 0.5
			} else if pred == core.PredTaken {
				p = opts.HeurProb
			} else {
				p = 1 - opts.HeurProb
			}
		}
		takenProb[key{b.Proc, b.Instr}] = p
	}
	for pi, g := range a.Graphs {
		if g == nil {
			continue
		}
		n := len(g.Blocks)
		freq := make([]float64, n)
		// Edge probability from block b to successor index si.
		edgeProb := func(b *cfg.Block, si int) float64 {
			last := &g.Proc.Code[b.End-1]
			switch {
			case last.Op.IsCondBranch():
				p := takenProb[key{pi, b.End - 1}]
				if si == 0 {
					return p
				}
				return 1 - p
			case last.Op == mir.Jtab:
				return 1 / float64(len(b.Succs))
			default:
				return 1
			}
		}
		for pass := 0; pass < opts.Passes; pass++ {
			changed := false
			for bi := 0; bi < n; bi++ {
				if !g.Reachable(bi) {
					continue
				}
				f := 0.0
				if bi == 0 {
					f = 1
				}
				for _, pred := range g.Blocks[bi].Preds {
					pb := g.Blocks[pred]
					for si, s := range pb.Succs {
						if s == bi {
							f += freq[pred] * edgeProb(pb, si)
						}
					}
				}
				if math.Abs(f-freq[bi]) > 1e-12 {
					freq[bi] = f
					changed = true
				}
			}
			if !changed {
				break
			}
		}
		out[pi] = freq
	}
	return out
}

// Uniform returns the strawman estimator that calls every block equally
// frequent.
func Uniform(a *core.Analysis) [][]float64 {
	out := make([][]float64, len(a.Prog.Procs))
	for pi, g := range a.Graphs {
		if g == nil {
			continue
		}
		f := make([]float64, len(g.Blocks))
		for i := range f {
			f[i] = 1
		}
		out[pi] = f
	}
	return out
}

// Random returns Wall's baseline: a deterministic pseudo-random profile.
func Random(a *core.Analysis) [][]float64 {
	out := make([][]float64, len(a.Prog.Procs))
	for pi, g := range a.Graphs {
		if g == nil {
			continue
		}
		f := make([]float64, len(g.Blocks))
		for i := range f {
			z := uint64(pi*8191+i) + 0x9E3779B97F4A7C15
			z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
			z = (z ^ (z >> 27)) * 0x94D049BB133111EB
			f[i] = float64(z%1000) + 1
		}
		out[pi] = f
	}
	return out
}

// Actual derives per-block execution counts from an instruction-count
// matrix (interp.Result.InstrCounts).
func Actual(a *core.Analysis, instrCounts [][]int64) [][]float64 {
	out := make([][]float64, len(a.Prog.Procs))
	for pi, g := range a.Graphs {
		if g == nil || pi >= len(instrCounts) {
			continue
		}
		f := make([]float64, len(g.Blocks))
		for bi, b := range g.Blocks {
			f[bi] = float64(instrCounts[pi][b.Start])
		}
		out[pi] = f
	}
	return out
}

// Spearman computes the Spearman rank correlation between two frequency
// vectors. NaN-free: returns 0 for degenerate inputs.
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	rx := ranks(x)
	ry := ranks(y)
	return pearson(rx, ry)
}

// ranks returns average ranks (ties averaged).
func ranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && x[idx[j]] == x[idx[i]] {
			j++
		}
		avg := float64(i+j-1)/2 + 1
		for k := i; k < j; k++ {
			r[idx[k]] = avg
		}
		i = j
	}
	return r
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var num, dx, dy float64
	for i := range x {
		a, b := x[i]-mx, y[i]-my
		num += a * b
		dx += a * a
		dy += b * b
	}
	if dx == 0 || dy == 0 {
		return 0
	}
	return num / math.Sqrt(dx*dy)
}

// TopOverlap reports the fraction of the actual top-k hottest blocks that
// the estimate also ranks in its top k.
func TopOverlap(est, act []float64, k int) float64 {
	if k <= 0 || len(est) != len(act) || len(act) == 0 {
		return 0
	}
	if k > len(act) {
		k = len(act)
	}
	top := func(x []float64) map[int]bool {
		idx := make([]int, len(x))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return x[idx[a]] > x[idx[b]] })
		s := map[int]bool{}
		for _, i := range idx[:k] {
			s[i] = true
		}
		return s
	}
	te, ta := top(est), top(act)
	hit := 0
	for i := range ta {
		if te[i] {
			hit++
		}
	}
	return float64(hit) / float64(k)
}

// Quality summarizes one estimator against the measured profile over a
// whole program: the instruction-weighted mean per-procedure Spearman
// correlation and the mean top-25% overlap, over procedures that executed.
type Quality struct {
	Spearman float64
	Overlap  float64
	Procs    int
}

// Evaluate scores an estimate against actual per-block counts.
func Evaluate(a *core.Analysis, est, act [][]float64) Quality {
	var q Quality
	var wSum, sSum, oSum float64
	for pi, g := range a.Graphs {
		if g == nil || est[pi] == nil || act[pi] == nil {
			continue
		}
		var total float64
		for _, c := range act[pi] {
			total += c
		}
		if total == 0 || len(act[pi]) < 4 {
			continue // procedure never ran or is trivial
		}
		k := (len(act[pi]) + 3) / 4
		s := Spearman(est[pi], act[pi])
		o := TopOverlap(est[pi], act[pi], k)
		w := total
		wSum += w
		sSum += s * w
		oSum += o * w
		q.Procs++
	}
	if wSum > 0 {
		q.Spearman = sSum / wSum
		q.Overlap = oSum / wSum
	}
	return q
}
