package freq

import (
	"math"
	"testing"
	"testing/quick"

	"ballarus/internal/core"
	"ballarus/internal/interp"
	"ballarus/internal/minic"
	"ballarus/internal/suite"
)

func TestRanks(t *testing.T) {
	r := ranks([]float64{10, 30, 20})
	want := []float64{1, 3, 2}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v", r)
		}
	}
	// Ties share the average rank.
	r = ranks([]float64{5, 5, 1})
	if r[0] != 2.5 || r[1] != 2.5 || r[2] != 1 {
		t.Fatalf("tied ranks = %v", r)
	}
}

func TestSpearmanProperties(t *testing.T) {
	if got := Spearman([]float64{1, 2, 3, 4}, []float64{10, 20, 30, 40}); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect monotone correlation = %f", got)
	}
	if got := Spearman([]float64{1, 2, 3, 4}, []float64{9, 7, 5, 3}); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect inverse correlation = %f", got)
	}
	if Spearman([]float64{1}, []float64{2}) != 0 {
		t.Error("degenerate input must be 0")
	}
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		s := Spearman(xs, xs)
		if len(xs) < 2 {
			return s == 0
		}
		allSame := true
		for _, x := range xs {
			if x != xs[0] {
				allSame = false
			}
		}
		if allSame {
			return s == 0
		}
		return math.Abs(s-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTopOverlap(t *testing.T) {
	act := []float64{100, 50, 10, 1}
	if got := TopOverlap([]float64{90, 60, 5, 2}, act, 2); got != 1 {
		t.Errorf("matching top-2 = %f", got)
	}
	if got := TopOverlap([]float64{1, 2, 100, 200}, act, 2); got != 0 {
		t.Errorf("inverted top-2 = %f", got)
	}
	if TopOverlap(nil, nil, 3) != 0 {
		t.Error("degenerate input must be 0")
	}
}

func TestEstimateSimpleLoop(t *testing.T) {
	src := `
int main() {
	int i;
	int s = 0;
	for (i = 0; i < 100; i++) { s += i; }
	printi(s);
	return 0;
}`
	prog, err := minic.Compile(src, minic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	est := Estimate(a, core.DefaultOrder, Options{})
	mainIdx := -1
	for i, p := range prog.Procs {
		if p.Name == "main" {
			mainIdx = i
		}
	}
	g := a.Graphs[mainIdx]
	f := est[mainIdx]
	if f[0] != 1 {
		t.Errorf("entry frequency %f, want 1", f[0])
	}
	// The loop body must be estimated much hotter than the entry.
	hot := 0.0
	for bi := range g.Blocks {
		if f[bi] > hot {
			hot = f[bi]
		}
	}
	if hot < 3 {
		t.Errorf("loop body estimated at %f, want amplified well above entry", hot)
	}
	// With loop probability p the closed form is ~1/(1-p) ≈ 8.3.
	if hot > 20 {
		t.Errorf("loop amplification %f diverged", hot)
	}
}

func TestEstimateAgainstRealProfile(t *testing.T) {
	// On real benchmarks, the prediction-based estimator must beat the
	// random profile on rank correlation (Wall's negative result was for
	// his estimators; the paper suggests heuristics would do better).
	for _, name := range []string{"xlisp", "compress", "tomcatv"} {
		b := suite.Get(name)
		prog, err := b.Compile()
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.Analyze(prog, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := interp.Run(prog, interp.Config{
			Input: b.Data[0].Input, Budget: b.Budget, CollectInstrCounts: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		act := Actual(a, res.InstrCounts)
		qEst := Evaluate(a, Estimate(a, core.DefaultOrder, Options{}), act)
		qRnd := Evaluate(a, Random(a), act)
		t.Logf("%-10s estimator spearman %.3f overlap %.2f | random spearman %.3f overlap %.2f (%d procs)",
			name, qEst.Spearman, qEst.Overlap, qRnd.Spearman, qRnd.Overlap, qEst.Procs)
		if qEst.Spearman <= qRnd.Spearman {
			t.Errorf("%s: estimator (%.3f) does not beat random (%.3f)", name, qEst.Spearman, qRnd.Spearman)
		}
		if qEst.Spearman < 0.3 {
			t.Errorf("%s: estimator correlation %.3f is too weak", name, qEst.Spearman)
		}
	}
}

func TestActualDerivation(t *testing.T) {
	src := `
int f(int x) { if (x > 0) { return 1; } return 0; }
int main() { printi(f(3) + f(-2)); return 0; }`
	prog, err := minic.Compile(src, minic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(prog, interp.Config{CollectInstrCounts: true})
	if err != nil {
		t.Fatal(err)
	}
	act := Actual(a, res.InstrCounts)
	for pi, p := range prog.Procs {
		if p.Name != "f" {
			continue
		}
		// f runs twice: entry block count must be 2.
		if act[pi][0] != 2 {
			t.Errorf("f entry count %f, want 2", act[pi][0])
		}
	}
}

func TestUniformAndRandomShapes(t *testing.T) {
	prog, err := minic.Compile(`int main() { int i; int s = 0; for (i = 0; i < 3; i++) { s++; } return s; }`, minic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	u := Uniform(a)
	r := Random(a)
	for pi, g := range a.Graphs {
		if g == nil {
			if u[pi] != nil || r[pi] != nil {
				t.Error("builtin procs must have nil estimates")
			}
			continue
		}
		if len(u[pi]) != len(g.Blocks) || len(r[pi]) != len(g.Blocks) {
			t.Error("estimate length mismatch")
		}
		for _, v := range r[pi] {
			if v <= 0 {
				t.Error("random profile must be positive")
			}
		}
	}
}
