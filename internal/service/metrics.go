package service

import (
	"sync/atomic"
	"time"

	"ballarus/internal/resilience"
)

// stage names, in pipeline order.
const (
	stageCompile  = "compile"
	stageOptimize = "optimize"
	stageAnalyze  = "analyze"
	stagePredict  = "predict"
	stageExecute  = "execute"
	stageScore    = "score"
)

var stageOrder = []string{
	stageCompile, stageOptimize, stageAnalyze, stagePredict, stageExecute, stageScore,
}

// stageMetrics accumulates one pipeline stage's counters. All fields are
// updated atomically, so hot-path recording never takes a lock.
type stageMetrics struct {
	count     atomic.Int64
	errors    atomic.Int64
	nanos     atomic.Int64
	hits      atomic.Int64 // cache hits (cacheable stages only)
	misses    atomic.Int64 // cache misses, i.e. actual computations
	cacheable bool
}

func (m *stageMetrics) record(d time.Duration, hit bool, err error) {
	m.count.Add(1)
	m.nanos.Add(int64(d))
	if err != nil {
		m.errors.Add(1)
		return
	}
	if !m.cacheable {
		return
	}
	if hit {
		m.hits.Add(1)
	} else {
		m.misses.Add(1)
	}
}

// StageStats is a point-in-time snapshot of one stage's counters.
type StageStats struct {
	Name        string        `json:"name"`
	Count       int64         `json:"count"`        // times the stage ran (incl. cache hits)
	Errors      int64         `json:"errors"`       // times the stage failed
	TotalTime   time.Duration `json:"total_ns"`     // cumulative wall time in the stage
	MeanTime    time.Duration `json:"mean_ns"`      // TotalTime / Count
	CacheHits   int64         `json:"cache_hits"`   // lookups served from cache
	CacheMisses int64         `json:"cache_misses"` // lookups that computed
}

// CacheStats is a point-in-time snapshot of one result cache.
type CacheStats struct {
	Name      string `json:"name"`
	Entries   int    `json:"entries"`
	Evictions int64  `json:"evictions"`
	Capacity  int    `json:"capacity"` // 0 = unbounded
}

// cacheSnapshot is the flightCache-side view of CacheStats.
type cacheSnapshot struct {
	entries   int
	evictions int64
	capacity  int
}

// WatchdogStats is a point-in-time snapshot of the worker-pool
// watchdog.
type WatchdogStats struct {
	Enabled bool `json:"enabled"`
	// Restarts counts worker-pool replacements after a wedge (no
	// progress past the deadline with every slot held and work queued).
	Restarts int64 `json:"restarts"`
}

// DurabilityStats is a point-in-time snapshot of the durable-state
// machinery: what recovery found at boot and what has been persisted
// since.
type DurabilityStats struct {
	Enabled bool `json:"enabled"`
	// SnapshotEntries / SnapshotSkipped: intact vs. dropped (corrupt,
	// torn, unknown, or unreplayable) snapshot entries at the last boot.
	SnapshotEntries int64 `json:"snapshot_entries"`
	SnapshotSkipped int64 `json:"snapshot_skipped"`
	// JournalReplayed / JournalSkipped: journal records rewarmed vs.
	// dropped at the last boot.
	JournalReplayed int64 `json:"journal_replayed"`
	JournalSkipped  int64 `json:"journal_skipped"`
	// Warmed is the number of requests replayed into the caches at boot.
	Warmed int64 `json:"warmed"`
	// SnapshotWrites / SnapshotErrors count snapshot attempts since boot.
	SnapshotWrites int64 `json:"snapshot_writes"`
	SnapshotErrors int64 `json:"snapshot_errors"`
	// JournalAppends counts request recipes journaled since boot.
	JournalAppends int64 `json:"journal_appends"`
	// WarmEntries is the current warm-set size (what the next snapshot
	// will persist).
	WarmEntries int `json:"warm_entries"`
}

// Stats is a point-in-time snapshot of the service's counters.
type Stats struct {
	Requests  int64         `json:"requests"`   // Predict calls accepted
	InFlight  int64         `json:"in_flight"`  // Predict calls currently running
	Queued    int64         `json:"queued"`     // Predict calls waiting for a worker slot
	Completed int64         `json:"completed"`  // Predict calls that returned a Result
	Errors    int64         `json:"errors"`     // Predict calls that returned an error
	Canceled  int64         `json:"canceled"`   // errors that were cancellations/timeouts
	Shed      int64         `json:"shed"`       // requests rejected by admission control or breakers
	Panics    int64         `json:"panics"`     // panics recovered inside pipeline stages
	Retries   int64         `json:"retries"`    // stage attempts retried after transient failure
	RunHits   int64         `json:"run_hits"`   // whole-pipeline result cache hits
	RunMisses int64         `json:"run_misses"` // whole-pipeline executions
	Programs  int           `json:"programs"`   // compiled programs cached
	Analyses  int           `json:"analyses"`   // analyses cached
	Runs      int           `json:"runs"`       // run results cached
	Evictions int64         `json:"evictions"`  // total cache evictions across the three caches
	Uptime    time.Duration `json:"uptime_ns"`
	Stages    []StageStats  `json:"stages"`
	// Caches details the three result caches (programs, analyses, runs).
	Caches []CacheStats `json:"caches"`
	// Breakers reports the per-stage circuit breakers (compile, analyze,
	// execute) with their closed/open/half-open state.
	Breakers []resilience.BreakerStats `json:"breakers"`
	// Watchdog reports the worker-pool wedge detector.
	Watchdog WatchdogStats `json:"watchdog"`
	// Durability reports snapshot/journal/recovery state.
	Durability DurabilityStats `json:"durability"`
}

// Stage returns the named stage snapshot, or a zero StageStats.
func (s Stats) Stage(name string) StageStats {
	for _, st := range s.Stages {
		if st.Name == name {
			return st
		}
	}
	return StageStats{}
}

// metrics is the service-wide counter set.
type metrics struct {
	start     time.Time
	requests  atomic.Int64
	inFlight  atomic.Int64
	queued    atomic.Int64
	completed atomic.Int64
	errors    atomic.Int64
	canceled  atomic.Int64
	shed      atomic.Int64
	panics    atomic.Int64
	retries   atomic.Int64
	runHits   atomic.Int64
	runMisses atomic.Int64
	stages    map[string]*stageMetrics

	// Watchdog and durability counters.
	poolRestarts    atomic.Int64
	snapshotWrites  atomic.Int64
	snapshotErrors  atomic.Int64
	journalAppends  atomic.Int64
	recSnapEntries  atomic.Int64
	recSnapSkipped  atomic.Int64
	recJrnlReplayed atomic.Int64
	recJrnlSkipped  atomic.Int64
	recWarmed       atomic.Int64
}

// recordRecovery publishes what boot-time recovery found.
func (m *metrics) recordRecovery(rs RecoveryStats) {
	m.recSnapEntries.Store(rs.SnapshotEntries)
	m.recSnapSkipped.Store(rs.SnapshotSkipped)
	m.recJrnlReplayed.Store(rs.JournalReplayed)
	m.recJrnlSkipped.Store(rs.JournalSkipped)
	m.recWarmed.Store(rs.Warmed)
}

func newMetrics(start time.Time) *metrics {
	m := &metrics{start: start, stages: map[string]*stageMetrics{}}
	for _, name := range stageOrder {
		m.stages[name] = &stageMetrics{}
	}
	m.stages[stageCompile].cacheable = true
	m.stages[stageAnalyze].cacheable = true
	m.stages[stageExecute].cacheable = true
	return m
}

// timed runs fn as the named stage, recording latency and cache outcome.
func timed[V any](m *metrics, name string, fn func() (V, bool, error)) (V, bool, error) {
	start := time.Now()
	v, hit, err := fn()
	m.stages[name].record(time.Since(start), hit, err)
	return v, hit, err
}

func (m *metrics) snapshot(programs, analyses, runs cacheSnapshot, breakers []resilience.BreakerStats, watchdog WatchdogStats, durability DurabilityStats) Stats {
	s := Stats{
		Requests:  m.requests.Load(),
		InFlight:  m.inFlight.Load(),
		Queued:    m.queued.Load(),
		Completed: m.completed.Load(),
		Errors:    m.errors.Load(),
		Canceled:  m.canceled.Load(),
		Shed:      m.shed.Load(),
		Panics:    m.panics.Load(),
		Retries:   m.retries.Load(),
		RunHits:   m.runHits.Load(),
		RunMisses: m.runMisses.Load(),
		Programs:  programs.entries,
		Analyses:  analyses.entries,
		Runs:      runs.entries,
		Evictions: programs.evictions + analyses.evictions + runs.evictions,
		Uptime:    time.Since(m.start),
		Caches: []CacheStats{
			{Name: "programs", Entries: programs.entries, Evictions: programs.evictions, Capacity: programs.capacity},
			{Name: "analyses", Entries: analyses.entries, Evictions: analyses.evictions, Capacity: analyses.capacity},
			{Name: "runs", Entries: runs.entries, Evictions: runs.evictions, Capacity: runs.capacity},
		},
		Breakers:   breakers,
		Watchdog:   watchdog,
		Durability: durability,
	}
	for _, name := range stageOrder {
		st := m.stages[name]
		snap := StageStats{
			Name:        name,
			Count:       st.count.Load(),
			Errors:      st.errors.Load(),
			TotalTime:   time.Duration(st.nanos.Load()),
			CacheHits:   st.hits.Load(),
			CacheMisses: st.misses.Load(),
		}
		if snap.Count > 0 {
			snap.MeanTime = snap.TotalTime / time.Duration(snap.Count)
		}
		s.Stages = append(s.Stages, snap)
	}
	return s
}
