package service

import (
	"context"
	"strings"
	"sync/atomic"
	"time"

	"ballarus/internal/core"
	"ballarus/internal/dynpred"
	"ballarus/internal/obs"
	"ballarus/internal/profile"
	"ballarus/internal/resilience"
	"ballarus/internal/tenant"
)

// stage names, in pipeline order.
const (
	stageCompile  = "compile"
	stageOptimize = "optimize"
	stageAnalyze  = "analyze"
	stagePredict  = "predict"
	stageExecute  = "execute"
	stageScore    = "score"
	stageCompare  = "compare"
	stageShard    = "shard"
)

var stageOrder = []string{
	stageCompile, stageOptimize, stageAnalyze, stagePredict, stageExecute, stageScore, stageCompare, stageShard,
}

// Predictor labels for the aggregate miss counters, in the paper's
// terms: the prioritized heuristic combiner, the voting combiner, the
// loop+random and BTFNT baselines, and the perfect static predictor.
const (
	predictorHeuristic = "heuristic"
	predictorVote      = "vote"
	predictorLoopRand  = "loop_rand"
	predictorBTFNT     = "btfnt"
	predictorPerfect   = "perfect"
)

var predictorOrder = []string{
	predictorHeuristic, predictorVote, predictorLoopRand, predictorBTFNT, predictorPerfect,
}

// Attribution labels: which rule decided a dynamic branch under the
// request's order — one of the seven non-loop heuristics, the loop
// predictor (loop branches), or the pseudo-random default (uncovered
// non-loop branches).
const (
	byLoopPredictor = "loop_predictor"
	byDefault       = "default"
)

// stageMetrics accumulates one pipeline stage's counters. All values
// live in the obs registry, so hot-path recording never takes a lock
// and the Prometheus exposition reads the same source of truth as
// Stats().
type stageMetrics struct {
	count     *obs.Counter
	errors    *obs.Counter
	nanos     atomic.Int64 // cumulative wall time, for Stats().MeanTime
	hits      *obs.Counter // cache hits (cacheable stages only)
	misses    *obs.Counter // cache misses, i.e. actual computations
	lat       *obs.Histogram
	cacheable bool
}

func (m *stageMetrics) record(d time.Duration, hit bool, err error) {
	m.count.Inc()
	m.nanos.Add(int64(d))
	m.lat.ObserveDuration(d)
	if err != nil {
		m.errors.Inc()
		return
	}
	if !m.cacheable {
		return
	}
	if hit {
		m.hits.Inc()
	} else {
		m.misses.Inc()
	}
}

// StageStats is a point-in-time snapshot of one stage's counters.
type StageStats struct {
	Name        string        `json:"name"`
	Count       int64         `json:"count"`        // times the stage ran (incl. cache hits)
	Errors      int64         `json:"errors"`       // times the stage failed
	TotalTime   time.Duration `json:"total_ns"`     // cumulative wall time in the stage
	MeanTime    time.Duration `json:"mean_ns"`      // TotalTime / Count; zero when Count == 0
	CacheHits   int64         `json:"cache_hits"`   // lookups served from cache
	CacheMisses int64         `json:"cache_misses"` // lookups that computed
}

// CacheStats is a point-in-time snapshot of one result cache.
type CacheStats struct {
	Name      string `json:"name"`
	Entries   int    `json:"entries"`
	Evictions int64  `json:"evictions"`
	Capacity  int    `json:"capacity"` // 0 = unbounded
}

// cacheSnapshot is the flightCache-side view of CacheStats.
type cacheSnapshot struct {
	entries   int
	evictions int64
	capacity  int
}

// WatchdogStats is a point-in-time snapshot of the worker-pool
// watchdog.
type WatchdogStats struct {
	Enabled bool `json:"enabled"`
	// Restarts counts worker-pool replacements after a wedge (no
	// progress past the deadline with every slot held and work queued).
	Restarts int64 `json:"restarts"`
}

// DurabilityStats is a point-in-time snapshot of the durable-state
// machinery: what recovery found at boot and what has been persisted
// since.
type DurabilityStats struct {
	Enabled bool `json:"enabled"`
	// SnapshotEntries / SnapshotSkipped: intact vs. dropped (corrupt,
	// torn, unknown, or unreplayable) snapshot entries at the last boot.
	SnapshotEntries int64 `json:"snapshot_entries"`
	SnapshotSkipped int64 `json:"snapshot_skipped"`
	// JournalReplayed / JournalSkipped: journal records rewarmed vs.
	// dropped at the last boot.
	JournalReplayed int64 `json:"journal_replayed"`
	JournalSkipped  int64 `json:"journal_skipped"`
	// Warmed is the number of requests replayed into the caches at boot.
	Warmed int64 `json:"warmed"`
	// SnapshotWrites / SnapshotErrors count snapshot attempts since boot.
	SnapshotWrites int64 `json:"snapshot_writes"`
	SnapshotErrors int64 `json:"snapshot_errors"`
	// JournalAppends counts request recipes journaled since boot.
	JournalAppends int64 `json:"journal_appends"`
	// WarmEntries is the current warm-set size (what the next snapshot
	// will persist).
	WarmEntries int `json:"warm_entries"`
}

// Stats is a point-in-time snapshot of the service's counters. It is a
// thin view over the service's metric registry — the same counters the
// Prometheus exposition serves.
type Stats struct {
	Requests  int64         `json:"requests"`   // Predict calls accepted
	InFlight  int64         `json:"in_flight"`  // Predict calls currently running
	Queued    int64         `json:"queued"`     // Predict calls waiting for a worker slot
	Completed int64         `json:"completed"`  // Predict calls that returned a Result
	Errors    int64         `json:"errors"`     // Predict calls that returned an error
	Canceled  int64         `json:"canceled"`   // errors that were cancellations/timeouts
	Shed      int64         `json:"shed"`       // requests rejected by admission control or breakers
	Panics    int64         `json:"panics"`     // panics recovered inside pipeline stages
	Retries   int64         `json:"retries"`    // stage attempts retried after transient failure
	RunHits   int64         `json:"run_hits"`   // whole-pipeline result cache hits
	RunMisses int64         `json:"run_misses"` // whole-pipeline executions
	Programs  int           `json:"programs"`   // compiled programs cached
	Analyses  int           `json:"analyses"`   // analyses cached
	Runs      int           `json:"runs"`       // run results cached
	Compares  int           `json:"compares"`   // tournament results cached
	Evictions int64         `json:"evictions"`  // total cache evictions across the three caches
	Uptime    time.Duration `json:"uptime_ns"`
	Stages    []StageStats  `json:"stages"`
	// Caches details the result caches (programs, analyses, runs,
	// compares).
	Caches []CacheStats `json:"caches"`
	// Breakers reports the per-stage circuit breakers (compile, analyze,
	// execute, compare) with their closed/open/half-open state.
	Breakers []resilience.BreakerStats `json:"breakers"`
	// Watchdog reports the worker-pool wedge detector.
	Watchdog WatchdogStats `json:"watchdog"`
	// Durability reports snapshot/journal/recovery state.
	Durability DurabilityStats `json:"durability"`
}

// Stage returns the named stage snapshot, or a zero StageStats.
func (s Stats) Stage(name string) StageStats {
	for _, st := range s.Stages {
		if st.Name == name {
			return st
		}
	}
	return StageStats{}
}

// metrics is the service-wide counter set, backed by an obs.Registry
// so every counter is scrapeable as Prometheus text.
type metrics struct {
	reg   *obs.Registry
	start time.Time

	requests  *obs.Counter
	inFlight  *obs.Gauge
	queued    *obs.Gauge
	completed *obs.Counter
	errors    *obs.Counter
	canceled  *obs.Counter
	shed      *obs.Counter
	panics    *obs.Counter
	retries   *obs.Counter
	runHits   *obs.Counter
	runMisses *obs.Counter
	deadline  *obs.Histogram // remaining deadline at admission
	stages    map[string]*stageMetrics

	// Resilience, watchdog, and durability counters.
	breakerTransitions map[string]*obs.Counter // keyed stage + "\xff" + to-state
	poolRestarts       *obs.Counter
	snapshotWrites     *obs.Counter
	snapshotErrors     *obs.Counter
	journalAppends     *obs.Counter
	recSnapEntries     *obs.Gauge
	recSnapSkipped     *obs.Gauge
	recJrnlReplayed    *obs.Gauge
	recJrnlSkipped     *obs.Gauge
	recWarmed          *obs.Gauge

	// Domain metrics, aggregated over every scored request: dynamic
	// branch executions attributed to the rule that predicted them, and
	// miss totals per predictor vs. the perfect static predictor.
	attrPred map[string]*obs.Counter // dynamic executions decided by rule
	attrMiss map[string]*obs.Counter // of those, mispredicted
	classDyn map[core.Class]*obs.Counter
	predMiss map[string]*obs.Counter
	dynTotal *obs.Counter

	// Tournament metrics, aggregated over every computed comparison:
	// mispredictions per backend (static entrants included), dynamic
	// branches raced, and hard-to-predict branches by verdict.
	cmpMiss map[string]*obs.Counter
	cmpDyn  *obs.Counter
	cmpH2P  map[string]*obs.Counter
}

// Tenant metric families. Labels are dynamic (one series per tenant
// the LRU-bounded registry has seen); the registry's get-or-create
// semantics make the helpers safe and cheap on the hot path.
const (
	tenantRequestsHelp = "Requests attributed to each tenant."
	tenantShedHelp     = "Per-tenant rejections by reason: rate, concurrency (quota 429s), fairness (over-fair-share shed under saturation)."
	tenantInflightHelp = "Requests currently admitted per tenant."
)

// tenantRequest counts one request attributed to a tenant.
func (m *metrics) tenantRequest(id string) {
	m.reg.Counter("ballarus_tenant_requests_total", tenantRequestsHelp, "tenant", id).Inc()
}

// tenantShed counts one per-tenant rejection by reason.
func (m *metrics) tenantShed(id, reason string) {
	m.reg.Counter("ballarus_tenant_shed_total", tenantShedHelp, "tenant", id, "reason", reason).Inc()
}

// tenantInflight moves a tenant's admitted-request gauge.
func (m *metrics) tenantInflight(id string, delta int64) {
	m.reg.Gauge("ballarus_tenant_inflight", tenantInflightHelp, "tenant", id).Add(delta)
}

// seedTenantFamilies pre-creates the tenant families for the default
// tenant so /metrics exposes them (and metrics-lint can require them)
// before the first per-tenant event.
func (m *metrics) seedTenantFamilies() {
	m.reg.Counter("ballarus_tenant_requests_total", tenantRequestsHelp, "tenant", tenant.DefaultID)
	m.reg.Counter("ballarus_tenant_shed_total", tenantShedHelp, "tenant", tenant.DefaultID, "reason", "rate")
	m.reg.Gauge("ballarus_tenant_inflight", tenantInflightHelp, "tenant", tenant.DefaultID)
}

// recordRecovery publishes what boot-time recovery found.
func (m *metrics) recordRecovery(rs RecoveryStats) {
	m.recSnapEntries.Set(rs.SnapshotEntries)
	m.recSnapSkipped.Set(rs.SnapshotSkipped)
	m.recJrnlReplayed.Set(rs.JournalReplayed)
	m.recJrnlSkipped.Set(rs.JournalSkipped)
	m.recWarmed.Set(rs.Warmed)
}

// breakerTransition counts one breaker state change.
func (m *metrics) breakerTransition(stage string, to resilience.BreakerState) {
	m.breakerTransitions[stage+"\xff"+stateLabel(to)].Inc()
}

// stateLabel is the metric label for a breaker state.
func stateLabel(s resilience.BreakerState) string {
	return strings.ReplaceAll(s.String(), "-", "_")
}

var breakerStates = []resilience.BreakerState{
	resilience.BreakerClosed, resilience.BreakerOpen, resilience.BreakerHalfOpen,
}

// heuristicLabels[h] is the metric label for core.Heuristic(h),
// precomputed so attribution on the hot path never lowercases.
var heuristicLabels = func() []string {
	out := make([]string, core.NumHeuristics)
	for h := range out {
		out[h] = strings.ToLower(core.Heuristic(h).String())
	}
	return out
}()

// attributionLabels are the rules a dynamic branch's prediction can be
// attributed to.
func attributionLabels() []string {
	out := make([]string, 0, core.NumHeuristics+2)
	out = append(out, heuristicLabels...)
	return append(out, byLoopPredictor, byDefault)
}

// stageSpanName returns the constant span name for a stage so the hot
// path does not concatenate per request.
func stageSpanName(name string) string {
	switch name {
	case stageCompile:
		return "stage." + stageCompile
	case stageOptimize:
		return "stage." + stageOptimize
	case stageAnalyze:
		return "stage." + stageAnalyze
	case stagePredict:
		return "stage." + stagePredict
	case stageExecute:
		return "stage." + stageExecute
	case stageScore:
		return "stage." + stageScore
	case stageCompare:
		return "stage." + stageCompare
	case stageShard:
		return "stage." + stageShard
	}
	return "stage." + name
}

// stageFaultName returns the constant faultpoint / panic-isolation name
// for a stage ("service.<stage>"), again avoiding per-request concats.
func stageFaultName(name string) string {
	switch name {
	case stageCompile:
		return "service." + stageCompile
	case stageOptimize:
		return "service." + stageOptimize
	case stageAnalyze:
		return "service." + stageAnalyze
	case stagePredict:
		return "service." + stagePredict
	case stageExecute:
		return "service." + stageExecute
	case stageScore:
		return "service." + stageScore
	case stageCompare:
		return "service." + stageCompare
	case stageShard:
		return "service." + stageShard
	}
	return "service." + name
}

func newMetrics(start time.Time) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg:       reg,
		start:     start,
		requests:  reg.Counter("ballarus_requests_total", "Predict calls accepted."),
		inFlight:  reg.Gauge("ballarus_in_flight_requests", "Predict calls currently executing."),
		queued:    reg.Gauge("ballarus_queued_requests", "Predict calls waiting for a worker slot."),
		completed: reg.Counter("ballarus_requests_completed_total", "Predict calls that returned a result."),
		errors:    reg.Counter("ballarus_request_errors_total", "Predict calls that returned an error."),
		canceled:  reg.Counter("ballarus_requests_canceled_total", "Errors that were cancellations or timeouts."),
		shed:      reg.Counter("ballarus_requests_shed_total", "Requests rejected by admission control or an open breaker."),
		panics:    reg.Counter("ballarus_stage_panics_total", "Panics recovered inside pipeline stages."),
		retries:   reg.Counter("ballarus_stage_retries_total", "Stage attempts retried after a transient failure."),
		runHits:   reg.Counter("ballarus_run_cache_total", "Whole-pipeline run cache outcomes.", "result", "hit"),
		runMisses: reg.Counter("ballarus_run_cache_total", "Whole-pipeline run cache outcomes.", "result", "miss"),
		deadline: reg.Histogram("ballarus_request_deadline_seconds",
			"Remaining deadline when a request enters the pipeline — how much budget clients (or the gateway's X-Deadline-Ms) actually grant.",
			obs.DurationBuckets),
		stages: map[string]*stageMetrics{},

		breakerTransitions: map[string]*obs.Counter{},
		poolRestarts:       reg.Counter("ballarus_watchdog_restarts_total", "Worker-pool restarts after a detected wedge."),
		snapshotWrites:     reg.Counter("ballarus_snapshot_writes_total", "Durable snapshots written."),
		snapshotErrors:     reg.Counter("ballarus_snapshot_errors_total", "Durable snapshot writes that failed."),
		journalAppends:     reg.Counter("ballarus_journal_appends_total", "Request recipes appended to the journal."),
		recSnapEntries:     reg.Gauge("ballarus_recovered_snapshot_entries", "Intact snapshot entries at the last boot."),
		recSnapSkipped:     reg.Gauge("ballarus_recovered_snapshot_skipped", "Snapshot entries dropped at the last boot (corruption, torn tail, unknown section, failed replay)."),
		recJrnlReplayed:    reg.Gauge("ballarus_recovered_journal_records", "Journal records rewarmed at the last boot."),
		recJrnlSkipped:     reg.Gauge("ballarus_recovered_journal_skipped", "Journal records dropped at the last boot."),
		recWarmed:          reg.Gauge("ballarus_recovered_requests", "Requests replayed into the caches at the last boot."),

		attrPred: map[string]*obs.Counter{},
		attrMiss: map[string]*obs.Counter{},
		classDyn: map[core.Class]*obs.Counter{},
		predMiss: map[string]*obs.Counter{},
		dynTotal: reg.Counter("ballarus_dynamic_branches_total", "Dynamic conditional branches scored across served requests."),

		cmpMiss: map[string]*obs.Counter{},
		cmpDyn:  reg.Counter("ballarus_compare_branches_total", "Dynamic conditional branches raced through computed comparisons (cache hits excluded)."),
		cmpH2P:  map[string]*obs.Counter{},
	}
	const stageHelp = "Pipeline stage "
	for _, name := range stageOrder {
		m.stages[name] = &stageMetrics{
			count:  reg.Counter("ballarus_stage_runs_total", stageHelp+"executions (including cache hits).", "stage", name),
			errors: reg.Counter("ballarus_stage_errors_total", stageHelp+"failures.", "stage", name),
			hits:   reg.Counter("ballarus_stage_cache_total", stageHelp+"cache outcomes.", "stage", name, "result", "hit"),
			misses: reg.Counter("ballarus_stage_cache_total", stageHelp+"cache outcomes.", "stage", name, "result", "miss"),
			lat:    reg.Histogram("ballarus_stage_duration_seconds", stageHelp+"latency.", obs.DurationBuckets, "stage", name),
		}
	}
	m.stages[stageCompile].cacheable = true
	m.stages[stageAnalyze].cacheable = true
	m.stages[stageExecute].cacheable = true
	m.stages[stageCompare].cacheable = true
	m.stages[stageShard].cacheable = true

	for _, stage := range []string{stageCompile, stageAnalyze, stageExecute, stageCompare, stageShard} {
		for _, st := range breakerStates {
			m.breakerTransitions[stage+"\xff"+stateLabel(st)] = reg.Counter(
				"ballarus_breaker_transitions_total", "Circuit breaker state transitions.",
				"stage", stage, "to", stateLabel(st))
		}
	}

	for _, rule := range attributionLabels() {
		m.attrPred[rule] = reg.Counter("ballarus_heuristic_predicted_total",
			"Dynamic branch executions whose prediction was decided by this rule.", "heuristic", rule)
		m.attrMiss[rule] = reg.Counter("ballarus_heuristic_misses_total",
			"Dynamic branch executions this rule mispredicted.", "heuristic", rule)
	}
	m.classDyn[core.LoopBranch] = reg.Counter("ballarus_branch_executions_total",
		"Dynamic branch executions by branch class.", "class", "loop")
	m.classDyn[core.NonLoop] = reg.Counter("ballarus_branch_executions_total",
		"Dynamic branch executions by branch class.", "class", "non_loop")
	for _, p := range predictorOrder {
		m.predMiss[p] = reg.Counter("ballarus_predictor_misses_total",
			"Dynamic mispredictions per predictor, across served requests.", "predictor", p)
		miss := m.predMiss[p]
		reg.GaugeFunc("ballarus_predictor_miss_rate_pct",
			"Aggregate miss rate per predictor, percent of dynamic branches (paper's miss-vs-perfect view).",
			func() float64 {
				if dyn := m.dynTotal.Value(); dyn > 0 {
					return 100 * float64(miss.Value()) / float64(dyn)
				}
				return 0
			}, "predictor", p)
	}
	for _, backend := range compareBackends() {
		m.cmpMiss[backend] = reg.Counter("ballarus_compare_predictor_misses_total",
			"Dynamic mispredictions per tournament backend, across computed comparisons.", "predictor", backend)
		miss := m.cmpMiss[backend]
		reg.GaugeFunc("ballarus_compare_miss_rate_pct",
			"Aggregate tournament miss rate per backend, percent of raced dynamic branches.",
			func() float64 {
				if dyn := m.cmpDyn.Value(); dyn > 0 {
					return 100 * float64(miss.Value()) / float64(dyn)
				}
				return 0
			}, "predictor", backend)
	}
	for _, verdict := range []string{"static_beaten", "history_beaten"} {
		m.cmpH2P[verdict] = reg.Counter("ballarus_compare_h2p_branches_total",
			"Hard-to-predict branches classified across computed comparisons.", "verdict", verdict)
	}
	reg.GaugeFunc("ballarus_uptime_seconds", "Seconds since the service started.",
		func() float64 { return time.Since(m.start).Seconds() })
	return m
}

// compareBackends lists every entrant label a comparison can report:
// the static pair plus the full dynpred registry.
func compareBackends() []string {
	return append([]string{CompareStatic, ComparePerfect}, dynpred.Names()...)
}

// observeCompare accumulates one computed comparison's outcomes. Called
// from the compare cache's compute path only, so cache hits do not
// double-count.
func (m *metrics) observeCompare(res *CompareResult) {
	for _, p := range res.Predictors {
		if c, ok := m.cmpMiss[p.Name]; ok {
			c.Add(p.Misses)
		}
	}
	m.cmpDyn.Add(res.DynamicBranches)
	m.cmpH2P["static_beaten"].Add(int64(len(res.H2P.StaticBeaten)))
	m.cmpH2P["history_beaten"].Add(int64(len(res.H2P.HistoryBeaten)))
}

// observeScores accumulates one scored request's aggregate predictor
// outcomes.
func (m *metrics) observeScores(heur, vote, loopRand, btfnt, perfect, dyn int64) {
	m.predMiss[predictorHeuristic].Add(heur)
	m.predMiss[predictorVote].Add(vote)
	m.predMiss[predictorLoopRand].Add(loopRand)
	m.predMiss[predictorBTFNT].Add(btfnt)
	m.predMiss[predictorPerfect].Add(perfect)
	m.dynTotal.Add(dyn)
}

// observeAttribution walks the branches of one scored request and
// charges each dynamic execution (and miss) to the rule that decided
// its prediction under the request's order.
func (m *metrics) observeAttribution(a *core.Analysis, order core.Order, p *profile.Profile) {
	for i := range a.Branches {
		b := &a.Branches[i]
		d := p.Executed(b.ID)
		if d == 0 {
			continue
		}
		m.classDyn[b.Class].Add(d)
		pred, by, ok := b.PredictWith(order)
		rule := byDefault
		switch {
		case b.Class == core.LoopBranch:
			rule = byLoopPredictor
		case ok:
			rule = heuristicLabels[by]
		}
		m.attrPred[rule].Add(d)
		m.attrMiss[rule].Add(p.Misses(b.ID, pred.Taken()))
	}
}

// timed runs fn as the named stage, recording latency and cache outcome.
func timed[V any](m *metrics, name string, fn func() (V, bool, error)) (V, bool, error) {
	start := time.Now()
	v, hit, err := fn()
	m.stages[name].record(time.Since(start), hit, err)
	return v, hit, err
}

// timedCtx is timed plus a span on ctx's active trace (free when the
// request carries no trace).
func timedCtx[V any](ctx context.Context, m *metrics, name string, fn func() (V, bool, error)) (V, bool, error) {
	sp := obs.StartSpan(ctx, stageSpanName(name))
	v, hit, err := timed(m, name, fn)
	sp.End(err)
	return v, hit, err
}

func (m *metrics) snapshot(programs, analyses, runs, compares cacheSnapshot, breakers []resilience.BreakerStats, watchdog WatchdogStats, durability DurabilityStats) Stats {
	s := Stats{
		Requests:  m.requests.Value(),
		InFlight:  m.inFlight.Value(),
		Queued:    m.queued.Value(),
		Completed: m.completed.Value(),
		Errors:    m.errors.Value(),
		Canceled:  m.canceled.Value(),
		Shed:      m.shed.Value(),
		Panics:    m.panics.Value(),
		Retries:   m.retries.Value(),
		RunHits:   m.runHits.Value(),
		RunMisses: m.runMisses.Value(),
		Programs:  programs.entries,
		Analyses:  analyses.entries,
		Runs:      runs.entries,
		Compares:  compares.entries,
		Evictions: programs.evictions + analyses.evictions + runs.evictions + compares.evictions,
		Uptime:    time.Since(m.start),
		Caches: []CacheStats{
			{Name: "programs", Entries: programs.entries, Evictions: programs.evictions, Capacity: programs.capacity},
			{Name: "analyses", Entries: analyses.entries, Evictions: analyses.evictions, Capacity: analyses.capacity},
			{Name: "runs", Entries: runs.entries, Evictions: runs.evictions, Capacity: runs.capacity},
			{Name: "compares", Entries: compares.entries, Evictions: compares.evictions, Capacity: compares.capacity},
		},
		Breakers:   breakers,
		Watchdog:   watchdog,
		Durability: durability,
	}
	for _, name := range stageOrder {
		st := m.stages[name]
		snap := StageStats{
			Name:        name,
			Count:       st.count.Value(),
			Errors:      st.errors.Value(),
			TotalTime:   time.Duration(st.nanos.Load()),
			CacheHits:   st.hits.Value(),
			CacheMisses: st.misses.Value(),
		}
		// Guard the mean: a stage that never ran has no mean latency.
		if snap.Count > 0 {
			snap.MeanTime = snap.TotalTime / time.Duration(snap.Count)
		}
		s.Stages = append(s.Stages, snap)
	}
	return s
}
