package service

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"ballarus/internal/obs"
)

const obsTestSrc = `int main() { int i; int s = 0; for (i = 0; i < 2000; i++) { if (i % 3 == 0) { s += i; } else { s -= 1; } } printi(s); return 0; }`

// TestPredictTraceSpans: a trace started above the service collects a
// span for admission and for every pipeline stage, with cache-outcome
// attributes.
func TestPredictTraceSpans(t *testing.T) {
	tracer := obs.NewTracer(8, nil)
	s := New(WithTracer(tracer))
	defer s.Close()
	if s.Tracer() != tracer {
		t.Fatal("Tracer() did not return the installed tracer")
	}
	ctx, act := tracer.Start(context.Background(), "predict")
	if _, err := s.Predict(ctx, Request{Source: obsTestSrc}); err != nil {
		t.Fatal(err)
	}
	act.End(nil)
	traces := tracer.Last(1)
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	spans := map[string]obs.SpanRecord{}
	for _, sp := range traces[0].Spans {
		spans[sp.Name] = sp
	}
	for _, want := range []string{
		"admit", "stage.compile", "stage.analyze",
		"stage.predict", "stage.execute", "stage.score",
	} {
		if _, ok := spans[want]; !ok {
			t.Errorf("trace missing span %q (have %v)", want, names(traces[0].Spans))
		}
	}
	if got := spans["stage.compile"].Attrs["cache"]; got != "miss" {
		t.Errorf("cold compile span cache attr = %q, want miss", got)
	}

	// A second identical request is a cache hit and says so.
	ctx2, act2 := tracer.Start(context.Background(), "predict")
	if _, err := s.Predict(ctx2, Request{Source: obsTestSrc}); err != nil {
		t.Fatal(err)
	}
	act2.End(nil)
	warm := tracer.Last(1)[0]
	for _, sp := range warm.Spans {
		if sp.Name == "stage.execute" && sp.Attrs["cache"] != "hit" {
			t.Errorf("warm execute span cache attr = %q, want hit", sp.Attrs["cache"])
		}
	}
}

func names(spans []obs.SpanRecord) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}

// TestTracePropagatesThroughFan: spans opened inside Fan workers (other
// goroutines) land in the trace attached to the parent context.
func TestTracePropagatesThroughFan(t *testing.T) {
	tracer := obs.NewTracer(4, nil)
	s := New(WithTracer(tracer))
	defer s.Close()
	ctx, act := tracer.Start(context.Background(), "fanout")
	err := Fan(ctx, 4, 8, func(ctx context.Context, i int) error {
		sp := obs.StartSpan(ctx, "item")
		defer sp.End(nil)
		// Every other item drives the full pipeline, so stage spans from
		// concurrent workers interleave into the same trace.
		if i%2 == 0 {
			src := fmt.Sprintf("int main() { printi(%d); return 0; }", i)
			_, perr := s.Predict(ctx, Request{Source: src})
			return perr
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	act.End(nil)
	traces := tracer.Last(1)
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	items, stageSpans := 0, 0
	for _, sp := range traces[0].Spans {
		switch {
		case sp.Name == "item":
			items++
		case strings.HasPrefix(sp.Name, "stage."):
			stageSpans++
		}
	}
	if items != 8 {
		t.Errorf("got %d item spans, want 8", items)
	}
	if stageSpans < 4*4 {
		t.Errorf("got %d stage spans across fan workers, want >= 16", stageSpans)
	}
}

// TestServiceMetricsExposition: the registry serves a lint-clean
// Prometheus exposition whose counters agree with Stats() and carry
// per-stage histograms and the paper's per-heuristic accuracy counters.
func TestServiceMetricsExposition(t *testing.T) {
	s := New()
	defer s.Close()
	ctx := context.Background()
	for i := 0; i < 2; i++ { // second round hits every cache
		if _, err := s.Predict(ctx, Request{Source: obsTestSrc, Optimize: true}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if problems := obs.Lint(bytes.NewReader(buf.Bytes())); len(problems) != 0 {
		t.Fatalf("exposition lint: %v", problems)
	}
	exp, err := obs.ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	value := func(name string, labels map[string]string) float64 {
		t.Helper()
		v, ok := exp.Value(name, labels)
		if !ok {
			t.Fatalf("metric %s%v not exported", name, labels)
		}
		return v
	}
	if got := value("ballarus_requests_total", nil); int64(got) != st.Requests {
		t.Errorf("requests_total = %v, stats say %d", got, st.Requests)
	}
	if got := value("ballarus_requests_completed_total", nil); int64(got) != st.Completed {
		t.Errorf("completed_total = %v, stats say %d", got, st.Completed)
	}
	if got := value("ballarus_run_cache_total", map[string]string{"result": "hit"}); int64(got) != st.RunHits {
		t.Errorf("run_cache_total{hit} = %v, stats say %d", got, st.RunHits)
	}
	for _, stage := range stageOrder {
		want := st.Stage(stage).Count
		if got := value("ballarus_stage_runs_total", map[string]string{"stage": stage}); int64(got) != want {
			t.Errorf("stage_runs_total{%s} = %v, stats say %d", stage, got, want)
		}
		if got := value("ballarus_stage_duration_seconds_count", map[string]string{"stage": stage}); int64(got) != want {
			t.Errorf("stage_duration_seconds_count{%s} = %v, want %d", stage, got, want)
		}
	}
	// Domain metrics: every dynamic branch is attributed to exactly one
	// rule, and the per-class split covers the same total.
	dyn := value("ballarus_dynamic_branches_total", nil)
	if dyn <= 0 {
		t.Fatalf("dynamic_branches_total = %v, want > 0", dyn)
	}
	if got := exp.Sum("ballarus_heuristic_predicted_total"); got != dyn {
		t.Errorf("sum(heuristic_predicted_total) = %v, want %v", got, dyn)
	}
	if got := exp.Sum("ballarus_branch_executions_total"); got != dyn {
		t.Errorf("sum(branch_executions_total) = %v, want %v", got, dyn)
	}
	if miss := exp.Sum("ballarus_heuristic_misses_total"); miss <= 0 || miss >= dyn {
		t.Errorf("sum(heuristic_misses_total) = %v, want in (0, %v)", miss, dyn)
	}
	for _, p := range predictorOrder {
		rate := value("ballarus_predictor_miss_rate_pct", map[string]string{"predictor": p})
		if rate < 0 || rate > 100 {
			t.Errorf("miss_rate_pct{%s} = %v, want within [0, 100]", p, rate)
		}
	}
	// The heuristic combiner must beat or match the perfect floor.
	hm := value("ballarus_predictor_misses_total", map[string]string{"predictor": "heuristic"})
	pm := value("ballarus_predictor_misses_total", map[string]string{"predictor": "perfect"})
	if pm > hm {
		t.Errorf("perfect misses %v > heuristic misses %v", pm, hm)
	}
	if got := value("ballarus_breaker_state", map[string]string{"stage": "execute"}); got != 0 {
		t.Errorf("breaker_state{execute} = %v, want 0 (closed)", got)
	}
}

// TestFreshServiceExpositionGuards: a service that has served nothing
// exposes zeros — not NaN — for every derived rate, and Stats() means
// stay zero-guarded.
func TestFreshServiceExpositionGuards(t *testing.T) {
	s := New()
	defer s.Close()
	var buf bytes.Buffer
	if err := s.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Fatalf("fresh exposition contains NaN:\n%s", buf.String())
	}
	if problems := obs.Lint(bytes.NewReader(buf.Bytes())); len(problems) != 0 {
		t.Fatalf("fresh exposition lint: %v", problems)
	}
	for _, st := range s.Stats().Stages {
		if st.MeanTime != 0 {
			t.Errorf("stage %s: MeanTime %v with no runs", st.Name, st.MeanTime)
		}
	}
}

// BenchmarkPredictWarmTraced measures the cached-hit path with a live
// trace attached — the overhead budget for the observability layer.
func BenchmarkPredictWarmTraced(b *testing.B) {
	src := `int main() { int i; int s = 0; for (i = 0; i < 500000; i++) { s += i % 9; } printi(s); return 0; }`
	tracer := obs.NewTracer(256, nil)
	s := New(WithTracer(tracer))
	defer s.Close()
	ctx := context.Background()
	if _, err := s.Predict(ctx, Request{Source: src}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tctx, act := tracer.Start(ctx, "bench")
		if _, err := s.Predict(tctx, Request{Source: src}); err != nil {
			b.Fatal(err)
		}
		act.End(nil)
	}
}
