// Package service runs the full ballarus pipeline — compile, optimize,
// analyze, predict, execute, score — as a concurrent, cached prediction
// service. It is the throughput layer the CLI tools, the HTTP server
// (cmd/blserve), and the evaluation harness share:
//
//   - bounded concurrency: at most Workers requests execute at once, the
//     rest queue (respecting their contexts);
//   - content-hash caching with single-flight deduplication: compiled
//     programs, analyses, and deterministic run results are keyed by a
//     SHA-256 of their inputs, and concurrent requests for the same key
//     share one computation;
//   - observability: per-stage latency, throughput, and cache-hit
//     counters, exposed as a Stats snapshot;
//   - cancellation: context deadlines and cancellation are honored
//     between stages and interrupt the interpreter mid-run;
//   - resilience: every error is classified into the typed taxonomy of
//     internal/resilience, each stage runs behind panic isolation, a
//     retry policy for transient failures, and a circuit breaker, and
//     admission control sheds load once the queue is full.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ballarus/internal/core"
	"ballarus/internal/durable"
	"ballarus/internal/interp"
	"ballarus/internal/minic"
	"ballarus/internal/mir"
	"ballarus/internal/obs"
	"ballarus/internal/opt"
	"ballarus/internal/profile"
	"ballarus/internal/resilience"
	"ballarus/internal/suite"
	"ballarus/internal/tenant"
)

// Option configures a Service.
type Option func(*config)

type config struct {
	workers     int
	timeout     time.Duration
	analysis    core.Options
	queueDepth  int
	cacheSize   int
	budget      int64
	retry       resilience.RetryPolicy
	breaker     resilience.BreakerPolicy
	durableDir  string
	snapEvery   time.Duration
	journalSync time.Duration
	watchdog    time.Duration
	tracer      *obs.Tracer
	shardRunner ShardRunner
	tenants     *tenant.Registry
}

// WithWorkers bounds the number of concurrently executing requests.
// Further requests queue until a slot frees. n <= 0 means GOMAXPROCS.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithRequestTimeout applies a default per-request deadline. A tighter
// deadline on the request's own context still wins. 0 means none.
func WithRequestTimeout(d time.Duration) Option { return func(c *config) { c.timeout = d } }

// WithAnalysisOptions sets the predictor options used for every request.
func WithAnalysisOptions(o core.Options) Option { return func(c *config) { c.analysis = o } }

// WithQueueDepth bounds how many requests may wait for a worker slot.
// Requests beyond the bound are shed immediately with an
// ErrOverload-classified ErrBusy instead of queueing. n <= 0 means
// unbounded (queue until the context expires).
func WithQueueDepth(n int) Option { return func(c *config) { c.queueDepth = n } }

// WithCacheSize bounds each of the result caches (programs, analyses,
// runs, compares) to n entries with LRU eviction, so unbounded distinct
// inputs cannot grow memory without limit. n <= 0 means unbounded.
func WithCacheSize(n int) Option { return func(c *config) { c.cacheSize = n } }

// WithBudget sets the default interpreter instruction budget applied to
// requests that do not set one (and whose benchmark does not carry its
// own). n <= 0 keeps the interpreter default (64M instructions).
func WithBudget(n int64) Option { return func(c *config) { c.budget = n } }

// WithRetryPolicy replaces the per-stage retry policy for transient
// failures. The zero policy disables retries.
func WithRetryPolicy(p resilience.RetryPolicy) Option { return func(c *config) { c.retry = p } }

// WithBreakerPolicy replaces the per-stage circuit breaker policy.
// A Threshold <= 0 disables the breakers.
func WithBreakerPolicy(p resilience.BreakerPolicy) Option { return func(c *config) { c.breaker = p } }

// WithTracer replaces the service's tracer (the ring buffer behind
// /debug/traces). nil restores the default 256-trace tracer.
func WithTracer(t *obs.Tracer) Option { return func(c *config) { c.tracer = t } }

// Service is a concurrent, cached prediction pipeline. Create one with
// New and share it: all methods are safe for concurrent use.
type Service struct {
	cfg      config
	programs *flightCache[*mir.Program]
	analyses *flightCache[*core.Analysis]
	runs     *flightCache[*interp.Result]
	compares *flightCache[*CompareResult]
	shards   *flightCache[[]byte]
	met      *metrics
	tracer   *obs.Tracer
	retry    resilience.RetryPolicy
	breakers map[string]*resilience.Breaker

	// The worker pool is a buffered channel used as a counting
	// semaphore. The watchdog can swap in a fresh pool when the current
	// one is wedged; semSwapped is closed on each swap so queued waiters
	// migrate instead of waiting on a pool nobody will ever drain.
	semMu      sync.Mutex
	sem        chan struct{}
	semSwapped chan struct{}

	dur        *durability
	durInitErr error
	recovering atomic.Bool
	watchdog   *durable.Watchdog
	closeOnce  sync.Once
}

// New creates a Service.
func New(opts ...Option) *Service {
	cfg := config{
		workers: runtime.GOMAXPROCS(0),
		retry:   resilience.DefaultRetry,
		breaker: resilience.DefaultBreaker,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers <= 0 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	s := &Service{
		cfg:        cfg,
		sem:        make(chan struct{}, cfg.workers),
		semSwapped: make(chan struct{}),
		programs:   newFlightCache[*mir.Program](cfg.cacheSize),
		analyses:   newFlightCache[*core.Analysis](cfg.cacheSize),
		runs:       newFlightCache[*interp.Result](cfg.cacheSize),
		compares:   newFlightCache[*CompareResult](cfg.cacheSize),
		shards:     newFlightCache[[]byte](cfg.cacheSize),
		met:        newMetrics(time.Now()),
		tracer:     cfg.tracer,
	}
	if s.tracer == nil {
		s.tracer = obs.NewTracer(256, nil)
	}
	// Breakers report every state transition into the metrics, chaining
	// any hook the caller's policy already carries.
	bp := cfg.breaker
	userHook := bp.OnTransition
	bp.OnTransition = func(name string, from, to resilience.BreakerState) {
		s.met.breakerTransition(name, to)
		if userHook != nil {
			userHook(name, from, to)
		}
	}
	s.breakers = map[string]*resilience.Breaker{
		stageCompile: resilience.NewBreaker(stageCompile, bp),
		stageAnalyze: resilience.NewBreaker(stageAnalyze, bp),
		stageExecute: resilience.NewBreaker(stageExecute, bp),
		stageCompare: resilience.NewBreaker(stageCompare, bp),
		stageShard:   resilience.NewBreaker(stageShard, bp),
	}
	s.retry = cfg.retry
	onRetry := cfg.retry.OnRetry
	s.retry.OnRetry = func(attempt int, err error) {
		s.met.retries.Inc()
		if onRetry != nil {
			onRetry(attempt, err)
		}
	}
	if cfg.durableDir != "" {
		s.durInitErr = s.initDurability()
	}
	if cfg.watchdog > 0 {
		s.watchdog = durable.NewWatchdog(cfg.watchdog, 0, s.wedgeProbe, s.restartWorkers)
		s.watchdog.Start()
	}
	if cfg.tenants != nil {
		s.met.seedTenantFamilies()
	}
	s.wireFuncMetrics()
	return s
}

// wireFuncMetrics registers exposition-time closures over state that
// lives outside the metrics struct: cache sizes, breaker states, the
// journal's fsync count, and the warm set. Values are read when
// /metrics is scraped, never on the hot path.
func (s *Service) wireFuncMetrics() {
	reg := s.met.reg
	for _, c := range []struct {
		name  string
		stats func() cacheSnapshot
	}{
		{"programs", s.programs.stats},
		{"analyses", s.analyses.stats},
		{"runs", s.runs.stats},
		{"compares", s.compares.stats},
		{"shards", s.shards.stats},
	} {
		st := c.stats
		reg.GaugeFunc("ballarus_cache_entries", "Entries currently held per result cache.",
			func() float64 { return float64(st().entries) }, "cache", c.name)
		reg.GaugeFunc("ballarus_cache_capacity", "Configured bound per result cache (0 = unbounded).",
			func() float64 { return float64(st().capacity) }, "cache", c.name)
		reg.CounterFunc("ballarus_cache_evictions_total", "LRU evictions per result cache.",
			func() float64 { return float64(st().evictions) }, "cache", c.name)
	}
	for _, stage := range []string{stageCompile, stageAnalyze, stageExecute, stageCompare, stageShard} {
		b := s.breakers[stage]
		reg.GaugeFunc("ballarus_breaker_state", "Circuit breaker state (0 closed, 1 open, 2 half-open).",
			func() float64 { return float64(b.State()) }, "stage", stage)
		reg.CounterFunc("ballarus_breaker_opens_total", "Times the breaker opened.",
			func() float64 { return float64(b.Stats().Opens) }, "stage", stage)
		reg.CounterFunc("ballarus_breaker_rejected_total", "Requests rejected by the breaker.",
			func() float64 { return float64(b.Stats().Rejected) }, "stage", stage)
	}
	reg.GaugeFunc("ballarus_workers", "Configured worker slots.",
		func() float64 { return float64(s.cfg.workers) })
	reg.CounterFunc("ballarus_journal_syncs_total", "Journal fsync batches written since boot.",
		func() float64 {
			if s.dur == nil {
				return 0
			}
			return float64(s.dur.journal.Syncs())
		})
	reg.GaugeFunc("ballarus_warm_entries", "Warm-set recipes the next snapshot will persist.",
		func() float64 {
			if s.dur == nil {
				return 0
			}
			return float64(s.dur.warm.len())
		})
}

// Metrics returns the service's metric registry, ready to serve as a
// Prometheus text exposition. The registry is live: scraping it reads
// the same counters Stats() snapshots.
func (s *Service) Metrics() *obs.Registry { return s.met.reg }

// Tracer returns the service's tracer — blserve starts a trace per
// request against it and serves its ring buffer at /debug/traces.
func (s *Service) Tracer() *obs.Tracer { return s.tracer }

// curSem returns the current worker pool and the channel closed when it
// is swapped out.
func (s *Service) curSem() (chan struct{}, <-chan struct{}) {
	s.semMu.Lock()
	defer s.semMu.Unlock()
	return s.sem, s.semSwapped
}

// restartWorkers swaps in a fresh worker pool, stranding whatever holds
// slots in the old one. Wedged computations keep their goroutines (they
// release into the abandoned channel, which is then collected) but the
// service regains its full concurrency immediately.
func (s *Service) restartWorkers() {
	s.semMu.Lock()
	old := s.semSwapped
	s.sem = make(chan struct{}, s.cfg.workers)
	s.semSwapped = make(chan struct{})
	s.semMu.Unlock()
	close(old)
	s.met.poolRestarts.Add(1)
}

// wedgeProbe feeds the watchdog: the pool is wedge-able when every
// worker slot is held and requests are queued behind them; progress is
// any request finishing, either way.
func (s *Service) wedgeProbe() (int64, bool) {
	progress := s.met.completed.Value() + s.met.errors.Value()
	busy := s.met.inFlight.Value() >= int64(s.cfg.workers) && s.met.queued.Value() > 0
	return progress, busy
}

// Request describes one prediction job. Exactly one of Source or
// Benchmark must be set.
type Request struct {
	// Source is minic source to compile.
	Source string
	// Benchmark names a suite benchmark to use instead of Source.
	Benchmark string
	// Dataset selects the benchmark dataset feeding Input (Benchmark
	// requests only; Input overrides it when non-nil).
	Dataset int
	// CompileOpts control code generation for Source requests.
	CompileOpts minic.Options
	// Optimize runs the MIR optimizer between compile and analyze.
	Optimize bool
	// Order is the heuristic priority order; an invalid (e.g. zero)
	// order means the paper's default.
	Order core.Order
	// Input is the program's input stream.
	Input []int64
	// Budget caps executed instructions; 0 means the benchmark's budget
	// or the interpreter default.
	Budget int64
	// Seed is the interpreter's rand() seed.
	Seed int64
}

// Result is the outcome of one prediction job. Results may be shared
// between requests that hit the cache, so treat every field as read-only.
type Result struct {
	// Name echoes the benchmark name, or "<source>" for source requests.
	Name string
	// Analysis and Profile expose the underlying pipeline artifacts for
	// callers that drill into per-branch detail.
	Analysis *core.Analysis
	Profile  *profile.Profile
	// Predictions is the per-branch prediction vector under Order.
	Predictions []core.Prediction

	StaticBranches  int
	DynamicBranches int64
	Steps           int64
	ExitCode        int64
	Output          string

	// Scores over all dynamic branches, in the paper's miss/perfect
	// notation: the prioritized heuristic combiner, the voting combiner,
	// and the loop+random and backward-taken/forward-not-taken baselines.
	Heuristic profile.Rate
	Vote      profile.Rate
	LoopRand  profile.Rate
	BTFNT     profile.Rate

	// Cache outcome of this particular request.
	ProgramCached  bool
	AnalysisCached bool
	RunCached      bool
	Elapsed        time.Duration
}

// ErrBusy is returned when a request was shed: the queue was full, or
// the request's context expired while queued. It classifies as
// resilience.ErrOverload.
var ErrBusy = errors.New("service: request shed while queued")

// Stats returns a point-in-time snapshot of the service counters,
// including per-stage breaker states, cache eviction counts, watchdog
// restarts, and durability/recovery state.
func (s *Service) Stats() Stats {
	wd := WatchdogStats{Enabled: s.watchdog != nil, Restarts: s.met.poolRestarts.Value()}
	dur := DurabilityStats{
		Enabled:         s.dur != nil,
		SnapshotEntries: s.met.recSnapEntries.Value(),
		SnapshotSkipped: s.met.recSnapSkipped.Value(),
		JournalReplayed: s.met.recJrnlReplayed.Value(),
		JournalSkipped:  s.met.recJrnlSkipped.Value(),
		Warmed:          s.met.recWarmed.Value(),
		SnapshotWrites:  s.met.snapshotWrites.Value(),
		SnapshotErrors:  s.met.snapshotErrors.Value(),
		JournalAppends:  s.met.journalAppends.Value(),
	}
	if s.dur != nil {
		dur.WarmEntries = s.dur.warm.len()
	}
	st := s.met.snapshot(
		s.programs.stats(), s.analyses.stats(), s.runs.stats(), s.compares.stats(),
		[]resilience.BreakerStats{
			s.breakers[stageCompile].Stats(),
			s.breakers[stageAnalyze].Stats(),
			s.breakers[stageExecute].Stats(),
			s.breakers[stageCompare].Stats(),
			s.breakers[stageShard].Stats(),
		}, wd, dur)
	sh := s.shards.stats()
	st.Caches = append(st.Caches, CacheStats{Name: "shards", Entries: sh.entries, Evictions: sh.evictions, Capacity: sh.capacity})
	st.Evictions += sh.evictions
	return st
}

// resolve normalizes a request: benchmark lookup, defaulted input,
// budget, and order. Failures classify as invalid input.
func (s *Service) resolve(req *Request) error {
	if (req.Source == "") == (req.Benchmark == "") {
		return resilience.Invalid(errors.New("service: exactly one of Source or Benchmark must be set"))
	}
	if req.Benchmark != "" {
		b := suite.Get(req.Benchmark)
		if b == nil {
			return resilience.Invalid(fmt.Errorf("service: no benchmark %q", req.Benchmark))
		}
		if req.Dataset < 0 || req.Dataset >= len(b.Data) {
			return resilience.Invalid(fmt.Errorf("service: %s has datasets 0..%d", b.Name, len(b.Data)-1))
		}
		req.Source = b.Source
		if req.Input == nil {
			req.Input = b.Data[req.Dataset].Input
		}
		if req.Budget == 0 {
			req.Budget = b.Budget
		}
	}
	if req.Budget == 0 {
		req.Budget = s.cfg.budget
	}
	if !req.Order.Valid() {
		req.Order = core.DefaultOrder
	}
	return nil
}

// keys derives the content-hash cache keys for a resolved request.
func (req *Request) keys() (progKey, analysisKey, runKey string) {
	progKey = newHasher().
		str(req.Source).
		bool(req.CompileOpts.SpillLocals).
		bool(req.CompileOpts.NoJumpTables).
		bool(req.Optimize).
		sum()
	return progKey,
		newHasher().str(progKey).str("analysis").sum(),
		newHasher().str(progKey).str("run").i64s(req.Input).i64(req.Budget).i64(req.Seed).sum()
}

// Predict runs the pipeline for one request, deduplicating and caching
// shared work. It blocks while the service is saturated (up to the
// configured queue depth — beyond it requests are shed immediately);
// ctx cancels both queueing and every pipeline stage. Every returned
// error is classified into the resilience taxonomy: errors.Is against
// exactly one of resilience.ErrInvalidInput, ErrResourceExhausted,
// ErrOverload, ErrTimeout, or ErrInternal holds.
func (s *Service) Predict(ctx context.Context, req Request) (*Result, error) {
	s.met.requests.Add(1)
	start := time.Now()
	if s.cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.timeout)
		defer cancel()
	}
	done, err := s.admitTraced(ctx)
	if err != nil {
		s.met.errors.Add(1)
		return nil, err
	}
	defer done()
	s.met.inFlight.Add(1)
	defer s.met.inFlight.Add(-1)

	res, err := s.predict(ctx, req)
	if err != nil {
		s.met.errors.Add(1)
		if isTransient(err) {
			s.met.canceled.Add(1)
		}
		return nil, err
	}
	res.Elapsed = time.Since(start)
	s.met.completed.Add(1)
	return res, nil
}

// admitTraced wraps tenant-quota and worker-slot admission in an
// "admit" span and observes the remaining deadline. The effective
// deadline — the tighter of the client's propagated X-Deadline-Ms and
// the service timeout — is an input worth watching: a fleet whose
// granted budgets shrink is about to start timing out. On success the
// returned function releases both the worker slot and the tenant's
// in-flight unit; call it exactly once when the request finishes.
func (s *Service) admitTraced(ctx context.Context) (func(), error) {
	asp := obs.StartSpan(ctx, "admit")
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl)
		s.met.deadline.Observe(remaining.Seconds())
		asp.Attr("deadline_remaining", remaining.Round(time.Millisecond).String())
	}
	id, relTenant, err := s.admitTenant(ctx)
	if id != "" {
		asp.Attr("tenant", id)
	}
	if err != nil {
		s.met.shed.Add(1)
		asp.End(err)
		return nil, err
	}
	sem, err := s.admit(ctx, id)
	asp.End(err)
	if err != nil {
		relTenant()
		return nil, err
	}
	return func() { <-sem; relTenant() }, nil
}

// admit implements admission control: take a worker slot immediately if
// one is free, otherwise queue — but only while fewer than queueDepth
// requests are already waiting. Without tenancy, requests beyond the
// depth are shed in arrival order; with tenancy, saturation sheds the
// tenants over their weighted max-min fair share first (see fairShed)
// and lets under-share tenants keep queueing up to a hard cap. Shed
// requests and queued requests whose context expires fail with
// ErrBusy, classified as overload. The returned channel is the pool
// the slot was taken from; release into exactly that channel. When the
// watchdog swaps the pool mid-wait, queued requests migrate to the
// fresh pool.
func (s *Service) admit(ctx context.Context, id string) (chan struct{}, error) {
	for {
		sem, swapped := s.curSem()
		select {
		case sem <- struct{}{}:
			return sem, nil
		default:
		}
		q := s.met.queued.Add(1)
		if d := s.cfg.queueDepth; d > 0 && q > int64(d) {
			if shed, _ := s.fairShed(id, q); shed {
				s.met.queued.Add(-1)
				s.met.shed.Add(1)
				return nil, s.shedError(id)
			}
		}
		select {
		case sem <- struct{}{}:
			s.met.queued.Add(-1)
			return sem, nil
		case <-swapped:
			s.met.queued.Add(-1)
			continue // the pool was restarted; race for a fresh slot
		case <-ctx.Done():
			s.met.queued.Add(-1)
			s.met.canceled.Add(1)
			s.met.shed.Add(1)
			return nil, resilience.Overloaded(fmt.Errorf("%w: %v", ErrBusy, ctx.Err()))
		}
	}
}

// runStage runs one failure-prone pipeline stage behind the resilience
// layer: the stage's circuit breaker decides admission, panics are
// isolated into ErrInternal with captured stacks, transient failures
// are retried per the service policy, a faultpoint named
// "service.<stage>" allows deterministic fault injection, and the
// outcome is classified into the typed taxonomy and recorded in the
// stage metrics and the breaker.
func runStage[V any](s *Service, ctx context.Context, name string, fn func() (V, bool, error)) (V, bool, error) {
	var val V
	var hit bool
	ctx, sp := obs.StartSpanCtx(ctx, stageSpanName(name))
	done, err := s.breakers[name].Allow()
	if err != nil {
		s.met.shed.Add(1)
		s.met.stages[name].record(0, false, err)
		sp.Attr("breaker", "rejected").End(err)
		return val, false, fmt.Errorf("service: %s: %w", name, err)
	}
	start := time.Now()
	attempts := 0
	fault := stageFaultName(name)
	err = s.retry.Do(ctx, func() error {
		attempts++
		var rsp *obs.Span
		if attempts > 1 {
			rsp = obs.StartSpan(ctx, "retry."+name)
		}
		stageErr := resilience.Safely(fault, func() error {
			if ferr := resilience.Faultpoint(ctx, fault); ferr != nil {
				return ferr
			}
			var ferr error
			val, hit, ferr = fn()
			return ferr
		})
		if resilience.IsPanic(stageErr) {
			s.met.panics.Add(1)
		}
		rsp.End(stageErr)
		return stageErr
	})
	err = resilience.Classify(err)
	done(resilience.Trips(err))
	s.met.stages[name].record(time.Since(start), hit, err)
	if s.met.stages[name].cacheable && err == nil {
		if hit {
			sp.Attr("cache", "hit")
		} else {
			sp.Attr("cache", "miss")
		}
	}
	if attempts > 1 {
		sp.Attr("attempts", strconv.Itoa(attempts))
	}
	sp.End(err)
	if err != nil {
		return val, false, fmt.Errorf("service: %s: %w", name, err)
	}
	return val, hit, nil
}

func (s *Service) predict(ctx context.Context, req Request) (*Result, error) {
	if err := s.resolve(&req); err != nil {
		return nil, err
	}
	progKey, analysisKey, runKey := req.keys()
	if !s.recovering.Load() {
		s.observeAccepted(&req, runKey)
	}

	// Stage 1+2: compile (and optionally optimize) the source. The cache
	// stores the post-optimizer program so the analysis cache keys align.
	// Compiler rejections are the client's fault; everything else that
	// goes wrong in a stage classifies per resilience.Classify.
	if err := ctx.Err(); err != nil {
		return nil, resilience.Classify(err)
	}
	prog, progHit, err := s.compileStage(ctx, &req, progKey)
	if err != nil {
		return nil, err
	}

	// Stage 3: Ball-Larus analysis.
	if err := ctx.Err(); err != nil {
		return nil, resilience.Classify(err)
	}
	analysis, analysisHit, err := s.analyzeStage(ctx, analysisKey, prog)
	if err != nil {
		return nil, err
	}

	// Stage 4: the prediction vector under the requested order. Cheap,
	// derived, and order-specific, so computed per request.
	if err := ctx.Err(); err != nil {
		return nil, resilience.Classify(err)
	}
	preds, _, _ := timedCtx(ctx, s.met, stagePredict, func() ([]core.Prediction, bool, error) {
		return analysis.Predictions(req.Order), false, nil
	})

	// Stage 5: execute. The interpreter is deterministic given the
	// config, so results are content-addressed like everything else.
	// Runtime faults in the program are the client's; a blown budget is
	// resource exhaustion; an interrupt caused by this request's context
	// is reported as the context's error.
	if err := ctx.Err(); err != nil {
		return nil, resilience.Classify(err)
	}
	run, runHit, err := runStage(s, ctx, stageExecute, func() (*interp.Result, bool, error) {
		r, hit, err := s.runs.do(ctx, runKey, func() (*interp.Result, error) {
			r, err := interp.Run(prog, interp.Config{
				Input:     req.Input,
				Budget:    req.Budget,
				Seed:      req.Seed,
				Interrupt: ctx.Done(),
			})
			var f *interp.Fault
			if errors.As(err, &f) {
				err = resilience.Invalid(err)
			}
			return r, err
		})
		if errors.Is(err, interp.ErrInterrupted) && ctx.Err() != nil {
			err = ctx.Err()
		}
		return r, hit, err
	})
	if err != nil {
		return nil, err
	}
	if runHit {
		s.met.runHits.Add(1)
	} else {
		s.met.runMisses.Add(1)
	}

	// Stage 6: score the predictions against the measured profile.
	res := &Result{
		Name:            req.Benchmark,
		Analysis:        analysis,
		Profile:         run.Profile,
		Predictions:     preds,
		StaticBranches:  len(analysis.Branches),
		DynamicBranches: run.Profile.Total(),
		Steps:           run.Steps,
		ExitCode:        run.ExitCode,
		Output:          run.Output,
		ProgramCached:   progHit,
		AnalysisCached:  analysisHit,
		RunCached:       runHit,
	}
	if res.Name == "" {
		res.Name = "<source>"
	}
	timedCtx(ctx, s.met, stageScore, func() (struct{}, bool, error) {
		hm, perf, dyn := scoreRaw(preds, run.Profile)
		vm, _, _ := scoreRaw(analysis.VotePredictions(core.DefaultWeights), run.Profile)
		lm, _, _ := scoreRaw(analysis.LoopRandPredictions(), run.Profile)
		bm, _, _ := scoreRaw(analysis.BTFNTPredictions(), run.Profile)
		res.Heuristic = profile.MakeRate(hm, perf, dyn)
		res.Vote = profile.MakeRate(vm, perf, dyn)
		res.LoopRand = profile.MakeRate(lm, perf, dyn)
		res.BTFNT = profile.MakeRate(bm, perf, dyn)
		s.met.observeScores(hm, vm, lm, bm, perf, dyn)
		s.met.observeAttribution(analysis, req.Order, run.Profile)
		return struct{}{}, false, nil
	})
	s.observeCompleted(&req, runKey)
	return res, nil
}

// compileStage runs (or cache-loads) compilation and optional
// optimization for a resolved request. Shared by Predict and Compare so
// the two pipelines hit one program cache.
func (s *Service) compileStage(ctx context.Context, req *Request, progKey string) (*mir.Program, bool, error) {
	return runStage(s, ctx, stageCompile, func() (*mir.Program, bool, error) {
		return s.programs.do(ctx, progKey, func() (*mir.Program, error) {
			p, err := minic.Compile(req.Source, req.CompileOpts)
			if err != nil {
				return nil, resilience.Invalid(err)
			}
			if !req.Optimize {
				return p, nil
			}
			o, _, err := timedCtx(ctx, s.met, stageOptimize, func() (*mir.Program, bool, error) {
				return opt.Program(p), false, nil
			})
			return o, err
		})
	})
}

// analyzeStage runs (or cache-loads) the Ball-Larus analysis. Shared by
// Predict and Compare.
func (s *Service) analyzeStage(ctx context.Context, analysisKey string, prog *mir.Program) (*core.Analysis, bool, error) {
	return runStage(s, ctx, stageAnalyze, func() (*core.Analysis, bool, error) {
		return s.analyses.do(ctx, analysisKey, func() (*core.Analysis, error) {
			return core.Analyze(prog, s.cfg.analysis)
		})
	})
}

// RequestKey returns the canonical content hash identifying the result
// of req: the run key (program, options, input, budget, seed) extended
// with the heuristic order, which shapes the prediction vector and
// scores. Equivalent requests — benchmark name vs. its source, omitted
// vs. explicit defaults — hash identically, so it is the right key for
// any response cache layered above the service. Resolution failures
// classify as invalid input.
func (s *Service) RequestKey(req Request) (string, error) {
	if err := s.resolve(&req); err != nil {
		return "", err
	}
	_, _, runKey := req.keys()
	h := newHasher().str(runKey).str("order")
	for _, heur := range req.Order {
		h.i64(int64(heur))
	}
	return h.sum(), nil
}

// score computes the all-branch miss rate of a prediction vector against
// a profile, in the paper's miss/perfect notation.
func score(_ *core.Analysis, preds []core.Prediction, p *profile.Profile) profile.Rate {
	return profile.MakeRate(scoreRaw(preds, p))
}

// scoreRaw tallies a prediction vector against a profile: dynamic
// mispredictions, the perfect static predictor's mispredictions, and
// the dynamic branch total.
func scoreRaw(preds []core.Prediction, p *profile.Profile) (miss, perf, dyn int64) {
	for id := range preds {
		d := p.Executed(id)
		if d == 0 {
			continue
		}
		dyn += d
		perf += p.PerfectMisses(id)
		miss += p.Misses(id, preds[id].Taken())
	}
	return miss, perf, dyn
}
