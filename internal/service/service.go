// Package service runs the full ballarus pipeline — compile, optimize,
// analyze, predict, execute, score — as a concurrent, cached prediction
// service. It is the throughput layer the CLI tools, the HTTP server
// (cmd/blserve), and the evaluation harness share:
//
//   - bounded concurrency: at most Workers requests execute at once, the
//     rest queue (respecting their contexts);
//   - content-hash caching with single-flight deduplication: compiled
//     programs, analyses, and deterministic run results are keyed by a
//     SHA-256 of their inputs, and concurrent requests for the same key
//     share one computation;
//   - observability: per-stage latency, throughput, and cache-hit
//     counters, exposed as a Stats snapshot;
//   - cancellation: context deadlines and cancellation are honored
//     between stages and interrupt the interpreter mid-run.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"ballarus/internal/core"
	"ballarus/internal/interp"
	"ballarus/internal/minic"
	"ballarus/internal/mir"
	"ballarus/internal/opt"
	"ballarus/internal/profile"
	"ballarus/internal/suite"
)

// Option configures a Service.
type Option func(*config)

type config struct {
	workers  int
	timeout  time.Duration
	analysis core.Options
}

// WithWorkers bounds the number of concurrently executing requests.
// Further requests queue until a slot frees. n <= 0 means GOMAXPROCS.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithRequestTimeout applies a default per-request deadline. A tighter
// deadline on the request's own context still wins. 0 means none.
func WithRequestTimeout(d time.Duration) Option { return func(c *config) { c.timeout = d } }

// WithAnalysisOptions sets the predictor options used for every request.
func WithAnalysisOptions(o core.Options) Option { return func(c *config) { c.analysis = o } }

// Service is a concurrent, cached prediction pipeline. Create one with
// New and share it: all methods are safe for concurrent use.
type Service struct {
	cfg      config
	sem      chan struct{}
	programs *flightCache[*mir.Program]
	analyses *flightCache[*core.Analysis]
	runs     *flightCache[*interp.Result]
	met      *metrics
}

// New creates a Service.
func New(opts ...Option) *Service {
	cfg := config{workers: runtime.GOMAXPROCS(0)}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers <= 0 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	return &Service{
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.workers),
		programs: newFlightCache[*mir.Program](),
		analyses: newFlightCache[*core.Analysis](),
		runs:     newFlightCache[*interp.Result](),
		met:      newMetrics(time.Now()),
	}
}

// Request describes one prediction job. Exactly one of Source or
// Benchmark must be set.
type Request struct {
	// Source is minic source to compile.
	Source string
	// Benchmark names a suite benchmark to use instead of Source.
	Benchmark string
	// Dataset selects the benchmark dataset feeding Input (Benchmark
	// requests only; Input overrides it when non-nil).
	Dataset int
	// CompileOpts control code generation for Source requests.
	CompileOpts minic.Options
	// Optimize runs the MIR optimizer between compile and analyze.
	Optimize bool
	// Order is the heuristic priority order; an invalid (e.g. zero)
	// order means the paper's default.
	Order core.Order
	// Input is the program's input stream.
	Input []int64
	// Budget caps executed instructions; 0 means the benchmark's budget
	// or the interpreter default.
	Budget int64
	// Seed is the interpreter's rand() seed.
	Seed int64
}

// Result is the outcome of one prediction job. Results may be shared
// between requests that hit the cache, so treat every field as read-only.
type Result struct {
	// Name echoes the benchmark name, or "<source>" for source requests.
	Name string
	// Analysis and Profile expose the underlying pipeline artifacts for
	// callers that drill into per-branch detail.
	Analysis *core.Analysis
	Profile  *profile.Profile
	// Predictions is the per-branch prediction vector under Order.
	Predictions []core.Prediction

	StaticBranches  int
	DynamicBranches int64
	Steps           int64
	ExitCode        int64
	Output          string

	// Scores over all dynamic branches, in the paper's miss/perfect
	// notation: the prioritized heuristic combiner, the voting combiner,
	// and the loop+random and backward-taken/forward-not-taken baselines.
	Heuristic profile.Rate
	Vote      profile.Rate
	LoopRand  profile.Rate
	BTFNT     profile.Rate

	// Cache outcome of this particular request.
	ProgramCached  bool
	AnalysisCached bool
	RunCached      bool
	Elapsed        time.Duration
}

// ErrBusy is returned when the service is saturated and the request's
// context expired while queued.
var ErrBusy = errors.New("service: request canceled while queued")

// Stats returns a point-in-time snapshot of the service counters.
func (s *Service) Stats() Stats {
	return s.met.snapshot(s.programs.len(), s.analyses.len(), s.runs.len())
}

// resolve normalizes a request: benchmark lookup, defaulted input,
// budget, and order.
func (s *Service) resolve(req *Request) error {
	if (req.Source == "") == (req.Benchmark == "") {
		return errors.New("service: exactly one of Source or Benchmark must be set")
	}
	if req.Benchmark != "" {
		b := suite.Get(req.Benchmark)
		if b == nil {
			return fmt.Errorf("service: no benchmark %q", req.Benchmark)
		}
		if req.Dataset < 0 || req.Dataset >= len(b.Data) {
			return fmt.Errorf("service: %s has datasets 0..%d", b.Name, len(b.Data)-1)
		}
		req.Source = b.Source
		if req.Input == nil {
			req.Input = b.Data[req.Dataset].Input
		}
		if req.Budget == 0 {
			req.Budget = b.Budget
		}
	}
	if !req.Order.Valid() {
		req.Order = core.DefaultOrder
	}
	return nil
}

// keys derives the content-hash cache keys for a resolved request.
func (req *Request) keys() (progKey, analysisKey, runKey string) {
	progKey = newHasher().
		str(req.Source).
		bool(req.CompileOpts.SpillLocals).
		bool(req.CompileOpts.NoJumpTables).
		bool(req.Optimize).
		sum()
	return progKey,
		newHasher().str(progKey).str("analysis").sum(),
		newHasher().str(progKey).str("run").i64s(req.Input).i64(req.Budget).i64(req.Seed).sum()
}

// Predict runs the pipeline for one request, deduplicating and caching
// shared work. It blocks while the service is saturated; ctx cancels
// both queueing and every pipeline stage.
func (s *Service) Predict(ctx context.Context, req Request) (*Result, error) {
	s.met.requests.Add(1)
	start := time.Now()
	if s.cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.timeout)
		defer cancel()
	}
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		s.met.errors.Add(1)
		s.met.canceled.Add(1)
		return nil, fmt.Errorf("%w: %v", ErrBusy, ctx.Err())
	}
	s.met.inFlight.Add(1)
	defer s.met.inFlight.Add(-1)

	res, err := s.predict(ctx, req)
	if err != nil {
		s.met.errors.Add(1)
		if isTransient(err) {
			s.met.canceled.Add(1)
		}
		return nil, err
	}
	res.Elapsed = time.Since(start)
	s.met.completed.Add(1)
	return res, nil
}

func (s *Service) predict(ctx context.Context, req Request) (*Result, error) {
	if err := s.resolve(&req); err != nil {
		return nil, err
	}
	progKey, analysisKey, runKey := req.keys()

	// Stage 1+2: compile (and optionally optimize) the source. The cache
	// stores the post-optimizer program so the analysis cache keys align.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prog, progHit, err := timed(s.met, stageCompile, func() (*mir.Program, bool, error) {
		return s.programs.do(ctx, progKey, func() (*mir.Program, error) {
			p, err := minic.Compile(req.Source, req.CompileOpts)
			if err != nil || !req.Optimize {
				return p, err
			}
			o, _, err := timed(s.met, stageOptimize, func() (*mir.Program, bool, error) {
				return opt.Program(p), false, nil
			})
			return o, err
		})
	})
	if err != nil {
		return nil, fmt.Errorf("service: compile: %w", err)
	}

	// Stage 3: Ball-Larus analysis.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	analysis, analysisHit, err := timed(s.met, stageAnalyze, func() (*core.Analysis, bool, error) {
		return s.analyses.do(ctx, analysisKey, func() (*core.Analysis, error) {
			return core.Analyze(prog, s.cfg.analysis)
		})
	})
	if err != nil {
		return nil, fmt.Errorf("service: analyze: %w", err)
	}

	// Stage 4: the prediction vector under the requested order. Cheap,
	// derived, and order-specific, so computed per request.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	preds, _, _ := timed(s.met, stagePredict, func() ([]core.Prediction, bool, error) {
		return analysis.Predictions(req.Order), false, nil
	})

	// Stage 5: execute. The interpreter is deterministic given the
	// config, so results are content-addressed like everything else.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	run, runHit, err := timed(s.met, stageExecute, func() (*interp.Result, bool, error) {
		return s.runs.do(ctx, runKey, func() (*interp.Result, error) {
			return interp.Run(prog, interp.Config{
				Input:     req.Input,
				Budget:    req.Budget,
				Seed:      req.Seed,
				Interrupt: ctx.Done(),
			})
		})
	})
	if err != nil {
		if errors.Is(err, interp.ErrInterrupted) && ctx.Err() != nil {
			err = ctx.Err()
		}
		return nil, fmt.Errorf("service: execute: %w", err)
	}
	if runHit {
		s.met.runHits.Add(1)
	} else {
		s.met.runMisses.Add(1)
	}

	// Stage 6: score the predictions against the measured profile.
	res := &Result{
		Name:            req.Benchmark,
		Analysis:        analysis,
		Profile:         run.Profile,
		Predictions:     preds,
		StaticBranches:  len(analysis.Branches),
		DynamicBranches: run.Profile.Total(),
		Steps:           run.Steps,
		ExitCode:        run.ExitCode,
		Output:          run.Output,
		ProgramCached:   progHit,
		AnalysisCached:  analysisHit,
		RunCached:       runHit,
	}
	if res.Name == "" {
		res.Name = "<source>"
	}
	timed(s.met, stageScore, func() (struct{}, bool, error) {
		res.Heuristic = score(analysis, preds, run.Profile)
		res.Vote = score(analysis, analysis.VotePredictions(core.DefaultWeights), run.Profile)
		res.LoopRand = score(analysis, analysis.LoopRandPredictions(), run.Profile)
		res.BTFNT = score(analysis, analysis.BTFNTPredictions(), run.Profile)
		return struct{}{}, false, nil
	})
	return res, nil
}

// score computes the all-branch miss rate of a prediction vector against
// a profile, in the paper's miss/perfect notation.
func score(a *core.Analysis, preds []core.Prediction, p *profile.Profile) profile.Rate {
	var miss, perf, dyn int64
	for id := range preds {
		d := p.Executed(id)
		if d == 0 {
			continue
		}
		dyn += d
		perf += p.PerfectMisses(id)
		miss += p.Misses(id, preds[id].Taken())
	}
	return profile.MakeRate(miss, perf, dyn)
}
