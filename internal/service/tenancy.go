package service

import (
	"context"
	"fmt"

	"ballarus/internal/resilience"
	"ballarus/internal/tenant"
)

// WithTenants enables multi-tenant admission: requests are attributed
// to the tenant carried by their context (tenant.FromContext), charged
// against that tenant's token-bucket rate and concurrency quotas in r,
// and — when the queue saturates — shed by weighted max-min fairness
// (the tenants furthest over their fair share of worker slots first,
// never the under-share ones) instead of strict arrival order.
//
// Quota rejections classify as resilience.ErrQuotaExceeded (a
// refinement of ErrOverload, carrying a *tenant.QuotaError for the
// HTTP edge's Retry-After / X-RateLimit-* headers); fairness sheds
// stay plain ErrOverload, exactly like the global queue-depth sheds
// they replace. nil disables tenancy.
func WithTenants(r *tenant.Registry) Option { return func(c *config) { c.tenants = r } }

// Tenants returns the service's tenant registry, or nil when tenancy
// is disabled. The HTTP layer snapshots it for /v1/stats.
func (s *Service) Tenants() *tenant.Registry { return s.cfg.tenants }

// preadmitKey marks a context whose tenant rate tokens and in-flight
// units were already charged by a batch admission; per-item calls
// under it still take worker slots and answer to fairness, but must
// not double-charge the quota.
type preadmitKey struct{}

func preadmitted(ctx context.Context) bool {
	ok, _ := ctx.Value(preadmitKey{}).(bool)
	return ok
}

// tenantID is shorthand for the context's tenant identity.
func tenantID(ctx context.Context) string { return tenant.FromContext(ctx) }

// admitTenant charges the request against its tenant's quotas. It
// returns the tenant id, a release for the in-flight unit (never nil),
// and a quota rejection if the tenant is over a limit.
func (s *Service) admitTenant(ctx context.Context) (string, func(), error) {
	reg := s.cfg.tenants
	if reg == nil {
		return "", func() {}, nil
	}
	id := tenant.FromContext(ctx)
	s.met.tenantRequest(id)
	if preadmitted(ctx) {
		return id, func() {}, nil
	}
	rel, qerr := reg.Admit(id, 1)
	if qerr != nil {
		s.met.tenantShed(id, qerr.Reason)
		return id, func() {}, resilience.Quota(qerr)
	}
	s.met.tenantInflight(id, +1)
	return id, func() {
		s.met.tenantInflight(id, -1)
		rel()
	}, nil
}

// fairShed decides whether a request that found the queue saturated
// should be shed. Without tenancy every such request is shed (the
// original WithQueueDepth behavior). With tenancy, only tenants over
// their weighted max-min fair share of total capacity (worker slots
// plus queue) are shed; under-share tenants may keep queueing up to a
// hard cap of twice the configured depth, which bounds memory while
// the fairness gate drains the hogs.
func (s *Service) fairShed(id string, queued int64) (shed bool, hard bool) {
	d := int64(s.cfg.queueDepth)
	reg := s.cfg.tenants
	if reg == nil {
		return true, false
	}
	if queued > 2*d {
		return true, true
	}
	capacity := s.cfg.workers + s.cfg.queueDepth
	return reg.OverShare(id, capacity), false
}

// shedError builds the overload error for a fairness or queue-depth
// shed and records its per-tenant accounting.
func (s *Service) shedError(id string) error {
	if s.cfg.tenants != nil {
		s.met.tenantShed(id, "fairness")
		return resilience.Overloaded(fmt.Errorf("%w: tenant %q over fair share with queue depth %d exceeded", ErrBusy, id, s.cfg.queueDepth))
	}
	return resilience.Overloaded(fmt.Errorf("%w: queue depth %d exceeded", ErrBusy, s.cfg.queueDepth))
}
