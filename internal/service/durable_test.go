package service

import (
	"context"
	"os"
	"testing"
	"time"

	"ballarus/internal/durable"
	"ballarus/internal/resilience"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// durableRequests are three distinct jobs (seed changes the run key).
func durableRequests() []Request {
	return []Request{
		{Source: testSrc},
		{Source: testSrc, Seed: 7},
		{Benchmark: "spice2g6"},
	}
}

// TestCrashRecoveryWarmStart is the headline durability scenario: a
// service snapshots its warm set, dies without Close (hard kill), and a
// fresh service over the same directory recovers a warm cache.
func TestCrashRecoveryWarmStart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	reqs := durableRequests()

	svc1 := New(WithDurableStore(dir), WithSnapshotInterval(time.Hour))
	for _, req := range reqs {
		if _, err := svc1.Predict(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc1.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	// No Close: the process "dies" here.

	svc2 := New(WithDurableStore(dir), WithSnapshotInterval(time.Hour))
	defer svc2.Close()
	rs, err := svc2.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Warmed < int64(len(reqs)) || rs.SnapshotEntries < int64(len(reqs)) {
		t.Fatalf("recovery stats %+v, want >= %d warmed snapshot entries", rs, len(reqs))
	}

	// Every pre-crash request must now be a whole-pipeline cache hit, and
	// re-predicting warmed work must not journal it again.
	appendsBefore := svc2.Stats().Durability.JournalAppends
	for _, req := range reqs {
		res, err := svc2.Predict(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if !res.RunCached {
			t.Fatalf("request %+v cold after recovery", req)
		}
	}
	st := svc2.Stats()
	if st.RunHits < int64(len(reqs)) {
		t.Fatalf("run hits = %d, want >= %d", st.RunHits, len(reqs))
	}
	if st.Durability.JournalAppends != appendsBefore {
		t.Fatalf("warmed requests re-journaled: %d -> %d appends",
			appendsBefore, st.Durability.JournalAppends)
	}
	if !st.Durability.Enabled || st.Durability.Warmed != rs.Warmed {
		t.Fatalf("durability stats not surfaced: %+v", st.Durability)
	}
}

// TestJournalOnlyRecovery: a crash before any snapshot still rewarms
// from the append-only journal.
func TestJournalOnlyRecovery(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	svc1 := New(WithDurableStore(dir), WithSnapshotInterval(time.Hour))
	if _, err := svc1.Predict(ctx, Request{Source: testSrc}); err != nil {
		t.Fatal(err)
	}
	if err := svc1.dur.journal.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash: no snapshot was ever written.

	svc2 := New(WithDurableStore(dir), WithSnapshotInterval(time.Hour))
	defer svc2.Close()
	rs, err := svc2.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rs.JournalReplayed < 1 || rs.Warmed < 1 || rs.SnapshotEntries != 0 {
		t.Fatalf("recovery stats %+v, want journal-only rewarm", rs)
	}
	res, err := svc2.Predict(ctx, Request{Source: testSrc})
	if err != nil || !res.RunCached {
		t.Fatalf("journaled request cold after recovery: cached=%v err=%v",
			res != nil && res.RunCached, err)
	}
}

// TestSnapshotCorruptionSkipped is the acceptance criterion: a
// deliberately corrupted snapshot entry is skipped and counted, the
// rest recover, and boot never fails.
func TestSnapshotCorruptionSkipped(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	corrupted := Request{Source: testSrc}
	intact := Request{Source: testSrc, Seed: 7}

	svc1 := New(WithDurableStore(dir), WithSnapshotInterval(time.Hour))
	for _, req := range []Request{corrupted, intact} {
		if _, err := svc1.Predict(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc1.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	// Drop the journal so recovery depends on the snapshot alone, then
	// flip one byte inside the first entry (its section bytes): the CRC
	// must reject exactly that entry.
	if err := svc1.dur.journal.Reset(); err != nil {
		t.Fatal(err)
	}
	path := svc1.dur.store.SnapshotPath()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[8+15+2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	svc2 := New(WithDurableStore(dir), WithSnapshotInterval(time.Hour))
	defer svc2.Close()
	rs, err := svc2.Recover(ctx)
	if err != nil {
		t.Fatalf("corrupted entry must not fail boot: %v", err)
	}
	if rs.SnapshotSkipped < 1 || rs.SnapshotEntries < 1 {
		t.Fatalf("recovery stats %+v, want 1 skipped + 1 recovered", rs)
	}
	if res, err := svc2.Predict(ctx, intact); err != nil || !res.RunCached {
		t.Fatalf("intact entry cold after recovery: err=%v", err)
	}
	if res, err := svc2.Predict(ctx, corrupted); err != nil || res.RunCached {
		t.Fatalf("corrupted entry served warm (cached=%v err=%v), want recompute",
			res != nil && res.RunCached, err)
	}
	if got := svc2.Stats().Durability.SnapshotSkipped; got < 1 {
		t.Fatalf("snapshot_skipped = %d not surfaced in Stats", got)
	}
}

// TestRecoverRegisteredSection: an external section (the shape blserve's
// stale cache uses) round-trips through the snapshot, and entries of an
// unregistered section are skipped, not fatal.
func TestRecoverRegisteredSection(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	svc1 := New(WithDurableStore(dir), WithSnapshotInterval(time.Hour))
	svc1.RegisterDurableSection("stale", DurableSection{
		Collect: func() []durable.Entry {
			return []durable.Entry{
				{Key: "k1", Payload: []byte(`{"name":"x"}`)},
				{Key: "k2", Payload: []byte(`{"name":"y"}`)},
			}
		},
	})
	if err := svc1.SnapshotNow(); err != nil {
		t.Fatal(err)
	}

	// svc2 registers the section: both entries restore, and its Collect
	// carries them into the baseline snapshot Recover rewrites.
	restored := map[string]string{}
	svc2 := New(WithDurableStore(dir), WithSnapshotInterval(time.Hour))
	svc2.RegisterDurableSection("stale", DurableSection{
		Collect: func() []durable.Entry {
			out := make([]durable.Entry, 0, len(restored))
			for k, v := range restored {
				out = append(out, durable.Entry{Key: k, Payload: []byte(v)})
			}
			return out
		},
		Restore: func(e durable.Entry) error {
			restored[e.Key] = string(e.Payload)
			return nil
		},
	})
	rs, err := svc2.Recover(ctx)
	if err != nil || rs.SnapshotEntries != 2 || len(restored) != 2 {
		t.Fatalf("section restore: stats %+v, restored %v, err %v", rs, restored, err)
	}
	svc2.Close()

	// svc3 does not register it: entries are skipped, boot succeeds.
	svc3 := New(WithDurableStore(dir), WithSnapshotInterval(time.Hour))
	defer svc3.Close()
	rs, err = svc3.Recover(ctx)
	if err != nil || rs.SnapshotSkipped != 2 {
		t.Fatalf("unregistered section: stats %+v, err %v", rs, err)
	}
}

// TestCloseWritesFinalSnapshot: graceful shutdown persists the warm set
// and is idempotent.
func TestCloseWritesFinalSnapshot(t *testing.T) {
	dir := t.TempDir()
	svc := New(WithDurableStore(dir), WithSnapshotInterval(time.Hour))
	if _, err := svc.Predict(context.Background(), Request{Source: testSrc}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	entries, st, err := durable.ReadSnapshotFile(dir + "/" + durable.SnapshotName)
	if err != nil || len(entries) != 1 || st.Skipped != 0 {
		t.Fatalf("final snapshot: %d entries, stats %+v, err %v", len(entries), st, err)
	}
}

// TestRecoverWithoutStore: Recover on an undurable service is a
// configuration error, not a panic.
func TestRecoverWithoutStore(t *testing.T) {
	svc := New()
	defer svc.Close()
	if _, err := svc.Recover(context.Background()); err == nil {
		t.Fatal("Recover without WithDurableStore must error")
	}
	if st := svc.Stats(); st.Durability.Enabled || st.Watchdog.Enabled {
		t.Fatalf("undurable service reports %+v", st)
	}
}

// TestWatchdogRestartsWedgedPool: with one worker wedged on a hung
// computation and work queued behind it, the watchdog swaps in a fresh
// pool and the queued request completes.
func TestWatchdogRestartsWedgedPool(t *testing.T) {
	defer resilience.ClearFaults()
	svc := New(WithWorkers(1), WithQueueDepth(8), WithWatchdog(60*time.Millisecond))
	defer svc.Close()

	resilience.InjectFault("service.execute", resilience.Fault{Hang: true, Times: 1})
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	wedged := make(chan error, 1)
	go func() {
		_, err := svc.Predict(ctx1, Request{Source: testSrc})
		wedged <- err
	}()
	waitUntil(t, 5*time.Second, func() bool { return svc.Stats().InFlight >= 1 })

	done := make(chan error, 1)
	go func() {
		_, err := svc.Predict(context.Background(), Request{Source: testSrc, Seed: 99})
		done <- err
	}()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("queued request failed after pool restart: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued request never ran: watchdog did not restart the pool")
	}
	if st := svc.Stats().Watchdog; !st.Enabled || st.Restarts < 1 {
		t.Fatalf("watchdog stats = %+v, want >= 1 restart", st)
	}

	cancel1()
	if err := <-wedged; err == nil {
		t.Fatal("wedged request reported success")
	}
}
