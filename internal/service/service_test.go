package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ballarus/internal/core"
	"ballarus/internal/interp"
	"ballarus/internal/minic"
	"ballarus/internal/suite"
)

// testSrc executes ~7k instructions: enough branches to score, cheap
// enough to hammer.
const testSrc = `
int main() {
	int i;
	int s = 0;
	for (i = 0; i < 300; i++) {
		if (i % 3 == 0) { s += i; }
		if (i % 7 == 0) { s -= 1; }
	}
	printi(s);
	printc('\n');
	return 0;
}
`

// slowSrc runs for hundreds of milliseconds under the interpreter —
// long enough that a cancellation mid-run is observable.
const slowSrc = `
int main() {
	int i;
	int s = 0;
	for (i = 0; i < 1000000000; i++) {
		s += i % 7;
	}
	printi(s);
	return 0;
}
`

func TestPredictSource(t *testing.T) {
	s := New()
	res, err := s.Predict(context.Background(), Request{Source: testSrc})
	if err != nil {
		t.Fatal(err)
	}
	if res.StaticBranches == 0 || res.DynamicBranches == 0 || res.Steps == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.Heuristic.Dyn != res.DynamicBranches {
		t.Fatalf("score over %d branches, want %d", res.Heuristic.Dyn, res.DynamicBranches)
	}
	if res.ProgramCached || res.AnalysisCached || res.RunCached {
		t.Fatalf("first request must be cold: %+v", res)
	}
}

func TestPredictMatchesDirectPipeline(t *testing.T) {
	s := New()
	b := suite.All()[0]
	res, err := s.Predict(context.Background(), Request{Benchmark: b.Name})
	if err != nil {
		t.Fatal(err)
	}

	prog, err := minic.Compile(b.Source, minic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	run, err := interp.Run(prog, interp.Config{Input: b.Data[0].Input, Budget: b.Budget})
	if err != nil {
		t.Fatal(err)
	}
	want := score(a, a.Predictions(core.DefaultOrder), run.Profile)
	if res.Heuristic != want {
		t.Fatalf("service score %v != direct pipeline score %v", res.Heuristic, want)
	}
	if res.Steps != run.Steps || res.Output != run.Output {
		t.Fatalf("service run diverged from direct run: %d/%d steps", res.Steps, run.Steps)
	}
}

func TestValidation(t *testing.T) {
	s := New()
	ctx := context.Background()
	if _, err := s.Predict(ctx, Request{}); err == nil {
		t.Error("empty request should fail")
	}
	if _, err := s.Predict(ctx, Request{Source: "x", Benchmark: "y"}); err == nil {
		t.Error("both source and benchmark should fail")
	}
	if _, err := s.Predict(ctx, Request{Benchmark: "nope"}); err == nil {
		t.Error("unknown benchmark should fail")
	}
	if _, err := s.Predict(ctx, Request{Benchmark: suite.All()[0].Name, Dataset: 99}); err == nil {
		t.Error("bad dataset should fail")
	}
	if _, err := s.Predict(ctx, Request{Source: "int main() { return 0 }"}); err == nil {
		t.Error("syntax error should fail")
	}
	// Errors are not cached: the same bad source fails the same way twice
	// and the cache stays empty.
	s.Predict(ctx, Request{Source: "int main() { return 0 }"})
	if st := s.Stats(); st.Programs != 0 {
		t.Errorf("failed compiles must not be cached, have %d programs", st.Programs)
	}
}

func TestConcurrentSameSource(t *testing.T) {
	s := New(WithWorkers(8))
	const n = 32
	var wg sync.WaitGroup
	results := make([]*Result, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Predict(context.Background(), Request{Source: testSrc})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if results[i].Heuristic != results[0].Heuristic || results[i].Steps != results[0].Steps {
			t.Fatalf("request %d diverged: %+v vs %+v", i, results[i], results[0])
		}
	}
	st := s.Stats()
	// Single-flight: exactly one compile, one analysis, one execution.
	if c := st.Stage(stageCompile); c.CacheMisses != 1 || c.CacheHits != n-1 {
		t.Errorf("compile cache = %d misses / %d hits, want 1/%d", c.CacheMisses, c.CacheHits, n-1)
	}
	if a := st.Stage(stageAnalyze); a.CacheMisses != 1 || a.CacheHits != n-1 {
		t.Errorf("analysis cache = %d misses / %d hits, want 1/%d", a.CacheMisses, a.CacheHits, n-1)
	}
	if st.RunMisses != 1 || st.RunHits != n-1 {
		t.Errorf("run cache = %d misses / %d hits, want 1/%d", st.RunMisses, st.RunHits, n-1)
	}
	if st.Completed != n || st.Errors != 0 || st.InFlight != 0 {
		t.Errorf("stats = %+v, want %d completed, none in flight", st, n)
	}
}

func TestConcurrentDistinctSources(t *testing.T) {
	s := New(WithWorkers(8))
	const n = 12
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := fmt.Sprintf(
				"int main() { int i; int s = 0; for (i = 0; i < %d; i++) { s += i; } printi(s); return 0; }",
				200+i)
			_, errs[i] = s.Predict(context.Background(), Request{Source: src})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	st := s.Stats()
	if c := st.Stage(stageCompile); c.CacheMisses != n || c.CacheHits != 0 {
		t.Errorf("compile cache = %d misses / %d hits, want %d/0", c.CacheMisses, c.CacheHits, n)
	}
	if st.Programs != n || st.Analyses != n || st.Runs != n {
		t.Errorf("cache sizes = %d/%d/%d, want %d each", st.Programs, st.Analyses, st.Runs, n)
	}
}

func TestCancellationMidPipeline(t *testing.T) {
	s := New()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = s.Predict(ctx, Request{Source: slowSrc, Budget: 1 << 40})
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not interrupt the interpreter")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	st := s.Stats()
	if st.Errors != 1 || st.Canceled != 1 {
		t.Errorf("stats = %d errors, %d canceled, want 1/1", st.Errors, st.Canceled)
	}
	if st.Runs != 0 {
		t.Errorf("a canceled run must not be cached, have %d", st.Runs)
	}
	// The service recovers: the same request with a live context and a
	// real budget completes (with ErrBudget surfaced as a pipeline error,
	// not a poisoned cache entry).
	if _, err := s.Predict(context.Background(), Request{Source: testSrc}); err != nil {
		t.Fatalf("service did not recover after cancellation: %v", err)
	}
}

func TestDeadline(t *testing.T) {
	s := New(WithRequestTimeout(25 * time.Millisecond))
	_, err := s.Predict(context.Background(), Request{Source: slowSrc, Budget: 1 << 40})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestQueueRespectsContext(t *testing.T) {
	s := New(WithWorkers(1))
	holdCtx, holdCancel := context.WithCancel(context.Background())
	defer holdCancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Occupy the only worker slot with a long run.
		s.Predict(holdCtx, Request{Source: slowSrc, Budget: 1 << 40})
	}()
	// Give the slot holder time to start executing.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slot holder never started")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := s.Predict(ctx, Request{Source: testSrc})
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("queued request err = %v, want ErrBusy", err)
	}
	// Release the slot holder so the test exits promptly.
	holdCancel()
	wg.Wait()
}

// TestWarmCacheSpeedup is the acceptance benchmark: a repeated identical
// request must be served at least 5x faster than the cold run.
func TestWarmCacheSpeedup(t *testing.T) {
	// ~3M executed instructions: a cold run costs real work.
	src := `int main() { int i; int s = 0; for (i = 0; i < 500000; i++) { s += i % 9; } printi(s); return 0; }`
	s := New()
	ctx := context.Background()

	start := time.Now()
	if _, err := s.Predict(ctx, Request{Source: src}); err != nil {
		t.Fatal(err)
	}
	cold := time.Since(start)

	warm := time.Duration(1 << 62)
	for i := 0; i < 20; i++ {
		start = time.Now()
		res, err := s.Predict(ctx, Request{Source: src})
		if err != nil {
			t.Fatal(err)
		}
		if !res.RunCached {
			t.Fatal("warm request missed the run cache")
		}
		if d := time.Since(start); d < warm {
			warm = d
		}
	}
	t.Logf("cold %v, warm %v (%.0fx)", cold, warm, float64(cold)/float64(warm))
	if cold < 5*warm {
		t.Errorf("warm requests only %.1fx faster than cold (cold %v, warm %v), want >= 5x",
			float64(cold)/float64(warm), cold, warm)
	}
}

func BenchmarkPredictCold(b *testing.B) {
	src := `int main() { int i; int s = 0; for (i = 0; i < 500000; i++) { s += i % 9; } printi(s); return 0; }`
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A fresh service per iteration: every stage runs.
		s := New()
		if _, err := s.Predict(ctx, Request{Source: src}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictWarm(b *testing.B) {
	src := `int main() { int i; int s = 0; for (i = 0; i < 500000; i++) { s += i % 9; } printi(s); return 0; }`
	ctx := context.Background()
	s := New()
	if _, err := s.Predict(ctx, Request{Source: src}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Predict(ctx, Request{Source: src}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFan(t *testing.T) {
	// All items run, bounded workers.
	var mu sync.Mutex
	seen := map[int]bool{}
	err := Fan(context.Background(), 3, 20, func(ctx context.Context, i int) error {
		mu.Lock()
		seen[i] = true
		mu.Unlock()
		return nil
	})
	if err != nil || len(seen) != 20 {
		t.Fatalf("fan: err %v, %d items, want 20", err, len(seen))
	}

	// First error cancels the rest.
	boom := errors.New("boom")
	var ran int32
	err = Fan(context.Background(), 2, 100, func(ctx context.Context, i int) error {
		mu.Lock()
		ran++
		mu.Unlock()
		if i == 3 {
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("fan err = %v, want boom", err)
	}
	mu.Lock()
	if ran == 100 {
		t.Error("error did not cancel remaining work")
	}
	mu.Unlock()

	// Pre-canceled context runs nothing.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	count := 0
	err = Fan(ctx, 2, 10, func(ctx context.Context, i int) error {
		mu.Lock()
		count++
		mu.Unlock()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("fan on canceled ctx: err = %v", err)
	}
}
