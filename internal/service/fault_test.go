package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ballarus/internal/interp"
	"ballarus/internal/resilience"
)

// breakerFor extracts one stage's breaker snapshot from a Stats.
func breakerFor(t *testing.T, st Stats, stage string) resilience.BreakerStats {
	t.Helper()
	for _, b := range st.Breakers {
		if b.Name == stage {
			return b
		}
	}
	t.Fatalf("no breaker %q in stats", stage)
	return resilience.BreakerStats{}
}

// TestFaultMatrix injects a failure, a panic, and a hang at every
// failure-prone stage and asserts the documented typed error, that no
// panic escapes, that the breaker records the failure, and that the
// service recovers once the fault clears. Faults use the global
// registry, so none of these subtests run in parallel.
func TestFaultMatrix(t *testing.T) {
	stages := []string{stageCompile, stageAnalyze, stageExecute}
	faults := []struct {
		name      string
		fault     resilience.Fault
		wantKind  error
		wantPanic bool
	}{
		{"error", resilience.Fault{Err: errors.New("injected failure")}, resilience.ErrInternal, false},
		{"panic", resilience.Fault{Panic: "injected panic"}, resilience.ErrInternal, true},
		{"hang", resilience.Fault{Hang: true}, resilience.ErrTimeout, false},
	}
	for _, stage := range stages {
		for _, f := range faults {
			t.Run(stage+"/"+f.name, func(t *testing.T) {
				defer resilience.ClearFaults()
				s := New(WithRequestTimeout(200 * time.Millisecond))
				resilience.InjectFault("service."+stage, f.fault)

				_, err := s.Predict(context.Background(), Request{Source: testSrc})
				if err == nil {
					t.Fatal("injected fault did not fail the request")
				}
				if got := resilience.KindOf(err); got != f.wantKind {
					t.Fatalf("error kind = %v (%v), want %v", got, err, f.wantKind)
				}
				if resilience.IsPanic(err) != f.wantPanic {
					t.Fatalf("IsPanic = %v, want %v (err %v)", !f.wantPanic, f.wantPanic, err)
				}
				st := s.Stats()
				if f.wantPanic && st.Panics != 1 {
					t.Fatalf("panics counter = %d, want 1", st.Panics)
				}
				if st.Errors != 1 {
					t.Fatalf("errors counter = %d, want 1", st.Errors)
				}
				if br := breakerFor(t, st, stage); br.Failures != 1 || br.State != "closed" {
					t.Fatalf("breaker after one failure = %+v, want 1 failure, closed", br)
				}

				// The fault cleared: the same request now succeeds and the
				// breaker's consecutive-failure count resets.
				resilience.ClearFaults()
				if _, err := s.Predict(context.Background(), Request{Source: testSrc}); err != nil {
					t.Fatalf("service did not recover after fault cleared: %v", err)
				}
				if br := breakerFor(t, s.Stats(), stage); br.Failures != 0 {
					t.Fatalf("breaker failures not reset by success: %+v", br)
				}
			})
		}
	}
}

// TestBreakerOpensShedsAndRecovers drives a stage breaker through
// closed → open → half-open → closed and asserts shed requests classify
// as overload.
func TestBreakerOpensShedsAndRecovers(t *testing.T) {
	defer resilience.ClearFaults()
	s := New(WithBreakerPolicy(resilience.BreakerPolicy{Threshold: 2, Cooldown: 50 * time.Millisecond}))
	ctx := context.Background()
	resilience.InjectFault("service."+stageAnalyze, resilience.Fault{Err: errors.New("persistent failure")})

	for i := 0; i < 2; i++ {
		if _, err := s.Predict(ctx, Request{Source: testSrc}); !errors.Is(err, resilience.ErrInternal) {
			t.Fatalf("request %d: err = %v, want internal", i, err)
		}
	}
	st := s.Stats()
	if br := breakerFor(t, st, stageAnalyze); br.State != "open" || br.Opens != 1 {
		t.Fatalf("breaker after threshold failures = %+v, want open", br)
	}

	// While open, requests are shed at the analyze stage without running
	// it: typed as overload, wrapping ErrCircuitOpen.
	_, err := s.Predict(ctx, Request{Source: testSrc})
	if !errors.Is(err, resilience.ErrCircuitOpen) || !errors.Is(err, resilience.ErrOverload) {
		t.Fatalf("open-breaker err = %v, want ErrCircuitOpen+ErrOverload", err)
	}
	if st := s.Stats(); st.Shed == 0 {
		t.Fatal("shed counter did not move")
	}

	// Cooldown elapses and the fault is gone: the half-open probe
	// succeeds and closes the breaker.
	resilience.ClearFaults()
	time.Sleep(60 * time.Millisecond)
	if _, err := s.Predict(ctx, Request{Source: testSrc}); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if br := breakerFor(t, s.Stats(), stageAnalyze); br.State != "closed" {
		t.Fatalf("breaker after successful probe = %+v, want closed", br)
	}
}

// TestRetryRecoversTransientFault: a fault that fails twice with a
// transient error is absorbed by the retry policy — the request
// succeeds and the retries are counted.
func TestRetryRecoversTransientFault(t *testing.T) {
	defer resilience.ClearFaults()
	s := New()
	resilience.InjectFault("service."+stageExecute,
		resilience.Fault{Err: resilience.MarkTransient(errors.New("blip")), Times: 2})

	res, err := s.Predict(context.Background(), Request{Source: testSrc})
	if err != nil {
		t.Fatalf("transient fault not retried away: %v", err)
	}
	if res.Steps == 0 {
		t.Fatal("empty result after retries")
	}
	st := s.Stats()
	if st.Retries != 2 {
		t.Fatalf("retries = %d, want 2", st.Retries)
	}
	if br := breakerFor(t, st, stageExecute); br.Failures != 0 || br.State != "closed" {
		t.Fatalf("retried-away failure left breaker %+v", br)
	}
	if n := resilience.FaultFired("service." + stageExecute); n != 2 {
		t.Fatalf("fault fired %d times, want 2", n)
	}
}

// TestQueueDepthSheds: with one worker and a queue depth of one, a
// third concurrent request is rejected immediately as overload.
func TestQueueDepthSheds(t *testing.T) {
	s := New(WithWorkers(1), WithQueueDepth(1))
	holdCtx, holdCancel := context.WithCancel(context.Background())
	defer holdCancel()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // occupies the only worker slot
		defer wg.Done()
		s.Predict(holdCtx, Request{Source: slowSrc, Budget: 1 << 40})
	}()
	waitFor(t, func() bool { return s.Stats().InFlight == 1 })
	go func() { // fills the queue
		defer wg.Done()
		s.Predict(holdCtx, Request{Source: slowSrc, Input: []int64{1}, Budget: 1 << 40})
	}()
	waitFor(t, func() bool { return s.Stats().Queued == 1 })

	_, err := s.Predict(context.Background(), Request{Source: testSrc})
	if !errors.Is(err, ErrBusy) || !errors.Is(err, resilience.ErrOverload) {
		t.Fatalf("shed request err = %v, want ErrBusy classified overload", err)
	}
	if st := s.Stats(); st.Shed != 1 {
		t.Fatalf("shed = %d, want 1", st.Shed)
	}
	holdCancel()
	wg.Wait()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCacheSizeBoundsMemory: with a 4-entry cap, 8 distinct programs
// evict the oldest entries, the counters say so, and recent entries
// still hit.
func TestCacheSizeBounds(t *testing.T) {
	s := New(WithCacheSize(4), WithShardRunner(echoShardRunner{}))
	ctx := context.Background()
	src := func(i int) string {
		return fmt.Sprintf("int main() { int i; int s = 0; for (i = 0; i < %d; i++) { s += i; } printi(s); return 0; }", 100+i)
	}
	for i := 0; i < 8; i++ {
		if _, err := s.Predict(ctx, Request{Source: src(i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Compare(ctx, CompareRequest{Request: Request{Source: src(i)}}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Shard(ctx, []byte(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Programs != 4 || st.Analyses != 4 || st.Runs != 4 || st.Compares != 4 {
		t.Fatalf("cache sizes = %d/%d/%d/%d, want 4 each", st.Programs, st.Analyses, st.Runs, st.Compares)
	}
	if st.Evictions != 20 {
		t.Fatalf("evictions = %d, want 20 (4 per cache)", st.Evictions)
	}
	for _, c := range st.Caches {
		if c.Capacity != 4 || c.Evictions != 4 || c.Entries != 4 {
			t.Fatalf("cache %s = %+v, want capacity 4, 4 evictions, 4 entries", c.Name, c)
		}
	}
	// The most recent program is still resident.
	res, err := s.Predict(ctx, Request{Source: src(7)})
	if err != nil || !res.RunCached {
		t.Fatalf("recent entry evicted: hit=%v err=%v", res != nil && res.RunCached, err)
	}
	// The oldest was evicted: a repeat is a miss, recomputed correctly.
	res, err = s.Predict(ctx, Request{Source: src(0)})
	if err != nil || res.RunCached {
		t.Fatalf("oldest entry should have been evicted: hit=%v err=%v", res != nil && res.RunCached, err)
	}
}

// TestBudgetOption: WithBudget lowers the default instruction budget,
// and blowing it classifies as resource exhaustion, not an internal
// error — and does not trip the breaker.
func TestBudgetOption(t *testing.T) {
	s := New(WithBudget(1000)) // testSrc needs ~7k instructions
	ctx := context.Background()
	_, err := s.Predict(ctx, Request{Source: testSrc})
	if !errors.Is(err, interp.ErrBudget) || !errors.Is(err, resilience.ErrResourceExhausted) {
		t.Fatalf("err = %v, want ErrBudget classified resource-exhausted", err)
	}
	if br := breakerFor(t, s.Stats(), stageExecute); br.Failures != 0 {
		t.Fatalf("budget exhaustion tripped the breaker: %+v", br)
	}
	// An explicit per-request budget overrides the service default.
	if _, err := s.Predict(ctx, Request{Source: testSrc, Budget: 1 << 20}); err != nil {
		t.Fatalf("explicit budget did not override the default: %v", err)
	}
}

// TestPanicIsolationConcurrent hammers a panicking stage from many
// goroutines: no panic may escape, and every request must resolve to a
// typed internal error. Run with -race.
func TestPanicIsolationConcurrent(t *testing.T) {
	defer resilience.ClearFaults()
	// Breaker disabled so every request reaches the panicking stage.
	s := New(WithWorkers(4), WithBreakerPolicy(resilience.BreakerPolicy{Threshold: 0}))
	resilience.InjectFault("service."+stageExecute, resilience.Fault{Panic: "concurrent kaboom"})
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Predict(context.Background(), Request{
				Source: fmt.Sprintf("int main() { printi(%d); return 0; }", i),
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, resilience.ErrInternal) || !resilience.IsPanic(err) {
			t.Fatalf("request %d: err = %v, want recovered panic", i, err)
		}
	}
	if st := s.Stats(); st.Panics != 16 {
		t.Fatalf("panics = %d, want 16", st.Panics)
	}
}
