package service

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"sync"

	"ballarus/internal/interp"
)

// flight is one in-progress or completed computation in a flightCache.
type flight[V any] struct {
	ready chan struct{} // closed when val/err are set
	val   V
	err   error
	elem  *list.Element // LRU position once completed; nil while in flight
}

// flightCache is a content-addressed cache with single-flight semantics:
// concurrent lookups of the same key share one computation. Completed
// values are kept in an LRU bounded by max entries (0 = unbounded);
// in-flight computations are pinned and never evicted. Errors are never
// cached — the failed entry is removed so a later request retries.
type flightCache[V any] struct {
	mu        sync.Mutex
	max       int
	m         map[string]*flight[V]
	order     *list.List // completed keys, front = most recently used
	evictions int64
}

func newFlightCache[V any](max int) *flightCache[V] {
	return &flightCache[V]{max: max, m: map[string]*flight[V]{}, order: list.New()}
}

// isTransient reports whether err came from cancellation rather than from
// the computation itself, so a waiter with a live context should retry
// instead of inheriting the leader's cancellation.
func isTransient(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, interp.ErrInterrupted)
}

// do returns the cached value for key, computing it with fn if absent.
// hit reports whether the value came from the cache (including joining
// another request's in-flight computation). Waiting respects ctx; the
// computation itself is the leader's and keeps running even if a waiter
// gives up.
func (c *flightCache[V]) do(ctx context.Context, key string, fn func() (V, error)) (val V, hit bool, err error) {
	for {
		c.mu.Lock()
		if f, ok := c.m[key]; ok {
			if f.elem != nil {
				c.order.MoveToFront(f.elem)
			}
			c.mu.Unlock()
			select {
			case <-f.ready:
				if f.err == nil {
					return f.val, true, nil
				}
				if isTransient(f.err) && ctx.Err() == nil {
					continue // the leader was cancelled, not the work; retry
				}
				return val, true, f.err
			case <-ctx.Done():
				return val, false, ctx.Err()
			}
		}
		f := &flight[V]{ready: make(chan struct{})}
		c.m[key] = f
		c.mu.Unlock()

		f.val, f.err = fn()
		c.mu.Lock()
		if f.err != nil {
			delete(c.m, key)
		} else if c.m[key] == f { // not evicted by a racing completion
			f.elem = c.order.PushFront(key)
			c.evict()
		}
		c.mu.Unlock()
		close(f.ready)
		return f.val, false, f.err
	}
}

// evict trims completed entries beyond max, oldest first. Caller holds
// c.mu. In-flight entries are not in order and so are never evicted.
func (c *flightCache[V]) evict() {
	if c.max <= 0 {
		return
	}
	for c.order.Len() > c.max {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.m, back.Value.(string))
		c.evictions++
	}
}

// len returns the number of completed-or-in-flight entries.
func (c *flightCache[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// stats returns the entry count and cumulative evictions.
func (c *flightCache[V]) stats() cacheSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheSnapshot{entries: len(c.m), evictions: c.evictions, capacity: c.max}
}

// hasher builds content-hash cache keys.
type hasher struct {
	h [sha256.Size]byte
	b []byte
}

func newHasher() *hasher { return &hasher{} }

func (h *hasher) str(s string) *hasher {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
	h.b = append(h.b, n[:]...)
	h.b = append(h.b, s...)
	return h
}

func (h *hasher) i64(v int64) *hasher {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(v))
	h.b = append(h.b, n[:]...)
	return h
}

func (h *hasher) i64s(vs []int64) *hasher {
	h.i64(int64(len(vs)))
	for _, v := range vs {
		h.i64(v)
	}
	return h
}

func (h *hasher) bool(v bool) *hasher {
	if v {
		h.b = append(h.b, 1)
	} else {
		h.b = append(h.b, 0)
	}
	return h
}

func (h *hasher) sum() string {
	h.h = sha256.Sum256(h.b)
	return hex.EncodeToString(h.h[:])
}
