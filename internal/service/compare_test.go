package service

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"ballarus/internal/dynpred"
	"ballarus/internal/interp"
	"ballarus/internal/minic"
	"ballarus/internal/resilience"
	"ballarus/internal/suite"
	"ballarus/internal/trace"
)

const compareSrc = `
int main() {
  int i; int j; int s = 0;
  for (i = 0; i < 40; i++) {
    for (j = 0; j < 8; j++) {
      if ((i + j) % 3 == 0) { s += j; } else { s -= 1; }
    }
    if (s % 2 == 0) { s += i; }
  }
  printi(s);
  return 0;
}`

func TestCompareBasics(t *testing.T) {
	s := New()
	ctx := context.Background()
	res, err := s.Compare(ctx, CompareRequest{Request: Request{Source: compareSrc}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "<source>" {
		t.Errorf("name = %q", res.Name)
	}
	// The static pair plus every registered backend, sorted by name.
	want := append([]string{CompareStatic, ComparePerfect}, dynpred.Names()...)
	if len(res.Predictors) != len(want) {
		t.Fatalf("%d entrants, want %d: %+v", len(res.Predictors), len(want), res.Predictors)
	}
	for i := 1; i < len(res.Predictors); i++ {
		if res.Predictors[i-1].Name >= res.Predictors[i].Name {
			t.Errorf("entrants not sorted: %q before %q", res.Predictors[i-1].Name, res.Predictors[i].Name)
		}
	}
	for _, name := range want {
		sc := res.Score(name)
		if sc.Name != name {
			t.Errorf("missing entrant %q", name)
			continue
		}
		if sc.Branches != res.DynamicBranches {
			t.Errorf("%s raced %d branches, run had %d", name, sc.Branches, res.DynamicBranches)
		}
		if sc.PerBranch == nil {
			t.Errorf("%s has no per-branch stats", name)
		}
	}
	// Perfect is the floor for every static vector by construction.
	if p, h := res.Score(ComparePerfect), res.Score(CompareStatic); p.Misses > h.Misses {
		t.Errorf("perfect (%d misses) worse than heuristics (%d)", p.Misses, h.Misses)
	}
	if res.CompareCached {
		t.Error("first request claims a compare cache hit")
	}

	// Second identical request: served from the compare cache.
	res2, err := s.Compare(ctx, CompareRequest{Request: Request{Source: compareSrc}})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.CompareCached || !res2.ProgramCached || !res2.AnalysisCached {
		t.Errorf("repeat request caches: compare=%v program=%v analysis=%v, want all true",
			res2.CompareCached, res2.ProgramCached, res2.AnalysisCached)
	}
	if !reflect.DeepEqual(res.Predictors, res2.Predictors) || !reflect.DeepEqual(res.H2P, res2.H2P) {
		t.Error("cached comparison differs from computed one")
	}
	st := s.Stats()
	if got := st.Stage(stageCompare); got.CacheHits != 1 || got.CacheMisses != 1 {
		t.Errorf("compare stage cache hits/misses = %d/%d, want 1/1", got.CacheHits, got.CacheMisses)
	}
}

func TestCompareValidation(t *testing.T) {
	s := New()
	ctx := context.Background()
	_, err := s.Compare(ctx, CompareRequest{
		Request:    Request{Source: compareSrc},
		Predictors: []string{"oracle"},
	})
	if !errors.Is(err, resilience.ErrInvalidInput) {
		t.Errorf("unknown backend: %v, want invalid input", err)
	}
	_, err = s.Compare(ctx, CompareRequest{})
	if !errors.Is(err, resilience.ErrInvalidInput) {
		t.Errorf("empty request: %v, want invalid input", err)
	}
	// Duplicate and unsorted backends normalize to one entrant each.
	res, err := s.Compare(ctx, CompareRequest{
		Request:    Request{Source: compareSrc},
		Predictors: []string{dynpred.NameTwoBit, dynpred.NameOneBit, dynpred.NameTwoBit},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predictors) != 4 { // static pair + one-bit + two-bit
		t.Errorf("entrants = %+v, want 4", res.Predictors)
	}
}

// TestCompareAgreesWithOfflineReplay is the acceptance check: for every
// suite benchmark, the served tournament's miss counts must equal an
// offline replay of the same materialized trace, for every entrant.
func TestCompareAgreesWithOfflineReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite comparison in -short mode")
	}
	s := New()
	ctx := context.Background()
	for _, b := range suite.All() {
		res, err := s.Compare(ctx, CompareRequest{Request: Request{Benchmark: b.Name}})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}

		// Offline: compile, run with a materialized trace, replay each
		// backend over the events.
		prog, err := minic.Compile(b.Source, minic.Options{})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		run, err := interp.Run(prog, interp.Config{
			Input:         b.Data[0].Input,
			Budget:        b.Budget,
			CollectEvents: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		n := run.Profile.Set.Len()
		for _, name := range dynpred.Names() {
			p, err := dynpred.New(name, n)
			if err != nil {
				t.Fatal(err)
			}
			want := dynpred.Replay(run.Events, n, p)
			got := res.Score(name)
			if got.Misses != want.Miss || got.Branches != want.Branches {
				t.Errorf("%s/%s: served %d/%d misses/branches, offline replay %d/%d",
					b.Name, name, got.Misses, got.Branches, want.Miss, want.Branches)
			}
		}
		perfect := dynpred.StaticResult(run.Profile, trace.PerfectVector(run.Profile))
		if got := res.Score(ComparePerfect); got.Misses != perfect.Miss {
			t.Errorf("%s/perfect: served %d misses, offline %d", b.Name, got.Misses, perfect.Miss)
		}
	}
}

// Same request against two fresh services must yield identical H2P
// sets and scores — the determinism acceptance criterion.
func TestCompareDeterministicAcrossServices(t *testing.T) {
	req := CompareRequest{Request: Request{Benchmark: suite.Names()[0], Seed: 7}}
	ctx := context.Background()
	a, err := New().Compare(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New().Compare(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Predictors, b.Predictors) {
		t.Error("scores differ across identical services")
	}
	if !reflect.DeepEqual(a.H2P, b.H2P) {
		t.Error("H2P classification differs across identical services")
	}
}

func TestCompareKeyStable(t *testing.T) {
	s := New()
	k1, err := s.CompareKey(CompareRequest{Request: Request{Source: compareSrc}})
	if err != nil {
		t.Fatal(err)
	}
	// Explicit full backend list hashes like the defaulted nil list.
	k2, err := s.CompareKey(CompareRequest{Request: Request{Source: compareSrc}, Predictors: dynpred.Names()})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("defaulted and explicit backend lists hash differently")
	}
	k3, err := s.CompareKey(CompareRequest{Request: Request{Source: compareSrc}, Predictors: []string{dynpred.NameGshare}})
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k3 {
		t.Error("different backend sets hash identically")
	}
	if _, err := s.CompareKey(CompareRequest{Request: Request{Source: compareSrc}, Predictors: []string{"oracle"}}); err == nil {
		t.Error("unknown backend should fail key derivation")
	}
}

func TestCompareFaultpointAndMetrics(t *testing.T) {
	defer resilience.ClearFaults()
	s := New()
	resilience.InjectFault("service."+stageCompare, resilience.Fault{Err: errors.New("injected failure")})
	_, err := s.Compare(context.Background(), CompareRequest{Request: Request{Source: compareSrc}})
	if err == nil || !strings.Contains(err.Error(), "compare") {
		t.Fatalf("faultpoint not exercised: %v", err)
	}
	resilience.ClearFaults()

	if _, err := s.Compare(context.Background(), CompareRequest{Request: Request{Source: compareSrc}}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := s.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, w := range []string{
		`ballarus_compare_predictor_misses_total{predictor="tage"}`,
		`ballarus_compare_predictor_misses_total{predictor="ballarus-heuristics"}`,
		`ballarus_compare_miss_rate_pct{predictor="gshare"}`,
		`ballarus_compare_branches_total`,
		`ballarus_compare_h2p_branches_total{verdict="static_beaten"}`,
		`ballarus_stage_runs_total{stage="compare"}`,
	} {
		if !strings.Contains(text, w) {
			t.Errorf("metrics exposition missing %s", w)
		}
	}
}
