package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ballarus/internal/resilience"
)

// BatchItem is one element of a batch: exactly one of Predict or
// Compare must be set.
type BatchItem struct {
	Predict *Request
	Compare *CompareRequest
}

// BatchItemResult is one element's outcome. Exactly one of Predict,
// Compare, or Err is set; Err carries the item's classified error
// (the resilience taxonomy holds per item).
type BatchItemResult struct {
	Predict *Result
	Compare *CompareResult
	Err     error
}

// BatchOutcome summarizes a whole batch alongside its per-item
// results.
type BatchOutcome struct {
	Items     []BatchItemResult
	Succeeded int
	Failed    int
	Elapsed   time.Duration
}

// Batch runs N predict/compare items as one admission unit. With
// tenancy enabled, the whole batch is charged against the tenant's
// rate quota and in-flight cap up front — all N tokens or none, so a
// burst of single requests and one N-item batch cost a tenant the
// same — and a quota rejection fails the batch as a unit with an
// ErrQuotaExceeded-classified error before any work starts.
//
// Past admission the semantics are per-item, never all-or-nothing: a
// malformed or failing item yields its own classified error in the
// matching BatchItemResult slot while the rest proceed. Items fan
// through the same single-flight caches as single requests (duplicate
// items in one batch share one computation), bounded by the worker
// pool. Batch never returns an error together with a non-nil outcome.
func (s *Service) Batch(ctx context.Context, items []BatchItem) (*BatchOutcome, error) {
	start := time.Now()
	if len(items) == 0 {
		return nil, resilience.Invalid(errors.New("service: empty batch"))
	}
	if reg := s.cfg.tenants; reg != nil {
		rel, err := s.admitBatch(ctx, len(items))
		if err != nil {
			s.met.shed.Add(1)
			return nil, err
		}
		defer rel()
		ctx = context.WithValue(ctx, preadmitKey{}, true)
	}

	// Fan bounded by the worker pool: spawning more would only stack
	// the excess in the admission queue against our own items (and,
	// under load, trip the fairness gate on ourselves).
	par := min(len(items), s.cfg.workers)
	out := &BatchOutcome{Items: make([]BatchItemResult, len(items))}
	var wg sync.WaitGroup
	slots := make(chan struct{}, par)
	for i := range items {
		slots <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-slots }()
			out.Items[i] = s.batchItem(ctx, items[i])
		}(i)
	}
	wg.Wait()
	for i := range out.Items {
		if out.Items[i].Err != nil {
			out.Failed++
		} else {
			out.Succeeded++
		}
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

// admitBatch charges the whole batch against the tenant's quota. The
// returned release undoes the in-flight units when the batch finishes.
func (s *Service) admitBatch(ctx context.Context, n int) (func(), error) {
	reg := s.cfg.tenants
	id := tenantID(ctx)
	rel, qerr := reg.Admit(id, n)
	if qerr != nil {
		s.met.tenantShed(id, qerr.Reason)
		return nil, resilience.Quota(fmt.Errorf("batch of %d: %w", n, qerr))
	}
	s.met.tenantInflight(id, int64(n))
	return func() {
		s.met.tenantInflight(id, int64(-n))
		rel()
	}, nil
}

// batchItem dispatches one item, classifying shape errors per item.
func (s *Service) batchItem(ctx context.Context, it BatchItem) BatchItemResult {
	switch {
	case it.Predict != nil && it.Compare != nil:
		return BatchItemResult{Err: resilience.Invalid(errors.New("service: batch item sets both predict and compare"))}
	case it.Predict != nil:
		res, err := s.Predict(ctx, *it.Predict)
		return BatchItemResult{Predict: res, Err: err}
	case it.Compare != nil:
		res, err := s.Compare(ctx, *it.Compare)
		return BatchItemResult{Compare: res, Err: err}
	default:
		return BatchItemResult{Err: resilience.Invalid(errors.New("service: batch item sets neither predict nor compare"))}
	}
}
