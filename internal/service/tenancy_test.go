package service

import (
	"context"
	"errors"
	"sync"
	"testing"

	"ballarus/internal/resilience"
	"ballarus/internal/tenant"
)

func TestQuotaRejectionDistinctFromOverload(t *testing.T) {
	reg := tenant.NewRegistry(tenant.Config{
		Overrides: map[string]tenant.Limits{"metered": {Rate: 1, Burst: 1}},
	})
	s := New(WithTenants(reg))
	ctx := tenant.WithID(context.Background(), "metered")

	if _, err := s.Predict(ctx, Request{Source: testSrc}); err != nil {
		t.Fatalf("first request within burst failed: %v", err)
	}
	_, err := s.Predict(ctx, Request{Source: testSrc})
	if err == nil {
		t.Fatal("second immediate request should exceed the 1-token bucket")
	}
	if !errors.Is(err, resilience.ErrQuotaExceeded) {
		t.Errorf("quota rejection must match ErrQuotaExceeded: %v", err)
	}
	if !errors.Is(err, resilience.ErrOverload) {
		t.Errorf("quota rejection must still classify as ErrOverload: %v", err)
	}
	var qerr *tenant.QuotaError
	if !errors.As(err, &qerr) {
		t.Fatalf("quota rejection must carry *tenant.QuotaError: %v", err)
	}
	if qerr.Reason != "rate" || qerr.Tenant != "metered" || qerr.RetryAfter <= 0 {
		t.Errorf("QuotaError = %+v, want rate/metered with positive RetryAfter", qerr)
	}
	// The default tenant is unmetered: same service, no rejection.
	if _, err := s.Predict(context.Background(), Request{Source: testSrc}); err != nil {
		t.Fatalf("unmetered default tenant rejected: %v", err)
	}
}

// TestFairnessShedsHogNotPolite saturates a 1-worker service with one
// hog tenant — a hang holds the worker, the hog fills the queue past
// its depth — and asserts the fairness invariant directly: the hog's
// next request is shed as plain overload (not quota), a polite tenant
// still queues through the saturated gate, and once the wedge clears
// every queued request (the polite one included) completes.
func TestFairnessShedsHogNotPolite(t *testing.T) {
	defer resilience.ClearFaults()
	reg := tenant.NewRegistry(tenant.Config{})
	s := New(WithWorkers(1), WithQueueDepth(4), WithTenants(reg))
	hogCtx, cancelHog := context.WithCancel(tenant.WithID(context.Background(), "hog"))
	defer cancelHog()

	// One shot only: the hog's first request hangs in execute until its
	// context is canceled; everything admitted later runs normally.
	resilience.InjectFault("service.execute", resilience.Fault{Hang: true, Times: 1})

	var wg sync.WaitGroup
	launch := func(ctx context.Context, errs chan<- error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Predict(ctx, Request{Source: testSrc})
			errs <- err
		}()
	}

	hogErrs := make(chan error, 8)
	launch(hogCtx, hogErrs) // takes the worker slot and wedges
	waitFor(t, func() bool { return s.met.inFlight.Value() == 1 })

	// Fill the queue to depth, plus the one-slot fairness grace.
	queuedCtx := tenant.WithID(context.Background(), "hog")
	for i := 0; i < 5; i++ {
		launch(queuedCtx, hogErrs)
		want := int64(i + 1)
		waitFor(t, func() bool { return s.met.queued.Value() == want })
	}

	// The hog is now far over its fair share: shed, as overload, not quota.
	_, err := s.Predict(queuedCtx, Request{Source: testSrc})
	if err == nil {
		t.Fatal("over-share hog request should be shed")
	}
	if !errors.Is(err, resilience.ErrOverload) || !errors.Is(err, ErrBusy) {
		t.Errorf("fairness shed must classify as overload ErrBusy: %v", err)
	}
	if errors.Is(err, resilience.ErrQuotaExceeded) {
		t.Errorf("fairness shed must not masquerade as a quota rejection: %v", err)
	}

	// An under-share tenant queues straight through the saturated gate.
	politeErrs := make(chan error, 1)
	launch(tenant.WithID(context.Background(), "polite"), politeErrs)
	waitFor(t, func() bool { return s.met.queued.Value() == 6 })
	select {
	case err := <-politeErrs:
		t.Fatalf("polite request rejected under saturation: %v", err)
	default:
	}

	// Unwedge: the hang returns, the queue drains, and every survivor —
	// five hog requests and the polite one — completes.
	cancelHog()
	if err := <-politeErrs; err != nil {
		t.Errorf("polite request failed after drain: %v", err)
	}
	var hogOK, hogErr int
	for i := 0; i < 6; i++ {
		if err := <-hogErrs; err != nil {
			hogErr++
		} else {
			hogOK++
		}
	}
	// The wedged request fails (its context was canceled); the five
	// queued ones complete.
	if hogOK != 5 || hogErr != 1 {
		t.Errorf("hog outcomes = %d ok / %d err, want 5/1", hogOK, hogErr)
	}
	wg.Wait()
	if got := reg.InFlight("hog"); got != 0 {
		t.Errorf("hog leaked %d in-flight units", got)
	}
	if got := reg.InFlight("polite"); got != 0 {
		t.Errorf("polite leaked %d in-flight units", got)
	}
}

func TestBatchPartialFailure(t *testing.T) {
	s := New()
	out, err := s.Batch(context.Background(), []BatchItem{
		{Predict: &Request{Source: testSrc}},
		{Predict: &Request{}}, // invalid: neither source nor benchmark
		{Compare: &CompareRequest{Request: Request{Source: testSrc}}},
		{}, // invalid: empty item
	})
	if err != nil {
		t.Fatalf("batch with bad items must not fail as a whole: %v", err)
	}
	if out.Succeeded != 2 || out.Failed != 2 {
		t.Fatalf("outcome = %d ok / %d failed, want 2/2", out.Succeeded, out.Failed)
	}
	if out.Items[0].Predict == nil || out.Items[0].Err != nil {
		t.Errorf("item 0 should carry a predict result: %+v", out.Items[0])
	}
	if !errors.Is(out.Items[1].Err, resilience.ErrInvalidInput) {
		t.Errorf("item 1 error = %v, want invalid input", out.Items[1].Err)
	}
	if out.Items[2].Compare == nil || out.Items[2].Err != nil {
		t.Errorf("item 2 should carry a compare result: %+v", out.Items[2])
	}
	if !errors.Is(out.Items[3].Err, resilience.ErrInvalidInput) {
		t.Errorf("item 3 error = %v, want invalid input", out.Items[3].Err)
	}
	if _, err := s.Batch(context.Background(), nil); !errors.Is(err, resilience.ErrInvalidInput) {
		t.Errorf("empty batch = %v, want invalid input", err)
	}
}

func TestBatchQuotaAccounting(t *testing.T) {
	reg := tenant.NewRegistry(tenant.Config{
		Overrides: map[string]tenant.Limits{"metered": {Rate: 1, Burst: 5}},
	})
	s := New(WithTenants(reg))
	ctx := tenant.WithID(context.Background(), "metered")

	// A batch over the bucket fails as a unit, before any work.
	over := make([]BatchItem, 6)
	for i := range over {
		over[i] = BatchItem{Predict: &Request{Source: testSrc}}
	}
	_, err := s.Batch(ctx, over)
	if !errors.Is(err, resilience.ErrQuotaExceeded) {
		t.Fatalf("6-item batch against a 5-token bucket = %v, want quota rejection", err)
	}

	// A batch exactly at the bucket is admitted as a unit, and the
	// per-item calls must not double-charge: every item succeeds.
	fit := over[:5]
	out, err := s.Batch(ctx, fit)
	if err != nil {
		t.Fatalf("5-item batch rejected: %v", err)
	}
	if out.Succeeded != 5 || out.Failed != 0 {
		t.Fatalf("outcome = %d ok / %d failed, want 5/0 (double-charged items would be quota-shed)", out.Succeeded, out.Failed)
	}

	// The batch spent the whole bucket: a single follow-up is rejected.
	if _, err := s.Predict(ctx, Request{Source: testSrc}); !errors.Is(err, resilience.ErrQuotaExceeded) {
		t.Errorf("post-batch request = %v, want quota rejection (batch must have charged 5 tokens)", err)
	}
	if got := reg.InFlight("metered"); got != 0 {
		t.Errorf("batch leaked %d in-flight units", got)
	}
}
