package service

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"ballarus/internal/resilience"
)

// echoShardRunner is the minimal ShardRunner: the result is the
// request payload itself, which exercises caching without pulling the
// jobs package into the service tests.
type echoShardRunner struct{}

func (echoShardRunner) RunShardPayload(_ context.Context, payload []byte) ([]byte, error) {
	out := make([]byte, len(payload))
	copy(out, payload)
	return out, nil
}

func TestShardStage(t *testing.T) {
	s := New(WithShardRunner(echoShardRunner{}))
	ctx := context.Background()

	out, err := s.Shard(ctx, []byte(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Payload, []byte(`{"x":1}`)) || out.Cached {
		t.Fatalf("first shard = %q cached=%v, want echoed payload, uncached", out.Payload, out.Cached)
	}
	out, err = s.Shard(ctx, []byte(`{"x":1}`))
	if err != nil || !out.Cached {
		t.Fatalf("repeat shard cached=%v err=%v, want cache hit", out != nil && out.Cached, err)
	}
	out, err = s.Shard(ctx, []byte(`{"x":2}`))
	if err != nil || out.Cached {
		t.Fatalf("distinct shard cached=%v err=%v, want miss", out != nil && out.Cached, err)
	}

	st := s.Stats()
	var found bool
	for _, stg := range st.Stages {
		if stg.Name == stageShard {
			found = true
			if stg.Count != 3 || stg.CacheHits != 1 || stg.CacheMisses != 2 {
				t.Fatalf("shard stage stats = %+v, want count 3, 1 hit, 2 misses", stg)
			}
		}
	}
	if !found {
		t.Fatal("no shard stage in stats")
	}
}

func TestShardWithoutRunner(t *testing.T) {
	s := New()
	_, err := s.Shard(context.Background(), []byte(`{}`))
	if !errors.Is(err, resilience.ErrInvalidInput) {
		t.Fatalf("Shard without runner = %v, want ErrInvalidInput", err)
	}
}

func TestShardCancelled(t *testing.T) {
	s := New(WithShardRunner(echoShardRunner{}))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Shard(ctx, []byte(`{}`)); err == nil {
		t.Fatal("Shard on cancelled ctx succeeded")
	}
}
