package service

import (
	"context"
	"errors"
	"sort"
	"time"

	"ballarus/internal/core"
	"ballarus/internal/dynpred"
	"ballarus/internal/interp"
	"ballarus/internal/mir"
	"ballarus/internal/resilience"
	"ballarus/internal/trace"
)

// Entrant labels for the two static predictors every comparison
// includes alongside the dynamic backends.
const (
	CompareStatic  = "ballarus-heuristics"
	ComparePerfect = "perfect"
)

// CompareRequest describes one static-vs-dynamic tournament job: the
// usual pipeline inputs plus the dynamic backends to race.
type CompareRequest struct {
	Request
	// Predictors names the dynamic backends (dynpred registry names) to
	// race against the static predictors. Nil means every registered
	// backend. Order is irrelevant to the result: entrants are reported
	// sorted by name.
	Predictors []string
	// H2PMinExecuted overrides the minimum dynamic executions a branch
	// needs to be classified hard-to-predict (0 = the dynpred default).
	H2PMinExecuted int64
}

// PredictorScore is one entrant's tally over the compared run.
type PredictorScore struct {
	Name        string  `json:"name"`
	Branches    int64   `json:"branches"`
	Misses      int64   `json:"misses"`
	MissRatePct float64 `json:"miss_rate_pct"`
	// PerBranch carries the per-branch tallies for callers that drill
	// down; the HTTP layer omits it from responses.
	PerBranch []dynpred.BranchStat `json:"per_branch,omitempty"`
}

// CompareResult is the outcome of one tournament. Results may be shared
// between requests that hit the cache, so treat every field as
// read-only.
type CompareResult struct {
	// Name echoes the benchmark name, or "<source>" for source requests.
	Name string `json:"name"`
	// Predictors holds one score per entrant — the static pair
	// (CompareStatic, ComparePerfect) plus each requested dynamic
	// backend — sorted by name.
	Predictors []PredictorScore `json:"predictors"`
	// H2P classifies the contested branches: statically hard but
	// history-predictable, and the converse.
	H2P dynpred.H2P `json:"h2p"`

	StaticBranches  int   `json:"static_branches"`
	DynamicBranches int64 `json:"dynamic_branches"`
	Steps           int64 `json:"steps"`

	// Cache outcome of this particular request.
	ProgramCached  bool          `json:"program_cached"`
	AnalysisCached bool          `json:"analysis_cached"`
	CompareCached  bool          `json:"compare_cached"`
	Elapsed        time.Duration `json:"elapsed_ns"`
}

// Score returns the named entrant's score, or a zero PredictorScore.
func (r *CompareResult) Score(name string) PredictorScore {
	for _, p := range r.Predictors {
		if p.Name == name {
			return p
		}
	}
	return PredictorScore{}
}

// resolveCompare normalizes the tournament half of a request: backend
// names default to the full registry and are validated and sorted.
func resolveCompare(req *CompareRequest) error {
	if req.Predictors == nil {
		req.Predictors = dynpred.Names()
		return nil
	}
	seen := map[string]bool{}
	names := make([]string, 0, len(req.Predictors))
	for _, name := range req.Predictors {
		if _, err := dynpred.New(name, 0); err != nil {
			return resilience.Invalid(err)
		}
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	sort.Strings(names)
	req.Predictors = names
	return nil
}

// compareKey extends the run key with everything else that shapes a
// tournament: the heuristic order behind the static entrant, the
// backend set, and the H2P threshold.
func (req *CompareRequest) compareKey(runKey string) string {
	h := newHasher().str(runKey).str("compare")
	for _, heur := range req.Order {
		h.i64(int64(heur))
	}
	for _, name := range req.Predictors {
		h.str(name)
	}
	return h.i64(req.H2PMinExecuted).sum()
}

// CompareKey returns the canonical content hash identifying the result
// of req, for response caches layered above the service (the compare
// analogue of RequestKey). Resolution failures classify as invalid
// input.
func (s *Service) CompareKey(req CompareRequest) (string, error) {
	if err := s.resolve(&req.Request); err != nil {
		return "", err
	}
	if err := resolveCompare(&req); err != nil {
		return "", err
	}
	_, _, runKey := req.Request.keys()
	return req.compareKey(runKey), nil
}

// Compare races the requested dynamic predictors against the Ball-Larus
// static predictions (and the perfect static predictor) over one
// interpreter run, streaming the branch-event trace into every entrant
// with no materialization. It shares the compile and analysis caches
// with Predict, caches whole tournament results by content hash, and is
// admitted, breaker-guarded, retried, and metered exactly like Predict.
// Error classification follows the same taxonomy.
func (s *Service) Compare(ctx context.Context, req CompareRequest) (*CompareResult, error) {
	s.met.requests.Add(1)
	start := time.Now()
	if s.cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.timeout)
		defer cancel()
	}
	done, err := s.admitTraced(ctx)
	if err != nil {
		s.met.errors.Add(1)
		return nil, err
	}
	defer done()
	s.met.inFlight.Add(1)
	defer s.met.inFlight.Add(-1)

	res, err := s.compare(ctx, req)
	if err != nil {
		s.met.errors.Add(1)
		if isTransient(err) {
			s.met.canceled.Add(1)
		}
		return nil, err
	}
	res.Elapsed = time.Since(start)
	s.met.completed.Add(1)
	return res, nil
}

func (s *Service) compare(ctx context.Context, req CompareRequest) (*CompareResult, error) {
	if err := s.resolve(&req.Request); err != nil {
		return nil, err
	}
	if err := resolveCompare(&req); err != nil {
		return nil, err
	}
	progKey, analysisKey, runKey := req.Request.keys()

	// Stages 1-3 are Predict's: same caches, same keys, so a compare
	// after a predict of the same program pays for neither compile nor
	// analysis (nor vice versa).
	if err := ctx.Err(); err != nil {
		return nil, resilience.Classify(err)
	}
	prog, progHit, err := s.compileStage(ctx, &req.Request, progKey)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, resilience.Classify(err)
	}
	analysis, analysisHit, err := s.analyzeStage(ctx, analysisKey, prog)
	if err != nil {
		return nil, err
	}

	if err := ctx.Err(); err != nil {
		return nil, resilience.Classify(err)
	}
	preds, _, _ := timedCtx(ctx, s.met, stagePredict, func() ([]core.Prediction, bool, error) {
		return analysis.Predictions(req.Order), false, nil
	})

	// Stage 4: the tournament. One fresh interpreter run streams every
	// branch event through the entrants; the static pair is scored from
	// the run's own edge profile. The whole result is content-addressed,
	// so a repeat request is a single cache lookup.
	if err := ctx.Err(); err != nil {
		return nil, resilience.Classify(err)
	}
	res, compareHit, err := runStage(s, ctx, stageCompare, func() (*CompareResult, bool, error) {
		r, hit, err := s.compares.do(ctx, req.compareKey(runKey), func() (*CompareResult, error) {
			return s.runTournament(ctx, &req, prog, analysis, preds)
		})
		if errors.Is(err, interp.ErrInterrupted) && ctx.Err() != nil {
			err = ctx.Err()
		}
		return r, hit, err
	})
	if err != nil {
		return nil, err
	}
	if compareHit {
		s.met.runHits.Add(1)
	} else {
		s.met.runMisses.Add(1)
	}

	// Cache outcomes are per-request, and results are shared: return a
	// shallow copy rather than mutating the cached value.
	out := *res
	out.ProgramCached = progHit
	out.AnalysisCached = analysisHit
	out.CompareCached = compareHit
	return &out, nil
}

// runTournament executes the program once, streaming events into the
// dynamic entrants, and assembles the scored comparison.
func (s *Service) runTournament(ctx context.Context, req *CompareRequest, prog *mir.Program, analysis *core.Analysis, preds []core.Prediction) (*CompareResult, error) {
	tour, err := dynpred.NewTournament(len(analysis.Branches), req.Predictors)
	if err != nil {
		return nil, resilience.Invalid(err)
	}
	run, err := interp.Run(prog, interp.Config{
		Input:     req.Input,
		Budget:    req.Budget,
		Seed:      req.Seed,
		Interrupt: ctx.Done(),
		OnEvent:   tour.Observe,
	})
	var f *interp.Fault
	if errors.As(err, &f) {
		err = resilience.Invalid(err)
	}
	if err != nil {
		return nil, err
	}

	static := dynpred.StaticResult(run.Profile, trace.PredictionVector(preds))
	perfect := dynpred.StaticResult(run.Profile, trace.PerfectVector(run.Profile))
	dynamics := tour.Results()

	h2p, err := dynpred.ClassifyH2P(static, dynamics, dynpred.H2POptions{MinExecuted: req.H2PMinExecuted})
	if err != nil {
		return nil, err
	}

	res := &CompareResult{
		Name:            req.Benchmark,
		H2P:             h2p,
		StaticBranches:  len(analysis.Branches),
		DynamicBranches: run.Profile.Total(),
		Steps:           run.Steps,
	}
	if res.Name == "" {
		res.Name = "<source>"
	}
	res.Predictors = append(res.Predictors,
		toScore(CompareStatic, static), toScore(ComparePerfect, perfect))
	for _, d := range dynamics {
		res.Predictors = append(res.Predictors, toScore(d.Name, d.Result))
	}
	sort.Slice(res.Predictors, func(i, j int) bool {
		return res.Predictors[i].Name < res.Predictors[j].Name
	})
	s.met.observeCompare(res)
	return res, nil
}

func toScore(name string, r dynpred.Result) PredictorScore {
	return PredictorScore{
		Name:        name,
		Branches:    r.Branches,
		Misses:      r.Miss,
		MissRatePct: r.MissRate(),
		PerBranch:   r.PerBranch,
	}
}
