package service

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"ballarus/internal/core"
	"ballarus/internal/durable"
	"ballarus/internal/minic"
)

// SectionRequests is the snapshot section holding the service's own
// warm-set recipes. External layers (e.g. blserve's last-known-good
// cache) register their own sections via RegisterDurableSection.
const SectionRequests = "request"

// recipe is the durable form of a resolved request: everything needed
// to recompute a cached result deterministically. The pipeline is
// content-addressed and deterministic, so persisting inputs instead of
// artifacts keeps the snapshot format independent of every internal
// representation (programs, analyses, profiles) while rewarming all
// three caches on replay.
type recipe struct {
	Source       string     `json:"src"`
	SpillLocals  bool       `json:"spill,omitempty"`
	NoJumpTables bool       `json:"nojt,omitempty"`
	Optimize     bool       `json:"opt,omitempty"`
	Order        core.Order `json:"order"`
	Input        []int64    `json:"input,omitempty"`
	Budget       int64      `json:"budget,omitempty"`
	Seed         int64      `json:"seed,omitempty"`
}

func recipeOf(req *Request) recipe {
	return recipe{
		Source:       req.Source,
		SpillLocals:  req.CompileOpts.SpillLocals,
		NoJumpTables: req.CompileOpts.NoJumpTables,
		Optimize:     req.Optimize,
		Order:        req.Order,
		Input:        req.Input,
		Budget:       req.Budget,
		Seed:         req.Seed,
	}
}

func (r recipe) request() Request {
	return Request{
		Source:      r.Source,
		CompileOpts: minic.Options{SpillLocals: r.SpillLocals, NoJumpTables: r.NoJumpTables},
		Optimize:    r.Optimize,
		Order:       r.Order,
		Input:       r.Input,
		Budget:      r.Budget,
		Seed:        r.Seed,
	}
}

// warmSet is the bounded LRU of completed-request recipes, keyed by run
// key. It is what a snapshot persists for the service's caches.
type warmSet struct {
	mu    sync.Mutex
	max   int
	m     map[string]*list.Element
	order *list.List // of warmEntry, front = most recently used
}

type warmEntry struct {
	key     string
	payload []byte
}

func newWarmSet(max int) *warmSet {
	if max <= 0 {
		max = 4096
	}
	return &warmSet{max: max, m: map[string]*list.Element{}, order: list.New()}
}

func (w *warmSet) contains(key string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, ok := w.m[key]
	return ok
}

func (w *warmSet) add(key string, payload []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if e, ok := w.m[key]; ok {
		e.Value.(*warmEntry).payload = payload
		w.order.MoveToFront(e)
		return
	}
	w.m[key] = w.order.PushFront(&warmEntry{key: key, payload: payload})
	for w.order.Len() > w.max {
		back := w.order.Back()
		w.order.Remove(back)
		delete(w.m, back.Value.(*warmEntry).key)
	}
}

func (w *warmSet) len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.order.Len()
}

// entries snapshots the warm set oldest-first, so replay warms in
// rough insertion order and the most recent work wins LRU position.
func (w *warmSet) entries() []durable.Entry {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]durable.Entry, 0, w.order.Len())
	for e := w.order.Back(); e != nil; e = e.Prev() {
		we := e.Value.(*warmEntry)
		out = append(out, durable.Entry{Section: SectionRequests, Key: we.key, Payload: we.payload})
	}
	return out
}

// DurableSection lets a layer above the service persist its own state
// inside the service snapshot (e.g. blserve's last-known-good response
// cache). Collect is called at snapshot time; Restore once per entry of
// the section during Recover. Restore errors skip the entry (counted),
// never fail recovery.
type DurableSection struct {
	Collect func() []durable.Entry
	Restore func(e durable.Entry) error
}

// durability is the service's durable-state machinery; nil when
// disabled.
type durability struct {
	store     *durable.Store
	journal   *durable.Journal
	warm      *warmSet
	snapEvery time.Duration

	mu       sync.Mutex
	sections map[string]DurableSection

	stopc chan struct{}
	donec chan struct{}
}

// WithDurableStore persists service state under dir: a periodic (and
// shutdown-time) snapshot of the warm request set plus registered
// sections, and an append-only journal of accepted requests. Call
// Recover at boot to load it, and Close at shutdown to write the final
// snapshot. An unusable directory surfaces from Recover.
func WithDurableStore(dir string) Option { return func(c *config) { c.durableDir = dir } }

// WithSnapshotInterval sets the periodic snapshot cadence; <= 0 means
// the 30s default. Only meaningful with WithDurableStore.
func WithSnapshotInterval(d time.Duration) Option { return func(c *config) { c.snapEvery = d } }

// WithJournalSyncInterval sets the journal's fsync batching interval;
// <= 0 means the 100ms default. Only meaningful with WithDurableStore.
func WithJournalSyncInterval(d time.Duration) Option { return func(c *config) { c.journalSync = d } }

// WithWatchdog arms a watchdog that restarts the worker pool when it is
// saturated, has waiters, and makes no progress for a full deadline —
// the signature of every worker wedged on an unkillable computation.
// d <= 0 disables it (the default).
func WithWatchdog(d time.Duration) Option { return func(c *config) { c.watchdog = d } }

// initDurability opens the store and journal; called from New when a
// durable directory is configured. Failure disables durability and is
// reported by Recover.
func (s *Service) initDurability() error {
	store, err := durable.NewStore(s.cfg.durableDir)
	if err != nil {
		return err
	}
	journal, err := durable.OpenJournal(store.JournalPath(), durable.JournalOptions{SyncEvery: s.cfg.journalSync})
	if err != nil {
		return err
	}
	warmCap := s.cfg.cacheSize
	d := &durability{
		store:     store,
		journal:   journal,
		warm:      newWarmSet(warmCap),
		snapEvery: s.cfg.snapEvery,
		sections:  map[string]DurableSection{},
		stopc:     make(chan struct{}),
		donec:     make(chan struct{}),
	}
	if d.snapEvery <= 0 {
		d.snapEvery = 30 * time.Second
	}
	s.dur = d
	go s.snapshotLoop()
	return nil
}

func (s *Service) snapshotLoop() {
	defer close(s.dur.donec)
	t := time.NewTicker(s.dur.snapEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.SnapshotNow()
		case <-s.dur.stopc:
			return
		}
	}
}

// RegisterDurableSection registers an external snapshot section. Call
// before Recover so snapshots of the section can be restored.
func (s *Service) RegisterDurableSection(name string, sec DurableSection) {
	if s.dur == nil {
		return
	}
	s.dur.mu.Lock()
	defer s.dur.mu.Unlock()
	s.dur.sections[name] = sec
}

// observeAccepted journals a newly accepted piece of work so a crash
// mid-request can still rewarm it on restart. Requests already in the
// warm set are skipped — their recipes live in the snapshot.
func (s *Service) observeAccepted(req *Request, runKey string) {
	if s.dur == nil || s.dur.warm.contains(runKey) {
		return
	}
	payload, err := json.Marshal(recipeOf(req))
	if err != nil {
		return
	}
	if s.dur.journal.Append(payload) == nil {
		s.met.journalAppends.Add(1)
	}
}

// observeCompleted admits a successful request into the warm set.
func (s *Service) observeCompleted(req *Request, runKey string) {
	if s.dur == nil {
		return
	}
	payload, err := json.Marshal(recipeOf(req))
	if err != nil {
		return
	}
	s.dur.warm.add(runKey, payload)
}

// RecoveryStats reports what Recover found and rewarmed.
type RecoveryStats struct {
	// SnapshotEntries / SnapshotSkipped are intact / dropped snapshot
	// entries (dropped = CRC or decode failure, torn tail, unknown
	// section, or failed replay).
	SnapshotEntries int64 `json:"snapshot_entries"`
	SnapshotSkipped int64 `json:"snapshot_skipped"`
	// JournalReplayed / JournalSkipped are the same for journal records.
	JournalReplayed int64 `json:"journal_replayed"`
	JournalSkipped  int64 `json:"journal_skipped"`
	// Warmed counts requests replayed through the pipeline into the
	// caches.
	Warmed int64 `json:"warmed"`
}

// Recover loads durable state at boot: the snapshot (per-entry
// corruption tolerant), then the journal (requests in flight when the
// last process died), replaying every recipe through the pipeline to
// rewarm the caches. It finishes by writing a fresh snapshot and
// resetting the journal. Corruption is never fatal — it only increments
// the skip counters. The only errors are configuration-level: no
// durable store, or an unusable state directory.
func (s *Service) Recover(ctx context.Context) (RecoveryStats, error) {
	var rs RecoveryStats
	if s.dur == nil {
		if s.durInitErr != nil {
			return rs, fmt.Errorf("service: durable store unavailable: %w", s.durInitErr)
		}
		return rs, errors.New("service: no durable store configured (WithDurableStore)")
	}
	// Replayed work must not be re-journaled; completion still admits it
	// into the warm set.
	s.recovering.Store(true)
	defer s.recovering.Store(false)

	entries, snapStats, err := durable.ReadSnapshotFile(s.dur.store.SnapshotPath())
	if err != nil && !os.IsNotExist(err) {
		return rs, fmt.Errorf("service: read snapshot: %w", err)
	}
	rs.SnapshotSkipped = int64(snapStats.Skipped)
	if snapStats.BadMagic || snapStats.VersionSkew {
		// The whole file is unreadable; count it as one skipped unit so
		// the loss is visible, then boot cold.
		if err == nil {
			rs.SnapshotSkipped++
		}
		entries = nil
	}
	for _, e := range entries {
		if ctx.Err() != nil {
			break
		}
		if e.Section == SectionRequests {
			if s.replayRecipe(ctx, e.Payload) {
				rs.SnapshotEntries++
				rs.Warmed++
			} else {
				rs.SnapshotSkipped++
			}
			continue
		}
		s.dur.mu.Lock()
		sec, ok := s.dur.sections[e.Section]
		s.dur.mu.Unlock()
		if !ok || sec.Restore == nil || sec.Restore(e) != nil {
			rs.SnapshotSkipped++
			continue
		}
		rs.SnapshotEntries++
	}

	jStats, err := durable.ReplayJournal(s.dur.store.JournalPath(), func(payload []byte) error {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if s.replayRecipe(ctx, payload) {
			rs.JournalReplayed++
			rs.Warmed++
		} else {
			rs.JournalSkipped++
		}
		return nil
	})
	if err != nil && !os.IsNotExist(err) && !errors.Is(err, ctx.Err()) {
		return rs, fmt.Errorf("service: replay journal: %w", err)
	}
	rs.JournalSkipped += int64(jStats.Skipped)

	s.met.recordRecovery(rs)
	// The rewarmed state is now the baseline: persist it and drop the
	// journal it subsumes.
	if err := s.SnapshotNow(); err != nil {
		return rs, err
	}
	if err := s.dur.journal.Reset(); err != nil {
		return rs, fmt.Errorf("service: reset journal: %w", err)
	}
	return rs, nil
}

// replayRecipe reruns one persisted recipe through the pipeline,
// bypassing admission control (recovery happens before traffic). A
// successful replay lands in the warm set via the normal completion
// hook. Returns false when the recipe is unusable or the pipeline
// rejects it — a recipe that no longer computes is data loss, not an
// outage.
func (s *Service) replayRecipe(ctx context.Context, payload []byte) bool {
	var r recipe
	if err := json.Unmarshal(payload, &r); err != nil || r.Source == "" {
		return false
	}
	res, err := s.predict(ctx, r.request())
	return err == nil && res != nil
}

// SnapshotNow writes a snapshot of the warm set and every registered
// section, atomically replacing the previous snapshot.
func (s *Service) SnapshotNow() error {
	if s.dur == nil {
		return errors.New("service: no durable store configured")
	}
	entries := s.dur.warm.entries()
	s.dur.mu.Lock()
	for name, sec := range s.dur.sections {
		if sec.Collect == nil {
			continue
		}
		for _, e := range sec.Collect() {
			e.Section = name
			entries = append(entries, e)
		}
	}
	s.dur.mu.Unlock()
	if err := durable.WriteSnapshotFile(s.dur.store.SnapshotPath(), entries); err != nil {
		s.met.snapshotErrors.Add(1)
		return fmt.Errorf("service: write snapshot: %w", err)
	}
	s.met.snapshotWrites.Add(1)
	return nil
}

// Close shuts the service's background machinery down: the watchdog,
// the snapshot loop, and — after a final snapshot — the journal. Safe
// to call on a service without durability, and idempotent.
func (s *Service) Close() error {
	var err error
	s.closeOnce.Do(func() {
		if s.watchdog != nil {
			s.watchdog.Stop()
		}
		if s.dur == nil {
			return
		}
		close(s.dur.stopc)
		<-s.dur.donec
		err = s.SnapshotNow()
		if err == nil {
			// The snapshot covers everything; the journal is obsolete.
			err = s.dur.journal.Reset()
		}
		if cerr := s.dur.journal.Close(); err == nil {
			err = cerr
		}
	})
	return err
}
