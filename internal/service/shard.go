package service

import (
	"context"
	"errors"
	"time"

	"ballarus/internal/resilience"
)

// ShardRunner executes one opaque experiment-shard payload and returns
// an opaque result payload. The concrete implementation lives in
// internal/jobs (which imports this package); the service only needs
// the []byte-in/[]byte-out contract, keeping the dependency direction
// service <- jobs. Implementations must be deterministic in the payload
// — the service caches results by content hash — and must classify
// errors with the resilience taxonomy (ErrInvalidInput for payloads
// that can never succeed).
type ShardRunner interface {
	RunShardPayload(ctx context.Context, payload []byte) ([]byte, error)
}

// WithShardRunner enables the shard stage: POST /v1/shard (and
// Service.Shard) execute experiment shards through r. Without it, Shard
// fails with an invalid-input error.
func WithShardRunner(r ShardRunner) Option { return func(c *config) { c.shardRunner = r } }

// ShardOutcome is the result of one shard execution: the runner's
// response payload plus this request's cache outcome.
type ShardOutcome struct {
	Payload []byte
	Cached  bool
	Elapsed time.Duration
}

// Shard executes one experiment shard through the configured
// ShardRunner. Shards are content-addressed by their request payload
// and deduplicated single-flight, so a coordinator retrying a shard on
// the replica that already computed it pays one cache lookup. The stage
// is admitted, breaker-guarded, retried, faultpoint-instrumented, and
// metered exactly like Predict and Compare; error classification
// follows the same taxonomy.
func (s *Service) Shard(ctx context.Context, payload []byte) (*ShardOutcome, error) {
	s.met.requests.Add(1)
	start := time.Now()
	if s.cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.timeout)
		defer cancel()
	}
	done, err := s.admitTraced(ctx)
	if err != nil {
		s.met.errors.Add(1)
		return nil, err
	}
	defer done()
	s.met.inFlight.Add(1)
	defer s.met.inFlight.Add(-1)

	out, err := s.shard(ctx, payload)
	if err != nil {
		s.met.errors.Add(1)
		if isTransient(err) {
			s.met.canceled.Add(1)
		}
		return nil, err
	}
	out.Elapsed = time.Since(start)
	s.met.completed.Add(1)
	return out, nil
}

func (s *Service) shard(ctx context.Context, payload []byte) (*ShardOutcome, error) {
	runner := s.cfg.shardRunner
	if runner == nil {
		return nil, resilience.Invalid(errors.New("service: no shard runner configured"))
	}
	if err := ctx.Err(); err != nil {
		return nil, resilience.Classify(err)
	}
	key := newHasher().str("shard").str(string(payload)).sum()
	res, hit, err := runStage(s, ctx, stageShard, func() ([]byte, bool, error) {
		return s.shards.do(ctx, key, func() ([]byte, error) {
			return runner.RunShardPayload(ctx, payload)
		})
	})
	if err != nil {
		return nil, err
	}
	if hit {
		s.met.runHits.Add(1)
	} else {
		s.met.runMisses.Add(1)
	}
	return &ShardOutcome{Payload: res, Cached: hit}, nil
}
