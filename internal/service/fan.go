package service

import (
	"context"
	"sync"
)

// Fan runs fn(ctx, i) for every i in [0, n) with at most workers running
// concurrently. The first error cancels the remaining work and is
// returned; fn invocations should honor ctx. workers <= 0 means n.
func Fan(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 || workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	work := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range work {
				if ctx.Err() != nil {
					return
				}
				if err := fn(ctx, i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case work <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
