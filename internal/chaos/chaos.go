// Package chaos is a deterministic chaos harness for blserve: it
// spawns a real server process, drives seeded traffic and scripted
// fault schedules through the resilience faultpoint registry, kills
// the process hard (SIGKILL) mid-load, restarts it, and asserts the
// durability invariants the system promises:
//
//   - snapshots are never torn: after any kill, the on-disk snapshot
//     decodes cleanly (atomic temp+rename writes);
//   - a restarted server is warm: recovered state turns repeated
//     requests into whole-pipeline cache hits at or above a floor;
//   - every response is exclusive: a request is either answered (result
//     body) or refused (error body with a taxonomy code), never both,
//     and refusals that are retryable (429, 504) say so via Retry-After;
//   - corruption is data loss, not an outage: a deliberately
//     bit-flipped snapshot entry is skipped and counted at the next
//     boot, which otherwise succeeds;
//   - observability is truthful: after the drills, /metrics serves a
//     lint-clean Prometheus exposition whose breaker-open and
//     corruption-skip counters match what /v1/stats reports and what
//     the harness actually inflicted.
//
// Runs are scripted by a seeded PRNG, so a failing schedule replays
// with the same -seed.
package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"ballarus/internal/durable"
	"ballarus/internal/obs"
)

// Config parameterizes one chaos run.
type Config struct {
	// Bin is the blserve binary to torture; required (see BuildServe).
	Bin string
	// Seed drives the request/fault/kill schedule. Same seed, same
	// schedule.
	Seed int64
	// Duration bounds the kill-restart soak (the corruption drill runs
	// once after it). <= 0 means 20s.
	Duration time.Duration
	// HitFloor is the minimum warm-hit fraction required after a
	// restart that recovered state. <= 0 means 0.5.
	HitFloor float64
	// StateDir is the server's durable directory; empty means a temp
	// dir removed after the run.
	StateDir string
	// Log receives harness narration and forwarded server stderr; nil
	// discards it.
	Log io.Writer
}

// Report is the outcome of a chaos run. Violations is the list of
// broken invariants; a clean run has none.
type Report struct {
	Seed        int64   `json:"seed"`
	Rounds      int     `json:"rounds"`
	Requests    int     `json:"requests"`
	Answered    int     `json:"answered"`
	Refused     int     `json:"refused"`
	Kills       int     `json:"kills"`
	Restarts    int     `json:"restarts"`
	WarmChecks  int     `json:"warm_checks"`
	WarmHitRate float64 `json:"warm_hit_rate"` // of the last warm check
	Recovered   int64   `json:"recovered"`     // warmed requests, summed over restarts
	Skipped     int64   `json:"skipped"`       // corrupt entries skipped at the drill boot
	// BreakerOpens is the execute breaker's open count after the scripted
	// breaker drill; MetricsScraped marks a successful post-soak /metrics
	// scrape, lint, and stats cross-check.
	BreakerOpens   int64    `json:"breaker_opens"`
	MetricsScraped bool     `json:"metrics_scraped"`
	Violations     []string `json:"violations,omitempty"`
}

// job is one scripted request; distinct (source, seed) pairs are
// distinct pipeline jobs.
type job struct {
	Source string `json:"source"`
	Seed   int64  `json:"seed,omitempty"`
}

// statsView is the slice of /v1/stats the harness asserts on.
type statsView struct {
	Completed int64 `json:"completed"`
	Shed      int64 `json:"shed"`
	Breakers  []struct {
		Name     string `json:"name"`
		State    string `json:"state"`
		Opens    int64  `json:"opens"`
		Rejected int64  `json:"rejected"`
	} `json:"breakers"`
	Durability struct {
		Enabled         bool  `json:"enabled"`
		SnapshotEntries int64 `json:"snapshot_entries"`
		SnapshotSkipped int64 `json:"snapshot_skipped"`
		JournalReplayed int64 `json:"journal_replayed"`
		Warmed          int64 `json:"warmed"`
	} `json:"durability"`
}

type harness struct {
	cfg    Config
	rng    *rand.Rand
	client *http.Client
	log    io.Writer
	srv    *proc

	mu        sync.Mutex
	completed []job // jobs answered 200 at least once, oldest first
	seen      map[string]bool
	rep       *Report
}

// Run executes one chaos run. The returned error reports harness-level
// failures (binary missing, server never came up); broken invariants
// land in Report.Violations instead.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 20 * time.Second
	}
	if cfg.HitFloor <= 0 {
		cfg.HitFloor = 0.5
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	if cfg.StateDir == "" {
		dir, err := os.MkdirTemp("", "blchaos-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		cfg.StateDir = dir
	}
	h := &harness{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		client: &http.Client{Timeout: 20 * time.Second},
		log:    cfg.Log,
		seen:   map[string]bool{},
		rep:    &Report{Seed: cfg.Seed},
	}
	if err := h.start(); err != nil {
		return h.rep, err
	}
	defer func() {
		if srv := h.cur(); srv != nil {
			srv.kill()
		}
	}()

	end := time.Now().Add(cfg.Duration)
	for time.Now().Before(end) && ctx.Err() == nil {
		h.rep.Rounds++
		fmt.Fprintf(h.log, "chaos: round %d\n", h.rep.Rounds)
		h.traffic(8 + h.rng.Intn(8))
		switch h.rng.Intn(3) {
		case 0:
			h.faultEpisode()
		case 1:
			h.overloadBurst()
		}
		// Bound what the kill may lose, then kill mid-traffic. The
		// in-flight jobs are drawn here so the PRNG stays on one
		// goroutine.
		h.post("/debug/snapshot", nil)
		inflight := []job{h.pickJob(), h.pickJob(), h.newJob(), h.newJob()}
		go func() {
			for _, j := range inflight {
				h.send(j)
			}
		}()
		time.Sleep(time.Duration(h.rng.Intn(40)) * time.Millisecond)
		h.killAndCheckSnapshot()
		if err := h.restartAndCheckWarm(); err != nil {
			return h.rep, err
		}
	}
	if ctx.Err() != nil {
		return h.rep, ctx.Err()
	}
	if err := h.corruptionDrill(); err != nil {
		return h.rep, err
	}
	h.breakerDrill()
	h.metricsCheck()
	if err := h.cur().stop(10 * time.Second); err != nil {
		h.violate("graceful shutdown failed: %v", err)
	}
	h.setSrv(nil)
	return h.rep, nil
}

// cur and setSrv guard the live-process pointer: request goroutines
// may still be draining while the main loop kills and restarts.
func (h *harness) cur() *proc {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.srv
}

func (h *harness) setSrv(p *proc) {
	h.mu.Lock()
	h.srv = p
	h.mu.Unlock()
}

func (h *harness) start() error {
	srv, err := startServe(h.cfg.Bin, []string{
		"-addr", "127.0.0.1:0",
		"-workers", "4",
		"-queue", "8",
		"-timeout", "2s",
		"-drain", "5s",
		"-chaos-admin",
		"-state-dir", h.cfg.StateDir,
		"-snapshot-every", "500ms",
		"-journal-sync", "10ms",
		"-watchdog", "2s",
	}, h.log)
	if err != nil {
		return err
	}
	h.setSrv(srv)
	return nil
}

func (h *harness) violate(format string, args ...any) {
	h.mu.Lock()
	defer h.mu.Unlock()
	msg := fmt.Sprintf(format, args...)
	fmt.Fprintf(h.log, "chaos: VIOLATION: %s\n", msg)
	if len(h.rep.Violations) < 32 {
		h.rep.Violations = append(h.rep.Violations, msg)
	}
}

// newJob derives a scripted request from the PRNG: a cheap branchy
// loop whose parameters (and interpreter seed) shape distinct content
// hashes.
func (h *harness) newJob() job {
	n := 100 + h.rng.Intn(40)*25
	m := 2 + h.rng.Intn(8)
	src := fmt.Sprintf(
		"int main() { int i; int s = 0; for (i = 0; i < %d; i++) { if (i %% %d == 0) { s += i; } else { s -= 1; } } printi(s); return 0; }",
		n, m)
	return job{Source: src, Seed: int64(h.rng.Intn(4))}
}

// slowJob is heavy enough to hold a worker for a while — fuel for
// overload and kill-mid-flight scenarios.
func (h *harness) slowJob() job {
	n := 2000000 + h.rng.Intn(4)*500000
	return job{Source: fmt.Sprintf(
		"int main() { int i; int s = 0; for (i = 0; i < %d; i++) { s += i %% 7; } printi(s); return 0; }", n)}
}

// pickJob returns a repeat of an answered job about a third of the
// time, otherwise fresh work.
func (h *harness) pickJob() job {
	h.mu.Lock()
	n := len(h.completed)
	var repeat job
	if n > 0 {
		repeat = h.completed[h.rng.Intn(n)]
	}
	h.mu.Unlock()
	if n > 0 && h.rng.Intn(3) == 0 {
		return repeat
	}
	return h.newJob()
}

// traffic sends n scripted requests sequentially, checking the
// per-response invariants on each.
func (h *harness) traffic(n int) {
	for i := 0; i < n; i++ {
		h.send(h.pickJob())
	}
}

// send posts one job and enforces the response-shape invariants. It
// returns the decoded body (nil on transport error, which is expected
// around kills).
func (h *harness) send(j job) map[string]any {
	srv := h.cur()
	if srv == nil {
		return nil
	}
	payload, _ := json.Marshal(j)
	resp, err := h.client.Post(srv.url()+"/v1/predict", "application/json", bytes.NewReader(payload))
	if err != nil {
		return nil // the server may be mid-kill; transport errors are not violations
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil
	}
	h.mu.Lock()
	h.rep.Requests++
	h.mu.Unlock()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		h.violate("status %d with non-JSON body %.80q", resp.StatusCode, body)
		return nil
	}
	_, hasResult := m["heuristic"]
	_, hasCode := m["code"]
	if resp.StatusCode == http.StatusOK {
		h.mu.Lock()
		h.rep.Answered++
		h.mu.Unlock()
		if !hasResult || hasCode {
			h.violate("200 body mixes result and refusal: %.120q", body)
		}
		h.remember(j)
	} else {
		h.mu.Lock()
		h.rep.Refused++
		h.mu.Unlock()
		if hasResult || !hasCode {
			h.violate("status %d body mixes refusal and result: %.120q", resp.StatusCode, body)
		}
		if (resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusGatewayTimeout) &&
			resp.Header.Get("Retry-After") == "" {
			h.violate("status %d without Retry-After", resp.StatusCode)
		}
	}
	return m
}

func (h *harness) remember(j job) {
	key := fmt.Sprintf("%s#%d", j.Source, j.Seed)
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.seen[key] {
		h.seen[key] = true
		h.completed = append(h.completed, j)
	}
}

// post hits an admin/debug endpoint; failures are tolerated around
// kills.
func (h *harness) post(path string, body []byte) bool {
	srv := h.cur()
	if srv == nil {
		return false
	}
	resp, err := h.client.Post(srv.url()+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// faultEpisode arms one scripted fault, pushes traffic through it, and
// clears it. Faults are bounded (times) so an episode cannot poison
// the rest of the run.
func (h *harness) faultEpisode() {
	stage := []string{"service.compile", "service.analyze", "service.execute"}[h.rng.Intn(3)]
	var f map[string]any
	switch h.rng.Intn(4) {
	case 0:
		f = map[string]any{"point": stage, "err": "chaos-injected", "times": 1 + h.rng.Intn(3)}
	case 1:
		f = map[string]any{"point": stage, "err": "chaos-transient", "transient": true, "times": 1 + h.rng.Intn(3)}
	case 2:
		f = map[string]any{"point": stage, "panic": "chaos-panic", "times": 1 + h.rng.Intn(2)}
	default:
		f = map[string]any{"point": stage, "hang": true, "times": 1}
	}
	payload, _ := json.Marshal(f)
	if !h.post("/debug/fault", payload) {
		return
	}
	fmt.Fprintf(h.log, "chaos: fault %s\n", payload)
	h.traffic(6 + h.rng.Intn(6))
	h.post("/debug/clearfaults", nil)
}

// overloadBurst fires concurrent slow jobs at a queue-bounded server:
// some answer, some shed with 429 — and every shed must carry
// Retry-After and must not also be answered.
func (h *harness) overloadBurst() {
	n := 16 + h.rng.Intn(16)
	jobs := make([]job, n)
	for i := range jobs {
		jobs[i] = h.slowJob()
	}
	fmt.Fprintf(h.log, "chaos: overload burst of %d\n", n)
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			h.send(j)
		}(j)
	}
	wg.Wait()
}

// killAndCheckSnapshot delivers SIGKILL and asserts the torn-snapshot
// invariant: whatever instant the process died, the snapshot on disk
// decodes cleanly (atomic writes never expose a partial file).
func (h *harness) killAndCheckSnapshot() {
	h.cur().kill()
	h.rep.Kills++
	fmt.Fprintf(h.log, "chaos: killed (total %d)\n", h.rep.Kills)
	path := filepath.Join(h.cfg.StateDir, durable.SnapshotName)
	_, st, err := durable.ReadSnapshotFile(path)
	if os.IsNotExist(err) {
		return // killed before the first snapshot: nothing to tear
	}
	if err != nil {
		h.violate("snapshot unreadable after kill: %v", err)
		return
	}
	if st.Truncated || st.BadMagic || st.VersionSkew || st.Skipped != 0 {
		h.violate("torn snapshot after kill: %+v", st)
	}
}

// restartAndCheckWarm boots a fresh process over the same state and
// asserts the warm-start invariant: recovered entries exist when work
// was done, and repeats of answered jobs hit the run cache at or above
// the floor.
func (h *harness) restartAndCheckWarm() error {
	if err := h.start(); err != nil {
		return err
	}
	h.rep.Restarts++
	st, ok := h.stats()
	if !ok {
		h.violate("no stats after restart")
		return nil
	}
	h.rep.Recovered += st.Durability.Warmed
	h.mu.Lock()
	n := len(h.completed)
	sample := make([]job, 0, 12)
	for i := n - 1; i >= 0 && len(sample) < cap(sample); i-- {
		sample = append(sample, h.completed[i])
	}
	h.mu.Unlock()
	if n > 0 && st.Durability.Warmed == 0 {
		h.violate("restart recovered nothing despite %d answered jobs", n)
		return nil
	}
	if st.Durability.Warmed == 0 || len(sample) == 0 {
		return nil
	}
	h.rep.WarmChecks++
	hits := 0
	for _, j := range sample {
		if m := h.send(j); m != nil {
			if cached, _ := m["run_cached"].(bool); cached {
				hits++
			}
		}
	}
	rate := float64(hits) / float64(len(sample))
	h.rep.WarmHitRate = rate
	fmt.Fprintf(h.log, "chaos: restart %d warm: %d recovered, hit rate %.2f\n",
		h.rep.Restarts, st.Durability.Warmed, rate)
	if rate < h.cfg.HitFloor {
		h.violate("warm hit rate %.2f below floor %.2f (recovered %d)",
			rate, h.cfg.HitFloor, st.Durability.Warmed)
	}
	return nil
}

func (h *harness) stats() (statsView, bool) {
	var st statsView
	srv := h.cur()
	if srv == nil {
		return st, false
	}
	resp, err := h.client.Get(srv.url() + "/v1/stats")
	if err != nil {
		return st, false
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, false
	}
	return st, true
}

// breakerDrill opens the execute-stage circuit breaker with a scripted
// burst of non-transient faults (past the consecutive-failure
// threshold) so the post-soak metrics check can assert the episode is
// visible in both /v1/stats and /metrics.
func (h *harness) breakerDrill() {
	payload, _ := json.Marshal(map[string]any{
		"point": "service.execute", "err": "chaos-breaker", "times": 32,
	})
	if !h.post("/debug/fault", payload) {
		h.violate("breaker drill: fault injection failed")
		return
	}
	fmt.Fprintf(h.log, "chaos: breaker drill\n")
	// Distinct jobs so every request reaches the faulted execute stage
	// (no run-cache hits) until the breaker opens and sheds the rest.
	for i := 0; i < 10; i++ {
		h.send(h.newJob())
	}
	h.post("/debug/clearfaults", nil)
	st, ok := h.stats()
	if !ok {
		h.violate("breaker drill: no stats")
		return
	}
	for _, b := range st.Breakers {
		if b.Name == "execute" {
			h.rep.BreakerOpens = b.Opens
			if b.Opens < 1 {
				h.violate("breaker drill: execute breaker never opened (state %s, rejected %d)",
					b.State, b.Rejected)
			}
			return
		}
	}
	h.violate("breaker drill: no execute breaker in stats")
}

// metricsCheck scrapes /metrics after the drills, lints the exposition
// format, and asserts the exported counters agree with /v1/stats: every
// breaker-open episode and every corruption skip observed by the
// harness must be visible to a Prometheus scraper.
func (h *harness) metricsCheck() {
	srv := h.cur()
	if srv == nil {
		return
	}
	resp, err := h.client.Get(srv.url() + "/metrics")
	if err != nil {
		h.violate("metrics: scrape failed: %v", err)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		h.violate("metrics: read failed: %v", err)
		return
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		h.violate("metrics: content-type %q", ct)
	}
	for _, p := range obs.Lint(bytes.NewReader(body)) {
		h.violate("metrics lint: %s", p)
	}
	exp, err := obs.ParseExposition(bytes.NewReader(body))
	if err != nil {
		h.violate("metrics: unparsable exposition: %v", err)
		return
	}
	st, ok := h.stats()
	if !ok {
		h.violate("metrics: no stats for cross-check")
		return
	}
	for _, b := range st.Breakers {
		v, found := exp.Value("ballarus_breaker_opens_total", map[string]string{"stage": b.Name})
		if !found || int64(v) != b.Opens {
			h.violate("metrics: breaker_opens_total{stage=%q} = %v (found %v), stats say %d",
				b.Name, v, found, b.Opens)
		}
		if b.Opens > 0 {
			t, _ := exp.Value("ballarus_breaker_transitions_total",
				map[string]string{"stage": b.Name, "to": "open"})
			if int64(t) < b.Opens {
				h.violate("metrics: breaker_transitions_total{stage=%q,to=open} = %v < %d opens",
					b.Name, t, b.Opens)
			}
		}
	}
	if v, found := exp.Value("ballarus_recovered_snapshot_skipped", nil); !found || int64(v) != st.Durability.SnapshotSkipped {
		h.violate("metrics: recovered_snapshot_skipped = %v (found %v), stats say %d",
			v, found, st.Durability.SnapshotSkipped)
	}
	if v, found := exp.Value("ballarus_requests_completed_total", nil); !found || int64(v) != st.Completed {
		h.violate("metrics: requests_completed_total = %v (found %v), stats say %d",
			v, found, st.Completed)
	}
	if v, found := exp.Value("ballarus_stage_duration_seconds_count",
		map[string]string{"stage": "execute"}); !found || v <= 0 {
		h.violate("metrics: no execute-stage latency histogram samples (found %v, %v)", found, v)
	}
	h.rep.MetricsScraped = true
	fmt.Fprintf(h.log, "chaos: metrics check: %d samples, breaker opens %d, skipped %d\n",
		len(exp.Samples), h.rep.BreakerOpens, st.Durability.SnapshotSkipped)
}

// corruptionDrill is the scripted bit-flip: force a snapshot, kill,
// corrupt one entry on disk, and require the next boot to skip and
// count it — never to fail.
func (h *harness) corruptionDrill() error {
	h.traffic(4)
	if !h.post("/debug/snapshot", nil) {
		h.violate("corruption drill: snapshot request failed")
		return nil
	}
	h.cur().kill()
	h.rep.Kills++
	path := filepath.Join(h.cfg.StateDir, durable.SnapshotName)
	data, err := os.ReadFile(path)
	if err != nil {
		h.violate("corruption drill: read snapshot: %v", err)
		return h.start()
	}
	entries, st, _ := durable.ReadSnapshotFile(path)
	if len(entries) == 0 || st.Skipped != 0 {
		h.violate("corruption drill: no clean entries to corrupt (%+v)", st)
		return h.start()
	}
	// Flip a bit inside the first entry's section bytes: its CRC must
	// reject exactly that entry at the next boot.
	data[8+15+2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		h.violate("corruption drill: rewrite snapshot: %v", err)
		return h.start()
	}
	if err := h.start(); err != nil {
		h.violate("corruption drill: server failed to boot over corrupt snapshot: %v", err)
		return err
	}
	h.rep.Restarts++
	sv, ok := h.stats()
	if !ok {
		h.violate("corruption drill: no stats after boot")
		return nil
	}
	h.rep.Skipped = sv.Durability.SnapshotSkipped
	fmt.Fprintf(h.log, "chaos: corruption drill: %d skipped, %d recovered\n",
		sv.Durability.SnapshotSkipped, sv.Durability.Warmed)
	if sv.Durability.SnapshotSkipped < 1 {
		h.violate("corruption drill: corrupted entry not counted as skipped (%+v)", sv.Durability)
	}
	return nil
}
