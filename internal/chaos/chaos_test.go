package chaos

import (
	"context"
	"os"
	"testing"
	"time"
)

// TestShortSoak is the process-level kill-and-restart acceptance test:
// a real blserve is built, traffic flows, the process dies by SIGKILL
// mid-load, restarts warm from its snapshot and journal, and a
// deliberately corrupted snapshot entry is skipped without failing
// boot. Every invariant violation fails the test.
func TestShortSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak spawns processes; skipped with -short")
	}
	bin, err := BuildServe(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	rep, err := Run(ctx, Config{
		Bin:      bin,
		Seed:     42,
		Duration: 6 * time.Second,
		HitFloor: 0.5,
		Log:      testWriter{t},
	})
	if err != nil {
		t.Fatalf("harness failure: %v (report %+v)", err, rep)
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if rep.Kills < 1 || rep.Restarts < 1 {
		t.Fatalf("soak never killed/restarted the server: %+v", rep)
	}
	if rep.Recovered < 1 {
		t.Fatalf("no state was ever recovered across restarts: %+v", rep)
	}
	if rep.Skipped < 1 {
		t.Fatalf("corruption drill did not count a skipped entry: %+v", rep)
	}
	if rep.WarmChecks >= 1 && rep.WarmHitRate < 0.5 {
		t.Fatalf("warm hit rate %.2f below floor: %+v", rep.WarmHitRate, rep)
	}
}

// testWriter narrates the schedule into the test log (visible with -v).
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}

// TestBuildServeFindsModule guards the zero-config path blchaos uses.
func TestBuildServeFindsModule(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary; skipped with -short")
	}
	dir := t.TempDir()
	bin, err := BuildServe(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(bin); err != nil || st.Mode()&0o111 == 0 {
		t.Fatalf("built binary unusable: %v %v", st, err)
	}
}
