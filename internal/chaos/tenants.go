package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// TenantsConfig parameterizes the multi-tenant fairness drill: three
// blserve replicas with -tenants behind a blgate routing by rendezvous
// hash, one hog tenant flooding at 10x its quota next to two
// well-behaved tenants, then a replica SIGKILL.
type TenantsConfig struct {
	// ServeBin is the blserve binary (see BuildServe); required.
	ServeBin string
	// GateBin is the blgate binary (see BuildGate); required.
	GateBin string
	// Seed drives the request schedule. Same seed, same schedule.
	Seed int64
	// Log receives harness narration and forwarded process stderr; nil
	// discards it.
	Log io.Writer
}

// TenantsReport is the outcome of a tenants chaos run.
type TenantsReport struct {
	Seed     int64 `json:"seed"`
	Replicas int   `json:"replicas"`

	// Baseline: the polite tenants with no hog present.
	BaselineSent  int     `json:"baseline_sent"`
	BaselineOK    int     `json:"baseline_ok"`
	BaselineP99Ms float64 `json:"baseline_p99_ms"`

	// Flood: the same polite traffic while the hog floods at 10x quota.
	FloodSent  int     `json:"flood_sent"`
	FloodOK    int     `json:"flood_ok"`
	FloodP99Ms float64 `json:"flood_p99_ms"`
	HogSent    int     `json:"hog_sent"`
	HogOK      int     `json:"hog_ok"`
	HogShed    int     `json:"hog_shed"` // 429 quota_exceeded pass-throughs

	// Rendezvous: distinct keys sent twice, then once more after a kill.
	Keys          int     `json:"keys"`
	WarmHits      int     `json:"warm_hits"` // second pass: run_cached on the same replica
	Kills         int     `json:"kills"`
	Remapped      int     `json:"remapped"`
	RemapFraction float64 `json:"remap_fraction"`
	SurvivorKeys  int     `json:"survivor_keys"`
	SurvivorWarm  int     `json:"survivor_warm"` // post-kill: still cached on the surviving owner

	Violations []string `json:"violations,omitempty"`
}

type tenantsHarness struct {
	cfg    TenantsConfig
	rng    *rand.Rand
	client *http.Client
	log    io.Writer

	mu   sync.Mutex
	gate *proc
	reps []*proc
	rep  *TenantsReport
}

// hogQuota is the hog tenant's per-replica sustained rate; the flood
// phase drives it at roughly 10x this.
const hogQuota = 5

// RunTenants executes the multi-tenant fairness drill:
//
//  1. boot: three blserve -tenants replicas (generous default quotas,
//     a tight override for tenant "hog") behind blgate -routing
//     rendezvous;
//  2. baseline: tenants t1 and t2 send scripted traffic alone — every
//     request must answer 200; their p99 is recorded;
//  3. flood: the hog fires at ~10x its quota while t1 and t2 repeat
//     the baseline schedule. Invariants: the polite tenants complete
//     within 10% of baseline with zero errors (isolation), the hog is
//     actually shed with 429 quota_exceeded pass-throughs carrying
//     X-RateLimit-* headers, and no client ever sees a 5xx;
//  4. rendezvous: ~60 distinct keys are each sent twice — the second
//     pass must be run-cache hits on a stable replica (the key's
//     rendezvous owner);
//  5. kill: one replica is SIGKILLed and every key resent — keys it
//     owned remap (no more than ~45%, the ~1/N rendezvous promise plus
//     schedule noise), surviving keys stay warm on their old owner,
//     and zero requests fail while two replicas remain healthy.
//
// The returned error reports harness-level failures; broken invariants
// land in Violations.
func RunTenants(ctx context.Context, cfg TenantsConfig) (*TenantsReport, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	h := &tenantsHarness{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		client: &http.Client{Timeout: 20 * time.Second},
		log:    cfg.Log,
		rep:    &TenantsReport{Seed: cfg.Seed, Replicas: 3},
	}
	defer h.teardown()

	if err := h.boot(); err != nil {
		return h.rep, err
	}
	pool := h.politePool(20)
	h.baselinePhase(pool)
	if ctx.Err() != nil {
		return h.rep, ctx.Err()
	}
	h.floodPhase(ctx, pool)
	if ctx.Err() != nil {
		return h.rep, ctx.Err()
	}
	h.rendezvousPhase()
	return h.rep, nil
}

func (h *tenantsHarness) boot() error {
	h.reps = make([]*proc, 3)
	urls := make([]string, 3)
	for i := range h.reps {
		p, err := startServe(h.cfg.ServeBin, []string{
			"-addr", "127.0.0.1:0",
			"-instance-id", fmt.Sprintf("r%d", i),
			"-workers", "4",
			"-queue", "64",
			"-timeout", "5s",
			"-drain-timeout", "2s",
			"-tenants",
			"-tenant-rate", "500",
			"-tenant-quota", fmt.Sprintf("hog=%d,%d", hogQuota, hogQuota),
		}, h.log)
		if err != nil {
			return err
		}
		h.reps[i] = p
		urls[i] = p.url()
	}
	gate, err := startServe(h.cfg.GateBin, []string{
		"-addr", "127.0.0.1:0",
		"-replicas", strings.Join(urls, ","),
		"-routing", "rendezvous",
		"-routing-seed", "1",
		"-probe-every", "150ms",
		"-probe-timeout", "500ms",
		"-rise", "1",
		"-fall", "2",
		"-eject-after", "2",
		"-eject-base", "300ms",
		"-eject-max", "3s",
		// Hedging off the hot path: a hedge that wins on a non-owner
		// replica would read as a routing flap in the stability checks.
		"-hedge-quantile", "0.99",
		"-hedge-initial", "2s",
		"-max-attempts", "3",
		"-retry-ratio", "0.5",
		"-retry-burst", "32",
		"-timeout", "10s",
	}, h.log)
	if err != nil {
		return err
	}
	h.mu.Lock()
	h.gate = gate
	h.mu.Unlock()
	fmt.Fprintf(h.log, "tenants: 3 tenant-quota replicas behind rendezvous gateway %s\n", gate.addr)
	return nil
}

func (h *tenantsHarness) teardown() {
	h.mu.Lock()
	gate, reps := h.gate, h.reps
	h.gate, h.reps = nil, nil
	h.mu.Unlock()
	if gate != nil {
		gate.kill()
	}
	for _, p := range reps {
		if p != nil {
			p.kill()
		}
	}
}

func (h *tenantsHarness) violate(format string, args ...any) {
	h.mu.Lock()
	defer h.mu.Unlock()
	msg := fmt.Sprintf(format, args...)
	fmt.Fprintf(h.log, "tenants: VIOLATION: %s\n", msg)
	if len(h.rep.Violations) < 32 {
		h.rep.Violations = append(h.rep.Violations, msg)
	}
}

// tenantJob derives a scripted request; idx partitions the key space
// so each caller controls which content hashes it touches.
func (h *tenantsHarness) tenantJob(idx int) job {
	n := 100 + (idx%37)*25
	m := 2 + idx%7
	src := fmt.Sprintf(
		"int main() { int i; int s = %d; for (i = 0; i < %d; i++) { if (i %% %d == 0) { s += i; } else { s -= 1; } } printi(s); return 0; }",
		idx, n, m)
	return job{Source: src, Seed: 1}
}

// politePool draws the fixed request schedule the polite tenants replay
// in both the baseline and flood phases.
func (h *tenantsHarness) politePool(n int) []job {
	pool := make([]job, n)
	for i := range pool {
		pool[i] = h.tenantJob(10000 + h.rng.Intn(2000))
	}
	return pool
}

// send posts one predict through the gateway as the given tenant.
// Returns the status (0 on transport error), the decoded body, and the
// X-Instance-Id of the answering replica. A transport error or 5xx is
// a violation in every phase of this drill: the gateway never goes
// down and at least two replicas are healthy at all times.
func (h *tenantsHarness) send(tenantID string, j job) (int, map[string]any, string) {
	h.mu.Lock()
	gate := h.gate
	h.mu.Unlock()
	if gate == nil {
		return 0, nil, ""
	}
	payload, _ := json.Marshal(j)
	req, err := http.NewRequest(http.MethodPost, gate.url()+"/v1/predict", bytes.NewReader(payload))
	if err != nil {
		return 0, nil, ""
	}
	req.Header.Set("Content-Type", "application/json")
	if tenantID != "" {
		req.Header.Set("X-Tenant-Id", tenantID)
	}
	resp, err := h.client.Do(req)
	if err != nil {
		h.violate("tenant %s: gateway transport error: %v", tenantID, err)
		return 0, nil, ""
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		h.violate("tenant %s: body read failed: %v", tenantID, err)
		return 0, nil, ""
	}
	if resp.StatusCode >= 500 {
		h.violate("tenant %s: status %d with healthy replicas present", tenantID, resp.StatusCode)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		h.violate("tenant %s: status %d with non-JSON body %.80q", tenantID, resp.StatusCode, body)
		return resp.StatusCode, nil, ""
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		code, _ := m["code"].(string)
		if code == "quota_exceeded" && resp.Header.Get("X-RateLimit-Limit") == "" {
			h.violate("tenant %s: quota 429 without X-RateLimit-Limit", tenantID)
		}
		if code != "quota_exceeded" && resp.Header.Get("X-RateLimit-Limit") != "" {
			h.violate("tenant %s: non-quota 429 carries X-RateLimit-Limit (code %q)", tenantID, code)
		}
	}
	return resp.StatusCode, m, resp.Header.Get("X-Instance-Id")
}

// politeRound replays the polite schedule for tenants t1 and t2,
// repeating it until at least minFor has elapsed (zero means one
// pass), and returns sent, ok, and the p99 latency in milliseconds.
// Polite traffic is paced at ~20ms per request so it stays far inside
// the default tenant quota in every phase.
func (h *tenantsHarness) politeRound(pool []job, minFor time.Duration) (sent, ok int, p99 float64) {
	var lat []float64
	deadline := time.Now().Add(minFor)
	for pass := 0; ; pass++ {
		for i, j := range pool {
			for _, id := range []string{"t1", "t2"} {
				start := time.Now()
				status, _, _ := h.send(id, j)
				lat = append(lat, float64(time.Since(start))/float64(time.Millisecond))
				sent++
				if status == http.StatusOK {
					ok++
				} else {
					h.violate("polite tenant %s request %d (pass %d) refused with %d", id, i, pass, status)
				}
				time.Sleep(20 * time.Millisecond)
			}
		}
		if time.Now().After(deadline) {
			break
		}
	}
	sort.Float64s(lat)
	if len(lat) > 0 {
		p99 = lat[len(lat)*99/100]
	}
	return sent, ok, p99
}

// baselinePhase measures the polite tenants with no hog present: every
// request must answer 200.
func (h *tenantsHarness) baselinePhase(pool []job) {
	fmt.Fprintf(h.log, "tenants: baseline phase\n")
	sent, ok, p99 := h.politeRound(pool, 0)
	h.mu.Lock()
	h.rep.BaselineSent, h.rep.BaselineOK, h.rep.BaselineP99Ms = sent, ok, p99
	h.mu.Unlock()
	fmt.Fprintf(h.log, "tenants: baseline: %d/%d ok, p99 %.1fms\n", ok, sent, p99)
}

// floodPhase runs the hog at ~10x its quota while the polite tenants
// repeat the baseline schedule. Isolation means the polite completion
// rate stays within 10% of baseline with zero errors while the hog is
// visibly shed.
func (h *tenantsHarness) floodPhase(ctx context.Context, pool []job) {
	fmt.Fprintf(h.log, "tenants: flood phase (hog at ~10x quota)\n")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var hogSent, hogOK, hogShed int
	var hogMu sync.Mutex
	// Two senders at ~25 req/s each: ~50 req/s against a quota of 5.
	// The hog cycles 4 keys so its accepted requests are cache-cheap and
	// the pressure is pure admission pressure.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-ctx.Done():
					return
				default:
				}
				status, m, _ := h.send("hog", h.tenantJob(20000+(s*2+i)%4))
				hogMu.Lock()
				hogSent++
				switch {
				case status == http.StatusOK:
					hogOK++
				case status == http.StatusTooManyRequests:
					if code, _ := m["code"].(string); code == "quota_exceeded" {
						hogShed++
					}
				}
				hogMu.Unlock()
				time.Sleep(40 * time.Millisecond)
			}
		}(s)
	}

	// Keep the flood window open long enough for the hog to blow
	// through its burst and sustain ~10x the refill rate.
	sent, ok, p99 := h.politeRound(pool, 4*time.Second)
	close(stop)
	wg.Wait()

	h.mu.Lock()
	h.rep.FloodSent, h.rep.FloodOK, h.rep.FloodP99Ms = sent, ok, p99
	h.rep.HogSent, h.rep.HogOK, h.rep.HogShed = hogSent, hogOK, hogShed
	baseRate := float64(h.rep.BaselineOK) / float64(max(h.rep.BaselineSent, 1))
	floodRate := float64(ok) / float64(max(sent, 1))
	h.mu.Unlock()
	fmt.Fprintf(h.log, "tenants: flood: polite %d/%d ok (p99 %.1fms), hog %d sent / %d ok / %d shed\n",
		ok, sent, p99, hogSent, hogOK, hogShed)

	if floodRate < baseRate-0.1 {
		h.violate("flood phase: polite completion %.2f fell more than 10%% below baseline %.2f", floodRate, baseRate)
	}
	if hogShed == 0 {
		h.violate("flood phase: hog at 10x quota was never shed with quota_exceeded")
	}
	if hogOK > hogShed {
		h.violate("flood phase: hog mostly admitted (%d ok vs %d shed) at 10x quota", hogOK, hogShed)
	}
}

// rendezvousPhase checks cache-affine routing and graceful failover:
// distinct keys settle on stable owners, a second pass is warm, and a
// SIGKILL remaps only the dead replica's slice of the key space while
// surviving keys stay warm and every request keeps answering.
func (h *tenantsHarness) rendezvousPhase() {
	const keys = 60
	fmt.Fprintf(h.log, "tenants: rendezvous phase (%d keys)\n", keys)
	owner := make([]string, keys)
	for i := 0; i < keys; i++ {
		_, _, inst := h.send("t1", h.tenantJob(30000+i))
		owner[i] = inst
	}
	warm := 0
	for i := 0; i < keys; i++ {
		status, m, inst := h.send("t1", h.tenantJob(30000+i))
		if status != http.StatusOK {
			continue
		}
		cached, _ := m["run_cached"].(bool)
		if inst == owner[i] && cached {
			warm++
		}
	}
	h.mu.Lock()
	h.rep.Keys, h.rep.WarmHits = keys, warm
	h.mu.Unlock()
	fmt.Fprintf(h.log, "tenants: rendezvous: %d/%d second-pass warm hits\n", warm, keys)
	if warm < keys*9/10 {
		h.violate("rendezvous: only %d/%d keys warm on a stable owner (want >= 90%%)", warm, keys)
	}

	// SIGKILL replica 0 and resend everything.
	h.mu.Lock()
	victim := h.reps[0]
	h.reps[0] = nil
	h.mu.Unlock()
	victim.kill()
	h.mu.Lock()
	h.rep.Kills++
	h.mu.Unlock()
	fmt.Fprintf(h.log, "tenants: killed r0\n")
	h.waitHealthy(2, 10*time.Second)

	remapped, survivorKeys, survivorWarm := 0, 0, 0
	for i := 0; i < keys; i++ {
		status, m, inst := h.send("t1", h.tenantJob(30000+i))
		if status != http.StatusOK {
			h.violate("rendezvous: key %d refused with %d after the kill (2 replicas healthy)", i, status)
			continue
		}
		if owner[i] == "r0" {
			if inst == "r0" {
				h.violate("rendezvous: key %d still answered by the killed replica", i)
			}
			remapped++
			continue
		}
		survivorKeys++
		cached, _ := m["run_cached"].(bool)
		if inst == owner[i] && cached {
			survivorWarm++
		}
	}
	frac := float64(remapped) / float64(keys)
	h.mu.Lock()
	h.rep.Remapped, h.rep.RemapFraction = remapped, frac
	h.rep.SurvivorKeys, h.rep.SurvivorWarm = survivorKeys, survivorWarm
	h.mu.Unlock()
	fmt.Fprintf(h.log, "tenants: kill: %.0f%% of keys remapped, %d/%d survivor keys still warm\n",
		100*frac, survivorWarm, survivorKeys)

	if frac > 0.45 {
		h.violate("rendezvous: killing 1 of 3 remapped %.0f%% of keys, want <= ~40%% (1/N plus noise)", 100*frac)
	}
	if survivorKeys > 0 && survivorWarm < survivorKeys*9/10 {
		h.violate("rendezvous: only %d/%d surviving keys stayed warm on their owner after the kill",
			survivorWarm, survivorKeys)
	}
}

// waitHealthy polls /gateway/stats until the routable count reaches
// want, or violates at the deadline.
func (h *tenantsHarness) waitHealthy(want int, within time.Duration) {
	h.mu.Lock()
	gate := h.gate
	h.mu.Unlock()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		resp, err := h.client.Get(gate.url() + "/gateway/stats")
		if err == nil {
			var st gateStats
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err == nil && st.HealthyReplicas == want {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	h.violate("healthy_replicas never reached %d within %v", want, within)
}
