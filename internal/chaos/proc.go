package chaos

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

// proc is one live blserve process under harness control.
type proc struct {
	cmd  *exec.Cmd
	addr string     // host:port actually bound
	wait chan error // closed-over cmd.Wait result
}

// startServe launches bin with args and blocks until the process
// reports its bound address in its structured startup line on stderr
// (msg=listening with an addr attribute, in slog text or JSON form),
// so -addr 127.0.0.1:0 works. Server stderr is forwarded to logw.
func startServe(bin string, args []string, logw io.Writer) (*proc, error) {
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stdout = logw
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", bin, err)
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintf(logw, "  [serve] %s\n", line)
			if addr := listenAddr(line); addr != "" {
				select {
				case addrc <- addr:
				default:
				}
			}
		}
	}()
	wait := make(chan error, 1)
	go func() { wait <- cmd.Wait() }()

	select {
	case addr := <-addrc:
		return &proc{cmd: cmd, addr: addr, wait: wait}, nil
	case err := <-wait:
		return nil, fmt.Errorf("blserve exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		return nil, errors.New("blserve never reported a listening address")
	}
}

// listenAddr extracts the bound address from a startup line, accepting
// the slog text form (`msg=listening ... addr=host:port`, possibly
// quoted), the slog JSON form (`"msg":"listening" ... "addr":"..."`),
// and the legacy `listening on host:port` prose.
func listenAddr(line string) string {
	if !strings.Contains(line, "listening") {
		return ""
	}
	for _, key := range []string{`"addr":"`, `addr="`, "addr="} {
		i := strings.Index(line, key)
		if i < 0 {
			continue
		}
		rest := line[i+len(key):]
		end := `"`
		if key == "addr=" {
			end = " "
		}
		if j := strings.Index(rest, end); j >= 0 {
			rest = rest[:j]
		}
		return rest
	}
	if i := strings.Index(line, "listening on "); i >= 0 {
		rest := line[i+len("listening on "):]
		if j := strings.IndexByte(rest, ' '); j > 0 {
			rest = rest[:j]
		}
		return rest
	}
	return ""
}

func (p *proc) url() string { return "http://" + p.addr }

// kill delivers SIGKILL — the hard crash the durability layer must
// survive — and reaps the process.
func (p *proc) kill() {
	p.cmd.Process.Kill()
	<-p.wait
}

// stop asks for a graceful shutdown (SIGTERM drains and snapshots),
// escalating to SIGKILL after grace.
func (p *proc) stop(grace time.Duration) error {
	p.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case err := <-p.wait:
		return err
	case <-time.After(grace):
		p.cmd.Process.Kill()
		<-p.wait
		return errors.New("blserve ignored SIGTERM; killed")
	}
}

// BuildServe compiles cmd/blserve from the enclosing module into dir
// and returns the binary path. The harness builds its victim on demand
// so `go test ./internal/chaos` and CI need no pre-built artifact.
func BuildServe(dir string) (string, error) {
	return buildBinary(dir, "blserve")
}

// BuildGate compiles cmd/blgate the same way for the cluster scenario.
func BuildGate(dir string) (string, error) {
	return buildBinary(dir, "blgate")
}

func buildBinary(dir, name string) (string, error) {
	root, err := moduleRoot()
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("build %s: %v\n%s", name, err, out)
	}
	return bin, nil
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("no go.mod above working directory")
		}
		dir = parent
	}
}
