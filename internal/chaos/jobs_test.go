package chaos

import (
	"context"
	"testing"
	"time"
)

// TestJobsDrill is the crash-resumable distributed-jobs acceptance
// test: a real coordinator dispatching the Section 5 experiments
// through a real blgate to two real replicas, with a replica SIGKILLed
// and the coordinator SIGKILLed and restarted mid-job. Every invariant
// violation fails the test.
func TestJobsDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("jobs drill spawns processes; skipped with -short")
	}
	dir := t.TempDir()
	serveBin, err := BuildServe(dir)
	if err != nil {
		t.Fatal(err)
	}
	gateBin, err := BuildGate(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Minute)
	defer cancel()
	rep, err := RunJobs(ctx, JobsConfig{
		ServeBin: serveBin,
		GateBin:  gateBin,
		Seed:     1,
		Log:      testWriter{t},
	})
	if err != nil {
		t.Fatalf("harness failure: %v (report %+v)", err, rep)
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if !rep.SweepVerified || !rep.SubsetsVerified {
		t.Fatalf("distributed results were not verified bit-identical: %+v", rep)
	}
	if rep.ReplicaKills < 1 || rep.CoordinatorKills < 1 || rep.Restarts < 1 {
		t.Fatalf("drill did not kill and restart as scripted: %+v", rep)
	}
	if rep.RecoveredShards < 1 || rep.RerunShards < 1 {
		t.Fatalf("resume recovered %d shards and re-ran %d; both must be nonzero: %+v",
			rep.RecoveredShards, rep.RerunShards, rep)
	}
	if !rep.MetricsScraped {
		t.Fatalf("coordinator metrics were never cross-checked: %+v", rep)
	}
}
