package chaos

import (
	"context"
	"testing"
	"time"
)

// TestClusterShortSoak is the replicated-serving acceptance test: three
// real blserve replicas behind a real blgate, one killed mid-load, one
// stalled, then all killed for the brownout drill. Every invariant
// violation fails the test.
func TestClusterShortSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster soak spawns processes; skipped with -short")
	}
	dir := t.TempDir()
	serveBin, err := BuildServe(dir)
	if err != nil {
		t.Fatal(err)
	}
	gateBin, err := BuildGate(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	rep, err := RunCluster(ctx, ClusterConfig{
		ServeBin: serveBin,
		GateBin:  gateBin,
		Seed:     42,
		Duration: 4 * time.Second,
		Log:      testWriter{t},
	})
	if err != nil {
		t.Fatalf("harness failure: %v (report %+v)", err, rep)
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if rep.Kills < rep.Replicas+1 {
		t.Fatalf("soak killed %d processes, want at least %d: %+v", rep.Kills, rep.Replicas+1, rep)
	}
	if rep.Restarts < 1 {
		t.Fatalf("killed replica was never restarted: %+v", rep)
	}
	if rep.HedgeFires < 1 || rep.HedgeWins < 1 {
		t.Fatalf("stall drill produced no winning hedges: %+v", rep)
	}
	if rep.StaleServed < 1 || rep.Degraded < 1 {
		t.Fatalf("brownout drill never served a degraded stale answer: %+v", rep)
	}
	if !rep.MetricsScraped {
		t.Fatalf("gateway metrics were never cross-checked: %+v", rep)
	}
}
