package chaos

import (
	"context"
	"testing"
	"time"
)

// TestTenantsDrill is the multi-tenant fairness acceptance test: three
// real blserve -tenants replicas behind a rendezvous-routing blgate, a
// hog flooding at 10x its quota next to two polite tenants, then a
// replica SIGKILL. Every invariant violation fails the test.
func TestTenantsDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("tenants drill spawns processes; skipped with -short")
	}
	dir := t.TempDir()
	serveBin, err := BuildServe(dir)
	if err != nil {
		t.Fatal(err)
	}
	gateBin, err := BuildGate(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	rep, err := RunTenants(ctx, TenantsConfig{
		ServeBin: serveBin,
		GateBin:  gateBin,
		Seed:     42,
		Log:      testWriter{t},
	})
	if err != nil {
		t.Fatalf("harness failure: %v (report %+v)", err, rep)
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if rep.BaselineOK != rep.BaselineSent || rep.BaselineSent == 0 {
		t.Fatalf("baseline incomplete: %+v", rep)
	}
	if rep.HogShed == 0 {
		t.Fatalf("hog was never shed: %+v", rep)
	}
	if rep.Kills != 1 || rep.Remapped == 0 {
		t.Fatalf("kill drill did not remap anything: %+v", rep)
	}
}
