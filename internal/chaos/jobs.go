package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strings"
	"time"

	"ballarus/internal/jobs"
	"ballarus/internal/obs"
	"ballarus/internal/orders"
)

// JobsConfig parameterizes the distributed-jobs chaos drill: a real job
// coordinator (blserve -jobs) dispatching Section 5 experiment shards
// through a real blgate to two real replicas, with a replica SIGKILLed
// mid-job and the coordinator SIGKILLed and restarted mid-job.
type JobsConfig struct {
	// ServeBin is the blserve binary (see BuildServe); required.
	ServeBin string
	// GateBin is the blgate binary (see BuildGate); required.
	GateBin string
	// Seed is echoed in the report for interface parity with the other
	// scenarios; the jobs drill itself is fully deterministic.
	Seed int64
	// Log receives harness narration and forwarded process stderr; nil
	// discards it.
	Log io.Writer
}

// JobsReport is the outcome of one jobs chaos drill. Violations is the
// list of broken invariants; a clean run has none.
type JobsReport struct {
	Seed             int64 `json:"seed"`
	Benches          int   `json:"benches"`
	SweepShards      int   `json:"sweep_shards"`
	SubsetShards     int   `json:"subset_shards"`
	DoneAtCoordKill  int   `json:"shards_done_at_coordinator_kill"`
	RecoveredShards  int   `json:"recovered_shards"` // chaos job only
	RerunShards      int   `json:"rerun_shards"`     // completed by the restarted coordinator
	Trials           int64 `json:"trials"`
	ReplicaKills     int   `json:"replica_kills"`
	CoordinatorKills int   `json:"coordinator_kills"`
	Restarts         int   `json:"restarts"`
	SweepVerified    bool  `json:"sweep_verified"`
	SubsetsVerified  bool  `json:"subsets_verified"`
	MetricsScraped   bool  `json:"metrics_scraped"`
	// SweepRecoveredShards is how many of the finished sweep job's shards
	// the restarted coordinator restored (all of them, if the checkpoint
	// held).
	SweepRecoveredShards int      `json:"sweep_recovered_shards"`
	Violations           []string `json:"violations,omitempty"`
}

// jobsExpected is the single-process ground truth the distributed runs
// must reproduce bit-for-bit.
type jobsExpected struct {
	sweep   *orders.Sweep
	subsets *orders.SubsetResult
	err     error
}

// jobsK is the subset size of the chaos job: the paper's exact C(22,11)
// experiment (Section 5), the largest Table 4 row.
const jobsK = 11

// jobsMaskShard is the chaos job's shard size in low masks: 2048/64 =
// 32 shards, each a few hundred milliseconds of scoring — wide enough
// windows to kill processes mid-job without fault injection.
const jobsMaskShard = 64

// jobResultBody mirrors blserve's GET /v1/jobs/{id}?result=1 response.
type jobResultBody struct {
	Status *jobs.Status `json:"status"`
	Result *jobs.Result `json:"result"`
}

type jobsHarness struct {
	cfg    JobsConfig
	client *http.Client
	log    io.Writer
	rep    *JobsReport

	stateDir  string
	reps      [2]*proc
	gate      *proc
	coord     *proc
	coordAddr string
}

// RunJobs executes one distributed-jobs chaos drill:
//
//  1. ground truth: the harness runs the full 5040-order sweep and the
//     exact C(22,11) subset experiment in-process;
//  2. boot: two plain replicas (shard execution is always on) behind a
//     real blgate, plus a coordinator blserve -jobs whose executor
//     dispatches shards through the gateway, journaling to -state-dir;
//  3. sweep: a full sweep job runs end-to-end; its merged matrix must
//     be bit-identical to the single-process sweep;
//  4. chaos: the exact subset job is submitted; one replica is
//     SIGKILLed mid-job (the gateway must absorb it), then the
//     coordinator is SIGKILLed mid-job and restarted on the same
//     address and state directory. It must resume from the journal,
//     re-run only the unfinished shards, and finish with the exact
//     trial count and a bit-identical best-count vector — and the
//     finished sweep job must still be there, artifact intact;
//  5. metrics: the coordinator's /metrics must lint clean and the
//     ballarus_jobs_* families must agree with the drill: shards
//     completed by the restarted process = total - recovered.
//
// The returned error reports harness-level failures; broken invariants
// land in Violations.
func RunJobs(ctx context.Context, cfg JobsConfig) (*JobsReport, error) {
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	h := &jobsHarness{
		cfg:    cfg,
		client: &http.Client{Timeout: 90 * time.Second},
		log:    cfg.Log,
		rep:    &JobsReport{Seed: cfg.Seed},
	}
	defer h.teardown()

	// The ground truth costs ~5s of scoring; overlap it with process boot.
	expc := make(chan jobsExpected, 1)
	go func() { expc <- computeJobsExpected(ctx) }()

	if err := h.boot(); err != nil {
		return h.rep, err
	}
	exp := <-expc
	if exp.err != nil {
		return h.rep, fmt.Errorf("computing single-process ground truth: %w", exp.err)
	}
	h.rep.Benches = len(exp.sweep.Benches)

	sweepID := h.sweepPhase(ctx, exp)
	if ctx.Err() != nil {
		return h.rep, ctx.Err()
	}
	h.chaosPhase(ctx, exp, sweepID)
	if ctx.Err() != nil {
		return h.rep, ctx.Err()
	}
	h.metricsPhase()

	if h.coord != nil {
		if err := h.coord.stop(10 * time.Second); err != nil {
			h.violate("coordinator graceful shutdown failed: %v", err)
		}
		h.coord = nil
	}
	return h.rep, nil
}

// computeJobsExpected produces the single-process ground truth both
// distributed jobs must reproduce exactly.
func computeJobsExpected(ctx context.Context) jobsExpected {
	provider := jobs.SuiteBenchProvider()
	bd, err := provider(ctx, jobs.DefaultBenches())
	if err != nil {
		return jobsExpected{err: err}
	}
	sw, err := orders.NewSweepCtx(ctx, bd)
	if err != nil {
		return jobsExpected{err: err}
	}
	sub, err := sw.SubsetsCtx(ctx, jobsK)
	if err != nil {
		return jobsExpected{err: err}
	}
	return jobsExpected{sweep: sw, subsets: sub}
}

func (h *jobsHarness) boot() error {
	dir, err := os.MkdirTemp("", "blchaos-jobs-*")
	if err != nil {
		return err
	}
	h.stateDir = dir

	urls := make([]string, len(h.reps))
	for i := range h.reps {
		p, err := startServe(h.cfg.ServeBin, []string{
			"-addr", "127.0.0.1:0",
			"-instance-id", fmt.Sprintf("jr%d", i),
			"-workers", "4",
			"-timeout", "60s",
			"-drain-timeout", "2s",
		}, h.log)
		if err != nil {
			return err
		}
		h.reps[i] = p
		urls[i] = p.url()
	}
	gate, err := startServe(h.cfg.GateBin, []string{
		"-addr", "127.0.0.1:0",
		"-replicas", strings.Join(urls, ","),
		"-probe-every", "150ms",
		"-probe-timeout", "500ms",
		"-rise", "1",
		"-fall", "2",
		"-eject-after", "2",
		"-eject-base", "300ms",
		"-eject-max", "2s",
		"-max-attempts", "3",
		"-retry-ratio", "1",
		"-retry-burst", "64",
		"-timeout", "60s",
	}, h.log)
	if err != nil {
		return err
	}
	h.gate = gate

	coord, err := h.startCoordinator("127.0.0.1:0")
	if err != nil {
		return err
	}
	h.coord = coord
	h.coordAddr = coord.addr
	fmt.Fprintf(h.log, "jobs: 2 replicas behind gateway %s, coordinator %s (state %s)\n",
		gate.addr, coord.addr, h.stateDir)
	return nil
}

// startCoordinator launches the blserve that owns the job engine: jobs
// on, shards dispatched through the gateway, journal and snapshots in
// the shared state directory — the same address and directory let a
// restarted coordinator resume where the killed one stopped.
func (h *jobsHarness) startCoordinator(addr string) (*proc, error) {
	return startServe(h.cfg.ServeBin, []string{
		"-addr", addr,
		"-instance-id", "coord",
		"-workers", "4",
		"-timeout", "60s",
		"-drain-timeout", "2s",
		"-state-dir", h.stateDir,
		"-jobs",
		"-jobs-executor", h.gate.url(),
		"-jobs-parallel", "2",
		"-jobs-lease", "20s",
	}, h.log)
}

func (h *jobsHarness) teardown() {
	if h.coord != nil {
		h.coord.kill()
		h.coord = nil
	}
	if h.gate != nil {
		h.gate.kill()
		h.gate = nil
	}
	for i, p := range h.reps {
		if p != nil {
			p.kill()
			h.reps[i] = nil
		}
	}
	if h.stateDir != "" {
		os.RemoveAll(h.stateDir)
	}
}

func (h *jobsHarness) violate(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	fmt.Fprintf(h.log, "jobs: VIOLATION: %s\n", msg)
	if len(h.rep.Violations) < 32 {
		h.rep.Violations = append(h.rep.Violations, msg)
	}
}

// submitJob posts one job to the coordinator and returns its accepted
// status.
func (h *jobsHarness) submitJob(body map[string]any) *jobs.Status {
	payload, _ := json.Marshal(body)
	resp, err := h.client.Post(h.coord.url()+"/v1/jobs", "application/json", bytes.NewReader(payload))
	if err != nil {
		h.violate("job submit transport error: %v", err)
		return nil
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		h.violate("job submit status %d: %.200s", resp.StatusCode, raw)
		return nil
	}
	var st jobs.Status
	if err := json.Unmarshal(raw, &st); err != nil {
		h.violate("job submit body undecodable: %v (%.200s)", err, raw)
		return nil
	}
	return &st
}

// jobStatus fetches one job's status; ok is false on any failure (the
// coordinator may legitimately be dead mid-drill).
func (h *jobsHarness) jobStatus(id string) (*jobs.Status, bool) {
	resp, err := h.client.Get(h.coord.url() + "/v1/jobs/" + id)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	var st jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, false
	}
	return &st, true
}

// jobResult fetches a done job's merged artifact.
func (h *jobsHarness) jobResult(id string) (*jobResultBody, error) {
	resp, err := h.client.Get(h.coord.url() + "/v1/jobs/" + id + "?result=1")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("status %d: %.200s", resp.StatusCode, raw)
	}
	var out jobResultBody
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// waitJob polls until the job leaves StateRunning or the deadline hits.
func (h *jobsHarness) waitJob(ctx context.Context, id string, within time.Duration) *jobs.Status {
	deadline := time.Now().Add(within)
	var last *jobs.Status
	for time.Now().Before(deadline) && ctx.Err() == nil {
		if st, ok := h.jobStatus(id); ok {
			last = st
			if st.State != jobs.StateRunning {
				return st
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if last == nil {
		h.violate("job %s: no status within %v", id, within)
	} else {
		h.violate("job %s stuck %s: %d/%d shards after %v", id, last.State, last.ShardsDone, last.ShardsTotal, within)
	}
	return last
}

// matricesIdentical compares two miss-rate matrices for bit identity
// (Float64bits, not ==, so a -0/0 or NaN discrepancy cannot hide).
func matricesIdentical(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				return false
			}
		}
	}
	return true
}

// sweepPhase runs the full 5040-order sweep as a distributed job with
// every process healthy: the merged matrix must be bit-identical to the
// harness's single-process sweep. Returns the job ID for the post-
// restart restoration check.
func (h *jobsHarness) sweepPhase(ctx context.Context, exp jobsExpected) string {
	fmt.Fprintf(h.log, "jobs: sweep phase (%d orders x %d benches)\n", orders.NumOrders, h.rep.Benches)
	st := h.submitJob(map[string]any{"kind": "sweep"})
	if st == nil {
		return ""
	}
	h.rep.SweepShards = st.ShardsTotal
	st = h.waitJob(ctx, st.ID, 2*time.Minute)
	if st == nil || st.State != jobs.StateDone {
		return st.ID
	}
	body, err := h.jobResult(st.ID)
	if err != nil {
		h.violate("sweep result fetch: %v", err)
		return st.ID
	}
	if want := int64(orders.NumOrders) * int64(h.rep.Benches); body.Result.Trials != want {
		h.violate("sweep trials = %d, want exactly %d", body.Result.Trials, want)
	}
	if !matricesIdentical(body.Result.Matrix, exp.sweep.M) {
		h.violate("distributed sweep matrix differs from the single-process run")
		return st.ID
	}
	h.rep.SweepVerified = true
	fmt.Fprintf(h.log, "jobs: sweep matrix bit-identical (%d shards, %d trials)\n", st.ShardsTotal, body.Result.Trials)
	return st.ID
}

// chaosPhase runs the exact C(22,11) experiment and does the killing:
// replica 0 dies mid-job, then the coordinator dies mid-job and comes
// back on the same address and state directory.
func (h *jobsHarness) chaosPhase(ctx context.Context, exp jobsExpected, sweepID string) {
	fmt.Fprintf(h.log, "jobs: chaos phase (exact C(%d,%d) = %d trials)\n",
		h.rep.Benches, jobsK, orders.Binomial(h.rep.Benches, jobsK))
	st := h.submitJob(map[string]any{"kind": "subsets", "k": jobsK, "shard_size": jobsMaskShard})
	if st == nil {
		return
	}
	id := st.ID
	h.rep.SubsetShards = st.ShardsTotal
	total := st.ShardsTotal
	if total < 8 {
		h.violate("chaos job planned only %d shards; the drill needs room to kill mid-job", total)
		return
	}

	// Kill thresholds, in shards done: the replica falls early, the
	// coordinator once the journal provably holds progress but well
	// before the job can finish.
	replicaKillAt, coordKillAt := 3, total/4
	killedReplica := false
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		cur, ok := h.jobStatus(id)
		if !ok {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if cur.State != jobs.StateRunning {
			h.violate("chaos job reached %q (%d/%d shards) before the coordinator kill", cur.State, cur.ShardsDone, total)
			return
		}
		if !killedReplica && cur.ShardsDone >= replicaKillAt {
			victim := h.reps[0]
			h.reps[0] = nil
			victim.kill()
			killedReplica = true
			h.rep.ReplicaKills++
			fmt.Fprintf(h.log, "jobs: killed replica jr0 at %d/%d shards\n", cur.ShardsDone, total)
		}
		if killedReplica && cur.ShardsDone >= coordKillAt {
			h.rep.DoneAtCoordKill = cur.ShardsDone
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if h.rep.DoneAtCoordKill == 0 {
		h.violate("chaos job never reached the coordinator kill threshold (%d shards)", coordKillAt)
		return
	}

	h.coord.kill()
	h.coord = nil
	h.rep.CoordinatorKills++
	fmt.Fprintf(h.log, "jobs: SIGKILLed coordinator at >=%d/%d shards\n", h.rep.DoneAtCoordKill, total)

	coord, err := h.startCoordinator(h.coordAddr)
	if err != nil {
		h.violate("coordinator restart on %s failed: %v", h.coordAddr, err)
		return
	}
	h.coord = coord
	h.rep.Restarts++
	fmt.Fprintf(h.log, "jobs: restarted coordinator on %s\n", h.coordAddr)

	final := h.waitJob(ctx, id, 2*time.Minute)
	if final == nil {
		return
	}
	h.rep.RecoveredShards = final.RecoveredShards
	if final.State != jobs.StateDone {
		h.violate("chaos job finished %q after restart: %s", final.State, final.Error)
		return
	}
	// The journal is fsynced per completion, so every shard the dead
	// coordinator reported done must come back recovered — and the job
	// was provably unfinished, so some shards must have been re-run.
	if final.RecoveredShards < h.rep.DoneAtCoordKill {
		h.violate("recovered %d shards, but %d were done before the kill — checkpointed work was lost",
			final.RecoveredShards, h.rep.DoneAtCoordKill)
	}
	if final.RecoveredShards >= total {
		h.violate("recovered all %d shards; the drill failed to interrupt the job", total)
	}
	h.rep.RerunShards = total - final.RecoveredShards

	wantTrials := orders.Binomial(h.rep.Benches, jobsK)
	h.rep.Trials = final.TrialsDone
	if final.TrialsDone != wantTrials {
		h.violate("chaos job trials = %d, want exactly %d (lost or duplicated trials)", final.TrialsDone, wantTrials)
	}
	body, err := h.jobResult(id)
	if err != nil {
		h.violate("chaos job result fetch: %v", err)
		return
	}
	res := body.Result
	switch {
	case res.Trials != wantTrials:
		h.violate("merged artifact trials = %d, want %d", res.Trials, wantTrials)
	case len(res.BestCount) != len(exp.subsets.BestCount):
		h.violate("best-count length %d, want %d", len(res.BestCount), len(exp.subsets.BestCount))
	case res.DistinctOrders != exp.subsets.DistinctOrders():
		h.violate("distinct orders %d, want %d", res.DistinctOrders, exp.subsets.DistinctOrders())
	default:
		for o, c := range exp.subsets.BestCount {
			if res.BestCount[o] != c {
				h.violate("best count for order %d = %d, want %d", o, res.BestCount[o], c)
				return
			}
		}
		h.rep.SubsetsVerified = true
		fmt.Fprintf(h.log, "jobs: chaos job done: %d recovered + %d re-run shards, %d trials, best counts identical\n",
			final.RecoveredShards, h.rep.RerunShards, final.TrialsDone)
	}

	// The sweep job finished before the kill; the restarted coordinator
	// must still hold it, artifact intact.
	if sweepID == "" {
		return
	}
	sst, ok := h.jobStatus(sweepID)
	if !ok || sst.State != jobs.StateDone {
		h.violate("finished sweep job %s not restored after the coordinator restart", sweepID)
		return
	}
	h.rep.SweepRecoveredShards = sst.RecoveredShards
	if sst.RecoveredShards != sst.ShardsTotal {
		h.violate("sweep job restored %d/%d shards; a finished job must recover whole", sst.RecoveredShards, sst.ShardsTotal)
	}
	sbody, err := h.jobResult(sweepID)
	if err != nil {
		h.violate("restored sweep result fetch: %v", err)
		return
	}
	if !matricesIdentical(sbody.Result.Matrix, exp.sweep.M) {
		h.violate("restored sweep matrix differs from the single-process run")
	}
}

// metricsPhase scrapes the restarted coordinator's /metrics: the
// exposition must lint clean and the ballarus_jobs_* families must
// agree with the drill — in particular, the restarted process completed
// exactly total - recovered shards, which is the "re-run only the
// unfinished work" guarantee in counter form.
func (h *jobsHarness) metricsPhase() {
	if h.coord == nil {
		return
	}
	resp, err := h.client.Get(h.coord.url() + "/metrics")
	if err != nil {
		h.violate("metrics: scrape failed: %v", err)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		h.violate("metrics: read failed: %v", err)
		return
	}
	for _, p := range obs.Lint(bytes.NewReader(body)) {
		h.violate("metrics lint: %s", p)
	}
	exp, err := obs.ParseExposition(bytes.NewReader(body))
	if err != nil {
		h.violate("metrics: unparsable exposition: %v", err)
		return
	}
	check := func(name string, want float64) {
		v, found := exp.Value(name, nil)
		if !found || v != want {
			h.violate("metrics: %s = %v (found %v), drill says %v", name, v, found, want)
		}
	}
	// Process-lifetime counters of the restarted coordinator.
	check("ballarus_jobs_shards_completed_total", float64(h.rep.RerunShards))
	check("ballarus_jobs_submitted_total", 0) // resumed, not resubmitted
	check("ballarus_jobs_active", 0)          // both jobs terminal
	check("ballarus_jobs_recovered_shards", float64(h.rep.RecoveredShards+h.rep.SweepRecoveredShards))
	if _, found := exp.Value("ballarus_jobs_trials_total", nil); !found {
		h.violate("metrics: ballarus_jobs_trials_total family missing")
	}
	h.rep.MetricsScraped = true
	fmt.Fprintf(h.log, "jobs: metrics check: %d samples, %d shards completed post-restart\n",
		len(exp.Samples), h.rep.RerunShards)
}
